GO ?= go

.PHONY: all build test race vet lint fmt fmt-check bench bench-quick experiments-quick shard-diff ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Project-specific determinism and hot-path analyzers (see internal/lint).
lint:
	$(GO) run ./cmd/selfmaintlint ./...

fmt:
	gofmt -w .

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchmem .
	$(GO) run ./cmd/experiments -quick -bench-json BENCH_experiments.json > /dev/null

# One-iteration pass over the routing hot-path benchmarks: proves the
# incremental-invalidation and zero-alloc paths still build and run in CI.
# Real numbers come from `make bench`.
bench-quick:
	$(GO) test -run '^$$' -bench 'BenchmarkRouterFlapChurn|BenchmarkEvaluateSteadyState' -benchtime=1x .

# Smoke-run the quick experiment suite on all host cores (output discarded;
# the determinism tests cover correctness, this covers the CLI path).
experiments-quick:
	$(GO) run ./cmd/experiments -quick -parallel 0 > /dev/null

# Region-sharding differential gate: a one-shard MultiEngine world must be
# byte-identical to a plain-Engine build, and the sharded fleet must produce
# identical reports at every worker count (kernel, fleet, and full-world
# scenario layers).
shard-diff:
	$(GO) test -run 'TestSingleShardMatchesPlainEngine|TestWorkerCountsByteIdentical' ./internal/sim/
	$(GO) test -run 'TestFleetWorkerCountsByteIdentical' ./internal/fleet/
	$(GO) test -run 'TestShardedWorldMatchesPlainBuild|TestFleetScaleOutDeterminism' ./internal/scenario/

ci:
	./ci.sh
