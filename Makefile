GO ?= go

.PHONY: all build test race vet fmt fmt-check bench ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchmem .

ci:
	./ci.sh
