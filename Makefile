GO ?= go

.PHONY: all build test race vet lint fmt fmt-check bench bench-quick experiments-quick ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Project-specific determinism and hot-path analyzers (see internal/lint).
lint:
	$(GO) run ./cmd/selfmaintlint ./...

fmt:
	gofmt -w .

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchmem .
	$(GO) run ./cmd/experiments -quick -bench-json BENCH_experiments.json > /dev/null

# One-iteration pass over the routing hot-path benchmarks: proves the
# incremental-invalidation and zero-alloc paths still build and run in CI.
# Real numbers come from `make bench`.
bench-quick:
	$(GO) test -run '^$$' -bench 'BenchmarkRouterFlapChurn|BenchmarkEvaluateSteadyState' -benchtime=1x .

# Smoke-run the quick experiment suite on all host cores (output discarded;
# the determinism tests cover correctness, this covers the CLI path).
experiments-quick:
	$(GO) run ./cmd/experiments -quick -parallel 0 > /dev/null

ci:
	./ci.sh
