GO ?= go

.PHONY: all build test race vet lint fmt fmt-check bench bench-quick bench-diff cp-smoke experiments-quick shard-diff replay-diff ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Project-specific determinism and hot-path analyzers (see internal/lint).
# -stale fails on //lint:allow directives that no longer suppress anything;
# the fact cache carries interprocedural results to the bench-diff stage.
lint:
	$(GO) run ./cmd/selfmaintlint -stale -factcache .cache/selfmaintlint ./...

fmt:
	gofmt -w .

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchmem .
	$(GO) run ./cmd/experiments -quick -bench-json BENCH_experiments.json > /dev/null
	$(GO) run ./cmd/selfmaintlint -factcache .cache/selfmaintlint -bench-json BENCH_experiments.json ./...
	$(GO) run ./cmd/cpload -watchers 1000 -steps 30 -queue-cap 64 -heap-mb 128 -bench-json BENCH_experiments.json > /dev/null

# One-iteration pass over the routing hot-path benchmarks: proves the
# incremental-invalidation and zero-alloc paths still build and run in CI.
# Real numbers come from `make bench`.
bench-quick:
	$(GO) test -run '^$$' -bench 'BenchmarkRouterFlapChurn|BenchmarkEvaluateSteadyState|BenchmarkUniformEvaluate' -benchtime=1x .

# Performance-regression gate: regenerate the quick-suite BENCH artifact and
# diff it against the committed baseline; any experiment more than 25%
# slower (or allocating 25% more) than the baseline fails the build. Refresh
# the baseline with `make bench` after intentional performance changes.
bench-diff:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) run ./cmd/experiments -quick -serial -bench-json "$$tmp/bench.json" > /dev/null && \
	$(GO) run ./cmd/selfmaintlint -factcache .cache/selfmaintlint -bench-json "$$tmp/bench.json" ./... && \
	$(GO) run ./cmd/cpload -watchers 1000 -steps 30 -queue-cap 64 -heap-mb 128 -bench-json "$$tmp/bench.json" > /dev/null && \
	$(GO) run ./cmd/benchdiff BENCH_experiments.json "$$tmp/bench.json"

# Control-plane load smoke: 1k concurrent watchers against a live paced sim
# over an in-memory transport. cpload exits nonzero when the flight
# recording differs between the 0-watcher and 1000-watcher runs (watchers
# perturbed the simulation), when peak heap crosses the ceiling, or when
# nothing was delivered; -queue-cap 64 forces drop-oldest so the
# backpressure counters are exercised, not just present. The full 10k-
# watcher version is `go run ./cmd/cpload` with its defaults.
cp-smoke:
	$(GO) run ./cmd/cpload -watchers 1000 -steps 30 -queue-cap 64 -heap-mb 128

# Smoke-run the quick experiment suite on all host cores (output discarded;
# the determinism tests cover correctness, this covers the CLI path).
experiments-quick:
	$(GO) run ./cmd/experiments -quick -parallel 0 > /dev/null

# Region-sharding differential gate: a one-shard MultiEngine world must be
# byte-identical to a plain-Engine build, and the sharded fleet must produce
# identical reports at every worker count (kernel, fleet, and full-world
# scenario layers).
shard-diff:
	$(GO) test -run 'TestSingleShardMatchesPlainEngine|TestWorkerCountsByteIdentical' ./internal/sim/
	$(GO) test -run 'TestFleetWorkerCountsByteIdentical' ./internal/fleet/
	$(GO) test -run 'TestShardedWorldMatchesPlainBuild|TestFleetScaleOutDeterminism' ./internal/scenario/

# Flight-recorder replay gate: record → replay must reproduce the live
# report fingerprint byte-for-byte (world, fleet, and R7-table layers), and
# `maintctl diff` must find divergence between seeds and none within one.
replay-diff:
	$(GO) test -run 'TestRoundTripProperty|TestDiffFindsFirstDivergence' ./internal/flightrec/
	$(GO) test -run 'TestRecordingDoesNotPerturbRun|TestWorldRecordingReplays|TestFleetRecordingReplays|TestR7FromRecordings' -timeout 600s ./internal/scenario/
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o "$$tmp/maintctl" ./cmd/maintctl && \
	"$$tmp/maintctl" record -o "$$tmp/a.fr" -seed 7 -days 10 > /dev/null && \
	"$$tmp/maintctl" record -o "$$tmp/a2.fr" -seed 7 -days 10 > /dev/null && \
	"$$tmp/maintctl" record -o "$$tmp/b.fr" -seed 8 -days 10 > /dev/null && \
	cmp "$$tmp/a.fr" "$$tmp/a2.fr" && \
	"$$tmp/maintctl" replay "$$tmp/a.fr" > /dev/null && \
	"$$tmp/maintctl" diff "$$tmp/a.fr" "$$tmp/a2.fr" > /dev/null && \
	if "$$tmp/maintctl" diff "$$tmp/a.fr" "$$tmp/b.fr" > /dev/null; then \
		echo "replay-diff: seeds 7 and 8 produced identical recordings?"; exit 1; \
	fi && echo "replay-diff: record/replay/diff gate green"

ci:
	./ci.sh
