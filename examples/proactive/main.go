// Proactive maintenance: the paper's §4 vision — "if several links on a
// switch have been fixed by reseating transceivers, the system could
// proactively reseat all transceivers on that switch". This example runs
// the same accelerated year twice, with and without the L4 proactive and
// predictive machinery, and compares fault counts, availability and the
// robot-hours the proactive work cost.
package main

import (
	"fmt"
	"log"

	"repro/selfmaint"
)

func main() {
	type outcome struct {
		name   string
		report selfmaint.Report
	}
	var results []outcome
	for _, mode := range []struct {
		name  string
		level selfmaint.Level
	}{
		{"reactive only (L3)", selfmaint.L3},
		{"proactive + predictive (L4)", selfmaint.L4},
	} {
		cluster, err := selfmaint.NewCluster(
			selfmaint.WithSeed(23),
			selfmaint.WithLevel(mode.level),
			selfmaint.WithRobots(),
			selfmaint.WithTechnicians(2),
			selfmaint.WithFaultAcceleration(25),
		)
		if err != nil {
			log.Fatal(err)
		}
		cluster.Run(1 * selfmaint.Year)
		results = append(results, outcome{mode.name, cluster.Report()})
	}

	fmt.Printf("%-30s %10s %12s %12s %10s\n", "policy", "reactive", "availability", "down-hours", "proactive")
	reactive := func(r selfmaint.Report) int {
		return r.TicketsOpened - r.ProactiveTasks - r.PredictiveTasks
	}
	for _, r := range results {
		fmt.Printf("%-30s %10d %12.6f %12.1f %10d\n",
			r.name, reactive(r.report), r.report.FleetAvailability,
			r.report.DownLinkHours, r.report.ProactiveTasks+r.report.PredictiveTasks)
	}
	base, pro := results[0].report, results[1].report
	fmt.Printf("\nproactive+predictive maintenance: %.0f%% fewer reactive incidents at the cost of %d background tasks\n",
		100*(1-float64(reactive(pro))/float64(reactive(base))), pro.ProactiveTasks+pro.PredictiveTasks)
}
