// Liveapi: the robot control API (§2) over a real TCP connection — the
// programmatic version of the robotd/maintctl pair. It starts an in-process
// robot API server, connects a client, and walks the cross-layer workflow
// the paper describes: discover capabilities, inject a fault, ask for a
// manipulation plan (which pre-reports the cables the robot will contact),
// then execute and verify.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/robotapi"
	"repro/internal/scenario"
)

func main() {
	// A quiescent hall with a robot fleet, no embedded controller: the
	// remote client plays controller.
	world, err := scenario.Build(scenario.Options{
		Seed:         1,
		BuildNet:     scenario.SmallHall,
		Level:        core.L3,
		Robots:       true,
		NoController: true,
		FaultScale:   0.001,
	})
	if err != nil {
		log.Fatal(err)
	}
	svc := robotapi.NewService(world.Eng, world.Net, world.Inj, world.Fleet)
	srv, err := robotapi.Serve("127.0.0.1:0", svc)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("robot API listening on", srv.Addr())

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	client, err := robotapi.DialClient(ctx, srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	caps, err := client.Capabilities(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: %d unit(s), robotic actions: %v\n", len(caps.Units), caps.Actions)

	// Find a separable fabric link and contaminate it.
	linkID := -1
	for _, l := range world.Net.SwitchLinks() {
		if l.HasSeparableFiber() {
			linkID = int(l.ID)
			break
		}
	}
	if err := client.Inject(ctx, linkID, "contamination"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected contamination on link %d\n", linkID)

	health, err := client.Health(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("health: %d down, %d flapping\n", len(health.Down), len(health.Flapping))

	// The cross-layer moment: before any motion, the plan reports exactly
	// which cables the manipulation will contact, so a controller can drain
	// them (§2).
	for _, end := range []string{"A", "B"} {
		plan, err := client.Plan(ctx, robotapi.TaskSpec{Link: linkID, End: end, Action: "clean"})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("plan clean@%s: unit=%s est=%.0fs, will contact %d cable(s), %d tray mates\n",
			end, plan.Unit, plan.EstSeconds, len(plan.CablesAtRisk), plan.TrayMates)

		res, err := client.Execute(ctx, robotapi.TaskSpec{Link: linkID, End: end, Action: "clean"})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("execute clean@%s: completed=%v fixed=%v in %.0fs, link %s\n",
			end, res.Completed, res.Fixed, res.Seconds, res.LinkHealth)
		if res.Fixed && res.LinkHealth == "healthy" {
			break // cleaned the right end
		}
	}

	health, _ = client.Health(ctx)
	fmt.Printf("final health: %d down, %d flapping\n", len(health.Down), len(health.Flapping))
}
