// Pipeline: observe a run as its event stream and swap in a custom
// planning policy — the two extension points of the Sense→Triage→Plan→Act
// maintenance pipeline.
//
// The custom policy here is deliberately naive: it skips diagnosis and
// always swaps the transceiver at end A, escalating to a cable swap. The
// comparison against the built-in diagnosis-guided ladder shows why the
// Plan stage earns its keep.
package main

import (
	"fmt"
	"log"

	"repro/selfmaint"
)

// swapFirst is a Policy that never diagnoses: replace the A-end
// transceiver, then the cable, then repeat.
type swapFirst struct{}

func (swapFirst) Decide(t *selfmaint.Ticket, stage int) selfmaint.Decision {
	a := selfmaint.ReplaceXcvr
	if stage%2 == 1 {
		a = selfmaint.ReplaceCable
	}
	return selfmaint.Decision{Action: a, End: selfmaint.EndA, Stage: stage}
}

// ImpactSet drains only the target link — no disturbance model, so
// neighbouring cables are manipulated hot.
func (swapFirst) ImpactSet(target *selfmaint.Link, port *selfmaint.Port) []selfmaint.LinkID {
	return []selfmaint.LinkID{target.ID}
}

func run(name string, opts ...selfmaint.Option) selfmaint.Report {
	base := []selfmaint.Option{
		selfmaint.WithSeed(7),
		selfmaint.WithLevel(selfmaint.L3),
		selfmaint.WithRobots(),
		selfmaint.WithTechnicians(2),
		selfmaint.WithFaultAcceleration(20),
	}
	c, err := selfmaint.NewCluster(append(base, opts...)...)
	if err != nil {
		log.Fatal(err)
	}

	// Tap the bus: count events per topic, and echo the first few dispatches
	// so the pipeline is visible in motion.
	byTopic := map[selfmaint.Topic]int{}
	shown := 0
	c.TapEvents(func(ev selfmaint.Event) {
		byTopic[ev.Topic]++
		if ev.Topic == selfmaint.TopicDispatch && shown < 3 {
			shown++
			fmt.Printf("  %v\n", ev)
		}
	})

	fmt.Printf("%s:\n", name)
	c.Run(30 * selfmaint.Day)
	fmt.Printf("  events: %d alerts, %d ticket, %d dispatch, %d outcome\n",
		byTopic[selfmaint.TopicAlert], byTopic[selfmaint.TopicTicket],
		byTopic[selfmaint.TopicDispatch], byTopic[selfmaint.TopicOutcome])
	return c.Report()
}

func main() {
	ladder := run("built-in ladder policy")
	naive := run("swap-first policy (no diagnosis)", selfmaint.WithPolicy(swapFirst{}))

	fmt.Printf("\n30-day comparison:\n")
	fmt.Printf("  ladder:     availability %.6f, mean window %v\n",
		ladder.FleetAvailability, ladder.MeanServiceWindow)
	fmt.Printf("  swap-first: availability %.6f, mean window %v\n",
		naive.FleetAvailability, naive.MeanServiceWindow)
}
