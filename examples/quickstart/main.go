// Quickstart: build a self-maintaining hall at automation level L3, break a
// fabric link, and watch the control plane detect, diagnose and repair it
// in minutes — the paper's headline claim (§2) in thirty lines.
package main

import (
	"fmt"
	"log"

	"repro/selfmaint"
)

func main() {
	cluster, err := selfmaint.NewCluster(
		selfmaint.WithSeed(1),
		selfmaint.WithLevel(selfmaint.L3), // autonomous robots, humans for escalations
		selfmaint.WithRobots(),
		selfmaint.WithTechnicians(2),
	)
	if err != nil {
		log.Fatal(err)
	}

	st := cluster.Network().Stats()
	fmt.Printf("hall: %d devices, %d links (%d fabric)\n", st.Devices, st.Links, st.FabricLinks)

	// Let the hall settle, then kill a transceiver on a fabric link.
	cluster.Run(1 * selfmaint.Hour)
	name, err := cluster.InjectFault(0, selfmaint.XcvrDead)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%v: transceiver died on %s\n", cluster.Now(), name)

	// Give the self-maintenance loop a day of virtual time (it will need
	// only minutes).
	cluster.Run(1 * selfmaint.Day)

	fmt.Print(cluster.Report())
	fmt.Println("\nticket log:")
	for _, line := range cluster.TicketLog() {
		fmt.Println(" ", line)
	}
}
