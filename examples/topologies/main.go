// Topologies: the paper's §4 question — "can we create a metric for
// self-maintainability of a network design?" — answered for four fabrics
// at a comparable switch budget. Expander graphs (Jellyfish, Xpander) win
// raw efficiency; Clos designs win robotic maintainability; and the
// components show exactly where the gap comes from (wiring regularity,
// tray congestion, panel clarity).
package main

import (
	"fmt"
	"log"

	"repro/selfmaint"
)

func main() {
	builds := []struct {
		name  string
		build func() (*selfmaint.Network, error)
	}{
		{"fat-tree k=4", selfmaint.FatTree(4)},
		{"leaf-spine 16x4", selfmaint.LeafSpine(16, 4, 4)},
		{"jellyfish n=20 r=8", selfmaint.Jellyfish(20, 8, 4, 3)},
		{"xpander d=9 k=2", selfmaint.Xpander(9, 2, 4, 3)},
	}

	fmt.Printf("%-20s %7s %6s %6s %6s %6s %6s %6s %6s\n",
		"topology", "index", "local", "clar", "tray", "runs", "drain", "reg", "tput")
	for _, b := range builds {
		net, err := b.build()
		if err != nil {
			log.Fatal(err)
		}
		r := selfmaint.EvaluateMaintainability(net)
		c := r.Components
		fmt.Printf("%-20s %7.1f %6.2f %6.2f %6.2f %6.2f %6.2f %6.2f %6.3f\n",
			b.name, r.Index, c.Locality, c.PortClarity, c.TrayHeadroom,
			c.ShortRuns, c.DrainTolerance, c.Regularity, r.ThroughputNorm)
	}

	fmt.Println("\nindex: composite self-maintainability (0-100, higher = friendlier to robots)")
	fmt.Println("the paper's bet (§4): robotic deployment+maintenance eventually closes the")
	fmt.Println("regularity gap, making the efficient-but-irregular fabrics deployable.")
}
