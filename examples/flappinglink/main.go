// Flapping link: the paper's gray-failure story (§1, §3.2) end to end.
// Dirt on a fiber end-face makes a link flap; telemetry needs several
// episodes to flag it; the first repair is a reseat, which can mask the
// dirt and produce the classic repeat ticket; the repeat escalates straight
// to cleaning. The example prints the whole timeline, contrasting L0
// (human) and L3 (robotic) handling of the same incident.
package main

import (
	"fmt"
	"log"

	"repro/selfmaint"
)

func main() {
	for _, level := range []selfmaint.Level{selfmaint.L0, selfmaint.L3} {
		fmt.Printf("=== automation level %v ===\n", level)
		run(level)
		fmt.Println()
	}
}

func run(level selfmaint.Level) {
	cluster, err := selfmaint.NewCluster(
		selfmaint.WithSeed(11),
		selfmaint.WithLevel(level),
		selfmaint.WithRobots(),
		selfmaint.WithTechnicians(2),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Contaminate a fabric link's end-face at the 10h mark.
	cluster.Run(10 * selfmaint.Hour)
	name, err := cluster.InjectFault(2, selfmaint.Contamination)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%v: dirt on an end-face of %s (link now flaps intermittently)\n",
		cluster.Now(), name)

	// Run two weeks: enough for flap detection, the reseat-first repair, a
	// possible masked recurrence, and the escalated cleaning.
	cluster.Run(14 * selfmaint.Day)

	for _, line := range cluster.TicketLog() {
		fmt.Println(" ", line)
	}
	rep := cluster.Report()
	fmt.Printf("degraded link-hours: %.1f, mean service window: %v\n",
		rep.DegradedLinkHours, rep.MeanServiceWindow)
}
