// Command selfmaintlint is the multichecker for the repository's
// determinism, hot-path, and concurrency invariants. It loads the named
// packages (default ./...), runs the analyzer suite from internal/lint
// with the interprocedural fact layer, applies //lint:allow suppression,
// and exits non-zero on any finding — ci.sh runs it between go vet and the
// race stage.
//
// Usage:
//
//	selfmaintlint [flags] [packages...]
//
//	-fix              apply suggested fixes (currently the mapiter
//	                  detsort.Keys rewrite) in place, then report what remains
//	-stale            also flag //lint:allow directives that suppressed
//	                  nothing (dead suppressions must not accumulate)
//	-json             print findings as a JSON array
//	                  (file/line/col/analyzer/message/chain)
//	-factcache DIR    cache propagated facts in DIR/facts.json; unchanged
//	                  packages skip fact recomputation on the next run
//	-bench-json FILE  upsert this run's wall time as the "lint" experiment
//	                  in the BENCH artifact, for cmd/benchdiff gating
//	-v                list packages as they are analyzed
//
// Findings print as file:line:col: [analyzer] message; transitive findings
// append their call chain, e.g. "(via EvaluateInto → helper → make at
// routing/foo.go:42)". A finding is resolved either by fixing the code or
// by an explicit //lint:allow <analyzer> <reason> directive on or above
// the line; the reason is mandatory and directives naming unknown
// analyzers are themselves findings, so a typo cannot suppress anything
// silently. An allow also prunes the named analyzer's facts at that line,
// so one directive covers the transitive findings it argues for.
package main

import (
	"flag"
	"os"

	"repro/internal/lint/driver"
)

func main() {
	fix := flag.Bool("fix", false, "apply suggested fixes in place")
	stale := flag.Bool("stale", false, "flag //lint:allow directives that suppressed nothing")
	jsonOut := flag.Bool("json", false, "print findings as JSON")
	factCache := flag.String("factcache", "", "directory for the interprocedural fact cache")
	benchJSON := flag.String("bench-json", "", "BENCH artifact to record lint wall time in")
	verbose := flag.Bool("v", false, "log packages as they run")
	flag.Parse()

	os.Exit(driver.Run(driver.Options{
		Patterns:  flag.Args(),
		Fix:       *fix,
		Stale:     *stale,
		JSON:      *jsonOut,
		FactCache: *factCache,
		BenchJSON: *benchJSON,
		Verbose:   *verbose,
	}))
}
