// Command selfmaintlint is the multichecker for the repository's
// determinism and hot-path invariants. It loads the named packages
// (default ./...), runs the five analyzers from internal/lint, applies
// //lint:allow suppression, and exits non-zero on any finding — ci.sh runs
// it between go vet and the race stage.
//
// Usage:
//
//	selfmaintlint [-fix] [-v] [packages...]
//
//	-fix  apply suggested fixes (currently the mapiter detsort.Keys
//	      rewrite) to the source files in place, then report what remains
//	-v    list the analyzers and packages as they run
//
// Findings print as file:line:col: [analyzer] message. A finding is
// resolved either by fixing the code or by an explicit
// //lint:allow <analyzer> <reason> directive on or above the line; the
// reason is mandatory and directives naming unknown analyzers are
// themselves findings, so a typo cannot suppress anything silently.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"sort"

	"repro/internal/lint"
	"repro/internal/lint/allow"
	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

type finding struct {
	pos      token.Position
	analyzer string
	diag     analysis.Diagnostic
}

func main() {
	fix := flag.Bool("fix", false, "apply suggested fixes in place")
	verbose := flag.Bool("v", false, "log analyzers and packages as they run")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := loader.Load(loader.Config{}, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "selfmaintlint: %v\n", err)
		os.Exit(2)
	}

	analyzers := lint.Analyzers()
	known := lint.Names()
	var findings []finding
	for _, pkg := range pkgs {
		if *verbose {
			fmt.Fprintf(os.Stderr, "selfmaintlint: %s\n", pkg.Path)
		}
		ix := allow.Build(pkg.Fset, pkg.Files, known)
		for _, p := range ix.Problems {
			findings = append(findings, finding{pos: pkg.Fset.Position(p.Pos), analyzer: "allow", diag: p})
		}
		for _, a := range analyzers {
			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "selfmaintlint: %s on %s: %v\n", a.Name, pkg.Path, err)
				os.Exit(2)
			}
			for _, d := range ix.Filter(a.Name, pkg.Fset, diags) {
				findings = append(findings, finding{pos: pkg.Fset.Position(d.Pos), analyzer: a.Name, diag: d})
			}
		}
	}

	if *fix {
		findings = applyFixes(findings)
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].pos, findings[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	for _, f := range findings {
		fmt.Printf("%s: [%s] %s\n", f.pos, f.analyzer, f.diag.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "selfmaintlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// applyFixes rewrites source files with each finding's first suggested fix
// and returns the findings that had none. Edits are grouped per file and
// applied back-to-front so earlier offsets stay valid; overlapping edits
// keep only the first (in position order) to stay safe.
func applyFixes(findings []finding) []finding {
	type edit struct {
		start, end int
		text       []byte
	}
	byFile := make(map[string][]edit)
	var rest []finding
	fixed := 0
	for _, f := range findings {
		if len(f.diag.SuggestedFixes) == 0 {
			rest = append(rest, f)
			continue
		}
		sf := f.diag.SuggestedFixes[0]
		ok := true
		var edits []edit
		for _, te := range sf.TextEdits {
			// Positions translate to file offsets via the reported position
			// base: Pos/End are in the same file as the finding.
			startPos := f.pos.Offset + int(te.Pos-f.diag.Pos)
			endPos := startPos + int(te.End-te.Pos)
			if startPos < 0 || endPos < startPos {
				ok = false
				break
			}
			edits = append(edits, edit{start: startPos, end: endPos, text: te.NewText})
		}
		if !ok {
			rest = append(rest, f)
			continue
		}
		byFile[f.pos.Filename] = append(byFile[f.pos.Filename], edits...)
		fixed++
	}
	for file, edits := range byFile {
		src, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "selfmaintlint: -fix: %v\n", err)
			os.Exit(2)
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		lastStart := len(src) + 1
		for _, e := range edits {
			if e.end > lastStart || e.end > len(src) {
				continue // overlapping or out-of-range edit: skip
			}
			src = append(src[:e.start], append(e.text, src[e.end:]...)...)
			lastStart = e.start
		}
		if err := os.WriteFile(file, src, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "selfmaintlint: -fix: %v\n", err)
			os.Exit(2)
		}
	}
	if fixed > 0 {
		fmt.Fprintf(os.Stderr, "selfmaintlint: applied %d fix(es); re-run to verify\n", fixed)
	}
	return rest
}
