// robotd is the robot-fleet agent daemon: it owns a (simulated) hall of
// hardware and a fleet of maintenance robots, and serves the paper's robot
// control API (§2) over TCP — capability discovery, manipulation planning
// with contacted-cable pre-reports, task execution, health, and fault
// injection for demos.
//
// Pair it with maintctl:
//
//	robotd -listen 127.0.0.1:7700 &
//	maintctl -addr 127.0.0.1:7700 caps
//	maintctl -addr 127.0.0.1:7700 inject 3 contamination
//	maintctl -addr 127.0.0.1:7700 plan 3 A clean
//	maintctl -addr 127.0.0.1:7700 execute 3 A clean
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/robotapi"
	"repro/internal/scenario"
	"repro/internal/topology"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:7700", "TCP listen address")
		seed   = flag.Uint64("seed", 1, "world seed")
		leaves = flag.Int("leaves", 8, "leaf switches in the hall")
		spines = flag.Int("spines", 2, "spine switches")
	)
	flag.Parse()

	w, err := scenario.Build(scenario.Options{
		Seed: *seed,
		BuildNet: func() (*topology.Network, error) {
			return topology.NewLeafSpine(topology.LeafSpineConfig{
				Leaves: *leaves, Spines: *spines, HostsPerLeaf: 4,
				Uplinks: 1, FabricGbps: 400, HostGbps: 100,
			})
		},
		Level:        core.L3,
		Robots:       true,
		NoController: true,  // the remote caller is the controller
		FaultScale:   0.001, // near-quiescent; demo faults come via inject
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "robotd:", err)
		os.Exit(1)
	}
	svc := robotapi.NewService(w.Eng, w.Net, w.Inj, w.Fleet)
	srv, err := robotapi.Serve(*listen, svc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "robotd:", err)
		os.Exit(1)
	}
	fmt.Printf("robotd: serving robot API on %s (%d links, %d units)\n",
		srv.Addr(), len(w.Net.Links), len(w.Fleet.Units()))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("robotd: shutting down")
	srv.Close()
}
