// cpload is the control-plane load harness: it proves the streaming
// control plane holds N concurrent watchers against a live paced
// simulation at bounded memory, without perturbing the simulation.
//
// The harness runs the same seeded scenario twice — once with zero
// watchers, once with -watchers SSE subscribers attached over an in-memory
// transport — stepping virtual time identically and flight-recording both
// runs. It then asserts:
//
//   - the two recordings are byte-identical (watchers are observability,
//     never a results knob);
//   - peak heap stays under -heap-mb during the watched run;
//   - backpressure did its job: slow watchers (a -slow-frac cohort that
//     stops reading after the handshake) accumulate drop/coalesce counts
//     instead of stalling the publisher.
//
// The in-memory transport (net.Pipe behind a net.Listener) removes file
// descriptor limits from the equation: 10k watchers need 10k goroutine
// pairs, not 10k sockets.
//
// Usage:
//
//	cpload -watchers 10000 -steps 20 -heap-mb 512
//	cpload -watchers 1000 -steps 10 -bench-json BENCH_experiments.json
//
// Exit status is 0 only when every assertion holds; the summary JSON on
// stdout carries the measured numbers either way.
package main

import (
	"bufio"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/controlplane"
	"repro/internal/sim"
	"repro/selfmaint"
)

type config struct {
	watchers  int
	slowFrac  float64
	steps     int
	pace      float64 // virtual seconds per step
	level     int
	accel     float64
	seed      uint64
	heapMB    int
	queueCap  int
	benchJSON string
}

func main() {
	var cfg config
	flag.IntVar(&cfg.watchers, "watchers", 10000, "concurrent stream subscribers")
	flag.Float64Var(&cfg.slowFrac, "slow-frac", 0.05, "fraction of watchers that stop reading after the handshake")
	flag.IntVar(&cfg.steps, "steps", 30, "paced simulation steps")
	flag.Float64Var(&cfg.pace, "pace", 21600, "virtual seconds per step")
	flag.IntVar(&cfg.level, "level", 4, "automation level 0-4")
	flag.Float64Var(&cfg.accel, "accel", 30, "fault acceleration")
	flag.Uint64Var(&cfg.seed, "seed", 1, "seed")
	flag.IntVar(&cfg.heapMB, "heap-mb", 512, "peak heap ceiling (MiB) during the watched run")
	flag.IntVar(&cfg.queueCap, "queue-cap", 0, "per-watcher queue capacity (0 = hub default); small caps force drop-oldest")
	flag.StringVar(&cfg.benchJSON, "bench-json", "", "upsert the watched run's wall time as experiment \"cpload\" in this BENCH artifact")
	flag.Parse()

	// Trade a little CPU for a tighter heap: with GOGC at its default the
	// peak doubles the live set, which is exactly what the -heap-mb
	// assertion is trying to bound.
	debug.SetGCPercent(30)

	if err := runLoad(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cpload:", err)
		os.Exit(1)
	}
}

// summary is the machine-readable result printed on stdout.
type summary struct {
	Watchers       int     `json:"watchers"`
	SlowWatchers   int     `json:"slow_watchers"`
	Steps          int     `json:"steps"`
	VirtualHours   float64 `json:"virtual_hours"`
	WallSeconds    float64 `json:"wall_seconds"`
	Published      uint64  `json:"frames_published"`
	Delivered      uint64  `json:"frames_delivered"`
	DropsReports   uint64  `json:"drops_reports_seen"`
	Dropped        uint64  `json:"dropped"`
	Coalesced      uint64  `json:"coalesced"`
	PeakHeapMB     float64 `json:"peak_heap_mb"`
	HeapCeilingMB  int     `json:"heap_ceiling_mb"`
	DigestBare     string  `json:"digest_bare"`
	DigestWatched  string  `json:"digest_watched"`
	TranscriptSame bool    `json:"transcript_identical"`
}

func runLoad(cfg config, out io.Writer) error {
	bare, err := runOnce(cfg, 0, nil)
	if err != nil {
		return fmt.Errorf("bare run: %w", err)
	}
	s := &summary{Watchers: cfg.watchers, Steps: cfg.steps,
		VirtualHours: float64(cfg.steps) * cfg.pace / 3600, HeapCeilingMB: cfg.heapMB}
	watched, err := runOnce(cfg, cfg.watchers, s)
	if err != nil {
		return fmt.Errorf("watched run: %w", err)
	}

	s.DigestBare, s.DigestWatched = bare, watched
	s.TranscriptSame = bare == watched
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return err
	}

	if cfg.benchJSON != "" {
		if err := upsertBench(cfg.benchJSON, s.WallSeconds, cfg.watchers); err != nil {
			return fmt.Errorf("bench artifact: %w", err)
		}
	}
	if !s.TranscriptSame {
		return fmt.Errorf("transcript differs with %d watchers: %s vs %s — watchers perturbed the run",
			cfg.watchers, bare, watched)
	}
	if s.PeakHeapMB > float64(cfg.heapMB) {
		return fmt.Errorf("peak heap %.1f MiB exceeds the %d MiB ceiling", s.PeakHeapMB, cfg.heapMB)
	}
	if cfg.watchers > 0 && s.Delivered == 0 {
		return fmt.Errorf("no frames delivered to %d watchers", cfg.watchers)
	}
	return nil
}

// runOnce executes one seeded, recorded run with n watchers attached and
// returns the hex digest of the flight-recording bytes. With s non-nil it
// fills in the load metrics (watched run).
func runOnce(cfg config, n int, s *summary) (string, error) {
	c, err := selfmaint.NewCluster(
		selfmaint.WithSeed(cfg.seed),
		selfmaint.WithLevel(selfmaint.Level(cfg.level)),
		selfmaint.WithRobots(),
		selfmaint.WithTechnicians(2),
		selfmaint.WithFaultAcceleration(cfg.accel),
	)
	if err != nil {
		return "", err
	}
	digest := sha256.New()
	rec, err := c.RecordTo(digest, map[string]string{"tool": "cpload"}, sim.Hour)
	if err != nil {
		return "", err
	}

	hub := controlplane.NewHub(controlplane.Config{QueueCap: cfg.queueCap})
	feed := c.FeedControlPlane(hub)

	var fleet *watcherFleet
	if n > 0 {
		fleet, err = startFleet(hub, n, int(float64(n)*cfg.slowFrac))
		if err != nil {
			return "", err
		}
	}

	start := time.Now()
	var peakHeap uint64
	for i := 0; i < cfg.steps; i++ {
		c.Run(sim.Time(cfg.pace * float64(sim.Second)))
		feed.Sync()
		if s != nil {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peakHeap {
				peakHeap = ms.HeapAlloc
			}
		}
	}
	// Wall time includes the settle phase: the load test's cost is "step the
	// sim AND deliver the stream to everyone", not just the publish side.
	if fleet != nil {
		fleet.settle(10 * time.Second)
	}
	wall := time.Since(start)
	if fleet != nil {
		fleet.stop()
	}
	if s != nil {
		st := hub.Stats()
		s.SlowWatchers = int(float64(n) * cfg.slowFrac)
		s.WallSeconds = wall.Seconds()
		s.Published = st.Published
		s.Delivered = fleet.frames.Load()
		s.DropsReports = fleet.dropsSeen.Load()
		s.Dropped = st.Dropped
		s.Coalesced = st.Coalesced
		s.PeakHeapMB = float64(peakHeap) / (1 << 20)
	}
	if _, err := rec.Close(); err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", digest.Sum(nil)), nil
}

// watcherFleet is n SSE clients attached to a hub over in-memory pipes.
type watcherFleet struct {
	srv       *http.Server
	ln        *memListener
	wg        sync.WaitGroup
	frames    atomic.Uint64 // delta frames fully received by fast watchers
	dropsSeen atomic.Uint64 // in-band drops reports received
	hellos    atomic.Uint64
}

func startFleet(hub *controlplane.Hub, n, slow int) (*watcherFleet, error) {
	f := &watcherFleet{ln: newMemListener(), srv: &http.Server{Handler: hub.StreamHandler()}}
	go f.srv.Serve(f.ln)

	for i := 0; i < n; i++ {
		conn, err := f.ln.dial()
		if err != nil {
			return nil, err
		}
		f.wg.Add(1)
		go f.watch(conn, i, i < slow)
	}
	// Every watcher must complete its handshake before the load run starts,
	// or early frames race the attach and the delivered counts get mushy.
	for f.hellos.Load() < uint64(n) {
		time.Sleep(time.Millisecond)
	}
	return f, nil
}

// watch runs one SSE client. Slow watchers stop reading after the
// handshake — the server-side queue must absorb, coalesce and drop for
// them while everyone else streams on.
func (f *watcherFleet) watch(conn net.Conn, id int, slow bool) {
	defer f.wg.Done()
	defer conn.Close()
	fmt.Fprintf(conn, "GET /v1/stream?client=w%d&proto=1 HTTP/1.1\r\nHost: cpload\r\n\r\n", id)
	br := bufio.NewReaderSize(conn, 1024)
	resp, err := http.ReadResponse(br, nil)
	if err != nil || resp.StatusCode != http.StatusOK {
		f.hellos.Add(1) // count it anyway so startFleet cannot hang
		return
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	// Small initial buffer — 10k watchers each hold one — growing on demand
	// up to the largest snapshot line.
	sc.Buffer(make([]byte, 0, 512), 1<<20)
	sawHello := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: hello"):
			if !sawHello {
				sawHello = true
				f.hellos.Add(1)
				if slow {
					// Handshake done; stop reading. The pipe has no buffer,
					// so the server's writer blocks and its queue fills.
					return
				}
			}
		case strings.HasPrefix(line, "event: delta"):
			f.frames.Add(1)
		case strings.HasPrefix(line, "event: drops"):
			f.dropsSeen.Add(1)
		}
	}
}

// settle waits for delivery to quiesce: the stepping loop outruns the
// stream writers by orders of magnitude, so counts keep climbing after the
// last Sync. Quiesced means no fast watcher received anything for a few
// polls in a row (slow watchers never drain — their queues are the point).
func (f *watcherFleet) settle(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	prev, stable := f.frames.Load()+f.dropsSeen.Load(), 0
	for time.Now().Before(deadline) && stable < 5 {
		time.Sleep(20 * time.Millisecond)
		if now := f.frames.Load() + f.dropsSeen.Load(); now == prev {
			stable++
		} else {
			prev, stable = now, 0
		}
	}
}

// stop force-closes the server; watcher goroutines exit on their broken
// pipes.
func (f *watcherFleet) stop() {
	f.srv.Close()
	f.ln.Close()
	f.wg.Wait()
}

// memListener is a net.Listener over net.Pipe: no sockets, no fd limits.
type memListener struct {
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

func newMemListener() *memListener {
	return &memListener{conns: make(chan net.Conn), done: make(chan struct{})}
}

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *memListener) Addr() net.Addr { return memAddr{} }

// dial hands the server half to Accept and returns the client half.
func (l *memListener) dial() (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case l.conns <- server:
		return client, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

type memAddr struct{}

func (memAddr) Network() string { return "mem" }
func (memAddr) String() string  { return "mem" }
