package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/scenario"
)

// benchID is the experiment id the load run reports under in the BENCH
// artifact, next to the simulation experiments.
const benchID = "cpload"

// upsertBench records the watched run's wall time as the "cpload"
// experiment in the bench artifact at path, replacing an existing entry or
// appending one. The artifact is created when absent; in CI the
// experiments harness writes it first and cmd/benchdiff then gates the
// load-test wall time against the committed baseline exactly like any
// other experiment.
func upsertBench(path string, wallSeconds float64, watchers int) error {
	var bench scenario.Bench
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, &bench); err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	entry := scenario.ExperimentBench{ID: benchID, Workers: watchers, WallSeconds: wallSeconds}
	replaced := false
	for i := range bench.Experiments {
		if bench.Experiments[i].ID == benchID {
			bench.Experiments[i] = entry
			replaced = true
			break
		}
	}
	if !replaced {
		bench.Experiments = append(bench.Experiments, entry)
	}
	out, err := json.MarshalIndent(&bench, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
