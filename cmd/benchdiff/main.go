// Command benchdiff compares a freshly generated BENCH_experiments.json
// against the committed baseline and fails when any experiment regressed by
// more than the allowed fraction in wall time or allocated bytes — the CI
// gate that keeps the suite's performance trajectory monotone.
//
//	benchdiff [-max-regress 0.25] baseline.json fresh.json
//
// Wall time on sub-200ms experiments is dominated by scheduler and GC
// noise, so the wall check applies only when the baseline spent at least
// 0.2s; likewise an allocation increase under 8 MB is never flagged. Both
// floors keep the gate meaningful on the quick suite without turning timer
// jitter into CI flakes. Improvements are reported but never fail.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/scenario"
)

const (
	wallFloorSeconds = 0.2
	allocFloorMB     = 8.0
)

func load(path string) (*scenario.Bench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b scenario.Bench
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

func main() {
	maxRegress := flag.Float64("max-regress", 0.25,
		"maximum allowed fractional regression per experiment (wall time or allocated MB)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchdiff [-max-regress frac] baseline.json fresh.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fresh, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	baseByID := make(map[string]scenario.ExperimentBench, len(base.Experiments))
	for _, e := range base.Experiments {
		baseByID[e.ID] = e
	}

	failed := false
	for _, f := range fresh.Experiments {
		b, ok := baseByID[f.ID]
		if !ok {
			fmt.Printf("  %-4s new experiment (no baseline): wall %.2fs alloc %.1fMB\n",
				f.ID, f.WallSeconds, f.AllocMBytes)
			continue
		}
		wallDelta := ratio(f.WallSeconds, b.WallSeconds)
		allocDelta := ratio(f.AllocMBytes, b.AllocMBytes)
		status := "ok"
		if b.WallSeconds >= wallFloorSeconds && wallDelta > *maxRegress {
			status = "WALL REGRESSION"
			failed = true
		}
		if f.AllocMBytes-b.AllocMBytes >= allocFloorMB && allocDelta > *maxRegress {
			if status == "ok" {
				status = "ALLOC REGRESSION"
			} else {
				status += " + ALLOC REGRESSION"
			}
			failed = true
		}
		fmt.Printf("  %-4s wall %6.2fs -> %6.2fs (%+6.1f%%)  alloc %8.1fMB -> %8.1fMB (%+6.1f%%)  %s\n",
			f.ID, b.WallSeconds, f.WallSeconds, 100*wallDelta,
			b.AllocMBytes, f.AllocMBytes, 100*allocDelta, status)
	}
	for _, b := range base.Experiments {
		found := false
		for _, f := range fresh.Experiments {
			if f.ID == b.ID {
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("  %-4s missing from fresh run\n", b.ID)
			failed = true
		}
	}

	fmt.Printf("total: wall %.2fs -> %.2fs, alloc %.1fMB -> %.1fMB\n",
		base.TotalWallSeconds, fresh.TotalWallSeconds,
		base.TotalAllocMBytes, fresh.TotalAllocMBytes)
	if failed {
		fmt.Println("benchdiff: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchdiff: ok")
}

// ratio returns the fractional change from old to new (0 when old is 0:
// a previously free experiment has no meaningful baseline to regress from;
// the absolute floors still bound its growth).
func ratio(new, old float64) float64 {
	if old <= 0 {
		return 0
	}
	return new/old - 1
}
