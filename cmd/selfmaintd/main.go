// selfmaintd is the self-maintenance controller daemon: it runs a full
// self-maintaining hall (telemetry → diagnosis → tickets → robots/humans)
// in accelerated virtual time, pacing the simulation against the wall
// clock, and serves an HTTP status API for observation:
//
//	GET /status   — run summary (JSON)
//	GET /tickets  — ticket list (JSON)
//	GET /health   — observable link health (JSON)
//	GET /log      — recent controller decisions (JSON)
//	GET /events   — recent pipeline bus events, all topics (JSON)
//
// Usage:
//
//	selfmaintd -listen 127.0.0.1:7800 -pace 3600 &
//	curl -s 127.0.0.1:7800/status | head
//
// pace is virtual seconds advanced per wall-clock second. With -record FILE
// the daemon streams its full event history to a flight recording, closed
// cleanly (trailer + fingerprint) on SIGINT/SIGTERM; replay it with
// `maintctl replay FILE`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/ticket"
	"repro/selfmaint"
)

// server paces the simulation and serves snapshots. A single mutex guards
// the world: the engine is single-threaded by design.
type server struct {
	mu     sync.Mutex
	c      *selfmaint.Cluster
	events eventRing
}

// eventRing keeps the most recent pipeline events. The bus tap that fills
// it fires synchronously inside Run, so server.mu already guards it. The
// ring retains the typed events as published; rendering to JSON rows
// happens at request time, keeping the per-event tap cost to one slot
// assignment (see BenchmarkEventTap).
type eventRing struct {
	buf  []selfmaint.Event
	next int
	full bool
}

type eventRow struct {
	At      string `json:"at"`
	Seq     uint64 `json:"seq"`
	Topic   string `json:"topic"`
	Payload string `json:"payload"`
}

func (r *eventRing) add(ev selfmaint.Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.next] = ev
	r.next = (r.next + 1) % len(r.buf)
	r.full = true
}

// all renders the retained events oldest-first. Never nil: an empty ring is
// an empty JSON array, not null.
func (r *eventRing) all() []eventRow {
	var evs []selfmaint.Event
	if r.full {
		evs = append(evs, r.buf[r.next:]...)
		evs = append(evs, r.buf[:r.next]...)
	} else {
		evs = r.buf
	}
	rows := make([]eventRow, 0, len(evs))
	for _, ev := range evs {
		rows = append(rows, eventRow{At: ev.At.String(), Seq: ev.Seq,
			Topic: string(ev.Topic), Payload: fmt.Sprint(ev.Payload)})
	}
	return rows
}

func (s *server) step(d sim.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.c.Run(d)
}

func (s *server) status(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	rep := s.c.Report()
	now := s.c.Now()
	s.mu.Unlock()
	writeJSON(w, map[string]any{
		"virtual_time":      now.String(),
		"tickets_opened":    rep.TicketsOpened,
		"tickets_resolved":  rep.TicketsResolved,
		"mean_window":       rep.MeanServiceWindow.String(),
		"availability":      rep.FleetAvailability,
		"down_link_hours":   rep.DownLinkHours,
		"robot_tasks":       rep.RobotTasks,
		"human_tasks":       rep.HumanTasks,
		"human_escalations": rep.EscalationsToHuman,
		"cascades":          rep.CascadesDuringOps,
		"proactive_tasks":   rep.ProactiveTasks,
		"predictive_tasks":  rep.PredictiveTasks,
		"watchdog_fires":    rep.WatchdogFires,
		"late_outcomes":     rep.LateOutcomes,
		"degraded_tickets":  rep.DegradedTickets,
	})
}

func (s *server) tickets(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	type row struct {
		ID       int    `json:"id"`
		Link     string `json:"link"`
		Kind     string `json:"kind"`
		Status   string `json:"status"`
		Window   string `json:"window,omitempty"`
		Attempts int    `json:"attempts"`
	}
	rows := []row{} // empty list must encode as [], not null
	for _, t := range s.c.World().Store.All() {
		rw := row{ID: t.ID, Link: t.Link.Name(), Kind: t.Kind.String(),
			Status: t.Status.String(), Attempts: len(t.Attempts)}
		if t.Status == ticket.Resolved {
			rw.Window = t.ServiceWindow().String()
		}
		rows = append(rows, rw)
	}
	writeJSON(w, rows)
}

func (s *server) busEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	rows := s.events.all()
	s.mu.Unlock()
	writeJSON(w, rows)
}

func (s *server) log(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	lines := s.c.DecisionLog(200)
	s.mu.Unlock()
	if lines == nil {
		lines = []string{} // empty log must encode as [], not null
	}
	writeJSON(w, lines)
}

func (s *server) health(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	world := s.c.World()
	out := map[string][]string{"down": {}, "flapping": {}}
	for _, l := range world.Net.Links {
		switch world.Inj.Observable(l.ID) {
		case faults.Down:
			out["down"] = append(out["down"], l.Name())
		case faults.Flapping:
			out["flapping"] = append(out["flapping"], l.Name())
		}
	}
	writeJSON(w, out)
}

// writeJSON marshals before touching the ResponseWriter, so an encoding
// failure can still become a 500 instead of a silently truncated 200.
func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Printf("selfmaintd: encoding response: %v", err)
		http.Error(w, "internal error: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:7800", "HTTP listen address")
		level  = flag.Int("level", 4, "automation level 0-4")
		pace   = flag.Float64("pace", 3600, "virtual seconds per wall second")
		accel  = flag.Float64("accel", 20, "fault acceleration")
		seed   = flag.Uint64("seed", 1, "seed")
		record = flag.String("record", "", "write a flight recording of the run to this file")
	)
	flag.Parse()

	c, err := selfmaint.NewCluster(
		selfmaint.WithSeed(*seed),
		selfmaint.WithLevel(selfmaint.Level(*level)),
		selfmaint.WithRobots(),
		selfmaint.WithTechnicians(2),
		selfmaint.WithFaultAcceleration(*accel),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "selfmaintd:", err)
		os.Exit(1)
	}
	srv := &server{c: c}
	srv.events.buf = make([]selfmaint.Event, 0, 1024)
	c.TapEvents(srv.events.add)

	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, "selfmaintd:", err)
			os.Exit(1)
		}
		recd, err := c.RecordTo(f, map[string]string{
			"tool":  "selfmaintd",
			"seed":  fmt.Sprintf("%d", *seed),
			"level": fmt.Sprintf("L%d", *level),
			"accel": fmt.Sprintf("%g", *accel),
		}, sim.Hour)
		if err != nil {
			fmt.Fprintln(os.Stderr, "selfmaintd:", err)
			os.Exit(1)
		}
		// The trailer is what makes the file replayable; close the
		// recording cleanly when the daemon is interrupted.
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sigc
			srv.mu.Lock()
			sum, err := recd.Close()
			srv.mu.Unlock()
			if err == nil {
				err = f.Close()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "selfmaintd: closing recording:", err)
				os.Exit(1)
			}
			fmt.Printf("selfmaintd: recorded %d frames to %s (fingerprint %016x)\n",
				sum.Frames(), *record, sum.Fingerprint())
			os.Exit(0)
		}()
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/status", srv.status)
	mux.HandleFunc("/tickets", srv.tickets)
	mux.HandleFunc("/health", srv.health)
	mux.HandleFunc("/log", srv.log)
	mux.HandleFunc("/events", srv.busEvents)

	go func() {
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for range tick.C {
			srv.step(sim.Time(*pace * float64(sim.Second)))
		}
	}()

	fmt.Printf("selfmaintd: L%d hall on %s, pacing %gx real time\n", *level, *listen, *pace)
	if err := http.ListenAndServe(*listen, mux); err != nil {
		fmt.Fprintln(os.Stderr, "selfmaintd:", err)
		os.Exit(1)
	}
}
