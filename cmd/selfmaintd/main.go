// selfmaintd is the self-maintenance controller daemon: it runs a full
// self-maintaining hall (telemetry → diagnosis → tickets → robots/humans)
// in accelerated virtual time, pacing the simulation against the wall
// clock, and serves an HTTP status API for observation:
//
//	GET /status   — run summary (JSON)
//	GET /tickets  — ticket list (JSON)
//	GET /health   — observable link health (JSON)
//	GET /log      — recent controller decisions (JSON)
//	GET /events   — recent pipeline bus events, all topics (JSON)
//
// Usage:
//
//	selfmaintd -listen 127.0.0.1:7800 -pace 3600 &
//	curl -s 127.0.0.1:7800/status | head
//
// pace is virtual seconds advanced per wall-clock second.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/ticket"
	"repro/selfmaint"
)

// server paces the simulation and serves snapshots. A single mutex guards
// the world: the engine is single-threaded by design.
type server struct {
	mu     sync.Mutex
	c      *selfmaint.Cluster
	events eventRing
}

// eventRing keeps the most recent pipeline events. The bus tap that fills
// it fires synchronously inside Run, so server.mu already guards it.
type eventRing struct {
	buf  []eventRow
	next int
	full bool
}

type eventRow struct {
	At      string `json:"at"`
	Seq     uint64 `json:"seq"`
	Topic   string `json:"topic"`
	Payload string `json:"payload"`
}

func (r *eventRing) add(ev selfmaint.Event) {
	row := eventRow{At: ev.At.String(), Seq: ev.Seq,
		Topic: string(ev.Topic), Payload: fmt.Sprint(ev.Payload)}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, row)
		return
	}
	r.buf[r.next] = row
	r.next = (r.next + 1) % len(r.buf)
	r.full = true
}

// all returns the retained events oldest-first.
func (r *eventRing) all() []eventRow {
	if !r.full {
		return append([]eventRow(nil), r.buf...)
	}
	out := make([]eventRow, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

func (s *server) step(d sim.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.c.Run(d)
}

func (s *server) status(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	rep := s.c.Report()
	now := s.c.Now()
	s.mu.Unlock()
	writeJSON(w, map[string]any{
		"virtual_time":      now.String(),
		"tickets_opened":    rep.TicketsOpened,
		"tickets_resolved":  rep.TicketsResolved,
		"mean_window":       rep.MeanServiceWindow.String(),
		"availability":      rep.FleetAvailability,
		"down_link_hours":   rep.DownLinkHours,
		"robot_tasks":       rep.RobotTasks,
		"human_tasks":       rep.HumanTasks,
		"human_escalations": rep.EscalationsToHuman,
		"cascades":          rep.CascadesDuringOps,
		"proactive_tasks":   rep.ProactiveTasks,
		"predictive_tasks":  rep.PredictiveTasks,
		"watchdog_fires":    rep.WatchdogFires,
		"late_outcomes":     rep.LateOutcomes,
		"degraded_tickets":  rep.DegradedTickets,
	})
}

func (s *server) tickets(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	type row struct {
		ID       int    `json:"id"`
		Link     string `json:"link"`
		Kind     string `json:"kind"`
		Status   string `json:"status"`
		Window   string `json:"window,omitempty"`
		Attempts int    `json:"attempts"`
	}
	var rows []row
	for _, t := range s.c.World().Store.All() {
		rw := row{ID: t.ID, Link: t.Link.Name(), Kind: t.Kind.String(),
			Status: t.Status.String(), Attempts: len(t.Attempts)}
		if t.Status == ticket.Resolved {
			rw.Window = t.ServiceWindow().String()
		}
		rows = append(rows, rw)
	}
	writeJSON(w, rows)
}

func (s *server) busEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	rows := s.events.all()
	s.mu.Unlock()
	writeJSON(w, rows)
}

func (s *server) log(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	lines := s.c.DecisionLog(200)
	s.mu.Unlock()
	writeJSON(w, lines)
}

func (s *server) health(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	world := s.c.World()
	out := map[string][]string{"down": {}, "flapping": {}}
	for _, l := range world.Net.Links {
		switch world.Inj.Observable(l.ID) {
		case faults.Down:
			out["down"] = append(out["down"], l.Name())
		case faults.Flapping:
			out["flapping"] = append(out["flapping"], l.Name())
		}
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:7800", "HTTP listen address")
		level  = flag.Int("level", 4, "automation level 0-4")
		pace   = flag.Float64("pace", 3600, "virtual seconds per wall second")
		accel  = flag.Float64("accel", 20, "fault acceleration")
		seed   = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()

	c, err := selfmaint.NewCluster(
		selfmaint.WithSeed(*seed),
		selfmaint.WithLevel(selfmaint.Level(*level)),
		selfmaint.WithRobots(),
		selfmaint.WithTechnicians(2),
		selfmaint.WithFaultAcceleration(*accel),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "selfmaintd:", err)
		os.Exit(1)
	}
	srv := &server{c: c}
	srv.events.buf = make([]eventRow, 0, 1024)
	c.TapEvents(srv.events.add)

	mux := http.NewServeMux()
	mux.HandleFunc("/status", srv.status)
	mux.HandleFunc("/tickets", srv.tickets)
	mux.HandleFunc("/health", srv.health)
	mux.HandleFunc("/log", srv.log)
	mux.HandleFunc("/events", srv.busEvents)

	go func() {
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for range tick.C {
			srv.step(sim.Time(*pace * float64(sim.Second)))
		}
	}()

	fmt.Printf("selfmaintd: L%d hall on %s, pacing %gx real time\n", *level, *listen, *pace)
	if err := http.ListenAndServe(*listen, mux); err != nil {
		fmt.Fprintln(os.Stderr, "selfmaintd:", err)
		os.Exit(1)
	}
}
