// selfmaintd is the self-maintenance controller daemon: it runs a full
// self-maintaining hall (telemetry → diagnosis → tickets → robots/humans)
// in accelerated virtual time, pacing the simulation against the wall
// clock, and serves an HTTP API for observation:
//
//	GET /status     — run summary (JSON)
//	GET /tickets    — ticket list (JSON)
//	GET /health     — observable link health (JSON)
//	GET /log        — recent controller decisions (JSON)
//	GET /events     — recent pipeline bus events, all topics (JSON)
//	GET /v1/stream  — streaming control plane: session handshake, then
//	                  snapshot + live deltas over SSE (see maintctl watch)
//	GET /v1/stats   — control-plane hub statistics and sessions (JSON)
//
// Usage:
//
//	selfmaintd -listen 127.0.0.1:7800 -pace 3600 &
//	curl -s 127.0.0.1:7800/status | head
//	maintctl watch -addr 127.0.0.1:7800
//
// pace is virtual seconds advanced per wall-clock second. With -record FILE
// the daemon streams its full event history to a flight recording; replay
// it with `maintctl replay FILE`.
//
// The read endpoints are served from the control-plane hub's materialized
// view — rendered once per pacing step by the feed — so requests never
// block the simulation, and any number of /v1/stream watchers observe the
// run without perturbing it. Every exit path (signal, listener error, serve
// error) funnels through one shutdown sequence: stop the pacing ticker,
// drain HTTP with a deadline, then close the flight recording (trailer +
// fingerprint; an empty recording is deleted rather than left truncated).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"repro/internal/controlplane"
	"repro/internal/flightrec"
	"repro/internal/sim"
	"repro/selfmaint"
)

// shutdownTimeout bounds the graceful HTTP drain; connections still open
// after it (streaming watchers, typically) are force-closed.
const shutdownTimeout = 5 * time.Second

// config is the parsed and validated command line.
type config struct {
	listen    string
	level     int
	pace      float64
	accel     float64
	seed      uint64
	record    string
	eventBuf  int
	tickEvery time.Duration
}

// parseFlags parses and validates args. Validation is up front and total:
// a daemon that would spin uselessly (zero pace), crash later (bad level)
// or serve nothing (empty listen address) refuses to start instead.
func parseFlags(args []string, stderr io.Writer) (config, error) {
	var cfg config
	fs := flag.NewFlagSet("selfmaintd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&cfg.listen, "listen", "127.0.0.1:7800", "HTTP listen address")
	fs.IntVar(&cfg.level, "level", 4, "automation level 0-4")
	fs.Float64Var(&cfg.pace, "pace", 3600, "virtual seconds per wall second")
	fs.Float64Var(&cfg.accel, "accel", 20, "fault acceleration")
	fs.Uint64Var(&cfg.seed, "seed", 1, "seed")
	fs.StringVar(&cfg.record, "record", "", "write a flight recording of the run to this file")
	fs.IntVar(&cfg.eventBuf, "event-buffer", 1024, "recent bus events retained for /events")
	fs.DurationVar(&cfg.tickEvery, "tick", time.Second, "wall-clock pacing interval (mainly for tests)")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if cfg.listen == "" {
		return cfg, errors.New("-listen must not be empty: give host:port to serve on")
	}
	if cfg.level < 0 || cfg.level > 4 {
		return cfg, fmt.Errorf("-level %d out of range: automation levels run 0 (human-only) to 4 (fully autonomous)", cfg.level)
	}
	if !(cfg.pace > 0) || math.IsInf(cfg.pace, 0) {
		return cfg, fmt.Errorf("-pace %g invalid: must be a positive, finite count of virtual seconds per wall second", cfg.pace)
	}
	if !(cfg.accel > 0) || math.IsInf(cfg.accel, 0) {
		return cfg, fmt.Errorf("-accel %g invalid: must be a positive, finite fault-rate multiplier", cfg.accel)
	}
	if cfg.eventBuf <= 0 {
		return cfg, fmt.Errorf("-event-buffer %d invalid: must retain at least one event", cfg.eventBuf)
	}
	if cfg.tickEvery <= 0 {
		return cfg, fmt.Errorf("-tick %v invalid: must be a positive duration", cfg.tickEvery)
	}
	return cfg, nil
}

// daemon owns the paced simulation and everything serving it. The mutex
// guards the cluster and the event ring; the hub has its own lock and the
// read endpoints serve from its materialized view without touching mu.
type daemon struct {
	cfg  config
	hub  *controlplane.Hub
	feed *selfmaint.Feed

	mu     sync.Mutex
	c      *selfmaint.Cluster
	events eventRing
	steps  int

	rec     *selfmaint.Recording
	recFile *os.File
	sum     *flightrec.Summary

	srv      *http.Server
	stopTick chan struct{}
	tickDone chan struct{}
	once     sync.Once
	shutErr  error
}

// eventRing keeps the most recent pipeline events. The bus tap that fills
// it fires synchronously inside Run, so daemon.mu already guards it. The
// ring retains the typed events as published; rendering to JSON rows
// happens at request time, keeping the per-event tap cost to one slot
// assignment (see BenchmarkEventTap).
type eventRing struct {
	buf  []selfmaint.Event
	next int
	full bool
}

type eventRow struct {
	At      string `json:"at"`
	Seq     uint64 `json:"seq"`
	Topic   string `json:"topic"`
	Payload string `json:"payload"`
}

func (r *eventRing) add(ev selfmaint.Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.next] = ev
	r.next = (r.next + 1) % len(r.buf)
	r.full = true
}

// all renders the retained events oldest-first. Never nil: an empty ring is
// an empty JSON array, not null.
func (r *eventRing) all() []eventRow {
	var evs []selfmaint.Event
	if r.full {
		evs = append(evs, r.buf[r.next:]...)
		evs = append(evs, r.buf[:r.next]...)
	} else {
		evs = r.buf
	}
	rows := make([]eventRow, 0, len(evs))
	for _, ev := range evs {
		rows = append(rows, eventRow{At: ev.At.String(), Seq: ev.Seq,
			Topic: string(ev.Topic), Payload: fmt.Sprint(ev.Payload)})
	}
	return rows
}

// newDaemon builds the cluster, hub, feed, event tap and (optionally) the
// flight recording. On error nothing is left behind: a created recording
// file is removed.
func newDaemon(cfg config) (*daemon, error) {
	c, err := selfmaint.NewCluster(
		selfmaint.WithSeed(cfg.seed),
		selfmaint.WithLevel(selfmaint.Level(cfg.level)),
		selfmaint.WithRobots(),
		selfmaint.WithTechnicians(2),
		selfmaint.WithFaultAcceleration(cfg.accel),
	)
	if err != nil {
		return nil, err
	}
	d := &daemon{cfg: cfg, c: c, hub: controlplane.NewHub(controlplane.Config{})}
	d.events.buf = make([]selfmaint.Event, 0, cfg.eventBuf)
	c.TapEvents(d.events.add)

	if cfg.record != "" {
		f, err := os.Create(cfg.record)
		if err != nil {
			return nil, err
		}
		rec, err := c.RecordTo(f, map[string]string{
			"tool":  "selfmaintd",
			"seed":  fmt.Sprintf("%d", cfg.seed),
			"level": fmt.Sprintf("L%d", cfg.level),
			"accel": fmt.Sprintf("%g", cfg.accel),
		}, sim.Hour)
		if err != nil {
			f.Close()
			os.Remove(cfg.record)
			return nil, err
		}
		d.rec, d.recFile = rec, f
	}

	// The feed publishes the initial keyed state immediately, so /status
	// and snapshots are complete before the first pacing step.
	d.feed = c.FeedControlPlane(d.hub)
	d.srv = &http.Server{Handler: d.routes()}
	return d, nil
}

// step advances virtual time by dt and flushes the feed. The feed sync
// runs under mu — it reads the cluster — but all hub publishing inside it
// only takes the hub's own lock, which no simulation code path acquires.
func (d *daemon) step(dt sim.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.c.Run(dt)
	d.steps++
	d.feed.Sync()
}

// startPacing launches the wall-clock ticker that drives the simulation.
func (d *daemon) startPacing() {
	d.stopTick = make(chan struct{})
	d.tickDone = make(chan struct{})
	go func() {
		defer close(d.tickDone)
		tick := time.NewTicker(d.cfg.tickEvery)
		defer tick.Stop()
		for {
			select {
			case <-d.stopTick:
				return
			case <-tick.C:
				d.step(sim.Time(d.cfg.pace * float64(sim.Second)))
			}
		}
	}()
}

// shutdown is the single exit path, idempotent and ordered: stop the
// pacing ticker (no step may race the drain), drain HTTP with a deadline
// (force-closing watchers that outlive it), then close the flight
// recording so the trailer and fingerprint land on disk. A recording with
// zero frames is deleted — a header-only file cannot be replayed and a
// truncated artifact is worse than none.
func (d *daemon) shutdown() error {
	d.once.Do(func() {
		if d.stopTick != nil {
			close(d.stopTick)
			<-d.tickDone
		}
		if d.srv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
			if err := d.srv.Shutdown(ctx); err != nil {
				d.srv.Close()
			}
			cancel()
		}
		d.shutErr = d.closeRecording()
	})
	return d.shutErr
}

func (d *daemon) closeRecording() error {
	if d.rec == nil {
		return nil
	}
	d.mu.Lock()
	steps := d.steps
	sum, err := d.rec.Close()
	d.mu.Unlock()
	if cerr := d.recFile.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("closing recording: %w", err)
	}
	// Close always appends an end-of-run state frame, so Frames() is never
	// zero; "nothing was recorded" means no paced step ever ran. Such a
	// file documents nothing — remove it rather than leave an artifact that
	// looks like a run.
	if steps == 0 {
		if rerr := os.Remove(d.cfg.record); rerr != nil {
			return fmt.Errorf("removing empty recording: %w", rerr)
		}
		return nil
	}
	d.sum = sum
	return nil
}

func (d *daemon) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", d.status)
	mux.HandleFunc("/tickets", d.tickets)
	mux.HandleFunc("/health", d.health)
	mux.HandleFunc("/log", d.decisionLog)
	mux.HandleFunc("/events", d.busEvents)
	mux.Handle("/v1/stream", d.hub.StreamHandler())
	mux.HandleFunc("/v1/stats", d.stats)
	return mux
}

// status serves the feed-rendered summary straight from the hub view: no
// simulation lock, no re-encoding.
func (d *daemon) status(w http.ResponseWriter, r *http.Request) {
	raw := d.hub.ViewPayload(controlplane.TopicStatus, "status")
	if raw == nil {
		http.Error(w, `{"error":"status not yet published"}`, http.StatusServiceUnavailable)
		return
	}
	writeRawJSON(w, raw)
}

// tickets serves the materialized ticket rows in id order.
func (d *daemon) tickets(w http.ResponseWriter, r *http.Request) {
	entries := d.hub.ViewEntries(controlplane.TopicTicket)
	// View order is lexicographic by key; ticket ids want numeric order.
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i].Key, entries[j].Key
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	buf := make([]byte, 0, 64+128*len(entries))
	buf = append(buf, '[')
	for i, e := range entries {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, e.Data...)
	}
	buf = append(buf, ']')
	writeRawJSON(w, buf)
}

// health rebuilds the legacy {"down":[...],"flapping":[...]} shape from
// the cp.health view (recovered links are tombstoned out of it).
func (d *daemon) health(w http.ResponseWriter, r *http.Request) {
	out := map[string][]string{"down": {}, "flapping": {}}
	for _, e := range d.hub.ViewEntries(controlplane.TopicHealth) {
		var p struct {
			Health string `json:"health"`
		}
		if err := json.Unmarshal(e.Data, &p); err == nil {
			out[p.Health] = append(out[p.Health], e.Key)
		}
	}
	writeJSON(w, out)
}

func (d *daemon) decisionLog(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	lines := d.c.DecisionLog(200)
	d.mu.Unlock()
	if lines == nil {
		lines = []string{} // empty log must encode as [], not null
	}
	writeJSON(w, lines)
}

func (d *daemon) busEvents(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	rows := d.events.all()
	d.mu.Unlock()
	writeJSON(w, rows)
}

// stats reports the control-plane hub's counters and session registry.
func (d *daemon) stats(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	now, steps := d.c.Now(), d.steps
	d.mu.Unlock()
	dropped, coalesced := d.hub.DropsByTopic()
	writeJSON(w, map[string]any{
		"virtual_time":       now.String(),
		"steps":              steps,
		"hub":                d.hub.Stats(),
		"dropped_by_topic":   dropped,
		"coalesced_by_topic": coalesced,
		"sessions":           d.hub.Sessions(),
	})
}

// writeJSON marshals before touching the ResponseWriter, so an encoding
// failure can still become a 500 instead of a silently truncated 200.
func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Printf("selfmaintd: encoding response: %v", err)
		http.Error(w, "internal error: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// writeRawJSON serves pre-encoded bytes. They may be shared (hub view
// payloads), so nothing here appends to them.
func writeRawJSON(w http.ResponseWriter, raw []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(raw)
	io.WriteString(w, "\n")
}

// run is the daemon lifecycle: validate, build, listen, pace, serve, and
// shut down through the single ordered path no matter which exit fired
// first. It returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	cfg, err := parseFlags(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		fmt.Fprintln(stderr, "selfmaintd:", err)
		return 2
	}
	d, err := newDaemon(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "selfmaintd:", err)
		return 1
	}

	// Listen before serving so an unusable address fails here, with the
	// recording closed (and removed — nothing ran) instead of truncated.
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		fmt.Fprintln(stderr, "selfmaintd:", err)
		if serr := d.shutdown(); serr != nil {
			fmt.Fprintln(stderr, "selfmaintd:", serr)
		}
		return 1
	}
	fmt.Fprintf(stdout, "selfmaintd: L%d hall on %s, pacing %gx real time\n",
		cfg.level, ln.Addr(), cfg.pace)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	errc := make(chan error, 1)
	go func() { errc <- d.srv.Serve(ln) }()
	d.startPacing()

	var serveErr error
	select {
	case sig := <-sigc:
		fmt.Fprintf(stdout, "selfmaintd: %v, shutting down\n", sig)
	case serveErr = <-errc:
	}
	shutErr := d.shutdown()
	if serveErr == nil {
		serveErr = <-errc // Serve returns once Shutdown has drained it
	}

	code := 0
	if serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "selfmaintd:", serveErr)
		code = 1
	}
	if shutErr != nil {
		fmt.Fprintln(stderr, "selfmaintd:", shutErr)
		code = 1
	}
	if d.sum != nil {
		fmt.Fprintf(stdout, "selfmaintd: recorded %d frames to %s (fingerprint %016x)\n",
			d.sum.Frames(), cfg.record, d.sum.Fingerprint())
	}
	return code
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
