package main

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"repro/internal/bus"
	"repro/internal/sim"
	"repro/selfmaint"
)

func ringEvent(i int) selfmaint.Event {
	return selfmaint.Event{Seq: uint64(i), At: sim.Time(i) * sim.Second,
		Topic: bus.TopicAlert, Payload: i}
}

// TestEventRingPartial covers the pre-wrap regime, including the empty ring,
// which must render as a non-nil (hence JSON []) slice.
func TestEventRingPartial(t *testing.T) {
	r := eventRing{buf: make([]selfmaint.Event, 0, 8)}
	rows := r.all()
	if rows == nil {
		t.Fatal("all() on an empty ring returned nil — /events would serve JSON null")
	}
	if len(rows) != 0 {
		t.Fatalf("empty ring returned %d rows", len(rows))
	}
	for i := 0; i < 5; i++ {
		r.add(ringEvent(i))
	}
	rows = r.all()
	if len(rows) != 5 {
		t.Fatalf("all() = %d rows, want 5", len(rows))
	}
	for i, rw := range rows {
		if rw.Seq != uint64(i) || rw.Payload != fmt.Sprint(i) {
			t.Fatalf("row %d = %+v, want seq %d", i, rw, i)
		}
	}
}

// TestEventRingExactlyFull covers the boundary where the buffer has just
// filled: next has wrapped to 0 but nothing is overwritten yet.
func TestEventRingExactlyFull(t *testing.T) {
	r := eventRing{buf: make([]selfmaint.Event, 0, 8)}
	for i := 0; i < 8; i++ {
		r.add(ringEvent(i))
	}
	// The 8th add landed via append; full flips on the first overwrite, so
	// order must hold in both the almost-full and just-wrapped states.
	rows := r.all()
	if len(rows) != 8 || rows[0].Seq != 0 || rows[7].Seq != 7 {
		t.Fatalf("exactly-full ring rows span %d..%d (n=%d), want 0..7",
			rows[0].Seq, rows[len(rows)-1].Seq, len(rows))
	}
}

// TestEventRingWrapped covers the steady state: the ring has overwritten its
// oldest rows, and all() must splice the halves on either side of next into
// oldest-first order.
func TestEventRingWrapped(t *testing.T) {
	r := eventRing{buf: make([]selfmaint.Event, 0, 8)}
	for i := 0; i < 11; i++ {
		r.add(ringEvent(i))
	}
	if !r.full || r.next != 3 {
		t.Fatalf("after 11 adds: full=%v next=%d, want full=true next=3", r.full, r.next)
	}
	rows := r.all()
	if len(rows) != 8 {
		t.Fatalf("all() = %d rows, want 8", len(rows))
	}
	for i, rw := range rows {
		if want := uint64(i + 3); rw.Seq != want {
			t.Fatalf("row %d seq = %d, want %d", i, rw.Seq, want)
		}
	}
}

// TestWriteJSONError verifies the satellite fix: an unencodable value must
// produce a 500, not a silently empty 200.
func TestWriteJSONError(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, map[string]any{"bad": func() {}})
	if rec.Code != 500 {
		t.Fatalf("writeJSON(unencodable) status = %d, want 500", rec.Code)
	}
	rec = httptest.NewRecorder()
	writeJSON(rec, []string{})
	if rec.Code != 200 {
		t.Fatalf("writeJSON([]) status = %d, want 200", rec.Code)
	}
	var out []string
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || out == nil {
		t.Fatalf("writeJSON([]) body %q did not round-trip to an empty array (err %v)", rec.Body.String(), err)
	}
}

// BenchmarkEventTap measures the hot bus-tap path: add must be one slot
// assignment, with rendering deferred to request time.
func BenchmarkEventTap(b *testing.B) {
	r := eventRing{buf: make([]selfmaint.Event, 0, 1024)}
	ev := selfmaint.Event{Seq: 1, At: sim.Hour, Topic: bus.TopicAlert,
		Payload: struct {
			Link  string
			Flaps int
		}{"leaf0/p0", 3}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.add(ev)
	}
}

// BenchmarkEventTapEagerRender is the pre-fix behaviour (stringify every
// payload at tap time) kept as the comparison baseline for the alloc drop.
func BenchmarkEventTapEagerRender(b *testing.B) {
	type row struct{ at, topic, payload string }
	buf := make([]row, 1024)
	ev := selfmaint.Event{Seq: 1, At: sim.Hour, Topic: bus.TopicAlert,
		Payload: struct {
			Link  string
			Flaps int
		}{"leaf0/p0", 3}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf[i%len(buf)] = row{at: ev.At.String(), topic: string(ev.Topic),
			payload: fmt.Sprint(ev.Payload)}
	}
}
