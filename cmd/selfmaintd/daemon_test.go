package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/flightrec"
	"repro/internal/sim"
)

func TestParseFlagsValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error; empty = must parse
	}{
		{"defaults", nil, ""},
		{"zero pace", []string{"-pace", "0"}, "-pace"},
		{"negative pace", []string{"-pace", "-10"}, "-pace"},
		{"NaN pace", []string{"-pace", "NaN"}, "-pace"},
		{"infinite pace", []string{"-pace", "+Inf"}, "-pace"},
		{"level too high", []string{"-level", "5"}, "-level 5 out of range"},
		{"level negative", []string{"-level", "-1"}, "-level -1 out of range"},
		{"empty listen", []string{"-listen", ""}, "-listen must not be empty"},
		{"zero accel", []string{"-accel", "0"}, "-accel"},
		{"zero event buffer", []string{"-event-buffer", "0"}, "-event-buffer"},
		{"zero tick", []string{"-tick", "0s"}, "-tick"},
		{"valid extremes", []string{"-level", "0", "-pace", "0.5", "-tick", "10ms"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseFlags(tc.args, io.Discard)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("parseFlags(%v) = %v, want ok", tc.args, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("parseFlags(%v) = %v, want error containing %q", tc.args, err, tc.want)
			}
		})
	}
}

// testConfig is a fast-stepping daemon configuration for in-process tests.
func testConfig() config {
	return config{
		listen: "127.0.0.1:0", level: 4, pace: 3600, accel: 30, seed: 1,
		eventBuf: 1024, tickEvery: time.Second,
	}
}

// TestEndpointsServeFromHub drives the daemon's full HTTP surface against
// a manually stepped simulation and checks every endpoint keeps its shape.
func TestEndpointsServeFromHub(t *testing.T) {
	d, err := newDaemon(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.routes())
	defer ts.Close()

	for i := 0; i < 30; i++ {
		d.step(24 * sim.Hour)
	}

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, body)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("GET %s content type = %q", path, ct)
		}
		return body
	}

	var status map[string]any
	if err := json.Unmarshal(get("/status"), &status); err != nil {
		t.Fatalf("/status: %v", err)
	}
	if status["tickets_opened"].(float64) == 0 {
		t.Fatal("/status reports no tickets after 30 accelerated days")
	}

	var tickets []struct {
		ID     int    `json:"id"`
		Link   string `json:"link"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal(get("/tickets"), &tickets); err != nil {
		t.Fatalf("/tickets: %v", err)
	}
	if len(tickets) == 0 {
		t.Fatal("/tickets is empty")
	}
	for i := 1; i < len(tickets); i++ {
		if tickets[i].ID <= tickets[i-1].ID {
			t.Fatalf("/tickets not in id order: %d after %d", tickets[i].ID, tickets[i-1].ID)
		}
	}

	var health map[string][]string
	if err := json.Unmarshal(get("/health"), &health); err != nil {
		t.Fatalf("/health: %v", err)
	}
	for _, key := range []string{"down", "flapping"} {
		if _, ok := health[key]; !ok {
			t.Fatalf("/health missing %q: %v", key, health)
		}
	}

	var lines []string
	if err := json.Unmarshal(get("/log"), &lines); err != nil {
		t.Fatalf("/log: %v", err)
	}

	var events []eventRow
	if err := json.Unmarshal(get("/events"), &events); err != nil {
		t.Fatalf("/events: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("/events is empty after 30 accelerated days")
	}

	var stats struct {
		Steps int `json:"steps"`
		Hub   struct {
			Seq       uint64 `json:"Seq"`
			Published uint64 `json:"Published"`
		} `json:"hub"`
	}
	if err := json.Unmarshal(get("/v1/stats"), &stats); err != nil {
		t.Fatalf("/v1/stats: %v", err)
	}
	if stats.Steps != 30 || stats.Hub.Published == 0 {
		t.Fatalf("/v1/stats = %+v, want 30 steps and nonzero publishes", stats)
	}
}

// TestEventRingWrapOverHTTP forces the /events ring to wrap and asserts
// the HTTP surface serves exactly the retained window, oldest first.
func TestEventRingWrapOverHTTP(t *testing.T) {
	cfg := testConfig()
	cfg.eventBuf = 8
	d, err := newDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.routes())
	defer ts.Close()

	for i := 0; i < 30; i++ {
		d.step(24 * sim.Hour)
	}
	d.mu.Lock()
	if !d.events.full {
		d.mu.Unlock()
		t.Fatal("event ring did not wrap after 30 accelerated days")
	}
	d.mu.Unlock()

	resp, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rows []eventRow
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("wrapped ring served %d rows, want 8", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Seq != rows[i-1].Seq+1 {
			t.Fatalf("rows not consecutive oldest-first: seq %d after %d", rows[i].Seq, rows[i-1].Seq)
		}
	}
}

// TestStreamWhileStepping subscribes over HTTP while a ticker goroutine
// steps the simulation, exercising the publisher/subscriber seam under the
// race detector end to end.
func TestStreamWhileStepping(t *testing.T) {
	d, err := newDaemon(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.routes())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/stream?client=test&proto=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			d.step(12 * sim.Hour)
		}
	}()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	var sawHello, sawSnapshot, sawDelta bool
	for sc.Scan() && !(sawHello && sawSnapshot && sawDelta) {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: hello"):
			sawHello = true
		case strings.HasPrefix(line, "event: snapshot"):
			sawSnapshot = true
		case strings.HasPrefix(line, "event: delta"):
			sawDelta = true
		}
	}
	<-done
	if !sawHello || !sawSnapshot || !sawDelta {
		t.Fatalf("stream saw hello=%v snapshot=%v delta=%v", sawHello, sawSnapshot, sawDelta)
	}
}

// syncBuffer is a goroutine-safe writer for capturing run()'s output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitFor polls until the predicate holds or the deadline lapses.
func waitFor(t *testing.T, d time.Duration, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSigtermClosesRecording runs the real daemon lifecycle: fast pacing,
// a flight recording, then SIGTERM. The exit must be graceful (code 0) and
// the recording must carry its trailer — i.e. be replayable.
func TestSigtermClosesRecording(t *testing.T) {
	rec := filepath.Join(t.TempDir(), "run.rec")
	var stdout, stderr syncBuffer
	args := []string{"-listen", "127.0.0.1:0", "-record", rec,
		"-tick", "5ms", "-pace", "86400", "-accel", "30"}

	codec := make(chan int, 1)
	go func() { codec <- run(args, &stdout, &stderr) }()

	waitFor(t, 5*time.Second, "daemon to start pacing", func() bool {
		return strings.Contains(stdout.String(), "hall on")
	})
	time.Sleep(150 * time.Millisecond) // let a few paced steps record frames
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-codec:
		if code != 0 {
			t.Fatalf("run() = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down after SIGTERM")
	}

	f, err := os.Open(rec)
	if err != nil {
		t.Fatalf("recording missing after graceful shutdown: %v", err)
	}
	defer f.Close()
	res, err := flightrec.Replay(f)
	if err != nil {
		t.Fatalf("recording is not replayable: %v", err)
	}
	if res.Trailer == nil {
		t.Fatal("recording has no trailer — shutdown left it truncated")
	}
	if !res.Match() {
		t.Fatal("replayed fingerprint does not match the trailer")
	}
	if res.Summary.Frames() == 0 {
		t.Fatal("recording replayed to zero frames")
	}
	if !strings.Contains(stdout.String(), "recorded") {
		t.Fatalf("no recording summary printed:\n%s", stdout.String())
	}
}

// TestListenErrorStillClosesRecording occupies the port first: run() must
// fail fast AND still route through shutdown, deleting the empty recording
// instead of leaving a truncated file — the original bug.
func TestListenErrorStillClosesRecording(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	rec := filepath.Join(t.TempDir(), "run.rec")
	var stdout, stderr syncBuffer
	code := run([]string{"-listen", ln.Addr().String(), "-record", rec}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run() on an occupied port = %d, want 1", code)
	}
	if _, err := os.Stat(rec); !os.IsNotExist(err) {
		t.Fatalf("empty recording left behind after listen error (stat err %v)", err)
	}
}

// TestSigintWithoutRecording covers the unrecorded mode: SIGINT must still
// drain gracefully through the same shutdown path.
func TestSigintWithoutRecording(t *testing.T) {
	var stdout, stderr syncBuffer
	args := []string{"-listen", "127.0.0.1:0", "-tick", "5ms", "-pace", "86400", "-accel", "30"}
	codec := make(chan int, 1)
	go func() { codec <- run(args, &stdout, &stderr) }()

	waitFor(t, 5*time.Second, "daemon to start", func() bool {
		return strings.Contains(stdout.String(), "hall on")
	})
	time.Sleep(30 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-codec:
		if code != 0 {
			t.Fatalf("run() = %d, want 0\nstderr: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down after SIGINT")
	}
	if !strings.Contains(stdout.String(), "shutting down") {
		t.Fatalf("no shutdown message:\n%s", stdout.String())
	}
}
