package main

// maintctl watch — a terminal client for selfmaintd's streaming control
// plane. It performs the protocol-1 handshake against /v1/stream, prints
// the snapshot, then tails deltas; on a dropped connection the session
// token and last-seen sequence allow resuming without a re-snapshot
// (printed in the hello line, or automatic with -follow).

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

type watchOpts struct {
	addr   string
	topics string
	resume string
	last   uint64
	n      int
	raw    bool
	follow bool
}

func cmdWatch(args []string) {
	fs := flag.NewFlagSet("maintctl watch", flag.ExitOnError)
	var o watchOpts
	fs.StringVar(&o.addr, "addr", "127.0.0.1:7800", "selfmaintd address")
	fs.StringVar(&o.topics, "topics", "", "comma-separated topic filter (e.g. cp.ticket,sense.alert)")
	fs.StringVar(&o.resume, "resume", "", "session token from a previous hello")
	fs.Uint64Var(&o.last, "last", 0, "last processed sequence number (with -resume)")
	fs.IntVar(&o.n, "n", 0, "exit after N delta frames (0 = until interrupted)")
	fs.BoolVar(&o.raw, "raw", false, "print raw frame JSON instead of formatted lines")
	fs.BoolVar(&o.follow, "follow", false, "reconnect and resume automatically when the stream drops")
	fs.Parse(args)

	for {
		err := watchOnce(&o)
		if err == nil {
			return // -n satisfied
		}
		if !o.follow {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "maintctl: stream dropped:", err, "— resuming")
		time.Sleep(time.Second)
	}
}

// watchOnce runs one stream connection; it returns nil when the -n frame
// budget is exhausted and an error when the stream ends any other way.
// Resume state (session, last seq) is persisted into o for the next call.
func watchOnce(o *watchOpts) error {
	url := fmt.Sprintf("http://%s/v1/stream?client=maintctl&proto=1", o.addr)
	if o.topics != "" {
		url += "&topics=" + o.topics
	}
	if o.resume != "" {
		url += fmt.Sprintf("&resume=%s&last=%d", o.resume, o.last)
	}
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var event, data string
	seen := 0
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if event == "" {
				continue
			}
			printFrame(o, event, data)
			if event == "delta" {
				seen++
				if o.n > 0 && seen >= o.n {
					return nil
				}
			}
			event, data = "", ""
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return io.ErrUnexpectedEOF
}

func printFrame(o *watchOpts, event, data string) {
	if o.raw {
		fmt.Printf("%s %s\n", event, data)
	}
	switch event {
	case "hello":
		var h struct {
			Session string `json:"session"`
			Seq     uint64 `json:"seq"`
			Mode    string `json:"mode"`
		}
		if json.Unmarshal([]byte(data), &h) == nil {
			o.resume, o.last = h.Session, h.Seq
			if !o.raw {
				fmt.Printf("connected: session %s, %s at seq %d (resume with -resume %s -last N)\n",
					h.Session, h.Mode, h.Seq, h.Session)
			}
		}
	case "snapshot":
		var s struct {
			Seq   uint64                     `json:"seq"`
			State map[string]json.RawMessage `json:"state"`
		}
		if json.Unmarshal([]byte(data), &s) == nil && !o.raw {
			fmt.Printf("snapshot at seq %d: %d state topics\n", s.Seq, len(s.State))
		}
	case "delta":
		var d struct {
			Seq     uint64          `json:"seq"`
			At      string          `json:"at"`
			Topic   string          `json:"topic"`
			Key     string          `json:"key"`
			Delete  bool            `json:"delete"`
			Payload json.RawMessage `json:"payload"`
		}
		if json.Unmarshal([]byte(data), &d) != nil {
			return
		}
		o.last = d.Seq
		if o.raw {
			return
		}
		switch {
		case d.Delete:
			fmt.Printf("[%s] %s %s cleared\n", d.At, d.Topic, d.Key)
		case d.Key != "":
			fmt.Printf("[%s] %s %s %s\n", d.At, d.Topic, d.Key, d.Payload)
		default:
			fmt.Printf("[%s] %s %s\n", d.At, d.Topic, d.Payload)
		}
	case "drops":
		if !o.raw {
			fmt.Printf("backpressure: %s\n", data)
		}
	}
}
