package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/flightrec"
	"repro/selfmaint"
)

// cmdRecord simulates a cluster locally and streams its full event history
// to a flight recording. The run is deterministic: record twice with the
// same flags and the files are byte-identical; change the seed and `maintctl
// diff` pinpoints the first divergent frame.
func cmdRecord(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("o", "", "output recording file (required)")
	seed := fs.Uint64("seed", 1, "simulation seed")
	level := fs.Int("level", 3, "automation level (0-4)")
	days := fs.Int("days", 30, "simulated days")
	accel := fs.Float64("accel", 20, "fault acceleration factor")
	fs.Parse(args)
	if *out == "" {
		fatal(fmt.Errorf("record: -o FILE is required"))
	}
	if *level < 0 || *level > 4 {
		fatal(fmt.Errorf("record: level %d out of range 0-4", *level))
	}
	if *days <= 0 {
		fatal(fmt.Errorf("record: days must be positive"))
	}

	c, err := selfmaint.NewCluster(
		selfmaint.WithSeed(*seed),
		selfmaint.WithLevel(selfmaint.Level(*level)),
		selfmaint.WithRobots(),
		selfmaint.WithTechnicians(2),
		selfmaint.WithFaultAcceleration(*accel),
	)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	rec, err := c.RecordTo(f, map[string]string{
		"tool":  "maintctl",
		"seed":  fmt.Sprintf("%d", *seed),
		"level": fmt.Sprintf("L%d", *level),
		"days":  fmt.Sprintf("%d", *days),
		"accel": fmt.Sprintf("%g", *accel),
	}, 6*selfmaint.Hour)
	if err != nil {
		f.Close()
		fatal(err)
	}
	c.Run(selfmaint.Time(*days) * selfmaint.Day)
	sum, err := rec.Close()
	if err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("recorded %d frames to %s (fingerprint %016x)\n", sum.Frames(), *out, sum.Fingerprint())
}

// cmdReplay re-derives the run summary from a recording alone and verifies
// it against the fingerprint the live run stamped in the trailer. Exit 0 on
// match, 1 on mismatch or error.
func cmdReplay(args []string) {
	if len(args) != 1 {
		usage()
	}
	f, err := os.Open(args[0])
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	res, err := flightrec.Replay(f)
	if err != nil {
		fatal(err)
	}
	if res.Trailer == nil {
		fatal(fmt.Errorf("%s: no trailer — recording was interrupted", args[0]))
	}
	fmt.Printf("%d frames, %d metadata keys\n", res.Frames, len(res.Meta))
	fmt.Printf("recorded fingerprint %016x\n", res.Trailer.Fingerprint)
	fmt.Printf("replayed fingerprint %016x\n", res.Summary.Fingerprint())
	if !res.Match() {
		fatal(fmt.Errorf("MISMATCH: replay does not reproduce the recorded run"))
	}
	fmt.Println("match: replay reproduces the recorded run")
}

// cmdDiff streams two recordings in lockstep and reports the first
// divergent frame. Exit 0 when identical, 1 on divergence, 2 on error.
func cmdDiff(args []string) {
	if len(args) != 2 {
		usage()
	}
	a, err := os.Open(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "maintctl:", err)
		os.Exit(2)
	}
	defer a.Close()
	b, err := os.Open(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "maintctl:", err)
		os.Exit(2)
	}
	defer b.Close()
	d, err := flightrec.Diff(a, b)
	if err != nil {
		fmt.Fprintln(os.Stderr, "maintctl:", err)
		os.Exit(2)
	}
	if d == nil {
		fmt.Println("identical: recordings agree frame for frame")
		return
	}
	fmt.Println(d)
	os.Exit(1)
}
