// maintctl is the operator CLI for the robot control API served by robotd
// (or an embedded robotapi endpoint in selfmaintd), plus the flight-recorder
// workflow, which needs no daemon.
//
// Daemon subcommands:
//
//	maintctl -addr HOST:PORT caps
//	maintctl -addr HOST:PORT health
//	maintctl -addr HOST:PORT inject  LINK CAUSE
//	maintctl -addr HOST:PORT plan    LINK END ACTION
//	maintctl -addr HOST:PORT execute LINK END ACTION
//
// Flight-recorder subcommands (local, no daemon):
//
//	maintctl record -o FILE [-seed N] [-level N] [-days N] [-accel X]
//	maintctl replay FILE
//	maintctl diff   FILE1 FILE2
//
// Streaming control plane (against selfmaintd):
//
//	maintctl watch -addr HOST:PORT [-topics a,b] [-resume TOKEN -last N]
//
// LINK is a numeric link id (see health output), END is A or B, ACTION is
// reseat | clean | replace-xcvr, CAUSE is a fault cause name.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/robotapi"
	"repro/internal/topology"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "robotd address")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	// The flight-recorder subcommands run locally; dispatch them before
	// dialing any daemon.
	switch args[0] {
	case "record":
		cmdRecord(args[1:])
		return
	case "replay":
		cmdReplay(args[1:])
		return
	case "diff":
		cmdDiff(args[1:])
		return
	case "watch":
		cmdWatch(args[1:])
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c, err := robotapi.DialClient(ctx, *addr)
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	switch args[0] {
	case "caps":
		caps, err := c.Capabilities(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("actions: %s\n", strings.Join(caps.Actions, ", "))
		for _, u := range caps.Units {
			state := "busy"
			if u.Available {
				state = "available"
			}
			fmt.Printf("unit %-12s scope=%-5s at row %d rack %d  %s\n", u.Name, u.Scope, u.Row, u.Rack, state)
		}
	case "topo":
		raw, err := c.Topology(ctx)
		if err != nil {
			fatal(err)
		}
		net, err := topology.DecodeNetwork(bytes.NewReader(raw))
		if err != nil {
			fatal(err)
		}
		st := net.Stats()
		fmt.Printf("%s: %d devices (%d switches), %d links (%d fabric), %.0fG total\n",
			net.Name, st.Devices, st.Switches, st.Links, st.FabricLinks, st.TotalGbps)
		for _, l := range net.SwitchLinks() {
			fmt.Printf("  link %-3d %-40s %-4s %4.0fG\n", l.ID, l.Name(), l.Cable.Class, l.GbpsCap)
		}
	case "health":
		h, err := c.Health(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%d links: %d down, %d flapping\n", h.Links, len(h.Down), len(h.Flapping))
		for _, l := range h.Down {
			fmt.Println("  down:", l)
		}
		for _, l := range h.Flapping {
			fmt.Println("  flapping:", l)
		}
	case "inject":
		need(args, 3)
		if err := c.Inject(ctx, atoi(args[1]), args[2]); err != nil {
			fatal(err)
		}
		fmt.Println("fault injected")
	case "plan":
		need(args, 4)
		p, err := c.Plan(ctx, spec(args))
		if err != nil {
			fatal(err)
		}
		if !p.Feasible {
			fmt.Println("infeasible:", p.Reason)
			return
		}
		fmt.Printf("unit %s, estimated %.0fs\n", p.Unit, p.EstSeconds)
		fmt.Printf("will contact %d cable(s):\n", len(p.RiskNames))
		for _, n := range p.RiskNames {
			fmt.Println("  ", n)
		}
		fmt.Printf("tray mates: %d\n", p.TrayMates)
	case "execute":
		need(args, 4)
		r, err := c.Execute(ctx, spec(args))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("completed=%v fixed=%v needsHuman=%v stockout=%v in %.0fs (%d cascades), link now %s\n",
			r.Completed, r.Fixed, r.NeedsHuman, r.Stockout, r.Seconds, r.Cascades, r.LinkHealth)
		if r.Note != "" {
			fmt.Println("note:", r.Note)
		}
	default:
		usage()
	}
}

func spec(args []string) robotapi.TaskSpec {
	return robotapi.TaskSpec{Link: atoi(args[1]), End: args[2], Action: args[3]}
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func atoi(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil {
		fatal(fmt.Errorf("bad number %q", s))
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "maintctl:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: maintctl [-addr HOST:PORT] COMMAND
  caps                      list units and robot-capable actions
  topo                      dump the hall topology (fabric links with ids)
  health                    observable link health
  inject  LINK CAUSE        force a fault (demo)
  plan    LINK END ACTION   pre-motion report: contacted cables, duration
  execute LINK END ACTION   run the repair task
flight recorder (local, no daemon):
  record -o FILE [-seed N] [-level N] [-days N] [-accel X]
                            simulate a cluster and record the event stream
  replay FILE               replay a recording; verify the fingerprint
  diff   FILE1 FILE2        locate the first divergent frame of two recordings
streaming control plane:
  watch [-addr HOST:PORT] [-topics LIST] [-n N] [-follow] [-raw]
                            tail a live selfmaintd: snapshot, then deltas`)
	os.Exit(2)
}
