// experiments regenerates every table and figure of EXPERIMENTS.md.
//
//	experiments                  # full suite (accelerated year, 3 seeds), all cores
//	experiments -quick           # fast pass (small hall, 90 days, 2 seeds)
//	experiments -run T1,F4       # selected experiments only (unknown ids are an error)
//	experiments -csv DIR         # also write CSV files into DIR
//	experiments -parallel 4      # cap the simulation worker pool at 4
//	experiments -workers 4       # one worker count everywhere: the cell pool
//	                             # AND the F8 shard coordinator sweep ({1, N})
//	experiments -serial          # one worker, no goroutines (bit-identical to -parallel N)
//	experiments -bench-json PATH # write the BENCH perf artifact (timings, cells/sec, allocs)
//	experiments -cpuprofile F    # write a CPU profile of the suite run
//	experiments -memprofile F    # write a post-run heap profile (after GC)
//	experiments -record DIR      # also write flight recordings (R7 per cell, F8 per
//	                             # sweep point) into DIR
//	experiments -from-recording DIR # no simulation: regenerate the R7 table from the
//	                             # recordings in DIR and verify every other capture
//
// Every experiment decomposes into independent (experiment × level/policy
// × seed) simulation cells; the harness fans the cells across a worker
// pool and merges results in deterministic cell order, so output is
// byte-identical to a serial run at fixed seeds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"repro/internal/flightrec"
	"repro/internal/scenario"
)

func main() {
	var (
		quick     = flag.Bool("quick", false, "small hall, shorter runs")
		runs      = flag.String("run", "", "comma-separated experiment ids ("+strings.Join(scenario.ExperimentIDs(), ",")+"); empty = all")
		csv       = flag.String("csv", "", "directory to write CSV artifacts into")
		parallel  = flag.Int("parallel", 0, "simulation worker-pool size; 0 = all host cores")
		workersN  = flag.Int("workers", 0, "worker count for the cell pool AND the F8 shard coordinator (sweeps {1, N}); 0 = defaults")
		serial    = flag.Bool("serial", false, "run everything on one worker (escape hatch; same output)")
		benchJSON = flag.String("bench-json", "", "write a BENCH_experiments.json perf artifact to this path")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the suite run to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile (post-run, after GC) to this file")
		recordDir = flag.String("record", "", "directory to write flight recordings into (R7 per cell, F8 per sweep point)")
		fromDir   = flag.String("from-recording", "", "regenerate tables from the recordings in this directory; no simulation")
	)
	flag.Parse()

	fail := func(err error) {
		pprof.StopCPUProfile()
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}

	if *fromDir != "" {
		if *recordDir != "" {
			fail(fmt.Errorf("-record conflicts with -from-recording: one writes captures, the other consumes them"))
		}
		if err := fromRecordings(*fromDir); err != nil {
			fail(err)
		}
		return
	}

	// Validate worker flags up front, before any simulation runs: a bad
	// worker count discovered mid-suite throws the run away.
	if *parallel < 0 {
		fail(fmt.Errorf("-parallel %d: must be >= 0 (0 = all host cores)", *parallel))
	}
	if *workersN < 0 {
		fail(fmt.Errorf("-workers %d: must be >= 0 (0 = defaults)", *workersN))
	}
	if *workersN > 0 && *serial && *workersN != 1 {
		fail(fmt.Errorf("-workers %d conflicts with -serial (which pins one worker)", *workersN))
	}
	if *workersN > 0 && *parallel > 0 && *parallel != *workersN {
		fail(fmt.Errorf("-workers %d conflicts with -parallel %d: pick one", *workersN, *parallel))
	}

	// Validate profile destinations up front: -memprofile is only opened
	// after the whole suite has run, and discovering a typo in the path
	// then throws the run away.
	for _, p := range []struct{ flag, path string }{
		{"-cpuprofile", *cpuProf},
		{"-memprofile", *memProf},
	} {
		if p.path == "" {
			continue
		}
		dir := filepath.Dir(p.path)
		if info, err := os.Stat(dir); err != nil {
			fail(fmt.Errorf("%s %s: directory %q does not exist", p.flag, p.path, dir))
		} else if !info.IsDir() {
			fail(fmt.Errorf("%s %s: %q is not a directory", p.flag, p.path, dir))
		}
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	var ids []string
	for _, id := range strings.Split(*runs, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	exps, err := scenario.Select(ids)
	if err != nil {
		fail(err)
	}

	workers := *parallel
	if *workersN > 0 {
		workers = *workersN
	}
	if *serial {
		workers = 1
	}
	p := scenario.DefaultSuiteParams(*quick)
	if *recordDir != "" {
		if err := os.MkdirAll(*recordDir, 0o755); err != nil {
			fail(err)
		}
		p.Repair.RecordDir = *recordDir
		p.Fleet.RecordDir = *recordDir
	}
	if *workersN > 0 {
		// One knob everywhere: the F8 shard-coordinator sweep becomes
		// {1, N} — the serial baseline stays so the fingerprint equality
		// the experiment enforces remains a real differential check.
		p.Fleet.Workers = []int{1, *workersN}
	}
	r := scenario.NewRunner(workers)
	arts, bench, err := scenario.RunSuite(r, exps, p)
	if err != nil {
		fail(err)
	}

	for _, a := range arts {
		fmt.Print(a.Render())
		if *csv != "" {
			if err := writeCSV(*csv, a); err != nil {
				fail(fmt.Errorf("%s: %w", a.ID, err))
			}
		}
	}
	if *benchJSON != "" {
		if err := writeBench(*benchJSON, bench); err != nil {
			fail(err)
		}
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fail(err)
		}
		runtime.GC() // report live heap, not transient garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
}

// fromRecordings regenerates what can be regenerated from a capture
// directory without simulating: the R7 table is rebuilt from its per-cell
// recordings (byte-identical to the live render), and every other recording
// is replayed and verified against its trailer fingerprint.
func fromRecordings(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var r7Files, others []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".fr") {
			continue
		}
		if strings.HasPrefix(name, "R7-") {
			r7Files = append(r7Files, name)
		} else {
			others = append(others, name)
		}
	}
	sort.Strings(others)
	if len(r7Files) == 0 && len(others) == 0 {
		return fmt.Errorf("no .fr recordings in %s (run `experiments -record %s` first)", dir, dir)
	}
	if len(r7Files) > 0 {
		tab, err := scenario.R7FromRecordings(dir)
		if err != nil {
			return err
		}
		fmt.Print(scenario.Artifact{ID: "R7", Tab: tab}.Render())
	}
	for _, name := range others {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		res, err := flightrec.Replay(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if res.Trailer == nil {
			return fmt.Errorf("%s: no trailer — recording was interrupted", name)
		}
		if !res.Match() {
			return fmt.Errorf("%s: replay fingerprint %016x != recorded %016x",
				name, res.Summary.Fingerprint(), res.Trailer.Fingerprint)
		}
		fmt.Printf("%s: %d frames, fingerprint %016x, replay verified\n", name, res.Frames, res.Trailer.Fingerprint)
	}
	return nil
}

func writeCSV(dir string, a scenario.Artifact) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if a.Tab != nil {
		if err := os.WriteFile(filepath.Join(dir, a.ID+"_table.csv"), []byte(a.Tab.CSV()), 0o644); err != nil {
			return err
		}
	}
	if a.Fig != nil {
		if err := os.WriteFile(filepath.Join(dir, a.ID+"_figure.csv"), []byte(a.Fig.CSV()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func writeBench(path string, b *scenario.Bench) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
