// experiments regenerates every table and figure of EXPERIMENTS.md.
//
//	experiments              # run the full suite (accelerated year, 3 seeds)
//	experiments -quick       # fast pass (small hall, 90 days, 2 seeds)
//	experiments -run T1,F4   # selected experiments only
//	experiments -csv DIR     # also write CSV files into DIR
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/metrics"
	"repro/internal/scenario"
)

type artifact struct {
	name string
	tab  *metrics.Table
	fig  *metrics.Figure
}

func main() {
	var (
		quick = flag.Bool("quick", false, "small hall, shorter runs")
		runs  = flag.String("run", "", "comma-separated experiment ids (T1,F1,T2,F2,F3,T3,T4,T5,F4,F5,T6,F6,T7,T8,A1,A2); empty = all")
		csv   = flag.String("csv", "", "directory to write CSV artifacts into")
	)
	flag.Parse()

	params := scenario.DefaultRepairParams()
	if *quick {
		params = scenario.QuickRepairParams()
	}
	selected := map[string]bool{}
	for _, id := range strings.Split(*runs, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			selected[id] = true
		}
	}
	want := func(ids ...string) bool {
		if len(selected) == 0 {
			return true
		}
		for _, id := range ids {
			if selected[id] {
				return true
			}
		}
		return false
	}

	var out []artifact
	fail := func(id string, err error) {
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
		os.Exit(1)
	}

	if want("T1", "F1") {
		tab, fig, err := scenario.T1ServiceWindow(params)
		if err != nil {
			fail("T1/F1", err)
		}
		out = append(out, artifact{"T1", tab, nil}, artifact{"F1", nil, fig})
	}
	if want("T2") {
		tab, err := scenario.T2Escalation(params)
		if err != nil {
			fail("T2", err)
		}
		out = append(out, artifact{"T2", tab, nil})
	}
	if want("F2") {
		fig, tab, err := scenario.F2Availability(params)
		if err != nil {
			fail("F2", err)
		}
		out = append(out, artifact{"F2", tab, fig})
	}
	if want("F3") {
		tab, fig, err := scenario.F3Cascades(params)
		if err != nil {
			fail("F3", err)
		}
		out = append(out, artifact{"F3", tab, fig})
	}
	if want("T3") {
		tab, err := scenario.T3Proactive(params)
		if err != nil {
			fail("T3", err)
		}
		out = append(out, artifact{"T3", tab, nil})
	}
	if want("T4") {
		tab, err := scenario.T4Predictor(params)
		if err != nil {
			fail("T4", err)
		}
		out = append(out, artifact{"T4", tab, nil})
	}
	if want("T5") {
		tab, err := scenario.T5RightProvisioning(params)
		if err != nil {
			fail("T5", err)
		}
		out = append(out, artifact{"T5", tab, nil})
	}
	if want("F4") {
		fig, tab, err := scenario.F4Maintainability()
		if err != nil {
			fail("F4", err)
		}
		out = append(out, artifact{"F4", tab, fig})
	}
	if want("F5") {
		fig, tab, err := scenario.F5FleetSizing(params)
		if err != nil {
			fail("F5", err)
		}
		out = append(out, artifact{"F5", tab, fig})
	}
	if want("T6") {
		reps := 200
		if *quick {
			reps = 60
		}
		tab, err := scenario.T6RobotTimings(reps, 5)
		if err != nil {
			fail("T6", err)
		}
		out = append(out, artifact{"T6", tab, nil})
	}
	if want("F6") {
		fig, err := scenario.F6FlapLatency(3)
		if err != nil {
			fail("F6", err)
		}
		out = append(out, artifact{"F6", nil, fig})
	}
	if want("T7") {
		tab, err := scenario.T7AICluster(params)
		if err != nil {
			fail("T7", err)
		}
		out = append(out, artifact{"T7", tab, nil})
	}
	if want("A1") {
		tab, err := scenario.A1RepeatWindow(params)
		if err != nil {
			fail("A1", err)
		}
		out = append(out, artifact{"A1", tab, nil})
	}
	if want("A2") {
		tab, err := scenario.A2MobilityScope(params)
		if err != nil {
			fail("A2", err)
		}
		out = append(out, artifact{"A2", tab, nil})
	}
	if want("T8") {
		tasks := 400
		if *quick {
			tasks = 120
		}
		tab, err := scenario.T8Diversity(tasks, 7)
		if err != nil {
			fail("T8", err)
		}
		out = append(out, artifact{"T8", tab, nil})
	}

	for _, a := range out {
		fmt.Printf("\n########## %s ##########\n", a.name)
		if a.tab != nil {
			fmt.Println(a.tab)
		}
		if a.fig != nil {
			fmt.Println(a.fig)
		}
		if *csv != "" {
			if err := writeCSV(*csv, a); err != nil {
				fail(a.name, err)
			}
		}
	}
	if len(out) == 0 {
		fmt.Fprintln(os.Stderr, "experiments: nothing selected")
		os.Exit(2)
	}
}

func writeCSV(dir string, a artifact) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if a.tab != nil {
		if err := os.WriteFile(filepath.Join(dir, a.name+"_table.csv"), []byte(a.tab.CSV()), 0o644); err != nil {
			return err
		}
	}
	if a.fig != nil {
		if err := os.WriteFile(filepath.Join(dir, a.name+"_figure.csv"), []byte(a.fig.CSV()), 0o644); err != nil {
			return err
		}
	}
	return nil
}
