// dcsim runs a self-maintaining datacenter simulation from the command
// line and prints the maintenance report: the fastest way to see the
// framework end to end.
//
// Usage:
//
//	dcsim -topology leafspine -level 3 -days 365 -accel 20 -robots -techs 2
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/selfmaint"
)

func main() {
	var (
		topo   = flag.String("topology", "leafspine", "topology: leafspine, fattree, jellyfish, xpander, aicluster")
		level  = flag.Int("level", 3, "automation level 0-4 (SAE-style, paper §2.1)")
		days   = flag.Int("days", 365, "virtual days to simulate")
		seed   = flag.Uint64("seed", 1, "random seed (runs are reproducible per seed)")
		accel  = flag.Float64("accel", 20, "fault acceleration factor")
		robots = flag.Bool("robots", true, "deploy one robot unit per row")
		techs  = flag.Int("techs", 2, "human technicians on staff")
		log    = flag.Bool("log", false, "print the full ticket log")
	)
	flag.Parse()

	builders := map[string]func() (*selfmaint.Network, error){
		"leafspine": selfmaint.LeafSpine(16, 4, 4),
		"fattree":   selfmaint.FatTree(4),
		"jellyfish": selfmaint.Jellyfish(20, 8, 4, *seed),
		"xpander":   selfmaint.Xpander(9, 2, 4, *seed),
		"aicluster": selfmaint.AICluster(64, 8),
	}
	build, ok := builders[*topo]
	if !ok {
		fmt.Fprintf(os.Stderr, "dcsim: unknown topology %q\n", *topo)
		os.Exit(2)
	}
	if *level < 0 || *level > 4 {
		fmt.Fprintln(os.Stderr, "dcsim: level must be 0-4")
		os.Exit(2)
	}

	opts := []selfmaint.Option{
		selfmaint.WithTopology(build),
		selfmaint.WithSeed(*seed),
		selfmaint.WithLevel(selfmaint.Level(*level)),
		selfmaint.WithTechnicians(*techs),
		selfmaint.WithFaultAcceleration(*accel),
	}
	if *robots {
		opts = append(opts, selfmaint.WithRobots())
	}
	c, err := selfmaint.NewCluster(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcsim:", err)
		os.Exit(1)
	}

	st := c.Network().Stats()
	fmt.Printf("simulating %s: %d devices, %d links (%d fabric), L%d, %d days at x%g aging, seed %d\n",
		*topo, st.Devices, st.Links, st.FabricLinks, *level, *days, *accel, *seed)

	c.Run(selfmaint.Time(*days) * selfmaint.Day)

	fmt.Print(c.Report())
	if *log {
		fmt.Println("\nticket log:")
		for _, line := range c.TicketLog() {
			fmt.Println(" ", line)
		}
	}
}
