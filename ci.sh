#!/bin/sh
# CI gate: build, vet, formatting, and the full test suite under the race
# detector. Run from the repository root (or via `make ci`).
set -eu

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== selfmaintlint (-stale; fact cache feeds the bench-diff stage)"
make lint

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go test -race"
go test -race ./...

echo "== shard-diff (sharded == single-engine, all worker counts)"
make shard-diff

echo "== replay-diff (flight recorder: record == replay, diff finds divergence)"
make replay-diff

echo "== cp-smoke (1k stream watchers: bounded heap, byte-identical transcript)"
make cp-smoke

echo "== bench smoke (routing hot paths, 1 iteration)"
make bench-quick

echo "== bench-diff (quick suite vs committed BENCH baseline, 25% gate)"
make bench-diff

echo "== experiments smoke (quick suite, parallel)"
make experiments-quick

echo "CI green"
