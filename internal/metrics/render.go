package metrics

import (
	"fmt"
	"strings"
)

// Table is a plain-text experiment table: the harness prints one per paper
// table.
type Table struct {
	Title string
	Cols  []string
	Rows  [][]string
	Notes []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Cols)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes for cells
// containing commas).
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Cols)
	for _, r := range t.Rows {
		writeCSVRow(&b, r)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// Series is one line of a figure.
type Series struct {
	Name string
	X, Y []float64
}

// Figure is a plain-text experiment figure: named series over a shared
// axis, rendered as a data listing plus a coarse ASCII plot.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Add appends a series.
func (f *Figure) Add(name string, x, y []float64) {
	f.Series = append(f.Series, Series{Name: name, X: x, Y: y})
}

// String renders the figure: per-series data columns followed by an ASCII
// sketch of the first series for quick visual shape checks.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", f.Title)
	fmt.Fprintf(&b, "x=%s, y=%s\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "-- %s --\n", s.Name)
		for i := range s.X {
			fmt.Fprintf(&b, "  %12.5g  %12.5g\n", s.X[i], s.Y[i])
		}
	}
	if sketch := f.sketch(); sketch != "" {
		b.WriteString(sketch)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// CSV renders all series as long-form rows: series,x,y.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString("series,x,y\n")
	for _, s := range f.Series {
		for i := range s.X {
			fmt.Fprintf(&b, "%s,%g,%g\n", s.Name, s.X[i], s.Y[i])
		}
	}
	return b.String()
}

// sketch draws a coarse ASCII plot of all series on one 60x12 canvas.
func (f *Figure) sketch() string {
	const w, h = 60, 12
	var xmin, xmax, ymin, ymax float64
	first := true
	for _, s := range f.Series {
		for i := range s.X {
			if first {
				xmin, xmax, ymin, ymax = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			xmin = min(xmin, s.X[i])
			xmax = max(xmax, s.X[i])
			ymin = min(ymin, s.Y[i])
			ymax = max(ymax, s.Y[i])
		}
	}
	if first || xmax == xmin {
		return ""
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	marks := "*o+x#@%&"
	for si, s := range f.Series {
		m := marks[si%len(marks)]
		for i := range s.X {
			cx := int((s.X[i] - xmin) / (xmax - xmin) * float64(w-1))
			cy := int((s.Y[i] - ymin) / (ymax - ymin) * float64(h-1))
			row := h - 1 - cy
			if row >= 0 && row < h && cx >= 0 && cx < w {
				grid[row][cx] = m
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  %.4g\n", ymax)
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  %.4g %s %.4g -> %.4g\n", ymin, strings.Repeat("-", 20), xmin, xmax)
	legend := make([]string, 0, len(f.Series))
	for si, s := range f.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", marks[si%len(marks)], s.Name))
	}
	fmt.Fprintf(&b, "  legend: %s\n", strings.Join(legend, "  "))
	return b.String()
}
