package metrics

import (
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/topology"
)

// StepIntegrator integrates a piecewise-constant signal over virtual time:
// Observe(t, v) records that the signal took value v from t onward. It is
// the availability accountant: feed it demand-satisfaction after every
// state change and read back the time average.
type StepIntegrator struct {
	first   sim.Time
	last    sim.Time
	current float64
	area    float64
	started bool
}

// Observe records a new value taking effect at t. Observations must be
// time-ordered.
func (s *StepIntegrator) Observe(t sim.Time, v float64) {
	if s.started {
		s.area += s.current * float64(t-s.last)
	} else {
		s.started = true
		s.first = t
	}
	s.last = t
	s.current = v
}

// Average returns the time-weighted mean of the signal over [first
// observation, t]. If no time has elapsed it returns the current value.
func (s *StepIntegrator) Average(t sim.Time) float64 {
	if !s.started || t <= s.first {
		return s.current
	}
	total := s.area + s.current*float64(t-s.last)
	return total / float64(t-s.first)
}

// HealthLedger accumulates per-link time in each observable health state.
// Subscribe it to the fault injector; call Finish before reading.
type HealthLedger struct {
	eng   *sim.Engine
	state []faults.Health
	since []sim.Time
	acc   [][3]sim.Time // per link, per health state
}

// NewHealthLedger creates a ledger for the network's links, all assumed
// healthy at the current instant.
func NewHealthLedger(eng *sim.Engine, net *topology.Network) *HealthLedger {
	hl := &HealthLedger{
		eng:   eng,
		state: make([]faults.Health, len(net.Links)),
		since: make([]sim.Time, len(net.Links)),
		acc:   make([][3]sim.Time, len(net.Links)),
	}
	now := eng.Now()
	for i := range hl.since {
		hl.since[i] = now
	}
	return hl
}

// LinkStateChanged implements faults.Listener.
func (hl *HealthLedger) LinkStateChanged(l *topology.Link, from, to faults.Health, at sim.Time) {
	id := l.ID
	hl.acc[id][hl.state[id]] += at - hl.since[id]
	hl.state[id] = to
	hl.since[id] = at
}

// LinkFlapped implements faults.Listener (flaps do not change time
// accounting).
func (hl *HealthLedger) LinkFlapped(*topology.Link, sim.Time, float64, sim.Time) {}

// Durations returns the time the link has spent in each state up to now.
func (hl *HealthLedger) Durations(id topology.LinkID) (healthy, flapping, down sim.Time) {
	acc := hl.acc[id]
	acc[hl.state[id]] += hl.eng.Now() - hl.since[id]
	return acc[faults.Healthy], acc[faults.Flapping], acc[faults.Down]
}

// Fleet sums durations across all links.
func (hl *HealthLedger) Fleet() (healthy, flapping, down sim.Time) {
	for id := range hl.acc {
		h, f, d := hl.Durations(topology.LinkID(id))
		healthy += h
		flapping += f
		down += d
	}
	return healthy, flapping, down
}

// FleetAvailability returns the fraction of link-time spent fully healthy,
// and the "nines" convenience formats.
func (hl *HealthLedger) FleetAvailability() float64 {
	h, f, d := hl.Fleet()
	total := h + f + d
	if total == 0 {
		return 1
	}
	return float64(h) / float64(total)
}

// DownLinkHours returns the fleet-wide failed-link-hours, the paper's cost
// unit for the AI-cluster argument.
func (hl *HealthLedger) DownLinkHours() float64 {
	_, _, d := hl.Fleet()
	return d.Duration().Hours()
}

// DegradedLinkHours returns fleet-wide flapping-link-hours.
func (hl *HealthLedger) DegradedLinkHours() float64 {
	_, f, _ := hl.Fleet()
	return f.Duration().Hours()
}
