package metrics

import (
	"math"
	"math/rand/v2"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestWelford(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.N() != 0 {
		t.Fatal("zero value not neutral")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 || w.Mean() != 5 {
		t.Fatalf("mean = %v n = %d", w.Mean(), w.N())
	}
	if math.Abs(w.Var()-32.0/7) > 1e-12 {
		t.Fatalf("var = %v", w.Var())
	}
	if w.String() == "" {
		t.Error("string")
	}
}

// Property: Welford matches the naive two-pass computation.
func TestWelfordMatchesNaiveProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		var sum float64
		for _, r := range raw {
			w.Add(float64(r))
			sum += float64(r)
		}
		mean := sum / float64(len(raw))
		var ss float64
		for _, r := range raw {
			d := float64(r) - mean
			ss += d * d
		}
		variance := ss / float64(len(raw)-1)
		return math.Abs(w.Mean()-mean) < 1e-9*(1+math.Abs(mean)) &&
			math.Abs(w.Var()-variance) < 1e-6*(1+variance)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not neutral")
	}
	for i := 100; i >= 1; i-- {
		h.Add(float64(i))
	}
	if h.N() != 100 {
		t.Fatal("N")
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("q1 = %v", q)
	}
	if q := h.Quantile(0.5); math.Abs(q-50) > 1 {
		t.Fatalf("median = %v", q)
	}
	if h.Max() != 100 {
		t.Fatalf("max = %v", h.Max())
	}
	if math.Abs(h.Mean()-50.5) > 1e-9 {
		t.Fatalf("mean = %v", h.Mean())
	}
	xs, fs := h.CDF(11)
	if len(xs) != 11 || fs[0] != 0 || fs[10] != 1 {
		t.Fatalf("cdf: %v %v", xs, fs)
	}
	if !sort.Float64sAreSorted(xs) {
		t.Fatal("cdf x not monotone")
	}
	// Max on an unsorted histogram branch.
	var h2 Histogram
	h2.Add(3)
	h2.Add(9)
	h2.Add(1)
	if h2.Max() != 9 {
		t.Fatal("unsorted max")
	}
}

// TestNearestRankSmallSamples pins the nearest-rank definition
// (ceil(q*n)-1, clamped) on the small sample sizes where a truncating
// index (int(q*(n-1))) visibly biases high quantiles low: p95 of two
// samples must be the maximum, not the minimum.
func TestNearestRankSmallSamples(t *testing.T) {
	cases := []struct {
		vals []float64
		q    float64
		want float64
	}{
		// n=1: every quantile is the single sample.
		{[]float64{7}, 0, 7},
		{[]float64{7}, 0.5, 7},
		{[]float64{7}, 0.95, 7},
		{[]float64{7}, 1, 7},
		// n=2: median is the lower sample (rank ceil(1)=1); p95 and max
		// are the upper one.
		{[]float64{10, 20}, 0, 10},
		{[]float64{10, 20}, 0.5, 10},
		{[]float64{10, 20}, 0.95, 20},
		{[]float64{10, 20}, 1, 20},
		// n=3: median is the middle sample.
		{[]float64{1, 5, 9}, 0, 1},
		{[]float64{1, 5, 9}, 0.5, 5},
		{[]float64{1, 5, 9}, 0.95, 9},
		{[]float64{1, 5, 9}, 1, 9},
		// Exact rank boundary with a binary-float product:
		// 0.95*20 = 19.000000000000004 must still pick rank 19 (the
		// 19th of 20 sorted samples), not clamp to the maximum.
		{seq(20), 0.95, 19},
		{seq(20), 0.5, 10},
	}
	for _, c := range cases {
		var h Histogram
		for _, v := range c.vals {
			h.Add(v)
		}
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("n=%d q=%v: got %v, want %v", len(c.vals), c.q, got, c.want)
		}
	}
}

func seq(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i + 1)
	}
	return out
}

// TestP2SmallSampleFallback: below five samples P2 must report the same
// nearest-rank quantile the exact histogram would.
func TestP2SmallSampleFallback(t *testing.T) {
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		p := NewP2(q)
		var h Histogram
		for _, x := range []float64{42, 3, 17} {
			p.Add(x)
			h.Add(x)
		}
		if got, want := p.Value(), h.Quantile(q); got != want {
			t.Errorf("q=%v: p2 fallback %v, histogram %v", q, got, want)
		}
	}
	// Two samples: a high quantile must pick the upper sample.
	p := NewP2(0.95)
	p.Add(10)
	p.Add(20)
	if v := p.Value(); v != 20 {
		t.Fatalf("p95 of {10,20} = %v, want 20", v)
	}
}

func TestP2AgainstExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, q := range []float64{0.5, 0.9, 0.99} {
		p := NewP2(q)
		var h Histogram
		for i := 0; i < 50000; i++ {
			x := rng.ExpFloat64() * 10
			p.Add(x)
			h.Add(x)
		}
		exact := h.Quantile(q)
		got := p.Value()
		if math.Abs(got-exact)/exact > 0.08 {
			t.Fatalf("q=%v: p2=%v exact=%v", q, got, exact)
		}
		if p.N() != 50000 {
			t.Fatal("N")
		}
	}
}

func TestP2SmallSamples(t *testing.T) {
	p := NewP2(0.5)
	if p.Value() != 0 {
		t.Fatal("empty estimator")
	}
	p.Add(5)
	p.Add(1)
	p.Add(9)
	if v := p.Value(); v != 5 {
		t.Fatalf("3-sample median = %v", v)
	}
}

func TestStepIntegrator(t *testing.T) {
	var s StepIntegrator
	if s.Average(sim.Hour) != 0 {
		t.Fatal("unstarted average")
	}
	s.Observe(0, 1.0)
	s.Observe(6*sim.Hour, 0.5)
	// 6h at 1.0 + 6h at 0.5 = 0.75 average over 12h.
	if got := s.Average(12 * sim.Hour); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("average = %v", got)
	}
	// At the first instant, returns current value.
	var s2 StepIntegrator
	s2.Observe(sim.Hour, 0.9)
	if s2.Average(sim.Hour) != 0.9 {
		t.Fatal("zero-span average")
	}
}

func TestHealthLedger(t *testing.T) {
	n, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 1, Uplinks: 1, FabricGbps: 400, HostGbps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(1)
	hl := NewHealthLedger(eng, n)
	l := n.SwitchLinks()[0]

	eng.Schedule(2*sim.Hour, "down", func() {
		hl.LinkStateChanged(l, faults.Healthy, faults.Down, eng.Now())
	})
	eng.Schedule(5*sim.Hour, "up", func() {
		hl.LinkStateChanged(l, faults.Down, faults.Flapping, eng.Now())
	})
	eng.Schedule(6*sim.Hour, "healthy", func() {
		hl.LinkStateChanged(l, faults.Flapping, faults.Healthy, eng.Now())
	})
	eng.RunUntil(10 * sim.Hour)

	h, f, d := hl.Durations(l.ID)
	if h != 6*sim.Hour || f != sim.Hour || d != 3*sim.Hour {
		t.Fatalf("durations: h=%v f=%v d=%v", h, f, d)
	}
	if hl.DownLinkHours() != 3 {
		t.Fatalf("down link-hours = %v", hl.DownLinkHours())
	}
	if hl.DegradedLinkHours() != 1 {
		t.Fatalf("degraded link-hours = %v", hl.DegradedLinkHours())
	}
	av := hl.FleetAvailability()
	links := float64(len(n.Links))
	want := (links*10 - 4) / (links * 10)
	if math.Abs(av-want) > 1e-9 {
		t.Fatalf("fleet availability = %v, want %v", av, want)
	}
	// Untouched link is fully healthy.
	h2, f2, d2 := hl.Durations(n.Links[0].ID) // host link, never transitioned
	if h2 != 10*sim.Hour || f2 != 0 || d2 != 0 {
		t.Fatalf("untouched link: %v %v %v", h2, f2, d2)
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "T1", Cols: []string{"policy", "p99 (h)", "note"}}
	tb.AddRow("human", 72.25, "baseline")
	tb.AddRow("robot,L3", 0.25, `says "fast"`)
	tb.Notes = append(tb.Notes, "3 seeds")
	out := tb.String()
	if !strings.Contains(out, "T1") || !strings.Contains(out, "human") {
		t.Fatalf("table output:\n%s", out)
	}
	csv := tb.CSV()
	if !strings.Contains(csv, `"robot,L3"`) {
		t.Fatalf("csv quoting:\n%s", csv)
	}
	if !strings.Contains(csv, `"says ""fast"""`) {
		t.Fatalf("csv escaping:\n%s", csv)
	}
}

func TestFigureRendering(t *testing.T) {
	var f Figure
	f.Title = "F1"
	f.XLabel = "hours"
	f.YLabel = "CDF"
	f.Add("human", []float64{1, 10, 100}, []float64{0.1, 0.5, 1})
	f.Add("robot", []float64{0.1, 0.5, 1}, []float64{0.3, 0.9, 1})
	out := f.String()
	if !strings.Contains(out, "F1") || !strings.Contains(out, "legend") {
		t.Fatalf("figure output:\n%s", out)
	}
	csv := f.CSV()
	if !strings.Contains(csv, "human,1,0.1") {
		t.Fatalf("figure csv:\n%s", csv)
	}
	// Degenerate figures render without a sketch but don't crash.
	var g Figure
	g.Title = "empty"
	if !strings.Contains(g.String(), "empty") {
		t.Fatal("empty figure")
	}
	var one Figure
	one.Add("pt", []float64{1}, []float64{1})
	_ = one.String()
	var flat Figure
	flat.Add("flat", []float64{1, 2}, []float64{3, 3})
	if !strings.Contains(flat.String(), "flat") {
		t.Fatal("flat figure")
	}
}
