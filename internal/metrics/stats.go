// Package metrics provides the measurement layer of the framework:
// streaming statistics (Welford accumulators, exact and P² percentile
// estimators), time-integrated ledgers for availability accounting, and
// plain-text table/figure renderers used by the experiment harness.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Welford is a numerically stable streaming mean/variance accumulator.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates a sample.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the sample count.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 with <2 samples).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stdev returns the sample standard deviation.
func (w *Welford) Stdev() float64 { return math.Sqrt(w.Var()) }

// String renders "mean ± stdev (n=N)".
func (w *Welford) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", w.Mean(), w.Stdev(), w.n)
}

// Histogram collects samples for exact quantiles. It is intended for
// experiment-scale data (up to millions of points); use P2 for unbounded
// streams.
type Histogram struct {
	vals   []float64
	sorted bool
}

// Add appends a sample.
func (h *Histogram) Add(x float64) {
	h.vals = append(h.vals, x)
	h.sorted = false
}

// N returns the sample count.
func (h *Histogram) N() int { return len(h.vals) }

// Quantile returns the q-quantile (q in [0,1]) by nearest-rank, or 0 with
// no samples.
func (h *Histogram) Quantile(q float64) float64 {
	if len(h.vals) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.vals)
		h.sorted = true
	}
	return h.vals[nearestRank(q, len(h.vals))]
}

// nearestRank returns the 0-based index of the nearest-rank q-quantile of
// n sorted samples: ceil(q*n)-1, clamped to [0, n-1]. Truncating instead
// (int(q*(n-1))) biases high quantiles low on small samples — p95 of two
// samples would return the minimum. The epsilon absorbs binary-float
// artifacts like 0.95*20 = 19.000000000000004.
func nearestRank(q float64, n int) int {
	idx := int(math.Ceil(q*float64(n)-1e-9)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 {
	if len(h.vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range h.vals {
		s += v
	}
	return s / float64(len(h.vals))
}

// Max returns the largest sample (0 with no samples).
func (h *Histogram) Max() float64 {
	if len(h.vals) == 0 {
		return 0
	}
	if h.sorted {
		return h.vals[len(h.vals)-1]
	}
	m := h.vals[0]
	for _, v := range h.vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// CDF returns (x, F(x)) pairs at n evenly spaced quantiles, suitable for
// plotting a CDF figure.
func (h *Histogram) CDF(n int) (xs, fs []float64) {
	if n < 2 {
		n = 2
	}
	xs = make([]float64, n)
	fs = make([]float64, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		xs[i] = h.Quantile(q)
		fs[i] = q
	}
	return xs, fs
}

// P2 is the Jain–Chlamtac P² streaming quantile estimator: constant memory,
// one pass, no sorting. It tracks a single quantile.
type P2 struct {
	q       float64
	n       int
	heights [5]float64
	pos     [5]float64
	want    [5]float64
	inc     [5]float64
	initial []float64
}

// NewP2 creates an estimator for quantile q in (0,1).
func NewP2(q float64) *P2 {
	p := &P2{q: q}
	p.inc = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p
}

// Add incorporates a sample.
func (p *P2) Add(x float64) {
	if p.n < 5 {
		p.initial = append(p.initial, x)
		p.n++
		if p.n == 5 {
			sort.Float64s(p.initial)
			for i := 0; i < 5; i++ {
				p.heights[i] = p.initial[i]
				p.pos[i] = float64(i + 1)
			}
			p.want = [5]float64{1, 1 + 2*p.q, 1 + 4*p.q, 3 + 2*p.q, 5}
		}
		return
	}
	p.n++
	// Find cell k.
	var k int
	switch {
	case x < p.heights[0]:
		p.heights[0] = x
		k = 0
	case x >= p.heights[4]:
		p.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < p.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := 0; i < 5; i++ {
		p.want[i] += p.inc[i]
	}
	// Adjust interior markers.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := p.parabolic(i, sign)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, sign)
			}
			p.pos[i] += sign
		}
	}
}

func (p *P2) parabolic(i int, d float64) float64 {
	return p.heights[i] + d/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+d)*(p.heights[i+1]-p.heights[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-d)*(p.heights[i]-p.heights[i-1])/(p.pos[i]-p.pos[i-1]))
}

func (p *P2) linear(i int, d float64) float64 {
	di := int(d)
	return p.heights[i] + d*(p.heights[i+di]-p.heights[i])/(p.pos[i+di]-p.pos[i])
}

// Value returns the current quantile estimate. With fewer than five samples
// it falls back to the exact small-sample quantile.
func (p *P2) Value() float64 {
	if p.n == 0 {
		return 0
	}
	if p.n < 5 {
		tmp := append([]float64(nil), p.initial...)
		sort.Float64s(tmp)
		return tmp[nearestRank(p.q, len(tmp))]
	}
	return p.heights[2]
}

// N returns the number of samples seen.
func (p *P2) N() int { return p.n }
