package maintindex

import (
	"testing"

	"repro/internal/topology"
)

func build(t *testing.T, kind string) *topology.Network {
	t.Helper()
	var n *topology.Network
	var err error
	switch kind {
	case "fattree":
		n, err = topology.NewFatTree(topology.DefaultFatTree(4))
	case "leafspine":
		n, err = topology.NewLeafSpine(topology.LeafSpineConfig{
			Leaves: 8, Spines: 4, HostsPerLeaf: 8, Uplinks: 1,
			FabricGbps: 400, HostGbps: 100,
		})
	case "jellyfish":
		cfg := topology.DefaultJellyfish()
		cfg.Switches = 24
		cfg.FabricDegree = 6
		cfg.HostsPerSwitch = 3
		n, err = topology.NewJellyfish(cfg)
	case "xpander":
		cfg := topology.DefaultXpander()
		cfg.Degree = 6
		cfg.Lift = 4
		cfg.HostsPerSwitch = 3
		n, err = topology.NewXpander(cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestComponentsInRange(t *testing.T) {
	for _, kind := range []string{"fattree", "leafspine", "jellyfish", "xpander"} {
		rep := Evaluate(build(t, kind), DefaultConfig())
		c := rep.Components
		for name, v := range map[string]float64{
			"locality": c.Locality, "clarity": c.PortClarity, "tray": c.TrayHeadroom,
			"runs": c.ShortRuns, "drain": c.DrainTolerance, "par": c.Parallelism,
			"media": c.MediaSimplicity,
		} {
			if v < 0 || v > 1 {
				t.Errorf("%s: component %s = %v out of [0,1]", kind, name, v)
			}
		}
		if rep.Index < 0 || rep.Index > 100 {
			t.Errorf("%s: index = %v", kind, rep.Index)
		}
		if rep.ThroughputNorm <= 0 || rep.ThroughputNorm > 1.0001 {
			t.Errorf("%s: throughput = %v", kind, rep.ThroughputNorm)
		}
		if rep.FabricLinks == 0 {
			t.Errorf("%s: no fabric links", kind)
		}
		if rep.String() == "" {
			t.Error("empty report string")
		}
	}
}

func TestRandomTopologiesLessLocalThanClos(t *testing.T) {
	// Fat-tree pods keep edge-agg links within a pod row; jellyfish wires
	// ToRs at random across the hall.
	ft := Evaluate(build(t, "fattree"), DefaultConfig())
	jf := Evaluate(build(t, "jellyfish"), DefaultConfig())
	if jf.Components.Locality >= ft.Components.Locality {
		t.Fatalf("jellyfish locality %v >= fat-tree %v", jf.Components.Locality, ft.Components.Locality)
	}
	if jf.Index > ft.Index+15 {
		t.Fatalf("jellyfish (%v) wildly out-scores fat-tree (%v)", jf.Index, ft.Index)
	}
}

func TestDrainToleranceReflectsRedundancy(t *testing.T) {
	// A 1-spine fabric loses real capacity per drain; a 4-spine one barely
	// notices.
	thin, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 4, Spines: 1, HostsPerLeaf: 8, Uplinks: 1, FabricGbps: 400, HostGbps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	fat, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 4, Spines: 4, HostsPerLeaf: 8, Uplinks: 1, FabricGbps: 400, HostGbps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	rThin := Evaluate(thin, DefaultConfig())
	rFat := Evaluate(fat, DefaultConfig())
	if rFat.Components.DrainTolerance <= rThin.Components.DrainTolerance {
		t.Fatalf("drain tolerance: 4-spine %v <= 1-spine %v",
			rFat.Components.DrainTolerance, rThin.Components.DrainTolerance)
	}
}

func TestEmptyNetwork(t *testing.T) {
	n := topology.New("empty")
	rep := Evaluate(n, DefaultConfig())
	if rep.Index != 0 || rep.FabricLinks != 0 {
		t.Fatalf("empty network report: %+v", rep)
	}
}

func TestDeterministic(t *testing.T) {
	a := Evaluate(build(t, "jellyfish"), DefaultConfig())
	b := Evaluate(build(t, "jellyfish"), DefaultConfig())
	if a.Index != b.Index || a.ThroughputNorm != b.ThroughputNorm {
		t.Fatal("evaluation not deterministic")
	}
}

// Workers is a throughput knob for the routing engine's rebuilds, never a
// results knob: the full report — throughput probe, absolute rates, and
// the 24-sample drain sweep — must be identical at any worker count.
func TestWorkersDoNotChangeReport(t *testing.T) {
	for _, kind := range []string{"fattree", "xpander"} {
		serial := Evaluate(build(t, kind), DefaultConfig())
		if serial.OfferedGbps <= 0 || serial.SatisfiedGbps <= 0 {
			t.Fatalf("%s: absolute probe rates not populated: %+v", kind, serial)
		}
		for _, w := range []int{2, 8} {
			cfg := DefaultConfig()
			cfg.Workers = w
			if got := Evaluate(build(t, kind), cfg); got != serial {
				t.Fatalf("%s workers=%d: report %+v != serial %+v", kind, w, got, serial)
			}
		}
	}
}
