// Package maintindex implements the metric the paper asks for in §4:
// "perhaps we can create a metric for self-maintainability of a network
// design?". It scores how amenable a topology's physical realization is to
// robotic maintenance, and pairs the score with normalized throughput so
// the deployability-vs-efficiency tradeoff (Jellyfish/Xpander vs Clos) can
// be plotted.
//
// The index aggregates seven physically grounded components, each in [0,1]
// with 1 maintenance-friendly:
//
//   - Locality: fraction of fabric links confined to one row — row-scope
//     robots (§3.4) can service them without hall-level mobility.
//   - PortClarity: 1 − normalized occlusion at fabric ports; cluttered
//     panels defeat perception and grippers (§3.3.3).
//   - TrayHeadroom: 1 − normalized peak tray occupancy on fabric runs;
//     crowded trays make cable extraction disturb neighbours.
//   - ShortRuns: 1 − normalized mean cable run length; long irregular looms
//     are what makes expanders hard to deploy (§4, deployability).
//   - DrainTolerance: mean traffic availability while a single fabric link
//     is drained for maintenance — can the topology afford repairs?
//   - Parallelism: distinct rack faces hosting fabric ports per fabric
//     link — how many repairs can proceed simultaneously (one robot per
//     face).
//   - MediaSimplicity: penalizes cable-class diversity, the automation
//     enemy the paper singles out (§4, hardware standardization).
//   - Regularity: fraction of fabric links whose physical run repeats a
//     common template (same row/rack offset and length class). Regular runs
//     can be pre-bundled and handled by one learned robot motion; the
//     irregular looms of random graphs are exactly the deployability
//     obstacle the paper cites for expanders (§4).
package maintindex

import (
	"fmt"
	"math"

	"repro/internal/routing"
	"repro/internal/topology"
)

// Components are the per-dimension scores, each in [0,1].
type Components struct {
	Locality        float64
	PortClarity     float64
	TrayHeadroom    float64
	ShortRuns       float64
	DrainTolerance  float64
	Parallelism     float64
	MediaSimplicity float64
	Regularity      float64
}

// Weights for the composite index; they sum to 1.
var weights = []float64{0.10, 0.10, 0.10, 0.10, 0.17, 0.08, 0.08, 0.27}

// Report is the full evaluation of one topology.
type Report struct {
	Name       string
	Components Components
	// Index is the composite self-maintainability score in [0,100].
	Index float64
	// ThroughputNorm is the satisfied fraction of a full-injection uniform
	// traffic matrix — the efficiency axis of the tradeoff plot.
	ThroughputNorm float64
	// OfferedGbps and SatisfiedGbps are the absolute rates behind
	// ThroughputNorm's fraction, so consumers needing per-switch or
	// per-host goodput do not have to re-run the uniform probe.
	OfferedGbps   float64
	SatisfiedGbps float64
	FabricLinks   int
}

// String renders a one-line summary.
func (r Report) String() string {
	return fmt.Sprintf("%s: index=%.1f throughput=%.3f (loc=%.2f clar=%.2f tray=%.2f runs=%.2f drain=%.2f par=%.2f media=%.2f reg=%.2f)",
		r.Name, r.Index, r.ThroughputNorm,
		r.Components.Locality, r.Components.PortClarity, r.Components.TrayHeadroom,
		r.Components.ShortRuns, r.Components.DrainTolerance, r.Components.Parallelism,
		r.Components.MediaSimplicity, r.Components.Regularity)
}

// Config tunes evaluation.
type Config struct {
	// DrainSamples caps how many single-link drains are evaluated for
	// DrainTolerance (every k-th fabric link is sampled deterministically).
	DrainSamples int
	// UniformLoadGbps is the total offered load for the throughput probe;
	// 0 derives full injection from host NIC speeds.
	UniformLoadGbps float64
	// Workers bounds the goroutines the routing engine may use to rebuild
	// per-destination state during the probe and drain sweep (0 = serial).
	// A throughput knob only: the report is identical at any setting.
	Workers int
}

// DefaultConfig samples up to 24 drains and uses full host injection.
func DefaultConfig() Config { return Config{DrainSamples: 24} }

// Evaluate scores a topology.
func Evaluate(net *topology.Network, cfg Config) Report {
	fabric := net.SwitchLinks()
	rep := Report{Name: net.Name, FabricLinks: len(fabric)}
	if len(fabric) == 0 {
		return rep
	}

	// Locality, runs, tray, occlusion, media.
	local := 0
	var runSum float64
	var traySum float64
	var occlSum float64
	classes := map[topology.CableClass]bool{}
	for _, l := range fabric {
		if l.A.Device.Loc.Row == l.B.Device.Loc.Row {
			local++
		}
		runSum += l.Cable.LengthM
		traySum += float64(net.Layout.TrayOccupancy(l))
		occlSum += float64(net.OcclusionAt(l.A)+net.OcclusionAt(l.B)) / 2
		classes[l.Cable.Class] = true
	}
	n := float64(len(fabric))
	rep.Components.Locality = float64(local) / n
	rep.Components.ShortRuns = clamp01(1 - (runSum/n)/40)      // 40 m run ≈ fully penalized
	rep.Components.TrayHeadroom = clamp01(1 - (traySum/n)/64)  // 64 cables/segment ≈ full
	rep.Components.PortClarity = clamp01(1 - (occlSum/n)/12)   // 12 neighbours ≈ opaque
	rep.Components.MediaSimplicity = 1 / float64(len(classes)) // 1 class → 1.0

	// Regularity: bucket each run by (row offset, rack offset, 5 m length
	// class); the fewer distinct templates per link, the more repeatable
	// deployment and maintenance motions are.
	templates := map[[3]int]bool{}
	for _, l := range fabric {
		la, lb := l.A.Device.Loc, l.B.Device.Loc
		dr, dk := la.Row-lb.Row, la.Rack-lb.Rack
		if dr < 0 {
			dr, dk = -dr, -dk
		}
		templates[[3]int{dr, dk, int(l.Cable.LengthM / 5)}] = true
	}
	rep.Components.Regularity = clamp01(1 - float64(len(templates))/n)

	// Parallelism: distinct rack faces with fabric ports, per fabric link,
	// saturating at 1 when faces >= links/4 (a quarter of repairs can run
	// at once).
	faces := map[[3]int]bool{}
	for _, l := range fabric {
		for _, p := range []*topology.Port{l.A, l.B} {
			loc := p.Device.Loc
			faces[[3]int{loc.Row, loc.Rack, int(loc.Face)}] = true
		}
	}
	rep.Components.Parallelism = clamp01(float64(len(faces)) / (n / 4))

	// Throughput probe and drain tolerance.
	load := cfg.UniformLoadGbps
	if load <= 0 {
		for _, h := range net.Hosts() {
			for _, p := range h.Ports {
				if p.Link != nil {
					load += p.Link.GbpsCap
				}
			}
		}
	}
	router := routing.NewRouter(net, nil)
	router.Workers = cfg.Workers
	tm := routing.UniformMatrix(net, load)
	var ws routing.Workspace
	base := router.EvaluateInto(&ws, tm)
	rep.ThroughputNorm = base.Availability()
	rep.OfferedGbps = base.OfferedGbps
	rep.SatisfiedGbps = base.SatisfiedGbps

	samples := cfg.DrainSamples
	if samples <= 0 {
		samples = 24
	}
	step := len(fabric) / samples
	if step < 1 {
		step = 1
	}
	var drainSum float64
	drains := 0
	// Each drain/undrain pair invalidates only the cache entries whose
	// shortest paths crossed the drained link, and the destination-rooted
	// engine shelves displaced per-destination structures keyed by subgraph
	// signature — every undrain restores the pre-drain arenas wholesale, so
	// the sweep re-enumerates only what each drain actually changed.
	for i := 0; i < len(fabric); i += step {
		l := fabric[i]
		router.Drain(l.ID)
		drainSum += router.EvaluateInto(&ws, tm).Availability()
		router.Undrain(l.ID)
		drains++
	}
	if drains > 0 {
		rep.Components.DrainTolerance = clamp01(drainSum / float64(drains) / math.Max(rep.ThroughputNorm, 1e-9))
	}

	c := rep.Components
	comps := []float64{c.Locality, c.PortClarity, c.TrayHeadroom, c.ShortRuns,
		c.DrainTolerance, c.Parallelism, c.MediaSimplicity, c.Regularity}
	for i, v := range comps {
		rep.Index += 100 * weights[i] * v
	}
	return rep
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
