package ticket

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/topology"
)

func setup(t *testing.T) (*sim.Engine, *topology.Network, *Store) {
	t.Helper()
	n, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 1, Uplinks: 1,
		FabricGbps: 400, HostGbps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(1)
	return eng, n, NewStore(eng, DefaultConfig())
}

func TestOpenDedup(t *testing.T) {
	eng, n, s := setup(t)
	l := n.SwitchLinks()[0]
	t1, created := s.Open(l, Reactive, faults.Flapping, P1)
	if !created {
		t.Fatal("first open not created")
	}
	eng.RunUntil(sim.Minute)
	t2, created := s.Open(l, Reactive, faults.Down, P0)
	if created {
		t.Fatal("second open created a new ticket")
	}
	if t2 != t1 {
		t.Fatal("dedup returned different ticket")
	}
	if t1.Dedups != 1 {
		t.Fatalf("dedups = %d", t1.Dedups)
	}
	if t1.Priority != P0 || t1.Symptom != faults.Down {
		t.Fatal("outage did not upgrade ticket priority")
	}
	// A lower-severity alert must not downgrade it back.
	s.Open(l, Reactive, faults.Flapping, P1)
	if t1.Priority != P0 {
		t.Fatal("priority downgraded")
	}
}

func TestLifecycleAndServiceWindow(t *testing.T) {
	eng, n, s := setup(t)
	l := n.SwitchLinks()[0]
	tk, _ := s.Open(l, Reactive, faults.Down, P0)
	eng.RunUntil(10 * sim.Minute)
	s.Assign(tk, "robot-1")
	if tk.Status != Assigned || tk.Assignee != "robot-1" {
		t.Fatal("assign failed")
	}
	eng.RunUntil(20 * sim.Minute)
	s.Start(tk)
	s.Record(tk, Attempt{Action: faults.Reseat, Fixed: true, At: eng.Now(), Actor: "robot-1"})
	eng.RunUntil(25 * sim.Minute)
	s.Resolve(tk)
	if tk.ServiceWindow() != 25*sim.Minute {
		t.Fatalf("service window = %v", tk.ServiceWindow())
	}
	if !tk.MetSLA() {
		t.Fatal("25min P0 repair should meet 4h SLA")
	}
	if s.OpenFor(l.ID) != nil {
		t.Fatal("resolved ticket still open")
	}
}

func TestRepeatEscalation(t *testing.T) {
	eng, n, s := setup(t)
	l := n.SwitchLinks()[0]
	t1, _ := s.Open(l, Reactive, faults.Flapping, P1)
	s.Start(t1)
	s.Record(t1, Attempt{Action: faults.Reseat, Fixed: true, At: eng.Now()})
	s.Resolve(t1)

	// Re-ticket within the window: starts at the rung after reseat.
	eng.RunUntil(3 * sim.Day)
	t2, created := s.Open(l, Reactive, faults.Flapping, P1)
	if !created {
		t.Fatal("expected new ticket")
	}
	if t2.RepeatOf != t1.ID {
		t.Fatalf("RepeatOf = %d", t2.RepeatOf)
	}
	if t2.StartStage != 1 { // Clean
		t.Fatalf("StartStage = %d, want 1 (clean)", t2.StartStage)
	}
	s.Start(t2)
	s.Record(t2, Attempt{Action: faults.Clean, Fixed: true, At: eng.Now()})
	s.Resolve(t2)

	// Third repeat escalates further.
	eng.RunUntil(eng.Now() + sim.Day)
	t3, _ := s.Open(l, Reactive, faults.Down, P0)
	if t3.StartStage != 2 { // ReplaceXcvr
		t.Fatalf("third StartStage = %d, want 2", t3.StartStage)
	}
	s.Start(t3)
	s.Record(t3, Attempt{Action: faults.ReplaceSwitchPort, Fixed: true, At: eng.Now()})
	s.Resolve(t3)

	// Resolving at the last rung clamps the next stage.
	eng.RunUntil(eng.Now() + sim.Day)
	t4, _ := s.Open(l, Reactive, faults.Down, P0)
	if t4.StartStage != len(faults.AllActions)-1 {
		t.Fatalf("clamped StartStage = %d", t4.StartStage)
	}
}

func TestRepeatWindowExpires(t *testing.T) {
	eng, n, s := setup(t)
	l := n.SwitchLinks()[0]
	t1, _ := s.Open(l, Reactive, faults.Flapping, P1)
	s.Start(t1)
	s.Record(t1, Attempt{Action: faults.Reseat, Fixed: true, At: eng.Now()})
	s.Resolve(t1)
	eng.RunUntil(30 * sim.Day) // beyond the 14d window
	t2, _ := s.Open(l, Reactive, faults.Flapping, P1)
	if t2.RepeatOf != -1 || t2.StartStage != 0 {
		t.Fatalf("stale repeat detected: %+v", t2)
	}
}

func TestQueueOrdering(t *testing.T) {
	eng, n, s := setup(t)
	links := n.SwitchLinks()
	a, _ := s.Open(links[0], Proactive, faults.Healthy, P2)
	eng.RunUntil(sim.Minute)
	b, _ := s.Open(links[1], Reactive, faults.Down, P0)
	eng.RunUntil(2 * sim.Minute)
	c, _ := s.Open(links[2], Reactive, faults.Flapping, P1)
	q := s.OpenQueue()
	if len(q) != 3 {
		t.Fatalf("queue len %d", len(q))
	}
	if q[0] != b || q[1] != c || q[2] != a {
		t.Fatalf("queue order: %v %v %v", q[0], q[1], q[2])
	}
	// Assigned tickets leave the dispatch queue.
	s.Assign(b, "x")
	if len(s.OpenQueue()) != 2 {
		t.Fatal("assigned ticket still in queue")
	}
}

func TestCancelAndSummary(t *testing.T) {
	eng, n, s := setup(t)
	links := n.SwitchLinks()
	t1, _ := s.Open(links[0], Reactive, faults.Down, P0)
	s.Start(t1)
	s.Record(t1, Attempt{Action: faults.Reseat, Fixed: false, At: eng.Now(), Note: "no fix"})
	s.Record(t1, Attempt{Action: faults.Clean, Fixed: true, At: eng.Now()})
	eng.RunUntil(sim.Hour)
	s.Resolve(t1)

	t2, _ := s.Open(links[1], Predictive, faults.Healthy, P2)
	s.Cancel(t2)
	if s.OpenFor(links[1].ID) != nil {
		t.Fatal("cancelled ticket still open")
	}

	sum := s.Summarize()
	if sum.Total != 2 || sum.Resolved != 1 || sum.Cancelled != 1 {
		t.Fatalf("summary %+v", sum)
	}
	if sum.MeanWindow != sim.Hour || sum.MaxWindow != sim.Hour {
		t.Fatalf("windows %v/%v", sum.MeanWindow, sum.MaxWindow)
	}
	if sum.AttemptsPerResolved != 2 {
		t.Fatalf("attempts/resolved = %g", sum.AttemptsPerResolved)
	}
	if sum.SLAMet != 1 {
		t.Fatalf("SLAMet = %d", sum.SLAMet)
	}
	if sum.ByKind[Reactive] != 1 || sum.ByKind[Predictive] != 1 {
		t.Fatalf("by kind: %v", sum.ByKind)
	}
	if len(s.All()) != 2 {
		t.Fatal("All() wrong length")
	}
}

func TestSLATargets(t *testing.T) {
	if P0.SLA() >= P1.SLA() || P1.SLA() >= P2.SLA() {
		t.Fatal("SLA targets not monotone")
	}
}

func TestStrings(t *testing.T) {
	if Reactive.String() != "reactive" || Kind(9).String() == "" {
		t.Error("kind names")
	}
	if P0.String() != "P0" {
		t.Error("priority name")
	}
	if Open.String() != "open" || Status(9).String() == "" {
		t.Error("status names")
	}
	_, n, s := setupForString(t)
	tk, _ := s.Open(n.SwitchLinks()[0], Reactive, faults.Down, P0)
	if tk.String() == "" {
		t.Error("ticket string")
	}
	if tk.ServiceWindow() != 0 {
		t.Error("unresolved service window should be 0")
	}
}

func setupForString(t *testing.T) (*sim.Engine, *topology.Network, *Store) {
	return setup(t)
}
