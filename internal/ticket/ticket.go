// Package ticket implements the repair-ticket system that mediates between
// failure detection and repair execution in today's datacenters (§1), plus
// the repeat-ticket bookkeeping that drives the paper's escalation ladder:
// if a link re-tickets within a time window of a previous repair, the next
// repair starts at the next rung (§3.2).
package ticket

import (
	"fmt"
	"sort"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Kind classifies why a ticket exists.
type Kind uint8

// Ticket kinds.
const (
	Reactive   Kind = iota // a failure was detected
	Proactive              // scheduled preventive maintenance
	Predictive             // a model predicted imminent failure
)

var kindNames = [...]string{Reactive: "reactive", Proactive: "proactive", Predictive: "predictive"}

// String returns the kind name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Priority orders the work queue.
type Priority uint8

// Priorities, highest first.
const (
	P0 Priority = iota // outage-impacting, work immediately
	P1                 // degraded (flapping) link
	P2                 // proactive/predictive background work
)

// String returns "P0".."P2".
func (p Priority) String() string { return fmt.Sprintf("P%d", uint8(p)) }

// SLA returns the service-window target for the priority, matching today's
// practice of hours for high-priority and days for routine repairs (§1).
func (p Priority) SLA() sim.Time {
	switch p {
	case P0:
		return 4 * sim.Hour
	case P1:
		return 2 * sim.Day
	default:
		return 7 * sim.Day
	}
}

// Status is the ticket lifecycle state.
type Status uint8

// Lifecycle states.
const (
	Open Status = iota
	Assigned
	Active // repair physically underway
	Resolved
	Cancelled
)

var statusNames = [...]string{
	Open: "open", Assigned: "assigned", Active: "active",
	Resolved: "resolved", Cancelled: "cancelled",
}

// String returns the status name.
func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Attempt records one physical repair attempt made under a ticket.
type Attempt struct {
	Action  faults.Action
	End     faults.End
	Actor   string // robot or technician id
	At      sim.Time
	Fixed   bool
	Note    string
	Touched int // collateral cables contacted
}

// Ticket is one unit of repair work.
type Ticket struct {
	ID       int
	Link     *topology.Link
	Kind     Kind
	Priority Priority
	Symptom  faults.Health
	Status   Status

	CreatedAt  sim.Time
	AssignedAt sim.Time
	StartedAt  sim.Time
	ResolvedAt sim.Time

	Assignee string
	Attempts []Attempt

	// RepeatOf is the ID of the previous ticket for the same link whose
	// resolution this ticket reopened within the dedup window, or -1.
	RepeatOf int
	// StartStage is the escalation rung this ticket starts at (index into
	// faults.AllActions), derived from repeat history.
	StartStage int
	// Dedups counts additional alerts folded into this ticket while open.
	Dedups int
}

// ServiceWindow is the failure-to-fixed duration; it is the paper's
// headline metric ("shrinking the duration from hours and days to literally
// minutes", §2). It returns 0 for unresolved tickets.
func (t *Ticket) ServiceWindow() sim.Time {
	if t.Status != Resolved {
		return 0
	}
	return t.ResolvedAt - t.CreatedAt
}

// MetSLA reports whether the resolved ticket met its priority's target.
func (t *Ticket) MetSLA() bool {
	return t.Status == Resolved && t.ServiceWindow() <= t.Priority.SLA()
}

// String renders a one-line summary.
func (t *Ticket) String() string {
	return fmt.Sprintf("T%d %s %v %v %v stage=%d", t.ID, t.Link.Name(), t.Kind, t.Priority, t.Status, t.StartStage)
}

// Config tunes the store.
type Config struct {
	// RepeatWindow is how long after a resolution a new ticket for the
	// same link counts as a repeat and escalates the starting rung.
	RepeatWindow sim.Time
}

// DefaultConfig uses a 14-day repeat window.
func DefaultConfig() Config { return Config{RepeatWindow: 14 * sim.Day} }

// Store owns all tickets for one network.
type Store struct {
	eng *sim.Engine
	cfg Config

	tickets []*Ticket
	open    map[topology.LinkID]*Ticket

	// lastResolved tracks, per link, the last resolved ticket for repeat
	// detection.
	lastResolved map[topology.LinkID]*Ticket
}

// NewStore creates an empty ticket store.
func NewStore(eng *sim.Engine, cfg Config) *Store {
	return &Store{
		eng:          eng,
		cfg:          cfg,
		open:         make(map[topology.LinkID]*Ticket),
		lastResolved: make(map[topology.LinkID]*Ticket),
	}
}

// Open files a ticket for the link, deduplicating against an existing open
// ticket (returned with created=false after folding the alert in). Repeat
// detection escalates StartStage past the last ticket's resolving rung.
func (s *Store) Open(l *topology.Link, kind Kind, symptom faults.Health, prio Priority) (t *Ticket, created bool) {
	if existing, ok := s.open[l.ID]; ok {
		existing.Dedups++
		// An outage supersedes a degradation ticket's priority.
		if prio < existing.Priority {
			existing.Priority = prio
			existing.Symptom = symptom
		}
		return existing, false
	}
	t = &Ticket{
		ID:        len(s.tickets),
		Link:      l,
		Kind:      kind,
		Priority:  prio,
		Symptom:   symptom,
		Status:    Open,
		CreatedAt: s.eng.Now(),
		RepeatOf:  -1,
	}
	if prev := s.lastResolved[l.ID]; prev != nil && s.eng.Now()-prev.ResolvedAt <= s.cfg.RepeatWindow {
		t.RepeatOf = prev.ID
		t.StartStage = prev.resolvedStage() + 1
		if t.StartStage >= len(faults.AllActions) {
			t.StartStage = len(faults.AllActions) - 1
		}
	}
	s.tickets = append(s.tickets, t)
	s.open[l.ID] = t
	return t, true
}

// resolvedStage returns the rung of the attempt that resolved the ticket,
// or -1 if it has no fixing attempt (e.g. cancelled).
func (t *Ticket) resolvedStage() int {
	for i := len(t.Attempts) - 1; i >= 0; i-- {
		if t.Attempts[i].Fixed {
			for s, a := range faults.AllActions {
				if a == t.Attempts[i].Action {
					return s
				}
			}
		}
	}
	return -1
}

// Assign moves an open ticket to an actor.
func (s *Store) Assign(t *Ticket, actor string) {
	t.Status = Assigned
	t.Assignee = actor
	t.AssignedAt = s.eng.Now()
}

// Start marks physical work underway.
func (s *Store) Start(t *Ticket) {
	t.Status = Active
	if t.StartedAt == 0 {
		t.StartedAt = s.eng.Now()
	}
}

// Record appends a repair attempt to the ticket.
func (s *Store) Record(t *Ticket, a Attempt) {
	t.Attempts = append(t.Attempts, a)
}

// Resolve closes the ticket as fixed.
func (s *Store) Resolve(t *Ticket) {
	t.Status = Resolved
	t.ResolvedAt = s.eng.Now()
	delete(s.open, t.Link.ID)
	s.lastResolved[t.Link.ID] = t
}

// Cancel closes the ticket without a fix (e.g. superseded or false
// positive).
func (s *Store) Cancel(t *Ticket) {
	t.Status = Cancelled
	delete(s.open, t.Link.ID)
}

// OpenFor returns the open ticket for a link, or nil.
func (s *Store) OpenFor(id topology.LinkID) *Ticket { return s.open[id] }

// OpenQueue returns open+assigned tickets ordered by (priority, age).
func (s *Store) OpenQueue() []*Ticket {
	var q []*Ticket
	//lint:allow mapiter collected tickets get a total (priority, age, id) sort below; iteration order cannot survive it
	for _, t := range s.open {
		if t.Status == Open {
			q = append(q, t)
		}
	}
	sort.Slice(q, func(i, j int) bool {
		if q[i].Priority != q[j].Priority {
			return q[i].Priority < q[j].Priority
		}
		if q[i].CreatedAt != q[j].CreatedAt {
			return q[i].CreatedAt < q[j].CreatedAt
		}
		return q[i].ID < q[j].ID
	})
	return q
}

// All returns every ticket ever filed, in creation order.
func (s *Store) All() []*Ticket { return s.tickets }

// Summary aggregates resolved-ticket statistics.
type Summary struct {
	Total, Resolved, Cancelled int
	Repeats                    int
	Dedups                     int
	MeanWindow                 sim.Time
	MaxWindow                  sim.Time
	SLAMet                     int
	AttemptsPerResolved        float64
	ByKind                     map[Kind]int
}

// Summarize computes the store-wide summary.
func (s *Store) Summarize() Summary {
	sum := Summary{ByKind: make(map[Kind]int)}
	var windowTotal sim.Time
	var attempts int
	for _, t := range s.tickets {
		sum.Total++
		sum.ByKind[t.Kind]++
		sum.Dedups += t.Dedups
		if t.RepeatOf >= 0 {
			sum.Repeats++
		}
		switch t.Status {
		case Resolved:
			sum.Resolved++
			w := t.ServiceWindow()
			windowTotal += w
			if w > sum.MaxWindow {
				sum.MaxWindow = w
			}
			if t.MetSLA() {
				sum.SLAMet++
			}
			attempts += len(t.Attempts)
		case Cancelled:
			sum.Cancelled++
		}
	}
	if sum.Resolved > 0 {
		sum.MeanWindow = windowTotal / sim.Time(sum.Resolved)
		sum.AttemptsPerResolved = float64(attempts) / float64(sum.Resolved)
	}
	return sum
}
