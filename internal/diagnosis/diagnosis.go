// Package diagnosis infers what is wrong with a misbehaving link from
// observable telemetry and per-end DDM sensor readings: which end to
// service and a ranked distribution over suspected causes. It never reads
// fault-injector ground truth directly; its accuracy is therefore a model
// property that experiments can score (§4 "Fault detection and isolation").
package diagnosis

import (
	"fmt"
	"sort"

	"repro/internal/detsort"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// Sensors is the read-only sensor interface diagnosis needs. The fault
// injector satisfies it; tests may substitute fakes.
type Sensors interface {
	ReadDDM(l *topology.Link, e faults.End) faults.DDM
}

// Suspect is one hypothesis with its weight.
type Suspect struct {
	Cause  faults.Cause
	Weight float64
}

// Diagnosis is the output of one diagnostic pass over a link.
type Diagnosis struct {
	Link     *topology.Link
	At       sim.Time
	Symptom  faults.Health // down or (detected) flapping
	End      faults.End    // which end to service first
	EndScore float64       // confidence margin for the end choice
	Suspects []Suspect     // ranked, weights sum to 1
}

// Top returns the leading suspect cause.
func (d Diagnosis) Top() faults.Cause {
	if len(d.Suspects) == 0 {
		return faults.None
	}
	return d.Suspects[0].Cause
}

// String renders the diagnosis for logs.
func (d Diagnosis) String() string {
	return fmt.Sprintf("%s: %v at end %v, top suspect %v",
		d.Link.Name(), d.Symptom, d.End, d.Top())
}

// Engine performs diagnosis using telemetry counters and DDM readings.
type Engine struct {
	clock   *sim.Engine
	mon     *telemetry.Monitor
	sensors Sensors
	// Readings averages several DDM samples to reduce noise; more samples
	// model a longer diagnostic soak.
	Readings int
}

// New creates a diagnosis engine.
func New(clock *sim.Engine, mon *telemetry.Monitor, sensors Sensors) *Engine {
	return &Engine{clock: clock, mon: mon, sensors: sensors, Readings: 3}
}

// Diagnose produces a diagnosis for a link whose observed symptom is given
// (down or flapping, from the alert that triggered the pass).
func (e *Engine) Diagnose(l *topology.Link, symptom faults.Health) Diagnosis {
	d := Diagnosis{Link: l, At: e.clock.Now(), Symptom: symptom}

	var a, b faults.DDM
	n := e.Readings
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		ra := e.sensors.ReadDDM(l, faults.EndA)
		rb := e.sensors.ReadDDM(l, faults.EndB)
		a.RxDbm += ra.RxDbm / float64(n)
		a.Errors += ra.Errors / float64(n)
		b.RxDbm += rb.RxDbm / float64(n)
		b.Errors += rb.Errors / float64(n)
	}

	// End choice: prefer the end whose local evidence is worse. Low rx
	// power implicates the reading end's connector; high error rate
	// implicates the reading end's electronics.
	scoreA := (faults.NominalRxDbm-a.RxDbm)/8 + a.Errors
	scoreB := (faults.NominalRxDbm-b.RxDbm)/8 + b.Errors
	if scoreB > scoreA {
		d.End = faults.EndB
		d.EndScore = scoreB - scoreA
	} else {
		d.End = faults.EndA
		d.EndScore = scoreA - scoreB
	}

	d.Suspects = e.rankCauses(l, symptom, a, b)
	return d
}

// rankCauses builds the suspect distribution from symptom shape, media
// type, history and sensor evidence.
func (e *Engine) rankCauses(l *topology.Link, symptom faults.Health, a, b faults.DDM) []Suspect {
	w := map[faults.Cause]float64{}
	c := e.mon.Counters(l.ID)
	separable := l.HasSeparableFiber()
	pluggable := l.Cable.Class.NeedsTransceiver()

	worstRx := a.RxDbm
	if b.RxDbm < worstRx {
		worstRx = b.RxDbm
	}
	worstErr := a.Errors
	if b.Errors > worstErr {
		worstErr = b.Errors
	}
	attenuated := faults.NominalRxDbm-worstRx > 2.5
	noisy := worstErr > 0.25

	if separable && attenuated {
		w[faults.Contamination] += 2.0
	}
	if separable && symptom == faults.Flapping {
		w[faults.Contamination] += 1.2
	}
	if pluggable && noisy {
		w[faults.Oxidation] += 1.0
		w[faults.FirmwareHang] += 0.8
	}
	if pluggable && symptom == faults.Down {
		w[faults.XcvrDead] += 0.9
		w[faults.FirmwareHang] += 0.5
	}
	if attenuated && faults.NominalRxDbm-worstRx > 5 {
		w[faults.CableDamaged] += 0.8
	}
	if symptom == faults.Down && !noisy && !attenuated {
		// Dark with clean analog readings: suspect the switch side.
		w[faults.SwitchPort] += 0.7
		w[faults.CableDamaged] += 0.4
	}
	// Heavy flap history on separable media keeps pointing at dirt.
	if separable && c.FlapEpisodes > 5 {
		w[faults.Contamination] += 0.6
	}
	if len(w) == 0 {
		// No evidence at all: fall back to base-rate ordering.
		w[faults.Oxidation] = 1
		w[faults.FirmwareHang] = 0.8
		if separable {
			w[faults.Contamination] = 1.2
		}
		w[faults.XcvrDead] = 0.5
		w[faults.CableDamaged] = 0.3
		w[faults.SwitchPort] = 0.2
	}

	// Sum and emit in sorted-cause order: float addition does not
	// associate, so summing in map order would make the normalized weights
	// (and everything downstream of them) vary from run to run at the last
	// bit.
	causes := detsort.Keys(w)
	var total float64
	for _, cause := range causes {
		total += w[cause]
	}
	out := make([]Suspect, 0, len(w))
	for _, cause := range causes {
		out = append(out, Suspect{Cause: cause, Weight: w[cause] / total})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Cause < out[j].Cause
	})
	return out
}
