package diagnosis

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

func setup(t *testing.T, seed uint64) (*sim.Engine, *topology.Network, *faults.Injector, *Engine) {
	t.Helper()
	n, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 4, Spines: 2, HostsPerLeaf: 2, Uplinks: 1,
		FabricGbps: 400, HostGbps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(seed)
	fcfg := faults.DefaultConfig()
	fcfg.AnnualRate = map[faults.Cause]float64{}
	inj := faults.NewInjector(eng, n, fcfg)
	mon := telemetry.NewMonitor(eng, n, telemetry.DefaultConfig())
	inj.Subscribe(mon)
	return eng, n, inj, New(eng, mon, inj)
}

func sepLink(t *testing.T, n *topology.Network, i int) *topology.Link {
	t.Helper()
	var sep []*topology.Link
	for _, l := range n.SwitchLinks() {
		if l.HasSeparableFiber() {
			sep = append(sep, l)
		}
	}
	if len(sep) == 0 {
		t.Fatal("no separable links")
	}
	return sep[i%len(sep)]
}

func TestContaminationLocalization(t *testing.T) {
	_, n, inj, diag := setup(t, 1)
	correctEnd, correctCause := 0, 0
	const trials = 40
	for i := 0; i < trials; i++ {
		l := sepLink(t, n, i%6)
		inj.InduceFault(l, faults.Contamination)
		st := inj.State(l.ID)
		d := diag.Diagnose(l, inj.Observable(l.ID))
		if d.End == st.CauseEnd {
			correctEnd++
		}
		if d.Top() == faults.Contamination {
			correctCause++
		}
		// Clean up for the next trial (replace cable always fixes dirt).
		inj.BeginRepair(l)
		for !inj.FinishRepair(l, faults.ReplaceCable, faults.EndA).Fixed {
			inj.BeginRepair(l)
		}
	}
	if correctEnd < trials*6/10 {
		t.Fatalf("end localization %d/%d, want >60%%", correctEnd, trials)
	}
	if correctEnd == trials {
		t.Fatalf("end localization perfect over %d noisy trials (suspicious)", trials)
	}
	if correctCause < trials*6/10 {
		t.Fatalf("cause ranking %d/%d top-1 contamination", correctCause, trials)
	}
}

func TestElectricalFaultsPointAtErrors(t *testing.T) {
	_, n, inj, diag := setup(t, 2)
	hit := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		l := sepLink(t, n, i%6)
		inj.InduceFault(l, faults.Oxidation)
		st := inj.State(l.ID)
		d := diag.Diagnose(l, inj.Observable(l.ID))
		// Flapping separable links legitimately rank contamination near the
		// top, so score the electrical family within the top two suspects.
		electricalTop2 := false
		for i, s := range d.Suspects {
			if i >= 2 {
				break
			}
			switch s.Cause {
			case faults.Oxidation, faults.FirmwareHang, faults.XcvrDead:
				electricalTop2 = true
			}
		}
		if electricalTop2 && d.End == st.CauseEnd {
			hit++
		}
		inj.BeginRepair(l)
		for !inj.FinishRepair(l, faults.ReplaceXcvr, st.CauseEnd).Fixed {
			inj.BeginRepair(l)
		}
	}
	if hit < trials/2 {
		t.Fatalf("electrical localization hit %d/%d", hit, trials)
	}
}

func TestSuspectWeightsNormalized(t *testing.T) {
	_, n, inj, diag := setup(t, 3)
	l := sepLink(t, n, 0)
	inj.InduceFault(l, faults.XcvrDead)
	d := diag.Diagnose(l, faults.Down)
	var total float64
	for i, s := range d.Suspects {
		total += s.Weight
		if i > 0 && s.Weight > d.Suspects[i-1].Weight {
			t.Fatal("suspects not sorted by weight")
		}
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("weights sum to %g", total)
	}
	if d.String() == "" {
		t.Error("empty diagnosis string")
	}
}

func TestHealthyLinkFallsBackToBaseRates(t *testing.T) {
	_, n, _, diag := setup(t, 4)
	l := sepLink(t, n, 0)
	d := diag.Diagnose(l, faults.Down) // symptom claimed but no fault
	if len(d.Suspects) == 0 {
		t.Fatal("no suspects for evidence-free diagnosis")
	}
	if d.Top() == faults.None {
		t.Fatal("Top returned None with suspects present")
	}
}

func TestTopOnEmpty(t *testing.T) {
	var d Diagnosis
	if d.Top() != faults.None {
		t.Fatal("empty diagnosis Top != None")
	}
}

func TestReadingsAveraging(t *testing.T) {
	_, n, inj, diag := setup(t, 5)
	l := sepLink(t, n, 0)
	inj.InduceFault(l, faults.Contamination)
	st := inj.State(l.ID)
	diag.Readings = 0 // exercised as max(1, ...)
	one := 0
	diag.Readings = 1
	many := 0
	for i := 0; i < 60; i++ {
		if diag.Diagnose(l, faults.Flapping).End == st.CauseEnd {
			one++
		}
	}
	diag.Readings = 10
	for i := 0; i < 60; i++ {
		if diag.Diagnose(l, faults.Flapping).End == st.CauseEnd {
			many++
		}
	}
	if many < one-8 {
		t.Fatalf("more readings made localization notably worse: 1-shot=%d, 10-shot=%d", one, many)
	}
}
