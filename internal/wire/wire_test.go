package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func echoServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0", func(reqType string, payload json.RawMessage) (any, error) {
		switch reqType {
		case "echo":
			var v map[string]any
			if err := json.Unmarshal(payload, &v); err != nil {
				return nil, err
			}
			return v, nil
		case "fail":
			return nil, errors.New("deliberate failure")
		case "nilresp":
			return nil, nil
		default:
			return nil, fmt.Errorf("unknown type %q", reqType)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestRoundTrip(t *testing.T) {
	s := echoServer(t)
	c, err := Dial(context.Background(), s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var resp map[string]any
	if err := c.Call(context.Background(), "echo", map[string]any{"x": 42.0, "s": "hi"}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp["x"] != 42.0 || resp["s"] != "hi" {
		t.Fatalf("resp = %v", resp)
	}
}

func TestSequentialCallsOnOneConnection(t *testing.T) {
	s := echoServer(t)
	c, err := Dial(context.Background(), s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 100; i++ {
		var resp map[string]any
		if err := c.Call(context.Background(), "echo", map[string]any{"i": float64(i)}, &resp); err != nil {
			t.Fatal(err)
		}
		if resp["i"] != float64(i) {
			t.Fatalf("i=%d got %v", i, resp["i"])
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	s := echoServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(context.Background(), s.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				var resp map[string]any
				if err := c.Call(context.Background(), "echo", map[string]any{"g": float64(g)}, &resp); err != nil {
					errs <- err
					return
				}
				if resp["g"] != float64(g) {
					errs <- fmt.Errorf("goroutine %d got %v", g, resp["g"])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestConcurrentCallsOneClient(t *testing.T) {
	s := echoServer(t)
	c, err := Dial(context.Background(), s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var resp map[string]any
			if err := c.Call(context.Background(), "echo", map[string]any{"g": float64(g)}, &resp); err != nil {
				errs <- err
				return
			}
			if resp["g"] != float64(g) {
				errs <- fmt.Errorf("cross-talk: goroutine %d got %v", g, resp["g"])
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestRemoteError(t *testing.T) {
	s := echoServer(t)
	c, _ := Dial(context.Background(), s.Addr())
	defer c.Close()
	err := c.Call(context.Background(), "fail", struct{}{}, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(re.Error(), "deliberate failure") {
		t.Fatalf("message: %v", re)
	}
	// The connection survives an application error.
	var resp map[string]any
	if err := c.Call(context.Background(), "echo", map[string]any{"ok": true}, &resp); err != nil {
		t.Fatalf("connection dead after remote error: %v", err)
	}
}

func TestNilResponse(t *testing.T) {
	s := echoServer(t)
	c, _ := Dial(context.Background(), s.Addr())
	defer c.Close()
	if err := c.Call(context.Background(), "nilresp", struct{}{}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Envelope{V: Version, ID: 7, Type: "t", Payload: json.RawMessage(`{"a":1}`)}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != 7 || out.Type != "t" || string(out.Payload) != `{"a":1}` {
		t.Fatalf("out = %+v", out)
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v", err)
	}
	big := &Envelope{V: Version, Payload: json.RawMessage(`"` + strings.Repeat("x", MaxFrame) + `"`)}
	if err := WriteFrame(&buf, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("write err = %v", err)
	}
}

func TestVersionMismatch(t *testing.T) {
	var buf bytes.Buffer
	data, _ := json.Marshal(&Envelope{V: 99, ID: 1, Type: "x"})
	hdr := []byte{0, 0, 0, byte(len(data))}
	buf.Write(hdr)
	buf.Write(data)
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v", err)
	}
}

func TestMalformedJSON(t *testing.T) {
	var buf bytes.Buffer
	data := []byte("{not json")
	buf.Write([]byte{0, 0, 0, byte(len(data))})
	buf.Write(data)
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("malformed frame accepted")
	}
}

func TestCallTimeout(t *testing.T) {
	// A server that never responds: handler blocks.
	block := make(chan struct{})
	s, err := NewServer("127.0.0.1:0", func(string, json.RawMessage) (any, error) {
		<-block
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(block); s.Close() }()
	c, _ := Dial(context.Background(), s.Addr())
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = c.Call(ctx, "echo", struct{}{}, nil)
	if err == nil {
		t.Fatal("call did not time out")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout took far too long")
	}
}

func TestServerCloseIdempotentAndDropsClients(t *testing.T) {
	s := echoServer(t)
	c, _ := Dial(context.Background(), s.Addr())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second close errored")
	}
	err := c.Call(context.Background(), "echo", map[string]any{}, nil)
	if err == nil {
		t.Fatal("call succeeded after server close")
	}
}

func TestUnknownTypeReturnsError(t *testing.T) {
	s := echoServer(t)
	c, _ := Dial(context.Background(), s.Addr())
	defer c.Close()
	err := c.Call(context.Background(), "nope", struct{}{}, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v", err)
	}
}

// Property: any envelope with a valid version survives a frame round trip
// bit-for-bit.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(id uint64, reqType string, payload []byte, errMsg string) bool {
		if len(payload) > 1<<16 {
			payload = payload[:1<<16]
		}
		// Payload must be valid JSON to survive the envelope's RawMessage
		// (an envelope always carries marshalled JSON in practice).
		quoted, _ := json.Marshal(string(payload))
		in := &Envelope{V: Version, ID: id, Type: reqType, Payload: quoted, Error: errMsg}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, in); err != nil {
			return false
		}
		out, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		return out.ID == in.ID && out.Type == in.Type &&
			string(out.Payload) == string(in.Payload) && out.Error == in.Error
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: truncated frames never panic and always error.
func TestTruncatedFramesError(t *testing.T) {
	var buf bytes.Buffer
	env := &Envelope{V: Version, ID: 1, Type: "x", Payload: json.RawMessage(`{"k":"v"}`)}
	if err := WriteFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := ReadFrame(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
