// Package wire implements the framed JSON protocol the maintenance control
// plane speaks over TCP: 4-byte big-endian length prefix, then a JSON
// envelope {v, id, type, payload | error}. It is the transport beneath the
// robot service API (§2: "controlled by a service API"), used by robotd,
// selfmaintd and maintctl.
//
// The protocol is deliberately simple: request/response with client-chosen
// IDs, no streaming, bounded frame sizes, and version checking — the shape
// of countless production control-plane protocols, implemented on the
// standard library only.
package wire

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Version is the protocol version carried in every envelope.
const Version = 1

// MaxFrame bounds a frame's payload size (16 MiB); larger frames are
// rejected to keep a misbehaving peer from ballooning memory.
const MaxFrame = 16 << 20

// Envelope is the on-wire message.
type Envelope struct {
	V       int             `json:"v"`
	ID      uint64          `json:"id"`
	Type    string          `json:"type"`
	Payload json.RawMessage `json:"payload,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// ErrFrameTooLarge is returned when a peer announces an oversized frame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")

// ErrBadVersion is returned when a peer speaks a different version.
var ErrBadVersion = errors.New("wire: protocol version mismatch")

// WriteFrame writes one envelope to w.
func WriteFrame(w io.Writer, env *Envelope) error {
	data, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	if len(data) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// ReadFrame reads one envelope from r.
func ReadFrame(r io.Reader) (*Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, err
	}
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("wire: unmarshal: %w", err)
	}
	if env.V != Version {
		return nil, ErrBadVersion
	}
	return &env, nil
}

// Handler serves one request: it receives the request type and raw payload
// and returns a response value (marshalled to JSON) or an error (sent as an
// error envelope).
type Handler func(reqType string, payload json.RawMessage) (any, error)

// Server accepts connections and serves requests with a Handler. Requests
// on one connection are served sequentially (the robot control plane is
// state-mutating; per-connection ordering is part of the contract), while
// connections are served concurrently.
type Server struct {
	ln      net.Listener
	handler Handler

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer starts a server on addr (e.g. "127.0.0.1:0").
func NewServer(addr string, h Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, handler: h, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		req, err := ReadFrame(br)
		if err != nil {
			return
		}
		resp := Envelope{V: Version, ID: req.ID, Type: req.Type}
		result, err := s.handler(req.Type, req.Payload)
		if err != nil {
			resp.Error = err.Error()
		} else if result != nil {
			data, err := json.Marshal(result)
			if err != nil {
				resp.Error = "wire: response marshal: " + err.Error()
			} else {
				resp.Payload = data
			}
		}
		if err := WriteFrame(bw, &resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// Close stops accepting and closes all connections, waiting for handlers
// to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	//lint:allow mapiter connection teardown; close order is unobservable (wire is transport, not simulation output)
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Client is a synchronous request/response client. It is safe for
// concurrent use; calls are serialized on the wire (matching the server's
// per-connection ordering contract).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	next uint64
}

// Dial connects to a wire server.
func Dial(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
	}, nil
}

// Call sends a request and decodes the response into resp (which may be nil
// to discard). Context deadlines map to socket deadlines.
func (c *Client) Call(ctx context.Context, reqType string, req, resp any) error {
	payload, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("wire: request marshal: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next++
	id := c.next
	if dl, ok := ctx.Deadline(); ok {
		c.conn.SetDeadline(dl)
		defer c.conn.SetDeadline(time.Time{})
	}
	env := Envelope{V: Version, ID: id, Type: reqType, Payload: payload}
	if err := WriteFrame(c.bw, &env); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	reply, err := ReadFrame(c.br)
	if err != nil {
		return err
	}
	if reply.ID != id {
		return fmt.Errorf("wire: response id %d for request %d", reply.ID, id)
	}
	if reply.Error != "" {
		return &RemoteError{Type: reqType, Msg: reply.Error}
	}
	if resp != nil && len(reply.Payload) > 0 {
		if err := json.Unmarshal(reply.Payload, resp); err != nil {
			return fmt.Errorf("wire: response unmarshal: %w", err)
		}
	}
	return nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// RemoteError is an error returned by the remote handler.
type RemoteError struct {
	Type string
	Msg  string
}

// Error implements error.
func (e *RemoteError) Error() string { return fmt.Sprintf("remote %s: %s", e.Type, e.Msg) }
