package core

import (
	"math"

	"repro/internal/bus"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Predictor is a logistic-regression failure predictor over telemetry
// features (§4: "machine learning techniques to predict failures"),
// implemented from scratch: z-score normalization plus full-batch gradient
// descent. It is deliberately simple — the experiment (T4) measures what
// even a linear model buys when the features are flap statistics.
type Predictor struct {
	W    []float64
	B    float64
	mean []float64
	std  []float64

	Trained bool
}

// NewPredictor returns an untrained predictor.
func NewPredictor() *Predictor { return &Predictor{} }

// Train fits the model. X is the feature matrix, y the fail-soon labels.
func (p *Predictor) Train(X [][]float64, y []bool) {
	if len(X) == 0 {
		return
	}
	d := len(X[0])
	p.mean = make([]float64, d)
	p.std = make([]float64, d)
	for j := 0; j < d; j++ {
		var m float64
		for _, x := range X {
			m += x[j]
		}
		m /= float64(len(X))
		var v float64
		for _, x := range X {
			v += (x[j] - m) * (x[j] - m)
		}
		v /= float64(len(X))
		p.mean[j] = m
		p.std[j] = math.Sqrt(v)
		if p.std[j] < 1e-9 {
			p.std[j] = 1
		}
	}
	// One flat backing array for the normalized matrix: n small row allocs
	// collapse into one, which keeps weekly retraining off the GC's back.
	flat := make([]float64, len(X)*d)
	norm := make([][]float64, len(X))
	for i, x := range X {
		row := flat[i*d : (i+1)*d : (i+1)*d]
		for j := range x {
			row[j] = (x[j] - p.mean[j]) / p.std[j]
		}
		norm[i] = row
	}
	// Class weighting: failures are rare; upweight positives to balance.
	pos := 0
	for _, label := range y {
		if label {
			pos++
		}
	}
	if pos == 0 || pos == len(y) {
		return // degenerate dataset; stay untrained
	}
	posW := float64(len(y)-pos) / float64(pos)

	// Labels and class weights as flat arrays: the epoch loop below touches
	// every sample 300 times, so hoist the per-sample branching out of it.
	target := make([]float64, len(y))
	weight := make([]float64, len(y))
	for i, label := range y {
		weight[i] = 1
		if label {
			target[i] = 1
			weight[i] = posW
		}
	}

	p.W = make([]float64, d)
	p.B = 0
	const epochs = 300
	lr := 0.1
	n := float64(len(norm))
	gw := make([]float64, d)
	for e := 0; e < epochs; e++ {
		clear(gw)
		gb := 0.0
		for i, x := range norm {
			pred := sigmoid(dot(p.W, x) + p.B)
			err := (pred - target[i]) * weight[i]
			for j := range x {
				gw[j] += err * x[j]
			}
			gb += err
		}
		for j := range p.W {
			p.W[j] -= lr * gw[j] / n
		}
		p.B -= lr * gb / n
	}
	p.Trained = true
}

// Score returns the fail-soon probability for a feature vector.
func (p *Predictor) Score(x []float64) float64 {
	if !p.Trained {
		return 0
	}
	z := p.B
	for j := range x {
		z += p.W[j] * (x[j] - p.mean[j]) / p.std[j]
	}
	return sigmoid(z)
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Quality reports classification metrics on a labelled set at a threshold.
type Quality struct {
	Precision, Recall, F1 float64
	TP, FP, FN, TN        int
}

// Evaluate scores a labelled set.
func (p *Predictor) Evaluate(X [][]float64, y []bool, threshold float64) Quality {
	var q Quality
	for i, x := range X {
		pred := p.Score(x) >= threshold
		switch {
		case pred && y[i]:
			q.TP++
		case pred && !y[i]:
			q.FP++
		case !pred && y[i]:
			q.FN++
		default:
			q.TN++
		}
	}
	if q.TP+q.FP > 0 {
		q.Precision = float64(q.TP) / float64(q.TP+q.FP)
	}
	if q.TP+q.FN > 0 {
		q.Recall = float64(q.TP) / float64(q.TP+q.FN)
	}
	if q.Precision+q.Recall > 0 {
		q.F1 = 2 * q.Precision * q.Recall / (q.Precision + q.Recall)
	}
	return q
}

// snapshot is one (link, time, features) sample awaiting its label.
type snapshot struct {
	link     topology.LinkID
	at       sim.Time
	features []float64
	positive bool
}

// sampleCollector accumulates daily feature snapshots and labels them when
// failures arrive.
type sampleCollector struct {
	horizon   sim.Time
	snapshots []snapshot
	byLink    map[topology.LinkID][]int // indexes into snapshots
}

func newSampleCollector(horizon sim.Time) *sampleCollector {
	return &sampleCollector{horizon: horizon, byLink: make(map[topology.LinkID][]int)}
}

func (sc *sampleCollector) add(link topology.LinkID, at sim.Time, features []float64) {
	sc.byLink[link] = append(sc.byLink[link], len(sc.snapshots))
	sc.snapshots = append(sc.snapshots, snapshot{link: link, at: at, features: features})
}

// observeAlert labels recent snapshots of a failing link positive.
func (sc *sampleCollector) observeAlert(a bus.Alert) {
	if a.Kind == bus.AlertLinkRecovered {
		return
	}
	cut := a.At - sc.horizon
	for _, idx := range sc.byLink[a.Link.ID] {
		s := &sc.snapshots[idx]
		if s.at >= cut && s.at <= a.At {
			s.positive = true
		}
	}
}

// dataset returns the matured samples (old enough that their label is
// final) as a training set.
func (sc *sampleCollector) dataset(now sim.Time) (X [][]float64, y []bool) {
	for _, s := range sc.snapshots {
		if now-s.at >= sc.horizon {
			X = append(X, s.features)
			y = append(y, s.positive)
		}
	}
	return X, y
}
