package core

import (
	"repro/internal/diagnosis"
	"repro/internal/faults"
	"repro/internal/ticket"
	"repro/internal/topology"
)

// Decision is one planning verdict: what to do to a ticketed link, at which
// end, and the (possibly corrected) escalation stage to record.
type Decision struct {
	Action faults.Action
	End    faults.End
	// Stage is the stage the work item should carry after this decision; a
	// policy may fast-forward it (e.g. a reseat requested on a non-pluggable
	// cable jumps straight to cable replacement).
	Stage int
}

// Policy is the Plan stage's pluggable brain: it picks repair actions and
// computes the impact set a manipulation will disturb. Implementations must
// be deterministic given the engine's RNG streams; the default is
// LadderPolicy. Swapping in a custom Policy (via Deps.Policy or
// scenario.Options.Policy) changes escalation behaviour without touching
// dispatch code.
type Policy interface {
	// Decide returns the action for a ticket at the given escalation stage.
	Decide(t *ticket.Ticket, stage int) Decision
	// ImpactSet returns the links to pre-drain before manipulating the port:
	// the target itself plus everything the manipulation will disturb, in
	// drain order.
	ImpactSet(target *topology.Link, port *topology.Port) []topology.LinkID
}

// LadderPolicy is the built-in escalation-ladder policy: walk
// faults.AllActions rung by rung, diagnose which end to service on each
// attempt, and escalate on failure. Proactive/predictive tickets on healthy
// links reseat-then-clean and never escalate to replacement.
type LadderPolicy struct {
	diag *diagnosis.Engine
	inj  *faults.Injector
}

// NewLadderPolicy builds the default policy over a diagnosis engine and the
// fault injector's disturbance reporting.
func NewLadderPolicy(diag *diagnosis.Engine, inj *faults.Injector) *LadderPolicy {
	return &LadderPolicy{diag: diag, inj: inj}
}

// Decide implements Policy.
func (p *LadderPolicy) Decide(t *ticket.Ticket, stage int) Decision {
	if t.Kind != ticket.Reactive && t.Symptom == faults.Healthy {
		// Proactive/predictive maintenance on a healthy link: stage 0 is a
		// reseat, stage 1 a clean; never escalate to replacement. Both get
		// end A (both ends are serviced across a campaign).
		a := faults.Reseat
		if stage >= 1 {
			a = faults.Clean
		}
		return Decision{Action: a, End: faults.EndA, Stage: stage}
	}
	// The ladder wraps: if every rung failed (a wrong-end diagnosis can
	// defeat even replacements), start over with a fresh diagnostic pass
	// rather than hammering the top rung forever.
	s := stage % len(faults.AllActions)
	a := faults.AllActions[s]
	// Cleaning only applies to separable fiber; skip that rung otherwise.
	if a == faults.Clean && !t.Link.HasSeparableFiber() {
		s = (s + 1) % len(faults.AllActions)
		a = faults.AllActions[s]
	}
	out := stage
	// Reseat requires a pluggable transceiver.
	if a == faults.Reseat && !t.Link.Cable.Class.NeedsTransceiver() {
		a = faults.ReplaceCable
		out = 3
	}
	return Decision{Action: a, End: p.chooseEnd(t.Link, t.Symptom, a), Stage: out}
}

// chooseEnd diagnoses the link to decide which end to service.
func (p *LadderPolicy) chooseEnd(l *topology.Link, symptom faults.Health, action faults.Action) faults.End {
	if symptom == faults.Healthy {
		return faults.EndA
	}
	d := p.diag.Diagnose(l, symptom)
	if action == faults.ReplaceSwitchPort {
		// Switch work must target a switch end.
		if !d.End.Port(l).Device.Kind.IsSwitch() {
			return d.End.Opposite()
		}
	}
	return d.End
}

// ImpactSet implements Policy: the target plus every cable the manipulation
// will contact (the robot API's pre-report).
func (p *LadderPolicy) ImpactSet(target *topology.Link, port *topology.Port) []topology.LinkID {
	ids := []topology.LinkID{target.ID}
	for _, l := range p.inj.DisturbedBy(port) {
		ids = append(ids, l.ID)
	}
	return ids
}
