package core

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/diagnosis"
	"repro/internal/exec"
	"repro/internal/faults"
	"repro/internal/inventory"
	"repro/internal/robot"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/ticket"
	"repro/internal/topology"
	"repro/internal/vision"
	"repro/internal/workforce"
)

// harness wires a full world around a controller.
type harness struct {
	eng    *sim.Engine
	net    *topology.Network
	bus    *bus.Bus
	inj    *faults.Injector
	mon    *telemetry.Monitor
	store  *ticket.Store
	router *routing.Router
	fleet  *robot.Fleet
	crew   *workforce.Crew
	ctrl   *Controller
}

type harnessOpt struct {
	level          Level
	techs          int
	robots         bool
	rates          bool // background fault rates on
	leaves, spines int  // topology size; 0 means 4x2
	mutFaults      func(*faults.Config)
	mutCfg         func(*Config)
	mutRobots      func(*robot.Config)
	seed           uint64
	// wrapRobots/wrapHumans interpose on the executor backends — watchdog
	// tests use them to script actuator faults or strip capability
	// interfaces.
	wrapRobots func(exec.Executor) exec.Executor
	wrapHumans func(exec.Executor) exec.Executor
}

func newHarness(t *testing.T, o harnessOpt) *harness {
	t.Helper()
	if o.leaves == 0 {
		o.leaves, o.spines = 4, 2
	}
	n, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: o.leaves, Spines: o.spines, HostsPerLeaf: 4, Uplinks: 1,
		FabricGbps: 400, HostGbps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.seed == 0 {
		o.seed = 1
	}
	eng := sim.NewEngine(o.seed)
	fcfg := faults.DefaultConfig()
	if !o.rates {
		fcfg.AnnualRate = map[faults.Cause]float64{}
	}
	if o.mutFaults != nil {
		o.mutFaults(&fcfg)
	}
	inj := faults.NewInjector(eng, n, fcfg)
	mon := telemetry.NewMonitor(eng, n, telemetry.DefaultConfig())
	inj.Subscribe(mon)
	b := bus.New(eng)
	mon.PublishTo(b)
	diag := diagnosis.New(eng, mon, inj)
	store := ticket.NewStore(eng, ticket.DefaultConfig())
	router := routing.NewRouter(n, func(id topology.LinkID) bool {
		return inj.Observable(id) != faults.Down
	})
	pool := inventory.NewPool(eng, inventory.DefaultStock(n), 2*sim.Day)
	rcfg := robot.DefaultConfig()
	rcfg.PrimitiveFailProb = 0.002
	if o.mutRobots != nil {
		o.mutRobots(&rcfg)
	}
	vis := vision.New(eng, vision.DefaultConfig(), 8)
	fleet := robot.NewFleet(eng, n, inj, vis, pool, rcfg)
	if o.robots {
		fleet.DeployPerRow()
	}
	crew := workforce.NewCrew(eng, n, inj, pool, workforce.DefaultConfig(), o.techs)
	cfg := DefaultConfig(o.level)
	if o.mutCfg != nil {
		o.mutCfg(&cfg)
	}
	var robots exec.Executor = robot.NewExecutor(fleet)
	if o.wrapRobots != nil {
		robots = o.wrapRobots(robots)
	}
	var humans exec.Executor = workforce.NewExecutor(crew)
	if o.wrapHumans != nil {
		humans = o.wrapHumans(humans)
	}
	ctrl := New(Deps{
		Eng: eng, Net: n, Inj: inj, Diag: diag, Store: store, Router: router,
		Bus:    b,
		Robots: robots,
		Humans: humans,
		Features: func(id topology.LinkID) []float64 {
			return mon.Snapshot(id).Vector()
		},
	}, cfg)
	return &harness{eng: eng, net: n, bus: b, inj: inj, mon: mon, store: store,
		router: router, fleet: fleet, crew: crew, ctrl: ctrl}
}

func (h *harness) sepLink(t *testing.T) *topology.Link {
	t.Helper()
	for _, l := range h.net.SwitchLinks() {
		if l.HasSeparableFiber() {
			return l
		}
	}
	t.Fatal("no separable link")
	return nil
}

func TestL3RobotRepairInMinutes(t *testing.T) {
	h := newHarness(t, harnessOpt{level: L3, techs: 1, robots: true,
		mutFaults: func(fc *faults.Config) {
			fc.FixProb[faults.Reseat][faults.Oxidation] = 1
			fc.DownManifest[faults.Oxidation] = 1
		}})
	l := h.sepLink(t)
	h.eng.Schedule(sim.Hour, "break", func() { h.inj.InduceFault(l, faults.Oxidation) })
	h.eng.RunUntil(6 * sim.Hour)

	sum := h.store.Summarize()
	if sum.Resolved != 1 {
		t.Fatalf("resolved = %d (opened %d)", sum.Resolved, sum.Total)
	}
	if sum.MeanWindow > 30*sim.Minute {
		t.Fatalf("L3 service window %v, want minutes", sum.MeanWindow)
	}
	st := h.ctrl.Stats()
	if st.RobotTasks == 0 || st.HumanTasks != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if h.inj.Observable(l.ID) != faults.Healthy {
		t.Fatal("link not repaired")
	}
}

func TestL0HumanRepairTakesHours(t *testing.T) {
	h := newHarness(t, harnessOpt{level: L0, techs: 2, robots: true, // robots present but unused at L0
		mutFaults: func(fc *faults.Config) {
			fc.FixProb[faults.Reseat][faults.Oxidation] = 1
			fc.DownManifest[faults.Oxidation] = 1
			fc.TouchTransientProb = 0
		}})
	l := h.sepLink(t)
	h.eng.Schedule(10*sim.Hour, "break", func() { h.inj.InduceFault(l, faults.Oxidation) })
	h.eng.RunUntil(3 * sim.Day)

	sum := h.store.Summarize()
	if sum.Resolved != 1 {
		t.Fatalf("resolved = %d", sum.Resolved)
	}
	if sum.MeanWindow < 30*sim.Minute {
		t.Fatalf("L0 service window %v, implausibly fast", sum.MeanWindow)
	}
	st := h.ctrl.Stats()
	if st.RobotTasks != 0 || st.HumanTasks == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestEscalationLadderReachesReplacement(t *testing.T) {
	h := newHarness(t, harnessOpt{level: L3, techs: 1, robots: true,
		mutFaults: func(fc *faults.Config) {
			fc.DownManifest[faults.XcvrDead] = 1
		},
		mutRobots: func(rc *robot.Config) { rc.PrimitiveFailProb = 0 },
	})
	l := h.sepLink(t)
	h.eng.Schedule(sim.Hour, "break", func() { h.inj.InduceFault(l, faults.XcvrDead) })
	h.eng.RunUntil(2 * sim.Day)

	sum := h.store.Summarize()
	if sum.Resolved != 1 {
		t.Fatalf("resolved = %d", sum.Resolved)
	}
	tk := h.store.All()[0]
	if len(tk.Attempts) < 2 {
		t.Fatalf("attempts = %d, expected ladder escalation", len(tk.Attempts))
	}
	last := tk.Attempts[len(tk.Attempts)-1]
	if last.Action != faults.ReplaceXcvr || !last.Fixed {
		t.Fatalf("final attempt: %+v", last)
	}
	// Earlier rungs were tried first.
	if tk.Attempts[0].Action != faults.Reseat {
		t.Fatalf("first attempt: %v", tk.Attempts[0].Action)
	}
}

func TestHumanOnlyActionFallsToCrewAtL3(t *testing.T) {
	h := newHarness(t, harnessOpt{level: L3, techs: 1, robots: true,
		mutFaults: func(fc *faults.Config) {
			fc.DownManifest[faults.CableDamaged] = 1
		}})
	l := h.sepLink(t)
	h.eng.Schedule(sim.Hour, "break", func() { h.inj.InduceFault(l, faults.CableDamaged) })
	h.eng.RunUntil(6 * sim.Day)

	sum := h.store.Summarize()
	if sum.Resolved != 1 {
		t.Fatalf("resolved = %d", sum.Resolved)
	}
	st := h.ctrl.Stats()
	if st.HumanTasks == 0 {
		t.Fatalf("cable replacement never reached a human: %+v", st)
	}
	tk := h.store.All()[0]
	last := tk.Attempts[len(tk.Attempts)-1]
	if last.Action != faults.ReplaceCable {
		t.Fatalf("final action %v", last.Action)
	}
}

func TestImpactAwarePreDrain(t *testing.T) {
	h := newHarness(t, harnessOpt{level: L3, techs: 1, robots: true,
		mutFaults: func(fc *faults.Config) {
			fc.FixProb[faults.Reseat][faults.Oxidation] = 1
			fc.DownManifest[faults.Oxidation] = 1
		}})
	l := h.sepLink(t)
	maxDrained := 0
	h.eng.Every(0, sim.Second, "watch-drains", func(sim.Time) {
		if d := h.router.DrainedCount(); d > maxDrained {
			maxDrained = d
		}
	})
	h.eng.Schedule(sim.Hour, "break", func() { h.inj.InduceFault(l, faults.Oxidation) })
	h.eng.RunUntil(3 * sim.Hour)

	if h.ctrl.Stats().PreDrains == 0 {
		t.Fatal("no pre-drains at L3 with ImpactAware")
	}
	if maxDrained < 2 {
		t.Fatalf("max drained = %d, want target + neighbours", maxDrained)
	}
	if h.router.DrainedCount() != 0 {
		t.Fatal("drains not released after repair")
	}
}

func TestImpactAwareOffMeansNoDrains(t *testing.T) {
	h := newHarness(t, harnessOpt{level: L3, techs: 1, robots: true,
		mutCfg: func(c *Config) { c.ImpactAware = false },
		mutFaults: func(fc *faults.Config) {
			fc.FixProb[faults.Reseat][faults.Oxidation] = 1
			fc.DownManifest[faults.Oxidation] = 1
		}})
	l := h.sepLink(t)
	h.eng.Schedule(sim.Hour, "break", func() { h.inj.InduceFault(l, faults.Oxidation) })
	h.eng.RunUntil(3 * sim.Hour)
	if h.ctrl.Stats().PreDrains != 0 {
		t.Fatal("pre-drains with ImpactAware off")
	}
}

func TestL2DegradedWaitsForSupervisionShift(t *testing.T) {
	h := newHarness(t, harnessOpt{level: L2, techs: 1, robots: true,
		mutFaults: func(fc *faults.Config) {
			fc.FixProb[faults.Reseat][faults.Oxidation] = 1
			fc.DownManifest[faults.Oxidation] = 0 // gray: a P1 ticket
		}})
	l := h.sepLink(t)
	// Fault at 02:00; shift starts 08:00. The link flaps, detection flags
	// it within a couple of hours, and the P1 ticket waits for the shift.
	h.eng.Schedule(2*sim.Hour, "break", func() { h.inj.InduceFault(l, faults.Oxidation) })
	h.eng.RunUntil(sim.Day)

	sum := h.store.Summarize()
	if sum.Resolved != 1 {
		t.Fatalf("resolved = %d (total %d)", sum.Resolved, sum.Total)
	}
	tk := h.store.All()[0]
	if tk.ResolvedAt < 8*sim.Hour {
		t.Fatalf("L2 repaired degraded link at %v, before supervision shift", tk.ResolvedAt)
	}
	if tk.ResolvedAt > 10*sim.Hour {
		t.Fatalf("L2 repair at %v, long after shift start", tk.ResolvedAt)
	}
	if h.ctrl.Stats().RobotTasks == 0 {
		t.Fatal("L2 did not use robots")
	}
}

func TestL2OutageCallsOutTechnicianOffShift(t *testing.T) {
	h := newHarness(t, harnessOpt{level: L2, techs: 1, robots: true,
		mutFaults: func(fc *faults.Config) {
			fc.FixProb[faults.Reseat][faults.Oxidation] = 1
			fc.DownManifest[faults.Oxidation] = 1 // fail-stop: a P0 ticket
		}})
	l := h.sepLink(t)
	h.eng.Schedule(2*sim.Hour, "break", func() { h.inj.InduceFault(l, faults.Oxidation) })
	h.eng.RunUntil(sim.Day)

	sum := h.store.Summarize()
	if sum.Resolved != 1 {
		t.Fatalf("resolved = %d", sum.Resolved)
	}
	tk := h.store.All()[0]
	// The on-call human handles the outage well before shift start.
	if tk.ResolvedAt >= 8*sim.Hour {
		t.Fatalf("L2 outage waited for the shift: resolved at %v", tk.ResolvedAt)
	}
	if h.ctrl.Stats().HumanTasks == 0 {
		t.Fatal("no human callout for the off-shift outage")
	}
}

func TestL1ReservesTechnician(t *testing.T) {
	h := newHarness(t, harnessOpt{level: L1, techs: 1, robots: true,
		mutFaults: func(fc *faults.Config) {
			fc.FixProb[faults.Reseat][faults.Oxidation] = 1
			fc.DownManifest[faults.Oxidation] = 1
		}})
	l := h.sepLink(t)
	h.eng.Schedule(10*sim.Hour, "break", func() { h.inj.InduceFault(l, faults.Oxidation) })
	h.eng.RunUntil(2 * sim.Day)

	sum := h.store.Summarize()
	if sum.Resolved != 1 {
		t.Fatalf("resolved = %d", sum.Resolved)
	}
	// L1 pays human dispatch latency: slower than L3's minutes.
	if sum.MeanWindow < 20*sim.Minute {
		t.Fatalf("L1 window %v implausibly fast", sum.MeanWindow)
	}
	if h.ctrl.Stats().RobotTasks == 0 {
		t.Fatal("L1 did not use the robot")
	}
	// Technician must be free again afterwards.
	if h.crew.FindTech() == nil {
		t.Fatal("technician still reserved")
	}
}

func TestProactiveCampaignTriggers(t *testing.T) {
	h := newHarness(t, harnessOpt{level: L4, techs: 1, robots: true,
		leaves: 8, spines: 2,
		mutCfg: func(c *Config) {
			c.ProactiveTrigger = 2
			c.Predictive = false
		},
		mutFaults: func(fc *faults.Config) {
			fc.FixProb[faults.Reseat][faults.Oxidation] = 1
			fc.DownManifest[faults.Oxidation] = 1
			fc.TouchTransientProb = 0
			fc.TouchPermanentProb = 0
		},
		mutRobots: func(rc *robot.Config) { rc.PrimitiveFailProb = 0 },
	})
	// Two oxidation faults on links of the same spine, spaced out.
	spine := h.net.DevicesOfKind(topology.SpineSwitch)[0]
	var spineLinks []*topology.Link
	for _, np := range h.net.Neighbors(spine.ID) {
		if np.Link.Cable.Class.NeedsTransceiver() {
			spineLinks = append(spineLinks, np.Link)
		}
	}
	if len(spineLinks) < 3 {
		t.Fatalf("spine has %d pluggable links", len(spineLinks))
	}
	h.eng.Schedule(sim.Hour, "break1", func() { h.inj.InduceFault(spineLinks[0], faults.Oxidation) })
	h.eng.Schedule(5*sim.Hour, "break2", func() { h.inj.InduceFault(spineLinks[1], faults.Oxidation) })
	h.eng.RunUntil(3 * sim.Day)

	st := h.ctrl.Stats()
	if st.ProactiveCampaigns == 0 {
		t.Fatalf("no campaign after 2 reseat fixes on one switch: %+v", st)
	}
	if st.ProactiveTasks == 0 {
		t.Fatal("campaign opened no tasks")
	}
	sum := h.store.Summarize()
	if sum.ByKind[ticket.Proactive] == 0 {
		t.Fatal("no proactive tickets filed")
	}
	// Proactive work eventually resolves too.
	if sum.Resolved < 2+sum.ByKind[ticket.Proactive]/2 {
		t.Fatalf("resolved=%d of total=%d", sum.Resolved, sum.Total)
	}
}

func TestUtilizationGateDefersProactive(t *testing.T) {
	util := 0.9
	h := newHarness(t, harnessOpt{level: L4, techs: 1, robots: true,
		mutCfg: func(c *Config) {
			c.ProactiveTrigger = 1
			c.Predictive = false
			c.UtilFn = func() float64 { return util }
		},
		mutFaults: func(fc *faults.Config) {
			fc.FixProb[faults.Reseat][faults.Oxidation] = 1
			fc.DownManifest[faults.Oxidation] = 1
			fc.TouchTransientProb = 0
			fc.TouchPermanentProb = 0
		},
		mutRobots: func(rc *robot.Config) { rc.PrimitiveFailProb = 0 },
	})
	l := h.sepLink(t)
	h.eng.Schedule(sim.Hour, "break", func() { h.inj.InduceFault(l, faults.Oxidation) })
	h.eng.RunUntil(12 * sim.Hour)

	sum := h.store.Summarize()
	if sum.ByKind[ticket.Proactive] == 0 {
		t.Fatal("no proactive tickets")
	}
	// Under high utilization, proactive tickets stay unresolved.
	for _, tk := range h.store.All() {
		if tk.Kind == ticket.Proactive && tk.Status == ticket.Resolved {
			t.Fatal("proactive work ran during high utilization")
		}
	}
	// Drop utilization: the deferred work proceeds.
	util = 0.1
	h.eng.RunUntil(h.eng.Now() + 2*sim.Day)
	resolved := 0
	for _, tk := range h.store.All() {
		if tk.Kind == ticket.Proactive && tk.Status == ticket.Resolved {
			resolved++
		}
	}
	if resolved == 0 {
		t.Fatal("proactive work never ran after utilization dropped")
	}
}

func TestYearLongSmokeAtL3(t *testing.T) {
	h := newHarness(t, harnessOpt{level: L3, techs: 2, robots: true, rates: true,
		mutFaults: func(fc *faults.Config) {
			for c := range fc.AnnualRate {
				fc.AnnualRate[c] *= 20 // compress years of failures into the run
			}
		}})
	h.eng.RunUntil(180 * sim.Day)
	sum := h.store.Summarize()
	if sum.Total == 0 {
		t.Fatal("no tickets in 180 days with default rates")
	}
	if sum.Resolved == 0 {
		t.Fatal("nothing resolved")
	}
	// The overwhelming majority of tickets must be closed.
	open := sum.Total - sum.Resolved - sum.Cancelled
	if open > sum.Total/4 {
		t.Fatalf("too many stuck tickets: %d open of %d", open, sum.Total)
	}
	// Every drain is held by an in-flight work item — none leaked.
	if h.router.DrainedCount() != h.ctrl.HeldDrains() {
		t.Fatalf("leaked drains: router=%d held=%d", h.router.DrainedCount(), h.ctrl.HeldDrains())
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int, int) {
		h := newHarness(t, harnessOpt{level: L3, techs: 2, robots: true, rates: true, seed: 99,
			mutFaults: func(fc *faults.Config) {
				for c := range fc.AnnualRate {
					fc.AnnualRate[c] *= 20
				}
			}})
		h.eng.RunUntil(60 * sim.Day)
		sum := h.store.Summarize()
		return sum.Total, sum.Resolved
	}
	t1, r1 := run()
	t2, r2 := run()
	if t1 != t2 || r1 != r2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", t1, r1, t2, r2)
	}
}

func TestPredictorTrainsOnSeparableData(t *testing.T) {
	p := NewPredictor()
	if p.Score([]float64{1, 2}) != 0 {
		t.Fatal("untrained score nonzero")
	}
	// Synthetic: label = x0 > 5 with a margin.
	var X [][]float64
	var y []bool
	rng := sim.NewEngine(5).RNG("synth")
	for i := 0; i < 2000; i++ {
		x0 := rng.Float64() * 10
		x1 := rng.Float64()
		X = append(X, []float64{x0, x1})
		y = append(y, x0 > 5)
	}
	p.Train(X, y)
	if !p.Trained {
		t.Fatal("not trained")
	}
	q := p.Evaluate(X, y, 0.5)
	if q.F1 < 0.9 {
		t.Fatalf("F1 = %v on separable data (q=%+v)", q.F1, q)
	}
	if q.Precision <= 0 || q.Recall <= 0 {
		t.Fatal("degenerate quality")
	}
}

func TestPredictorDegenerateDatasets(t *testing.T) {
	p := NewPredictor()
	p.Train(nil, nil)
	if p.Trained {
		t.Fatal("trained on empty data")
	}
	p.Train([][]float64{{1}, {2}}, []bool{false, false})
	if p.Trained {
		t.Fatal("trained on single-class data")
	}
}

func TestPredictiveLoopLifecycle(t *testing.T) {
	h := newHarness(t, harnessOpt{level: L4, techs: 2, robots: true, rates: true,
		mutFaults: func(fc *faults.Config) {
			for c := range fc.AnnualRate {
				fc.AnnualRate[c] *= 20
			}
		},
		mutCfg: func(c *Config) {
			c.Proactive = false
			c.PredictTrainAfter = 30 * sim.Day
			c.PredictThreshold = 0.6
		}})
	h.eng.RunUntil(120 * sim.Day)
	if h.ctrl.PredictorHandle() == nil {
		t.Fatal("no predictor at L4")
	}
	if !h.ctrl.PredictorHandle().Trained {
		// Training can legitimately fail only if no failures happened at all.
		X, y := h.ctrl.CollectorDataset()
		pos := 0
		for _, v := range y {
			if v {
				pos++
			}
		}
		t.Fatalf("predictor untrained after 120d (samples=%d, positives=%d)", len(X), pos)
	}
}

func TestLevelString(t *testing.T) {
	if L3.String() != "L3" {
		t.Fatal("level string")
	}
}

func TestSafetyInterlockKeepsRobotsOutOfOccupiedRows(t *testing.T) {
	h := newHarness(t, harnessOpt{level: L3, techs: 1, robots: true,
		mutFaults: func(fc *faults.Config) {
			fc.FixProb[faults.Reseat][faults.Oxidation] = 1
			fc.DownManifest[faults.Oxidation] = 1
			fc.DownManifest[faults.CableDamaged] = 1
			fc.TouchTransientProb = 0
			fc.TouchPermanentProb = 0
		},
		mutRobots: func(rc *robot.Config) { rc.PrimitiveFailProb = 0 },
	})
	// Two faults in the same row: a cable job (human-only, hours of
	// hands-on) and an oxidation (robot-fixable in minutes). While the
	// technician works the row, the robot must hold off.
	var cableLink, oxLink *topology.Link
	for _, l := range h.net.SwitchLinks() {
		if !l.HasSeparableFiber() {
			continue
		}
		if cableLink == nil {
			cableLink = l
			continue
		}
		if l.A.Device.Loc.Row == cableLink.A.Device.Loc.Row && oxLink == nil {
			oxLink = l
		}
	}
	if cableLink == nil || oxLink == nil {
		t.Skip("no two separable links share a row in this build")
	}
	h.eng.Schedule(10*sim.Hour, "break-cable", func() { h.inj.InduceFault(cableLink, faults.CableDamaged) })
	// Break the second link once the technician is hands-on (dispatch takes
	// roughly an hour mid-shift).
	h.eng.Schedule(14*sim.Hour, "break-ox", func() {
		if h.inj.State(oxLink.ID).Cause == faults.None {
			h.inj.InduceFault(oxLink, faults.Oxidation)
		}
	})
	h.eng.RunUntil(3 * sim.Day)

	st := h.ctrl.Stats()
	if st.SafetyHolds == 0 {
		t.Skip("technician was not hands-on when the robot wanted the row (timing-dependent); invariant covered when holds occur")
	}
	// Both tickets still resolve.
	sum := h.store.Summarize()
	if sum.Resolved != sum.Total {
		t.Fatalf("resolved %d of %d with safety holds", sum.Resolved, sum.Total)
	}
}

func TestJournalRecordsDecisionTrail(t *testing.T) {
	h := newHarness(t, harnessOpt{level: L3, techs: 1, robots: true,
		mutFaults: func(fc *faults.Config) {
			fc.FixProb[faults.Reseat][faults.Oxidation] = 1
			fc.DownManifest[faults.Oxidation] = 1
		}})
	l := h.sepLink(t)
	h.eng.Schedule(sim.Hour, "break", func() { h.inj.InduceFault(l, faults.Oxidation) })
	h.eng.RunUntil(6 * sim.Hour)

	entries := h.ctrl.Journal(0)
	if len(entries) < 3 {
		t.Fatalf("journal has %d entries", len(entries))
	}
	kinds := map[EventKind]bool{}
	for _, e := range entries {
		kinds[e.Kind] = true
		if e.String() == "" {
			t.Fatal("empty journal line")
		}
	}
	for _, want := range []EventKind{EvTicketOpened, EvDispatchRobot, EvPreDrain, EvTicketResolved} {
		if !kinds[want] {
			t.Fatalf("journal missing %v; have %v", want, entries)
		}
	}
	// Entries are time-ordered.
	for i := 1; i < len(entries); i++ {
		if entries[i].At < entries[i-1].At {
			t.Fatal("journal out of order")
		}
	}
	// Tail limiting works.
	if got := h.ctrl.Journal(2); len(got) != 2 {
		t.Fatalf("tail(2) = %d entries", len(got))
	}
}

func TestJournalRingWraps(t *testing.T) {
	var j journal
	for i := 0; i < journalCap+10; i++ {
		j.add(JournalEntry{At: sim.Time(i), Ticket: i})
	}
	all := j.tail(0)
	if len(all) != journalCap {
		t.Fatalf("ring holds %d, want %d", len(all), journalCap)
	}
	if all[0].Ticket != 10 || all[len(all)-1].Ticket != journalCap+9 {
		t.Fatalf("ring contents wrong: first=%d last=%d", all[0].Ticket, all[len(all)-1].Ticket)
	}
	if EvSafetyHold.String() == "" || EventKind(99).String() == "" {
		t.Fatal("kind names")
	}
}
