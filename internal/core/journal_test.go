package core

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

func entry(i int) JournalEntry {
	return JournalEntry{At: sim.Time(i) * sim.Second, Kind: EvTicketOpened,
		Ticket: i, Link: "l", Detail: fmt.Sprintf("e%d", i)}
}

// TestJournalTailPartial covers the pre-wrap regime: everything added is
// retained, oldest first, and tail(n) trims from the front.
func TestJournalTailPartial(t *testing.T) {
	var j journal
	if got := j.tail(0); len(got) != 0 {
		t.Fatalf("empty journal returned %d entries", len(got))
	}
	for i := 0; i < 10; i++ {
		j.add(entry(i))
	}
	all := j.tail(0)
	if len(all) != 10 {
		t.Fatalf("tail(0) = %d entries, want 10", len(all))
	}
	for i, e := range all {
		if e.Ticket != i {
			t.Fatalf("tail(0)[%d].Ticket = %d, want %d", i, e.Ticket, i)
		}
	}
	last3 := j.tail(3)
	if len(last3) != 3 || last3[0].Ticket != 7 || last3[2].Ticket != 9 {
		t.Fatalf("tail(3) = %v, want tickets 7..9", last3)
	}
	// Asking for more than retained returns what exists.
	if got := j.tail(100); len(got) != 10 {
		t.Fatalf("tail(100) = %d entries, want 10", len(got))
	}
}

// TestJournalTruncatesAtCapacity covers the ring semantics: once more than
// journalCap entries are added, only the newest journalCap survive, still
// oldest first.
func TestJournalTruncatesAtCapacity(t *testing.T) {
	var j journal
	const extra = 100
	for i := 0; i < journalCap+extra; i++ {
		j.add(entry(i))
	}
	all := j.tail(0)
	if len(all) != journalCap {
		t.Fatalf("tail(0) after wrap = %d entries, want %d", len(all), journalCap)
	}
	if all[0].Ticket != extra {
		t.Fatalf("oldest retained = %d, want %d (first %d truncated)",
			all[0].Ticket, extra, extra)
	}
	for i := 1; i < len(all); i++ {
		if all[i].Ticket != all[i-1].Ticket+1 {
			t.Fatalf("ordering broken at %d: %d after %d", i, all[i].Ticket, all[i-1].Ticket)
		}
	}
	if last := all[len(all)-1].Ticket; last != journalCap+extra-1 {
		t.Fatalf("newest retained = %d, want %d", last, journalCap+extra-1)
	}
}

// TestJournalTailAtExactCapacity covers the boundary where add has filled
// every slot and reset next to 0: the ring is full but nothing has been
// overwritten yet, and tail must not drop or duplicate the entry at the
// wrap point.
func TestJournalTailAtExactCapacity(t *testing.T) {
	var j journal
	for i := 0; i < journalCap; i++ {
		j.add(entry(i))
	}
	if !j.full || j.next != 0 {
		t.Fatalf("after %d adds: full=%v next=%d, want full=true next=0", journalCap, j.full, j.next)
	}
	all := j.tail(0)
	if len(all) != journalCap {
		t.Fatalf("tail(0) = %d entries, want %d", len(all), journalCap)
	}
	if all[0].Ticket != 0 || all[journalCap-1].Ticket != journalCap-1 {
		t.Fatalf("exactly-full tail spans %d..%d, want 0..%d",
			all[0].Ticket, all[journalCap-1].Ticket, journalCap-1)
	}
}

// TestJournalTailLimitAcrossWrap asks for a tail that straddles the ring's
// next pointer: after wrapping, the newest entries live before next and the
// oldest after it, and an n-limited tail must splice them in time order.
func TestJournalTailLimitAcrossWrap(t *testing.T) {
	var j journal
	const extra = 3
	for i := 0; i < journalCap+extra; i++ {
		j.add(entry(i))
	}
	// next == extra: slots [extra:] hold the older half, [:extra] the newest
	// three. A 10-entry tail needs 7 from before the boundary and 3 after.
	got := j.tail(10)
	if len(got) != 10 {
		t.Fatalf("tail(10) = %d entries, want 10", len(got))
	}
	want := journalCap + extra - 10
	for i, e := range got {
		if e.Ticket != want+i {
			t.Fatalf("tail(10)[%d].Ticket = %d, want %d", i, e.Ticket, want+i)
		}
	}
}

// TestJournalTailIsACopy verifies that mutating a returned slice cannot
// corrupt the ring.
func TestJournalTailIsACopy(t *testing.T) {
	var j journal
	for i := 0; i < 5; i++ {
		j.add(entry(i))
	}
	got := j.tail(0)
	got[0].Ticket = 999
	if again := j.tail(0); again[0].Ticket != 0 {
		t.Fatalf("ring mutated through tail() result: ticket %d", again[0].Ticket)
	}
}

func TestJournalEntryString(t *testing.T) {
	e := JournalEntry{At: 90 * sim.Second, Kind: EvDispatchRobot,
		Ticket: 7, Link: "leaf0/p0<->spine0/p0", Detail: "reseat@A"}
	want := "[00:01:30.000] dispatch-robot T7 leaf0/p0<->spine0/p0: reseat@A"
	if e.String() != want {
		t.Fatalf("String() = %q, want %q", e.String(), want)
	}
	// Non-ticket-scoped entries omit the T and link fields.
	e2 := JournalEntry{At: 0, Kind: EvProactiveCampaign, Ticket: -1}
	if got := e2.String(); got != "[00:00:00.000] proactive-campaign" {
		t.Fatalf("String() = %q", got)
	}
}
