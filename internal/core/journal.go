package core

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/sim"
)

// EventKind classifies a controller decision for the journal.
type EventKind uint8

// Journal event kinds.
const (
	EvTicketOpened EventKind = iota
	EvTicketResolved
	EvTicketCancelled
	EvDispatchRobot
	EvDispatchHuman
	EvPreDrain
	EvEscalateLadder
	EvEscalateHuman
	EvSafetyHold
	EvStockoutWait
	EvChronic
	EvProactiveCampaign
	EvPredictiveTicket
	EvWatchdog
	EvDegraded
	EvLateOutcome
)

var eventKindNames = [...]string{
	EvTicketOpened:      "ticket-opened",
	EvTicketResolved:    "ticket-resolved",
	EvTicketCancelled:   "ticket-cancelled",
	EvDispatchRobot:     "dispatch-robot",
	EvDispatchHuman:     "dispatch-human",
	EvPreDrain:          "pre-drain",
	EvEscalateLadder:    "escalate-ladder",
	EvEscalateHuman:     "escalate-human",
	EvSafetyHold:        "safety-hold",
	EvStockoutWait:      "stockout-wait",
	EvChronic:           "chronic",
	EvProactiveCampaign: "proactive-campaign",
	EvPredictiveTicket:  "predictive-ticket",
	EvWatchdog:          "watchdog-fired",
	EvDegraded:          "degraded-to-human",
	EvLateOutcome:       "late-outcome",
}

// String returns the kind name.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// JournalEntry is one controller decision, in virtual time.
type JournalEntry struct {
	At     sim.Time
	Kind   EventKind
	Ticket int    // ticket ID, -1 when not ticket-scoped
	Link   string // link name, "" when not link-scoped
	Detail string
}

// String renders a log line.
func (e JournalEntry) String() string {
	s := fmt.Sprintf("[%v] %s", e.At, e.Kind)
	if e.Ticket >= 0 {
		s += fmt.Sprintf(" T%d", e.Ticket)
	}
	if e.Link != "" {
		s += " " + e.Link
	}
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	return s
}

// journal is a bounded ring of recent controller decisions: the audit trail
// an operator tails to understand what the control plane is doing and why —
// the observability face of the paper's "controllable and understood by the
// software service" requirement (§2).
type journal struct {
	entries []JournalEntry
	next    int
	full    bool
}

const journalCap = 4096

func (j *journal) add(e JournalEntry) {
	if cap(j.entries) == 0 {
		j.entries = make([]JournalEntry, journalCap)
	}
	j.entries[j.next] = e
	j.next++
	if j.next == len(j.entries) {
		j.next = 0
		j.full = true
	}
}

// tail returns up to n most recent entries, oldest first.
func (j *journal) tail(n int) []JournalEntry {
	var all []JournalEntry
	if j.full {
		all = append(all, j.entries[j.next:]...)
		all = append(all, j.entries[:j.next]...)
	} else {
		all = j.entries[:j.next]
	}
	if n > 0 && len(all) > n {
		all = all[len(all)-n:]
	}
	out := make([]JournalEntry, len(all))
	copy(out, all)
	return out
}

// log publishes a controller decision on the bus; the journal retains it
// via its journal.decision subscription, and any tap (the daemon's /events
// stream, tests) sees it in order with the rest of the pipeline's events.
func (c *Controller) log(kind EventKind, ticketID int, link, detail string) {
	c.d.Bus.Publish(bus.TopicDecision, JournalEntry{
		At: c.d.Eng.Now(), Kind: kind, Ticket: ticketID, Link: link, Detail: detail,
	})
}

// Journal returns up to n recent controller decisions, oldest first (n <= 0
// returns everything retained).
func (c *Controller) Journal(n int) []JournalEntry {
	return c.journal.tail(n)
}
