package core

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/faults"
	"repro/internal/ticket"
	"repro/internal/topology"
)

// Triage is the pipeline stage that turns Sense-stage alerts and Plan-stage
// repair requests into ticket lifecycle transitions. It consumes
// sense.alert and plan.request and publishes triage.ticket; Act maintains
// its work queue from those events.
type Triage struct {
	c *Controller
}

func newTriage(c *Controller) *Triage { return &Triage{c: c} }

// onAlert consumes one sense.alert event.
func (tr *Triage) onAlert(ev bus.Event) {
	a, ok := ev.Payload.(bus.Alert)
	if !ok {
		return
	}
	c := tr.c
	switch a.Kind {
	case bus.AlertLinkDown:
		tr.openTicket(a.Link, ticket.Reactive, faults.Down, ticket.P0)
	case bus.AlertLinkFlapping:
		tr.openTicket(a.Link, ticket.Reactive, faults.Flapping, ticket.P1)
	case bus.AlertLinkRecovered:
		// A link that healed with no physical work in flight closes its
		// ticket (transient or masked fault cleared by itself).
		if t := c.d.Store.OpenFor(a.Link.ID); t != nil {
			if !c.act.inFlight(t.ID) {
				c.d.Store.Cancel(t)
				c.d.Bus.Publish(bus.TopicTicket, bus.TicketEvent{
					Kind: bus.TicketCancelled, ID: t.ID, Link: a.Link,
				})
				c.stats.TicketsCancelled++
				c.log(EvTicketCancelled, t.ID, a.Link.Name(), "recovered without intervention")
			}
		}
	}
}

// onRequest consumes one plan.request event: background maintenance the
// Planner wants opened on a healthy link.
func (tr *Triage) onRequest(ev bus.Event) {
	r, ok := ev.Payload.(bus.RepairRequest)
	if !ok {
		return
	}
	kind := ticket.Proactive
	if r.Predictive {
		kind = ticket.Predictive
	}
	tr.openTicket(r.Link, kind, faults.Healthy, ticket.P2)
}

// openTicket files (or dedups into) a ticket and announces the transition;
// Act picks the ticket up from the triage.ticket event.
func (tr *Triage) openTicket(l *topology.Link, kind ticket.Kind, symptom faults.Health, prio ticket.Priority) {
	c := tr.c
	t, created := c.d.Store.Open(l, kind, symptom, prio)
	if !created {
		c.d.Bus.Publish(bus.TopicTicket, bus.TicketEvent{
			Kind: bus.TicketDeduped, ID: t.ID, Link: l,
		})
		return
	}
	c.stats.TicketsOpened++
	c.d.Bus.Publish(bus.TopicTicket, bus.TicketEvent{
		Kind: bus.TicketOpened, ID: t.ID, Link: l, Reactive: kind == ticket.Reactive,
	})
	detail := fmt.Sprintf("%v %v %v", kind, symptom, prio)
	if t.RepeatOf >= 0 {
		detail += fmt.Sprintf(" (repeat of T%d, start stage %d)", t.RepeatOf, t.StartStage)
	}
	c.log(EvTicketOpened, t.ID, l.Name(), detail)
}
