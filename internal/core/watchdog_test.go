package core

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/faults"
	"repro/internal/robot"
	"repro/internal/sim"
	"repro/internal/topology"
)

// scriptedExec wraps an executor backend with a per-dispatch fault plan:
// entry i applies to the i-th Execute call. Modes: "stall" (no work, no
// report — only the watchdog recovers), "lost" (work performed, report
// dropped), "slow" (work performed, report delayed by slowBy). Dispatches
// beyond the plan pass through untouched. Unlike the probabilistic chaos
// wrapper in internal/exec, the plan is exact, so tests can assert precise
// watchdog fire counts. It deliberately does not implement
// exec.DurationEstimator: the watchdog then arms at the configured floor,
// a deadline the tests can predict.
type scriptedExec struct {
	inner  exec.Executor
	eng    *sim.Engine
	plan   []string
	slowBy sim.Time
	n      int
}

func (s *scriptedExec) CanPerform(a faults.Action) bool        { return s.inner.CanPerform(a) }
func (s *scriptedExec) Claim(loc topology.Location) exec.Actor { return s.inner.Claim(loc) }

func (s *scriptedExec) Execute(a exec.Actor, t exec.Task, done func(exec.Outcome)) {
	mode := ""
	if s.n < len(s.plan) {
		mode = s.plan[s.n]
	}
	s.n++
	switch mode {
	case "stall":
		// Wedged before doing anything: no work, no report.
	case "lost":
		s.inner.Execute(a, t, func(exec.Outcome) {})
	case "slow":
		s.inner.Execute(a, t, func(out exec.Outcome) {
			s.eng.After(s.slowBy, "scripted-slow-report", func() { done(out) })
		})
	default:
		s.inner.Execute(a, t, done)
	}
}

// watchdogHarness builds the standard watchdog test world: L3 with one
// technician and a robot fleet, a single oxidation fault that a reseat
// always fixes, and the robot lane wrapped in a scripted fault plan.
func watchdogHarness(t *testing.T, plan []string, slowBy sim.Time) (*harness, *scriptedExec) {
	t.Helper()
	sx := &scriptedExec{plan: plan, slowBy: slowBy}
	h := newHarness(t, harnessOpt{level: L3, techs: 1, robots: true,
		mutFaults: func(fc *faults.Config) {
			fc.FixProb[faults.Reseat][faults.Oxidation] = 1
			fc.DownManifest[faults.Oxidation] = 1
			fc.TouchTransientProb = 0
			fc.TouchPermanentProb = 0
		},
		mutRobots: func(rc *robot.Config) { rc.PrimitiveFailProb = 0 },
		wrapRobots: func(inner exec.Executor) exec.Executor {
			sx.inner = inner
			return sx
		},
	})
	sx.eng = h.eng
	return h, sx
}

// TestWatchdogStateMachine drives the stall → timeout → retry → escalate
// machinery end to end for each actuator failure mode and asserts the
// core invariant: a misbehaving actuator delays a ticket but never wedges
// it, and every resource the force-failed attempt held is released.
func TestWatchdogStateMachine(t *testing.T) {
	cases := []struct {
		name   string
		plan   []string
		slowBy sim.Time
		// Exact expected counters: the scripted plan makes them deterministic.
		wantFires    int
		wantDegraded int
		wantLate     int
		wantHuman    bool
	}{
		{
			name:      "stall then retry recovers",
			plan:      []string{"stall"},
			wantFires: 1,
		},
		{
			// RobotFailLimit (3) consecutive stalls degrade the ticket to the
			// human lane for good.
			name:         "repeated stalls degrade to human",
			plan:         []string{"stall", "stall", "stall"},
			wantFires:    3,
			wantDegraded: 1,
			wantHuman:    true,
		},
		{
			// Work done, report dropped: the watchdog retry performs a
			// redundant attempt on the now-healthy link and settles.
			name:      "lost outcome retries over healthy link",
			plan:      []string{"lost"},
			wantFires: 1,
		},
		{
			// Report delayed past the deadline: the watchdog wins the race,
			// and the late outcome must land inertly (no double release).
			name:      "slow completion loses race to watchdog",
			plan:      []string{"slow"},
			slowBy:    6 * sim.Hour,
			wantFires: 1,
			wantLate:  1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, _ := watchdogHarness(t, tc.plan, tc.slowBy)
			l := h.sepLink(t)
			h.eng.Schedule(sim.Hour, "break", func() { h.inj.InduceFault(l, faults.Oxidation) })
			h.eng.RunUntil(3 * sim.Day)

			sum := h.store.Summarize()
			if sum.Resolved != 1 {
				t.Fatalf("resolved = %d of %d: actuator fault wedged the ticket", sum.Resolved, sum.Total)
			}
			if h.inj.Observable(l.ID) != faults.Healthy {
				t.Fatal("link not repaired")
			}
			st := h.ctrl.Stats()
			if st.WatchdogFires != tc.wantFires {
				t.Fatalf("WatchdogFires = %d, want %d", st.WatchdogFires, tc.wantFires)
			}
			if st.DegradedTickets != tc.wantDegraded {
				t.Fatalf("DegradedTickets = %d, want %d", st.DegradedTickets, tc.wantDegraded)
			}
			if st.LateOutcomes != tc.wantLate {
				t.Fatalf("LateOutcomes = %d, want %d", st.LateOutcomes, tc.wantLate)
			}
			if tc.wantHuman && st.HumanTasks == 0 {
				t.Fatalf("degraded ticket never reached the human lane: %+v", st)
			}
			if !tc.wantHuman && st.HumanTasks != 0 {
				t.Fatalf("ticket escalated to a human without degradation: %+v", st)
			}
			// Every force-fail is a recorded (auditable) attempt.
			tk := h.store.All()[0]
			forced := 0
			for _, at := range tk.Attempts {
				if at.Note == "watchdog: no outcome within budget" {
					forced++
				}
			}
			if forced != tc.wantFires {
				t.Fatalf("%d force-failed attempts recorded, want %d", forced, tc.wantFires)
			}
			// The watchdog released everything the attempts held: no leaked
			// drains, no retained work item, and the technician pool intact.
			if h.router.DrainedCount() != 0 || h.ctrl.HeldDrains() != 0 {
				t.Fatalf("leaked drains: router=%d held=%d", h.router.DrainedCount(), h.ctrl.HeldDrains())
			}
			if len(h.ctrl.act.work) != 0 {
				t.Fatalf("work map retains %d item(s) after resolution", len(h.ctrl.act.work))
			}
			if h.crew.FindTech() == nil {
				t.Fatal("technician still reserved after resolution")
			}
			// The first watchdog cannot fire before the configured floor.
			if tk.ResolvedAt < sim.Hour+h.ctrl.cfg.WatchdogFloor {
				t.Fatalf("resolved at %v, before the first watchdog deadline could expire", tk.ResolvedAt)
			}
		})
	}
}

// TestRetryBackoffDoublesAndCaps pins the deterministic backoff schedule:
// base doubled per recorded attempt, clamped at the cap, zero when disabled.
func TestRetryBackoffDoublesAndCaps(t *testing.T) {
	a := &Act{c: &Controller{cfg: Config{RetryBackoff: 15 * sim.Minute, RetryBackoffCap: 6 * sim.Hour}}}
	cases := []struct {
		attempt int
		want    sim.Time
	}{
		{0, 15 * sim.Minute},
		{1, 15 * sim.Minute},
		{2, 30 * sim.Minute},
		{3, sim.Hour},
		{4, 2 * sim.Hour},
		{5, 4 * sim.Hour},
		{6, 6 * sim.Hour},
		{12, 6 * sim.Hour},
	}
	for _, tc := range cases {
		if got := a.retryBackoff(tc.attempt); got != tc.want {
			t.Errorf("retryBackoff(%d) = %v, want %v", tc.attempt, got, tc.want)
		}
	}
	off := &Act{c: &Controller{cfg: Config{}}}
	if got := off.retryBackoff(5); got != 0 {
		t.Errorf("disabled backoff returned %v", got)
	}
}

// bareExec strips every optional capability interface except the duration
// estimator from an executor — the shape of a minimal third-party human
// backend with no operator pool, shift calendar, or row occupancy.
type bareExec struct{ inner exec.Executor }

func (b bareExec) CanPerform(a faults.Action) bool        { return b.inner.CanPerform(a) }
func (b bareExec) Claim(loc topology.Location) exec.Actor { return b.inner.Claim(loc) }
func (b bareExec) Execute(a exec.Actor, t exec.Task, done func(exec.Outcome)) {
	b.inner.Execute(a, t, done)
}
func (b bareExec) EstimateDuration(a exec.Actor, t exec.Task) sim.Time {
	if de, ok := b.inner.(exec.DurationEstimator); ok {
		return de.EstimateDuration(a, t)
	}
	return 0
}

// TestL1WithoutOperatorSourceFallsToHumans is the regression for the Act
// stage's Level-1 wedge: with a human backend that cannot lend operators,
// a robot-eligible ticket used to claim a unit, find no operator source,
// and return with no retry armed — parked forever. The fix rules the robot
// lane out up front, so the ticket flows to direct human dispatch.
func TestL1WithoutOperatorSourceFallsToHumans(t *testing.T) {
	h := newHarness(t, harnessOpt{level: L1, techs: 1, robots: true,
		mutFaults: func(fc *faults.Config) {
			fc.FixProb[faults.Reseat][faults.Oxidation] = 1
			fc.DownManifest[faults.Oxidation] = 1
			fc.TouchTransientProb = 0
		},
		mutRobots:  func(rc *robot.Config) { rc.PrimitiveFailProb = 0 },
		wrapHumans: func(inner exec.Executor) exec.Executor { return bareExec{inner} },
	})
	l := h.sepLink(t)
	h.eng.Schedule(sim.Hour, "break", func() { h.inj.InduceFault(l, faults.Oxidation) })
	h.eng.RunUntil(3 * sim.Day)

	sum := h.store.Summarize()
	if sum.Resolved != 1 {
		t.Fatalf("resolved = %d: L1 without an operator source wedged the ticket", sum.Resolved)
	}
	st := h.ctrl.Stats()
	if st.RobotTasks != 0 {
		t.Fatalf("robot dispatched at L1 with no operator source: %+v", st)
	}
	if st.HumanTasks == 0 {
		t.Fatalf("ticket never fell through to the human lane: %+v", st)
	}
	if h.crew.FindTech() == nil {
		t.Fatal("technician still reserved")
	}
}

// TestL1OperatorExhaustionRecovers exhausts the single L1 operator across
// three concurrent robot-eligible tickets and verifies the fleet serializes
// cleanly: no ticket wedges waiting for the operator, and both the operator
// and every drain are returned once the queue empties.
func TestL1OperatorExhaustionRecovers(t *testing.T) {
	h := newHarness(t, harnessOpt{level: L1, techs: 1, robots: true,
		mutCfg: func(c *Config) { c.SafetyInterlock = false },
		mutFaults: func(fc *faults.Config) {
			fc.FixProb[faults.Reseat][faults.Oxidation] = 1
			fc.DownManifest[faults.Oxidation] = 1
			fc.TouchTransientProb = 0
			fc.TouchPermanentProb = 0
		},
		mutRobots: func(rc *robot.Config) { rc.PrimitiveFailProb = 0 },
	})
	var links []*topology.Link
	for _, l := range h.net.SwitchLinks() {
		if l.HasSeparableFiber() {
			links = append(links, l)
		}
		if len(links) == 3 {
			break
		}
	}
	if len(links) < 3 {
		t.Skipf("only %d separable links in this build", len(links))
	}
	for i, l := range links {
		l := l
		h.eng.Schedule(sim.Hour+sim.Time(i)*10*sim.Minute, "break", func() {
			h.inj.InduceFault(l, faults.Oxidation)
		})
	}
	h.eng.RunUntil(6 * sim.Day)

	sum := h.store.Summarize()
	if sum.Resolved < 3 {
		t.Fatalf("resolved = %d of %d: operator exhaustion wedged a ticket", sum.Resolved, sum.Total)
	}
	for _, l := range links {
		if h.inj.Observable(l.ID) != faults.Healthy {
			t.Fatalf("link %s not repaired", l.Name())
		}
	}
	st := h.ctrl.Stats()
	if st.RobotTasks < 3 {
		t.Fatalf("RobotTasks = %d, want the robot lane to serve all three", st.RobotTasks)
	}
	if h.crew.FindTech() == nil {
		t.Fatal("operator not returned to the pool")
	}
	if h.router.DrainedCount() != 0 || h.ctrl.HeldDrains() != 0 {
		t.Fatalf("leaked drains: router=%d held=%d", h.router.DrainedCount(), h.ctrl.HeldDrains())
	}
}

// TestParkBackstopRescuesOrphanedPark simulates a parked work item whose
// own retry event died (the failure mode the dispatch pass's park backstop
// exists for) and verifies the backstop alone un-parks it at notBefore.
func TestParkBackstopRescuesOrphanedPark(t *testing.T) {
	h := newHarness(t, harnessOpt{level: L3, techs: 0, robots: false,
		mutFaults: func(fc *faults.Config) {
			fc.FixProb[faults.Reseat][faults.Oxidation] = 1
			fc.DownManifest[faults.Oxidation] = 1
			fc.TouchTransientProb = 0
		},
		mutRobots: func(rc *robot.Config) { rc.PrimitiveFailProb = 0 },
	})
	l := h.sepLink(t)
	h.eng.Schedule(sim.Hour, "break", func() { h.inj.InduceFault(l, faults.Oxidation) })
	// No technicians and no deployed units: the ticket opens but cannot start.
	h.eng.RunUntil(6 * sim.Hour)
	sum := h.store.Summarize()
	if sum.Total != 1 || sum.Resolved != 0 {
		t.Fatalf("setup: %d tickets, %d resolved", sum.Total, sum.Resolved)
	}
	tk := h.store.All()[0]
	w := h.ctrl.act.work[tk.ID]
	if w == nil {
		t.Fatal("no work item for the open ticket")
	}

	// Park the item two hours out with no retry event of its own — an
	// orphaned park. Deploy the fleet so work could start immediately were
	// the item not parked, and trigger one dispatch pass to arm the backstop.
	parkUntil := h.eng.Now() + 2*sim.Hour
	w.notBefore = parkUntil
	h.fleet.DeployPerRow()
	h.ctrl.act.kickDispatch()
	h.eng.RunUntil(12 * sim.Hour)

	sum = h.store.Summarize()
	if sum.Resolved != 1 {
		t.Fatal("orphaned park starved the ticket: backstop never dispatched it")
	}
	if tk.ResolvedAt < parkUntil {
		t.Fatalf("resolved at %v, before the park elapsed at %v", tk.ResolvedAt, parkUntil)
	}
	if tk.ResolvedAt > parkUntil+sim.Hour {
		t.Fatalf("resolved at %v, long after the park elapsed at %v", tk.ResolvedAt, parkUntil)
	}
}
