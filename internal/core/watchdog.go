package core

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/exec"
	"repro/internal/sim"
	"repro/internal/ticket"
)

// The Act stage's watchdog closes the loop around the maintenance plane's
// own actuators: every Execute call is bracketed by a sim-time deadline, so
// a stalled robot, a lost outcome report, or a pathologically slow
// completion can delay a ticket but never wedge it. The invariants:
//
//   - The deadline is the executor's nominal duration estimate ×
//     WatchdogFactor, floored at WatchdogFloor. Both are sized so the
//     deadline strictly exceeds every natural sampling tail: with no fault
//     injection the watchdog arms and cancels but never fires, leaving
//     chaos-free runs untouched.
//   - Exactly one of {outcome callback, watchdog} settles an attempt. Both
//     capture the attempt's sequence number at launch and check it first;
//     the winner bumps nothing the loser needs (the outcome path cancels
//     the timer, the watchdog path bumps attemptSeq so the outcome lands
//     as a late outcome).
//   - A fired watchdog releases exactly what the attempt held — drains and
//     the Level-1 operator — force-fails the attempt, and re-enters the
//     normal notBefore machinery with capped exponential backoff indexed
//     by the attempt count: no wall clock, no randomness, replay-exact.
//   - RobotFailLimit robot-lane fires degrade the ticket to the human lane
//     (forceHuman), the paper's graceful-degradation story for broken
//     automation.
func (a *Act) armWatchdog(w *workItem, actor exec.Actor, task exec.Task, x exec.Executor, robot bool, op exec.Operator, seq int) {
	c := a.c
	if c.cfg.WatchdogFactor <= 0 {
		return
	}
	var est sim.Time
	if de, ok := x.(exec.DurationEstimator); ok {
		est = de.EstimateDuration(actor, task)
	}
	deadline := sim.Time(float64(est) * c.cfg.WatchdogFactor)
	if deadline < c.cfg.WatchdogFloor {
		deadline = c.cfg.WatchdogFloor
	}
	w.watchdog = c.d.Eng.After(deadline, "act-watchdog", func() {
		a.onWatchdog(w, actor, task, robot, op, seq, deadline)
	})
}

// onWatchdog force-fails an attempt whose outcome never arrived in budget.
func (a *Act) onWatchdog(w *workItem, actor exec.Actor, task exec.Task, robot bool, op exec.Operator, seq int, deadline sim.Time) {
	c := a.c
	if w.attemptSeq != seq || !w.active {
		return // the outcome won the race; the timer should have been cancelled
	}
	// Invalidate the attempt's outstanding done callback: if the work ever
	// reports (slow-complete losing the race, a stalled actuator recovering)
	// it lands in onLateOutcome and must not double-release anything.
	w.attemptSeq++
	if op != nil {
		op.Release()
	}
	a.undrain(w)
	w.active = false
	w.attempts++
	c.stats.WatchdogFires++
	if robot {
		w.robotFails++
		if c.cfg.RobotFailLimit > 0 && w.robotFails >= c.cfg.RobotFailLimit && !w.forceHuman {
			w.forceHuman = true
			c.stats.DegradedTickets++
			c.log(EvDegraded, w.t.ID, w.t.Link.Name(),
				fmt.Sprintf("after %d robot watchdog failure(s)", w.robotFails))
			c.d.Bus.Publish(bus.TopicDegraded, bus.Degraded{
				Ticket: w.t.ID, Link: w.t.Link, RobotFailures: w.robotFails,
			})
		}
	}
	// The force-fail is a recorded attempt (it consumed the actuator and the
	// budget) but does not advance the ladder: nothing physical concluded,
	// so the same rung is retried after backoff.
	c.d.Store.Record(w.t, ticket.Attempt{
		Action: task.Action, End: task.End, Actor: actor.Name(),
		At: c.d.Eng.Now(), Note: "watchdog: no outcome within budget",
	})
	backoff := a.retryBackoff(w.attempts)
	w.notBefore = c.d.Eng.Now() + backoff
	c.log(EvWatchdog, w.t.ID, w.t.Link.Name(),
		fmt.Sprintf("%v by %s: no outcome within %v (attempt %d, backoff %v)",
			task.Action, actor.Name(), deadline, w.attempts, backoff))
	c.d.Bus.Publish(bus.TopicWatchdog, bus.WatchdogFired{
		Ticket: w.t.ID, Link: w.t.Link, Actor: actor.Name(), Robot: robot,
		Action: task.Action, Deadline: deadline, Attempt: w.attempts, Backoff: backoff,
	})
	c.d.Eng.After(backoff, "watchdog-retry", a.kickForTicket(w))
	// The released drains may unblock other queued work right away.
	a.kickDispatch()
}

// onLateOutcome absorbs an Outcome for an attempt the watchdog already
// force-failed. The attempt's drains, claims and operator were released
// when the watchdog fired and the ticket has moved on, so nothing is
// rolled back: the report is journalled for audit, and the actor it frees
// triggers a dispatch pass. If the late work actually fixed the link, the
// recovery alert (or the retry's redundant attempt) resolves the ticket
// through the normal paths.
func (a *Act) onLateOutcome(w *workItem, out exec.Outcome, robot bool) {
	c := a.c
	c.stats.LateOutcomes++
	lane := "human"
	if robot {
		lane = "robot"
	}
	c.log(EvLateOutcome, w.t.ID, w.t.Link.Name(),
		fmt.Sprintf("%s %v by %s reported after its watchdog (completed=%t fixed=%t)",
			lane, out.Task.Action, out.Actor, out.Completed, out.Fixed))
	a.kickDispatch()
}

// retryBackoff returns the delay before retrying after a watchdog failure:
// the configured base doubled per recorded attempt and capped. Indexing by
// the attempt count keeps it deterministic without wall clocks or jitter —
// the sim's seeded event order already decorrelates concurrent retries.
func (a *Act) retryBackoff(attempt int) sim.Time {
	b := a.c.cfg.RetryBackoff
	if b <= 0 {
		return 0
	}
	for i := 1; i < attempt && b < a.c.cfg.RetryBackoffCap; i++ {
		b *= 2
	}
	if limit := a.c.cfg.RetryBackoffCap; limit > 0 && b > limit {
		b = limit
	}
	return b
}
