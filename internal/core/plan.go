package core

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Planner is the pipeline's background Plan stage: it watches resolved
// tickets for reseat-campaign triggers (§4) and runs the daily predictive
// snapshot/score cycle, publishing plan.request events that Triage turns
// into proactive/predictive tickets. (Per-ticket action planning lives in
// the Policy interface, consulted by Act; the Planner owns the work that
// originates tickets rather than resolving them.)
type Planner struct {
	c *Controller

	reseatLog map[topology.DeviceID][]sim.Time

	predictor *Predictor
	collector *sampleCollector
}

func newPlanner(c *Controller) *Planner {
	p := &Planner{c: c, reseatLog: make(map[topology.DeviceID][]sim.Time)}
	if c.cfg.Predictive {
		p.predictor = NewPredictor()
		p.collector = newSampleCollector(c.cfg.PredictHorizon)
	}
	return p
}

// onAlert feeds the sample collector; subscribed only when prediction is
// enabled.
func (p *Planner) onAlert(ev bus.Event) {
	if a, ok := ev.Payload.(bus.Alert); ok {
		p.collector.observeAlert(a)
	}
}

// onTicketEvent watches for resolved reactive reseats — the campaign
// trigger signal.
func (p *Planner) onTicketEvent(ev bus.Event) {
	te, ok := ev.Payload.(bus.TicketEvent)
	if !ok || te.Kind != bus.TicketResolved || !te.Reactive {
		return
	}
	if te.Action == faults.Reseat {
		p.noteReseatFix(te.Link)
	}
}

// noteReseatFix records a successful reseat per switch and triggers a
// proactive campaign when the threshold is crossed (§4: "if several links
// on a switch have been fixed by reseating transceivers, the system could
// proactively reseat all transceivers on that switch").
func (p *Planner) noteReseatFix(l *topology.Link) {
	c := p.c
	if !c.cfg.Proactive {
		return
	}
	for _, dev := range []*topology.Device{l.A.Device, l.B.Device} {
		if !dev.Kind.IsSwitch() {
			continue
		}
		cut := c.d.Eng.Now() - c.cfg.ProactiveWindow
		log := p.reseatLog[dev.ID]
		kept := log[:0]
		for _, at := range log {
			if at >= cut {
				kept = append(kept, at)
			}
		}
		kept = append(kept, c.d.Eng.Now())
		p.reseatLog[dev.ID] = kept
		if len(kept) >= c.cfg.ProactiveTrigger {
			p.reseatLog[dev.ID] = nil // reset the campaign trigger
			p.launchCampaign(dev)
		}
	}
}

// launchCampaign requests proactive reseats for every healthy pluggable
// link on the switch that has no open ticket.
func (p *Planner) launchCampaign(dev *topology.Device) {
	c := p.c
	c.stats.ProactiveCampaigns++
	c.log(EvProactiveCampaign, -1, dev.Name,
		"several reseat fixes on this switch: reseating all its transceivers")
	for _, np := range c.d.Net.Neighbors(dev.ID) {
		l := np.Link
		if !l.Cable.Class.NeedsTransceiver() {
			continue
		}
		if c.d.Inj.Observable(l.ID) != faults.Healthy {
			continue // already has or will get a reactive ticket
		}
		if c.d.Store.OpenFor(l.ID) != nil {
			continue
		}
		c.stats.ProactiveTasks++
		c.d.Bus.Publish(bus.TopicRequest, bus.RepairRequest{Link: l})
	}
}

// startPredictiveLoop schedules the daily snapshot/score cycle and the
// one-time training event.
func (p *Planner) startPredictiveLoop() {
	c := p.c
	lastPredicted := make(map[topology.LinkID]sim.Time)
	const cooldown = 14 * sim.Day

	c.d.Eng.Every(sim.Day, sim.Day, "predict-cycle", func(at sim.Time) {
		for _, l := range c.d.Net.SwitchLinks() {
			if !l.Cable.Class.NeedsTransceiver() {
				continue
			}
			// Snapshot only currently-healthy links: the prediction task is
			// "healthy now, fails within the horizon", so samples of links
			// that are already broken would poison both classes.
			if c.d.Inj.Observable(l.ID) != faults.Healthy {
				continue
			}
			feats := p.features(l.ID)
			p.collector.add(l.ID, at, feats)
			if !p.predictor.Trained {
				continue
			}
			if c.d.Store.OpenFor(l.ID) != nil {
				continue
			}
			if at-lastPredicted[l.ID] < cooldown {
				continue
			}
			if score := p.predictor.Score(feats); score >= c.cfg.PredictThreshold {
				lastPredicted[l.ID] = at
				c.stats.PredictiveTasks++
				c.log(EvPredictiveTicket, -1, l.Name(),
					fmt.Sprintf("fail-soon score %.2f", score))
				c.d.Bus.Publish(bus.TopicRequest, bus.RepairRequest{Link: l, Predictive: true})
			}
		}
	})
	c.d.Eng.Schedule(c.d.Eng.Now()+c.cfg.PredictTrainAfter, "predict-train", func() {
		X, y := p.collector.dataset(c.d.Eng.Now())
		p.predictor.Train(X, y)
	})
}

// features reads the wired feature source.
func (p *Planner) features(id topology.LinkID) []float64 {
	if p.c.d.Features == nil {
		return nil
	}
	return p.c.d.Features(id)
}
