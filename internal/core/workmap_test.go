package core

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/ticket"
)

// The Act stage's work map must drop items on every terminal ticket
// transition — settle() on resolution, onTicketEvent on cancellation —
// otherwise dispatch passes and heldDrains iterate dead entries forever
// (the invariant the workItem doc comment points here for).

func TestWorkMapDroppedOnResolution(t *testing.T) {
	h := newHarness(t, harnessOpt{level: L3, techs: 1, robots: true,
		mutFaults: func(fc *faults.Config) {
			fc.FixProb[faults.Reseat][faults.Oxidation] = 1
			fc.DownManifest[faults.Oxidation] = 1
			fc.TouchTransientProb = 0
		}})
	l := h.sepLink(t)
	h.eng.Schedule(sim.Hour, "break", func() { h.inj.InduceFault(l, faults.Oxidation) })
	h.eng.RunUntil(6 * sim.Hour)

	sum := h.store.Summarize()
	if sum.Resolved != 1 {
		t.Fatalf("resolved = %d", sum.Resolved)
	}
	if n := len(h.ctrl.act.work); n != 0 {
		t.Fatalf("work map retains %d item(s) after resolution", n)
	}
}

func TestWorkMapDroppedOnCancellation(t *testing.T) {
	// No technicians and no robots: the ticket opens but never starts, so
	// the recovery alert cancels it rather than racing in-flight work.
	h := newHarness(t, harnessOpt{level: L0, techs: 0,
		mutFaults: func(fc *faults.Config) {
			fc.DownManifest[faults.Oxidation] = 1
			fc.TouchTransientProb = 0
		}})
	l := h.sepLink(t)
	h.eng.Schedule(sim.Hour, "break", func() { h.inj.InduceFault(l, faults.Oxidation) })
	h.eng.RunUntil(3 * sim.Hour)

	tk := h.store.All()
	if len(tk) != 1 || tk[0].Status == ticket.Resolved {
		t.Fatalf("setup: %d tickets", len(tk))
	}
	if n := len(h.ctrl.act.work); n != 1 {
		t.Fatalf("work map holds %d item(s) for the open ticket", n)
	}

	// The fault clears out of band (fiber re-routed upstream, say): the
	// recovery alert must cancel the ticket and drop its work item.
	h.inj.ClearFault(l)
	h.eng.RunUntil(4 * sim.Hour)

	sum := h.store.Summarize()
	if sum.Cancelled != 1 {
		t.Fatalf("cancelled = %d after out-of-band recovery", sum.Cancelled)
	}
	if n := len(h.ctrl.act.work); n != 0 {
		t.Fatalf("work map retains %d item(s) after cancellation", n)
	}
}
