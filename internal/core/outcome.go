package core

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/exec"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/ticket"
)

// onRobotOutcome handles a completed robotic task.
func (a *Act) onRobotOutcome(w *workItem, out exec.Outcome) {
	c := a.c
	c.stats.CascadesDuringOps += out.Touched
	c.d.Store.Record(w.t, ticket.Attempt{
		Action:  out.Task.Action,
		End:     out.Task.End,
		Actor:   out.Actor,
		At:      c.d.Eng.Now(),
		Fixed:   out.Fixed,
		Note:    out.Note,
		Touched: out.Touched,
	})
	w.active = false
	w.attempts++
	a.publishOutcome(w, out, true)
	// The unit just freed can serve other queued tickets.
	defer a.kickDispatch()

	switch {
	case out.Completed && out.Fixed:
		a.settle(w, out.Task.Action)
	case out.Stockout:
		// Parts on order: retry later without escalating the ladder. A
		// stockout is not a physical attempt. Park the item so dispatch
		// passes do not hammer the empty shelf in the meantime.
		w.attempts--
		w.notBefore = c.d.Eng.Now() + c.cfg.StockoutRetry
		c.log(EvStockoutWait, w.t.ID, w.t.Link.Name(), out.Note)
		c.d.Eng.After(c.cfg.StockoutRetry, "stockout-retry", a.kickForTicket(w))
	case out.NeedsHuman:
		c.stats.EscalationsToHuman++
		w.forceHuman = true
		c.log(EvEscalateHuman, w.t.ID, w.t.Link.Name(), out.Note)
		c.d.Eng.After(0, "escalate-human", a.kickForTicket(w))
	default:
		// Physically performed but the link is still broken: escalate the
		// ladder.
		w.stage++
		a.afterFailedAttempt(w)
	}
}

// onHumanOutcome handles a completed technician task.
func (a *Act) onHumanOutcome(w *workItem, out exec.Outcome) {
	c := a.c
	c.stats.CascadesDuringOps += out.Touched
	c.d.Store.Record(w.t, ticket.Attempt{
		Action:  out.Task.Action,
		End:     out.Task.End,
		Actor:   out.Actor,
		At:      c.d.Eng.Now(),
		Fixed:   out.Fixed,
		Note:    out.Note,
		Touched: out.Touched,
	})
	w.active = false
	w.attempts++
	// The human attempt happened; robots may retry next — unless repeated
	// robot watchdog failures degraded the ticket to the human lane for good.
	if c.cfg.RobotFailLimit <= 0 || w.robotFails < c.cfg.RobotFailLimit {
		w.forceHuman = false
	}
	a.publishOutcome(w, out, false)
	// The technician just freed can serve other queued tickets.
	defer a.kickDispatch()

	switch {
	case out.Completed && out.Fixed:
		a.settle(w, out.Task.Action)
	case out.Stockout:
		w.attempts--
		w.notBefore = c.d.Eng.Now() + c.cfg.StockoutRetry
		c.d.Eng.After(c.cfg.StockoutRetry, "stockout-retry", a.kickForTicket(w))
	default:
		w.stage++
		a.afterFailedAttempt(w)
	}
}

// publishOutcome announces the attempt on act.outcome for observers (taps,
// the daemon's event stream); nothing in the pipeline consumes it.
func (a *Act) publishOutcome(w *workItem, out exec.Outcome, robot bool) {
	a.c.d.Bus.Publish(bus.TopicOutcome, bus.WorkOutcome{
		Ticket: w.t.ID, Link: w.t.Link, Actor: out.Actor, Robot: robot,
		Action: out.Task.Action, Completed: out.Completed, Fixed: out.Fixed,
		Note: out.Note,
	})
}

// afterFailedAttempt decides between another ladder attempt and parking the
// ticket as chronic.
func (a *Act) afterFailedAttempt(w *workItem) {
	c := a.c
	if w.attempts >= c.cfg.MaxAttempts {
		if !w.chronic {
			w.chronic = true
			c.stats.ChronicTickets++
			c.log(EvChronic, w.t.ID, w.t.Link.Name(),
				fmt.Sprintf("%d attempts without a fix", w.attempts))
		}
		// Chronic tickets walk complete ladder cycles (fresh diagnosis at
		// each rung), parking for half a day only between full cycles —
		// parking mid-cycle would retry the same first rung forever.
		if w.stage%len(faults.AllActions) == 0 {
			w.notBefore = c.d.Eng.Now() + 12*sim.Hour
			c.d.Eng.After(12*sim.Hour, "chronic-retry", a.kickForTicket(w))
			return
		}
	}
	c.d.Eng.After(0, "ladder-escalate", a.kickForTicket(w))
}

// kickForTicket returns a dispatch closure for one ticket.
func (a *Act) kickForTicket(w *workItem) func() {
	return func() {
		if w.t.Status == ticket.Resolved || w.t.Status == ticket.Cancelled {
			return
		}
		if w.active {
			return
		}
		a.tryStart(w)
		// tryStart may have found no free resources; a global dispatch pass
		// will pick the ticket up when something frees.
	}
}

// settle verifies the repair took (observably healthy) and resolves the
// ticket, announcing it on triage.ticket so the Planner's campaign
// bookkeeping sees the fix. A repair that reports fixed but leaves the link
// unhealthy (replaced the wrong part of a multi-symptom link) escalates
// instead.
func (a *Act) settle(w *workItem, action faults.Action) {
	c := a.c
	t := w.t
	if c.d.Inj.Observable(t.Link.ID) != faults.Healthy {
		w.stage++
		a.afterFailedAttempt(w)
		return
	}
	c.d.Store.Resolve(t)
	c.stats.TicketsResolved++
	c.log(EvTicketResolved, t.ID, t.Link.Name(),
		fmt.Sprintf("by %v after %d attempt(s), window %v", action, len(t.Attempts), t.ServiceWindow()))
	delete(a.work, t.ID)
	// The Planner reacts inside this publish: a reactive reseat fix may
	// trigger a proactive campaign, whose tickets are opened (and their
	// dispatch kicks scheduled) before the final kick below — exactly the
	// pre-refactor order.
	c.d.Bus.Publish(bus.TopicTicket, bus.TicketEvent{
		Kind: bus.TicketResolved, ID: t.ID, Link: t.Link,
		Action: action, Reactive: t.Kind == ticket.Reactive,
	})
	a.kickDispatch()
}
