package core

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/robot"
	"repro/internal/sim"
	"repro/internal/ticket"
	"repro/internal/topology"
	"repro/internal/workforce"
)

// onRobotOutcome handles a completed robotic task.
func (c *Controller) onRobotOutcome(w *workItem, out robot.Outcome) {
	c.stats.CascadesDuringOps += len(out.Effects)
	c.store.Record(w.t, ticket.Attempt{
		Action:  out.Task.Action,
		End:     out.Task.End,
		Actor:   out.Unit.Name,
		At:      c.eng.Now(),
		Fixed:   out.Result.Fixed,
		Note:    out.Note,
		Touched: len(out.Effects),
	})
	w.active = false
	w.attempts++
	// The unit just freed can serve other queued tickets.
	defer c.kickDispatch()

	switch {
	case out.Completed && out.Result.Fixed:
		c.settle(w, out.Task.Action)
	case out.Stockout:
		// Parts on order: retry later without escalating the ladder. A
		// stockout is not a physical attempt. Park the item so dispatch
		// passes do not hammer the empty shelf in the meantime.
		w.attempts--
		w.notBefore = c.eng.Now() + c.cfg.StockoutRetry
		c.log(EvStockoutWait, w.t.ID, w.t.Link.Name(), out.Note)
		c.eng.After(c.cfg.StockoutRetry, "stockout-retry", c.kickForTicket(w))
	case out.NeedsHuman:
		c.stats.EscalationsToHuman++
		w.forceHuman = true
		c.log(EvEscalateHuman, w.t.ID, w.t.Link.Name(), out.Note)
		c.eng.After(0, "escalate-human", c.kickForTicket(w))
	default:
		// Physically performed but the link is still broken: escalate the
		// ladder.
		w.stage++
		c.afterFailedAttempt(w)
	}
}

// onHumanOutcome handles a completed technician task.
func (c *Controller) onHumanOutcome(w *workItem, out workforce.Outcome) {
	c.stats.CascadesDuringOps += len(out.Effects)
	c.store.Record(w.t, ticket.Attempt{
		Action:  out.Task.Action,
		End:     out.Task.End,
		Actor:   out.Tech.Name,
		At:      c.eng.Now(),
		Fixed:   out.Result.Fixed,
		Note:    out.Result.Note,
		Touched: len(out.Effects),
	})
	w.active = false
	w.attempts++
	w.forceHuman = false // the human attempt happened; robots may retry next
	// The technician just freed can serve other queued tickets.
	defer c.kickDispatch()

	switch {
	case out.Completed && out.Result.Fixed:
		c.settle(w, out.Task.Action)
	case out.Stockout:
		w.attempts--
		w.notBefore = c.eng.Now() + c.cfg.StockoutRetry
		c.eng.After(c.cfg.StockoutRetry, "stockout-retry", c.kickForTicket(w))
	default:
		w.stage++
		c.afterFailedAttempt(w)
	}
}

// afterFailedAttempt decides between another ladder attempt and parking the
// ticket as chronic.
func (c *Controller) afterFailedAttempt(w *workItem) {
	if w.attempts >= c.cfg.MaxAttempts {
		if !w.chronic {
			w.chronic = true
			c.stats.ChronicTickets++
			c.log(EvChronic, w.t.ID, w.t.Link.Name(),
				fmt.Sprintf("%d attempts without a fix", w.attempts))
		}
		// Chronic tickets walk complete ladder cycles (fresh diagnosis at
		// each rung), parking for half a day only between full cycles —
		// parking mid-cycle would retry the same first rung forever.
		if w.stage%len(faults.AllActions) == 0 {
			w.notBefore = c.eng.Now() + 12*sim.Hour
			c.eng.After(12*sim.Hour, "chronic-retry", c.kickForTicket(w))
			return
		}
	}
	c.eng.After(0, "ladder-escalate", c.kickForTicket(w))
}

// kickForTicket returns a dispatch closure for one ticket.
func (c *Controller) kickForTicket(w *workItem) func() {
	return func() {
		if w.t.Status == ticket.Resolved || w.t.Status == ticket.Cancelled {
			return
		}
		if w.active {
			return
		}
		c.tryStart(w)
		// tryStart may have found no free resources; a global dispatch pass
		// will pick the ticket up when something frees.
	}
}

// settle verifies the repair took (observably healthy) and resolves the
// ticket, feeding the proactive planner. A repair that reports fixed but
// leaves the link unhealthy (replaced the wrong part of a multi-symptom
// link) escalates instead.
func (c *Controller) settle(w *workItem, action faults.Action) {
	t := w.t
	if c.inj.Observable(t.Link.ID) != faults.Healthy {
		w.stage++
		c.afterFailedAttempt(w)
		return
	}
	c.store.Resolve(t)
	c.stats.TicketsResolved++
	c.log(EvTicketResolved, t.ID, t.Link.Name(),
		fmt.Sprintf("by %v after %d attempt(s), window %v", action, len(t.Attempts), t.ServiceWindow()))
	delete(c.work, t.ID)
	if t.Kind != ticket.Reactive {
		// Campaign bookkeeping only tracks reactive fixes.
		c.kickDispatch()
		return
	}
	if action == faults.Reseat {
		c.noteReseatFix(t.Link)
	}
	c.kickDispatch()
}

// noteReseatFix records a successful reseat per switch and triggers a
// proactive campaign when the threshold is crossed (§4: "if several links
// on a switch have been fixed by reseating transceivers, the system could
// proactively reseat all transceivers on that switch").
func (c *Controller) noteReseatFix(l *topology.Link) {
	if !c.cfg.Proactive {
		return
	}
	for _, dev := range []*topology.Device{l.A.Device, l.B.Device} {
		if !dev.Kind.IsSwitch() {
			continue
		}
		cut := c.eng.Now() - c.cfg.ProactiveWindow
		log := c.reseatLog[dev.ID]
		kept := log[:0]
		for _, at := range log {
			if at >= cut {
				kept = append(kept, at)
			}
		}
		kept = append(kept, c.eng.Now())
		c.reseatLog[dev.ID] = kept
		if len(kept) >= c.cfg.ProactiveTrigger {
			c.reseatLog[dev.ID] = nil // reset the campaign trigger
			c.launchCampaign(dev)
		}
	}
}

// launchCampaign opens proactive reseat tickets for every healthy pluggable
// link on the switch that has no open ticket.
func (c *Controller) launchCampaign(dev *topology.Device) {
	c.stats.ProactiveCampaigns++
	c.log(EvProactiveCampaign, -1, dev.Name,
		"several reseat fixes on this switch: reseating all its transceivers")
	for _, np := range c.net.Neighbors(dev.ID) {
		l := np.Link
		if !l.Cable.Class.NeedsTransceiver() {
			continue
		}
		if c.inj.Observable(l.ID) != faults.Healthy {
			continue // already has or will get a reactive ticket
		}
		if c.store.OpenFor(l.ID) != nil {
			continue
		}
		c.stats.ProactiveTasks++
		c.openTicket(l, ticket.Proactive, faults.Healthy, ticket.P2)
	}
}
