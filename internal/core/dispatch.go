package core

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/robot"
	"repro/internal/sim"
	"repro/internal/ticket"
	"repro/internal/topology"
	"repro/internal/workforce"
)

// tryStart picks the action and executor for a ticket and launches the
// physical work if resources allow. It is a no-op (rescheduling itself as
// needed) when nothing can start yet.
func (c *Controller) tryStart(w *workItem) {
	t := w.t
	// Proactive/predictive tickets on healthy links carry their own action
	// choice; reactive work consults diagnosis each attempt.
	action := c.ladderAction(w)
	end := c.chooseEnd(t.Link, t.Symptom, action)

	useRobot := c.robotEligible(action)
	var unit *robot.Unit
	if useRobot {
		loc := end.Port(t.Link).Device.Loc
		if c.cfg.SafetyInterlock && c.crew.TechniciansInRow(loc.Row) > 0 {
			// Safety interlock: a technician is hands-on in that row; the
			// robot stays out (§3.4). No timed retry is needed — the
			// occupying technician's task outcome kicks a dispatch pass
			// the moment the row frees.
			c.stats.SafetyHolds++
			c.log(EvSafetyHold, w.t.ID, t.Link.Name(),
				fmt.Sprintf("technician hands-on in row %d", loc.Row))
			return
		}
		unit = c.fleet.FindUnit(loc)
		if unit == nil {
			useRobot = false // out of reach or all busy: fall through to humans
		}
	}
	if w.forceHuman {
		useRobot = false
	}

	switch {
	case useRobot && c.cfg.Level == L1:
		// Operator assistance: a technician must run the device.
		tech := c.crew.FindTech()
		if tech == nil {
			return // retried when a task completes
		}
		tech.Reserve()
		delay := c.crew.DispatchDelay(c.eng.Now())
		c.startWork(w, t)
		c.eng.After(delay, "l1-operator-arrives", func() {
			c.runRobot(w, unit, robot.Task{Link: t.Link, End: end, Action: action}, tech)
		})
	case useRobot && c.cfg.Level == L2 && !c.crew.OnShift(c.eng.Now()):
		if t.Priority == ticket.P0 {
			// An outage cannot wait for the supervision shift: call out a
			// technician instead, today's process.
			tech := c.crew.FindTech()
			if tech == nil {
				return
			}
			c.startWork(w, t)
			c.runHuman(w, tech, workforce.Task{Link: t.Link, End: end, Action: action})
			return
		}
		// Degraded/background work waits for the supervision shift.
		c.eng.After(c.timeToShift(), "await-supervision", c.dispatch)
	case useRobot:
		c.startWork(w, t)
		c.runRobot(w, unit, robot.Task{Link: t.Link, End: end, Action: action}, nil)
	default:
		tech := c.crew.FindTech()
		if tech == nil {
			return
		}
		c.startWork(w, t)
		c.runHuman(w, tech, workforce.Task{Link: t.Link, End: end, Action: action})
	}
}

// startWork transitions the ticket into execution.
func (c *Controller) startWork(w *workItem, t *ticket.Ticket) {
	w.active = true
	if t.Status == ticket.Open {
		c.store.Assign(t, "controller")
	}
	c.store.Start(t)
}

// timeToShift returns the delay until the next supervision shift begins.
func (c *Controller) timeToShift() sim.Time {
	now := c.eng.Now()
	for d := sim.Time(0); d <= 24*sim.Hour; d += 15 * sim.Minute {
		if c.crew.OnShift(now + d) {
			return d
		}
	}
	return time24
}

const time24 = 24 * sim.Hour

// ladderAction returns the escalation-ladder action for the current stage,
// clamped to the last rung.
func (c *Controller) ladderAction(w *workItem) faults.Action {
	if w.t.Kind != ticket.Reactive && w.t.Symptom == faults.Healthy {
		// Proactive/predictive maintenance on a healthy link: stage 0 is a
		// reseat, stage 1 a clean; never escalate to replacement.
		if w.stage >= 1 {
			return faults.Clean
		}
		return faults.Reseat
	}
	// The ladder wraps: if every rung failed (a wrong-end diagnosis can
	// defeat even replacements), start over with a fresh diagnostic pass
	// rather than hammering the top rung forever.
	stage := w.stage % len(faults.AllActions)
	a := faults.AllActions[stage]
	// Cleaning only applies to separable fiber; skip that rung otherwise.
	if a == faults.Clean && !w.t.Link.HasSeparableFiber() {
		stage = (stage + 1) % len(faults.AllActions)
		a = faults.AllActions[stage]
	}
	// Reseat requires a pluggable transceiver.
	if a == faults.Reseat && !w.t.Link.Cable.Class.NeedsTransceiver() {
		a = faults.ReplaceCable
		w.stage = 3
	}
	return a
}

// chooseEnd diagnoses the link to decide which end to service. Proactive
// work on healthy links picks end A (both get serviced across a campaign).
func (c *Controller) chooseEnd(l *topology.Link, symptom faults.Health, action faults.Action) faults.End {
	if symptom == faults.Healthy {
		return faults.EndA
	}
	d := c.diag.Diagnose(l, symptom)
	if action == faults.ReplaceSwitchPort {
		// Switch work must target a switch end.
		if !d.End.Port(l).Device.Kind.IsSwitch() {
			return d.End.Opposite()
		}
	}
	return d.End
}

// robotEligible reports whether the current level sends this action to a
// robot at all.
func (c *Controller) robotEligible(a faults.Action) bool {
	return c.cfg.Level >= L1 && robot.CanPerform(a)
}

// runRobot performs impact-aware pre-draining and executes on the unit.
// tech, when non-nil, is the Level-1 operator to release afterwards.
func (c *Controller) runRobot(w *workItem, unit *robot.Unit, task robot.Task, tech *workforce.Technician) {
	begin := func() {
		if !unit.Available() {
			// The unit was claimed by another ticket between scheduling
			// and start (e.g. during the drain-settle delay): retry.
			if tech != nil {
				tech.Release()
			}
			c.undrain(w)
			w.active = false
			c.eng.After(c.cfg.RetryDelay, "unit-stolen-retry", c.dispatch)
			return
		}
		c.stats.RobotTasks++
		c.log(EvDispatchRobot, w.t.ID, task.Link.Name(),
			fmt.Sprintf("%v@%v by %s", task.Action, task.End, unit.Name))
		c.fleet.Execute(unit, task, func(out robot.Outcome) {
			if tech != nil {
				tech.Release()
			}
			c.undrain(w)
			c.onRobotOutcome(w, out)
		})
	}
	if c.cfg.ImpactAware {
		c.preDrain(w, task.Port())
		c.eng.After(c.cfg.DrainSettle, "drain-settle", begin)
	} else {
		begin()
	}
}

// runHuman executes the task with a technician. Humans are dispatched
// without pre-draining at L0/L1 (today's process); at L2+ the controller
// drains for them too — the cross-layer machinery exists regardless of who
// holds the tool.
func (c *Controller) runHuman(w *workItem, tech *workforce.Technician, task workforce.Task) {
	begin := func() {
		if !tech.Available() {
			// Claimed by another ticket during the drain-settle delay.
			c.undrain(w)
			w.active = false
			c.eng.After(c.cfg.RetryDelay, "tech-stolen-retry", c.dispatch)
			return
		}
		c.stats.HumanTasks++
		c.log(EvDispatchHuman, w.t.ID, task.Link.Name(),
			fmt.Sprintf("%v@%v by %s", task.Action, task.End, tech.Name))
		c.crew.Execute(tech, task, func(out workforce.Outcome) {
			c.undrain(w)
			c.onHumanOutcome(w, out)
		})
	}
	if c.cfg.ImpactAware {
		c.preDrain(w, task.Port())
		c.eng.After(c.cfg.DrainSettle, "drain-settle", begin)
	} else {
		begin()
	}
}

// preDrain drains the target link and every cable the manipulation will
// contact (the robot API's pre-report), so touched cables carry no traffic.
func (c *Controller) preDrain(w *workItem, port *topology.Port) {
	drain := func(id topology.LinkID) {
		if !c.router.Drained(id) {
			c.router.Drain(id)
			w.drained = append(w.drained, id)
		}
	}
	drain(w.t.Link.ID)
	for _, l := range c.inj.DisturbedBy(port) {
		drain(l.ID)
	}
	c.stats.PreDrains++
	c.log(EvPreDrain, w.t.ID, w.t.Link.Name(),
		fmt.Sprintf("drained %d link(s) ahead of manipulation", len(w.drained)))
}

// undrain restores everything this work item drained.
func (c *Controller) undrain(w *workItem) {
	for _, id := range w.drained {
		c.router.Undrain(id)
	}
	w.drained = nil
}
