package core

import (
	"fmt"
	"sort"

	"repro/internal/bus"
	"repro/internal/exec"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/ticket"
	"repro/internal/topology"
)

// Act is the pipeline stage that turns tickets into physical work. It
// consumes triage.ticket events to maintain its work queue, consults the
// Policy for actions and impact sets, and dispatches through the
// exec.Executor backends — it never touches robot or workforce concrete
// types. Dispatches and outcomes are announced on act.dispatch and
// act.outcome.
type Act struct {
	c *Controller

	robots exec.Executor
	humans exec.Executor
	// Capabilities discovered on the human backend; nil-checked at use.
	shifted exec.Shifted
	rowOcc  exec.RowOccupancy
	opSrc   exec.OperatorSource

	work map[int]*workItem // by ticket ID

	// parkTimer backstops notBefore-parked items: dispatch arms it for the
	// earliest un-park instant so a parked item whose own retry event died
	// with a stale closure cannot strand work. parkTimerAt is the armed
	// instant, consulted to avoid re-arming per pass.
	parkTimer   sim.Handle
	parkTimerAt sim.Time
}

// workItem tracks in-flight dispatch state for a ticket. Items are deleted
// from Act.work on every terminal transition — settle() on resolution,
// onTicketEvent on cancellation — so dispatch passes and heldDrains never
// iterate dead entries (workmap_test.go holds the invariant).
type workItem struct {
	t          *ticket.Ticket
	stage      int
	attempts   int
	forceHuman bool
	active     bool
	drained    []topology.LinkID
	chronic    bool
	// notBefore parks the item (stockout backoff, chronic cadence, watchdog
	// backoff): global dispatch passes skip it until the instant passes; its
	// own retry event re-kicks it, with the dispatch pass's park backstop as
	// the safety net.
	notBefore sim.Time

	// attemptSeq identifies the current physical attempt. The watchdog and
	// the executor's done callback each capture the launch-time value and
	// check it before acting, so whichever loses the race is inert: a late
	// outcome cannot double-release drains or operators the watchdog already
	// released.
	attemptSeq int
	// watchdog is the force-fail timer armed over the active attempt.
	watchdog sim.Handle
	// robotFails counts robot-lane watchdog failures toward the forceHuman
	// degradation threshold.
	robotFails int
}

func newAct(c *Controller) *Act {
	a := &Act{c: c, robots: c.d.Robots, humans: c.d.Humans, work: make(map[int]*workItem)}
	if s, ok := c.d.Humans.(exec.Shifted); ok {
		a.shifted = s
	}
	if r, ok := c.d.Humans.(exec.RowOccupancy); ok {
		a.rowOcc = r
	}
	if o, ok := c.d.Humans.(exec.OperatorSource); ok {
		a.opSrc = o
	}
	return a
}

// onTicketEvent maintains the work queue from triage.ticket events.
func (a *Act) onTicketEvent(ev bus.Event) {
	te, ok := ev.Payload.(bus.TicketEvent)
	if !ok {
		return
	}
	switch te.Kind {
	case bus.TicketOpened:
		t := a.c.d.Store.OpenFor(te.Link.ID)
		if t == nil || t.ID != te.ID {
			return
		}
		a.work[t.ID] = &workItem{t: t, stage: t.StartStage}
		a.kickDispatch()
	case bus.TicketDeduped:
		// The existing ticket may be startable (priority upgraded, resources
		// freed since): give dispatch a pass.
		a.kickDispatch()
	case bus.TicketCancelled:
		delete(a.work, te.ID)
	}
}

// inFlight reports whether physical work is active for a ticket.
func (a *Act) inFlight(ticketID int) bool {
	w := a.work[ticketID]
	return w != nil && w.active
}

// heldDrains counts links drained on behalf of in-flight work items.
func (a *Act) heldDrains() int {
	n := 0
	for _, w := range a.work {
		n += len(w.drained)
	}
	return n
}

func (a *Act) kickDispatch() {
	a.c.d.Eng.After(0, "dispatch", a.dispatch)
}

// dispatch walks all pending work items in (priority, age) order and starts
// whatever can start now. It iterates the stage's own work map rather than
// the store's queue: a ticket whose start was rolled back (unit stolen
// during drain-settle, stockout retry) is Active in the store but still
// needs dispatching.
func (a *Act) dispatch() {
	now := a.c.d.Eng.Now()
	items := make([]*workItem, 0, len(a.work))
	earliestPark := sim.Forever
	//lint:allow mapiter collected items get a total (priority, age, id) sort below; iteration order cannot survive it
	for _, w := range a.work {
		if w.active || w.t.Status == ticket.Resolved || w.t.Status == ticket.Cancelled {
			continue
		}
		if now < w.notBefore {
			if w.notBefore < earliestPark {
				earliestPark = w.notBefore
			}
			continue
		}
		items = append(items, w)
	}
	a.armParkBackstop(earliestPark)
	sort.Slice(items, func(i, j int) bool {
		x, y := items[i].t, items[j].t
		if x.Priority != y.Priority {
			return x.Priority < y.Priority
		}
		if x.CreatedAt != y.CreatedAt {
			return x.CreatedAt < y.CreatedAt
		}
		return x.ID < y.ID
	})
	deferred := false
	for _, w := range items {
		// Background (P2) work respects the utilization gate.
		if w.t.Priority == ticket.P2 && a.utilization() > a.c.cfg.UtilGate {
			if !deferred {
				deferred = true
				a.c.d.Eng.After(sim.Hour, "util-deferred", a.dispatch)
			}
			continue
		}
		a.tryStart(w)
	}
}

// armParkBackstop schedules a dispatch pass at the earliest notBefore among
// parked items. Parked items normally re-kick via their own retry events;
// the backstop guarantees progress even if such an event goes dead (its
// closure finds the item active or the ticket terminal and declines). An
// extra pass is a no-op — items are either active, still parked, or get an
// idempotent tryStart — so the backstop cannot perturb behaviour, only
// bound starvation. A pass with nothing parked leaves any armed backstop
// in place: stale firings are harmless for the same reason.
func (a *Act) armParkBackstop(at sim.Time) {
	if at == sim.Forever {
		return
	}
	if a.parkTimer.Pending() && a.parkTimerAt <= at {
		return
	}
	a.parkTimer.Cancel()
	a.parkTimerAt = at
	a.parkTimer = a.c.d.Eng.Schedule(at, "park-backstop", a.dispatch)
}

// utilization reads the configured utilization source.
func (a *Act) utilization() float64 {
	if a.c.cfg.UtilFn == nil {
		return 0
	}
	return a.c.cfg.UtilFn()
}

// tryStart picks the action and executor for a ticket and launches the
// physical work if resources allow. It is a no-op (rescheduling itself as
// needed) when nothing can start yet.
func (a *Act) tryStart(w *workItem) {
	c := a.c
	t := w.t
	// Proactive/predictive tickets on healthy links carry their own action
	// choice; reactive work consults diagnosis each attempt (inside the
	// policy).
	d := c.d.Policy.Decide(t, w.stage)
	w.stage = d.Stage
	task := exec.Task{Link: t.Link, End: d.End, Action: d.Action}

	// The robot lane is ruled out up front — escalation (forceHuman) and a
	// Level-1 deployment with no operator source both disqualify it — so a
	// claimed unit is never discarded on a path that cannot use it, and an
	// L1 ticket that could never be operated falls through to direct human
	// dispatch instead of returning with no retry event armed (the old
	// permanent wedge).
	useRobot := a.robotEligible(d.Action) && !w.forceHuman &&
		!(c.cfg.Level == L1 && a.opSrc == nil)
	var unit exec.Actor
	if useRobot {
		loc := task.Port().Device.Loc
		if c.cfg.SafetyInterlock && a.rowOcc != nil && a.rowOcc.BusyInRow(loc.Row) > 0 {
			// Safety interlock: a technician is hands-on in that row; the
			// robot stays out (§3.4). No timed retry is needed — the
			// occupying technician's task outcome kicks a dispatch pass
			// the moment the row frees.
			c.stats.SafetyHolds++
			c.log(EvSafetyHold, t.ID, t.Link.Name(),
				fmt.Sprintf("technician hands-on in row %d", loc.Row))
			return
		}
		unit = a.robots.Claim(loc)
		if unit == nil {
			useRobot = false // out of reach or all busy: fall through to humans
		}
	}

	switch {
	case useRobot && c.cfg.Level == L1:
		// Operator assistance: a technician must run the device.
		op, ok := a.opSrc.ClaimOperator()
		if !ok {
			return // retried when a task completes
		}
		delay := op.ArrivalDelay(c.d.Eng.Now())
		a.startWork(w, t)
		c.d.Eng.After(delay, "l1-operator-arrives", func() {
			a.runRobot(w, unit, task, op)
		})
	case useRobot && c.cfg.Level == L2 && !a.onShift(c.d.Eng.Now()):
		if t.Priority == ticket.P0 {
			// An outage cannot wait for the supervision shift: call out a
			// technician instead, today's process.
			tech := a.humans.Claim(task.Port().Device.Loc)
			if tech == nil {
				return
			}
			a.startWork(w, t)
			a.runHuman(w, tech, task)
			return
		}
		// Degraded/background work waits for the supervision shift.
		c.d.Eng.After(a.timeToShift(), "await-supervision", a.dispatch)
	case useRobot:
		a.startWork(w, t)
		a.runRobot(w, unit, task, nil)
	default:
		tech := a.humans.Claim(task.Port().Device.Loc)
		if tech == nil {
			return
		}
		a.startWork(w, t)
		a.runHuman(w, tech, task)
	}
}

// startWork transitions the ticket into execution.
func (a *Act) startWork(w *workItem, t *ticket.Ticket) {
	w.active = true
	if t.Status == ticket.Open {
		a.c.d.Store.Assign(t, "controller")
	}
	a.c.d.Store.Start(t)
}

// onShift consults the human backend's shift calendar; executors without
// one are treated as always supervised.
func (a *Act) onShift(at sim.Time) bool {
	if a.shifted == nil {
		return true
	}
	return a.shifted.OnShift(at)
}

// timeToShift returns the delay until the next supervision shift begins.
func (a *Act) timeToShift() sim.Time {
	now := a.c.d.Eng.Now()
	for d := sim.Time(0); d <= 24*sim.Hour; d += 15 * sim.Minute {
		if a.onShift(now + d) {
			return d
		}
	}
	return time24
}

const time24 = 24 * sim.Hour

// robotEligible reports whether the current level sends this action to a
// robot at all.
func (a *Act) robotEligible(action faults.Action) bool {
	return a.c.cfg.Level >= L1 && a.robots != nil && a.robots.CanPerform(action)
}

// runRobot performs impact-aware pre-draining and executes on the robotic
// backend. op, when non-nil, is the Level-1 operator to release afterwards.
func (a *Act) runRobot(w *workItem, unit exec.Actor, task exec.Task, op exec.Operator) {
	c := a.c
	begin := func() {
		if !unit.Available() {
			// The unit was claimed by another ticket between scheduling
			// and start (e.g. during the drain-settle delay): retry.
			if op != nil {
				op.Release()
			}
			a.undrain(w)
			w.active = false
			c.d.Eng.After(c.cfg.RetryDelay, "unit-stolen-retry", a.dispatch)
			return
		}
		c.stats.RobotTasks++
		c.log(EvDispatchRobot, w.t.ID, task.Link.Name(),
			fmt.Sprintf("%v@%v by %s", task.Action, task.End, unit.Name()))
		c.d.Bus.Publish(bus.TopicDispatch, bus.Dispatch{
			Ticket: w.t.ID, Link: task.Link, Actor: unit.Name(), Robot: true,
			Action: task.Action, End: task.End,
		})
		w.attemptSeq++
		seq := w.attemptSeq
		a.armWatchdog(w, unit, task, a.robots, true, op, seq)
		a.robots.Execute(unit, task, func(out exec.Outcome) {
			if w.attemptSeq != seq {
				a.onLateOutcome(w, out, true)
				return
			}
			w.watchdog.Cancel()
			if op != nil {
				op.Release()
			}
			a.undrain(w)
			a.onRobotOutcome(w, out)
		})
	}
	if c.cfg.ImpactAware {
		a.preDrain(w, task.Port())
		c.d.Eng.After(c.cfg.DrainSettle, "drain-settle", begin)
	} else {
		begin()
	}
}

// runHuman executes the task on the human backend. Humans are dispatched
// without pre-draining at L0/L1 (today's process); at L2+ the controller
// drains for them too — the cross-layer machinery exists regardless of who
// holds the tool.
func (a *Act) runHuman(w *workItem, tech exec.Actor, task exec.Task) {
	c := a.c
	begin := func() {
		if !tech.Available() {
			// Claimed by another ticket during the drain-settle delay.
			a.undrain(w)
			w.active = false
			c.d.Eng.After(c.cfg.RetryDelay, "tech-stolen-retry", a.dispatch)
			return
		}
		c.stats.HumanTasks++
		c.log(EvDispatchHuman, w.t.ID, task.Link.Name(),
			fmt.Sprintf("%v@%v by %s", task.Action, task.End, tech.Name()))
		c.d.Bus.Publish(bus.TopicDispatch, bus.Dispatch{
			Ticket: w.t.ID, Link: task.Link, Actor: tech.Name(), Robot: false,
			Action: task.Action, End: task.End,
		})
		w.attemptSeq++
		seq := w.attemptSeq
		a.armWatchdog(w, tech, task, a.humans, false, nil, seq)
		a.humans.Execute(tech, task, func(out exec.Outcome) {
			if w.attemptSeq != seq {
				a.onLateOutcome(w, out, false)
				return
			}
			w.watchdog.Cancel()
			a.undrain(w)
			a.onHumanOutcome(w, out)
		})
	}
	if c.cfg.ImpactAware {
		a.preDrain(w, task.Port())
		c.d.Eng.After(c.cfg.DrainSettle, "drain-settle", begin)
	} else {
		begin()
	}
}

// preDrain drains the policy's impact set — the target link and every cable
// the manipulation will contact — so touched cables carry no traffic.
func (a *Act) preDrain(w *workItem, port *topology.Port) {
	c := a.c
	for _, id := range c.d.Policy.ImpactSet(w.t.Link, port) {
		if !c.d.Router.Drained(id) {
			c.d.Router.Drain(id)
			w.drained = append(w.drained, id)
		}
	}
	c.stats.PreDrains++
	c.log(EvPreDrain, w.t.ID, w.t.Link.Name(),
		fmt.Sprintf("drained %d link(s) ahead of manipulation", len(w.drained)))
}

// undrain restores everything this work item drained.
func (a *Act) undrain(w *workItem) {
	for _, id := range w.drained {
		a.c.d.Router.Undrain(id)
	}
	w.drained = nil
}
