// Package core is the paper's primary contribution: the self-maintenance
// controller — the SDN-style control plane that owns hardware repair (§2).
// It consumes telemetry alerts, files and escalates tickets, diagnoses
// links, schedules robots (and the human workforce where robots cannot go),
// pre-drains the cables a planned manipulation will contact, runs proactive
// maintenance campaigns during low-utilization windows, and predicts
// failures from telemetry features.
//
// The controller's behaviour is governed by an automation Level (§2.1),
// mirroring the SAE-derived taxonomy: at L0 everything is human; L1 robots
// assist but a technician must operate them; L2 robots act under human
// supervision (shift hours only); L3 robots are autonomous end-to-end with
// humans handling only escalations; L4 adds fully autonomous proactive and
// predictive maintenance.
package core

import (
	"fmt"
	"sort"

	"repro/internal/diagnosis"
	"repro/internal/faults"
	"repro/internal/robot"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/ticket"
	"repro/internal/topology"
	"repro/internal/workforce"
)

// Level is the automation level (§2.1).
type Level int

// Automation levels.
const (
	L0 Level = iota // no automation: technicians only
	L1              // operator assistance: robots need an operating technician
	L2              // partial automation: robots work under shift-hours supervision
	L3              // high automation: autonomous robots, humans for escalations
	L4              // full automation: L3 + autonomous proactive & predictive work
)

// String returns "L0".."L4".
func (l Level) String() string { return fmt.Sprintf("L%d", int(l)) }

// Config governs controller behaviour.
type Config struct {
	Level Level

	// ImpactAware enables pre-draining the target link and every cable the
	// robot's plan reports it will contact (§2, §4) before physical work.
	ImpactAware bool
	// DrainSettle is how long to wait after draining before touching
	// hardware, letting flows move away.
	DrainSettle sim.Time

	// Proactive enables reseat campaigns: when ProactiveTrigger links on
	// one switch have been fixed by reseating within ProactiveWindow, all
	// other pluggable links on that switch get proactive reseats (§4).
	Proactive        bool
	ProactiveTrigger int
	ProactiveWindow  sim.Time

	// Predictive enables the telemetry-trained failure predictor (§4).
	Predictive bool
	// PredictHorizon is the label horizon: a link "fails soon" if it leaves
	// healthy within this window of a snapshot.
	PredictHorizon sim.Time
	// PredictTrainAfter is how much history to collect before training.
	PredictTrainAfter sim.Time
	// PredictThreshold is the score above which a predictive ticket opens.
	PredictThreshold float64

	// UtilGate defers proactive/predictive (P2) work while fabric
	// utilization is above this fraction. Utilization comes from UtilFn.
	UtilGate float64
	// UtilFn reports current fabric peak utilization in [0,1]; nil means
	// always idle (proactive work never deferred).
	UtilFn func() float64

	// SafetyInterlock defers robotic work in any row where a technician is
	// currently hands-on (§3.4: humans and robots do not share a row).
	SafetyInterlock bool
	// RetryDelay spaces retries after transient scheduler failures.
	RetryDelay sim.Time
	// StockoutRetry spaces retries while waiting for parts to restock.
	StockoutRetry sim.Time
	// MaxAttempts caps physical attempts per ticket before the ticket is
	// parked as chronic and retried on a slow cadence.
	MaxAttempts int
}

// DefaultConfig returns the configuration for a given automation level,
// with the cross-layer features (impact-awareness, proactive, predictive)
// enabled at the levels the paper envisions them.
func DefaultConfig(level Level) Config {
	return Config{
		Level:             level,
		ImpactAware:       level >= L2,
		DrainSettle:       5 * sim.Second,
		Proactive:         level >= L4,
		ProactiveTrigger:  3,
		ProactiveWindow:   30 * sim.Day,
		Predictive:        level >= L4,
		PredictHorizon:    7 * sim.Day,
		PredictTrainAfter: 60 * sim.Day,
		PredictThreshold:  0.75,
		UtilGate:          0.6,
		SafetyInterlock:   true,
		RetryDelay:        30 * sim.Minute,
		StockoutRetry:     4 * sim.Hour,
		MaxAttempts:       10,
	}
}

// Stats counts controller activity.
type Stats struct {
	AlertsSeen         int
	TicketsOpened      int
	TicketsResolved    int
	TicketsCancelled   int
	RobotTasks         int
	HumanTasks         int
	EscalationsToHuman int
	PreDrains          int
	CascadesDuringOps  int
	ProactiveCampaigns int
	ProactiveTasks     int
	PredictiveTasks    int
	ChronicTickets     int
	SafetyHolds        int
}

// Controller is the self-maintenance control plane for one network.
type Controller struct {
	eng    *sim.Engine
	net    *topology.Network
	inj    *faults.Injector
	mon    *telemetry.Monitor
	diag   *diagnosis.Engine
	store  *ticket.Store
	router *routing.Router
	fleet  *robot.Fleet
	crew   *workforce.Crew
	cfg    Config

	work      map[int]*workItem // by ticket ID
	reseatLog map[topology.DeviceID][]sim.Time

	predictor *Predictor
	collector *sampleCollector

	journal journal
	stats   Stats
}

// workItem tracks in-flight controller state for a ticket.
type workItem struct {
	t          *ticket.Ticket
	stage      int
	attempts   int
	forceHuman bool
	active     bool
	drained    []topology.LinkID
	chronic    bool
	// notBefore parks the item (stockout backoff, chronic cadence): global
	// dispatch passes skip it until the instant passes; its own retry event
	// re-kicks it.
	notBefore sim.Time
}

// New wires a controller into a world. It subscribes to the monitor's
// alerts; the caller owns scheduling the engine.
func New(eng *sim.Engine, net *topology.Network, inj *faults.Injector,
	mon *telemetry.Monitor, diag *diagnosis.Engine, store *ticket.Store,
	router *routing.Router, fleet *robot.Fleet, crew *workforce.Crew, cfg Config) *Controller {

	c := &Controller{
		eng: eng, net: net, inj: inj, mon: mon, diag: diag, store: store,
		router: router, fleet: fleet, crew: crew, cfg: cfg,
		work:      make(map[int]*workItem),
		reseatLog: make(map[topology.DeviceID][]sim.Time),
	}
	mon.OnAlert(c.onAlert)
	if cfg.Predictive {
		c.predictor = NewPredictor()
		c.collector = newSampleCollector(cfg.PredictHorizon)
		c.startPredictiveLoop()
	}
	return c
}

// Stats returns a copy of the activity counters.
func (c *Controller) Stats() Stats { return c.stats }

// onAlert is the telemetry entry point.
func (c *Controller) onAlert(a telemetry.Alert) {
	c.stats.AlertsSeen++
	if c.collector != nil {
		c.collector.observeAlert(a)
	}
	switch a.Kind {
	case telemetry.AlertLinkDown:
		c.openTicket(a.Link, ticket.Reactive, faults.Down, ticket.P0)
	case telemetry.AlertLinkFlapping:
		c.openTicket(a.Link, ticket.Reactive, faults.Flapping, ticket.P1)
	case telemetry.AlertLinkRecovered:
		// A link that healed with no physical work in flight closes its
		// ticket (transient or masked fault cleared by itself).
		if t := c.store.OpenFor(a.Link.ID); t != nil {
			if w := c.work[t.ID]; w == nil || !w.active {
				c.store.Cancel(t)
				delete(c.work, t.ID)
				c.stats.TicketsCancelled++
				c.log(EvTicketCancelled, t.ID, a.Link.Name(), "recovered without intervention")
			}
		}
	}
}

// openTicket files (or dedups into) a ticket and schedules dispatch.
func (c *Controller) openTicket(l *topology.Link, kind ticket.Kind, symptom faults.Health, prio ticket.Priority) {
	t, created := c.store.Open(l, kind, symptom, prio)
	if created {
		c.stats.TicketsOpened++
		c.work[t.ID] = &workItem{t: t, stage: t.StartStage}
		detail := fmt.Sprintf("%v %v %v", kind, symptom, prio)
		if t.RepeatOf >= 0 {
			detail += fmt.Sprintf(" (repeat of T%d, start stage %d)", t.RepeatOf, t.StartStage)
		}
		c.log(EvTicketOpened, t.ID, l.Name(), detail)
	}
	c.kickDispatch()
}

func (c *Controller) kickDispatch() {
	c.eng.After(0, "dispatch", c.dispatch)
}

// dispatch walks all pending work items in (priority, age) order and starts
// whatever can start now. It iterates the controller's own work map rather
// than the store's queue: a ticket whose start was rolled back (unit stolen
// during drain-settle, stockout retry) is Active in the store but still
// needs dispatching.
func (c *Controller) dispatch() {
	now := c.eng.Now()
	items := make([]*workItem, 0, len(c.work))
	for _, w := range c.work {
		if w.active || w.t.Status == ticket.Resolved || w.t.Status == ticket.Cancelled {
			continue
		}
		if now < w.notBefore {
			continue
		}
		items = append(items, w)
	}
	sort.Slice(items, func(i, j int) bool {
		a, b := items[i].t, items[j].t
		if a.Priority != b.Priority {
			return a.Priority < b.Priority
		}
		if a.CreatedAt != b.CreatedAt {
			return a.CreatedAt < b.CreatedAt
		}
		return a.ID < b.ID
	})
	deferred := false
	for _, w := range items {
		// Background (P2) work respects the utilization gate.
		if w.t.Priority == ticket.P2 && c.utilization() > c.cfg.UtilGate {
			if !deferred {
				deferred = true
				c.eng.After(sim.Hour, "util-deferred", c.dispatch)
			}
			continue
		}
		c.tryStart(w)
	}
}

// utilization reads the configured utilization source.
func (c *Controller) utilization() float64 {
	if c.cfg.UtilFn == nil {
		return 0
	}
	return c.cfg.UtilFn()
}

// HeldDrains returns how many links are currently drained on behalf of
// in-flight work items — operational introspection, and the invariant
// DrainedCount == HeldDrains must hold whenever the controller is the only
// drain authority.
func (c *Controller) HeldDrains() int {
	n := 0
	for _, w := range c.work {
		n += len(w.drained)
	}
	return n
}
