// Package core is the paper's primary contribution: the self-maintenance
// controller — the SDN-style control plane that owns hardware repair (§2).
// It consumes telemetry alerts, files and escalates tickets, diagnoses
// links, schedules robots (and the human workforce where robots cannot go),
// pre-drains the cables a planned manipulation will contact, runs proactive
// maintenance campaigns during low-utilization windows, and predicts
// failures from telemetry features.
//
// Since the event-bus refactor the control plane is a pipeline of stages
// communicating over internal/bus, mirroring the measurement → inference →
// action loop of self-running networks:
//
//	Sense  — telemetry publishes alerts on sense.alert (wired externally
//	         via telemetry.Monitor.PublishTo)
//	Triage — opens, dedups and cancels tickets (triage.go), consuming
//	         sense.alert and plan.request, producing triage.ticket
//	Plan   — the Policy interface picks ladder actions and impact sets
//	         (policy.go); the Planner runs proactive campaigns and the
//	         failure predictor (plan.go, predict.go), producing
//	         plan.request
//	Act    — dispatches physical work through exec.Executor backends
//	         (dispatch.go, outcome.go), consuming triage.ticket and
//	         producing act.dispatch / act.outcome
//
// Controller is the thin supervisor that wires the stages onto the bus; the
// journal (journal.go) records every decision published on
// journal.decision. The stages never call telemetry, robot or workforce
// concrete types: alerts arrive as bus events, physical work goes through
// exec.Executor.
//
// The controller's behaviour is governed by an automation Level (§2.1),
// mirroring the SAE-derived taxonomy: at L0 everything is human; L1 robots
// assist but a technician must operate them; L2 robots act under human
// supervision (shift hours only); L3 robots are autonomous end-to-end with
// humans handling only escalations; L4 adds fully autonomous proactive and
// predictive maintenance.
package core

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/diagnosis"
	"repro/internal/exec"
	"repro/internal/faults"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/ticket"
	"repro/internal/topology"
)

// Level is the automation level (§2.1).
type Level int

// Automation levels.
const (
	L0 Level = iota // no automation: technicians only
	L1              // operator assistance: robots need an operating technician
	L2              // partial automation: robots work under shift-hours supervision
	L3              // high automation: autonomous robots, humans for escalations
	L4              // full automation: L3 + autonomous proactive & predictive work
)

// String returns "L0".."L4".
func (l Level) String() string { return fmt.Sprintf("L%d", int(l)) }

// Config governs controller behaviour.
type Config struct {
	Level Level

	// ImpactAware enables pre-draining the target link and every cable the
	// robot's plan reports it will contact (§2, §4) before physical work.
	ImpactAware bool
	// DrainSettle is how long to wait after draining before touching
	// hardware, letting flows move away.
	DrainSettle sim.Time

	// Proactive enables reseat campaigns: when ProactiveTrigger links on
	// one switch have been fixed by reseating within ProactiveWindow, all
	// other pluggable links on that switch get proactive reseats (§4).
	Proactive        bool
	ProactiveTrigger int
	ProactiveWindow  sim.Time

	// Predictive enables the telemetry-trained failure predictor (§4).
	Predictive bool
	// PredictHorizon is the label horizon: a link "fails soon" if it leaves
	// healthy within this window of a snapshot.
	PredictHorizon sim.Time
	// PredictTrainAfter is how much history to collect before training.
	PredictTrainAfter sim.Time
	// PredictThreshold is the score above which a predictive ticket opens.
	PredictThreshold float64

	// UtilGate defers proactive/predictive (P2) work while fabric
	// utilization is above this fraction. Utilization comes from UtilFn.
	UtilGate float64
	// UtilFn reports current fabric peak utilization in [0,1]; nil means
	// always idle (proactive work never deferred).
	UtilFn func() float64

	// SafetyInterlock defers robotic work in any row where a technician is
	// currently hands-on (§3.4: humans and robots do not share a row).
	SafetyInterlock bool
	// RetryDelay spaces retries after transient scheduler failures.
	RetryDelay sim.Time
	// StockoutRetry spaces retries while waiting for parts to restock.
	StockoutRetry sim.Time
	// MaxAttempts caps physical attempts per ticket before the ticket is
	// parked as chronic and retried on a slow cadence.
	MaxAttempts int

	// WatchdogFactor multiplies an executor's nominal duration estimate
	// (exec.DurationEstimator) to form each attempt's watchdog deadline. The
	// factor must leave headroom over every natural sampling tail: a watchdog
	// that fires on healthy actuators would perturb chaos-free runs. <= 0
	// disables watchdogs entirely.
	WatchdogFactor float64
	// WatchdogFloor is the minimum watchdog deadline, covering executors
	// without a duration estimate.
	WatchdogFloor sim.Time
	// RetryBackoff is the base delay before retrying a watchdog-failed
	// attempt; it doubles per recorded attempt (attempt-indexed, so replays
	// are deterministic) up to RetryBackoffCap.
	RetryBackoff    sim.Time
	RetryBackoffCap sim.Time
	// RobotFailLimit force-escalates a ticket to the human lane after this
	// many robot-lane watchdog failures; <= 0 never escalates.
	RobotFailLimit int
}

// DefaultConfig returns the configuration for a given automation level,
// with the cross-layer features (impact-awareness, proactive, predictive)
// enabled at the levels the paper envisions them.
func DefaultConfig(level Level) Config {
	return Config{
		Level:             level,
		ImpactAware:       level >= L2,
		DrainSettle:       5 * sim.Second,
		Proactive:         level >= L4,
		ProactiveTrigger:  3,
		ProactiveWindow:   30 * sim.Day,
		Predictive:        level >= L4,
		PredictHorizon:    7 * sim.Day,
		PredictTrainAfter: 60 * sim.Day,
		PredictThreshold:  0.75,
		UtilGate:          0.6,
		SafetyInterlock:   true,
		RetryDelay:        30 * sim.Minute,
		StockoutRetry:     4 * sim.Hour,
		MaxAttempts:       10,
		WatchdogFactor:    8,
		WatchdogFloor:     2 * sim.Hour,
		RetryBackoff:      15 * sim.Minute,
		RetryBackoffCap:   6 * sim.Hour,
		RobotFailLimit:    3,
	}
}

// Stats counts controller activity.
type Stats struct {
	AlertsSeen         int
	TicketsOpened      int
	TicketsResolved    int
	TicketsCancelled   int
	RobotTasks         int
	HumanTasks         int
	EscalationsToHuman int
	PreDrains          int
	CascadesDuringOps  int
	ProactiveCampaigns int
	ProactiveTasks     int
	PredictiveTasks    int
	ChronicTickets     int
	SafetyHolds        int
	WatchdogFires      int
	LateOutcomes       int
	DegradedTickets    int
}

// Deps are the services a controller is wired with. Alerts are not listed:
// they arrive over Bus (topic sense.alert), published by whichever
// monitoring plane the caller connects.
type Deps struct {
	Eng    *sim.Engine
	Net    *topology.Network
	Inj    *faults.Injector
	Diag   *diagnosis.Engine
	Store  *ticket.Store
	Router *routing.Router
	Bus    *bus.Bus

	// Robots and Humans are the Act stage's execution backends. Humans may
	// additionally implement exec.Shifted, exec.RowOccupancy and
	// exec.OperatorSource; Act discovers those capabilities by assertion.
	Robots exec.Executor
	Humans exec.Executor

	// Features returns the prediction feature vector for a link; nil
	// disables feature snapshots (the predictor then never trains).
	Features func(topology.LinkID) []float64

	// Policy decides repair actions and impact sets; nil uses the built-in
	// escalation-ladder policy backed by Diag and Inj.
	Policy Policy
}

// Controller is the self-maintenance control plane for one network: a thin
// supervisor that wires the Triage, Plan and Act stages onto the bus and
// owns the shared stats and decision journal.
type Controller struct {
	d   Deps
	cfg Config

	triage  *Triage
	planner *Planner
	act     *Act

	journal journal
	stats   Stats
}

// New wires a controller into a world. Stage subscriptions are ordered so
// that, within one published event, observers fire exactly as the old
// monolithic controller did: the journal first, then Plan's sample
// collector, then Triage, then Act.
func New(d Deps, cfg Config) *Controller {
	if d.Policy == nil {
		d.Policy = NewLadderPolicy(d.Diag, d.Inj)
	}
	c := &Controller{d: d, cfg: cfg}

	// Journal: every decision published on journal.decision is retained.
	d.Bus.Subscribe(bus.TopicDecision, func(ev bus.Event) {
		if e, ok := ev.Payload.(JournalEntry); ok {
			c.journal.add(e)
		}
	})

	// Sense accounting.
	d.Bus.Subscribe(bus.TopicAlert, func(bus.Event) { c.stats.AlertsSeen++ })

	c.planner = newPlanner(c)
	if cfg.Predictive {
		// The sample collector labels feature snapshots from alerts; it must
		// observe each alert before Triage reacts to it, as before.
		d.Bus.Subscribe(bus.TopicAlert, c.planner.onAlert)
	}
	c.act = newAct(c)
	c.triage = newTriage(c)

	d.Bus.Subscribe(bus.TopicAlert, c.triage.onAlert)
	d.Bus.Subscribe(bus.TopicRequest, c.triage.onRequest)
	d.Bus.Subscribe(bus.TopicTicket, c.act.onTicketEvent)
	d.Bus.Subscribe(bus.TopicTicket, c.planner.onTicketEvent)

	if cfg.Predictive {
		c.planner.startPredictiveLoop()
	}
	return c
}

// Stats returns a copy of the activity counters.
func (c *Controller) Stats() Stats { return c.stats }

// Policy returns the active planning policy.
func (c *Controller) Policy() Policy { return c.d.Policy }

// HeldDrains returns how many links are currently drained on behalf of
// in-flight work items — operational introspection, and the invariant
// DrainedCount == HeldDrains must hold whenever the controller is the only
// drain authority.
func (c *Controller) HeldDrains() int { return c.act.heldDrains() }

// PredictorHandle exposes the trained predictor for experiment scoring.
func (c *Controller) PredictorHandle() *Predictor { return c.planner.predictor }

// CollectorDataset exposes matured labelled samples for experiment scoring.
func (c *Controller) CollectorDataset() (X [][]float64, y []bool) {
	if c.planner.collector == nil {
		return nil, nil
	}
	return c.planner.collector.dataset(c.d.Eng.Now())
}
