package bus

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestTapSnapshotAcrossShardPipelines pins the bus's snapshot semantics in
// the region-sharded world: every shard of a MultiEngine runs its own bus
// and pipeline, shards deliver concurrently at workers > 1, and each bus's
// guarantees (taps before subscribers, subscribe-mid-delivery excluded from
// the triggering event, cancel-mid-delivery honored) must hold per shard
// with byte-identical tap logs at any worker count. Run under -race this is
// also the proof that per-shard buses share nothing.
func TestTapSnapshotAcrossShardPipelines(t *testing.T) {
	const shards = 4
	run := func(workers int) string {
		me := sim.NewMultiEngine(5, shards, sim.Minute, workers)
		logs := make([]*strings.Builder, shards)
		for i := 0; i < shards; i++ {
			i := i
			eng := me.Shard(i).Engine()
			b := New(eng)
			logs[i] = &strings.Builder{}
			b.Tap(func(ev Event) {
				fmt.Fprintf(logs[i], "tap #%d %s %v\n", ev.Seq, ev.Topic, ev.Payload)
			})
			var late *Subscription
			b.Subscribe("alerts", func(ev Event) {
				fmt.Fprintf(logs[i], "sub #%d\n", ev.Seq)
				switch {
				case ev.Seq == 2:
					// Snapshot semantics: this subscriber must not see the
					// event that created it.
					late = b.Subscribe("alerts", func(ev2 Event) {
						fmt.Fprintf(logs[i], "late #%d\n", ev2.Seq)
					})
				case ev.Seq == 7 && late != nil:
					late.Cancel()
				}
			})
			eng.Every(sim.Minute, sim.Minute, "pub", func(at sim.Time) {
				b.Publish("alerts", eng.RNG("pipeline").IntN(100))
			})
		}
		me.RunUntil(12 * sim.Minute)
		var out strings.Builder
		for i, l := range logs {
			fmt.Fprintf(&out, "== shard %d\n%s", i, l.String())
		}
		return out.String()
	}
	base := run(1)
	if !strings.Contains(base, "late #3") || strings.Contains(base, "late #2") {
		t.Fatalf("snapshot semantics broken in baseline:\n%s", base)
	}
	if strings.Contains(base, "late #8") {
		t.Fatalf("cancel-mid-run not honored in baseline:\n%s", base)
	}
	for _, w := range []int{2, 4} {
		if got := run(w); got != base {
			t.Fatalf("workers=%d tap logs differ from workers=1:\n--- base\n%s\n--- got\n%s", w, base, got)
		}
	}
}
