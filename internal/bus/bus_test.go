package bus

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

func newBus() (*sim.Engine, *Bus) {
	eng := sim.NewEngine(1)
	return eng, New(eng)
}

// TestSameInstantOrdering: events published at one virtual instant are
// totally ordered by sequence number, and each subscriber of a topic sees
// them in publish order, with subscribers invoked in subscription order.
func TestSameInstantOrdering(t *testing.T) {
	_, b := newBus()
	var order []string
	b.Subscribe("t", func(ev Event) { order = append(order, fmt.Sprintf("s1:%d", ev.Seq)) })
	b.Subscribe("t", func(ev Event) { order = append(order, fmt.Sprintf("s2:%d", ev.Seq)) })
	for i := 0; i < 3; i++ {
		b.Publish("t", i)
	}
	want := []string{"s1:0", "s2:0", "s1:1", "s2:1", "s1:2", "s2:2"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("delivery order %v, want %v", order, want)
	}
}

// TestEnvelopeStampsClock: events carry the engine's virtual clock.
func TestEnvelopeStampsClock(t *testing.T) {
	eng, b := newBus()
	var at []sim.Time
	b.Subscribe("t", func(ev Event) { at = append(at, ev.At) })
	b.Publish("t", "early")
	eng.After(5*sim.Second, "tick", func() { b.Publish("t", "late") })
	eng.RunUntil(10 * sim.Second)
	if len(at) != 2 || at[0] != 0 || at[1] != 5*sim.Second {
		t.Fatalf("stamped times %v, want [0 5s]", at)
	}
}

// TestTapsRunBeforeSubscribers: a tap sees every event of every topic,
// before the topic's own subscribers.
func TestTapsRunBeforeSubscribers(t *testing.T) {
	_, b := newBus()
	var order []string
	b.Subscribe("a", func(ev Event) { order = append(order, "sub-a") })
	b.Tap(func(ev Event) { order = append(order, "tap:"+string(ev.Topic)) })
	b.Subscribe("b", func(ev Event) { order = append(order, "sub-b") })
	b.Publish("a", nil)
	b.Publish("b", nil)
	want := []string{"tap:a", "sub-a", "tap:b", "sub-b"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
}

// TestSubscribeMidDelivery: a subscription created while an event is being
// delivered does not receive that event, but receives the next.
func TestSubscribeMidDelivery(t *testing.T) {
	_, b := newBus()
	var lateSeqs []uint64
	b.Subscribe("t", func(ev Event) {
		if ev.Seq == 0 {
			b.Subscribe("t", func(ev Event) { lateSeqs = append(lateSeqs, ev.Seq) })
		}
	})
	b.Publish("t", nil) // seq 0: late subscriber must miss this
	b.Publish("t", nil) // seq 1: late subscriber sees this
	if len(lateSeqs) != 1 || lateSeqs[0] != 1 {
		t.Fatalf("late subscriber saw %v, want [1]", lateSeqs)
	}

	// The same guarantee holds when the subscription is created by a tap:
	// taps run before topic subscribers, so without snapshotting the topic
	// list before taps, a tap-created subscription would receive the very
	// event that triggered it.
	_, b2 := newBus()
	var tapLateSeqs []uint64
	b2.Tap(func(ev Event) {
		if ev.Seq == 0 {
			b2.Subscribe("t", func(ev Event) { tapLateSeqs = append(tapLateSeqs, ev.Seq) })
		}
	})
	b2.Publish("t", nil) // seq 0: tap-created subscriber must miss this
	b2.Publish("t", nil) // seq 1: tap-created subscriber sees this
	if len(tapLateSeqs) != 1 || tapLateSeqs[0] != 1 {
		t.Fatalf("tap-created subscriber saw %v, want [1]", tapLateSeqs)
	}
}

// TestCancelMidDelivery: a subscription cancelled while the current event
// is being delivered receives nothing further, including that event.
func TestCancelMidDelivery(t *testing.T) {
	_, b := newBus()
	var got int
	var victim *Subscription
	b.Subscribe("t", func(ev Event) { victim.Cancel() })
	victim = b.Subscribe("t", func(ev Event) { got++ })
	b.Publish("t", nil)
	b.Publish("t", nil)
	if got != 0 {
		t.Fatalf("cancelled subscriber received %d events, want 0", got)
	}
	if victim.Active() {
		t.Fatal("victim still active after Cancel")
	}
	victim.Cancel() // double-cancel is a no-op
}

// TestUnsubscribeMidRun: cancelling between publishes detaches cleanly and
// the live-subscription count tracks it.
func TestUnsubscribeMidRun(t *testing.T) {
	_, b := newBus()
	var n1, n2 int
	s1 := b.Subscribe("t", func(Event) { n1++ })
	b.Subscribe("t", func(Event) { n2++ })
	b.Publish("t", nil)
	s1.Cancel()
	b.Publish("t", nil)
	b.Publish("t", nil)
	if n1 != 1 || n2 != 3 {
		t.Fatalf("counts (%d, %d), want (1, 3)", n1, n2)
	}
	if st := b.Stats(); st.Subs != 1 {
		t.Fatalf("Stats().Subs = %d after cancel, want 1", st.Subs)
	}
}

// TestReentrantPublish: a handler may publish; the nested event is fully
// delivered (depth-first) before control returns to the outer handler, and
// sequence numbers still reflect publish order.
func TestReentrantPublish(t *testing.T) {
	_, b := newBus()
	var order []string
	b.Subscribe("outer", func(ev Event) {
		order = append(order, "outer-start")
		b.Publish("inner", nil)
		order = append(order, "outer-end")
	})
	b.Subscribe("inner", func(ev Event) {
		order = append(order, fmt.Sprintf("inner:%d", ev.Seq))
	})
	b.Publish("outer", nil)
	want := []string{"outer-start", "inner:1", "outer-end"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
}

// TestCancelDuringReentrantDeliveryCompacts: cancellation during nested
// delivery defers compaction until the stack unwinds, then drops the dead
// subscription.
func TestCancelDuringReentrantDeliveryCompacts(t *testing.T) {
	_, b := newBus()
	var self *Subscription
	self = b.Subscribe("t", func(ev Event) {
		b.Publish("nested", nil)
		self.Cancel()
	})
	b.Subscribe("nested", func(Event) {})
	b.Publish("t", nil)
	if len(b.topics["t"]) != 0 {
		t.Fatalf("topic list not compacted: %d entries", len(b.topics["t"]))
	}
	if st := b.Stats(); st.Subs != 1 {
		t.Fatalf("Stats().Subs = %d, want 1 (the nested subscriber)", st.Subs)
	}
}

// TestStatsCounters: published/delivered counters account every event and
// handler invocation.
func TestStatsCounters(t *testing.T) {
	_, b := newBus()
	b.Subscribe("t", func(Event) {})
	b.Subscribe("t", func(Event) {})
	b.Tap(func(Event) {})
	b.Publish("t", nil)     // 1 tap + 2 subs
	b.Publish("other", nil) // 1 tap
	st := b.Stats()
	if st.Published != 2 || st.Deliveries != 4 {
		t.Fatalf("Stats = %+v, want Published 2, Deliveries 4", st)
	}
}

// TestEventString renders the envelope.
func TestEventString(t *testing.T) {
	ev := Event{Seq: 3, At: 61 * sim.Second, Topic: "sense.alert", Payload: "x"}
	if got := ev.String(); got != "[00:01:01.000] #3 sense.alert: x" {
		t.Fatalf("String() = %q", got)
	}
}
