// Package bus is the typed, deterministic publish/subscribe event bus the
// maintenance pipeline runs on. The paper's §4 research agenda calls for
// *software-defined maintenance controllers* whose policies are composable
// modules rather than one hard-wired loop; the bus is the spine that lets
// the pipeline stages — Sense (telemetry), Triage (ticketing), Plan
// (policy), Act (dispatch) — communicate without importing each other's
// concrete types.
//
// Delivery semantics, chosen so that a simulation run is reproducible to
// the byte for a fixed seed:
//
//   - Publish delivers synchronously on the caller's stack, in virtual time
//     (events are stamped with the sim engine's clock and a global sequence
//     number). No goroutines, no engine events: publishing never perturbs
//     the discrete-event schedule.
//   - Per-topic subscribers run in subscription order; taps (subscribers to
//     every topic) run before topic subscribers, so a tap-based event log
//     always records events in publish order even when a handler publishes
//     nested events.
//   - Handlers may publish, subscribe and cancel re-entrantly. A
//     subscription created while an event is being delivered does not
//     receive that event; a subscription cancelled mid-delivery receives
//     nothing further, including the event currently being delivered.
package bus

import (
	"fmt"

	"repro/internal/sim"
)

// Topic names one event stream. Topics are created implicitly on first
// subscribe or publish.
type Topic string

// Event is one published message: a payload with its bus envelope.
type Event struct {
	// Seq is the global publish sequence number; it totally orders all
	// events of a run, including events published at the same instant.
	Seq uint64
	// At is the virtual time the event was published.
	At      sim.Time
	Topic   Topic
	Payload any
}

// String renders the envelope for logs.
func (e Event) String() string {
	return fmt.Sprintf("[%v] #%d %s: %v", e.At, e.Seq, e.Topic, e.Payload)
}

// Handler consumes events.
type Handler func(Event)

// Subscription is a handle that can cancel a subscriber or tap.
type Subscription struct {
	bus    *Bus
	topic  Topic
	tap    bool
	fn     Handler
	active bool
}

// Active reports whether the subscription still receives events.
func (s *Subscription) Active() bool { return s != nil && s.active }

// Cancel detaches the subscriber. It is safe to call mid-delivery (the
// subscriber receives nothing further) and more than once.
func (s *Subscription) Cancel() {
	if s == nil || !s.active {
		return
	}
	s.active = false
	s.bus.dead++
	s.bus.maybeCompact()
}

// Stats counts bus activity.
type Stats struct {
	Published  uint64 // events published
	Deliveries uint64 // handler invocations
	Topics     int    // topics with at least one subscriber ever
	Subs       int    // live subscriptions (including taps)
}

// Bus is one event bus. It is single-threaded by design, like the engine
// whose clock it stamps events with.
type Bus struct {
	eng    *sim.Engine
	seq    uint64
	topics map[Topic][]*Subscription
	taps   []*Subscription

	depth     int // re-entrant publish depth; compaction is deferred while > 0
	dead      int
	published uint64
	delivered uint64
}

// New creates an empty bus on the engine's clock.
func New(eng *sim.Engine) *Bus {
	return &Bus{eng: eng, topics: make(map[Topic][]*Subscription)}
}

// Subscribe registers fn for one topic. Subscribers of a topic are invoked
// in subscription order.
func (b *Bus) Subscribe(t Topic, fn Handler) *Subscription {
	s := &Subscription{bus: b, topic: t, fn: fn, active: true}
	b.topics[t] = append(b.topics[t], s)
	return s
}

// Tap registers fn for every topic. Taps run before topic subscribers and
// see events in publish order — the observability stream the journal and
// the daemon's /events endpoint hang off.
func (b *Bus) Tap(fn Handler) *Subscription {
	s := &Subscription{bus: b, tap: true, fn: fn, active: true}
	b.taps = append(b.taps, s)
	return s
}

// Publish stamps the payload with the current virtual time and the next
// sequence number and delivers it synchronously: taps first, then the
// topic's subscribers in subscription order. It returns the envelope.
func (b *Bus) Publish(t Topic, payload any) Event {
	ev := Event{Seq: b.seq, At: b.eng.Now(), Topic: t, Payload: payload}
	b.seq++
	b.published++
	b.depth++
	// Snapshot the topic's subscriber list before taps run: a subscription
	// created by a tap handler mid-delivery must not receive the event
	// being delivered (deliver also bounds itself to the snapshot length,
	// which covers subscriptions created by earlier topic subscribers).
	subs := b.topics[t]
	b.deliver(b.taps, ev)
	b.deliver(subs, ev)
	b.depth--
	b.maybeCompact()
	return ev
}

// deliver invokes the active handlers registered before this event was
// published (len is captured up front: re-entrant subscribers miss it).
func (b *Bus) deliver(list []*Subscription, ev Event) {
	n := len(list)
	for i := 0; i < n; i++ {
		if s := list[i]; s.active {
			b.delivered++
			s.fn(ev)
		}
	}
}

// maybeCompact drops cancelled subscriptions once no delivery is on the
// stack, keeping long-running worlds from accumulating dead handlers.
func (b *Bus) maybeCompact() {
	if b.depth != 0 || b.dead == 0 {
		return
	}
	//lint:allow mapiter per-topic compaction writes back under the same key; order cannot reach output
	for t, list := range b.topics {
		b.topics[t] = compact(list)
	}
	b.taps = compact(b.taps)
	b.dead = 0
}

func compact(list []*Subscription) []*Subscription {
	kept := list[:0]
	for _, s := range list {
		if s.active {
			kept = append(kept, s)
		}
	}
	// Zero the tail so cancelled subscriptions can be collected.
	for i := len(kept); i < len(list); i++ {
		list[i] = nil
	}
	return kept
}

// Stats returns activity counters.
func (b *Bus) Stats() Stats {
	st := Stats{Published: b.published, Deliveries: b.delivered, Topics: len(b.topics)}
	//lint:allow mapiter pure counting of live subscriptions; the total is order-independent
	for _, list := range b.topics {
		for _, s := range list {
			if s.active {
				st.Subs++
			}
		}
	}
	for _, s := range b.taps {
		if s.active {
			st.Subs++
		}
	}
	return st
}
