package bus

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/topology"
)

// The maintenance pipeline's event taxonomy. Each stage publishes on its
// own topic and subscribes to the stage upstream of it:
//
//	sense.alert     telemetry → Triage, Plan   payload Alert
//	plan.request    Plan → Triage              payload RepairRequest
//	triage.ticket   Triage/Act → Act, Plan     payload TicketEvent
//	act.dispatch    Act → observers            payload Dispatch
//	act.outcome     Act → observers            payload WorkOutcome
//	act.watchdog    Act → observers            payload WatchdogFired
//	act.degraded    Act → observers            payload Degraded
//	journal.decision controller → journal tap  payload core.JournalEntry
const (
	TopicAlert    Topic = "sense.alert"
	TopicRequest  Topic = "plan.request"
	TopicTicket   Topic = "triage.ticket"
	TopicDispatch Topic = "act.dispatch"
	TopicOutcome  Topic = "act.outcome"
	TopicWatchdog Topic = "act.watchdog"
	TopicDegraded Topic = "act.degraded"
	TopicDecision Topic = "journal.decision"
)

// AlertKind classifies a Sense-stage alert.
type AlertKind uint8

// Alert kinds, mirroring the telemetry plane's taxonomy without importing
// it (telemetry publishes onto the bus, so the bus stays below it).
const (
	AlertLinkDown AlertKind = iota
	AlertLinkFlapping
	AlertLinkRecovered
)

var alertKindNames = [...]string{
	AlertLinkDown:      "link-down",
	AlertLinkFlapping:  "link-flapping",
	AlertLinkRecovered: "link-recovered",
}

// String returns the alert kind name.
func (k AlertKind) String() string {
	if int(k) < len(alertKindNames) {
		return alertKindNames[k]
	}
	return fmt.Sprintf("alert(%d)", uint8(k))
}

// Alert is a Sense-stage event: the monitoring plane observed a link state
// change worth acting on.
type Alert struct {
	Kind   AlertKind
	Link   *topology.Link
	At     sim.Time
	Detail string
}

// String renders the alert for logs.
func (a Alert) String() string {
	return fmt.Sprintf("%v %s %s", a.Kind, a.Link.Name(), a.Detail)
}

// RepairRequest is a Plan-stage event asking Triage to open background
// maintenance work (a proactive campaign task or a predictive ticket) on a
// currently healthy link.
type RepairRequest struct {
	Link *topology.Link
	// Predictive marks a model-predicted failure; otherwise the request is
	// part of a proactive campaign.
	Predictive bool
}

// String renders the request for logs.
func (r RepairRequest) String() string {
	kind := "proactive"
	if r.Predictive {
		kind = "predictive"
	}
	return fmt.Sprintf("%s repair of %s", kind, r.Link.Name())
}

// TicketEventKind classifies a Triage-stage ticket lifecycle event.
type TicketEventKind uint8

// Ticket lifecycle events.
const (
	TicketOpened TicketEventKind = iota
	TicketDeduped
	TicketResolved
	TicketCancelled
)

var ticketEventNames = [...]string{
	TicketOpened:    "opened",
	TicketDeduped:   "deduped",
	TicketResolved:  "resolved",
	TicketCancelled: "cancelled",
}

// String returns the event kind name.
func (k TicketEventKind) String() string {
	if int(k) < len(ticketEventNames) {
		return ticketEventNames[k]
	}
	return fmt.Sprintf("ticket-event(%d)", uint8(k))
}

// TicketEvent is a ticket lifecycle transition. Opened/Deduped/Cancelled
// are published by Triage; Resolved by Act when a repair verifies healthy.
type TicketEvent struct {
	Kind TicketEventKind
	ID   int
	Link *topology.Link
	// Action is the repair action that resolved the ticket (Resolved only).
	Action faults.Action
	// Reactive reports whether the ticket repaired a detected failure (as
	// opposed to proactive/predictive background work). The proactive
	// planner keys campaigns off reactive reseat fixes.
	Reactive bool
}

// String renders the event for logs.
func (e TicketEvent) String() string {
	return fmt.Sprintf("T%d %s %s", e.ID, e.Link.Name(), e.Kind)
}

// Dispatch is an Act-stage event: physical work is being launched.
type Dispatch struct {
	Ticket int
	Link   *topology.Link
	Actor  string
	Robot  bool
	Action faults.Action
	End    faults.End
}

// String renders the dispatch for logs.
func (d Dispatch) String() string {
	lane := "human"
	if d.Robot {
		lane = "robot"
	}
	return fmt.Sprintf("T%d %s %s %v@%v by %s", d.Ticket, d.Link.Name(), lane, d.Action, d.End, d.Actor)
}

// WorkOutcome is an Act-stage event: a physical attempt finished.
type WorkOutcome struct {
	Ticket int
	Link   *topology.Link
	Actor  string
	Robot  bool
	Action faults.Action
	// Completed reports the action was physically performed; Fixed that the
	// link verified healthy afterwards.
	Completed bool
	Fixed     bool
	Note      string
}

// WatchdogFired is an Act-stage event: a dispatched attempt blew its
// watchdog deadline — the actuator stalled, is running far past its nominal
// duration, or finished but its report was lost. The dispatcher has already
// released the attempt's drains and claims and force-failed it; Backoff is
// the deterministic delay before the retry becomes eligible.
type WatchdogFired struct {
	Ticket int
	Link   *topology.Link
	Actor  string
	Robot  bool
	Action faults.Action
	// Deadline is the expired watchdog budget (nominal duration × factor).
	Deadline sim.Time
	// Attempt is the attempt index the ticket is on after the force-fail.
	Attempt int
	Backoff sim.Time
}

// String renders the watchdog event for logs.
func (w WatchdogFired) String() string {
	lane := "human"
	if w.Robot {
		lane = "robot"
	}
	return fmt.Sprintf("T%d %s %s %v by %s: watchdog after %v (attempt %d, backoff %v)",
		w.Ticket, w.Link.Name(), lane, w.Action, w.Actor, w.Deadline, w.Attempt, w.Backoff)
}

// Degraded is an Act-stage event: repeated actuator failures exhausted the
// robotic lane's retry budget and the ticket is escalated to humans — the
// maintenance plane degrading gracefully around its own broken actuators.
type Degraded struct {
	Ticket int
	Link   *topology.Link
	// RobotFailures counts the robot-lane watchdog failures that triggered
	// the escalation.
	RobotFailures int
}

// String renders the degradation event for logs.
func (d Degraded) String() string {
	return fmt.Sprintf("T%d %s degraded to human after %d robot watchdog failure(s)",
		d.Ticket, d.Link.Name(), d.RobotFailures)
}

// String renders the outcome for logs.
func (o WorkOutcome) String() string {
	verdict := "failed"
	switch {
	case o.Fixed:
		verdict = "fixed"
	case o.Completed:
		verdict = "performed, not fixed"
	}
	return fmt.Sprintf("T%d %s %v by %s: %s", o.Ticket, o.Link.Name(), o.Action, o.Actor, verdict)
}
