package routing

import (
	"math"
	"testing"

	"repro/internal/topology"
)

func leafSpine(t *testing.T, leaves, spines, hosts, uplinks int) *topology.Network {
	t.Helper()
	n, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: leaves, Spines: spines, HostsPerLeaf: hosts, Uplinks: uplinks,
		FabricGbps: 400, HostGbps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestEvaluateHealthyFabricSatisfiesModestLoad(t *testing.T) {
	n := leafSpine(t, 4, 2, 4, 1)
	r := NewRouter(n, nil)
	tm := UniformMatrix(n, 200)
	a := r.Evaluate(tm)
	if a.Availability() < 0.999 {
		t.Fatalf("availability %v on an uncongested fabric", a.Availability())
	}
	if a.Unreachable != 0 {
		t.Fatalf("unreachable = %d", a.Unreachable)
	}
	if a.MaxUtil <= 0 {
		t.Fatal("no load recorded")
	}
	if a.String() == "" {
		t.Error("empty assessment string")
	}
}

func TestOverloadReducesSatisfaction(t *testing.T) {
	n := leafSpine(t, 2, 1, 2, 1) // single spine: leaf uplinks are 400G each
	r := NewRouter(n, nil)
	// Cross-leaf offered load far beyond uplink capacity.
	hosts := n.Hosts()
	var tm TrafficMatrix
	tm.Demands = append(tm.Demands,
		Demand{Src: hosts[0].ID, Dst: hosts[2].ID, Gbps: 600},
		Demand{Src: hosts[1].ID, Dst: hosts[3].ID, Gbps: 600},
	)
	a := r.Evaluate(tm)
	if a.Availability() > 0.95 {
		t.Fatalf("availability %v despite 3x uplink overload", a.Availability())
	}
	if a.MaxUtil < 1.5 {
		t.Fatalf("maxutil = %v", a.MaxUtil)
	}
	// Satisfied load cannot exceed capacity constraints wildly: each demand
	// achieved <= offered.
	for i, s := range a.PerDemand {
		if s > 1+1e-9 || s < 0 {
			t.Fatalf("demand %d satisfaction %v", i, s)
		}
	}
}

func TestLinkFailureForcesReroute(t *testing.T) {
	n := leafSpine(t, 2, 2, 2, 1)
	down := map[topology.LinkID]bool{}
	r := NewRouter(n, func(id topology.LinkID) bool { return !down[id] })
	tm := UniformMatrix(n, 100)

	before := r.Evaluate(tm)
	if before.Availability() < 0.999 {
		t.Fatal("unhealthy baseline")
	}
	// Kill one leaf uplink: traffic shifts to the other spine.
	var uplink *topology.Link
	for _, l := range n.SwitchLinks() {
		uplink = l
		break
	}
	down[uplink.ID] = true
	r.Invalidate()
	after := r.Evaluate(tm)
	if after.Availability() < 0.999 {
		t.Fatalf("availability %v after single uplink loss with a spare spine", after.Availability())
	}
	if after.LinkLoad[uplink.ID] != 0 {
		t.Fatal("failed link still carries load")
	}
}

func TestDrainMovesTraffic(t *testing.T) {
	n := leafSpine(t, 2, 2, 2, 1)
	r := NewRouter(n, nil)
	tm := UniformMatrix(n, 100)
	var uplink *topology.Link
	for _, l := range n.SwitchLinks() {
		uplink = l
		break
	}
	r.Drain(uplink.ID)
	if !r.Drained(uplink.ID) || r.DrainedCount() != 1 {
		t.Fatal("drain bookkeeping")
	}
	a := r.Evaluate(tm)
	if a.LinkLoad[uplink.ID] != 0 {
		t.Fatal("drained link still carries load")
	}
	if a.Availability() < 0.999 {
		t.Fatalf("drain collapsed availability: %v", a.Availability())
	}
	r.Undrain(uplink.ID)
	a = r.Evaluate(tm)
	if a.LinkLoad[uplink.ID] == 0 {
		t.Fatal("undrained link carries no load")
	}
}

func TestIsolatedLeafUnreachable(t *testing.T) {
	n := leafSpine(t, 2, 2, 1, 1)
	down := map[topology.LinkID]bool{}
	r := NewRouter(n, func(id topology.LinkID) bool { return !down[id] })
	// Cut both uplinks of leaf0.
	leaf0 := n.DevicesOfKind(topology.LeafSwitch)[0]
	for _, np := range n.Neighbors(leaf0.ID) {
		if np.Peer.Kind == topology.SpineSwitch {
			down[np.Link.ID] = true
		}
	}
	r.Invalidate()
	tm := UniformMatrix(n, 100)
	a := r.Evaluate(tm)
	if a.Unreachable == 0 {
		t.Fatal("no unreachable demands after isolating a leaf")
	}
	if a.Availability() > 0.99 {
		t.Fatalf("availability %v with an isolated leaf", a.Availability())
	}
}

func TestMatrices(t *testing.T) {
	n := leafSpine(t, 4, 2, 4, 1)
	hosts := len(n.Hosts())

	u := UniformMatrix(n, 160)
	if len(u.Demands) != hosts*(hosts-1) {
		t.Fatalf("uniform demands = %d", len(u.Demands))
	}
	if math.Abs(u.TotalGbps()-160) > 1e-6 {
		t.Fatalf("uniform total = %v", u.TotalGbps())
	}

	p := PermutationMatrix(n, 10, 3)
	if len(p.Demands) == 0 || len(p.Demands) > hosts {
		t.Fatalf("permutation demands = %d", len(p.Demands))
	}
	for _, d := range p.Demands {
		if d.Src == d.Dst {
			t.Fatal("self demand in permutation")
		}
	}
	// Deterministic by seed.
	p2 := PermutationMatrix(n, 10, 3)
	if len(p2.Demands) != len(p.Demands) || p2.Demands[0] != p.Demands[0] {
		t.Fatal("permutation not deterministic")
	}

	s := SkewedMatrix(n, 100, 0.7, 4)
	if math.Abs(s.TotalGbps()-100) > 1e-6 {
		t.Fatalf("skewed total = %v", s.TotalGbps())
	}
	if s.String() == "" || u.String() == "" {
		t.Error("matrix strings")
	}
}

func TestRingAllReduce(t *testing.T) {
	n, err := topology.NewAICluster(topology.AIClusterConfig{Servers: 8, RailsPerServer: 2, RailGbps: 400})
	if err != nil {
		t.Fatal(err)
	}
	tm := RingAllReduceMatrix(n, 100)
	if len(tm.Demands) != 8 {
		t.Fatalf("ring demands = %d", len(tm.Demands))
	}
	down := map[topology.LinkID]bool{}
	r := NewRouter(n, func(id topology.LinkID) bool { return !down[id] })
	a := r.Evaluate(tm)
	if eff := CollectiveEfficiency(a); eff < 0.999 {
		t.Fatalf("healthy collective efficiency = %v", eff)
	}
	// Kill every rail link of one server: its ring hop can still go via the
	// other rail, so efficiency holds; kill both and the ring stalls.
	srv := n.DevicesOfKind(topology.GPUServer)[0]
	for _, np := range n.Neighbors(srv.ID) {
		down[np.Link.ID] = true
	}
	r.Invalidate()
	a = r.Evaluate(tm)
	if eff := CollectiveEfficiency(a); eff != 0 {
		t.Fatalf("efficiency %v with a fully disconnected server", eff)
	}
	if CollectiveEfficiency(Assessment{}) != 0 {
		t.Fatal("empty assessment efficiency")
	}
}

func TestLatencyModelTail(t *testing.T) {
	n := leafSpine(t, 2, 2, 2, 1)
	r := NewRouter(n, nil)
	tm := UniformMatrix(n, 100)
	a := r.Evaluate(tm)
	lm := DefaultLatencyModel()

	clean := lm.WorstPairLatency(r, tm, a, nil)
	if clean.P50 <= 0 {
		t.Fatal("zero base latency")
	}
	if clean.P99 != clean.P50 {
		t.Fatalf("clean fabric has retransmission tail: %+v", clean)
	}

	// A flapping uplink with 20% loss creates a tail but barely moves p50.
	var uplink *topology.Link
	for _, l := range n.SwitchLinks() {
		uplink = l
		break
	}
	lossy := lm.WorstPairLatency(r, tm, a, func(id topology.LinkID) float64 {
		if id == uplink.ID {
			return 0.2
		}
		return 0
	})
	if lossy.P999 <= lossy.P99 || lossy.P99 <= clean.P99 {
		t.Fatalf("loss did not inflate the tail: %+v", lossy)
	}
	if lossy.P50 != clean.P50 {
		t.Fatalf("20%% loss moved p50: %+v vs %+v", lossy, clean)
	}
}

func TestLatencyRetriesEdgeCases(t *testing.T) {
	lm := DefaultLatencyModel()
	if lm.retries(0, 0.99) != 0 {
		t.Fatal("no loss should add no retries")
	}
	if lm.retries(1.5, 0.99) <= 0 {
		t.Fatal("saturated loss should add retries")
	}
	if clampLoss(-1) != 0 || clampLoss(2) != 0.999 {
		t.Fatal("clampLoss")
	}
	// Higher quantiles never need fewer retries.
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9} {
		if lm.retries(p, 0.999) < lm.retries(p, 0.99) {
			t.Fatalf("retries not monotone in q at p=%v", p)
		}
	}
	// Higher loss never needs fewer retries at fixed quantile.
	prev := -1.0
	for _, p := range []float64{0.01, 0.1, 0.3, 0.6, 0.9} {
		r := lm.retries(p, 0.99)
		if r < prev {
			t.Fatalf("retries not monotone in p")
		}
		prev = r
	}
}

func TestQueueingInflatesBase(t *testing.T) {
	n := leafSpine(t, 2, 1, 1, 1)
	lm := DefaultLatencyModel()
	hosts := n.Hosts()
	r := NewRouter(n, nil)
	paths := r.paths(hosts[0].ID, hosts[1].ID)
	if len(paths) == 0 {
		t.Fatal("no path")
	}
	idle := lm.PathLatency(paths[0], nil, nil)
	busy := lm.PathLatency(paths[0], func(topology.LinkID) float64 { return 0.9 }, nil)
	if busy.P50 <= idle.P50*5 {
		t.Fatalf("90%% utilization did not inflate latency: %v vs %v", busy.P50, idle.P50)
	}
	over := lm.PathLatency(paths[0], func(topology.LinkID) float64 { return 3 }, nil)
	if math.IsInf(over.P50, 0) || over.P50 <= 0 {
		t.Fatalf("clamp failed: %v", over.P50)
	}
}
