package routing

import (
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

// buildRandomFabric constructs a jellyfish of parameterized size for
// property tests.
func buildRandomFabric(t *testing.T, switches, degree, hosts int, seed uint64) *topology.Network {
	t.Helper()
	if switches*degree%2 != 0 {
		switches++
	}
	n, err := topology.NewJellyfish(topology.JellyfishConfig{
		Switches: switches, FabricDegree: degree, HostsPerSwitch: hosts,
		FabricGbps: 400, HostGbps: 100, Seed: seed,
	})
	if err != nil {
		t.Skip("construction failed for these parameters:", err)
	}
	return n
}

// Property: every ECMP path returned by the router is loop-free, has
// minimal hop count, and actually connects src to dst.
func TestPathsAreShortestAndLoopFreeProperty(t *testing.T) {
	f := func(seed uint64, sizeRaw, pairRaw uint8) bool {
		switches := 8 + int(sizeRaw%12)
		net := buildRandomFabric(t, switches, 4, 2, seed)
		r := NewRouter(net, nil)
		hosts := net.Hosts()
		if len(hosts) < 2 {
			return true
		}
		src := hosts[int(pairRaw)%len(hosts)].ID
		dst := hosts[(int(pairRaw)+7)%len(hosts)].ID
		if src == dst {
			return true
		}
		want := net.HopDistances(dst, nil)[src]
		paths := r.paths(src, dst)
		if want < 0 {
			return len(paths) == 0
		}
		if len(paths) == 0 {
			return false
		}
		for _, p := range paths {
			if len(p) != want {
				return false // non-minimal
			}
			// Walk the path and confirm it connects src to dst without
			// revisiting a device.
			cur := src
			seen := map[topology.DeviceID]bool{src: true}
			for _, l := range p {
				next := l.Other(cur)
				if next == nil {
					return false // link not incident to current device
				}
				if seen[next.ID] {
					return false // loop
				}
				seen[next.ID] = true
				cur = next.ID
			}
			if cur != dst {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: satisfied traffic never exceeds offered traffic, per demand and
// in aggregate, and unreachable demands contribute zero.
func TestEvaluateConservationProperty(t *testing.T) {
	f := func(seed uint64, loadRaw uint16, cut uint8) bool {
		net := buildRandomFabric(t, 10, 4, 2, seed)
		down := map[topology.LinkID]bool{}
		// Cut a pseudo-random subset of fabric links.
		for i, l := range net.SwitchLinks() {
			if (int(cut)+i)%5 == 0 {
				down[l.ID] = true
			}
		}
		r := NewRouter(net, func(id topology.LinkID) bool { return !down[id] })
		tm := UniformMatrix(net, 1+float64(loadRaw))
		a := r.Evaluate(tm)
		if a.SatisfiedGbps > a.OfferedGbps+1e-6 {
			return false
		}
		for i, s := range a.PerDemand {
			if s < -1e-9 || s > 1+1e-9 {
				return false
			}
			_ = i
		}
		// Load never appears on unusable links.
		for id, load := range a.LinkLoad {
			if down[topology.LinkID(id)] && load != 0 {
				return false
			}
		}
		return a.Availability() >= 0 && a.Availability() <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: draining and undraining a link restores the exact previous
// assessment (cache correctness under invalidation).
func TestDrainUndrainIdempotentProperty(t *testing.T) {
	f := func(seed uint64, pick uint8) bool {
		net := buildRandomFabric(t, 10, 4, 2, seed)
		r := NewRouter(net, nil)
		tm := UniformMatrix(net, 500)
		before := r.Evaluate(tm)
		fabric := net.SwitchLinks()
		l := fabric[int(pick)%len(fabric)]
		r.Drain(l.ID)
		_ = r.Evaluate(tm)
		r.Undrain(l.ID)
		after := r.Evaluate(tm)
		if before.SatisfiedGbps != after.SatisfiedGbps ||
			before.Unreachable != after.Unreachable ||
			before.MaxUtil != after.MaxUtil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
