package routing

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/topology"
)

// freshEvaluate evaluates tm on a brand-new router replicating r's health
// view and drain set — the ground truth any amount of incremental cache
// maintenance must reproduce byte-identically.
func freshEvaluate(r *Router, tm TrafficMatrix) Assessment {
	ref := NewRouter(r.net, r.health)
	ref.MaxPaths = r.MaxPaths
	for id, d := range r.drained {
		if d {
			ref.Drain(topology.LinkID(id))
		}
	}
	return ref.Evaluate(tm)
}

// Differential property: a router maintained with per-link incremental
// invalidation produces byte-identical assessments to one that full-flushes
// after every change, across randomized flap/drain/undrain/repair sequences
// on random fabrics.
func TestIncrementalInvalidationMatchesFullFlush(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 7, 11, 23, 42} {
		net := buildRandomFabric(t, 12, 4, 2, seed)
		down := map[topology.LinkID]bool{}
		health := func(id topology.LinkID) bool { return !down[id] }
		inc := NewRouter(net, health)
		ref := NewRouter(net, health)
		tm := UniformMatrix(net, 700)
		fabric := net.SwitchLinks()
		rng := rand.New(rand.NewPCG(seed, 0x1f1a9))
		for step := 0; step < 50; step++ {
			l := fabric[rng.IntN(len(fabric))]
			switch rng.IntN(4) {
			case 0: // fault onset or flap-down
				down[l.ID] = true
				inc.InvalidateLink(l.ID)
			case 1: // repair or flap-up
				down[l.ID] = false
				inc.InvalidateLink(l.ID)
			case 2:
				inc.Drain(l.ID)
				ref.Drain(l.ID)
			case 3:
				inc.Undrain(l.ID)
				ref.Undrain(l.ID)
			}
			ref.Invalidate() // the reference router always full-flushes
			a, b := inc.Evaluate(tm), ref.Evaluate(tm)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("seed %d step %d: incremental %v != full-flush %v", seed, step, a, b)
			}
			if inc.DrainedCount() != ref.DrainedCount() {
				t.Fatalf("seed %d step %d: drained count %d != %d",
					seed, step, inc.DrainedCount(), ref.DrainedCount())
			}
		}
	}
}

func TestRepeatedDrainDoesNotBumpEpoch(t *testing.T) {
	n := leafSpine(t, 2, 2, 2, 1)
	r := NewRouter(n, nil)
	l := n.SwitchLinks()[0]
	r.Drain(l.ID)
	e := r.Epoch()
	r.Drain(l.ID)
	if r.Epoch() != e {
		t.Fatalf("repeated Drain bumped epoch %d -> %d", e, r.Epoch())
	}
	if r.DrainedCount() != 1 {
		t.Fatalf("DrainedCount = %d after double drain", r.DrainedCount())
	}
	r.Undrain(l.ID)
	e2 := r.Epoch()
	if e2 == e {
		t.Fatal("Undrain of a drained link did not bump the epoch")
	}
	r.Undrain(l.ID)
	if r.Epoch() != e2 {
		t.Fatal("repeated Undrain bumped the epoch")
	}
	if r.DrainedCount() != 0 {
		t.Fatalf("DrainedCount = %d after undrain", r.DrainedCount())
	}
}

// A health transition that does not change usability (Healthy → Flapping:
// the link still carries traffic) must leave every cached entry in place.
func TestInvalidateLinkNoOpWhenUsabilityUnchanged(t *testing.T) {
	n := leafSpine(t, 4, 2, 2, 1)
	r := NewRouter(n, nil)
	tm := UniformMatrix(n, 200)
	r.Evaluate(tm)
	e, nd := r.Epoch(), len(r.distCache)
	if nd == 0 {
		t.Fatal("no distance fields cached after evaluation")
	}
	for _, l := range n.SwitchLinks() {
		r.InvalidateLink(l.ID)
	}
	if r.Epoch() != e || len(r.distCache) != nd {
		t.Fatalf("no-op invalidation disturbed the cache: epoch %d->%d, fields %d->%d",
			e, r.Epoch(), nd, len(r.distCache))
	}
}

// linkInvalidator mirrors the production wiring: health transitions evict
// only the entries that crossed the changed link.
type linkInvalidator struct{ r *Router }

func (li linkInvalidator) LinkStateChanged(l *topology.Link, _, _ faults.Health, _ sim.Time) {
	li.r.InvalidateLink(l.ID)
}
func (li linkInvalidator) LinkFlapped(*topology.Link, sim.Time, float64, sim.Time) {}

// Draining a link in the middle of an in-flight flap episode must yield the
// same assessment as a cold router with the same health and drain state.
func TestDrainDuringFlapEpisode(t *testing.T) {
	n := leafSpine(t, 4, 2, 2, 1)
	eng := sim.NewEngine(9)
	inj := faults.NewInjector(eng, n, faults.DefaultConfig())
	r := NewRouter(n, func(id topology.LinkID) bool { return inj.Observable(id) != faults.Down })
	inj.Subscribe(linkInvalidator{r})
	tm := UniformMatrix(n, 300)

	l := n.SwitchLinks()[0]
	eng.Schedule(sim.Hour, "break", func() { inj.InduceFault(l, faults.Contamination) })
	eng.RunUntil(2 * sim.Hour)
	r.Evaluate(tm) // warm caches mid-episode
	r.Drain(l.ID)
	if got, want := r.Evaluate(tm), freshEvaluate(r, tm); !reflect.DeepEqual(got, want) {
		t.Fatalf("drain during flap episode: %v != fresh %v", got, want)
	}
	r.Undrain(l.ID)
	if got, want := r.Evaluate(tm), freshEvaluate(r, tm); !reflect.DeepEqual(got, want) {
		t.Fatalf("undrain during flap episode: %v != fresh %v", got, want)
	}
}

// Undraining a link whose peer device has lost all its other links must not
// resurrect stale paths through the isolated device.
func TestUndrainWithPeerDeviceDown(t *testing.T) {
	n := leafSpine(t, 4, 2, 2, 1)
	down := map[topology.LinkID]bool{}
	r := NewRouter(n, func(id topology.LinkID) bool { return !down[id] })
	tm := UniformMatrix(n, 300)
	r.Evaluate(tm)

	uplink := n.SwitchLinks()[0]
	spine := uplink.A.Device
	if spine.Kind != topology.SpineSwitch {
		spine = uplink.B.Device
	}
	r.Drain(uplink.ID)
	r.Evaluate(tm)
	// Take the peer spine's remaining links down one by one (device down).
	for _, np := range n.Neighbors(spine.ID) {
		if np.Link.ID != uplink.ID {
			down[np.Link.ID] = true
			r.InvalidateLink(np.Link.ID)
		}
	}
	r.Evaluate(tm)
	r.Undrain(uplink.ID) // back in service, but it leads to an isolated device
	if got, want := r.Evaluate(tm), freshEvaluate(r, tm); !reflect.DeepEqual(got, want) {
		t.Fatalf("undrain toward downed device: %v != fresh %v", got, want)
	}
	// Recover the device; everything must match a cold router again.
	for _, np := range n.Neighbors(spine.ID) {
		if down[np.Link.ID] {
			down[np.Link.ID] = false
			r.InvalidateLink(np.Link.ID)
		}
	}
	if got, want := r.Evaluate(tm), freshEvaluate(r, tm); !reflect.DeepEqual(got, want) {
		t.Fatalf("after device recovery: %v != fresh %v", got, want)
	}
}

// Steady-state evaluation through a workspace must not allocate: this is
// the per-cell hot loop, asserted here so regressions fail tier-1.
func TestEvaluateSteadyStateZeroAlloc(t *testing.T) {
	n := leafSpine(t, 4, 2, 4, 1)
	r := NewRouter(n, nil)
	tm := UniformMatrix(n, 300)
	var ws Workspace
	r.EvaluateInto(&ws, tm) // warm caches and grow buffers
	if allocs := testing.AllocsPerRun(100, func() { r.EvaluateInto(&ws, tm) }); allocs != 0 {
		t.Fatalf("EvaluateInto allocated %.1f/op in steady state", allocs)
	}
}

// Each //selfmaint:hotpath function inside the router holds at zero
// steady-state allocations individually, not just through EvaluateInto:
// warm-cache path lookup, distance-field recycling, and path-slice
// recycling all serve from retained buffers.
func TestHotpathFunctionsSteadyStateZeroAlloc(t *testing.T) {
	n := leafSpine(t, 4, 2, 4, 1)
	r := NewRouter(n, nil)
	tm := UniformMatrix(n, 300)
	var ws Workspace
	r.EvaluateInto(&ws, tm) // warm caches, deps indexes and free lists
	d0 := tm.Demands[0]

	// paths + distEntryFor on the warm cache.
	if allocs := testing.AllocsPerRun(100, func() { r.paths(d0.Src, d0.Dst) }); allocs != 0 {
		t.Fatalf("warm paths() allocated %.1f/op", allocs)
	}

	// distEntryFor recomputing an evicted field must serve from the
	// distance free list and the retained BFS queue.
	if allocs := testing.AllocsPerRun(100, func() {
		e := r.distCache[d0.Dst]
		r.evictDist(d0.Dst, e)
		r.distEntryFor(d0.Dst)
	}); allocs != 0 {
		t.Fatalf("evict+recompute distEntryFor allocated %.1f/op", allocs)
	}

	// newPath must serve from the path free list once one is warm.
	r.freePaths = append(r.freePaths, make(topology.Path, 8))
	if allocs := testing.AllocsPerRun(100, func() {
		p := r.newPath(4)
		r.freePaths = append(r.freePaths, p)
	}); allocs != 0 {
		t.Fatalf("recycled newPath allocated %.1f/op", allocs)
	}
}
