// Package routing is the network control plane of the simulation: ECMP
// flow-level routing over the healthy subgraph, administrative link drains
// (the hook the maintenance controller uses to move traffic away from
// hardware before robots touch it, §2), demand-satisfaction assessment, and
// the flap-to-tail-latency model (§1).
//
// Routing is evaluated at flow level: demands are split evenly over
// equal-cost shortest paths and per-link loads determine how much of each
// demand is satisfied. This is the standard fluid approximation used for
// topology studies; packet-level effects enter only through the latency
// model.
package routing

import (
	"fmt"

	"repro/internal/topology"
)

// HealthFn reports whether a link is physically up (not Down and not being
// worked on). The fault injector's Observable view supplies this.
type HealthFn func(topology.LinkID) bool

// Router computes paths and loads over the currently usable subgraph.
type Router struct {
	net     *topology.Network
	health  HealthFn
	drained []bool

	// MaxPaths bounds equal-cost path enumeration per demand.
	MaxPaths int

	cache      map[[2]topology.DeviceID][]topology.Path
	distCache  map[topology.DeviceID][]int
	cacheEpoch uint64
}

// NewRouter creates a router. health may be nil, meaning all links are
// physically up.
func NewRouter(net *topology.Network, health HealthFn) *Router {
	return &Router{
		net:       net,
		health:    health,
		drained:   make([]bool, len(net.Links)),
		MaxPaths:  8,
		cache:     make(map[[2]topology.DeviceID][]topology.Path),
		distCache: make(map[topology.DeviceID][]int),
	}
}

// Usable reports whether a link carries traffic: physically up and not
// administratively drained.
func (r *Router) Usable(l *topology.Link) bool {
	if r.drained[l.ID] {
		return false
	}
	if r.health == nil {
		return true
	}
	return r.health(l.ID)
}

// Drain removes the link from service administratively. Draining is the
// controller's impact-mitigation primitive: traffic shifts before physical
// work begins, so a touched cable carries nothing.
func (r *Router) Drain(id topology.LinkID) {
	if !r.drained[id] {
		r.drained[id] = true
		r.Invalidate()
	}
}

// Undrain returns the link to service.
func (r *Router) Undrain(id topology.LinkID) {
	if r.drained[id] {
		r.drained[id] = false
		r.Invalidate()
	}
}

// Drained reports the administrative state.
func (r *Router) Drained(id topology.LinkID) bool { return r.drained[id] }

// DrainedCount returns how many links are currently drained.
func (r *Router) DrainedCount() int {
	n := 0
	for _, d := range r.drained {
		if d {
			n++
		}
	}
	return n
}

// Invalidate flushes the path cache. Callers must invoke it (directly or
// via Drain/Undrain) whenever link health changes; the controller wires
// this to telemetry alerts.
func (r *Router) Invalidate() {
	r.cacheEpoch++
	clear(r.cache)
	clear(r.distCache)
}

// distTo returns cached BFS hop distances toward dst over usable links.
// Caching per destination is what makes evaluating thousands of demands
// cheap: one BFS serves every source.
func (r *Router) distTo(dst topology.DeviceID) []int {
	if d, ok := r.distCache[dst]; ok {
		return d
	}
	d := r.net.HopDistances(dst, r.Usable)
	r.distCache[dst] = d
	return d
}

// paths returns cached equal-cost shortest paths for a pair, enumerated
// over the ECMP DAG induced by the cached distance field.
func (r *Router) paths(src, dst topology.DeviceID) []topology.Path {
	key := [2]topology.DeviceID{src, dst}
	if p, ok := r.cache[key]; ok {
		return p
	}
	var out []topology.Path
	if src != dst {
		dist := r.distTo(dst)
		if dist[src] >= 0 {
			var cur topology.Path
			var walk func(d topology.DeviceID)
			walk = func(d topology.DeviceID) {
				if len(out) >= r.MaxPaths {
					return
				}
				if d == dst {
					out = append(out, append(topology.Path(nil), cur...))
					return
				}
				for _, np := range r.net.Neighbors(d) {
					if !r.Usable(np.Link) {
						continue
					}
					if pd := dist[np.Peer.ID]; pd >= 0 && pd == dist[d]-1 {
						cur = append(cur, np.Link)
						walk(np.Peer.ID)
						cur = cur[:len(cur)-1]
						if len(out) >= r.MaxPaths {
							return
						}
					}
				}
			}
			walk(src)
		}
	}
	r.cache[key] = out
	return out
}

// Assessment is the result of evaluating a traffic matrix.
type Assessment struct {
	OfferedGbps   float64
	SatisfiedGbps float64
	// PerDemand is the satisfaction fraction of each demand, aligned with
	// the evaluated matrix.
	PerDemand []float64
	// Unreachable counts demands with no usable path at all.
	Unreachable int
	// MaxUtil is the highest link load/capacity ratio (pre-clamping).
	MaxUtil float64
	// LinkLoad is the offered load per link in Gbps (index: LinkID).
	LinkLoad []float64
}

// Availability is the satisfied fraction of offered traffic, the paper's
// service-level lens on link failures.
func (a Assessment) Availability() float64 {
	if a.OfferedGbps == 0 {
		return 1
	}
	return a.SatisfiedGbps / a.OfferedGbps
}

// String renders a summary.
func (a Assessment) String() string {
	return fmt.Sprintf("offered %.0fG satisfied %.0fG (%.4f), unreachable %d, maxutil %.2f",
		a.OfferedGbps, a.SatisfiedGbps, a.Availability(), a.Unreachable, a.MaxUtil)
}

// Evaluate routes the matrix over the usable subgraph: each demand splits
// evenly across its equal-cost paths, and each demand's achieved rate is
// its offered rate divided by the worst overload factor along its paths —
// a one-shot approximation of proportional sharing under congestion.
func (r *Router) Evaluate(tm TrafficMatrix) Assessment {
	as := Assessment{
		PerDemand: make([]float64, len(tm.Demands)),
		LinkLoad:  make([]float64, len(r.net.Links)),
	}
	type routed struct {
		paths []topology.Path
		share float64
	}
	routes := make([]routed, len(tm.Demands))
	for i, d := range tm.Demands {
		as.OfferedGbps += d.Gbps
		paths := r.paths(d.Src, d.Dst)
		if len(paths) == 0 {
			as.Unreachable++
			continue
		}
		share := d.Gbps / float64(len(paths))
		routes[i] = routed{paths: paths, share: share}
		for _, p := range paths {
			for _, l := range p {
				as.LinkLoad[l.ID] += share
			}
		}
	}
	// Overload factors.
	over := make([]float64, len(r.net.Links))
	for id, load := range as.LinkLoad {
		cap := r.net.Links[id].GbpsCap
		if cap <= 0 {
			continue
		}
		u := load / cap
		if u > as.MaxUtil {
			as.MaxUtil = u
		}
		if u > 1 {
			over[id] = u
		}
	}
	for i, d := range tm.Demands {
		if routes[i].paths == nil {
			continue
		}
		achieved := 0.0
		for _, p := range routes[i].paths {
			worst := 1.0
			for _, l := range p {
				if over[l.ID] > worst {
					worst = over[l.ID]
				}
			}
			achieved += routes[i].share / worst
		}
		as.SatisfiedGbps += achieved
		as.PerDemand[i] = achieved / d.Gbps
	}
	return as
}
