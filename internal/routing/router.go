// Package routing is the network control plane of the simulation: ECMP
// flow-level routing over the healthy subgraph, administrative link drains
// (the hook the maintenance controller uses to move traffic away from
// hardware before robots touch it, §2), demand-satisfaction assessment, and
// the flap-to-tail-latency model (§1).
//
// Routing is evaluated at flow level: demands are split evenly over
// equal-cost shortest paths and per-link loads determine how much of each
// demand is satisfied. This is the standard fluid approximation used for
// topology studies; packet-level effects enter only through the latency
// model.
//
// Cache maintenance is incremental, with two reverse indexes: every cached
// BFS distance field records which links it crossed (link→destinations), and
// every cached path set records which links its paths traverse (link→pairs).
// A single link state change re-verifies only the fields that could have
// changed — most survive a loss untouched thanks to ECMP redundancy — and
// re-enumerates only the path sets that actually used the link; everything
// else is validated lazily against epoch stamps. Invalidate remains as the
// full-flush fallback for bulk edits.
package routing

import (
	"fmt"

	"repro/internal/topology"
)

// HealthFn reports whether a link is physically up (not Down and not being
// worked on). The fault injector's Observable view supplies this.
type HealthFn func(topology.LinkID) bool

// distEntry is one cached BFS distance field toward a destination, stamped
// with the cache epoch it was computed under.
type distEntry struct {
	dist  []int
	stamp uint64
}

// pathEntry is one cached ECMP path set, stamped with the epoch of the
// distance field it was enumerated over. The entry is valid only while the
// destination's field still carries the same stamp — evicting a field
// lazily invalidates every path set built on it, with no dst→pairs index.
// seq is the entry's identity in the link→pairs index; refs whose seq no
// longer matches the cached entry are stale and skipped.
type pathEntry struct {
	paths []topology.Path
	stamp uint64
	seq   uint64
}

// pairRef points from a link into the path-set cache: the entry for key
// traversed the link when it was enumerated (valid while seq matches).
type pairRef struct {
	key [2]topology.DeviceID
	seq uint64
}

// Router computes paths and loads over the currently usable subgraph.
type Router struct {
	net      *topology.Network
	health   HealthFn
	drained  []bool
	drainedN int

	// MaxPaths bounds equal-cost path enumeration per demand.
	MaxPaths int

	// Workers bounds the goroutines used to rebuild destination-rooted
	// structures inside EvaluateInto (0 or 1 means serial). Rebuilds are
	// pure per-destination functions, so the worker count is a throughput
	// knob only: results are byte-identical at any setting.
	Workers int

	cache     map[[2]topology.DeviceID]pathEntry
	distCache map[topology.DeviceID]distEntry
	// linkDeps is the reverse index: linkDeps[id] maps each destination
	// whose cached distance field crossed link id on a shortest path to the
	// stamp of that field. Entries whose stamp no longer matches the cached
	// field are stale and skipped; map-overwrite semantics bound the index
	// at one entry per (link, destination).
	linkDeps []map[topology.DeviceID]uint64
	// linkPairs is the finer reverse index: linkPairs[id] lists the cached
	// path sets whose paths traverse link id. When the link leaves the usable
	// subgraph, exactly these pairs re-enumerate; every other pair keeps its
	// paths (ECMP redundancy means most distance fields survive a link loss
	// unchanged). Stale refs are skipped via the seq check and each list is
	// reset when its link's down-transition is processed.
	linkPairs [][]pairRef
	pairSeq   uint64
	// lastUsable snapshots each link's usability as of the last (in)validation,
	// so health transitions that do not change usability (e.g. Healthy →
	// Flapping, which still carries traffic) cost nothing.
	lastUsable []bool
	// cacheEpoch stamps distance fields and path sets; it advances on every
	// effective invalidation, so stale entries fail their stamp comparison
	// instead of needing eager eviction.
	cacheEpoch uint64

	usableFn    topology.Usable     // cached method value, avoids per-call closure allocs
	queue       []topology.DeviceID // BFS scratch
	freeDists   [][]int             // recycled distance fields
	freePaths   []topology.Path     // recycled path slices
	linkMark    []uint64            // per-link dedup scratch for pair registration
	scratchDist []int               // BFS compare scratch for down-transitions
	ws          Workspace           // Evaluate's internal workspace

	// Destination-rooted engine state (destroot.go). destCur holds each
	// destination's current suffix structure; destShelf is a one-slot
	// per-destination parking spot for structures displaced by a subgraph
	// transition, restorable when the subgraph signature returns to their
	// build value (drain → undrain round trips restore for free).
	destCur     []*destState
	destShelf   []*destState
	freeStates  []*destState
	builders    []*destBuilder
	pending     []buildJob
	destMark    []uint64 // per-destination dedup scratch for prepareDests
	destSeq     uint64
	subgraphSig uint64 // Zobrist hash of the usable link set
}

// NewRouter creates a router. health may be nil, meaning all links are
// physically up.
func NewRouter(net *topology.Network, health HealthFn) *Router {
	r := &Router{
		net:        net,
		health:     health,
		drained:    make([]bool, len(net.Links)),
		MaxPaths:   8,
		cache:      make(map[[2]topology.DeviceID]pathEntry),
		distCache:  make(map[topology.DeviceID]distEntry),
		linkDeps:   make([]map[topology.DeviceID]uint64, len(net.Links)),
		linkPairs:  make([][]pairRef, len(net.Links)),
		lastUsable: make([]bool, len(net.Links)),
		linkMark:   make([]uint64, len(net.Links)),
		destCur:    make([]*destState, len(net.Devices)),
		destShelf:  make([]*destState, len(net.Devices)),
		destMark:   make([]uint64, len(net.Devices)),
	}
	r.usableFn = r.Usable
	for i, l := range net.Links {
		r.lastUsable[i] = r.Usable(l)
	}
	r.recomputeSubgraphSig()
	return r
}

// Usable reports whether a link carries traffic: physically up and not
// administratively drained.
func (r *Router) Usable(l *topology.Link) bool {
	if r.drained[l.ID] {
		return false
	}
	if r.health == nil {
		return true
	}
	return r.health(l.ID)
}

// Drain removes the link from service administratively. Draining is the
// controller's impact-mitigation primitive: traffic shifts before physical
// work begins, so a touched cable carries nothing. Draining an already
// drained link is a no-op and does not advance the cache epoch.
func (r *Router) Drain(id topology.LinkID) {
	if r.drained[id] {
		return
	}
	r.drained[id] = true
	r.drainedN++
	r.InvalidateLink(id)
}

// Undrain returns the link to service.
func (r *Router) Undrain(id topology.LinkID) {
	if !r.drained[id] {
		return
	}
	r.drained[id] = false
	r.drainedN--
	r.InvalidateLink(id)
}

// Drained reports the administrative state.
func (r *Router) Drained(id topology.LinkID) bool { return r.drained[id] }

// DrainedCount returns how many links are currently drained.
func (r *Router) DrainedCount() int { return r.drainedN }

// Epoch returns the current cache epoch. It advances exactly when an
// invalidation changed the usable subgraph, so tests can assert that no-op
// transitions cost nothing.
func (r *Router) Epoch() uint64 { return r.cacheEpoch }

// InvalidateLink reacts to a state change of one link (flap, drain, undrain,
// repair), evicting only the cached state the change can affect:
//
//   - If the link's usability did not change (a Healthy→Flapping transition,
//     a drain of an already-down link), nothing is evicted.
//   - If the link left the usable subgraph, only destinations whose distance
//     field crossed it on a shortest path (per the reverse index) can change,
//     and most of those survive unchanged thanks to ECMP redundancy — their
//     fields are verified in place and only the path sets that actually
//     traversed the link (per the link→pairs index) re-enumerate.
//   - If the link joined the subgraph, a destination's field changes only if
//     the link bridges devices the field ranks ≥2 apart (an edge between
//     equidistant devices can never lie on a shortest path; one bridging a
//     single hop leaves all distances intact). For surviving fields the new
//     edge may still join the ECMP DAG, so the pairs it would serve — decided
//     in O(1) from the two endpoint fields — are evicted exactly.
//
// Evicting a distance field implicitly invalidates its dependent path sets
// via the epoch stamp; they are re-enumerated on next use.
func (r *Router) InvalidateLink(id topology.LinkID) {
	l := r.net.Links[id]
	u := r.Usable(l)
	if u == r.lastUsable[id] {
		return
	}
	r.lastUsable[id] = u
	r.subgraphSig ^= destLinkSig(id) // toggle the link in/out of the Zobrist hash
	r.cacheEpoch++
	if !u {
		r.linkDown(id)
	} else {
		r.linkUp(id, l.A.Device.ID, l.B.Device.ID)
	}
}

// linkDown handles link id leaving the usable subgraph. Each distance field
// that recorded the link as tight is recomputed and compared: an unchanged
// field keeps its stamp (so its path sets stay valid), a changed one is
// swapped in under a fresh stamp. Path sets that traversed the link are
// evicted exactly, via the link→pairs index.
func (r *Router) linkDown(id topology.LinkID) {
	deps := r.linkDeps[id]
	//lint:allow mapiter per-destination re-verification; cache updates are keyed and buffer recycling order is unobservable
	for dst, stamp := range deps {
		e, ok := r.distCache[dst]
		if !ok || e.stamp != stamp {
			continue // stale registration; the field was already replaced
		}
		// The link was tight toward dst, so dst's ECMP DAG lost an edge even
		// when the distances below survive: shelve the destination-rooted
		// structure (an undrain restores it via the subgraph signature).
		r.shelveDest(dst)
		if cap(r.scratchDist) < len(r.net.Devices) {
			r.scratchDist = make([]int, len(r.net.Devices))
		}
		nd := r.scratchDist[:len(r.net.Devices)]
		r.queue = r.net.HopDistancesInto(dst, r.usableFn, nd, r.queue)
		if intsEqual(nd, e.dist) {
			continue // redundancy absorbed the loss: field, stamp and deps stand
		}
		// Distances changed: install the freshly computed field under a new
		// stamp; dependent path sets go stale lazily via the stamp check.
		r.scratchDist = e.dist
		r.distCache[dst] = distEntry{dist: nd, stamp: r.cacheEpoch}
		r.recordDeps(dst, nd, r.cacheEpoch)
	}
	clear(deps)
	for _, ref := range r.linkPairs[id] {
		if pe, ok := r.cache[ref.key]; ok && pe.seq == ref.seq {
			r.evictPair(ref.key, pe)
		}
	}
	r.linkPairs[id] = r.linkPairs[id][:0]
}

// linkUp handles the link a↔b joining the usable subgraph. Fields ranking
// the endpoints equal are untouched; fields ranking them ≥2 apart (or one
// side unreachable) shorten and are evicted. Fields ranking them exactly one
// apart keep their distances but gain a DAG edge: the pair scan evicts
// precisely the (src,dst) sets for which some shortest path now crosses the
// new edge — src reaches one endpoint, the hop descends toward dst, and the
// combined length matches the cached src→dst distance.
func (r *Router) linkUp(id topology.LinkID, a, b topology.DeviceID) {
	//lint:allow mapiter keyed evictions and dep registrations; free-list order is unobservable
	for dst, e := range r.distCache {
		da, db := e.dist[a], e.dist[b]
		if da == db {
			continue // equidistant (or both unreachable): never on a shortest path
		}
		if da < 0 || db < 0 || da-db > 1 || db-da > 1 {
			r.shelveDest(dst)
			r.evictDist(dst, e) // the link shortens or newly connects routes to dst
			continue
		}
		// |da-db| == 1: distances survive, but the link is now tight toward
		// dst — register it so a future down-transition re-verifies this
		// field, and let the pair scan below handle the DAG change. The
		// destination's DAG gained an edge, so its suffix structure retires
		// to the shelf (an undrain round trip restores the pre-drain one).
		r.shelveDest(dst)
		deps := r.linkDeps[id]
		if deps == nil {
			deps = make(map[topology.DeviceID]uint64)
			r.linkDeps[id] = deps
		}
		deps[dst] = e.stamp
	}
	//lint:allow mapiter keyed pair evictions; free-list order is unobservable
	for key, pe := range r.cache {
		dst := key[1]
		de, ok := r.distCache[dst]
		if !ok || de.stamp != pe.stamp {
			continue // already stale; re-enumerates on next use
		}
		x, y := a, b
		dx, dy := de.dist[x], de.dist[y]
		if dx < dy {
			x, dx, dy = y, dy, dx
		}
		if dx < 0 || dy < 0 || dx-dy != 1 {
			continue // link not tight toward dst: no new paths for any source
		}
		t := de.dist[key[0]]
		if t < 0 {
			continue // still unreachable: surviving fields are exact
		}
		se, ok := r.distCache[key[0]]
		if !ok {
			// No field for the source end, so we cannot prove the new edge
			// lies off every shortest path; evict conservatively.
			r.evictPair(key, pe)
			continue
		}
		if sx := se.dist[x]; sx >= 0 && sx+1+dy == t {
			r.evictPair(key, pe) // the new edge is on a shortest src→dst path
		}
	}
}

func (r *Router) evictDist(dst topology.DeviceID, e distEntry) {
	delete(r.distCache, dst)
	r.freeDists = append(r.freeDists, e.dist)
}

func (r *Router) evictPair(key [2]topology.DeviceID, pe pathEntry) {
	delete(r.cache, key)
	r.freePaths = append(r.freePaths, pe.paths...)
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// Invalidate flushes every cached distance field and path set — the
// fallback for bulk topology edits or direct health-map mutation outside
// the per-link notification path. Single-link transitions should use
// InvalidateLink instead.
func (r *Router) Invalidate() {
	r.cacheEpoch++
	//lint:allow mapiter full flush; free-list recycling order is unobservable (buffers are overwritten before reuse)
	for _, pe := range r.cache {
		r.freePaths = append(r.freePaths, pe.paths...)
	}
	clear(r.cache)
	//lint:allow mapiter full flush; free-list recycling order is unobservable (buffers are overwritten before reuse)
	for _, e := range r.distCache {
		r.freeDists = append(r.freeDists, e.dist)
	}
	clear(r.distCache)
	for _, deps := range r.linkDeps {
		clear(deps)
	}
	for i := range r.linkPairs {
		r.linkPairs[i] = r.linkPairs[i][:0]
	}
	for i, l := range r.net.Links {
		r.lastUsable[i] = r.Usable(l)
	}
	r.recomputeSubgraphSig()
	// Destination-rooted structures are not flushed here: stale ones fail
	// their stamp comparison on next use (the fresh fields carry the new
	// epoch), and shelved ones stay restorable — the recomputed signature
	// makes the validity check exact even after bulk edits.
}

// distEntryFor returns the cached BFS distance field toward dst, computing
// and indexing it if absent. Caching per destination is what makes
// evaluating thousands of demands cheap: one BFS serves every source.
//
//selfmaint:hotpath
func (r *Router) distEntryFor(dst topology.DeviceID) distEntry {
	if e, ok := r.distCache[dst]; ok {
		return e
	}
	var d []int
	if n := len(r.freeDists); n > 0 {
		d = r.freeDists[n-1]
		r.freeDists[n-1] = nil
		r.freeDists = r.freeDists[:n-1]
	} else {
		//lint:allow hotpathalloc free-list miss; the field is cached and recycled, steady state reuses buffers
		d = make([]int, len(r.net.Devices))
	}
	r.queue = r.net.HopDistancesInto(dst, r.usableFn, d, r.queue)
	e := distEntry{dist: d, stamp: r.cacheEpoch}
	r.distCache[dst] = e
	r.recordDeps(dst, d, e.stamp)
	return e
}

// recordDeps registers which usable links the field depends on: exactly the
// links on some shortest path toward dst. Any other link's state change
// leaves both the distances and the ECMP DAG untouched.
func (r *Router) recordDeps(dst topology.DeviceID, d []int, stamp uint64) {
	r.net.ShortestPathLinks(d, r.usableFn, func(l *topology.Link) {
		deps := r.linkDeps[l.ID]
		if deps == nil {
			deps = make(map[topology.DeviceID]uint64)
			r.linkDeps[l.ID] = deps
		}
		deps[dst] = stamp
	})
}

// paths returns cached equal-cost shortest paths for a pair, enumerated
// over the ECMP DAG induced by the cached distance field. A cached set is
// served only while its stamp matches the field it was built over.
//
//selfmaint:hotpath
func (r *Router) paths(src, dst topology.DeviceID) []topology.Path {
	if src == dst {
		return nil
	}
	e := r.distEntryFor(dst)
	key := [2]topology.DeviceID{src, dst}
	if pe, ok := r.cache[key]; ok {
		if pe.stamp == e.stamp {
			return pe.paths
		}
		r.freePaths = append(r.freePaths, pe.paths...)
	}
	var out []topology.Path
	if dist := e.dist; dist[src] >= 0 {
		var cur topology.Path
		var walk func(d topology.DeviceID)
		walk = func(d topology.DeviceID) {
			if len(out) >= r.MaxPaths {
				return
			}
			if d == dst {
				p := r.newPath(len(cur))
				copy(p, cur)
				out = append(out, p)
				return
			}
			for _, np := range r.net.Neighbors(d) {
				if !r.Usable(np.Link) {
					continue
				}
				if pd := dist[np.Peer.ID]; pd >= 0 && pd == dist[d]-1 {
					//lint:allow hotpathalloc cache-miss enumeration only; cur grows to max path depth once, then reuses capacity
					cur = append(cur, np.Link)
					walk(np.Peer.ID)
					cur = cur[:len(cur)-1]
					if len(out) >= r.MaxPaths {
						return
					}
				}
			}
		}
		walk(src)
	}
	r.pairSeq++
	r.cache[key] = pathEntry{paths: out, stamp: e.stamp, seq: r.pairSeq}
	// Register every distinct link the paths traverse in the link→pairs
	// index, so a down-transition can evict exactly this entry.
	for _, p := range out {
		for _, l := range p {
			if r.linkMark[l.ID] != r.pairSeq {
				r.linkMark[l.ID] = r.pairSeq
				//lint:allow hotpathalloc cache-miss index registration; per-link lists retain capacity across resets
				r.linkPairs[l.ID] = append(r.linkPairs[l.ID], pairRef{key: key, seq: r.pairSeq})
			}
		}
	}
	return out
}

// newPath returns a path slice of length n, recycled from evicted entries
// when one with enough capacity is available.
//
//selfmaint:hotpath
func (r *Router) newPath(n int) topology.Path {
	for len(r.freePaths) > 0 {
		last := len(r.freePaths) - 1
		p := r.freePaths[last]
		r.freePaths[last] = nil
		r.freePaths = r.freePaths[:last]
		if cap(p) >= n {
			return p[:n]
		}
	}
	//lint:allow hotpathalloc free-list miss; evicted path slices are recycled, steady state reuses buffers
	return make(topology.Path, n)
}

// Assessment is the result of evaluating a traffic matrix.
type Assessment struct {
	OfferedGbps   float64
	SatisfiedGbps float64
	// PerDemand is the satisfaction fraction of each demand, aligned with
	// the evaluated matrix.
	PerDemand []float64
	// Unreachable counts demands with no usable path at all.
	Unreachable int
	// MaxUtil is the highest link load/capacity ratio (pre-clamping).
	MaxUtil float64
	// LinkLoad is the offered load per link in Gbps (index: LinkID).
	LinkLoad []float64
}

// Availability is the satisfied fraction of offered traffic, the paper's
// service-level lens on link failures.
func (a Assessment) Availability() float64 {
	if a.OfferedGbps == 0 {
		return 1
	}
	return a.SatisfiedGbps / a.OfferedGbps
}

// String renders a summary.
func (a Assessment) String() string {
	return fmt.Sprintf("offered %.0fG satisfied %.0fG (%.4f), unreachable %d, maxutil %.2f",
		a.OfferedGbps, a.SatisfiedGbps, a.Availability(), a.Unreachable, a.MaxUtil)
}

// routed is one demand's routing decision within an evaluation. The engine
// path records the arena-backed span (block of n suffixes, plen links each);
// the reference enumerator records the per-pair path list.
type routed struct {
	block   []*topology.Link
	n, plen int
	paths   []topology.Path
	share   float64
}

// Workspace holds the scratch buffers one traffic-matrix evaluation needs.
// A zero Workspace is ready to use; buffers grow to the fabric size on
// first evaluation and are retained, so steady-state assessment through
// EvaluateInto allocates nothing. A Workspace must not be shared across
// goroutines.
type Workspace struct {
	perDemand []float64
	linkLoad  []float64
	over      []float64
	routes    []routed
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		//lint:allow hotpathalloc amortized doubling of a reused scratch buffer; steady state never re-enters
		return make([]float64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// Evaluate routes the matrix over the usable subgraph: each demand splits
// evenly across its equal-cost paths, and each demand's achieved rate is
// its offered rate divided by the worst overload factor along its paths —
// a one-shot approximation of proportional sharing under congestion.
// The returned Assessment owns its slices; hot loops that do not retain
// results should use EvaluateInto instead.
func (r *Router) Evaluate(tm TrafficMatrix) Assessment {
	as := r.EvaluateInto(&r.ws, tm)
	as.PerDemand = append([]float64(nil), as.PerDemand...)
	as.LinkLoad = append([]float64(nil), as.LinkLoad...)
	return as
}

// EvaluateInto is Evaluate against caller-owned scratch: the returned
// Assessment's PerDemand and LinkLoad alias ws buffers and are valid until
// the workspace's next evaluation. With warm caches it performs zero heap
// allocations.
//
// Path resolution runs on the destination-rooted engine (destroot.go): one
// shared suffix structure per destination serves every source, in place of
// an independent DFS per pair. The accumulation loops below run in demand
// order over the same per-pair path sequences the reference enumerator
// produces, so every float summation order — and the Assessment — is
// byte-identical to referenceEvaluateInto at any Workers setting.
//
//selfmaint:hotpath
func (r *Router) EvaluateInto(ws *Workspace, tm TrafficMatrix) Assessment {
	r.prepareDests(tm)
	nd, nl := len(tm.Demands), len(r.net.Links)
	ws.perDemand = growFloats(ws.perDemand, nd)
	ws.linkLoad = growFloats(ws.linkLoad, nl)
	ws.over = growFloats(ws.over, nl)
	if cap(ws.routes) < nd {
		//lint:allow hotpathalloc workspace growth on first use; the buffer is retained, steady state allocates nothing
		ws.routes = make([]routed, nd)
	} else {
		ws.routes = ws.routes[:nd]
	}
	as := Assessment{
		PerDemand: ws.perDemand,
		LinkLoad:  ws.linkLoad,
	}
	for i, d := range tm.Demands {
		as.OfferedGbps += d.Gbps
		n := 0
		var ds *destState
		if d.Src != d.Dst {
			ds = r.destCur[d.Dst]
			n = int(ds.count[d.Src])
		}
		if n == 0 {
			ws.routes[i] = routed{}
			as.Unreachable++
			continue
		}
		plen := int(ds.plen[d.Src])
		s := int(ds.start[d.Src])
		blk := ds.arena[s : s+n*plen]
		share := d.Gbps / float64(n)
		ws.routes[i] = routed{block: blk, n: n, plen: plen, share: share}
		for p := 0; p < len(blk); p += plen {
			for _, l := range blk[p : p+plen] {
				as.LinkLoad[l.ID] += share
			}
		}
	}
	// Overload factors.
	for id, load := range as.LinkLoad {
		cap := r.net.Links[id].GbpsCap
		if cap <= 0 {
			continue
		}
		u := load / cap
		if u > as.MaxUtil {
			as.MaxUtil = u
		}
		if u > 1 {
			ws.over[id] = u
		}
	}
	for i, d := range tm.Demands {
		rt := &ws.routes[i]
		if rt.n == 0 {
			continue
		}
		achieved := 0.0
		for p := 0; p < len(rt.block); p += rt.plen {
			worst := 1.0
			for _, l := range rt.block[p : p+rt.plen] {
				if ws.over[l.ID] > worst {
					worst = ws.over[l.ID]
				}
			}
			achieved += rt.share / worst
		}
		as.SatisfiedGbps += achieved
		as.PerDemand[i] = achieved / d.Gbps
	}
	return as
}

// referenceEvaluateInto is the original per-pair evaluation: every demand
// resolved through the paths enumerator. It is the executable specification
// the destination-rooted engine is differentially tested against
// (TestDestRootedMatchesPerPairEnumerator) and is not used on any hot path.
func (r *Router) referenceEvaluateInto(ws *Workspace, tm TrafficMatrix) Assessment {
	nd, nl := len(tm.Demands), len(r.net.Links)
	ws.perDemand = growFloats(ws.perDemand, nd)
	ws.linkLoad = growFloats(ws.linkLoad, nl)
	ws.over = growFloats(ws.over, nl)
	if cap(ws.routes) < nd {
		ws.routes = make([]routed, nd)
	} else {
		ws.routes = ws.routes[:nd]
	}
	as := Assessment{
		PerDemand: ws.perDemand,
		LinkLoad:  ws.linkLoad,
	}
	for i, d := range tm.Demands {
		as.OfferedGbps += d.Gbps
		paths := r.paths(d.Src, d.Dst)
		if len(paths) == 0 {
			ws.routes[i] = routed{}
			as.Unreachable++
			continue
		}
		share := d.Gbps / float64(len(paths))
		ws.routes[i] = routed{paths: paths, share: share}
		for _, p := range paths {
			for _, l := range p {
				as.LinkLoad[l.ID] += share
			}
		}
	}
	// Overload factors.
	for id, load := range as.LinkLoad {
		cap := r.net.Links[id].GbpsCap
		if cap <= 0 {
			continue
		}
		u := load / cap
		if u > as.MaxUtil {
			as.MaxUtil = u
		}
		if u > 1 {
			ws.over[id] = u
		}
	}
	for i, d := range tm.Demands {
		if ws.routes[i].paths == nil {
			continue
		}
		achieved := 0.0
		for _, p := range ws.routes[i].paths {
			worst := 1.0
			for _, l := range p {
				if ws.over[l.ID] > worst {
					worst = ws.over[l.ID]
				}
			}
			achieved += ws.routes[i].share / worst
		}
		as.SatisfiedGbps += achieved
		as.PerDemand[i] = achieved / d.Gbps
	}
	return as
}
