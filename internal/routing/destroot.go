// Destination-rooted ECMP evaluation: the engine behind EvaluateInto.
//
// The per-pair enumerator (paths, kept as the reference implementation and
// for single-pair consumers like the latency model) re-runs a recursive DFS
// over the ECMP DAG for every (src,dst) demand and allocates every path as
// its own slice. Under full uniform injection that is O(sources) DFS walks
// per destination and millions of small allocations per assessment — the F4
// bottleneck.
//
// The destination-rooted engine serves all sources of one destination off a
// single shared structure: for each destination it memoizes, per device, the
// list of path suffixes from that device to the destination over the ECMP
// DAG. Devices are processed in ascending BFS distance, so every suffix is
// one link prepended to an already-materialized suffix of the next hop.
// Enumeration follows the exact adjacency order the per-pair DFS uses, and
// each device's suffix list is capped at MaxPaths — which preserves the
// per-pair path lists bit-for-bit: the first MaxPaths paths of the DFS
// concatenation consume at most the first MaxPaths suffixes of each
// downstream device, so truncating suffix lists at MaxPaths loses nothing
// (see TestDestRootedMatchesPerPairEnumerator).
//
// All suffixes of one destination live in a single flat arena (one backing
// []*topology.Link; per-device offset spans) instead of individually
// allocated path slices, so a warm evaluation allocates nothing and a
// rebuild reuses the retained arena.
//
// Incremental maintenance extends the router's per-link invalidation: a
// link transition that can change a destination's DAG shelves that
// destination's structure instead of discarding it, stamped with the
// subgraph signature (a Zobrist hash over usable links) it was built under.
// When the subgraph returns to that exact signature — an undrain restoring
// the pre-drain fabric, the maintindex sweep's every other step — the
// shelved structure is restored wholesale, with no re-enumeration at all.
//
// Rebuilds are independent per destination (pure functions of the distance
// field, adjacency order and the usable set), so they shard across Workers
// goroutines; worker count is a throughput knob, never a results knob. The
// demand-order accumulation loops in EvaluateInto are untouched, so every
// float summation order — and therefore the Assessment — is byte-identical
// to the per-pair enumerator at any worker count.
package routing

import (
	"sync"

	"repro/internal/topology"
)

// destState is the destination-rooted ECMP structure for one destination:
// for every device, the device's shortest-path suffixes toward the
// destination, laid out contiguously in one arena. Device d's suffixes are
// count[d] runs of plen[d] links each, starting at arena[start[d]]; plen[d]
// is d's BFS distance to the destination at build time.
type destState struct {
	stamp uint64 // distance-field stamp the structure was built over
	sig   uint64 // subgraph signature at build time (see subgraphSig)
	arena []*topology.Link
	start []int32
	count []int32
	plen  []int32
}

// buildJob is one pending destination rebuild, resolved in prepareDests and
// executed by buildDest (possibly on a worker goroutine).
type buildJob struct {
	dst topology.DeviceID
	ds  *destState
	e   distEntry
}

// destBuilder is per-worker scratch for buildDest: the counting-sort
// buffers that order devices by ascending BFS distance.
type destBuilder struct {
	order  []topology.DeviceID
	bucket []int32
}

// growInt32 returns s with length n and all elements zero, reusing the
// backing array when capacity allows.
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		//lint:allow hotpathalloc amortized doubling of a reused scratch buffer; steady state never re-enters
		return make([]int32, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// destLinkSig returns the Zobrist contribution of one link to the subgraph
// signature (SplitMix64 of the link ID; deterministic across runs, so
// signatures are replay-safe).
func destLinkSig(id topology.LinkID) uint64 {
	z := uint64(id) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// recomputeSubgraphSig derives the signature from the lastUsable snapshot —
// the fallback Invalidate and NewRouter use; single-link transitions
// maintain it incrementally in InvalidateLink.
func (r *Router) recomputeSubgraphSig() {
	var sig uint64
	for id, u := range r.lastUsable {
		if u {
			sig ^= destLinkSig(topology.LinkID(id))
		}
	}
	r.subgraphSig = sig
}

// shelveDest retires dst's current structure after a transition that may
// have changed its DAG. The structure is moved to the one-slot shelf rather
// than discarded: if the subgraph later returns to the structure's build
// signature (undraining the link it was drained around), it is restored
// without re-enumeration. When the shelf already holds a structure whose
// signature matches the subgraph we just arrived at — the undrain case,
// where the shelved pre-drain structure is about to become current again —
// the newer structure is recycled instead.
func (r *Router) shelveDest(dst topology.DeviceID) {
	ds := r.destCur[dst]
	if ds == nil {
		return
	}
	r.destCur[dst] = nil
	if old := r.destShelf[dst]; old != nil {
		if old.sig == r.subgraphSig {
			r.freeStates = append(r.freeStates, ds)
			return
		}
		r.freeStates = append(r.freeStates, old)
	}
	r.destShelf[dst] = ds
}

// takeState returns a destState to rebuild into, recycling retained arenas.
func (r *Router) takeState() *destState {
	if n := len(r.freeStates); n > 0 {
		ds := r.freeStates[n-1]
		r.freeStates[n-1] = nil
		r.freeStates = r.freeStates[:n-1]
		return ds
	}
	//lint:allow hotpathalloc free-list miss: allocates only until the pool warms up
	return &destState{}
}

// prepareDests makes every destination of the matrix current: distinct
// destinations are collected in first-appearance order, valid structures
// are kept, signature-matching shelved structures are restored, and the
// rest are rebuilt — sharded round-robin across Workers goroutines when
// more than one rebuild is pending. Rebuilds are pure per-destination
// functions, so the worker count cannot affect any result.
//
//selfmaint:hotpath
func (r *Router) prepareDests(tm TrafficMatrix) {
	r.destSeq++
	seq := r.destSeq
	pending := r.pending[:0]
	for i := range tm.Demands {
		dst := tm.Demands[i].Dst
		if r.destMark[dst] == seq {
			continue
		}
		r.destMark[dst] = seq
		e := r.distEntryFor(dst)
		cur := r.destCur[dst]
		if cur != nil && cur.stamp == e.stamp {
			continue // still valid: no affecting transition since it was built
		}
		if sh := r.destShelf[dst]; sh != nil && sh.sig == r.subgraphSig {
			// The subgraph is bit-for-bit the one the shelved structure was
			// built under (identical usable set ⇒ identical distances and
			// DAG): restore it under the current field's stamp.
			sh.stamp = e.stamp
			r.destCur[dst] = sh
			r.destShelf[dst] = cur // may be nil
			continue
		}
		ds := r.takeState()
		//lint:allow hotpathalloc rebuild queue growth; the slice is retained on the router and reused every evaluation
		pending = append(pending, buildJob{dst: dst, ds: ds, e: e})
		r.destCur[dst] = ds
		if cur != nil {
			// Demote the stale structure to the shelf: the subgraph may
			// return to its build signature (drain/undrain sweeps do).
			if old := r.destShelf[dst]; old != nil {
				//lint:allow hotpathalloc free-list growth; bounded by destinations, backing array retained
				r.freeStates = append(r.freeStates, old)
			}
			r.destShelf[dst] = cur
		}
	}
	r.pending = pending
	if len(pending) == 0 {
		return
	}
	workers := r.Workers
	if workers > len(pending) {
		workers = len(pending)
	}
	if workers <= 1 {
		b := r.builderFor(0)
		for _, j := range pending {
			r.buildDest(b, j.ds, j.dst, j.e)
		}
		return
	}
	r.runBuilds(pending, workers)
}

// runBuilds shards the pending rebuilds round-robin across workers
// goroutines. It lives outside prepareDests so the goroutine closure's
// captures are heap-moved only when rebuilds actually run in parallel —
// the warm evaluation path stays allocation-free.
func (r *Router) runBuilds(pending []buildJob, workers int) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, b *destBuilder) {
			defer wg.Done()
			for i := w; i < len(pending); i += workers {
				j := pending[i]
				r.buildDest(b, j.ds, j.dst, j.e)
			}
		}(w, r.builderFor(w))
	}
	wg.Wait()
}

// builderFor returns worker w's scratch, growing the pool on first use.
func (r *Router) builderFor(w int) *destBuilder {
	for len(r.builders) <= w {
		//lint:allow hotpathalloc per-worker scratch pool grows once on first use, then is reused
		r.builders = append(r.builders, &destBuilder{})
	}
	return r.builders[w]
}

// buildDest materializes dst's suffix structure over distance field e.
// Devices are processed in ascending BFS distance (ties in device-ID order,
// via a counting sort), so each suffix is one link prepended to an
// already-built suffix of the next hop. Neighbor links are visited in
// adjacency order — the exact order the per-pair DFS descends — and each
// device's list is capped at MaxPaths, which preserves per-pair path lists
// exactly (a consumer takes at most MaxPaths suffixes from any one
// downstream device, always its first ones).
//
// The function only reads shared router state (distance field, adjacency,
// usability) and writes ds, so concurrent builds of different destinations
// are race-free.
//
//selfmaint:hotpath
func (r *Router) buildDest(b *destBuilder, ds *destState, dst topology.DeviceID, e distEntry) {
	nd := len(r.net.Devices)
	ds.start = growInt32(ds.start, nd)
	ds.count = growInt32(ds.count, nd)
	ds.plen = growInt32(ds.plen, nd)
	dist := e.dist
	maxd, reach := 0, 0
	for _, dd := range dist {
		if dd > maxd {
			maxd = dd
		}
		if dd >= 0 {
			reach++
		}
	}
	// Counting sort of reachable devices by distance.
	b.bucket = growInt32(b.bucket, maxd+1)
	for _, dd := range dist {
		if dd >= 0 {
			b.bucket[dd]++
		}
	}
	pos := int32(0)
	for k := 0; k <= maxd; k++ {
		n := b.bucket[k]
		b.bucket[k] = pos
		pos += n
	}
	if cap(b.order) < reach {
		//lint:allow hotpathalloc builder scratch growth on first use; the buffer is retained per worker, steady state allocates nothing
		b.order = make([]topology.DeviceID, reach)
	}
	order := b.order[:reach]
	for id, dd := range dist {
		if dd >= 0 {
			order[b.bucket[dd]] = topology.DeviceID(id)
			b.bucket[dd]++
		}
	}

	arena := ds.arena[:0]
	mp := int32(r.MaxPaths)
	for _, d := range order {
		if d == dst {
			ds.count[d] = 1 // one empty suffix: the destination itself
			continue
		}
		k := int32(dist[d])
		base := int32(len(arena))
		cnt := int32(0)
		for _, np := range r.net.Neighbors(d) {
			if cnt >= mp {
				break
			}
			if !r.Usable(np.Link) {
				continue
			}
			p := np.Peer.ID
			if int32(dist[p]) != k-1 {
				continue
			}
			ps, pc, plen := ds.start[p], ds.count[p], k-1
			for i := int32(0); i < pc && cnt < mp; i++ {
				//lint:allow hotpathalloc arena growth; the backing array is retained on the destState and reused across rebuilds
				arena = append(arena, np.Link)
				if plen > 0 {
					//lint:allow hotpathalloc arena growth; the backing array is retained on the destState and reused across rebuilds
					arena = append(arena, arena[ps+i*plen:ps+(i+1)*plen]...)
				}
				cnt++
			}
		}
		ds.start[d], ds.count[d], ds.plen[d] = base, cnt, k
	}
	ds.arena = arena
	ds.stamp = e.stamp
	ds.sig = r.subgraphSig
}
