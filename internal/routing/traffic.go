package routing

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/topology"
)

// Demand is one host-to-host traffic demand.
type Demand struct {
	Src, Dst topology.DeviceID
	Gbps     float64
}

// TrafficMatrix is a set of demands, evaluated together.
type TrafficMatrix struct {
	Name    string
	Demands []Demand
}

// TotalGbps sums the offered load.
func (tm TrafficMatrix) TotalGbps() float64 {
	var t float64
	for _, d := range tm.Demands {
		t += d.Gbps
	}
	return t
}

// String summarizes the matrix.
func (tm TrafficMatrix) String() string {
	return fmt.Sprintf("%s: %d demands, %.0fG", tm.Name, len(tm.Demands), tm.TotalGbps())
}

// UniformMatrix spreads totalGbps evenly over all ordered host pairs —
// the classic all-to-all stress matrix.
func UniformMatrix(net *topology.Network, totalGbps float64) TrafficMatrix {
	hosts := net.Hosts()
	n := len(hosts)
	if n < 2 {
		return TrafficMatrix{Name: "uniform"}
	}
	per := totalGbps / float64(n*(n-1))
	tm := TrafficMatrix{Name: "uniform", Demands: make([]Demand, 0, n*(n-1))}
	for _, s := range hosts {
		for _, d := range hosts {
			if s != d {
				tm.Demands = append(tm.Demands, Demand{Src: s.ID, Dst: d.ID, Gbps: per})
			}
		}
	}
	return tm
}

// PermutationMatrix sends perHostGbps from each host to one partner drawn
// from a seeded random permutation (avoiding self-pairs) — the adversarial
// matrix expander-topology papers evaluate.
func PermutationMatrix(net *topology.Network, perHostGbps float64, seed uint64) TrafficMatrix {
	hosts := net.Hosts()
	n := len(hosts)
	tm := TrafficMatrix{Name: "permutation"}
	if n < 2 {
		return tm
	}
	rng := rand.New(rand.NewPCG(seed, 0x7ea))
	perm := rng.Perm(n)
	// Resolve self-pairs by rotating with the next index.
	for i := 0; i < n; i++ {
		if perm[i] == i {
			j := (i + 1) % n
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	for i, j := range perm {
		if i == j {
			continue
		}
		tm.Demands = append(tm.Demands, Demand{Src: hosts[i].ID, Dst: hosts[j].ID, Gbps: perHostGbps})
	}
	return tm
}

// SkewedMatrix concentrates traffic: frac of totalGbps goes uniformly among
// the first heavyCount hosts (elephants), the rest spreads over everyone.
func SkewedMatrix(net *topology.Network, totalGbps, frac float64, heavyCount int) TrafficMatrix {
	hosts := net.Hosts()
	n := len(hosts)
	tm := TrafficMatrix{Name: "skewed"}
	if n < 2 {
		return tm
	}
	if heavyCount > n {
		heavyCount = n
	}
	if heavyCount >= 2 {
		heavy := totalGbps * frac / float64(heavyCount*(heavyCount-1))
		for i := 0; i < heavyCount; i++ {
			for j := 0; j < heavyCount; j++ {
				if i != j {
					tm.Demands = append(tm.Demands, Demand{Src: hosts[i].ID, Dst: hosts[j].ID, Gbps: heavy})
				}
			}
		}
	}
	light := totalGbps * (1 - frac) / float64(n*(n-1))
	for _, s := range hosts {
		for _, d := range hosts {
			if s != d {
				tm.Demands = append(tm.Demands, Demand{Src: s.ID, Dst: d.ID, Gbps: light})
			}
		}
	}
	tm.Name = "skewed"
	return tm
}

// RingAllReduceMatrix models synchronous data-parallel training on a GPU
// cluster: every GPU server streams perServerGbps to its ring successor.
// With rail-optimized fabrics, one down rail link stalls its server's
// contribution — which is the paper's AI-cluster availability dilemma (§1):
// the collective runs at the speed of the slowest participant.
func RingAllReduceMatrix(net *topology.Network, perServerGbps float64) TrafficMatrix {
	gpus := net.DevicesOfKind(topology.GPUServer)
	tm := TrafficMatrix{Name: "ring-allreduce"}
	n := len(gpus)
	if n < 2 {
		return tm
	}
	for i, s := range gpus {
		tm.Demands = append(tm.Demands, Demand{
			Src: s.ID, Dst: gpus[(i+1)%n].ID, Gbps: perServerGbps,
		})
	}
	return tm
}

// CollectiveEfficiency reduces an assessment of a ring all-reduce to the
// effective training throughput: the minimum satisfaction across
// participants (the ring moves at the slowest link's pace).
func CollectiveEfficiency(a Assessment) float64 {
	if len(a.PerDemand) == 0 {
		return 0
	}
	min := 1.0
	for _, s := range a.PerDemand {
		if s < min {
			min = s
		}
	}
	return min
}
