package routing

import (
	"math"

	"repro/internal/topology"
)

// LossFn reports the current packet-loss fraction on a link (0 for clean
// links; telemetry's loss EWMA for flapping ones).
type LossFn func(topology.LinkID) float64

// LatencyModel converts path structure, utilization and flap loss into
// latency percentiles. The paper's point (§1) is that layers retransmit
// around flapping links, so the cost of a gray failure appears in the tail,
// not the median — the model makes that mechanism explicit:
//
//   - base latency: per-hop propagation+forwarding, inflated by an M/M/1
//     style queueing factor at each hop's utilization;
//   - tail: each traversal is lost with the path's combined loss
//     probability and retried after RTO; the q-quantile adds RTO times the
//     q-quantile of the geometric retry count.
type LatencyModel struct {
	HopMicros float64 // per-hop service+propagation, microseconds
	RTOMillis float64 // retransmission timeout, milliseconds
	MaxQueueU float64 // utilization clamp for the queueing factor
}

// DefaultLatencyModel returns datacenter-plausible constants (5 us hops,
// 4 ms RTO).
func DefaultLatencyModel() LatencyModel {
	return LatencyModel{HopMicros: 5, RTOMillis: 4, MaxQueueU: 0.95}
}

// Percentiles carries latency quantiles in microseconds.
type Percentiles struct {
	P50, P99, P999 float64
}

// PathLatency evaluates the model for one path given per-link utilization
// (load/capacity, from an Assessment) and per-link loss.
func (lm LatencyModel) PathLatency(path topology.Path, util func(topology.LinkID) float64, loss LossFn) Percentiles {
	base := 0.0
	ploss := 0.0
	keep := 1.0
	for _, l := range path {
		u := 0.0
		if util != nil {
			u = util(l.ID)
		}
		if u > lm.MaxQueueU {
			u = lm.MaxQueueU
		}
		if u < 0 {
			u = 0
		}
		base += lm.HopMicros / (1 - u)
		if loss != nil {
			keep *= 1 - clampLoss(loss(l.ID))
		}
	}
	ploss = 1 - keep
	return Percentiles{
		P50:  base + lm.retries(ploss, 0.50),
		P99:  base + lm.retries(ploss, 0.99),
		P999: base + lm.retries(ploss, 0.999),
	}
}

// retries returns the added microseconds at quantile q from geometric
// retransmissions with per-try loss p: the number of retries at quantile q
// is the smallest k with p^k <= 1-q.
func (lm LatencyModel) retries(p, q float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		p = 0.999999
	}
	// The retry count R satisfies P(R >= k) = p^k; the q-quantile is the
	// smallest k with 1 - p^(k+1) >= q.
	k := math.Ceil(math.Log(1-q)/math.Log(p)) - 1
	if k < 0 {
		k = 0
	}
	return k * lm.RTOMillis * 1000
}

func clampLoss(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 0.999 {
		return 0.999
	}
	return v
}

// WorstPairLatency evaluates the model over every demand of a matrix using
// the router's current paths and an assessment's loads, returning the worst
// P99 and P999 observed — the fabric-level tail a flapping link creates.
func (lm LatencyModel) WorstPairLatency(r *Router, tm TrafficMatrix, a Assessment, loss LossFn) Percentiles {
	util := func(id topology.LinkID) float64 {
		cap := r.net.Links[id].GbpsCap
		if cap <= 0 {
			return 0
		}
		return a.LinkLoad[id] / cap
	}
	var worst Percentiles
	for _, d := range tm.Demands {
		for _, p := range r.paths(d.Src, d.Dst) {
			pc := lm.PathLatency(p, util, loss)
			if pc.P99 > worst.P99 {
				worst.P99 = pc.P99
			}
			if pc.P999 > worst.P999 {
				worst.P999 = pc.P999
			}
			if pc.P50 > worst.P50 {
				worst.P50 = pc.P50
			}
		}
	}
	return worst
}
