package routing

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/topology"
)

// buildTopo constructs one of the four studied topology families at modest
// scale (routing cannot import maintindex's builders: maintindex depends on
// routing).
func buildTopo(t *testing.T, kind string) *topology.Network {
	t.Helper()
	var (
		n   *topology.Network
		err error
	)
	switch kind {
	case "fattree":
		n, err = topology.NewFatTree(topology.DefaultFatTree(4))
	case "leafspine":
		n, err = topology.NewLeafSpine(topology.LeafSpineConfig{
			Leaves: 8, Spines: 4, HostsPerLeaf: 8, Uplinks: 1,
			FabricGbps: 400, HostGbps: 100,
		})
	case "jellyfish":
		cfg := topology.DefaultJellyfish()
		cfg.Switches = 24
		cfg.FabricDegree = 6
		cfg.HostsPerSwitch = 3
		n, err = topology.NewJellyfish(cfg)
	case "xpander":
		cfg := topology.DefaultXpander()
		cfg.Degree = 6
		cfg.Lift = 4
		cfg.HostsPerSwitch = 3
		n, err = topology.NewXpander(cfg)
	default:
		t.Fatalf("unknown topology kind %q", kind)
	}
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// Differential property pinning the destination-rooted engine to its
// executable specification: across topology families × randomized
// drain/fault/repair sequences × seeds, an incrementally maintained engine
// router at every worker count produces Assessments byte-identical to the
// per-pair enumerator on a router that full-flushes after every change.
func TestDestRootedMatchesPerPairEnumerator(t *testing.T) {
	workerCounts := []int{1, 2, 4, 8}
	for _, kind := range []string{"fattree", "leafspine", "jellyfish", "xpander"} {
		for _, seed := range []uint64{3, 11, 29} {
			net := buildTopo(t, kind)
			down := map[topology.LinkID]bool{}
			health := func(id topology.LinkID) bool { return !down[id] }
			ref := NewRouter(net, health)
			engines := make([]*Router, len(workerCounts))
			wss := make([]Workspace, len(workerCounts))
			for i, w := range workerCounts {
				engines[i] = NewRouter(net, health)
				engines[i].Workers = w
			}
			var refWS Workspace
			tm := UniformMatrix(net, 700)
			fabric := net.SwitchLinks()
			rng := rand.New(rand.NewPCG(seed, 0xd357))
			for step := 0; step < 20; step++ {
				l := fabric[rng.IntN(len(fabric))]
				switch rng.IntN(4) {
				case 0: // fault onset or flap-down
					down[l.ID] = true
				case 1: // repair or flap-up
					down[l.ID] = false
				case 2:
					ref.Drain(l.ID)
					for _, e := range engines {
						e.Drain(l.ID)
					}
				case 3:
					ref.Undrain(l.ID)
					for _, e := range engines {
						e.Undrain(l.ID)
					}
				}
				ref.InvalidateLink(l.ID)
				for _, e := range engines {
					e.InvalidateLink(l.ID)
				}
				ref.Invalidate() // the reference always full-flushes
				want := ref.referenceEvaluateInto(&refWS, tm)
				for i, e := range engines {
					got := e.EvaluateInto(&wss[i], tm)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s seed %d step %d workers=%d: engine %v != per-pair reference %v",
							kind, seed, step, workerCounts[i], got, want)
					}
				}
			}
		}
	}
}

// Drain-sweep cache reuse: a maintindex-style Drain → EvaluateInto → Undrain
// sweep over every fabric link must be byte-identical to a fresh-router
// evaluation at every step, both in the drained and the restored state —
// the sequence where shelf restoration (not just single-op invalidation)
// carries the result.
func TestDrainSweepCacheReuse(t *testing.T) {
	for _, kind := range []string{"fattree", "xpander"} {
		net := buildTopo(t, kind)
		r := NewRouter(net, nil)
		tm := UniformMatrix(net, 700)
		var ws Workspace
		base := r.EvaluateInto(&ws, tm)
		if want := freshEvaluate(r, tm); !reflect.DeepEqual(asValue(base), asValue(want)) {
			t.Fatalf("%s: baseline %v != fresh %v", kind, base, want)
		}
		for i, l := range net.SwitchLinks() {
			r.Drain(l.ID)
			got := r.EvaluateInto(&ws, tm)
			if want := freshEvaluate(r, tm); !reflect.DeepEqual(asValue(got), asValue(want)) {
				t.Fatalf("%s link %d drained: swept %v != fresh %v", kind, i, got, want)
			}
			r.Undrain(l.ID)
			got = r.EvaluateInto(&ws, tm)
			if want := freshEvaluate(r, tm); !reflect.DeepEqual(asValue(got), asValue(want)) {
				t.Fatalf("%s link %d restored: swept %v != fresh %v", kind, i, got, want)
			}
		}
	}
}

// asValue deep-copies an Assessment's slices so workspace-aliased results
// can be compared structurally.
func asValue(a Assessment) Assessment {
	a.PerDemand = append([]float64(nil), a.PerDemand...)
	a.LinkLoad = append([]float64(nil), a.LinkLoad...)
	return a
}

// A warm drain → evaluate → undrain → evaluate cycle — the maintindex sweep
// step — must allocate nothing: shelved structures restore via the subgraph
// signature and rebuilds recycle retained arenas.
func TestDrainSweepWarmZeroAlloc(t *testing.T) {
	net := buildTopo(t, "fattree")
	r := NewRouter(net, nil)
	tm := UniformMatrix(net, 700)
	var ws Workspace
	fabric := net.SwitchLinks()
	l0, l1 := fabric[0], fabric[len(fabric)/2]
	cycle := func(l *topology.Link) {
		r.Drain(l.ID)
		r.EvaluateInto(&ws, tm)
		r.Undrain(l.ID)
		r.EvaluateInto(&ws, tm)
	}
	// Warm every buffer the cycle can touch: both links' drained and
	// restored states, free lists, arenas, and the pair cache.
	for i := 0; i < 3; i++ {
		cycle(l0)
		cycle(l1)
	}
	if allocs := testing.AllocsPerRun(20, func() { cycle(l0); cycle(l1) }); allocs > 0 {
		t.Fatalf("warm drain sweep cycle allocated %.1f/op, want 0", allocs)
	}
}

// Per-function warm-allocation assertions for the engine's hot functions:
// prepareDests on a fully valid matrix and buildDest into a recycled
// destState must both be allocation-free.
func TestDestRootedHotFunctionsZeroAlloc(t *testing.T) {
	net := buildTopo(t, "leafspine")
	r := NewRouter(net, nil)
	tm := UniformMatrix(net, 700)
	var ws Workspace
	r.EvaluateInto(&ws, tm)

	if allocs := testing.AllocsPerRun(50, func() { r.prepareDests(tm) }); allocs > 0 {
		t.Fatalf("warm prepareDests allocated %.1f/op, want 0", allocs)
	}

	dst := tm.Demands[0].Dst
	e := r.distEntryFor(dst)
	ds := r.destCur[dst]
	b := r.builderFor(0)
	r.buildDest(b, ds, dst, e) // size the builder scratch and arena
	if allocs := testing.AllocsPerRun(50, func() { r.buildDest(b, ds, dst, e) }); allocs > 0 {
		t.Fatalf("buildDest into recycled state allocated %.1f/op, want 0", allocs)
	}
}
