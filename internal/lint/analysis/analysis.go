// Package analysis is a minimal, offline reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer is a named check,
// a Pass hands it one type-checked package, and diagnostics optionally
// carry machine-applicable suggested fixes.
//
// The build environment for this repository is hermetic (no module proxy),
// so the real x/tools dependency cannot be fetched; this package keeps the
// same field names and shapes so the selfmaintlint analyzers can migrate to
// the upstream framework by swapping an import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/facts"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph help text; the first line is the summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
	// FactCollector, when non-nil, scans one package for the fact origins
	// this analyzer consumes transitively (see internal/lint/facts). The
	// driver runs every analyzer's collector over every package — in
	// dependency order, before any Run — so Run sees fully propagated
	// facts for the package's whole import cone.
	FactCollector facts.Collector
}

func (a *Analyzer) String() string { return a.Name }

// Pass is the interface between one analyzer and one package. All fields
// are read-only to the analyzer except via Report.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts is the propagated interprocedural fact view of this package
	// (nil when the driver runs without the fact layer); analyzers use it
	// to surface violations reached only through transitive calls.
	Facts *facts.View
	// Report delivers one diagnostic. It is never nil.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportTransitive reports a diagnostic at a call site whose callee
// carries fact f: the message is the invariant, the chain walks from the
// enclosing function down to the origin site.
func (p *Pass) ReportTransitive(call *ast.CallExpr, f facts.Fact, format string, args ...any) {
	p.Report(Diagnostic{
		Pos:     call.Pos(),
		End:     call.End(),
		Message: fmt.Sprintf(format, args...),
		Chain:   f.ChainWithOrigin(p.Facts.Caller(call)),
	})
}

// Diagnostic is one finding. End may be token.NoPos.
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos
	Message string
	// Chain, when non-empty, is the call chain of a transitive finding:
	// enclosing function, intermediate callees, then the origin site
	// ("EvaluateInto", "helperX", "make at routing/foo.go:42"). Render
	// folds it into the human-readable message; -json keeps it structured.
	Chain          []string
	SuggestedFixes []SuggestedFix
}

// Render returns the full human-readable message, chain included.
func (d Diagnostic) Render() string {
	if len(d.Chain) == 0 {
		return d.Message
	}
	return d.Message + " (via " + strings.Join(d.Chain, " → ") + ")"
}

// SuggestedFix is one machine-applicable rewrite that resolves the
// diagnostic. Edits within one fix must not overlap.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces the source range [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}
