// Package analysis is a minimal, offline reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer is a named check,
// a Pass hands it one type-checked package, and diagnostics optionally
// carry machine-applicable suggested fixes.
//
// The build environment for this repository is hermetic (no module proxy),
// so the real x/tools dependency cannot be fetched; this package keeps the
// same field names and shapes so the selfmaintlint analyzers can migrate to
// the upstream framework by swapping an import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph help text; the first line is the summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass is the interface between one analyzer and one package. All fields
// are read-only to the analyzer except via Report.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. It is never nil.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding. End may be token.NoPos.
type Diagnostic struct {
	Pos            token.Pos
	End            token.Pos
	Message        string
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one machine-applicable rewrite that resolves the
// diagnostic. Edits within one fix must not overlap.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces the source range [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}
