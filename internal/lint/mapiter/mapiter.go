// Package mapiter flags ranging over a map in deterministic packages. Map
// iteration order is randomized per process, which makes it the canonical
// byte-identity killer: any map range whose effects can reach a run's
// output reorders that output between runs.
//
// The analyzer accepts loop bodies it can prove order-insensitive:
//
//   - pure counting (empty body, x++/x--)
//   - integer commutative accumulation (+=, *=, |=, &=, ^= on integer
//     types; float accumulation is NOT accepted — float addition does not
//     associate, so even a sum depends on visit order at the bit level)
//   - writes into another map and delete() calls
//   - the canonical collect-then-sort idiom, keys = append(keys, k)
//
// Everything else must either iterate detsort.Keys(m) (the suggested fix
// where the rewrite is mechanical) or carry a //lint:allow mapiter
// directive arguing why order cannot reach the output.
//
// Order-sensitive ranges are also exported as IteratesMapUnordered facts,
// so a deterministic package calling a helper — in any package — whose body
// hides such a range is flagged at the call site with the chain down to the
// loop.
package mapiter

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/determinism"
	"repro/internal/lint/facts"
)

var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc: "flag order-sensitive map iteration in deterministic packages\n\n" +
		"Ranging over a map visits keys in randomized order; unless the body\n" +
		"is provably order-insensitive, iterate detsort.Keys(m) instead.",
	Run:           run,
	FactCollector: collect,
}

// sites invokes fn for every order-sensitive map range in the files.
func sites(info *types.Info, files []*ast.File, fn func(rs *ast.RangeStmt)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitiveBody(info, rs) {
				return true
			}
			fn(rs)
			return true
		})
	}
}

func collect(pkg *facts.PkgInfo) []facts.Origin {
	var out []facts.Origin
	sites(pkg.Info, pkg.Files, func(rs *ast.RangeStmt) {
		out = append(out, facts.Origin{Kind: facts.IteratesMapUnordered, Pos: rs.Pos(), Desc: "map range"})
	})
	return out
}

func run(pass *analysis.Pass) (any, error) {
	if !determinism.Deterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	sites(pass.TypesInfo, pass.Files, func(rs *ast.RangeStmt) {
		d := analysis.Diagnostic{
			Pos: rs.Pos(),
			End: rs.X.End(),
			Message: fmt.Sprintf(
				"map iteration order is randomized and this loop body is not provably order-insensitive; "+
					"range over detsort.Keys(%s) or annotate //lint:allow mapiter <reason>", exprString(pass.Fset, rs.X)),
		}
		if fix, ok := keysFix(pass, rs); ok {
			d.SuggestedFixes = []analysis.SuggestedFix{fix}
		}
		pass.Report(d)
	})
	reported := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || reported[call.Pos()] {
				return true
			}
			if fact, ok := pass.Facts.CallFact(call, facts.IteratesMapUnordered); ok {
				reported[call.Pos()] = true
				pass.ReportTransitive(call, fact,
					"call iterates a map in randomized order in deterministic package %s; sort keys with detsort.Keys at the range",
					pass.Pkg.Path())
			}
			return true
		})
	}
	return nil, nil
}

// keysFix builds the detsort.Keys rewrite when it is mechanical: the range
// binds only the key, to a plain identifier, and the key type satisfies
// cmp.Ordered. `for k := range m` becomes `for _, k := range detsort.Keys(m)`;
// the loop body is unchanged (m[k] lookups still work).
func keysFix(pass *analysis.Pass, rs *ast.RangeStmt) (analysis.SuggestedFix, bool) {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" || rs.Value != nil || rs.Tok != token.DEFINE {
		return analysis.SuggestedFix{}, false
	}
	mt := pass.TypesInfo.TypeOf(rs.X).Underlying().(*types.Map)
	if !ordered(mt.Key()) {
		return analysis.SuggestedFix{}, false
	}
	newText := fmt.Sprintf("_, %s := range detsort.Keys(%s)", key.Name, exprString(pass.Fset, rs.X))
	return analysis.SuggestedFix{
		Message: `iterate sorted keys via detsort.Keys (import "repro/internal/detsort")`,
		TextEdits: []analysis.TextEdit{{
			Pos:     rs.Key.Pos(),
			End:     rs.X.End(),
			NewText: []byte(newText),
		}},
	}, true
}

// ordered reports whether cmp.Ordered admits t.
func ordered(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsFloat|types.IsString) != 0
}

// orderInsensitiveBody reports whether every statement of the range body is
// one of the recognized commutative forms. The check is syntactic and
// deliberately conservative: any call (other than delete), branch, or float
// accumulation fails it.
func orderInsensitiveBody(info *types.Info, rs *ast.RangeStmt) bool {
	for _, stmt := range rs.Body.List {
		if !orderInsensitiveStmt(info, rs, stmt) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(info *types.Info, rs *ast.RangeStmt, stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		// x++ adds a constant per visit: the total is order-independent
		// even for floats.
		return pureExpr(info, s.X)
	case *ast.AssignStmt:
		return orderInsensitiveAssign(info, rs, s)
	case *ast.ExprStmt:
		// delete(m2, k) commutes across distinct keys (and is idempotent
		// on the same key).
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
					return true
				}
			}
		}
		return false
	case *ast.BlockStmt:
		for _, inner := range s.List {
			if !orderInsensitiveStmt(info, rs, inner) {
				return false
			}
		}
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	default:
		return false
	}
}

func orderInsensitiveAssign(info *types.Info, rs *ast.RangeStmt, s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.MUL_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		if len(s.Lhs) != 1 || !pureExpr(info, s.Rhs[0]) {
			return false
		}
		// A per-key update of a map element (m[k] *= x) touches one key per
		// visit with no cross-key accumulator, so any element type is safe.
		if ix, ok := s.Lhs[0].(*ast.IndexExpr); ok {
			if t := info.TypeOf(ix.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					return true
				}
			}
		}
		// Accumulation into a single variable is commutative-and-associative
		// only over integers: float + and * round differently under
		// reassociation, string + concatenates in visit order.
		t := info.TypeOf(s.Lhs[0])
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsInteger != 0
	case token.ASSIGN, token.DEFINE:
		// keys = append(keys, k): the collect-then-sort idiom.
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 && isKeyCollect(info, rs, s) {
			return true
		}
		// m2[expr] = pure: writes to a map land keyed, not ordered.
		if s.Tok == token.ASSIGN && allMapIndexWrites(info, s) {
			return true
		}
		return false
	default:
		return false
	}
}

// isKeyCollect matches `dst = append(dst, k)` where k is the range key.
func isKeyCollect(info *types.Info, rs *ast.RangeStmt, s *ast.AssignStmt) bool {
	dst, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 || call.Ellipsis != token.NoPos {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	arg0, ok := call.Args[0].(*ast.Ident)
	if !ok || arg0.Name != dst.Name {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok {
		return false
	}
	arg1, ok := call.Args[1].(*ast.Ident)
	return ok && arg1.Name == key.Name
}

// allMapIndexWrites reports whether every LHS is an index into a map and
// every RHS is call-free.
func allMapIndexWrites(info *types.Info, s *ast.AssignStmt) bool {
	for _, l := range s.Lhs {
		ix, ok := l.(*ast.IndexExpr)
		if !ok {
			return false
		}
		t := info.TypeOf(ix.X)
		if t == nil {
			return false
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return false
		}
	}
	for _, r := range s.Rhs {
		if !pureExpr(info, r) {
			return false
		}
	}
	return true
}

// pureExpr reports whether e contains no calls other than the pure
// builtins len and cap (a call may observe or mutate accumulation state,
// defeating the commutativity argument).
func pureExpr(info *types.Info, e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok &&
				(b.Name() == "len" || b.Name() == "cap") {
				return true // pure builtins; keep scanning their arguments
			}
		}
		pure = false
		return false
	})
	return pure
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "m"
	}
	return buf.String()
}
