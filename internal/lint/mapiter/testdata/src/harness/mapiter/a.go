// Package mapiter lives outside det/: harness code may iterate maps in any
// order (its output is not under the byte-identity contract), so nothing
// here is flagged.
package mapiter

import "fmt"

func dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
