// Package maphelp is harness-side helper code whose map range is
// order-sensitive; the IteratesMapUnordered fact flags deterministic
// callers at their call site.
package maphelp

// Sum accumulates float values in map visit order — order-sensitive at
// the bit level, since float addition does not associate.
func Sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}
