// Package mapitertrans exercises the interprocedural side of the mapiter
// analyzer: the order-sensitive range hides in a helper and the caller is
// flagged at the call with the chain down to the loop.
package mapitertrans

import "harness/maphelp"

func concat(m map[string]string) string {
	out := ""
	for _, v := range m { // want `map iteration order is randomized`
		out += v
	}
	return out
}

func render(m map[string]string) string {
	return concat(m) // want `call iterates a map in randomized order in deterministic package det/mapitertrans.*\(via render → concat → map range at mapitertrans/a\.go:\d+\)`
}

func total(m map[string]float64) float64 {
	return maphelp.Sum(m) // want `call iterates a map in randomized order.*\(via total → Sum → map range at maphelp/a\.go:\d+\)`
}

func sorted(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // collect-then-sort: order-insensitive, no fact
	}
	return keys
}

func callsSorted(m map[int]string) []int {
	return sorted(m) // helper proved order-insensitive: callers stay clean
}

func allowed(m map[string]string) string {
	return concat(m) //lint:allow mapiter output feeds an unordered set diff
}
