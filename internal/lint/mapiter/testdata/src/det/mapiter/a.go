package mapiter

func flagged(m map[string]float64, out *[]string) {
	for k := range m { // want `map iteration order is randomized`
		*out = append(*out, k)
	}
	var sum float64
	for _, v := range m { // want `map iteration order is randomized`
		sum += v // float accumulation reassociates: order-sensitive at the bit level
	}
	for k, v := range m { // want `map iteration order is randomized`
		process(k, v) // calls may do anything: assume order-sensitive
	}
	best := ""
	for k := range m { // want `map iteration order is randomized`
		if k > best { // ties aside, branching defeats the commutativity proof
			best = k
		}
	}
}

func process(k string, v float64) {}

func counting(m map[string]int) (n int, total int) {
	for range m {
		n++
	}
	for _, v := range m {
		total += v // integer += commutes exactly
	}
	return n, total
}

func collectThenSort(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // canonical collect-then-sort idiom
	}
	return keys
}

func mapToMap(src map[int]int, dst map[int]int) {
	for k, v := range src {
		dst[k] = v * 2 // keyed writes land the same regardless of order
	}
	for k := range src {
		delete(dst, k)
	}
}

func perKeyUpdate(rates map[string]float64, scale float64) {
	for c := range rates {
		rates[c] *= scale // one key per visit, no cross-key accumulator
	}
}

func lenIsPure(work map[int][]string) (n int) {
	for _, w := range work {
		n += len(w) // len/cap are pure builtins: integer accumulation stands
	}
	return n
}

func allowed(m map[string]int, sink func(string)) {
	//lint:allow mapiter sink is an unordered set insertion
	for k := range m {
		sink(k)
	}
}
