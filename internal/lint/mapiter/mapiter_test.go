package mapiter_test

import (
	"strings"
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/mapiter"
)

func TestMapIter(t *testing.T) {
	results := analysistest.Run(t, "testdata", mapiter.Analyzer, "det/mapiter")
	analysistest.Run(t, "testdata", mapiter.Analyzer, "det/mapitertrans")

	// The key-only range in flagged() must carry the mechanical
	// detsort.Keys rewrite; the key+value ranges must not (the body also
	// needs edits there, so the fix would be wrong).
	var withFix, withoutFix int
	for _, d := range results[0].Diagnostics {
		if len(d.SuggestedFixes) == 0 {
			withoutFix++
			continue
		}
		withFix++
		edit := string(d.SuggestedFixes[0].TextEdits[0].NewText)
		if !strings.Contains(edit, "range detsort.Keys(m)") {
			t.Errorf("suggested fix rewrites to %q, want a detsort.Keys range", edit)
		}
	}
	if withFix != 2 || withoutFix != 2 {
		t.Errorf("got %d fixes and %d fixless findings, want 2 and 2", withFix, withoutFix)
	}
}

func TestHarnessPackagesNotChecked(t *testing.T) {
	analysistest.Run(t, "testdata", mapiter.Analyzer, "harness/mapiter")
}
