// Package loader type-checks Go packages for the selfmaintlint analyzers
// without golang.org/x/tools/go/packages (the build is hermetic). It drives
// `go list -deps -export -json` to discover package file sets and compiled
// export data, parses the target packages from source with comments, and
// type-checks them with the standard library's gc export-data importer.
//
// Analyzer testdata trees (GOPATH-style testdata/src/<importpath>/ layouts,
// which `go list` cannot see) are supported through SrcRoots: import paths
// that resolve under a source root are parsed and type-checked recursively
// from source, shadowing real packages of the same path, while their
// standard-library imports fall back to export data resolved on demand.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// SrcRoot maps an import-path namespace onto a directory tree: the import
// path "det/foo" under root {Dir: "testdata/src"} loads from
// testdata/src/det/foo. An empty Prefix matches every path that exists
// under Dir, which is the analysistest layout.
type SrcRoot struct {
	Prefix string
	Dir    string
}

// Config controls a load.
type Config struct {
	// Dir is the working directory for `go list` (a directory inside the
	// module). Empty means the current directory.
	Dir string
	// SrcRoots are consulted, in order, before export data.
	SrcRoots []SrcRoot
}

// loadState carries the caches shared by every package of one Load call.
type loadState struct {
	cfg       Config
	fset      *token.FileSet
	exports   map[string]string         // import path -> export data file
	gc        types.Importer            // export-data importer
	srcPkgs   map[string]*types.Package // packages type-checked from source
	srcLoaded []*Package                // source-checked dependencies, in completion (dependency) order
	listed    map[string]bool           // import paths already resolved via go list
}

// Load lists patterns with the go command and returns the matched packages,
// parsed from source and fully type-checked. Test files are not included:
// the analyzers gate simulation code, and test binaries are free to use the
// wall clock.
func Load(cfg Config, patterns ...string) ([]*Package, error) {
	st, err := newState(cfg)
	if err != nil {
		return nil, err
	}
	targets, err := st.goList(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, t := range targets {
		p, err := st.checkDir(t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadSource loads the single package at importPath via the configured
// SrcRoots, resolving its imports recursively (source roots first, then
// export data fetched on demand with `go list`). The second return value
// lists the dependencies that were themselves type-checked from source, in
// dependency order — the fact layer analyzes those before the target so
// transitive facts flow across testdata package boundaries exactly as they
// do across real ones.
func LoadSource(cfg Config, importPath string) (*Package, []*Package, error) {
	st, err := newState(cfg)
	if err != nil {
		return nil, nil, err
	}
	dir, ok := st.resolveSrc(importPath)
	if !ok {
		return nil, nil, fmt.Errorf("loader: %q does not resolve under any source root", importPath)
	}
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, nil, err
	}
	pkg, err := st.checkDir(importPath, dir, names)
	if err != nil {
		return nil, nil, err
	}
	return pkg, st.srcLoaded, nil
}

func newState(cfg Config) (*loadState, error) {
	st := &loadState{
		cfg:     cfg,
		fset:    token.NewFileSet(),
		exports: make(map[string]string),
		srcPkgs: make(map[string]*types.Package),
		listed:  make(map[string]bool),
	}
	st.gc = importer.ForCompiler(st.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := st.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return st, nil
}

type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` on patterns, records export
// data for every dependency, and returns the requested (non-dep-only)
// packages in list order.
func (st *loadState) goList(patterns []string) ([]listPkg, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = st.cfg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		st.listed[p.ImportPath] = true
		if p.Export != "" {
			st.exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	return targets, nil
}

// checkDir parses names (relative to dir) and type-checks them as one
// package. The returned package has complete type information; any type
// error aborts the load, since analyzers assume well-typed input.
func (st *loadState) checkDir(importPath, dir string, names []string) (*Package, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(st.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importerFunc(st.importPath)}
	pkg, err := conf.Check(importPath, st.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{Path: importPath, Dir: dir, Fset: st.fset, Files: files, Types: pkg, Info: info}, nil
}

// importPath resolves one import for the type checker: source roots first,
// then export data (listed on demand if this path has not been seen).
func (st *loadState) importPath(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := st.srcPkgs[path]; ok {
		return p, nil
	}
	if dir, ok := st.resolveSrc(path); ok {
		names, err := goFilesIn(dir)
		if err != nil {
			return nil, err
		}
		checked, err := st.checkDir(path, dir, names)
		if err != nil {
			return nil, err
		}
		st.srcPkgs[path] = checked.Types
		st.srcLoaded = append(st.srcLoaded, checked)
		return checked.Types, nil
	}
	if _, ok := st.exports[path]; !ok && !st.listed[path] {
		// Unknown dependency (a testdata package importing the standard
		// library): resolve its whole dependency cone in one go command.
		if _, err := st.goList([]string{path}); err != nil {
			return nil, err
		}
	}
	return st.gc.Import(path)
}

// resolveSrc maps path onto a source-root directory, if any root claims it.
func (st *loadState) resolveSrc(path string) (string, bool) {
	for _, root := range st.cfg.SrcRoots {
		if root.Prefix != "" && path != root.Prefix && !strings.HasPrefix(path, root.Prefix+"/") {
			continue
		}
		dir := filepath.Join(root.Dir, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
	}
	return "", false
}

// goFilesIn returns the non-test Go file names in dir, sorted.
func goFilesIn(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	return names, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
