// Package allochelp is helper code that allocates; the Allocates fact it
// exports flags hot-path callers at their call site.
package allochelp

// Box heap-allocates its argument.
func Box(v int) *int {
	p := new(int)
	*p = v
	return p
}
