package hotpathalloc

import "fmt"

type item struct{ id int }

//selfmaint:hotpath
func flagged(in []int, out []int) []int {
	m := make(map[int]bool)  // want `make allocates`
	p := new(item)           // want `new allocates`
	s := []int{1, 2}         // want `slice literal allocates`
	mm := map[int]int{1: 2}  // want `map literal allocates`
	q := &item{id: 3}        // want `&composite literal allocates`
	_ = fmt.Sprintf("%d", 1) // want `fmt\.Sprintf allocates`
	var local []int
	name := ""
	var fns []func() int
	for _, v := range in {
		local = append(local, v)                   // want `append to a non-parameter slice inside a loop`
		name = name + "x"                          // want `string concatenation inside a loop allocates`
		name += "y"                                // want `string \+= inside a loop allocates`
		fns = append(fns, func() int { return v }) // want `append to a non-parameter slice inside a loop` `closure captures loop variable "v"`
	}
	_, _, _, _, _, _ = m, p, s, mm, q, local
	_, _ = name, fns
	return out
}

//selfmaint:hotpath
func clean(in []int, out []int, scratch *[]int) []int {
	for _, v := range in {
		out = append(out, v) // appending to a parameter: the reuse pattern
	}
	total := 0
	for i := 0; i < len(in); i++ {
		total += in[i]
	}
	value := item{id: total} // value composite, not addressed: stack
	_ = value
	return out
}

//selfmaint:hotpath
func allowed() *item {
	//lint:allow hotpathalloc free-list refill, amortized across the run
	return &item{id: 1}
}

// notAnnotated allocates freely: only //selfmaint:hotpath functions are
// checked.
func notAnnotated() []int {
	out := make([]int, 8)
	for i := range out {
		out = append(out, i)
	}
	return out
}
