// Package hotpathalloctrans exercises the interprocedural side of the
// hotpathalloc analyzer: the allocation hides in a helper — same-package
// or imported — and the hot-path caller is flagged at the call with the
// chain down to the allocation site.
package hotpathalloctrans

import "harness/allochelp"

func scratch(n int) []int {
	return make([]int, n) // not a hot-path function itself: no direct finding
}

func viaScratch(n int) []int {
	return scratch(n) // not hot-path either: only the fact propagates
}

//selfmaint:hotpath
func flagged(n int) int {
	buf := scratch(n)     // want `call allocates in a //selfmaint:hotpath function.*\(via flagged → scratch → make at hotpathalloctrans/a\.go:\d+\)`
	two := viaScratch(n)  // want `call allocates in a //selfmaint:hotpath function.*\(via flagged → viaScratch → scratch → make at hotpathalloctrans/a\.go:\d+\)`
	p := allochelp.Box(n) // want `call allocates in a //selfmaint:hotpath function.*\(via flagged → Box → new at allochelp/a\.go:\d+\)`
	return len(buf) + len(two) + *p
}

//selfmaint:hotpath
func allowed(n int) []int {
	return scratch(n) //lint:allow hotpathalloc scratch buffer is amortized by the caller pool
}
