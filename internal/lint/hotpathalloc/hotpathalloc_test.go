package hotpathalloc_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/hotpathalloc"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotpathalloc.Analyzer, "det/hotpathalloc", "det/hotpathalloctrans")
}
