// Package hotpathalloc flags detectable allocation sites in functions
// annotated //selfmaint:hotpath. The annotated functions are the ones the
// tier-1 AllocsPerRun assertions hold at (or near) zero — the steady-state
// assessment, path enumeration, and event-pump loops — and this analyzer
// moves the "someone added an allocation" signal from a failing benchmark
// assertion after the fact to a vet-time finding with a file and line.
//
// Flagged sites:
//
//   - make and new calls
//   - map and slice composite literals, and &T{...} (heap-escaping)
//   - append inside a loop whose destination is not a parameter (growing a
//     local or field per iteration)
//   - fmt.Sprintf / Sprint / Sprintln / Errorf (formatting allocates)
//   - string concatenation inside a loop
//   - func literals inside a loop that capture the loop variable (each
//     iteration allocates a fresh closure)
//
// The check is intraprocedural and syntactic: it cannot see escape
// analysis, so deliberate cold-branch allocations (free-list refill, cache
// miss) carry a //lint:allow hotpathalloc directive with the amortization
// argument.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Directive marks a function whose body this analyzer checks.
const Directive = "//selfmaint:hotpath"

var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: "flag allocation sites in //selfmaint:hotpath functions\n\n" +
		"Annotated functions back zero-alloc AllocsPerRun assertions;\n" +
		"this check points at the exact line a new allocation enters.",
	Run: run,
}

var fmtAllocs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			(&checker{pass: pass, params: paramObjs(pass, fd)}).check(fd.Body, 0)
		}
	}
	return nil, nil
}

// isHotPath reports whether the declaration carries the hotpath directive.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == Directive || strings.HasPrefix(c.Text, Directive+" ") {
			return true
		}
	}
	return false
}

// paramObjs collects the parameter (and receiver) objects of fd: appending
// to a caller-provided buffer is the intended zero-alloc pattern, so those
// destinations are exempt from the append rule.
func paramObjs(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	objs := make(map[types.Object]bool)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					objs[obj] = true
				}
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	return objs
}

// checker walks one hotpath function body tracking loop nesting and the
// loop variables currently in scope.
type checker struct {
	pass     *analysis.Pass
	params   map[types.Object]bool
	loopVars []types.Object
}

// check visits stmts at the given loop depth. It recurses manually rather
// than via ast.Inspect so it can track where loops begin.
func (c *checker) check(n ast.Node, depth int) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.ForStmt:
		c.check(n.Init, depth)
		mark := len(c.loopVars)
		c.noteLoopVars(n.Init)
		c.check(n.Cond, depth+1)
		c.check(n.Post, depth+1)
		c.check(n.Body, depth+1)
		c.loopVars = c.loopVars[:mark]
		return
	case *ast.RangeStmt:
		c.check(n.X, depth)
		mark := len(c.loopVars)
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
					c.loopVars = append(c.loopVars, obj)
				}
			}
		}
		c.check(n.Body, depth+1)
		c.loopVars = c.loopVars[:mark]
		return
	case *ast.CallExpr:
		c.checkCall(n, depth)
	case *ast.CompositeLit:
		c.checkComposite(n, false)
	case *ast.UnaryExpr:
		if lit, ok := n.X.(*ast.CompositeLit); ok {
			c.checkComposite(lit, true)
			// Recurse into the literal's elements only.
			for _, e := range lit.Elts {
				c.check(e, depth)
			}
			return
		}
	case *ast.BinaryExpr:
		c.checkStringConcat(n, depth)
	case *ast.AssignStmt:
		c.checkStringConcatAssign(n, depth)
	case *ast.FuncLit:
		c.checkClosure(n, depth)
		// Statements inside the literal run when it is called; allocation
		// sites in there still execute on the hot path, so keep walking.
	}
	// Generic recursion over children.
	for _, child := range children(n) {
		c.check(child, depth)
	}
}

func (c *checker) checkCall(call *ast.CallExpr, depth int) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := c.pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.pass.Reportf(call.Pos(), "make allocates in a //selfmaint:hotpath function; reuse a retained buffer or free list")
			case "new":
				c.pass.Reportf(call.Pos(), "new allocates in a //selfmaint:hotpath function; reuse a retained struct or free list")
			case "append":
				c.checkAppend(call, depth)
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := c.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok &&
			fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fmtAllocs[fn.Name()] {
			c.pass.Reportf(call.Pos(), "fmt.%s allocates in a //selfmaint:hotpath function; format off the hot path", fn.Name())
		}
	}
}

// checkAppend flags append-in-loop when the destination is not a parameter:
// growing a local or a field per loop iteration is an allocation treadmill,
// while appending into a caller-provided buffer is the reuse pattern.
func (c *checker) checkAppend(call *ast.CallExpr, depth int) {
	if depth == 0 || len(call.Args) == 0 {
		return
	}
	if id, ok := call.Args[0].(*ast.Ident); ok {
		if obj := c.pass.TypesInfo.Uses[id]; obj != nil && c.params[obj] {
			return
		}
	}
	c.pass.Reportf(call.Pos(), "append to a non-parameter slice inside a loop in a //selfmaint:hotpath function; grow a reused buffer instead")
}

// checkComposite flags map/slice literals, and struct literals when their
// address is taken (&T{...} escapes to the heap at this site).
func (c *checker) checkComposite(lit *ast.CompositeLit, addressed bool) {
	t := c.pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		c.pass.Reportf(lit.Pos(), "map literal allocates in a //selfmaint:hotpath function")
	case *types.Slice:
		c.pass.Reportf(lit.Pos(), "slice literal allocates in a //selfmaint:hotpath function")
	default:
		if addressed {
			c.pass.Reportf(lit.Pos(), "&composite literal allocates in a //selfmaint:hotpath function; reuse a retained struct")
		}
	}
}

func (c *checker) checkStringConcat(b *ast.BinaryExpr, depth int) {
	if depth == 0 || b.Op != token.ADD {
		return
	}
	if t := c.pass.TypesInfo.TypeOf(b); t != nil {
		if basic, ok := t.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
			c.pass.Reportf(b.Pos(), "string concatenation inside a loop allocates in a //selfmaint:hotpath function")
		}
	}
}

func (c *checker) checkStringConcatAssign(a *ast.AssignStmt, depth int) {
	if depth == 0 || a.Tok != token.ADD_ASSIGN || len(a.Lhs) != 1 {
		return
	}
	if t := c.pass.TypesInfo.TypeOf(a.Lhs[0]); t != nil {
		if basic, ok := t.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
			c.pass.Reportf(a.Pos(), "string += inside a loop allocates in a //selfmaint:hotpath function")
		}
	}
}

// checkClosure flags func literals in a loop that capture a loop variable:
// the capture forces a per-iteration heap allocation.
func (c *checker) checkClosure(lit *ast.FuncLit, depth int) {
	if depth == 0 || len(c.loopVars) == 0 {
		return
	}
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured != "" {
			return captured == ""
		}
		if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
			for _, lv := range c.loopVars {
				if obj == lv {
					captured = id.Name
					return false
				}
			}
		}
		return true
	})
	if captured != "" {
		c.pass.Reportf(lit.Pos(), "closure captures loop variable %q in a //selfmaint:hotpath function: one allocation per iteration", captured)
	}
}

// noteLoopVars records variables defined by a for-init statement.
func (c *checker) noteLoopVars(init ast.Stmt) {
	assign, ok := init.(*ast.AssignStmt)
	if !ok {
		return
	}
	for _, l := range assign.Lhs {
		if id, ok := l.(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
				c.loopVars = append(c.loopVars, obj)
			}
		}
	}
}

// children returns the immediate AST children of n, for the generic
// recursion in check. ast.Inspect cannot be used directly because the
// walk needs loop-depth context, so this enumerates via ast.Inspect one
// level deep.
func children(n ast.Node) []ast.Node {
	if n == nil {
		return nil
	}
	var out []ast.Node
	first := true
	ast.Inspect(n, func(child ast.Node) bool {
		if first {
			first = false
			return true
		}
		if child != nil {
			out = append(out, child)
		}
		return false
	})
	return out
}
