// Package hotpathalloc flags detectable allocation sites in functions
// annotated //selfmaint:hotpath. The annotated functions are the ones the
// tier-1 AllocsPerRun assertions hold at (or near) zero — the steady-state
// assessment, path enumeration, and event-pump loops — and this analyzer
// moves the "someone added an allocation" signal from a failing benchmark
// assertion after the fact to a vet-time finding with a file and line.
//
// Flagged sites:
//
//   - make and new calls
//   - map and slice composite literals, and &T{...} (heap-escaping)
//   - append inside a loop whose destination is not a parameter (growing a
//     local or field per iteration)
//   - fmt.Sprintf / Sprint / Sprintln / Errorf (formatting allocates)
//   - string concatenation inside a loop
//   - func literals inside a loop that capture the loop variable (each
//     iteration allocates a fresh closure)
//
// Site detection is syntactic (it cannot see escape analysis, so
// deliberate cold-branch allocations — free-list refill, cache miss —
// carry a //lint:allow hotpathalloc directive with the amortization
// argument), but the check itself is interprocedural: every function's
// allocation sites become Allocates facts, so a hotpath function calling a
// helper that allocates three frames down is flagged at the call with the
// chain to the exact make().
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/facts"
)

// Directive marks a function whose body this analyzer checks.
const Directive = "//selfmaint:hotpath"

var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: "flag allocation sites in //selfmaint:hotpath functions\n\n" +
		"Annotated functions back zero-alloc AllocsPerRun assertions;\n" +
		"this check points at the exact line a new allocation enters,\n" +
		"including allocations reached through callees.",
	Run:           run,
	FactCollector: collect,
}

var fmtAllocs = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
}

// site is one detected allocation: desc is the short name used as a fact
// chain tail ("make"), msg the full direct-diagnostic message.
type site struct {
	pos  token.Pos
	desc string
	msg  string
}

// collect runs the allocation checker over every function of the package —
// hotpath or not — and exports each site as an Allocates fact origin; the
// invariant is enforced where a hotpath function consumes the fact.
func collect(pkg *facts.PkgInfo) []facts.Origin {
	var out []facts.Origin
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &checker{info: pkg.Info, params: paramObjs(pkg.Info, fd), emit: func(s site) {
				out = append(out, facts.Origin{Kind: facts.Allocates, Pos: s.pos, Desc: s.desc})
			}}
			c.check(fd.Body, 0)
		}
	}
	return out
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			c := &checker{info: pass.TypesInfo, params: paramObjs(pass.TypesInfo, fd), emit: func(s site) {
				pass.Reportf(s.pos, "%s", s.msg)
			}}
			c.check(fd.Body, 0)
			reportTransitive(pass, fd.Body)
		}
	}
	return nil, nil
}

// reportTransitive flags calls in a hotpath body whose callee carries an
// Allocates fact, at any loop depth: a helper that allocates once per call
// is on the hot path as soon as the hot path calls it.
func reportTransitive(pass *analysis.Pass, body *ast.BlockStmt) {
	reported := make(map[token.Pos]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || reported[call.Pos()] {
			return true
		}
		if fact, ok := pass.Facts.CallFact(call, facts.Allocates); ok {
			reported[call.Pos()] = true
			pass.ReportTransitive(call, fact,
				"call allocates in a //selfmaint:hotpath function; hoist the allocation off the hot path")
		}
		return true
	})
}

// isHotPath reports whether the declaration carries the hotpath directive.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == Directive || strings.HasPrefix(c.Text, Directive+" ") {
			return true
		}
	}
	return false
}

// paramObjs collects the parameter (and receiver) objects of fd: appending
// to a caller-provided buffer is the intended zero-alloc pattern, so those
// destinations are exempt from the append rule.
func paramObjs(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	objs := make(map[types.Object]bool)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					objs[obj] = true
				}
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	return objs
}

// checker walks one function body tracking loop nesting and the loop
// variables currently in scope, emitting each detected allocation site.
type checker struct {
	info     *types.Info
	params   map[types.Object]bool
	emit     func(site)
	loopVars []types.Object
}

// check visits stmts at the given loop depth. It recurses manually rather
// than via ast.Inspect so it can track where loops begin.
func (c *checker) check(n ast.Node, depth int) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.ForStmt:
		c.check(n.Init, depth)
		mark := len(c.loopVars)
		c.noteLoopVars(n.Init)
		c.check(n.Cond, depth+1)
		c.check(n.Post, depth+1)
		c.check(n.Body, depth+1)
		c.loopVars = c.loopVars[:mark]
		return
	case *ast.RangeStmt:
		c.check(n.X, depth)
		mark := len(c.loopVars)
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if obj := c.info.Defs[id]; obj != nil {
					c.loopVars = append(c.loopVars, obj)
				}
			}
		}
		c.check(n.Body, depth+1)
		c.loopVars = c.loopVars[:mark]
		return
	case *ast.CallExpr:
		c.checkCall(n, depth)
	case *ast.CompositeLit:
		c.checkComposite(n, false)
	case *ast.UnaryExpr:
		if lit, ok := n.X.(*ast.CompositeLit); ok {
			c.checkComposite(lit, true)
			// Recurse into the literal's elements only.
			for _, e := range lit.Elts {
				c.check(e, depth)
			}
			return
		}
	case *ast.BinaryExpr:
		c.checkStringConcat(n, depth)
	case *ast.AssignStmt:
		c.checkStringConcatAssign(n, depth)
	case *ast.FuncLit:
		c.checkClosure(n, depth)
		// Statements inside the literal run when it is called; allocation
		// sites in there still execute on the hot path, so keep walking.
	}
	// Generic recursion over children.
	for _, child := range children(n) {
		c.check(child, depth)
	}
}

func (c *checker) checkCall(call *ast.CallExpr, depth int) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := c.info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.emit(site{call.Pos(), "make", "make allocates in a //selfmaint:hotpath function; reuse a retained buffer or free list"})
			case "new":
				c.emit(site{call.Pos(), "new", "new allocates in a //selfmaint:hotpath function; reuse a retained struct or free list"})
			case "append":
				c.checkAppend(call, depth)
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := c.info.Uses[fun.Sel].(*types.Func); ok &&
			fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fmtAllocs[fn.Name()] {
			c.emit(site{call.Pos(), "fmt." + fn.Name(),
				"fmt." + fn.Name() + " allocates in a //selfmaint:hotpath function; format off the hot path"})
		}
	}
}

// checkAppend flags append-in-loop when the destination is not a parameter:
// growing a local or a field per loop iteration is an allocation treadmill,
// while appending into a caller-provided buffer is the reuse pattern.
func (c *checker) checkAppend(call *ast.CallExpr, depth int) {
	if depth == 0 || len(call.Args) == 0 {
		return
	}
	if id, ok := call.Args[0].(*ast.Ident); ok {
		if obj := c.info.Uses[id]; obj != nil && c.params[obj] {
			return
		}
	}
	c.emit(site{call.Pos(), "append in loop",
		"append to a non-parameter slice inside a loop in a //selfmaint:hotpath function; grow a reused buffer instead"})
}

// checkComposite flags map/slice literals, and struct literals when their
// address is taken (&T{...} escapes to the heap at this site).
func (c *checker) checkComposite(lit *ast.CompositeLit, addressed bool) {
	t := c.info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		c.emit(site{lit.Pos(), "map literal", "map literal allocates in a //selfmaint:hotpath function"})
	case *types.Slice:
		c.emit(site{lit.Pos(), "slice literal", "slice literal allocates in a //selfmaint:hotpath function"})
	default:
		if addressed {
			c.emit(site{lit.Pos(), "&composite literal",
				"&composite literal allocates in a //selfmaint:hotpath function; reuse a retained struct"})
		}
	}
}

func (c *checker) checkStringConcat(b *ast.BinaryExpr, depth int) {
	if depth == 0 || b.Op != token.ADD {
		return
	}
	if t := c.info.TypeOf(b); t != nil {
		if basic, ok := t.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
			c.emit(site{b.Pos(), "string concat in loop",
				"string concatenation inside a loop allocates in a //selfmaint:hotpath function"})
		}
	}
}

func (c *checker) checkStringConcatAssign(a *ast.AssignStmt, depth int) {
	if depth == 0 || a.Tok != token.ADD_ASSIGN || len(a.Lhs) != 1 {
		return
	}
	if t := c.info.TypeOf(a.Lhs[0]); t != nil {
		if basic, ok := t.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
			c.emit(site{a.Pos(), "string += in loop",
				"string += inside a loop allocates in a //selfmaint:hotpath function"})
		}
	}
}

// checkClosure flags func literals in a loop that capture a loop variable:
// the capture forces a per-iteration heap allocation.
func (c *checker) checkClosure(lit *ast.FuncLit, depth int) {
	if depth == 0 || len(c.loopVars) == 0 {
		return
	}
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured != "" {
			return captured == ""
		}
		if obj := c.info.Uses[id]; obj != nil {
			for _, lv := range c.loopVars {
				if obj == lv {
					captured = id.Name
					return false
				}
			}
		}
		return true
	})
	if captured != "" {
		c.emit(site{lit.Pos(), "closure capture",
			"closure captures loop variable \"" + captured + "\" in a //selfmaint:hotpath function: one allocation per iteration"})
	}
}

// noteLoopVars records variables defined by a for-init statement.
func (c *checker) noteLoopVars(init ast.Stmt) {
	assign, ok := init.(*ast.AssignStmt)
	if !ok {
		return
	}
	for _, l := range assign.Lhs {
		if id, ok := l.(*ast.Ident); ok {
			if obj := c.info.Defs[id]; obj != nil {
				c.loopVars = append(c.loopVars, obj)
			}
		}
	}
}

// children returns the immediate AST children of n, for the generic
// recursion in check. ast.Inspect cannot be used directly because the
// walk needs loop-depth context, so this enumerates via ast.Inspect one
// level deep.
func children(n ast.Node) []ast.Node {
	if n == nil {
		return nil
	}
	var out []ast.Node
	first := true
	ast.Inspect(n, func(child ast.Node) bool {
		if first {
			first = false
			return true
		}
		if child != nil {
			out = append(out, child)
		}
		return false
	})
	return out
}
