package crossshard

import "det/sim"

func flagged(me *sim.MultiEngine) {
	me.Shard(1)               // want `\(\*sim\.MultiEngine\)\.Shard escapes shard isolation`
	s := me.Shard(0).Engine() // want `\(\*sim\.MultiEngine\)\.Shard escapes shard isolation` `\(\*sim\.Shard\)\.Engine escapes shard isolation`
	_ = s
}

func flaggedInClosure(me *sim.MultiEngine, s *sim.Shard) {
	s.Send(1, 10, "cross", func() {
		me.Shard(1).Engine().Schedule(0, "bad", nil) // want `\(\*sim\.MultiEngine\)\.Shard escapes shard isolation` `\(\*sim\.Shard\)\.Engine escapes shard isolation`
	})
}

func sanctioned(me *sim.MultiEngine, s *sim.Shard) {
	// The deferred cross-shard channel and coordinator queries are free.
	s.Send(1, 10, "cross", func() {})
	_ = s.ID()
	_ = me.Shards()
	me.RunUntil(100)
}

func audited(me *sim.MultiEngine) {
	//lint:allow crossshard build-time wiring before the clock starts
	eng := me.Shard(0).Engine()
	_ = eng
	s := me.Shard(1) //lint:allow crossshard trailing-form directive also suppresses
	_ = s
}

type notSim struct{}

func (notSim) Shard(i int) int  { return i }
func (notSim) Engine() struct{} { return struct{}{} }

func otherTypesNotMatched(x notSim) {
	// Same method names on a non-sim type are not the escape hatches.
	_ = x.Shard(3)
	_ = x.Engine()
}
