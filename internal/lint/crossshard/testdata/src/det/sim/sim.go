// Package sim is a testdata stub of the sharded simulation kernel: just
// enough surface for the crossshard analyzer's receiver-type matching.
package sim

// Time is virtual time.
type Time int64

// Engine is one shard's event loop.
type Engine struct{}

// Now returns the engine clock.
func (e *Engine) Now() Time { return 0 }

// Schedule registers an event.
func (e *Engine) Schedule(at Time, name string, fn func()) {}

// MultiEngine coordinates shards.
type MultiEngine struct{}

// Shard returns shard i (the audited escape hatch).
func (me *MultiEngine) Shard(i int) *Shard { return nil }

// Shards returns the shard count (not audited).
func (me *MultiEngine) Shards() int { return 0 }

// RunUntil advances the world (not audited).
func (me *MultiEngine) RunUntil(deadline Time) {}

// Shard is one region's slot.
type Shard struct{}

// Engine returns the shard's engine (the audited escape hatch).
func (s *Shard) Engine() *Engine { return nil }

// ID returns the shard index (not audited).
func (s *Shard) ID() int { return 0 }

// Send posts a cross-shard event (the sanctioned channel, not audited).
func (s *Shard) Send(dst int, delay Time, name string, fn func()) {}
