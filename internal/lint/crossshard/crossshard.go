// Package crossshard guards the shard-isolation invariant of the
// region-sharded simulation. Between epoch barriers a shard's engine is
// mutated only by its own goroutine; the only sanctioned cross-shard
// channel is Shard.Send, which defers the effect to the barrier exchange.
// The two escape hatches that let code reach an engine directly —
// MultiEngine.Shard and Shard.Engine — exist for build-time wiring, and
// every use in a deterministic package must therefore be audited: each call
// site either carries a //lint:allow crossshard directive explaining why it
// runs before the clock starts (or on its own shard), or it is a finding.
// A foreign engine touched mid-run is both a data race at workers > 1 and
// a determinism break at any worker count.
package crossshard

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/determinism"
)

var Analyzer = &analysis.Analyzer{
	Name: "crossshard",
	Doc: "audit escapes from shard isolation in sharded-simulation code\n\n" +
		"MultiEngine.Shard and Shard.Engine reach a shard's engine directly,\n" +
		"bypassing the epoch barrier; every call in a deterministic package\n" +
		"must be build-time wiring or self-access, and say so in a\n" +
		"//lint:allow crossshard directive.",
	Run: run,
}

// audited maps receiver type -> method names that escape shard isolation.
var audited = map[string]map[string]bool{
	"MultiEngine": {"Shard": true},
	"Shard":       {"Engine": true},
}

func run(pass *analysis.Pass) (any, error) {
	if !determinism.Deterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	if pass.Pkg.Name() == "sim" {
		// The coordinator itself owns the barrier; its internal accesses
		// are the mechanism, not an escape.
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, name, ok := simMethod(pass, call)
			if !ok || !audited[recv][name] {
				return true
			}
			pass.Reportf(call.Pos(),
				"(*sim.%s).%s escapes shard isolation: outside the barrier exchange it may only be "+
					"build-time wiring or same-shard access; route cross-shard effects through Shard.Send "+
					"or annotate //lint:allow crossshard <why this site is safe>",
				recv, name)
			return true
		})
	}
	return nil, nil
}

// simMethod reports the receiver type and method name when call invokes a
// method on a type of the sim package (matched by package name and type
// name, so analyzer testdata stubs qualify alongside repro/internal/sim).
func simMethod(pass *analysis.Pass, call *ast.CallExpr) (string, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", "", false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "sim" {
		return "", "", false
	}
	return obj.Name(), fn.Name(), true
}
