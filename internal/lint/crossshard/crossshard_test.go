package crossshard_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/crossshard"
)

func TestCrossShard(t *testing.T) {
	analysistest.Run(t, "testdata", crossshard.Analyzer, "det/crossshard")
}
