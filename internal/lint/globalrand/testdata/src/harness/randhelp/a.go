// Package randhelp models harness code that draws from the process-global
// generator; the ReachesGlobalRand fact flags its callers transitively.
package randhelp

import "math/rand/v2"

// Jitter returns a global-generator draw.
func Jitter() int {
	return rand.IntN(100) // flagged only when this package is the lint target
}
