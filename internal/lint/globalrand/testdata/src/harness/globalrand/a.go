// Package globalrand lives outside det/, but the global-generator ban is
// repo-wide: harness code gets flagged too (parallel cells share the
// process-global source, so even bench-only draws perturb each other).
package globalrand

import "math/rand/v2"

func harness() int {
	return rand.IntN(100) // want `rand\.IntN draws from the process-global generator`
}

func seeded() int {
	return rand.New(rand.NewPCG(7, 0)).IntN(100)
}
