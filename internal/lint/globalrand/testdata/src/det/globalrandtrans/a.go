// Package globalrandtrans exercises the interprocedural side of the
// globalrand analyzer: the global draw hides in a helper and the caller
// is flagged at the call with the chain.
package globalrandtrans

import (
	"math/rand/v2"

	"harness/randhelp"
)

func pick() int {
	return rand.IntN(6) // want `rand\.IntN draws from the process-global generator`
}

func roll() int {
	return pick() // want `call draws from the process-global rand generator.*\(via roll → pick → rand\.IntN at globalrandtrans/a\.go:\d+\)`
}

func jittered() int {
	return randhelp.Jitter() // want `call draws from the process-global rand generator.*\(via jittered → Jitter → rand\.IntN at randhelp/a\.go:\d+\)`
}

func seeded(rng *rand.Rand) int {
	return rng.IntN(6) // method on an explicit generator: no fact, no finding
}

func allowed() int {
	return pick() //lint:allow globalrand demo path tolerates nondeterministic jitter
}
