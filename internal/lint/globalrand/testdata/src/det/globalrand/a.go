package globalrand

import "math/rand/v2"

func bad() {
	_ = rand.IntN(10)     // want `rand\.IntN draws from the process-global generator`
	_ = rand.Float64()    // want `rand\.Float64 draws from the process-global generator`
	rand.Shuffle(3, swap) // want `rand\.Shuffle draws from the process-global generator`
	_ = rand.N(int64(5))  // want `rand\.N draws from the process-global generator`
	_ = rand.Perm(4)      // want `rand\.Perm draws from the process-global generator`
	f := rand.Uint64      // want `rand\.Uint64 draws from the process-global generator`
	_ = f
}

func swap(i, j int) {}

func good() {
	rng := rand.New(rand.NewPCG(1, 2))
	_ = rng.IntN(10)
	_ = rng.Float64()
	rng.Shuffle(3, swap)
	src := rand.NewChaCha8([32]byte{})
	_ = src
}

func allowed() {
	_ = rand.IntN(10) //lint:allow globalrand jitter for a non-reproducible demo path
}
