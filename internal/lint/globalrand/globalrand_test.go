package globalrand_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/globalrand"
)

func TestGlobalRand(t *testing.T) {
	analysistest.Run(t, "testdata", globalrand.Analyzer, "det/globalrand", "det/globalrandtrans", "harness/globalrand")
}
