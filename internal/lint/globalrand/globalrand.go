// Package globalrand forbids the process-global math/rand generators.
// The global source is shared mutable state: any draw from rand.IntN or
// rand.Shuffle interleaves with every other draw in the process, so adding
// one experiment (or running cells in parallel, as the PR 2 harness does)
// perturbs every other experiment's randomness. All randomness must flow
// through a seeded *rand.Rand — in simulation code, through the engine's
// named sim streams. Constructors (rand.New, rand.NewPCG, rand.NewSource,
// rand.NewZipf, rand.NewChaCha8) are exactly how seeded generators are
// built and stay legal, as do methods on a *rand.Rand value.
//
// The rule is enforced transitively through the fact layer: a helper that
// wraps a global draw taints every caller, and the diagnostic at the call
// site carries the chain down to the draw.
package globalrand

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/facts"
)

var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewZipf":    true,
	"NewChaCha8": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc: "forbid the global math/rand generators everywhere\n\n" +
		"Randomness must come from an explicitly seeded *rand.Rand (in\n" +
		"simulation code, a sim.Engine stream); the process-global source\n" +
		"couples every caller's sequence to every other's.",
	Run:           run,
	FactCollector: collect,
}

// sites invokes fn for every package-level math/rand use in the files.
func sites(info *types.Info, files []*ast.File, fn func(sel *ast.SelectorExpr, name string)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil {
				return true
			}
			if p := obj.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			// Methods (sig.Recv() != nil) are draws on an explicit
			// generator; only package-level functions touch global state.
			if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			if constructors[obj.Name()] {
				return true
			}
			fn(sel, obj.Name())
			return true
		})
	}
}

func collect(pkg *facts.PkgInfo) []facts.Origin {
	var out []facts.Origin
	sites(pkg.Info, pkg.Files, func(sel *ast.SelectorExpr, name string) {
		out = append(out, facts.Origin{Kind: facts.ReachesGlobalRand, Pos: sel.Pos(), Desc: "rand." + name})
	})
	return out
}

func run(pass *analysis.Pass) (any, error) {
	sites(pass.TypesInfo, pass.Files, func(sel *ast.SelectorExpr, name string) {
		pass.Reportf(sel.Pos(),
			"rand.%s draws from the process-global generator; use a seeded *rand.Rand (sim.Engine.RNG stream) instead",
			name)
	})
	reported := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || reported[call.Pos()] {
				return true
			}
			if fact, ok := pass.Facts.CallFact(call, facts.ReachesGlobalRand); ok {
				reported[call.Pos()] = true
				pass.ReportTransitive(call, fact,
					"call draws from the process-global rand generator; thread a seeded *rand.Rand instead")
			}
			return true
		})
	}
	return nil, nil
}
