// Package globalrand forbids the process-global math/rand generators.
// The global source is shared mutable state: any draw from rand.IntN or
// rand.Shuffle interleaves with every other draw in the process, so adding
// one experiment (or running cells in parallel, as the PR 2 harness does)
// perturbs every other experiment's randomness. All randomness must flow
// through a seeded *rand.Rand — in simulation code, through the engine's
// named sim streams. Constructors (rand.New, rand.NewPCG, rand.NewSource,
// rand.NewZipf, rand.NewChaCha8) are exactly how seeded generators are
// built and stay legal, as do methods on a *rand.Rand value.
package globalrand

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewZipf":    true,
	"NewChaCha8": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc: "forbid the global math/rand generators everywhere\n\n" +
		"Randomness must come from an explicitly seeded *rand.Rand (in\n" +
		"simulation code, a sim.Engine stream); the process-global source\n" +
		"couples every caller's sequence to every other's.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			// Methods (sig.Recv() != nil) are draws on an explicit
			// generator; only package-level functions touch global state.
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			if constructors[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"rand.%s draws from the process-global generator; use a seeded *rand.Rand (sim.Engine.RNG stream) instead",
				fn.Name())
			return true
		})
	}
	return nil, nil
}
