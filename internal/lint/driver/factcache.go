package driver

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/detsort"
	"repro/internal/lint/facts"
	"repro/internal/lint/loader"
)

// cacheFile is the serialized fact store inside the -factcache directory.
const cacheFile = "facts.json"

// loadCache reads the fact cache, returning an empty one when the option
// is unset, the file is absent, or its contents are unusable (a corrupt or
// version-skewed cache only costs recomputation, never correctness).
func loadCache(opts Options) facts.Serialized {
	empty := facts.Serialized{Packages: map[string]facts.StoredPkg{}}
	if opts.FactCache == "" {
		return empty
	}
	b, err := os.ReadFile(filepath.Join(opts.FactCache, cacheFile))
	if err != nil {
		return empty
	}
	var s facts.Serialized
	if err := json.Unmarshal(b, &s); err != nil || s.Version != facts.SerialVersion || s.Packages == nil {
		if opts.Verbose {
			fmt.Fprintf(opts.Stderr, "selfmaintlint: ignoring fact cache (version %d, err %v)\n", s.Version, err)
		}
		return empty
	}
	return s
}

// saveCache writes the store back to the cache directory, attaching each
// package's fact-phase //lint:allow usage records so cache hits keep
// -stale accurate.
func saveCache(opts Options, store *facts.Store, usedByPkg map[string][]facts.UsedAllow) {
	if opts.FactCache == "" {
		return
	}
	out := store.Export()
	for _, path := range detsort.Keys(usedByPkg) {
		if sp, ok := out.Packages[path]; ok && len(usedByPkg[path]) > 0 {
			sp.Used = usedByPkg[path]
			out.Packages[path] = sp
		}
	}
	b, err := json.MarshalIndent(out, "", " ")
	if err == nil {
		err = os.MkdirAll(opts.FactCache, 0o755)
	}
	if err == nil {
		err = os.WriteFile(filepath.Join(opts.FactCache, cacheFile), b, 0o644)
	}
	if err != nil {
		fmt.Fprintf(opts.Stderr, "selfmaintlint: writing fact cache: %v\n", err)
	}
}

// pkgHash fingerprints one package's fact inputs: the serial version, its
// source bytes, and the fact hashes of its direct imports (which chain
// transitively, so an edit three packages down invalidates every
// dependent). Returns "" when any input cannot be read — an unhashable
// package is simply recomputed every run.
func pkgHash(pkg *loader.Package, store *facts.Store) string {
	h := sha256.New()
	fmt.Fprintf(h, "selfmaintlint facts v%d\npkg %s\n", facts.SerialVersion, pkg.Path)
	var names []string
	for _, f := range pkg.Files {
		names = append(names, pkg.Fset.Position(f.Pos()).Filename)
	}
	sort.Strings(names)
	for _, name := range names {
		b, err := os.ReadFile(name)
		if err != nil {
			return ""
		}
		fmt.Fprintf(h, "file %s %d\n", filepath.Base(name), len(b))
		h.Write(b)
	}
	var imps []string
	for _, imp := range pkg.Types.Imports() {
		imps = append(imps, imp.Path())
	}
	sort.Strings(imps)
	for _, p := range imps {
		// Export-data-only imports (the standard library) have no facts and
		// hash as empty, which is stable.
		fmt.Fprintf(h, "dep %s %s\n", p, store.CachedHash(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}
