// Package driver runs the selfmaintlint analyzer suite over a set of
// packages: it loads and type-checks them, computes and propagates
// interprocedural facts in dependency order (with an optional on-disk
// cache), applies //lint:allow suppression, and renders the surviving
// findings as text or JSON. cmd/selfmaintlint is a thin flag wrapper
// around Run; the analysistest harness mirrors the same fact plumbing for
// single testdata packages.
package driver

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/detsort"
	"repro/internal/lint"
	"repro/internal/lint/allow"
	"repro/internal/lint/analysis"
	"repro/internal/lint/facts"
	"repro/internal/lint/loader"
)

// Options configures one lint run.
type Options struct {
	// Patterns are `go list` package patterns (default ./...), loaded
	// relative to Dir. Facts flow between packages that are both matched;
	// run over ./... for full interprocedural coverage.
	Patterns []string
	Dir      string
	// SrcDir/SrcPkgs switch to GOPATH-style source-root loading
	// (SrcDir/<import path>), used by the driver's own tests; Patterns is
	// ignored when SrcPkgs is non-empty.
	SrcDir  string
	SrcPkgs []string
	// Fix applies each finding's first suggested fix in place.
	Fix bool
	// Stale reports //lint:allow directives that suppressed nothing.
	Stale bool
	// JSON renders findings as a JSON array instead of text lines.
	JSON bool
	// FactCache is a directory holding facts.json between runs; unchanged
	// packages (same sources, same dependency facts) skip fact
	// recomputation.
	FactCache string
	// BenchJSON upserts a "lint" experiment entry with this run's wall time
	// into the named BENCH artifact, so cmd/benchdiff gates lint-time
	// regressions alongside the simulation experiments.
	BenchJSON string
	Verbose   bool
	Stdout    io.Writer
	Stderr    io.Writer
}

// Finding is one reported diagnostic, shaped for the -json output.
type Finding struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Chain    []string `json:"chain,omitempty"`

	pos  token.Position
	diag analysis.Diagnostic
}

func newFinding(fset *token.FileSet, analyzer string, d analysis.Diagnostic) Finding {
	pos := fset.Position(d.Pos)
	return Finding{
		File: pos.Filename, Line: pos.Line, Col: pos.Column,
		Analyzer: analyzer, Message: d.Message, Chain: d.Chain,
		pos: pos, diag: d,
	}
}

// Run executes the suite and returns the process exit code: 0 clean, 1
// with findings, 2 on load or internal errors.
func Run(opts Options) int {
	if opts.Stdout == nil {
		opts.Stdout = os.Stdout
	}
	if opts.Stderr == nil {
		opts.Stderr = os.Stderr
	}
	start := time.Now() //lint:allow wallclock the lint driver itself measures real wall time for the bench artifact

	pkgs, exit := load(opts)
	if exit != 0 {
		return exit
	}

	analyzers := lint.Analyzers()
	known := lint.Names()
	var collectors []facts.Collector
	for _, a := range analyzers {
		collectors = append(collectors, a.FactCollector)
	}

	store := facts.NewStore()
	cache := loadCache(opts)
	usedByPkg := make(map[string][]facts.UsedAllow)

	var findings []Finding
	for _, pkg := range pkgs {
		if opts.Verbose {
			fmt.Fprintf(opts.Stderr, "selfmaintlint: %s\n", pkg.Path)
		}
		ix := allow.Build(pkg.Fset, pkg.Files, known)
		for _, p := range ix.Problems {
			findings = append(findings, newFinding(pkg.Fset, "allow", p))
		}

		hash := pkgHash(pkg, store)
		if sp, ok := cache.Packages[pkg.Path]; ok && hash != "" && sp.Hash == hash {
			store.InjectPackage(pkg.Path, hash, sp.Facts)
			for _, u := range sp.Used {
				ix.MarkUsed(u.Analyzer, u.File, u.Line)
			}
			usedByPkg[pkg.Path] = sp.Used
		}
		pkg := pkg
		view := facts.Analyze(
			&facts.PkgInfo{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info},
			store, collectors,
			func(name string, pos token.Pos) bool { return ix.Allowed(name, pkg.Fset, pos) },
		)
		if _, cached := usedByPkg[pkg.Path]; !cached {
			store.MarkAnalyzed(pkg.Path, hash)
			// Directives used so far were consumed by fact suppression;
			// record them so cache hits can replay the usage for -stale.
			var used []facts.UsedAllow
			for _, d := range ix.Directives {
				if d.Used {
					used = append(used, facts.UsedAllow{Analyzer: d.Analyzer, File: d.File, Line: d.Line})
				}
			}
			usedByPkg[pkg.Path] = used
		}

		for _, a := range analyzers {
			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Facts:     view,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(opts.Stderr, "selfmaintlint: %s on %s: %v\n", a.Name, pkg.Path, err)
				return 2
			}
			for _, d := range ix.Filter(a.Name, pkg.Fset, diags) {
				findings = append(findings, newFinding(pkg.Fset, a.Name, d))
			}
		}

		if opts.Stale {
			for _, d := range ix.Stale() {
				findings = append(findings, newFinding(pkg.Fset, "allow", analysis.Diagnostic{
					Pos: d.Pos,
					Message: fmt.Sprintf("stale //lint:allow %s directive: it suppressed no finding and no fact; remove it (reason was: %s)",
						d.Analyzer, d.Reason),
				}))
			}
		}
	}

	saveCache(opts, store, usedByPkg)

	if opts.Fix {
		findings = applyFixes(opts, findings)
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].pos, findings[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})

	if opts.BenchJSON != "" {
		elapsed := time.Since(start) //lint:allow wallclock the lint driver itself measures real wall time for the bench artifact
		if err := upsertBench(opts.BenchJSON, elapsed.Seconds()); err != nil {
			fmt.Fprintf(opts.Stderr, "selfmaintlint: -bench-json: %v\n", err)
			return 2
		}
	}

	if opts.JSON {
		out, err := json.MarshalIndent(findingsOrEmpty(findings), "", "  ")
		if err != nil {
			fmt.Fprintf(opts.Stderr, "selfmaintlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(opts.Stdout, "%s\n", out)
	} else {
		for _, f := range findings {
			fmt.Fprintf(opts.Stdout, "%s: [%s] %s\n", f.pos, f.Analyzer, f.diag.Render())
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(opts.Stderr, "selfmaintlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// findingsOrEmpty keeps the JSON output an array (not null) when clean.
func findingsOrEmpty(fs []Finding) []Finding {
	if fs == nil {
		return []Finding{}
	}
	return fs
}

// load resolves the run's packages: go list patterns by default, explicit
// source roots for the driver's own testdata.
func load(opts Options) ([]*loader.Package, int) {
	if len(opts.SrcPkgs) > 0 {
		cfg := loader.Config{SrcRoots: []loader.SrcRoot{{Dir: opts.SrcDir}}}
		var pkgs []*loader.Package
		seen := make(map[string]bool)
		for _, path := range opts.SrcPkgs {
			pkg, deps, err := loader.LoadSource(cfg, path)
			if err != nil {
				fmt.Fprintf(opts.Stderr, "selfmaintlint: %v\n", err)
				return nil, 2
			}
			// Dependencies participate in fact computation (and reporting:
			// a violation in a helper package is still a violation).
			for _, p := range append(deps, pkg) {
				if !seen[p.Path] {
					seen[p.Path] = true
					pkgs = append(pkgs, p)
				}
			}
		}
		return pkgs, 0
	}
	patterns := opts.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(loader.Config{Dir: opts.Dir}, patterns...)
	if err != nil {
		fmt.Fprintf(opts.Stderr, "selfmaintlint: %v\n", err)
		return nil, 2
	}
	return pkgs, 0
}

// applyFixes rewrites source files with each finding's first suggested fix
// and returns the findings that had none. Edits are grouped per file and
// applied back-to-front so earlier offsets stay valid; overlapping edits
// keep only the first (in position order) to stay safe.
func applyFixes(opts Options, findings []Finding) []Finding {
	type edit struct {
		start, end int
		text       []byte
	}
	byFile := make(map[string][]edit)
	var rest []Finding
	fixed := 0
	for _, f := range findings {
		if len(f.diag.SuggestedFixes) == 0 {
			rest = append(rest, f)
			continue
		}
		sf := f.diag.SuggestedFixes[0]
		ok := true
		var edits []edit
		for _, te := range sf.TextEdits {
			// Positions translate to file offsets via the reported position
			// base: Pos/End are in the same file as the finding.
			startPos := f.pos.Offset + int(te.Pos-f.diag.Pos)
			endPos := startPos + int(te.End-te.Pos)
			if startPos < 0 || endPos < startPos {
				ok = false
				break
			}
			edits = append(edits, edit{start: startPos, end: endPos, text: te.NewText})
		}
		if !ok {
			rest = append(rest, f)
			continue
		}
		byFile[f.pos.Filename] = append(byFile[f.pos.Filename], edits...)
		fixed++
	}
	for _, file := range detsort.Keys(byFile) {
		edits := byFile[file]
		src, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(opts.Stderr, "selfmaintlint: -fix: %v\n", err)
			os.Exit(2)
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		lastStart := len(src) + 1
		for _, e := range edits {
			if e.end > lastStart || e.end > len(src) {
				continue // overlapping or out-of-range edit: skip
			}
			src = append(src[:e.start], append(e.text, src[e.end:]...)...)
			lastStart = e.start
		}
		if err := os.WriteFile(file, src, 0o644); err != nil {
			fmt.Fprintf(opts.Stderr, "selfmaintlint: -fix: %v\n", err)
			os.Exit(2)
		}
	}
	if fixed > 0 {
		fmt.Fprintf(opts.Stderr, "selfmaintlint: applied %d fix(es); re-run to verify\n", fixed)
	}
	return rest
}
