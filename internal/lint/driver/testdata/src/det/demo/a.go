// Package demo is the driver's end-to-end fixture: one direct finding,
// one transitive finding with a chain, one suppressed finding, and one
// stale directive for the -stale gate.
package demo

import "time"

func stamp() int64 {
	return time.Now().UnixNano()
}

func tick() int64 {
	return stamp()
}

func allowedTick() int64 {
	return stamp() //lint:allow wallclock the demo transcript is wall-time stamped
}

//lint:allow mapiter never fires; the -stale gate reports it
func unrelated() {}
