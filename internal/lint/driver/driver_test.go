package driver

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runDemo lints the det/demo fixture with opts layered on top of the
// source-root defaults.
func runDemo(t *testing.T, opts Options) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb bytes.Buffer
	opts.SrcDir = filepath.Join("testdata", "src")
	opts.SrcPkgs = []string{"det/demo"}
	opts.Stdout = &out
	opts.Stderr = &errb
	code = Run(opts)
	return out.String(), errb.String(), code
}

func TestJSONGolden(t *testing.T) {
	out, stderr, code := runDemo(t, Options{JSON: true})
	if code != 1 {
		t.Fatalf("exit code %d, want 1 (stderr: %s)", code, stderr)
	}
	golden := filepath.Join("testdata", "findings.golden.json")
	if *update {
		if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (re-run with -update to generate): %v", err)
	}
	if out != string(want) {
		t.Errorf("JSON output drifted from golden (re-run with -update if intended)\n got: %s\nwant: %s", out, want)
	}
}

func TestTextOutputCarriesChain(t *testing.T) {
	out, _, code := runDemo(t, Options{})
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(out, "(via tick → stamp → time.Now at demo/a.go:") {
		t.Errorf("transitive finding lost its chain:\n%s", out)
	}
	if strings.Contains(out, "allowedTick") {
		t.Errorf("suppressed finding leaked:\n%s", out)
	}
}

func TestStaleDirectiveReported(t *testing.T) {
	out, _, code := runDemo(t, Options{Stale: true})
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(out, "stale //lint:allow mapiter directive") {
		t.Errorf("stale mapiter directive not reported:\n%s", out)
	}
	if strings.Contains(out, "stale //lint:allow wallclock") {
		t.Errorf("used wallclock directive reported stale:\n%s", out)
	}
}

func TestFactCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	first, _, code1 := runDemo(t, Options{Stale: true, FactCache: dir})
	if code1 != 1 {
		t.Fatalf("first run exit %d, want 1", code1)
	}
	if _, err := os.Stat(filepath.Join(dir, "facts.json")); err != nil {
		t.Fatalf("cache file not written: %v", err)
	}
	// The second run hits the cache (same sources, same deps); findings and
	// staleness must be byte-identical — in particular the wallclock
	// directive that suppressed a fact on the first run must replay as used.
	second, _, code2 := runDemo(t, Options{Stale: true, FactCache: dir})
	if code2 != 1 {
		t.Fatalf("second run exit %d, want 1", code2)
	}
	if first != second {
		t.Errorf("cache hit changed output\nfirst:\n%s\nsecond:\n%s", first, second)
	}
}

func TestBenchJSONUpsert(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	_, stderr, _ := runDemo(t, Options{BenchJSON: path})
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("bench artifact not written (stderr: %s): %v", stderr, err)
	}
	if !strings.Contains(string(b), `"id": "lint"`) {
		t.Errorf("bench artifact lacks the lint experiment: %s", b)
	}
	// A second run must replace, not duplicate, the entry.
	runDemo(t, Options{BenchJSON: path})
	b, _ = os.ReadFile(path)
	if strings.Count(string(b), `"id": "lint"`) != 1 {
		t.Errorf("lint experiment duplicated: %s", b)
	}
}
