// Package errdrop flags discarded errors on the write paths the
// self-maintenance loop cannot afford to lose: the exec, bus and flightrec
// packages. A dropped flightrec write error silently truncates the
// recording that replay-diff later depends on; a dropped exec error loses
// an actuation failure the assessor should have seen. Anywhere else,
// ignoring an error is a local style decision — on these packages it is a
// correctness bug, so every discard must either handle the error or carry
// a //lint:allow errdrop directive arguing why the loss is safe.
//
// Matching is by package name (bus, exec, flightrec), like the busreentry
// Bus matcher, so analyzer testdata stubs qualify alongside the real
// repro/internal packages.
//
// The check is interprocedural through WritePathError facts: a helper that
// returns an error it obtained from a write path taints its own error
// result, so discarding the helper's error is flagged too, with the chain
// down to the originating call. The fact only propagates into functions
// that themselves return an error — once a function swallows the error
// internally, its callers have nothing left to drop.
package errdrop

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/facts"
)

var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc: "flag discarded errors from exec/bus/flightrec write paths\n\n" +
		"Errors returned by the actuation and recording packages carry\n" +
		"failures the maintenance loop must observe; discarding one (as a\n" +
		"bare call statement, a _ assignment, or a go/defer call) needs an\n" +
		"explicit //lint:allow errdrop reason.",
	Run:           run,
	FactCollector: collect,
}

// writePkgs names the packages whose error returns are write-path losses
// when dropped.
var writePkgs = map[string]bool{"bus": true, "exec": true, "flightrec": true}

// writePathCallee resolves call to a named function or method from a write
// package that returns an error, yielding its display name ("flightrec.Close").
func writePathCallee(info *types.Info, call *ast.CallExpr) (string, bool) {
	fun := ast.Unparen(call.Fun)
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ix.X
	case *ast.IndexListExpr:
		fun = ix.X
	}
	var fn *types.Func
	switch f := fun.(type) {
	case *ast.Ident:
		fn, _ = info.Uses[f].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = info.Uses[f.Sel].(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil || !writePkgs[fn.Pkg().Name()] {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !returnsError(sig) {
		return "", false
	}
	return fn.Pkg().Name() + "." + fn.Name(), true
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), types.Universe.Lookup("error").Type()) {
			return true
		}
	}
	return false
}

// collect emits a WritePathError origin at every call of a write-package
// error-returning function whose error is NOT discarded at the site — the
// enclosing function is forwarding (or at least observing) the error, so
// its own error result inherits the write-path provenance. Discarding
// sites are the diagnostics, not the origins. The fact layer's
// needsErrorReturn gate drops origins in functions without an error result.
func collect(pkg *facts.PkgInfo) []facts.Origin {
	drop := discardedCalls(pkg.Files)
	var out []facts.Origin
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, dropped := drop[call]; dropped {
				return true
			}
			if name, ok := writePathCallee(pkg.Info, call); ok {
				out = append(out, facts.Origin{Kind: facts.WritePathError, Pos: call.Pos(), Desc: name})
			}
			return true
		})
	}
	return out
}

func run(pass *analysis.Pass) (any, error) {
	// Iterate files (not the map) so report order is position-stable.
	drop := discardedCalls(pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			how, dropped := drop[call]
			if !dropped {
				return true
			}
			if name, ok := writePathCallee(pass.TypesInfo, call); ok {
				pass.Reportf(call.Pos(),
					"%s error discarded %s: write-path failures must be handled (or annotate //lint:allow errdrop <reason>)",
					name, how)
				return true
			}
			// The callee must return an error for there to be anything to
			// drop; a void helper that handled the error internally is fine.
			if !callReturnsError(pass.TypesInfo, call) {
				return true
			}
			if fact, ok := pass.Facts.CallFact(call, facts.WritePathError); ok {
				pass.ReportTransitive(call, fact,
					"discarded error originates from a write path: handle it or annotate //lint:allow errdrop <reason>")
			}
			return true
		})
	}
	return nil, nil
}

// callReturnsError reports whether the call's result tuple includes an
// error.
func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if types.Identical(tup.At(i).Type(), errType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errType)
}

// discardedCalls maps each call whose error result is discarded to a short
// description of how: a bare expression statement, a `_ =` assignment in
// the error position, or a go/defer statement (whose results are always
// dropped).
func discardedCalls(files []*ast.File) map[*ast.CallExpr]string {
	out := make(map[*ast.CallExpr]string)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					out[call] = "by a bare call statement"
				}
			case *ast.GoStmt:
				out[s.Call] = "by a go statement"
			case *ast.DeferStmt:
				out[s.Call] = "by a defer statement"
			case *ast.AssignStmt:
				if call, ok := blankAssignedCall(s); ok {
					out[call] = "into the blank identifier"
				}
			}
			return true
		})
	}
	return out
}

// blankAssignedCall matches assignments whose RHS is a single call and
// whose LHS drops every result into `_` (the common `_ = w.Flush()` shape;
// a mixed `v, _ :=` keeps some results and is treated as observed, since
// which position holds the error is a type-level question the want-simple
// syntax check stays away from).
func blankAssignedCall(s *ast.AssignStmt) (*ast.CallExpr, bool) {
	if len(s.Rhs) != 1 {
		return nil, false
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	for _, l := range s.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok || id.Name != "_" {
			return nil, false
		}
	}
	return call, true
}
