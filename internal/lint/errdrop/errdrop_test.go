package errdrop_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/errdrop"
)

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, "testdata", errdrop.Analyzer, "det/errdrop")
}
