// Package flightrec is a stub of repro/internal/flightrec for the errdrop
// testdata: the analyzer matches write packages by name, so this stub
// stands in for the real recorder.
package flightrec

type Recorder struct{}

func (r *Recorder) Append(ev string) error { return nil }
func (r *Recorder) Close() error           { return nil }
