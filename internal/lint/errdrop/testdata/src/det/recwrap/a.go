// Package recwrap forwards recorder errors to its caller; the
// WritePathError fact it exports flags callers that drop them.
package recwrap

import "det/flightrec"

// Flush closes the recorder and returns its error.
func Flush(r *flightrec.Recorder) error {
	return r.Close()
}
