// Package errdrop exercises the errdrop analyzer: every way of discarding
// a write-path error is flagged, error-forwarding helpers taint their
// callers through WritePathError facts, and helpers that swallow the error
// internally leave their callers clean.
package errdrop

import (
	"det/flightrec"
	"det/recwrap"
)

func flagged(r *flightrec.Recorder) {
	r.Append("ev")    // want `flightrec\.Append error discarded by a bare call statement`
	_ = r.Close()     // want `flightrec\.Close error discarded into the blank identifier`
	defer r.Close()   // want `flightrec\.Close error discarded by a defer statement`
	go r.Append("bg") // want `flightrec\.Append error discarded by a go statement`
}

func forward(r *flightrec.Recorder) error {
	return r.Append("fwd")
}

func transitive(r *flightrec.Recorder) {
	_ = forward(r)       // want `discarded error originates from a write path.*\(via transitive → forward → flightrec\.Append at errdrop/a\.go:\d+\)`
	_ = recwrap.Flush(r) // want `discarded error originates from a write path.*\(via transitive → Flush → flightrec\.Close at recwrap/a\.go:\d+\)`
}

func handled(r *flightrec.Recorder) error {
	if err := r.Append("ok"); err != nil {
		return err
	}
	return r.Close()
}

func swallowed(r *flightrec.Recorder) {
	if err := r.Append("logged"); err != nil {
		_ = err // the helper observes the error itself: no fact survives
	}
}

func callsSwallowed(r *flightrec.Recorder) {
	swallowed(r) // void helper: there is no error left to drop
}

func allowed(r *flightrec.Recorder) {
	r.Append("best-effort") //lint:allow errdrop shutdown path tolerates a lost trailer
	_ = forward(r)          //lint:allow errdrop replay smoke test only cares about liveness
}
