package allow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/lint/allow"
	"repro/internal/lint/analysis"
)

var known = map[string]bool{"wallclock": true, "mapiter": true}

// build parses src as one file and indexes its directives.
func build(t *testing.T, src string) (*token.FileSet, *allow.Index) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, allow.Build(fset, []*ast.File{f}, known)
}

func TestWellFormed(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //lint:allow wallclock bench timing is wall time by definition
}
`
	_, ix := build(t, src)
	if len(ix.Problems) != 0 {
		t.Fatalf("problems: %v", ix.Problems)
	}
	if len(ix.Directives) != 1 {
		t.Fatalf("got %d directives, want 1", len(ix.Directives))
	}
	d := ix.Directives[0]
	if d.Analyzer != "wallclock" || d.Reason != "bench timing is wall time by definition" {
		t.Fatalf("parsed %q / %q", d.Analyzer, d.Reason)
	}
}

func TestCoversOwnAndNextLine(t *testing.T) {
	src := `package p

func f() {
	//lint:allow wallclock standalone directive above the line
	_ = 1
	_ = 2
}
`
	fset, ix := build(t, src)
	at := func(line int) token.Pos { return lineStart(fset, line) }
	if !ix.Allowed("wallclock", fset, at(4)) {
		t.Error("directive does not cover its own line")
	}
	if !ix.Allowed("wallclock", fset, at(5)) {
		t.Error("directive does not cover the next line")
	}
	if ix.Allowed("wallclock", fset, at(6)) {
		t.Error("directive leaks past the next line")
	}
	if ix.Allowed("mapiter", fset, at(5)) {
		t.Error("directive suppresses an analyzer it does not name")
	}
}

func TestMultipleDirectivesOneLine(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //lint:allow wallclock timing //lint:allow mapiter unordered sink
}
`
	_, ix := build(t, src)
	// go/ast keeps the trailing comment as ONE comment whose text contains
	// both markers; only the leading directive parses. That is deliberate:
	// one line, one argued suppression.
	if len(ix.Directives) != 1 {
		t.Fatalf("got %d directives, want 1 (second marker is part of the first reason)", len(ix.Directives))
	}
	d := ix.Directives[0]
	if d.Analyzer != "wallclock" {
		t.Fatalf("parsed analyzer %q", d.Analyzer)
	}
	if !strings.Contains(d.Reason, "mapiter") {
		t.Fatalf("reason %q should swallow the rest of the line", d.Reason)
	}
	// Two separate comment groups on consecutive lines DO stack coverage.
	src2 := `package p

func f() {
	//lint:allow wallclock timing
	//lint:allow mapiter unordered sink
	_ = 1
}
`
	fset2, ix2 := build(t, src2)
	if len(ix2.Directives) != 2 {
		t.Fatalf("got %d directives, want 2", len(ix2.Directives))
	}
	if !ix2.Allowed("wallclock", fset2, lineStart(fset2, 5)) || !ix2.Allowed("mapiter", fset2, lineStart(fset2, 6)) {
		t.Error("stacked directives do not cover their lines")
	}
}

func TestMalformed(t *testing.T) {
	src := `package p

//lint:allow
//lint:allow wallclock
//lint:allow nosuchanalyzer because reasons
//lint:allowfoo not ours at all
var x = 1
`
	_, ix := build(t, src)
	if len(ix.Directives) != 0 {
		t.Fatalf("malformed directives were indexed: %+v", ix.Directives[0])
	}
	var msgs []string
	for _, p := range ix.Problems {
		msgs = append(msgs, p.Message)
	}
	wantSubstr := []string{
		"missing analyzer name",
		"needs a reason",
		`unknown analyzer "nosuchanalyzer"`,
	}
	if len(msgs) != len(wantSubstr) {
		t.Fatalf("got %d problems %v, want %d", len(msgs), msgs, len(wantSubstr))
	}
	for _, want := range wantSubstr {
		found := false
		for _, m := range msgs {
			if strings.Contains(m, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no problem mentions %q in %v", want, msgs)
		}
	}
}

func TestFilterMarksUsedAndStale(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //lint:allow wallclock used by the diagnostic below
	_ = 2 //lint:allow mapiter never fires
}
`
	fset, ix := build(t, src)
	diags := []analysis.Diagnostic{{Pos: lineStart(fset, 4), Message: "tick"}}
	kept := ix.Filter("wallclock", fset, diags)
	if len(kept) != 0 {
		t.Fatalf("diagnostic not suppressed: %v", kept)
	}
	stale := ix.Stale()
	if len(stale) != 1 || stale[0].Analyzer != "mapiter" {
		t.Fatalf("stale = %+v, want the unused mapiter directive", stale)
	}
}

func TestMarkUsedReplaysCacheRecords(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //lint:allow wallclock suppressed a fact last run
}
`
	_, ix := build(t, src)
	d := ix.Directives[0]
	ix.MarkUsed("wallclock", d.File, d.Line)
	if len(ix.Stale()) != 0 {
		t.Fatal("replayed usage did not clear staleness")
	}
	// Replays for lines nothing covers are a no-op, not a panic.
	ix.MarkUsed("wallclock", d.File, d.Line+10)
	ix.MarkUsed("mapiter", d.File, d.Line)
}

// lineStart returns a Pos on the given 1-based line of the single test file.
func lineStart(fset *token.FileSet, line int) token.Pos {
	var pos token.Pos
	fset.Iterate(func(f *token.File) bool {
		pos = f.LineStart(line)
		return false
	})
	return pos
}
