// Package allow implements the //lint:allow suppression directive shared by
// the selfmaintlint driver and the analysistest harness.
//
// Syntax:
//
//	//lint:allow <analyzer> <reason...>
//
// A directive suppresses diagnostics of the named analyzer on the
// directive's own line and on the line immediately below it, so it works
// both as a trailing comment on the offending line and as a standalone
// comment line above it. The reason is mandatory: an allow that does not
// say why it is safe is itself a finding.
package allow

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/lint/analysis"
)

// Prefix is the directive marker. Like //go: directives there is no space
// after the slashes.
const Prefix = "//lint:allow"

// Index records every well-formed directive of one package and every
// malformed one (as a ready-to-report diagnostic).
type Index struct {
	// lines maps analyzer name -> filename -> set of suppressed lines.
	lines map[string]map[string]map[int]bool
	// Problems are malformed or unknown-analyzer directives.
	Problems []analysis.Diagnostic
}

// Build scans the comments of files for directives. known is the set of
// valid analyzer names; a directive naming anything else is a problem, so
// typos cannot silently suppress nothing.
func Build(fset *token.FileSet, files []*ast.File, known map[string]bool) *Index {
	ix := &Index{lines: make(map[string]map[string]map[int]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, Prefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, Prefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // some other //lint:allowfoo token, not ours
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					ix.problemf(c.Pos(), "malformed %s directive: missing analyzer name", Prefix)
				case !known[fields[0]]:
					ix.problemf(c.Pos(), "%s names unknown analyzer %q", Prefix, fields[0])
				case len(fields) == 1:
					ix.problemf(c.Pos(), "%s %s needs a reason", Prefix, fields[0])
				default:
					pos := fset.Position(c.Pos())
					ix.add(fields[0], pos.Filename, pos.Line)
					ix.add(fields[0], pos.Filename, pos.Line+1)
				}
			}
		}
	}
	return ix
}

func (ix *Index) problemf(pos token.Pos, format string, args ...any) {
	ix.Problems = append(ix.Problems, analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

func (ix *Index) add(name, file string, line int) {
	byFile := ix.lines[name]
	if byFile == nil {
		byFile = make(map[string]map[int]bool)
		ix.lines[name] = byFile
	}
	lines := byFile[file]
	if lines == nil {
		lines = make(map[int]bool)
		byFile[file] = lines
	}
	lines[line] = true
}

// Allowed reports whether a diagnostic from analyzer name at pos is
// suppressed by a directive.
func (ix *Index) Allowed(name string, fset *token.FileSet, pos token.Pos) bool {
	byFile := ix.lines[name]
	if byFile == nil {
		return false
	}
	p := fset.Position(pos)
	return byFile[p.Filename][p.Line]
}

// Filter returns the diagnostics of analyzer name not suppressed by ix.
func (ix *Index) Filter(name string, fset *token.FileSet, diags []analysis.Diagnostic) []analysis.Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		if !ix.Allowed(name, fset, d.Pos) {
			kept = append(kept, d)
		}
	}
	return kept
}
