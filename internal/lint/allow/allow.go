// Package allow implements the //lint:allow suppression directive shared by
// the selfmaintlint driver and the analysistest harness.
//
// Syntax:
//
//	//lint:allow <analyzer> <reason...>
//
// A directive suppresses diagnostics of the named analyzer on the
// directive's own line and on the line immediately below it, so it works
// both as a trailing comment on the offending line and as a standalone
// comment line above it. The reason is mandatory: an allow that does not
// say why it is safe is itself a finding.
//
// A directive also suppresses the named analyzer's interprocedural facts
// at the same lines — at a fact origin it stops the fact from ever being
// created, and at a call site it prunes propagation through that edge —
// so one reasoned allow silences the whole subtree of transitive findings
// it argues for. Every suppression (diagnostic or fact) marks the
// directive used; cmd/selfmaintlint -stale reports the ones that never
// fire, so dead suppressions cannot accumulate.
package allow

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/lint/analysis"
)

// Prefix is the directive marker. Like //go: directives there is no space
// after the slashes.
const Prefix = "//lint:allow"

// Directive is one well-formed //lint:allow, tracked for -stale.
type Directive struct {
	Analyzer string
	Reason   string
	Pos      token.Pos
	File     string
	Line     int
	Used     bool
}

// Index records every well-formed directive of one package and every
// malformed one (as a ready-to-report diagnostic).
type Index struct {
	// lines maps analyzer name -> filename -> line -> directives covering
	// that line (a directive covers its own line and the next).
	lines map[string]map[string]map[int][]*Directive
	// Directives lists every well-formed directive in file order.
	Directives []*Directive
	// Problems are malformed or unknown-analyzer directives.
	Problems []analysis.Diagnostic
}

// Build scans the comments of files for directives. known is the set of
// valid analyzer names; a directive naming anything else is a problem, so
// typos cannot silently suppress nothing.
func Build(fset *token.FileSet, files []*ast.File, known map[string]bool) *Index {
	ix := &Index{lines: make(map[string]map[string]map[int][]*Directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, Prefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, Prefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // some other //lint:allowfoo token, not ours
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					ix.problemf(c.Pos(), "malformed %s directive: missing analyzer name", Prefix)
				case !known[fields[0]]:
					ix.problemf(c.Pos(), "%s names unknown analyzer %q", Prefix, fields[0])
				case len(fields) == 1:
					ix.problemf(c.Pos(), "%s %s needs a reason", Prefix, fields[0])
				default:
					pos := fset.Position(c.Pos())
					d := &Directive{
						Analyzer: fields[0],
						Reason:   strings.Join(fields[1:], " "),
						Pos:      c.Pos(),
						File:     pos.Filename,
						Line:     pos.Line,
					}
					ix.Directives = append(ix.Directives, d)
					ix.add(d, pos.Line)
					ix.add(d, pos.Line+1)
				}
			}
		}
	}
	return ix
}

func (ix *Index) problemf(pos token.Pos, format string, args ...any) {
	ix.Problems = append(ix.Problems, analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

func (ix *Index) add(d *Directive, line int) {
	byFile := ix.lines[d.Analyzer]
	if byFile == nil {
		byFile = make(map[string]map[int][]*Directive)
		ix.lines[d.Analyzer] = byFile
	}
	lines := byFile[d.File]
	if lines == nil {
		lines = make(map[int][]*Directive)
		byFile[d.File] = lines
	}
	lines[line] = append(lines[line], d)
}

// Allowed reports whether a diagnostic from analyzer name at pos is
// suppressed by a directive, marking every covering directive used.
func (ix *Index) Allowed(name string, fset *token.FileSet, pos token.Pos) bool {
	byFile := ix.lines[name]
	if byFile == nil {
		return false
	}
	p := fset.Position(pos)
	ds := byFile[p.Filename][p.Line]
	for _, d := range ds {
		d.Used = true
	}
	return len(ds) > 0
}

// MarkUsed marks the directives of analyzer covering file:line as used.
// The driver replays fact-cache usage records through this on a cache hit,
// where the suppression that consumed the directive does not re-run.
func (ix *Index) MarkUsed(analyzer, file string, line int) {
	for _, d := range ix.lines[analyzer][file][line] {
		d.Used = true
	}
}

// Filter returns the diagnostics of analyzer name not suppressed by ix.
func (ix *Index) Filter(name string, fset *token.FileSet, diags []analysis.Diagnostic) []analysis.Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		if !ix.Allowed(name, fset, d.Pos) {
			kept = append(kept, d)
		}
	}
	return kept
}

// Stale returns the directives that never suppressed a diagnostic or a
// fact during the run, in file order — dead weight the -stale gate fails
// the build on.
func (ix *Index) Stale() []*Directive {
	var out []*Directive
	for _, d := range ix.Directives {
		if !d.Used {
			out = append(out, d)
		}
	}
	return out
}
