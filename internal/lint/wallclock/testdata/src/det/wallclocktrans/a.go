// Package wallclocktrans exercises the interprocedural side of the
// wallclock analyzer: the clock read hides in a helper — same-package or
// imported — and the caller is flagged at the call with the chain down to
// the time.Now site.
package wallclocktrans

import (
	"time"

	"harness/clockhelp"
)

func readClock() int64 {
	return time.Now().UnixNano() // want `time\.Now must not read the wall clock in deterministic package det/wallclocktrans`
}

func viaMid() int64 {
	return readClock() // want `call reaches the wall clock in deterministic package det/wallclocktrans.*\(via viaMid → readClock → time\.Now at wallclocktrans/a\.go:\d+\)`
}

func tick() int64 {
	a := viaMid()          // want `call reaches the wall clock.*\(via tick → viaMid → readClock → time\.Now at wallclocktrans/a\.go:\d+\)`
	b := clockhelp.Stamp() // want `call reaches the wall clock.*\(via tick → Stamp → time\.Now at clockhelp/a\.go:\d+\)`
	return a + b
}

func allowedCall() int64 {
	return clockhelp.Stamp() //lint:allow wallclock replay harness timestamps the transcript header
}

func prunedHelper() int64 {
	//lint:allow wallclock startup calibration runs once before the simulation
	return time.Now().UnixNano()
}

func callsPruned() int64 {
	return prunedHelper() // the allow above killed the fact: callers stay clean
}
