// Package wallclock is deterministic (it lives under det/), so every host
// clock read below must be flagged unless an allow directive covers it.
package wallclock

import "time"

type engine struct{ now int64 }

func (e *engine) Now() int64 { return e.now }

func bad() {
	_ = time.Now()                  // want `time\.Now must not read the wall clock`
	t0 := time.Now()                // want `time\.Now must not read the wall clock`
	_ = time.Since(t0)              // want `time\.Since must not read the wall clock`
	time.Sleep(time.Millisecond)    // want `time\.Sleep must not block on host time`
	_ = time.After(time.Second)     // want `time\.After must not block on host time`
	_ = time.NewTicker(time.Second) // want `time\.NewTicker must not start a host-time ticker`
	f := time.Now                   // want `time\.Now must not read the wall clock`
	_ = f
}

func good(e *engine) {
	_ = e.Now()                        // virtual clock: fine
	_ = time.Duration(3) * time.Second // pure value arithmetic: fine
	_ = time.Unix(0, e.Now())          // construction from virtual time: fine
}

func allowed() {
	//lint:allow wallclock harness wall-timing for the bench artifact
	t0 := time.Now()
	_ = time.Since(t0) //lint:allow wallclock harness wall-timing for the bench artifact
}
