// Package clockhelp is harness-side helper code: reading the clock here
// is legal locally, but the ReachesWallClock fact it exports means any
// deterministic caller is flagged at its call site.
package clockhelp

import "time"

// Stamp returns the host wall-clock time in nanoseconds.
func Stamp() int64 {
	return time.Now().UnixNano()
}
