// Package wallclock lives outside the det/ namespace, so it models harness
// code: wall-clock reads are legal and nothing here is flagged.
package wallclock

import "time"

func harness() time.Duration {
	t0 := time.Now()
	time.Sleep(time.Millisecond)
	return time.Since(t0)
}
