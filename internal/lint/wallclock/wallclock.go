// Package wallclock forbids reading the host's wall clock from
// deterministic packages. A single time.Now in simulation code makes runs
// diverge between machines and between repetitions, which silently breaks
// the byte-identical fixed-seed guarantee every golden test relies on;
// virtual time must come from sim.Engine instead. Harness instrumentation
// that genuinely measures host wall time (the experiment bench timings)
// carries a //lint:allow wallclock directive with its reason.
package wallclock

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/determinism"
)

// forbidden lists the package-level names of the time package that observe
// or depend on the host clock. Pure-value helpers (time.Duration
// arithmetic, time.Unix construction, parsing) stay legal.
var forbidden = map[string]string{
	"Now":       "read the wall clock",
	"Since":     "read the wall clock",
	"Until":     "read the wall clock",
	"Sleep":     "block on host time",
	"After":     "block on host time",
	"Tick":      "tick on host time",
	"NewTimer":  "start a host-time timer",
	"NewTicker": "start a host-time ticker",
	"AfterFunc": "start a host-time timer",
}

var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid wall-clock time in deterministic packages\n\n" +
		"Simulation code must derive time from sim.Engine's virtual clock; " +
		"time.Now and friends make fixed-seed runs irreproducible.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if !determinism.Deterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			what, bad := forbidden[fn.Name()]
			if !bad {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s must not %s in deterministic package %s; use the sim.Engine virtual clock",
				fn.Name(), what, pass.Pkg.Path())
			return true
		})
	}
	return nil, nil
}
