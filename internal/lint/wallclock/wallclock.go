// Package wallclock forbids reading the host's wall clock from
// deterministic packages. A single time.Now in simulation code makes runs
// diverge between machines and between repetitions, which silently breaks
// the byte-identical fixed-seed guarantee every golden test relies on;
// virtual time must come from sim.Engine instead. Harness instrumentation
// that genuinely measures host wall time (the experiment bench timings)
// carries a //lint:allow wallclock directive with its reason.
//
// The check is interprocedural: the fact collector marks every function —
// in any package — that reaches a forbidden time call, the fact layer
// propagates the mark up the call graph, and deterministic packages are
// then flagged both at direct uses and at calls into helpers that reach
// the clock transitively, with the call chain in the diagnostic.
package wallclock

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/determinism"
	"repro/internal/lint/facts"
)

// forbidden lists the package-level names of the time package that observe
// or depend on the host clock. Pure-value helpers (time.Duration
// arithmetic, time.Unix construction, parsing) stay legal.
var forbidden = map[string]string{
	"Now":       "read the wall clock",
	"Since":     "read the wall clock",
	"Until":     "read the wall clock",
	"Sleep":     "block on host time",
	"After":     "block on host time",
	"Tick":      "tick on host time",
	"NewTimer":  "start a host-time timer",
	"NewTicker": "start a host-time ticker",
	"AfterFunc": "start a host-time timer",
}

var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid wall-clock time in deterministic packages\n\n" +
		"Simulation code must derive time from sim.Engine's virtual clock; " +
		"time.Now and friends make fixed-seed runs irreproducible, including " +
		"through transitive calls into helper packages.",
	Run:           run,
	FactCollector: collect,
}

// sites invokes fn for every forbidden time-package use in the files.
func sites(info *types.Info, files []*ast.File, fn func(sel *ast.SelectorExpr, name string)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if _, bad := forbidden[obj.Name()]; bad {
				fn(sel, obj.Name())
			}
			return true
		})
	}
}

// collect emits a ReachesWallClock origin for every forbidden use, in
// every package: harness code may read the clock locally, but a
// deterministic package calling into it must still be caught.
func collect(pkg *facts.PkgInfo) []facts.Origin {
	var out []facts.Origin
	sites(pkg.Info, pkg.Files, func(sel *ast.SelectorExpr, name string) {
		out = append(out, facts.Origin{Kind: facts.ReachesWallClock, Pos: sel.Pos(), Desc: "time." + name})
	})
	return out
}

func run(pass *analysis.Pass) (any, error) {
	if !determinism.Deterministic(pass.Pkg.Path()) {
		return nil, nil
	}
	sites(pass.TypesInfo, pass.Files, func(sel *ast.SelectorExpr, name string) {
		pass.Reportf(sel.Pos(),
			"time.%s must not %s in deterministic package %s; use the sim.Engine virtual clock",
			name, forbidden[name], pass.Pkg.Path())
	})
	reported := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || reported[call.Pos()] {
				return true
			}
			if fact, ok := pass.Facts.CallFact(call, facts.ReachesWallClock); ok {
				reported[call.Pos()] = true
				pass.ReportTransitive(call, fact,
					"call reaches the wall clock in deterministic package %s; use the sim.Engine virtual clock",
					pass.Pkg.Path())
			}
			return true
		})
	}
	return nil, nil
}
