// Package determinism declares which packages of this repository must be
// byte-reproducible for a fixed seed. The selfmaintlint analyzers consult
// this single list, so adding a package to the deterministic core is a
// one-line change here rather than a per-analyzer edit.
package determinism

import "strings"

// deterministic is the set of package-path prefixes whose code runs inside
// the fixed-seed simulation. Everything under repro/internal plus the
// public selfmaint façade is deterministic; cmd/ and examples/ are harness
// and daemon code, free to read the wall clock.
//
// The "det/" namespace is reserved for analyzer testdata: analysistest
// packages opt into the deterministic rules by living under it.
var deterministic = []string{
	"repro/internal/",
	"repro/selfmaint",
	"det/",
}

// Deterministic reports whether the package at path must uphold the
// fixed-seed reproducibility invariants (no wall clock, no global RNG, no
// unsorted map iteration on output paths).
func Deterministic(path string) bool {
	for _, p := range deterministic {
		if path == strings.TrimSuffix(p, "/") || strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}
