// Package busreentry flags bus calls made from inside a bus handler. The
// PR 2 re-entrancy bug — a tap created during delivery receiving the event
// already in flight — came exactly from this shape: a func literal passed
// to Subscribe/Tap that itself called back into the bus. The bus has
// defined re-entrancy semantics now, but every such site changes delivery
// ordering in ways that are easy to get wrong, so each one must either be
// restructured (schedule the follow-up through the engine) or carry a
// //lint:allow busreentry directive saying why the nesting is intended.
//
// Handler scanning is lexical — only func literals passed directly at the
// registration site are checked, not named handler functions (those are
// assumed to be reviewed entry points) — but what the literal's body does
// is checked interprocedurally: every reentrant bus call seeds a Publishes
// fact, so a handler that publishes through a helper two calls deep is
// flagged at the call with the chain down to the Bus.Publish.
package busreentry

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/facts"
)

var Analyzer = &analysis.Analyzer{
	Name: "busreentry",
	Doc: "flag re-entrant bus calls inside handler literals\n\n" +
		"Publishing or (un)subscribing from within a handler passed to\n" +
		"Bus.Subscribe or Bus.Tap nests deliveries; each such site needs\n" +
		"review (the PR 2 bug class).",
	Run:           run,
	FactCollector: collect,
}

// registration describes how each Bus method receives its handler.
var handlerArg = map[string]int{
	"Subscribe": 1, // Subscribe(topic, fn)
	"Tap":       0, // Tap(fn)
}

// reentrant lists the Bus methods that are delivery-affecting when called
// mid-delivery. Cancel is excluded: the bus defines cancel-mid-delivery
// exactly (the subscriber receives nothing further).
var reentrant = map[string]bool{
	"Publish":   true,
	"Subscribe": true,
	"Tap":       true,
}

// collect emits a Publishes origin for every delivery-affecting bus call,
// in every package; the fact also feeds lockguard's held-across-Publish
// check.
func collect(pkg *facts.PkgInfo) []facts.Origin {
	var out []facts.Origin
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := BusMethod(pkg.Info, call); ok && reentrant[name] {
				out = append(out, facts.Origin{Kind: facts.Publishes, Pos: call.Pos(), Desc: "Bus." + name})
			}
			return true
		})
	}
	return out
}

func run(pass *analysis.Pass) (any, error) {
	reported := make(map[*ast.CallExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := BusMethod(pass.TypesInfo, call)
			if !ok {
				return true
			}
			argIdx, ok := handlerArg[name]
			if !ok || len(call.Args) <= argIdx {
				return true
			}
			lit, ok := call.Args[argIdx].(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit.Body, func(inner ast.Node) bool {
				ic, ok := inner.(*ast.CallExpr)
				if !ok || reported[ic] {
					return true
				}
				if iname, ok := BusMethod(pass.TypesInfo, ic); ok {
					if reentrant[iname] {
						reported[ic] = true
						pass.Reportf(ic.Pos(),
							"Bus.%s called inside a handler passed to Bus.%s: re-entrant bus calls nest deliveries (the PR 2 bug class); "+
								"schedule the follow-up via the engine or annotate //lint:allow busreentry <reason>",
							iname, name)
					}
					return true
				}
				if fact, ok := pass.Facts.CallFact(ic, facts.Publishes); ok {
					reported[ic] = true
					pass.ReportTransitive(ic, fact,
						"call re-enters the bus from inside a handler passed to Bus.%s: nested deliveries (the PR 2 bug class); "+
							"schedule the follow-up via the engine", name)
				}
				return true
			})
			return true
		})
	}
	return nil, nil
}

// BusMethod reports the method name when call invokes a method on the bus
// package's Bus type (matched by package name and type name, so analyzer
// testdata stubs qualify alongside repro/internal/bus).
func BusMethod(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Name() != "Bus" || obj.Pkg() == nil || obj.Pkg().Name() != "bus" {
		return "", false
	}
	return fn.Name(), true
}
