// Package pubhelp is a helper package that publishes on behalf of its
// caller; the Publishes fact it exports lets busreentry flag handlers
// that re-enter the bus through it.
package pubhelp

import "det/bus"

// Republish forwards an event back onto the bus.
func Republish(b *bus.Bus, ev bus.Event) {
	b.Publish("replayed", ev.Payload)
}
