package busreentry

import "det/bus"

func flagged(b *bus.Bus) {
	b.Subscribe("link.down", func(ev bus.Event) {
		b.Publish("repair.queued", ev.Payload) // want `Bus\.Publish called inside a handler passed to Bus\.Subscribe`
	})
	b.Tap(func(ev bus.Event) {
		b.Subscribe("late", func(bus.Event) {}) // want `Bus\.Subscribe called inside a handler passed to Bus\.Tap`
	})
	b.Subscribe("outer", func(ev bus.Event) {
		other := &bus.Bus{}
		other.Tap(func(bus.Event) {}) // want `Bus\.Tap called inside a handler passed to Bus\.Subscribe`
	})
}

func cancelIsFine(b *bus.Bus) {
	var sub *bus.Subscription
	sub = b.Subscribe("once", func(ev bus.Event) {
		sub.Cancel() // cancel-mid-delivery has defined semantics: not flagged
	})
}

func namedHandlersNotTraced(b *bus.Bus) {
	// The check is lexical: a named function registered as a handler is a
	// reviewed entry point, not an anonymous capture.
	b.Subscribe("named", relay(b))
}

func relay(b *bus.Bus) bus.Handler {
	return func(ev bus.Event) { forward(b, ev) }
}

func forward(b *bus.Bus, ev bus.Event) {
	b.Publish("forwarded", ev.Payload) // not lexically inside a registration literal
}

func allowed(b *bus.Bus) {
	b.Subscribe("chain", func(ev bus.Event) {
		//lint:allow busreentry pipeline stage hand-off is publish-ordered by design
		b.Publish("next", ev.Payload)
	})
}
