// Package busreentrytrans exercises the interprocedural side of the
// busreentry analyzer: the publish hides in a helper — same-package or
// imported — and the handler is flagged at the helper call with the chain
// down to the Bus.Publish site.
package busreentrytrans

import (
	"det/bus"
	"det/pubhelp"
)

func fanout(b *bus.Bus, ev bus.Event) {
	b.Publish("fanout", ev.Payload) // not inside a handler: no direct finding
}

func flagged(b *bus.Bus) {
	b.Subscribe("link.down", func(ev bus.Event) {
		fanout(b, ev) // want `call re-enters the bus from inside a handler passed to Bus\.Subscribe.*\(via func@a\.go:\d+ → fanout → Bus\.Publish at busreentrytrans/a\.go:\d+\)`
	})
	b.Tap(func(ev bus.Event) {
		pubhelp.Republish(b, ev) // want `call re-enters the bus from inside a handler passed to Bus\.Tap.*\(via func@a\.go:\d+ → Republish → Bus\.Publish at pubhelp/a\.go:\d+\)`
	})
}

func allowed(b *bus.Bus) {
	b.Subscribe("chain", func(ev bus.Event) {
		pubhelp.Republish(b, ev) //lint:allow busreentry replay fan-out is publish-ordered by design
	})
}
