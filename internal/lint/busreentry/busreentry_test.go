package busreentry_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/busreentry"
)

func TestBusReentry(t *testing.T) {
	analysistest.Run(t, "testdata", busreentry.Analyzer, "det/busreentry", "det/busreentrytrans")
}
