// Package lockguard lints the concurrency seams of the tree: the few
// places (wire server, selfmaintd event ring, scenario runner timings)
// where real goroutines meet the otherwise single-threaded simulation.
//
// Three checks share the analyzer:
//
//  1. Guarded fields. A struct field annotated
//
//     events ring //selfmaint:guardedby mu
//
//     must only be read or written while the named sibling mutex is held
//     on the same receiver path (s.events requires s.mu). The lockset
//     analysis is intraprocedural and conservative: Lock/RLock adds the
//     rendered receiver expression, Unlock/RUnlock removes it, deferred
//     unlocks hold to function end, nested control flow cannot leak an
//     acquisition out of its branch, and function literals start empty
//     (they usually run later, on another goroutine's lockset).
//
//     One interprocedural convention is honored: a method whose name ends
//     in "Locked" is analyzed as if every sync.Mutex/RWMutex field of its
//     receiver were already held. The suffix is a contract — the caller
//     acquired the lock — and the guarded-field check trusts it rather
//     than forcing such helpers to be inlined or annotated line by line.
//     The contract's caller side is not verified; the suffix itself is the
//     audit trail.
//
//  2. Publish under lock. Bus deliveries run handlers synchronously, so
//     publishing with a mutex held hands every handler the lock's
//     critical section — re-entry deadlocks at worst, surprise lock-order
//     coupling at best. Flagged at direct Bus.Publish calls and, through
//     Publishes facts, at calls into helpers that publish transitively.
//
//  3. Blocking handlers. A handler literal passed to Bus.Subscribe or
//     Bus.Tap must not block: a channel send, receive, or lock
//     acquisition inside delivery stalls the whole bus. Direct channel
//     operations and sync calls are flagged lexically; helpers that block
//     are caught through Blocks facts with the chain to the operation
//     (spawning a goroutine is the sanctioned hand-off, so go statements
//     are skipped).
//
// Like the other analyzers, escape hatches are //lint:allow lockguard
// directives with reasons — the selfmaintd tap, for example, takes its
// ring lock inside a handler deliberately, because the publisher is the
// single-threaded engine loop.
package lockguard

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/busreentry"
	"repro/internal/lint/facts"
)

// Directive marks a struct field as guarded by a sibling mutex field.
const Directive = "//selfmaint:guardedby"

var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc: "check //selfmaint:guardedby fields, publish-under-lock, and blocking bus handlers\n\n" +
		"The concurrency seams are small and must stay auditable: guarded\n" +
		"fields only under their mutex, no bus publishes with a lock held,\n" +
		"no blocking operations inside handler literals.",
	Run:           run,
	FactCollector: collect,
}

// collect emits a Blocks origin for every blocking operation — channel
// sends and receives, sync lock acquisitions and waits — in every package,
// so a handler calling into a helper that blocks is caught at the call.
func collect(pkg *facts.PkgInfo) []facts.Origin {
	var out []facts.Origin
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SendStmt:
				out = append(out, facts.Origin{Kind: facts.Blocks, Pos: n.Arrow, Desc: "channel send"})
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					out = append(out, facts.Origin{Kind: facts.Blocks, Pos: n.Pos(), Desc: "channel receive"})
				}
			case *ast.CallExpr:
				switch name, _ := syncCall(pkg.Info, n); name {
				case "Lock", "RLock":
					out = append(out, facts.Origin{Kind: facts.Blocks, Pos: n.Pos(), Desc: renderRecv(pkg.Fset, n) + ".Lock"})
				case "Wait":
					out = append(out, facts.Origin{Kind: facts.Blocks, Pos: n.Pos(), Desc: renderRecv(pkg.Fset, n) + ".Wait"})
				}
			}
			return true
		})
	}
	return out
}

func run(pass *analysis.Pass) (any, error) {
	a := &lockAnalyzer{pass: pass, guarded: guardedFields(pass)}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				a.block(fd.Body.List, a.initialLockset(fd))
			}
		}
		// Function literals run on their caller's (often another
		// goroutine's) stack; analyze each with an empty lockset.
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				a.block(lit.Body.List, make(lockset))
			}
			return true
		})
	}
	checkHandlers(pass)
	return nil, nil
}

// guardedFields scans the package's struct declarations for annotated
// fields, returning field object -> lock field name. Annotations naming a
// non-existent sibling are reported immediately: a typo must not silently
// guard nothing.
func guardedFields(pass *analysis.Pass) map[types.Object]string {
	guarded := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			names := make(map[string]bool)
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					names[name.Name] = true
				}
			}
			for _, field := range st.Fields.List {
				lock, ok := guardDirective(field)
				if !ok {
					continue
				}
				if !names[lock] {
					pass.Reportf(field.Pos(), "%s %s names no sibling field of this struct", Directive, lock)
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guarded[obj] = lock
					}
				}
			}
			return true
		})
	}
	return guarded
}

// guardDirective extracts the lock name from a field's doc or line comment.
func guardDirective(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, Directive)
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) > 0 {
				return fields[0], true
			}
		}
	}
	return "", false
}

// lockset is the set of held locks, keyed by the rendered receiver
// expression of the acquiring call ("s.mu").
type lockset map[string]bool

func (ls lockset) clone() lockset {
	cp := make(lockset, len(ls))
	for k := range ls {
		cp[k] = true
	}
	return cp
}

// one returns a deterministic representative held lock for messages.
func (ls lockset) one() string {
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys[0]
}

type lockAnalyzer struct {
	pass    *analysis.Pass
	guarded map[types.Object]string
}

// initialLockset seeds a function body's lockset. Methods following the
// *Locked naming convention start with every sync mutex field of their
// receiver held — the suffix asserts the caller acquired them.
func (a *lockAnalyzer) initialLockset(fd *ast.FuncDecl) lockset {
	held := make(lockset)
	if !strings.HasSuffix(fd.Name.Name, "Locked") || fd.Recv == nil || len(fd.Recv.List) == 0 {
		return held
	}
	recv := fd.Recv.List[0]
	if len(recv.Names) == 0 {
		return held
	}
	obj := a.pass.TypesInfo.Defs[recv.Names[0]]
	if obj == nil {
		return held
	}
	st := receiverStruct(obj.Type())
	if st == nil {
		return held
	}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); isSyncLock(f.Type()) {
			held[recv.Names[0].Name+"."+f.Name()] = true
		}
	}
	return held
}

// receiverStruct resolves a method receiver type (possibly a pointer) to
// its struct definition.
func receiverStruct(t types.Type) *types.Struct {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

// isSyncLock reports whether t is sync.Mutex or sync.RWMutex.
func isSyncLock(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// block walks a statement list sequentially, threading the lockset through
// lock and unlock calls and checking every other statement's expressions.
func (a *lockAnalyzer) block(list []ast.Stmt, held lockset) {
	for _, stmt := range list {
		a.stmt(stmt, held)
	}
}

func (a *lockAnalyzer) stmt(s ast.Stmt, held lockset) {
	switch s := s.(type) {
	case nil:
		return
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			switch name, _ := syncCall(a.pass.TypesInfo, call); name {
			case "Lock", "RLock":
				held[renderRecv(a.pass.Fset, call)] = true
				return
			case "Unlock", "RUnlock":
				delete(held, renderRecv(a.pass.Fset, call))
				return
			}
		}
		a.expr(s.X, held)
	case *ast.DeferStmt:
		if name, _ := syncCall(a.pass.TypesInfo, s.Call); name == "Unlock" || name == "RUnlock" {
			return // deferred unlock: the lock is held to function end
		}
		a.expr(s.Call, held)
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the caller's locks; its
		// literal body is analyzed separately with an empty lockset.
		a.expr(s.Call, make(lockset))
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			a.expr(e, held)
		}
		for _, e := range s.Lhs {
			a.expr(e, held)
		}
	case *ast.DeclStmt, *ast.ReturnStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.LabeledStmt:
		a.exprsOf(s, held)
	case *ast.BlockStmt:
		a.block(s.List, held.clone())
	case *ast.IfStmt:
		a.stmt(s.Init, held)
		a.expr(s.Cond, held)
		a.block(s.Body.List, held.clone())
		if s.Else != nil {
			a.stmt(s.Else, held.clone())
		}
	case *ast.ForStmt:
		a.stmt(s.Init, held)
		a.expr(s.Cond, held)
		inner := held.clone()
		a.stmt(s.Post, inner)
		a.block(s.Body.List, inner)
	case *ast.RangeStmt:
		a.expr(s.X, held)
		a.block(s.Body.List, held.clone())
	case *ast.SwitchStmt:
		a.stmt(s.Init, held)
		a.expr(s.Tag, held)
		a.caseBodies(s.Body, held)
	case *ast.TypeSwitchStmt:
		a.stmt(s.Init, held)
		a.stmt(s.Assign, held)
		a.caseBodies(s.Body, held)
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if c, ok := cc.(*ast.CommClause); ok {
				inner := held.clone()
				a.stmt(c.Comm, inner)
				a.block(c.Body, inner)
			}
		}
	default:
		a.exprsOf(s, held)
	}
}

func (a *lockAnalyzer) caseBodies(body *ast.BlockStmt, held lockset) {
	for _, cc := range body.List {
		if c, ok := cc.(*ast.CaseClause); ok {
			for _, e := range c.List {
				a.expr(e, held)
			}
			a.block(c.Body, held.clone())
		}
	}
}

// exprsOf checks every expression directly under a statement the walker
// has no special handling for.
func (a *lockAnalyzer) exprsOf(s ast.Stmt, held lockset) {
	ast.Inspect(s, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok {
			a.expr(e, held)
			return false
		}
		return true
	})
}

// expr checks one expression tree against the current lockset: guarded
// field accesses must hold their mutex, and no call may publish to the bus
// while anything is held. Nested function literals are skipped — they are
// analyzed as their own empty-lockset bodies.
func (a *lockAnalyzer) expr(e ast.Expr, held lockset) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectorExpr:
			a.checkGuarded(n, held)
		case *ast.CallExpr:
			a.checkPublish(n, held)
		}
		return true
	})
}

// checkGuarded flags sel when it reads or writes an annotated field
// without its mutex in the lockset on the same receiver path.
func (a *lockAnalyzer) checkGuarded(sel *ast.SelectorExpr, held lockset) {
	s, ok := a.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	lock, ok := a.guarded[s.Obj()]
	if !ok {
		return
	}
	need := render(a.pass.Fset, sel.X) + "." + lock
	if held[need] {
		return
	}
	a.pass.Reportf(sel.Sel.Pos(),
		"field %s is annotated %s %s but is accessed without holding %s",
		s.Obj().Name(), Directive, lock, need)
}

// checkPublish flags bus publishes while any lock is held: direct
// Bus.Publish/Subscribe/Tap calls, and calls whose callee carries a
// Publishes fact.
func (a *lockAnalyzer) checkPublish(call *ast.CallExpr, held lockset) {
	if len(held) == 0 {
		return
	}
	if name, ok := busreentry.BusMethod(a.pass.TypesInfo, call); ok {
		if name == "Publish" || name == "Subscribe" || name == "Tap" {
			a.pass.Reportf(call.Pos(),
				"Bus.%s called while %s is held: deliveries run handlers synchronously inside the critical section; "+
					"release the lock first or annotate //lint:allow lockguard <reason>",
				name, held.one())
		}
		return
	}
	if fact, ok := a.pass.Facts.CallFact(call, facts.Publishes); ok {
		a.pass.ReportTransitive(call, fact,
			"call publishes to the bus while %s is held: deliveries run handlers synchronously inside the critical section",
			held.one())
	}
}

// checkHandlers flags blocking operations inside handler literals passed
// to Bus.Subscribe and Bus.Tap.
func checkHandlers(pass *analysis.Pass) {
	handlerArg := map[string]int{"Subscribe": 1, "Tap": 0}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := busreentry.BusMethod(pass.TypesInfo, call)
			if !ok {
				return true
			}
			argIdx, ok := handlerArg[name]
			if !ok || len(call.Args) <= argIdx {
				return true
			}
			lit, ok := call.Args[argIdx].(*ast.FuncLit)
			if !ok {
				return true
			}
			checkHandlerBody(pass, name, lit.Body)
			return true
		})
	}
}

func checkHandlerBody(pass *analysis.Pass, reg string, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// Spawning a goroutine is the sanctioned non-blocking hand-off.
			return false
		case *ast.SendStmt:
			pass.Reportf(n.Arrow,
				"channel send inside a handler passed to Bus.%s: handlers run synchronously inside Publish and must not block; "+
					"hand off via a goroutine or annotate //lint:allow lockguard <reason>", reg)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(),
					"channel receive inside a handler passed to Bus.%s: handlers run synchronously inside Publish and must not block; "+
						"hand off via a goroutine or annotate //lint:allow lockguard <reason>", reg)
			}
		case *ast.CallExpr:
			switch sc, _ := syncCall(pass.TypesInfo, n); sc {
			case "Lock", "RLock", "Wait":
				pass.Reportf(n.Pos(),
					"%s.%s inside a handler passed to Bus.%s: handlers run synchronously inside Publish and must not block; "+
						"hand off via a goroutine or annotate //lint:allow lockguard <reason>",
					renderRecv(pass.Fset, n), sc, reg)
				return true
			}
			if fact, ok := pass.Facts.CallFact(n, facts.Blocks); ok {
				pass.ReportTransitive(n, fact,
					"call blocks inside a handler passed to Bus.%s: handlers run synchronously inside Publish", reg)
			}
		}
		return true
	})
}

// syncCall reports the method name when call invokes a method of a sync
// package type (Mutex.Lock, RWMutex.RUnlock, WaitGroup.Wait, ...), and the
// receiver expression it was invoked on.
func syncCall(info *types.Info, call *ast.CallExpr) (string, ast.Expr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", nil
	}
	return fn.Name(), sel.X
}

// renderRecv renders the receiver expression of a sync method call ("s.mu").
func renderRecv(fset *token.FileSet, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "?"
	}
	return render(fset, sel.X)
}

// render prints an expression compactly for lockset keys and messages.
func render(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "?"
	}
	return buf.String()
}
