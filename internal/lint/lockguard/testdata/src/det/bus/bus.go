// Package bus is a stub of repro/internal/bus for the lockguard testdata:
// the analyzer matches the Bus type by package and type name, so this stub
// exercises it without importing the real simulation packages.
package bus

type Topic string

type Event struct {
	Topic   Topic
	Payload any
}

type Handler func(Event)

type Subscription struct{}

func (s *Subscription) Cancel() {}

type Bus struct{}

func (b *Bus) Subscribe(t Topic, fn Handler) *Subscription { return &Subscription{} }
func (b *Bus) Tap(fn Handler) *Subscription                { return &Subscription{} }
func (b *Bus) Publish(t Topic, payload any) Event          { return Event{Topic: t, Payload: payload} }
