// Package lockguard exercises the three lockguard checks: guarded-field
// access, publish-under-lock (direct and via a Publishes fact), and
// blocking bus handlers (direct and via a Blocks fact).
package lockguard

import (
	"sync"

	"det/blockhelp"
	"det/bus"
)

type server struct {
	mu sync.Mutex
	// events is the ring the tap handler appends to.
	events []string //selfmaint:guardedby mu
	b      *bus.Bus
}

func (s *server) flaggedAccess() int {
	return len(s.events) // want `field events is annotated //selfmaint:guardedby mu but is accessed without holding s\.mu`
}

func (s *server) lockedAccess() int {
	s.mu.Lock()
	n := len(s.events)
	s.mu.Unlock()
	return n
}

func (s *server) deferUnlock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

func (s *server) unlockThenTouch() {
	s.mu.Lock()
	s.mu.Unlock()
	s.events = nil // want `field events is annotated //selfmaint:guardedby mu but is accessed without holding s\.mu`
}

func (s *server) branchScoped(cond bool) {
	if cond {
		s.mu.Lock()
		s.events = append(s.events, "x")
		s.mu.Unlock()
	}
	s.events = nil // want `accessed without holding s\.mu`
}

func (s *server) otherReceiverPath(t *server) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t.events = nil // want `accessed without holding t\.mu`
}

func (s *server) publishUnderLock(ev string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.b.Publish("evt", ev) // want `Bus\.Publish called while s\.mu is held`
}

func (s *server) publishAfterUnlock(ev string) {
	s.mu.Lock()
	s.mu.Unlock()
	s.b.Publish("evt", ev)
}

func (s *server) publishViaHelper(ev string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	repost(s.b, ev) // want `call publishes to the bus while s\.mu is held.*\(via server\.publishViaHelper → repost → Bus\.Publish at lockguard/a\.go:\d+\)`
}

func repost(b *bus.Bus, ev string) {
	b.Publish("repost", ev)
}

func (s *server) allowedPublish(ev string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.b.Publish("evt", ev) //lint:allow lockguard handlers on this topic only read immutable payloads
}

func handlerChecks(b *bus.Bus, s *server, ch chan int) {
	b.Subscribe("t", func(ev bus.Event) {
		ch <- 1     // want `channel send inside a handler passed to Bus\.Subscribe`
		<-ch        // want `channel receive inside a handler passed to Bus\.Subscribe`
		s.mu.Lock() // want `s\.mu\.Lock inside a handler passed to Bus\.Subscribe`
		s.mu.Unlock()
		blockhelp.Drain(ch)     // want `call blocks inside a handler passed to Bus\.Subscribe.*\(via func@a\.go:\d+ → Drain → channel receive at blockhelp/a\.go:\d+\)`
		go func() { ch <- 2 }() // goroutine hand-off: the sanctioned non-blocking shape
	})
}

func allowedHandler(b *bus.Bus, s *server) {
	b.Tap(func(ev bus.Event) {
		//lint:allow lockguard the publisher is the single-threaded engine loop
		s.mu.Lock()
		s.events = append(s.events, "tap")
		s.mu.Unlock()
	})
}

// The *Locked suffix asserts the caller holds the receiver's mutexes, so
// guarded fields are accessible without a lexical Lock.
func (s *server) drainLocked() []string {
	out := s.events
	s.events = nil
	return out
}

// The contract covers the receiver only — other instances still need their
// own locks — and publish-under-lock still applies to the held set.
func (s *server) crossLocked(t *server, ev string) {
	t.events = nil         // want `accessed without holding t\.mu`
	s.b.Publish("evt", ev) // want `Bus\.Publish called while s\.mu is held`
}

// A bare "Locked" helper without a receiver gets no free lockset.
func notAMethodLocked(s *server) {
	s.events = nil // want `accessed without holding s\.mu`
}

type typo struct {
	mu sync.Mutex
	//selfmaint:guardedby mux
	state int // want `//selfmaint:guardedby mux names no sibling field of this struct`
}

func (t *typo) use() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}
