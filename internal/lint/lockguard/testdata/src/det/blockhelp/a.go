// Package blockhelp is helper code that blocks; the Blocks fact it
// exports flags bus handlers that call into it.
package blockhelp

// Drain blocks on a channel receive.
func Drain(ch chan int) int {
	return <-ch
}
