// Package analysistest runs one analyzer over GOPATH-style testdata
// packages and checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest closely enough that the
// analyzer tests would port to the upstream harness unchanged.
//
// Expectations are written on the line the diagnostic is reported at:
//
//	time.Sleep(d) // want `wall clock`
//
// The argument is a regular expression in backquotes or a double-quoted Go
// string; several patterns on one line expect several diagnostics. Patterns
// match the rendered diagnostic — message plus " (via a → b → ...)" call
// chain — so transitive findings can assert their chains. The harness
// applies //lint:allow filtering before matching, so testdata can assert
// both that a directive suppresses a finding and that the finding fires
// without it.
//
// Before the analyzer runs, the harness replays the whole suite's fact
// collectors over the target package's source-root dependencies in
// dependency order, exactly as the driver does over real imports: a
// testdata package under det/ importing a helper package sees the helper's
// propagated facts.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/allow"
	"repro/internal/lint/analysis"
	"repro/internal/lint/facts"
	"repro/internal/lint/loader"
)

// Result is the outcome of analyzing one testdata package.
type Result struct {
	Pkg         *loader.Package
	Diagnostics []analysis.Diagnostic
}

// Run loads each named package from dir/src/<path>, applies a with the
// fact layer primed, filters through //lint:allow, and reports mismatches
// against // want comments as test errors. It returns the per-package
// results so tests can make extra assertions (e.g. on suggested fixes).
func Run(t *testing.T, dir string, a *analysis.Analyzer, paths ...string) []Result {
	t.Helper()
	var collectors []facts.Collector
	for _, az := range lint.Analyzers() {
		collectors = append(collectors, az.FactCollector)
	}
	known := lint.Names()
	var results []Result
	for _, path := range paths {
		pkg, deps, err := loader.LoadSource(loader.Config{
			SrcRoots: []loader.SrcRoot{{Dir: dir + "/src"}},
		}, path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		store := facts.NewStore()
		var view *facts.View
		var ix *allow.Index
		for _, p := range append(deps, pkg) {
			p := p
			pix := allow.Build(p.Fset, p.Files, known)
			v := facts.Analyze(
				&facts.PkgInfo{Fset: p.Fset, Files: p.Files, Pkg: p.Types, Info: p.Info},
				store, collectors,
				func(name string, pos token.Pos) bool { return pix.Allowed(name, p.Fset, pos) },
			)
			if p == pkg {
				view, ix = v, pix
			}
		}
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Facts:     view,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s: running %s: %v", path, a.Name, err)
		}
		diags = ix.Filter(a.Name, pkg.Fset, diags)
		for _, msg := range diffWants(pkg.Fset, a.Name, collectWants(t, pkg), diags) {
			t.Errorf("%s", msg)
		}
		results = append(results, Result{Pkg: pkg, Diagnostics: diags})
	}
	return results
}

// want is one expectation: a pattern at a file line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
}

var wantRe = regexp.MustCompile("//\\s*want\\s+(.*)$")

// collectWants parses the // want comments of every file in pkg.
func collectWants(t *testing.T, pkg *loader.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				pats, err := parsePatterns(m[1])
				if err != nil {
					t.Errorf("%s: bad want comment: %v", pos, err)
					continue
				}
				for _, p := range pats {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, p, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: p})
				}
			}
		}
	}
	return wants
}

// diffWants matches diagnostics against wants one-to-one and returns the
// mismatches as ready-to-report messages. Matching is on the rendered
// diagnostic (message + call chain). A missed expectation names the
// analyzer and the nearest actual finding in the same file, which turns
// "got none" into an actionable off-by-one-line or wrong-regexp hint.
func diffWants(fset *token.FileSet, name string, wants []*want, diags []analysis.Diagnostic) []string {
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	var msgs []string
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.re == nil || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Render()) {
				w.re = nil // consumed
				matched = true
				break
			}
		}
		if !matched {
			msgs = append(msgs, fmt.Sprintf("%s: unexpected diagnostic: %s: %s", pos, name, d.Render()))
		}
	}
	for _, w := range wants {
		if w.re == nil {
			continue
		}
		msg := fmt.Sprintf("%s:%d: expected %s diagnostic matching %q, got none", w.file, w.line, name, w.raw)
		if near, ok := nearest(fset, w, diags); ok {
			msg += "; nearest " + name + " finding: " + near
		}
		msgs = append(msgs, msg)
	}
	return msgs
}

// nearest finds the diagnostic in the want's file closest to its line.
func nearest(fset *token.FileSet, w *want, diags []analysis.Diagnostic) (string, bool) {
	best, bestDist := "", 0
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if pos.Filename != w.file {
			continue
		}
		dist := pos.Line - w.line
		if dist < 0 {
			dist = -dist
		}
		if best == "" || dist < bestDist {
			best = fmt.Sprintf("line %d: %s", pos.Line, d.Render())
			bestDist = dist
		}
	}
	return best, best != ""
}

// parsePatterns splits `a` "b" sequences into their string values.
func parsePatterns(s string) ([]string, error) {
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote in %q", s)
			}
			pats = append(pats, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '"':
			// Find the closing quote with Go unquoting.
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '"' && s[i-1] != '\\' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated quote in %q", s)
			}
			v, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			pats = append(pats, v)
			s = strings.TrimSpace(s[end+1:])
		default:
			return nil, fmt.Errorf("want pattern must be backquoted or quoted, got %q", s)
		}
	}
	if len(pats) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return pats, nil
}
