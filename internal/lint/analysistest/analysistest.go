// Package analysistest runs one analyzer over GOPATH-style testdata
// packages and checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest closely enough that the
// analyzer tests would port to the upstream harness unchanged.
//
// Expectations are written on the line the diagnostic is reported at:
//
//	time.Sleep(d) // want `wall clock`
//
// The argument is a regular expression in backquotes or a double-quoted Go
// string; several patterns on one line expect several diagnostics. The
// harness applies //lint:allow filtering before matching, so testdata can
// assert both that a directive suppresses a finding and that the finding
// fires without it.
package analysistest

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/allow"
	"repro/internal/lint/analysis"
	"repro/internal/lint/loader"
)

// Result is the outcome of analyzing one testdata package.
type Result struct {
	Pkg         *loader.Package
	Diagnostics []analysis.Diagnostic
}

// Run loads each named package from dir/src/<path>, applies a, filters
// through //lint:allow, and reports mismatches against // want comments as
// test errors. It returns the per-package results so tests can make extra
// assertions (e.g. on suggested fixes).
func Run(t *testing.T, dir string, a *analysis.Analyzer, paths ...string) []Result {
	t.Helper()
	var results []Result
	for _, path := range paths {
		pkg, err := loader.LoadSource(loader.Config{
			SrcRoots: []loader.SrcRoot{{Dir: dir + "/src"}},
		}, path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s: running %s: %v", path, a.Name, err)
		}
		ix := allow.Build(pkg.Fset, pkg.Files, map[string]bool{a.Name: true})
		diags = ix.Filter(a.Name, pkg.Fset, diags)
		checkWants(t, pkg, a.Name, diags)
		results = append(results, Result{Pkg: pkg, Diagnostics: diags})
	}
	return results
}

// want is one expectation: a pattern at a file line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
}

var wantRe = regexp.MustCompile("//\\s*want\\s+(.*)$")

// checkWants matches diagnostics against // want comments one-to-one.
func checkWants(t *testing.T, pkg *loader.Package, name string, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				pats, err := parsePatterns(m[1])
				if err != nil {
					t.Errorf("%s: bad want comment: %v", pos, err)
					continue
				}
				for _, p := range pats {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, p, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: p})
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.re == nil || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.re = nil // consumed
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pos, name, d.Message)
		}
	}
	for _, w := range wants {
		if w.re != nil {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// parsePatterns splits `a` "b" sequences into their string values.
func parsePatterns(s string) ([]string, error) {
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote in %q", s)
			}
			pats = append(pats, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '"':
			// Find the closing quote with Go unquoting.
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '"' && s[i-1] != '\\' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated quote in %q", s)
			}
			v, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			pats = append(pats, v)
			s = strings.TrimSpace(s[end+1:])
		default:
			return nil, fmt.Errorf("want pattern must be backquoted or quoted, got %q", s)
		}
	}
	if len(pats) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return pats, nil
}
