package analysistest

import (
	"go/token"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
)

// fakeFile registers a 100-line file and returns a Pos for each line.
func fakeFile(fset *token.FileSet, name string) func(line int) token.Pos {
	f := fset.AddFile(name, -1, 1000)
	var lines []int
	for off := 0; off < 1000; off += 10 {
		lines = append(lines, off)
	}
	f.SetLines(lines)
	return func(line int) token.Pos { return f.Pos((line - 1) * 10) }
}

func TestDiffWantsMatchesRenderedChain(t *testing.T) {
	fset := token.NewFileSet()
	at := fakeFile(fset, "a.go")
	diags := []analysis.Diagnostic{{
		Pos:     at(5),
		Message: "call reaches the wall clock",
		Chain:   []string{"tick", "helper", "time.Now at pkg/a.go:9"},
	}}
	wants := []*want{{
		file: "a.go", line: 5,
		re:  regexp.MustCompile(`reaches the wall clock \(via tick → helper → time\.Now at pkg/a\.go:9\)`),
		raw: "…",
	}}
	if msgs := diffWants(fset, "wallclock", wants, diags); len(msgs) != 0 {
		t.Fatalf("chain-matching want failed: %v", msgs)
	}
}

func TestDiffWantsMissNamesAnalyzerAndNearest(t *testing.T) {
	fset := token.NewFileSet()
	at := fakeFile(fset, "a.go")
	diags := []analysis.Diagnostic{
		{Pos: at(7), Message: "rand.IntN draws from the process-global generator"},
	}
	wants := []*want{{
		file: "a.go", line: 5,
		re:  regexp.MustCompile("draws from"),
		raw: "draws from",
	}}
	msgs := diffWants(fset, "globalrand", wants, diags)
	if len(msgs) != 2 {
		t.Fatalf("got %d messages %v, want unmatched-diag + missed-want", len(msgs), msgs)
	}
	miss := msgs[1]
	for _, frag := range []string{
		"a.go:5",
		"expected globalrand diagnostic",
		"got none",
		"nearest globalrand finding: line 7: rand.IntN draws",
	} {
		if !strings.Contains(miss, frag) {
			t.Errorf("miss message %q lacks %q", miss, frag)
		}
	}
}

func TestDiffWantsNoNearestInOtherFile(t *testing.T) {
	fset := token.NewFileSet()
	at := fakeFile(fset, "a.go")
	_ = fakeFile(fset, "b.go") // wants live in b.go; all findings are in a.go
	wants := []*want{{file: "b.go", line: 3, re: regexp.MustCompile("x"), raw: "x"}}
	diags := []analysis.Diagnostic{{Pos: at(2), Message: "x marks the spot"}}
	msgs := diffWants(fset, "mapiter", wants, diags)
	found := false
	for _, m := range msgs {
		if strings.Contains(m, "expected mapiter diagnostic") {
			found = true
			if strings.Contains(m, "nearest") {
				t.Errorf("nearest hint crossed files: %q", m)
			}
		}
	}
	if !found {
		t.Fatalf("missed want not reported: %v", msgs)
	}
}
