package facts

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// PkgInfo is the slice of a type-checked package the fact layer needs; it
// deliberately avoids importing the loader so analyzers can depend on this
// package without cycles.
type PkgInfo struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Collector is one analyzer's origin scanner. It runs over every package —
// deterministic or not — because facts are consumed where the invariant
// applies, not where the site lives.
type Collector func(*PkgInfo) []Origin

// Suppressor reports whether a //lint:allow directive for analyzer covers
// pos. The fact layer consults it at origin sites and at every call edge,
// so an allow prunes propagation exactly where a human argued safety; the
// implementation is expected to mark the directive used for -stale.
type Suppressor func(analyzer string, pos token.Pos) bool

// node is one function-like body participating in the package call graph.
type node struct {
	key     string
	name    string // display name for chains ("EvaluateInto", "Router.paths")
	body    *ast.BlockStmt
	pos     token.Pos
	end     token.Pos
	retsErr bool
	calls   []callSite
}

// callSite is one call expression with its statically resolved callees.
type callSite struct {
	call    *ast.CallExpr
	callees []string // sorted object keys
}

// View gives analyzers per-call-site access to the propagated facts of one
// package. Analyzers ask "does anything this call reaches carry fact K?"
// and render the chain into their diagnostic.
type View struct {
	store   *Store
	byCall  map[*ast.CallExpr]*callSite
	callers map[*ast.CallExpr]string // call -> enclosing function display name
}

// CallFacts returns the facts carried by the callees of call, at most one
// per kind, in kind order. A call the builder could not resolve returns
// nil (the documented soundness boundary).
func (v *View) CallFacts(call *ast.CallExpr) []Fact {
	if v == nil {
		return nil
	}
	cs := v.byCall[call]
	if cs == nil {
		return nil
	}
	var out []Fact
	for k := Kind(0); k < numKinds; k++ {
		for _, key := range cs.callees {
			if f, ok := v.store.get(key, k); ok {
				out = append(out, f)
				break
			}
		}
	}
	return out
}

// CallFact returns the callee fact of kind k at call, if any.
func (v *View) CallFact(call *ast.CallExpr, k Kind) (Fact, bool) {
	for _, f := range v.CallFacts(call) {
		if f.Kind == k {
			return f, true
		}
	}
	return Fact{}, false
}

// Caller returns the display name of the function enclosing call ("" at
// package level).
func (v *View) Caller(call *ast.CallExpr) string {
	if v == nil {
		return ""
	}
	return v.callers[call]
}

// Analyze computes and propagates facts for one package, installs them in
// the store, and returns the package's call-site view. collectors seed the
// origins; suppress applies //lint:allow pruning. When the store already
// holds this package's facts (a cache hit injected them), seeding and
// propagation are skipped and only the view is rebuilt.
func Analyze(pkg *PkgInfo, store *Store, collectors []Collector, suppress Suppressor) *View {
	if suppress == nil {
		suppress = func(string, token.Pos) bool { return false }
	}
	b := &builder{pkg: pkg, store: store, suppress: suppress}
	b.collectNodes()
	b.collectBindings()
	b.resolveCalls()

	if store.CachedHash(pkg.Pkg.Path()) == "" {
		b.seed(collectors)
		b.propagate()
		store.MarkAnalyzed(pkg.Pkg.Path(), "computed")
	}

	v := &View{store: store, byCall: make(map[*ast.CallExpr]*callSite), callers: make(map[*ast.CallExpr]string)}
	for i := range b.nodes {
		n := b.nodes[i]
		for j := range n.calls {
			v.byCall[n.calls[j].call] = &n.calls[j]
			v.callers[n.calls[j].call] = n.name
		}
	}
	return v
}

type builder struct {
	pkg      *PkgInfo
	store    *Store
	suppress Suppressor
	nodes    []*node
	byKey    map[string]*node
	// bindings maps a function-typed variable or struct field to the keys
	// of every function value assigned to it within this package.
	bindings map[types.Object][]string
}

// litKey returns the per-run key of a function literal. Literals never
// cross package boundaries by name; the position keeps the key stable
// within a run (and across runs, for the serialized cache).
func (b *builder) litKey(lit *ast.FuncLit) string {
	p := b.pkg.Fset.Position(lit.Pos())
	return fmt.Sprintf("%s.funclit@%s:%d:%d", b.pkg.Pkg.Path(), filepath.Base(p.Filename), p.Line, p.Column)
}

// collectNodes gathers every FuncDecl and FuncLit as a call-graph node, in
// position order.
func (b *builder) collectNodes() {
	b.byKey = make(map[string]*node)
	for _, f := range b.pkg.Files {
		ast.Inspect(f, func(an ast.Node) bool {
			switch d := an.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					return true
				}
				fn, ok := b.pkg.Info.Defs[d.Name].(*types.Func)
				if !ok {
					return true
				}
				name := d.Name.Name
				if d.Recv != nil {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
						rn := recvName(sig.Recv().Type())
						if len(rn) > 0 && rn[0] == '*' {
							rn = rn[1:]
						}
						name = rn + "." + name
					}
				}
				b.addNode(&node{key: ObjectKey(fn), name: name, body: d.Body,
					pos: d.Body.Pos(), end: d.Body.End(), retsErr: returnsError(fn.Type())})
			case *ast.FuncLit:
				p := b.pkg.Fset.Position(d.Pos())
				name := fmt.Sprintf("func@%s:%d", filepath.Base(p.Filename), p.Line)
				b.addNode(&node{key: b.litKey(d), name: name, body: d.Body,
					pos: d.Body.Pos(), end: d.Body.End(), retsErr: returnsError(b.pkg.Info.TypeOf(d))})
			}
			return true
		})
	}
	sort.Slice(b.nodes, func(i, j int) bool { return b.nodes[i].pos < b.nodes[j].pos })
}

func (b *builder) addNode(n *node) {
	b.nodes = append(b.nodes, n)
	b.byKey[n.key] = n
}

func returnsError(t types.Type) bool {
	sig, ok := t.(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), types.Universe.Lookup("error").Type()) {
			return true
		}
	}
	return false
}

// enclosing returns the innermost node whose body spans pos.
func (b *builder) enclosing(pos token.Pos) *node {
	var best *node
	for _, n := range b.nodes {
		if n.pos <= pos && pos < n.end {
			if best == nil || (n.pos >= best.pos && n.end <= best.end) {
				best = n
			}
		}
	}
	return best
}

// funcValueKey resolves an expression that denotes a function value — a
// named function, a method value, or a function literal — to its key.
func (b *builder) funcValueKey(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return b.litKey(e), true
	case *ast.Ident:
		if fn, ok := b.pkg.Info.Uses[e].(*types.Func); ok {
			return ObjectKey(fn), true
		}
	case *ast.SelectorExpr:
		if fn, ok := b.pkg.Info.Uses[e.Sel].(*types.Func); ok && !isInterfaceMethod(fn) {
			return ObjectKey(fn), true
		}
	}
	return "", false
}

func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, ok = sig.Recv().Type().Underlying().(*types.Interface)
	return ok
}

// collectBindings records every package-local assignment of a function
// value to a variable or struct field: `h.fn = helper`, `var f = helper`,
// `T{fn: helper}`. Indirect calls through those objects later resolve to
// the union of everything assigned.
func (b *builder) collectBindings() {
	b.bindings = make(map[types.Object][]string)
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		key, ok := b.funcValueKey(rhs)
		if !ok {
			return
		}
		var obj types.Object
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			obj = b.pkg.Info.Defs[l]
			if obj == nil {
				obj = b.pkg.Info.Uses[l]
			}
		case *ast.SelectorExpr:
			obj = b.pkg.Info.Uses[l.Sel]
		}
		if v, ok := obj.(*types.Var); ok {
			b.bindings[v] = append(b.bindings[v], key)
		}
	}
	for _, f := range b.pkg.Files {
		ast.Inspect(f, func(an ast.Node) bool {
			switch s := an.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) == len(s.Rhs) {
					for i := range s.Lhs {
						bind(s.Lhs[i], s.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(s.Names) == len(s.Values) {
					for i := range s.Names {
						bind(s.Names[i], s.Values[i])
					}
				}
			case *ast.CompositeLit:
				for _, el := range s.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							if v, ok := b.pkg.Info.Uses[id].(*types.Var); ok {
								if key, ok2 := b.funcValueKey(kv.Value); ok2 {
									b.bindings[v] = append(b.bindings[v], key)
								}
							}
						}
					}
				}
			}
			return true
		})
	}
	//lint:allow mapiter per-key normalization of each binding list; no cross-key state
	for obj, keys := range b.bindings {
		sort.Strings(keys)
		b.bindings[obj] = dedupStrings(keys)
	}
}

func dedupStrings(in []string) []string {
	out := in[:0]
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// resolveCalls walks every node body and resolves each call expression to
// a sorted set of callee keys: static function and method calls directly,
// indirect calls through the binding map, interface calls through the
// package-local implementing types (class-hierarchy style).
func (b *builder) resolveCalls() {
	for _, n := range b.nodes {
		n := n
		ast.Inspect(n.body, func(an ast.Node) bool {
			if lit, ok := an.(*ast.FuncLit); ok && lit.Body != n.body {
				// The literal is its own node; its calls belong to it.
				return false
			}
			call, ok := an.(*ast.CallExpr)
			if !ok {
				return true
			}
			callees := b.calleeKeys(call)
			if len(callees) > 0 {
				sort.Strings(callees)
				n.calls = append(n.calls, callSite{call: call, callees: dedupStrings(callees)})
			}
			return true
		})
	}
}

func (b *builder) calleeKeys(call *ast.CallExpr) []string {
	fun := ast.Unparen(call.Fun)
	// Generic instantiation f[T](...) wraps the callee in an index
	// expression; the identifier still resolves through Uses.
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ix.X
	case *ast.IndexListExpr:
		fun = ix.X
	}
	// Type conversions are not calls.
	if tv, ok := b.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return nil
	}
	switch f := fun.(type) {
	case *ast.FuncLit:
		return []string{b.litKey(f)}
	case *ast.Ident:
		switch obj := b.pkg.Info.Uses[f].(type) {
		case *types.Func:
			return []string{ObjectKey(obj)}
		case *types.Var:
			return b.bindings[obj]
		}
	case *ast.SelectorExpr:
		switch obj := b.pkg.Info.Uses[f.Sel].(type) {
		case *types.Func:
			if isInterfaceMethod(obj) {
				return b.chaTargets(obj)
			}
			return []string{ObjectKey(obj)}
		case *types.Var:
			return b.bindings[obj]
		}
	}
	return nil
}

// chaTargets resolves an interface method call to the matching method of
// every named type in this package that implements the interface — the
// conservative "method sets" leg of the call graph.
func (b *builder) chaTargets(m *types.Func) []string {
	iface, ok := m.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	scope := b.pkg.Pkg.Scope()
	var keys []string
	names := scope.Names() // sorted
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		recv := types.Type(named)
		if !types.Implements(recv, iface) {
			recv = types.NewPointer(named)
			if !types.Implements(recv, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, b.pkg.Pkg, m.Name())
		if fn, ok := obj.(*types.Func); ok {
			keys = append(keys, ObjectKey(fn))
		}
	}
	return keys
}

// seed attaches collector origins to their enclosing functions, skipping
// origins a //lint:allow directive covers (suppression at the origin kills
// the fact for every transitive caller).
func (b *builder) seed(collectors []Collector) {
	var origins []Origin
	for _, c := range collectors {
		if c != nil {
			origins = append(origins, c(b.pkg)...)
		}
	}
	sort.Slice(origins, func(i, j int) bool {
		if origins[i].Pos != origins[j].Pos {
			return origins[i].Pos < origins[j].Pos
		}
		return origins[i].Kind < origins[j].Kind
	})
	for _, o := range origins {
		n := b.enclosing(o.Pos)
		if n == nil {
			continue // package-level initializer expression
		}
		if o.Kind.needsErrorReturn() && !n.retsErr {
			continue
		}
		if b.suppress(o.Kind.Analyzer(), o.Pos) {
			continue
		}
		b.store.put(n.key, Fact{
			Kind:   o.Kind,
			Chain:  []string{n.name},
			Origin: o.Desc + " at " + ShortPos(b.pkg.Fset.Position(o.Pos)),
		})
	}
}

// propagate runs the in-package fixed point: a function adopts each fact
// kind carried by anything it calls (cross-package callees already carry
// their final facts, since packages are analyzed in dependency order).
// Deterministic node and call order makes the winning chain stable.
func (b *builder) propagate() {
	for changed := true; changed; {
		changed = false
		for _, n := range b.nodes {
			for _, cs := range n.calls {
				for _, calleeKey := range cs.callees {
					if calleeKey == n.key {
						continue // direct recursion adds nothing
					}
					for k := Kind(0); k < numKinds; k++ {
						f, ok := b.store.get(calleeKey, k)
						if !ok {
							continue
						}
						if _, have := b.store.get(n.key, k); have {
							continue
						}
						if k.needsErrorReturn() && !n.retsErr {
							continue
						}
						if b.suppress(k.Analyzer(), cs.call.Pos()) {
							continue
						}
						chain := append([]string{n.name}, f.Chain...)
						if b.store.put(n.key, Fact{Kind: k, Chain: chain, Origin: f.Origin}) {
							changed = true
						}
					}
				}
			}
		}
	}
}

// ShortPos renders a position as the last two path segments plus line —
// "routing/destroot.go:315" — keeping chains readable and test output
// independent of absolute checkout paths.
func ShortPos(p token.Position) string {
	dir := filepath.Base(filepath.Dir(p.Filename))
	if dir == "." || dir == string(filepath.Separator) {
		return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
	}
	return fmt.Sprintf("%s/%s:%d", dir, filepath.Base(p.Filename), p.Line)
}
