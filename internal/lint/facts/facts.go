// Package facts is the interprocedural layer of the selfmaintlint
// framework, mirroring golang.org/x/tools/go/analysis Facts in a hermetic,
// stdlib-only form. Analyzers attach Origins (a wall-clock read, an
// allocation site, a map range, a bus publish, ...) to the function that
// syntactically contains them; a conservative call-graph builder then
// propagates each fact to every function that can reach it — through
// static calls, through function values bound to variables and struct
// fields within a package, and through interface method calls resolved
// against the package's own named types — so a determinism violation three
// frames below the function an analyzer is looking at still surfaces, with
// the call chain in the diagnostic.
//
// Facts are computed per package, in dependency order: when package B is
// analyzed, the facts of every package it imports are already in the
// Store, keyed by a stable object key (import path + receiver + name), so
// a summary of a dependency substitutes for its source exactly the way gc
// export data substitutes for its syntax trees. The Store serializes to
// JSON alongside the build cache's export data (cmd/selfmaintlint
// -factcache), which lets later lint invocations in the same CI run skip
// recomputation for unchanged packages.
//
// Soundness boundary (deliberate, documented): calls through function
// parameters, function values received over channels, and reflection are
// not resolved; packages loaded only from export data (the standard
// library) carry no facts. The layer over-approximates in the other
// direction instead — an interface call is linked to every package-local
// type that implements the interface, and a function-typed variable to
// every function assigned to it anywhere in the package.
package facts

import (
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/detsort"
)

// Kind enumerates the fact kinds the suite propagates.
type Kind uint8

const (
	// ReachesWallClock: the function (transitively) reads or blocks on
	// host time. Reported by wallclock in deterministic packages.
	ReachesWallClock Kind = iota
	// ReachesGlobalRand: the function (transitively) draws from the
	// process-global math/rand generators. Reported by globalrand.
	ReachesGlobalRand
	// Allocates: the function (transitively) contains a detectable
	// allocation site. Reported by hotpathalloc inside //selfmaint:hotpath
	// functions.
	Allocates
	// IteratesMapUnordered: the function (transitively) ranges over a map
	// in an order-sensitive way. Reported by mapiter in deterministic
	// packages.
	IteratesMapUnordered
	// Publishes: the function (transitively) calls Bus.Publish, Subscribe
	// or Tap. Reported by busreentry inside handler literals and by
	// lockguard when a lock is held across the call.
	Publishes
	// Blocks: the function (transitively) performs a blocking channel
	// operation or acquires a mutex. Reported by lockguard inside bus
	// handler literals.
	Blocks
	// WritePathError: the function returns an error that (transitively)
	// originates from an exec/bus/flightrec write path. Unlike the other
	// kinds it only propagates into callers that themselves return an
	// error. Reported by errdrop when the result is discarded.
	WritePathError

	numKinds
)

var kindNames = [numKinds]string{
	"ReachesWallClock", "ReachesGlobalRand", "Allocates",
	"IteratesMapUnordered", "Publishes", "Blocks", "WritePathError",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// kindByName is the inverse of String, for deserialization.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, numKinds)
	for k, n := range kindNames {
		m[n] = Kind(k)
	}
	return m
}()

// MarshalJSON writes kinds by name, keeping the fact cache readable and
// stable if the enum is ever reordered.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON is the inverse of MarshalJSON.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, ok := kindByName[s]
	if !ok {
		return fmt.Errorf("unknown fact kind %q", s)
	}
	*k = v
	return nil
}

// Analyzer returns the name of the analyzer that reports (and whose
// //lint:allow directives suppress) facts of kind k. The fact layer checks
// suppression both at the origin site and at every call edge a fact would
// propagate through, so one reasoned directive prunes the whole subtree of
// transitive findings above it.
func (k Kind) Analyzer() string {
	switch k {
	case ReachesWallClock:
		return "wallclock"
	case ReachesGlobalRand:
		return "globalrand"
	case Allocates:
		return "hotpathalloc"
	case IteratesMapUnordered:
		return "mapiter"
	case Publishes:
		return "busreentry"
	case Blocks:
		return "lockguard"
	case WritePathError:
		return "errdrop"
	}
	return ""
}

// needsErrorReturn reports whether kind k only propagates into functions
// whose signature returns an error (the error has to have somewhere to
// flow).
func (k Kind) needsErrorReturn() bool { return k == WritePathError }

// Origin is one syntactic site an analyzer attaches a fact at: the
// time.Now call, the make(), the map range. Collectors (one per analyzer,
// see analysis.Analyzer.FactCollector) emit origins for every package —
// including packages where the site is locally legal — because the
// invariant is enforced where the fact is *consumed*, not where it is
// produced.
type Origin struct {
	Kind Kind
	Pos  token.Pos
	// Desc names the site for the chain tail of diagnostics, e.g.
	// "time.Now" or "make". The position is appended automatically.
	Desc string
}

// Fact is one propagated property of a function. Chain[0] is the function
// the fact is attached to; subsequent entries walk down the call graph to
// the function containing the origin; Origin names the site itself
// ("make at internal/routing/destroot.go:315").
type Fact struct {
	Kind   Kind     `json:"kind"`
	Chain  []string `json:"chain"`
	Origin string   `json:"origin"`
}

// ChainWithOrigin returns the chain elements for a diagnostic reported at
// a call in caller: the caller, the callee path, then the origin site.
// Long chains keep both ends and elide the middle — the first frames say
// where the invariant applies, the last say where the violation lives.
func (f Fact) ChainWithOrigin(caller string) []string {
	elems := make([]string, 0, len(f.Chain)+2)
	if caller != "" {
		elems = append(elems, caller)
	}
	elems = append(elems, f.Chain...)
	if len(elems) > 6 {
		head := elems[:3:3]
		tail := elems[len(elems)-2:]
		elems = append(append(head, "…"), tail...)
	}
	return append(elems, f.Origin)
}

// Store holds the facts of every analyzed package, keyed by function
// object key. It is shared across one whole lint run (and optionally
// serialized between runs); packages must be analyzed in dependency order
// so that lookups for imported functions hit.
type Store struct {
	// facts maps object key -> kind -> fact. One fact per kind per
	// function: the first (position-deterministic) path found wins, which
	// keeps diagnostics stable across runs.
	facts map[string]*[numKinds]*Fact
	// pkgs records which packages have been analyzed, with the input hash
	// that validates cache entries.
	pkgs map[string]string
}

// NewStore returns an empty fact store.
func NewStore() *Store {
	return &Store{facts: make(map[string]*[numKinds]*Fact), pkgs: make(map[string]string)}
}

// get returns the fact of kind k attached to key, if any.
func (s *Store) get(key string, k Kind) (Fact, bool) {
	if e := s.facts[key]; e != nil && e[k] != nil {
		return *e[k], true
	}
	return Fact{}, false
}

// put attaches f to key if no fact of that kind is present yet, reporting
// whether it was stored.
func (s *Store) put(key string, f Fact) bool {
	e := s.facts[key]
	if e == nil {
		e = new([numKinds]*Fact)
		s.facts[key] = e
	}
	if e[f.Kind] != nil {
		return false
	}
	cp := f
	e[f.Kind] = &cp
	return true
}

// ObjectKey returns the stable cross-package key for a function object:
// "path.Name" for package functions, "path.(Recv).Name" for methods. The
// key depends only on export-visible identity, so a types.Func imported
// from gc export data and the same function type-checked from source map
// to one entry.
func ObjectKey(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return pkg + ".(" + recvName(sig.Recv().Type()) + ")." + fn.Name()
	}
	return pkg + "." + fn.Name()
}

// recvName renders a receiver type for ObjectKey ("*Router", "Engine").
func recvName(t types.Type) string {
	prefix := ""
	if p, ok := t.(*types.Pointer); ok {
		prefix = "*"
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return prefix + n.Obj().Name()
	}
	return prefix + t.String()
}

// UsedAllow records a //lint:allow directive that suppressed a fact during
// computation (killed an origin or pruned a call edge). Cache hits skip
// that computation, so the driver replays these records to keep the
// directives counted as used — otherwise a cache hit would turn every
// fact-only suppression into a false -stale finding.
type UsedAllow struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
}

// StoredPkg is the serialized form of one package's facts.
type StoredPkg struct {
	Hash  string            `json:"hash"`
	Facts map[string][]Fact `json:"facts,omitempty"`
	Used  []UsedAllow       `json:"used_allows,omitempty"`
}

// Serialized is the on-disk shape of a Store (cmd/selfmaintlint
// -factcache): one entry per analyzed package, invalidated by an input
// hash covering the package's sources and its dependencies' facts.
type Serialized struct {
	Version  int                  `json:"version"`
	Packages map[string]StoredPkg `json:"packages"`
}

// SerialVersion invalidates every cache entry when the fact layer's
// semantics change.
const SerialVersion = 1

// Export converts the store to its serializable form. Iteration is over
// sorted keys so the serialized bytes are identical run to run — the
// on-disk fact cache must not churn under version control or diffing.
func (s *Store) Export() Serialized {
	out := Serialized{Version: SerialVersion, Packages: make(map[string]StoredPkg)}
	for _, path := range detsort.Keys(s.pkgs) {
		hash := s.pkgs[path]
		sp := StoredPkg{Hash: hash, Facts: make(map[string][]Fact)}
		prefix := path + "."
		for _, key := range detsort.Keys(s.facts) {
			e := s.facts[key]
			if !strings.HasPrefix(key, prefix) {
				continue
			}
			var fs []Fact
			for _, f := range e {
				if f != nil {
					fs = append(fs, *f)
				}
			}
			if len(fs) > 0 {
				sort.Slice(fs, func(i, j int) bool { return fs[i].Kind < fs[j].Kind })
				sp.Facts[key] = fs
			}
		}
		out.Packages[path] = sp
	}
	return out
}

// InjectPackage installs a previously serialized package into the store,
// marking it analyzed under the given hash.
func (s *Store) InjectPackage(path, hash string, facts map[string][]Fact) {
	for _, key := range detsort.Keys(facts) {
		for _, f := range facts[key] {
			if int(f.Kind) < int(numKinds) {
				s.put(key, f)
			}
		}
	}
	s.pkgs[path] = hash
}

// CachedHash returns the recorded input hash for path ("" if the package
// has not been analyzed).
func (s *Store) CachedHash(path string) string { return s.pkgs[path] }

// MarkAnalyzed records that path's facts are present under hash.
func (s *Store) MarkAnalyzed(path, hash string) { s.pkgs[path] = hash }
