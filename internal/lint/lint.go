// Package lint registers the selfmaintlint analyzer suite: the eight
// machine-enforced determinism, hot-path, and concurrency invariants behind
// the repo's byte-identical fixed-seed guarantee. cmd/selfmaintlint runs
// them as a CI gate; DESIGN.md ("Determinism invariants") documents each
// rule, the interprocedural fact layer they share, and how to add the next
// one.
package lint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/busreentry"
	"repro/internal/lint/crossshard"
	"repro/internal/lint/errdrop"
	"repro/internal/lint/globalrand"
	"repro/internal/lint/hotpathalloc"
	"repro/internal/lint/lockguard"
	"repro/internal/lint/mapiter"
	"repro/internal/lint/wallclock"
)

// Analyzers returns the full suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		wallclock.Analyzer,
		globalrand.Analyzer,
		mapiter.Analyzer,
		busreentry.Analyzer,
		hotpathalloc.Analyzer,
		crossshard.Analyzer,
		lockguard.Analyzer,
		errdrop.Analyzer,
	}
}

// Names returns the set of analyzer names, for //lint:allow validation.
func Names() map[string]bool {
	names := make(map[string]bool)
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}
