// Package lint registers the selfmaintlint analyzer suite: the six
// machine-enforced determinism and hot-path invariants behind the repo's
// byte-identical fixed-seed guarantee. cmd/selfmaintlint runs them as a CI
// gate; DESIGN.md ("Determinism invariants") documents each rule and how to
// add the next one.
package lint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/busreentry"
	"repro/internal/lint/crossshard"
	"repro/internal/lint/globalrand"
	"repro/internal/lint/hotpathalloc"
	"repro/internal/lint/mapiter"
	"repro/internal/lint/wallclock"
)

// Analyzers returns the full suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		wallclock.Analyzer,
		globalrand.Analyzer,
		mapiter.Analyzer,
		busreentry.Analyzer,
		hotpathalloc.Analyzer,
		crossshard.Analyzer,
	}
}

// Names returns the set of analyzer names, for //lint:allow validation.
func Names() map[string]bool {
	names := make(map[string]bool)
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}
