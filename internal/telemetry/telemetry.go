// Package telemetry is the monitoring plane: it observes link state
// transitions and flap episodes (as a faults.Listener), maintains per-link
// counters and windowed histories, detects flapping with a thresholded
// window, and emits alerts. Everything above this layer — diagnosis,
// ticketing, the controller — sees only what telemetry exposes, never the
// fault injector's hidden ground truth.
package telemetry

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/topology"
)

// AlertKind classifies an alert.
type AlertKind uint8

// Alert kinds.
const (
	AlertLinkDown AlertKind = iota
	AlertLinkFlapping
	AlertLinkRecovered
)

var alertKindNames = [...]string{
	AlertLinkDown:      "link-down",
	AlertLinkFlapping:  "link-flapping",
	AlertLinkRecovered: "link-recovered",
}

// String returns the alert kind name.
func (k AlertKind) String() string {
	if int(k) < len(alertKindNames) {
		return alertKindNames[k]
	}
	return fmt.Sprintf("alert(%d)", uint8(k))
}

// Alert is a monitoring event delivered to subscribers.
type Alert struct {
	Kind   AlertKind
	Link   *topology.Link
	At     sim.Time
	Detail string
}

// String renders the alert for logs.
func (a Alert) String() string {
	return fmt.Sprintf("[%v] %v %s %s", a.At, a.Kind, a.Link.Name(), a.Detail)
}

// Handler consumes alerts.
type Handler func(Alert)

// Config tunes detection.
type Config struct {
	// FlapWindow and FlapThreshold define flap detection: a link is
	// declared flapping when it logs FlapThreshold or more episodes within
	// FlapWindow.
	FlapWindow    sim.Time
	FlapThreshold int
	// LossAlpha is the EWMA smoothing factor for episode loss fractions.
	LossAlpha float64
	// HistoryWindow bounds how much per-link event history is retained for
	// feature extraction.
	HistoryWindow sim.Time
}

// DefaultConfig returns production-plausible detection settings: three
// episodes within two hours flags a flapping link (episodes on marginal
// links arrive tens of minutes apart, §1).
func DefaultConfig() Config {
	return Config{
		FlapWindow:    2 * sim.Hour,
		FlapThreshold: 3,
		LossAlpha:     0.3,
		HistoryWindow: 30 * sim.Day,
	}
}

// Counters is the externally visible per-link monitoring state.
type Counters struct {
	Health        faults.Health // last observed health
	Downs         int           // down transitions seen
	Recoveries    int
	FlapEpisodes  int
	LossEWMA      float64
	FlapsInWindow int
	LastChange    sim.Time
	FlaggedFlappy bool // currently flagged by the flap detector
}

type linkState struct {
	Counters
	flapTimes  []sim.Time
	downTimes  []sim.Time
	recovTimes []sim.Time
}

// Monitor is the telemetry plane for one network.
type Monitor struct {
	eng      *sim.Engine
	net      *topology.Network
	cfg      Config
	links    []linkState
	handlers []Handler
	bus      *bus.Bus
}

// NewMonitor creates a monitor. Subscribe it to the fault injector with
// injector.Subscribe(m).
func NewMonitor(eng *sim.Engine, net *topology.Network, cfg Config) *Monitor {
	m := &Monitor{eng: eng, net: net, cfg: cfg, links: make([]linkState, len(net.Links))}
	return m
}

// OnAlert registers a handler for all alerts.
func (m *Monitor) OnAlert(h Handler) { m.handlers = append(m.handlers, h) }

// PublishTo makes the monitor the pipeline's Sense stage: every alert is
// additionally published on the bus's sense.alert topic, where Triage and
// Plan consume it. Direct OnAlert handlers keep working and run first.
func (m *Monitor) PublishTo(b *bus.Bus) { m.bus = b }

// Counters returns a copy of the monitoring state for a link.
func (m *Monitor) Counters(id topology.LinkID) Counters {
	ls := &m.links[id]
	ls.prune(m.eng.Now(), m.cfg)
	c := ls.Counters
	c.FlapsInWindow = countSince(ls.flapTimes, m.eng.Now()-m.cfg.FlapWindow)
	return c
}

// emit delivers an alert to every handler, then to the bus.
func (m *Monitor) emit(a Alert) {
	for _, h := range m.handlers {
		h(a)
	}
	if m.bus != nil {
		m.bus.Publish(bus.TopicAlert, bus.Alert{
			Kind: bus.AlertKind(a.Kind), Link: a.Link, At: a.At, Detail: a.Detail,
		})
	}
}

// LinkStateChanged implements faults.Listener.
func (m *Monitor) LinkStateChanged(l *topology.Link, from, to faults.Health, at sim.Time) {
	ls := &m.links[l.ID]
	ls.Health = to
	ls.LastChange = at
	switch to {
	case faults.Down:
		ls.Downs++
		ls.downTimes = append(ls.downTimes, at)
		ls.FlaggedFlappy = false
		m.emit(Alert{Kind: AlertLinkDown, Link: l, At: at})
	case faults.Healthy:
		ls.Recoveries++
		ls.recovTimes = append(ls.recovTimes, at)
		ls.FlaggedFlappy = false
		m.emit(Alert{Kind: AlertLinkRecovered, Link: l, At: at})
	case faults.Flapping:
		// The Flapping ground-truth state is not directly observable;
		// telemetry flags flapping only from episode statistics below.
	}
}

// LinkFlapped implements faults.Listener.
func (m *Monitor) LinkFlapped(l *topology.Link, dur sim.Time, loss float64, at sim.Time) {
	ls := &m.links[l.ID]
	ls.FlapEpisodes++
	ls.flapTimes = append(ls.flapTimes, at)
	ls.LossEWMA = m.cfg.LossAlpha*loss + (1-m.cfg.LossAlpha)*ls.LossEWMA
	ls.prune(at, m.cfg)
	inWindow := countSince(ls.flapTimes, at-m.cfg.FlapWindow)
	if inWindow >= m.cfg.FlapThreshold && !ls.FlaggedFlappy {
		ls.FlaggedFlappy = true
		m.emit(Alert{
			Kind: AlertLinkFlapping, Link: l, At: at,
			Detail: fmt.Sprintf("%d episodes in %v", inWindow, m.cfg.FlapWindow),
		})
	}
}

// prune drops history beyond the retention window.
func (ls *linkState) prune(now sim.Time, cfg Config) {
	cut := now - cfg.HistoryWindow
	ls.flapTimes = dropBefore(ls.flapTimes, cut)
	ls.downTimes = dropBefore(ls.downTimes, cut)
	ls.recovTimes = dropBefore(ls.recovTimes, cut)
}

func dropBefore(ts []sim.Time, cut sim.Time) []sim.Time {
	i := 0
	for i < len(ts) && ts[i] < cut {
		i++
	}
	if i == 0 {
		return ts
	}
	return append(ts[:0], ts[i:]...)
}

func countSince(ts []sim.Time, cut sim.Time) int {
	n := 0
	for i := len(ts) - 1; i >= 0 && ts[i] >= cut; i-- {
		n++
	}
	return n
}

// Features is the per-link feature vector for failure prediction (§4:
// "machine learning techniques to predict failures"). All features are
// computable from observable telemetry alone.
type Features struct {
	Flaps1d    float64
	Flaps7d    float64
	Downs30d   float64
	Recov14d   float64 // repairs in the last fortnight: recurrence signal
	LossEWMA   float64
	HoursSince float64 // hours since last state change
}

// Vector returns the features in a fixed order for the linear model.
func (f Features) Vector() []float64 {
	return []float64{f.Flaps1d, f.Flaps7d, f.Downs30d, f.Recov14d, f.LossEWMA, f.HoursSince}
}

// FeatureNames labels Vector() entries.
func FeatureNames() []string {
	return []string{"flaps1d", "flaps7d", "downs30d", "recov14d", "lossEWMA", "hoursSinceChange"}
}

// Snapshot extracts the current feature vector for a link.
func (m *Monitor) Snapshot(id topology.LinkID) Features {
	ls := &m.links[id]
	now := m.eng.Now()
	ls.prune(now, m.cfg)
	return Features{
		Flaps1d:    float64(countSince(ls.flapTimes, now-sim.Day)),
		Flaps7d:    float64(countSince(ls.flapTimes, now-7*sim.Day)),
		Downs30d:   float64(countSince(ls.downTimes, now-30*sim.Day)),
		Recov14d:   float64(countSince(ls.recovTimes, now-14*sim.Day)),
		LossEWMA:   ls.LossEWMA,
		HoursSince: now.Sub(ls.LastChange).Hours(),
	}
}
