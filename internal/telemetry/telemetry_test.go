package telemetry

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/topology"
)

func setup(t *testing.T, seed uint64) (*sim.Engine, *topology.Network, *faults.Injector, *Monitor) {
	t.Helper()
	n, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 4, Spines: 2, HostsPerLeaf: 2, Uplinks: 1,
		FabricGbps: 400, HostGbps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(seed)
	fcfg := faults.DefaultConfig()
	fcfg.AnnualRate = map[faults.Cause]float64{}
	inj := faults.NewInjector(eng, n, fcfg)
	m := NewMonitor(eng, n, DefaultConfig())
	inj.Subscribe(m)
	return eng, n, inj, m
}

func separableLink(t *testing.T, n *topology.Network) *topology.Link {
	t.Helper()
	for _, l := range n.SwitchLinks() {
		if l.HasSeparableFiber() {
			return l
		}
	}
	t.Fatal("no separable link")
	return nil
}

func TestDownAndRecoveredAlerts(t *testing.T) {
	eng, n, inj, m := setup(t, 1)
	l := separableLink(t, n)
	var alerts []Alert
	m.OnAlert(func(a Alert) { alerts = append(alerts, a) })

	eng.Schedule(sim.Hour, "break", func() { inj.InduceFault(l, faults.XcvrDead) })
	eng.Schedule(2*sim.Hour, "fix", func() {
		inj.BeginRepair(l)
		st := inj.State(l.ID)
		inj.FinishRepair(l, faults.ReplaceXcvr, st.CauseEnd)
	})
	eng.RunUntil(3 * sim.Hour)

	if len(alerts) != 2 {
		t.Fatalf("alerts = %v, want down+recovered", alerts)
	}
	if alerts[0].Kind != AlertLinkDown || alerts[0].At != sim.Hour {
		t.Fatalf("first alert = %v", alerts[0])
	}
	if alerts[1].Kind != AlertLinkRecovered {
		t.Fatalf("second alert = %v", alerts[1])
	}
	c := m.Counters(l.ID)
	if c.Downs != 1 || c.Recoveries != 1 {
		t.Fatalf("counters = %+v", c)
	}
	if c.Health != faults.Healthy {
		t.Fatalf("health = %v", c.Health)
	}
}

func TestFlapDetectionThreshold(t *testing.T) {
	eng, n, inj, m := setup(t, 2)
	l := separableLink(t, n)
	var flappingAlerts []Alert
	m.OnAlert(func(a Alert) {
		if a.Kind == AlertLinkFlapping {
			flappingAlerts = append(flappingAlerts, a)
		}
	})
	// Induce a gray failure. Force flapping manifestation via config in the
	// injector is already done (DownManifest default 0.15 for contamination);
	// retry induce until it manifests as flapping.
	eng.Schedule(sim.Minute, "break", func() {
		inj.InduceFault(l, faults.Contamination)
	})
	eng.RunUntil(sim.Minute)
	if inj.Observable(l.ID) == faults.Down {
		t.Skip("manifested fail-stop under this seed")
	}
	// Flap episodes arrive every ~10-30 min; threshold is 3 in 30 min, so
	// detection may take a few hours of episodes.
	eng.RunUntil(48 * sim.Hour)
	if len(flappingAlerts) == 0 {
		t.Fatal("flap detector never fired in 48h of a flapping link")
	}
	// The detector must not re-fire while still flagged.
	if len(flappingAlerts) > 1 {
		first := flappingAlerts[0].At
		for _, a := range flappingAlerts[1:] {
			if a.At == first {
				t.Fatal("duplicate flapping alert at same instant")
			}
		}
	}
	c := m.Counters(l.ID)
	if c.FlapEpisodes == 0 || c.LossEWMA <= 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestFlapWindowCounting(t *testing.T) {
	eng, n, _, m := setup(t, 3)
	l := separableLink(t, n)
	// Drive LinkFlapped directly to control timing.
	m.LinkFlapped(l, sim.Second, 0.5, eng.Now())
	eng.RunUntil(10 * sim.Minute)
	m.LinkFlapped(l, sim.Second, 0.5, eng.Now())
	eng.RunUntil(6 * sim.Hour)
	c := m.Counters(l.ID)
	if c.FlapEpisodes != 2 {
		t.Fatalf("episodes = %d", c.FlapEpisodes)
	}
	if c.FlapsInWindow != 0 {
		t.Fatalf("flaps in window after 6h = %d, want 0", c.FlapsInWindow)
	}
	if c.FlaggedFlappy {
		t.Fatal("flagged with only 2 episodes")
	}
}

func TestFlapFlagResetOnRecovery(t *testing.T) {
	eng, n, _, m := setup(t, 4)
	l := separableLink(t, n)
	var kinds []AlertKind
	m.OnAlert(func(a Alert) { kinds = append(kinds, a.Kind) })
	for i := 0; i < 3; i++ {
		m.LinkFlapped(l, sim.Second, 0.4, eng.Now())
	}
	if !m.Counters(l.ID).FlaggedFlappy {
		t.Fatal("not flagged after 3 episodes in window")
	}
	m.LinkStateChanged(l, faults.Flapping, faults.Healthy, eng.Now())
	if m.Counters(l.ID).FlaggedFlappy {
		t.Fatal("flag survived recovery")
	}
	// Three more episodes re-flag.
	for i := 0; i < 3; i++ {
		m.LinkFlapped(l, sim.Second, 0.4, eng.Now())
	}
	flapAlerts := 0
	for _, k := range kinds {
		if k == AlertLinkFlapping {
			flapAlerts++
		}
	}
	if flapAlerts != 2 {
		t.Fatalf("flapping alerts = %d, want 2", flapAlerts)
	}
}

func TestSnapshotFeatures(t *testing.T) {
	eng, n, _, m := setup(t, 5)
	l := separableLink(t, n)
	// Two flaps now, then advance 2 days and flap once more.
	m.LinkFlapped(l, sim.Second, 0.5, eng.Now())
	m.LinkFlapped(l, sim.Second, 0.5, eng.Now())
	eng.RunUntil(2 * sim.Day)
	m.LinkFlapped(l, sim.Second, 0.5, eng.Now())
	m.LinkStateChanged(l, faults.Healthy, faults.Down, eng.Now())
	f := m.Snapshot(l.ID)
	if f.Flaps1d != 1 {
		t.Errorf("Flaps1d = %g, want 1", f.Flaps1d)
	}
	if f.Flaps7d != 3 {
		t.Errorf("Flaps7d = %g, want 3", f.Flaps7d)
	}
	if f.Downs30d != 1 {
		t.Errorf("Downs30d = %g, want 1", f.Downs30d)
	}
	if f.LossEWMA <= 0 {
		t.Error("LossEWMA zero")
	}
	if f.HoursSince != 0 {
		t.Errorf("HoursSince = %g", f.HoursSince)
	}
	if len(f.Vector()) != len(FeatureNames()) {
		t.Error("vector/names length mismatch")
	}
}

func TestHistoryPruning(t *testing.T) {
	eng, n, _, m := setup(t, 6)
	l := separableLink(t, n)
	m.LinkFlapped(l, sim.Second, 0.5, eng.Now())
	eng.RunUntil(40 * sim.Day) // beyond the 30d retention window
	f := m.Snapshot(l.ID)
	if f.Flaps7d != 0 || f.Flaps1d != 0 {
		t.Fatalf("stale flaps survived pruning: %+v", f)
	}
	if len(m.links[l.ID].flapTimes) != 0 {
		t.Fatal("flap history not pruned")
	}
}

func TestAlertStrings(t *testing.T) {
	_, n, _, _ := setup(t, 7)
	a := Alert{Kind: AlertLinkDown, Link: n.Links[0], At: sim.Hour}
	if a.String() == "" {
		t.Error("empty alert string")
	}
	if AlertLinkFlapping.String() != "link-flapping" || AlertKind(9).String() == "" {
		t.Error("alert kind names")
	}
}
