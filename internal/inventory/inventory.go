// Package inventory manages spare parts and answers the paper's
// right-provisioning question (§2): how much redundancy a fabric needs at a
// given repair speed, and therefore how much overprovisioning faster
// (robotic) repair eliminates.
package inventory

import (
	"fmt"
	"math"

	"repro/internal/detsort"
	"repro/internal/sim"
	"repro/internal/topology"
)

// PartKind classifies a spare part.
type PartKind uint8

// Spare part kinds.
const (
	PartXcvr PartKind = iota
	PartCable
	PartLineCard
	PartCleaningSupplies // consumable wet/dry cleaning media
)

var partNames = [...]string{
	PartXcvr: "transceiver", PartCable: "cable",
	PartLineCard: "line-card", PartCleaningSupplies: "cleaning-supplies",
}

// String returns the part kind name.
func (k PartKind) String() string {
	if int(k) < len(partNames) {
		return partNames[k]
	}
	return fmt.Sprintf("part(%d)", uint8(k))
}

// Pool is a stocked spare-part pool with restocking lead time. Robots carry
// spares from the pool ("the robots can carry spares", §3.3.2); technicians
// draw from the same stock.
type Pool struct {
	eng *sim.Engine

	stock     map[PartKind]int
	reorderAt map[PartKind]int
	orderQty  map[PartKind]int
	leadTime  sim.Time
	onOrder   map[PartKind]int

	Stockouts int // draws that found the shelf empty
	Consumed  map[PartKind]int
}

// NewPool creates a pool with the given initial stock levels, reorder
// points and restock lead time.
func NewPool(eng *sim.Engine, initial map[PartKind]int, leadTime sim.Time) *Pool {
	p := &Pool{
		eng:       eng,
		stock:     make(map[PartKind]int),
		reorderAt: make(map[PartKind]int),
		orderQty:  make(map[PartKind]int),
		onOrder:   make(map[PartKind]int),
		leadTime:  leadTime,
		Consumed:  make(map[PartKind]int),
	}
	for k, v := range initial {
		p.stock[k] = v
		p.reorderAt[k] = v / 2
		p.orderQty[k] = v
	}
	return p
}

// DefaultStock returns a stock plan sized to a network: spares proportional
// to the installed base.
func DefaultStock(net *topology.Network) map[PartKind]int {
	xcvrs, cables := 0, 0
	for _, l := range net.Links {
		if l.Cable.Class.NeedsTransceiver() {
			xcvrs += 2
		}
		cables++
	}
	return map[PartKind]int{
		PartXcvr:             max(6, xcvrs/20),
		PartCable:            max(4, cables/25),
		PartLineCard:         3,
		PartCleaningSupplies: 200,
	}
}

// Stock returns the current shelf count.
func (p *Pool) Stock(k PartKind) int { return p.stock[k] }

// Take draws one part, triggering a reorder when the shelf crosses the
// reorder point. It returns false on a stockout (the repair must wait or
// the actor retries later).
func (p *Pool) Take(k PartKind) bool {
	if p.stock[k] <= 0 {
		p.Stockouts++
		p.reorder(k)
		return false
	}
	p.stock[k]--
	p.Consumed[k]++
	if p.stock[k] <= p.reorderAt[k] {
		p.reorder(k)
	}
	return true
}

func (p *Pool) reorder(k PartKind) {
	if p.onOrder[k] > 0 {
		return
	}
	qty := p.orderQty[k]
	if qty <= 0 {
		qty = 1
	}
	p.onOrder[k] = qty
	p.eng.After(p.leadTime, "restock", func() {
		p.stock[k] += p.onOrder[k]
		p.onOrder[k] = 0
	})
}

// --- right-provisioning ---------------------------------------------------

// ProvisioningInput describes one redundancy group: n links that share k
// spares, each failing at annualRate, repaired in mttr on average.
type ProvisioningInput struct {
	Links      int
	AnnualRate float64  // failures per link-year
	MTTR       sim.Time // mean time to repair
	Target     float64  // required probability that failures <= spares
}

// RedundancyNeeded returns the smallest number of spare links k such that
// the probability of more than k concurrent failures stays below 1-Target,
// treating concurrent failures as Poisson with mean
// links * annualRate * (MTTR/year) — the standard machine-repair
// approximation when repairs are fast relative to failures.
func RedundancyNeeded(in ProvisioningInput) int {
	m := float64(in.Links) * in.AnnualRate * float64(in.MTTR) / float64(sim.Year)
	if m <= 0 {
		return 0
	}
	// Walk the Poisson CDF.
	p := math.Exp(-m) // P(X=0)
	cdf := p
	k := 0
	for cdf < in.Target && k < in.Links {
		k++
		p *= m / float64(k)
		cdf += p
	}
	return k
}

// ProvisioningRow is one line of the right-provisioning table: a repair
// regime and the redundancy it requires.
type ProvisioningRow struct {
	Regime  string
	MTTR    sim.Time
	Spares  int
	CostPct float64 // spares as a percentage of the group size
}

// ProvisioningSweep evaluates RedundancyNeeded across repair regimes for a
// group, producing the paper's overprovisioning-vs-repair-speed tradeoff.
func ProvisioningSweep(links int, annualRate, target float64, regimes map[string]sim.Time) []ProvisioningRow {
	out := make([]ProvisioningRow, 0, len(regimes))
	// Sorted-name iteration keeps rows with equal MTTR in a stable order
	// (the insertion sort below is stable, so ties keep this base order).
	for _, name := range detsort.Keys(regimes) {
		mttr := regimes[name]
		k := RedundancyNeeded(ProvisioningInput{
			Links: links, AnnualRate: annualRate, MTTR: mttr, Target: target,
		})
		out = append(out, ProvisioningRow{
			Regime: name, MTTR: mttr, Spares: k,
			CostPct: 100 * float64(k) / float64(links),
		})
	}
	// Stable ordering: slowest repairs first.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].MTTR > out[j-1].MTTR; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
