package inventory

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

func TestPoolTakeAndRestock(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPool(eng, map[PartKind]int{PartXcvr: 4}, 2*sim.Day)
	for i := 0; i < 4; i++ {
		if !p.Take(PartXcvr) {
			t.Fatalf("take %d failed with stock", i)
		}
	}
	if p.Stock(PartXcvr) != 0 {
		t.Fatal("stock not depleted")
	}
	if p.Take(PartXcvr) {
		t.Fatal("take succeeded on empty shelf")
	}
	if p.Stockouts != 1 {
		t.Fatalf("stockouts = %d", p.Stockouts)
	}
	// Restock arrives after the lead time.
	eng.RunUntil(3 * sim.Day)
	if p.Stock(PartXcvr) != 4 {
		t.Fatalf("stock after restock = %d", p.Stock(PartXcvr))
	}
	if p.Consumed[PartXcvr] != 4 {
		t.Fatalf("consumed = %d", p.Consumed[PartXcvr])
	}
}

func TestPoolReorderPoint(t *testing.T) {
	eng := sim.NewEngine(2)
	p := NewPool(eng, map[PartKind]int{PartCable: 8}, sim.Day)
	// Reorder point is initial/2 = 4: taking 4 parts crosses it.
	for i := 0; i < 4; i++ {
		p.Take(PartCable)
	}
	eng.RunUntil(2 * sim.Day)
	if p.Stock(PartCable) != 12 { // 4 remaining + 8 reordered
		t.Fatalf("stock = %d, want 12", p.Stock(PartCable))
	}
	// Only one order in flight at a time.
	eng2 := sim.NewEngine(3)
	p2 := NewPool(eng2, map[PartKind]int{PartCable: 4}, 10*sim.Day)
	for i := 0; i < 4; i++ {
		p2.Take(PartCable)
	}
	p2.Take(PartCable) // stockout; must not double-order
	eng2.RunUntil(11 * sim.Day)
	if p2.Stock(PartCable) != 4 {
		t.Fatalf("double order: stock = %d", p2.Stock(PartCable))
	}
}

func TestDefaultStockScalesWithNetwork(t *testing.T) {
	small, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 2, Uplinks: 1, FabricGbps: 400, HostGbps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	big, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 16, Spines: 4, HostsPerLeaf: 32, Uplinks: 2, FabricGbps: 400, HostGbps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := DefaultStock(small), DefaultStock(big)
	if s2[PartXcvr] <= s1[PartXcvr] || s2[PartCable] <= s1[PartCable] {
		t.Fatalf("stock does not scale: %v vs %v", s1, s2)
	}
	for _, k := range []PartKind{PartXcvr, PartCable, PartLineCard, PartCleaningSupplies} {
		if s1[k] <= 0 {
			t.Fatalf("zero stock for %v", k)
		}
	}
}

func TestRedundancyNeededMonotoneInMTTR(t *testing.T) {
	base := ProvisioningInput{Links: 512, AnnualRate: 0.35, Target: 0.9999}
	prev := -1
	for _, mttr := range []sim.Time{5 * sim.Minute, 4 * sim.Hour, 3 * sim.Day, 14 * sim.Day} {
		in := base
		in.MTTR = mttr
		k := RedundancyNeeded(in)
		if k < prev {
			t.Fatalf("redundancy not monotone in MTTR: %d after %d", k, prev)
		}
		prev = k
	}
	// Minutes-scale repair needs (almost) no spares; weeks-scale needs many.
	fast := base
	fast.MTTR = 5 * sim.Minute
	slow := base
	slow.MTTR = 14 * sim.Day
	kf, ks := RedundancyNeeded(fast), RedundancyNeeded(slow)
	if kf > 1 {
		t.Fatalf("minutes-scale repair needs %d spares", kf)
	}
	if ks < 5 {
		t.Fatalf("weeks-scale repair needs only %d spares", ks)
	}
}

func TestRedundancyNeededEdgeCases(t *testing.T) {
	if RedundancyNeeded(ProvisioningInput{Links: 0, AnnualRate: 1, MTTR: sim.Day, Target: 0.99}) != 0 {
		t.Fatal("zero links needs spares")
	}
	if RedundancyNeeded(ProvisioningInput{Links: 10, AnnualRate: 0, MTTR: sim.Day, Target: 0.99}) != 0 {
		t.Fatal("zero rate needs spares")
	}
	// Impossible target clamps at the group size.
	k := RedundancyNeeded(ProvisioningInput{Links: 5, AnnualRate: 1000, MTTR: 30 * sim.Day, Target: 0.999999})
	if k > 5 {
		t.Fatalf("k=%d exceeds group size", k)
	}
}

func TestProvisioningSweep(t *testing.T) {
	rows := ProvisioningSweep(512, 0.35, 0.9999, map[string]sim.Time{
		"human-days":    3 * sim.Day,
		"human-hours":   6 * sim.Hour,
		"robot-minutes": 10 * sim.Minute,
	})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Sorted slowest-first, spares non-increasing.
	for i := 1; i < len(rows); i++ {
		if rows[i].MTTR > rows[i-1].MTTR {
			t.Fatal("rows not sorted by MTTR desc")
		}
		if rows[i].Spares > rows[i-1].Spares {
			t.Fatal("faster repair needs more spares")
		}
	}
	if rows[0].Regime != "human-days" || rows[2].Regime != "robot-minutes" {
		t.Fatalf("ordering: %+v", rows)
	}
	if rows[0].CostPct <= rows[2].CostPct {
		t.Fatal("cost not reduced by fast repair")
	}
}

func TestPartKindStrings(t *testing.T) {
	if PartXcvr.String() != "transceiver" || PartKind(99).String() == "" {
		t.Error("part names")
	}
}
