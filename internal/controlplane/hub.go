package controlplane

import (
	"errors"
	"strconv"
	"sync"

	"repro/internal/detsort"
	"repro/internal/sim"
)

// Config bounds a hub. The zero value selects the defaults.
type Config struct {
	// QueueCap bounds each client's send queue (frames). Default 256.
	QueueCap int
	// Retain is how many recent frames the hub keeps for resume. Default
	// 4096.
	Retain int
	// MaxSessions bounds the session registry; beyond it the least
	// recently used detached session is evicted (its resume token then
	// falls back to a fresh snapshot). Default 16384.
	MaxSessions int
}

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	if c.Retain <= 0 {
		c.Retain = 4096
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 16384
	}
	return c
}

// session is the durable half of a subscription: it survives disconnects
// so a watcher can resume. Sessions are tiny on purpose — the send queue
// dies with the connection; only the identity and progress marker persist.
type session struct {
	id       string
	client   string // client-chosen name, informational
	lastSeq  uint64 // last sequence handed to the stream writer
	lastUse  uint64 // hub op counter, for LRU eviction
	attached bool
}

// client is one live stream attachment.
type client struct {
	sess   *session
	topics map[Topic]bool // nil = all topics
	q      queue
	wake   chan struct{}

	// Backpressure accounting, cumulative for the connection.
	dropped     uint64
	coalesced   uint64
	droppedBy   map[Topic]uint64
	coalescedBy map[Topic]uint64
	// reported is dropped+coalesced as of the last in-band drops frame;
	// the writer emits a new one whenever the sum has advanced.
	reported uint64
}

func (c *client) wants(t Topic) bool { return c.topics == nil || c.topics[t] }

// ErrSessionBusy is returned by Attach when the resume token names a
// session that already has a live stream.
var ErrSessionBusy = errors.New("controlplane: session already attached")

// Hub fans frames out from one publisher (the simulation thread) to many
// subscriber goroutines. One mutex guards all hub state; no operation
// under it blocks, so the publisher is never at the mercy of a slow
// watcher.
type Hub struct {
	mu  sync.Mutex
	cfg Config

	//selfmaint:guardedby mu
	seq uint64
	// view is the materialized keyed state: topic → key → newest frame.
	//selfmaint:guardedby mu
	view map[Topic]map[string]*Frame
	// ring retains the last cfg.Retain frames for resume; frame seq s
	// lives at ring[(s-1) % len(ring)].
	//selfmaint:guardedby mu
	ring []*Frame
	//selfmaint:guardedby mu
	clients []*client
	//selfmaint:guardedby mu
	sessions map[string]*session
	//selfmaint:guardedby mu
	sessSeq uint64
	//selfmaint:guardedby mu
	op uint64

	// snapCache is the lazily rebuilt encoded snapshot, invalidated by any
	// keyed publish. snapSeq is the sequence it is consistent at.
	//selfmaint:guardedby mu
	snapCache []byte
	//selfmaint:guardedby mu
	snapSeq uint64
	//selfmaint:guardedby mu
	snapValid bool

	//selfmaint:guardedby mu
	published uint64
	//selfmaint:guardedby mu
	dropped uint64
	//selfmaint:guardedby mu
	coalesced uint64
	//selfmaint:guardedby mu
	droppedBy map[Topic]uint64
	//selfmaint:guardedby mu
	coalescedBy map[Topic]uint64
}

// NewHub creates an empty hub.
func NewHub(cfg Config) *Hub {
	return &Hub{
		cfg:         cfg.withDefaults(),
		view:        make(map[Topic]map[string]*Frame),
		ring:        make([]*Frame, cfg.withDefaults().Retain),
		sessions:    make(map[string]*session),
		droppedBy:   make(map[Topic]uint64),
		coalescedBy: make(map[Topic]uint64),
	}
}

// Publish stamps a frame with the next hub sequence number, folds keyed
// frames into the materialized view, retains it for resume, and offers it
// to every subscribed client. It never blocks: full client queues drop
// their oldest frame (counted) and keyed frames coalesce. data must not be
// mutated after the call; tombstones (del) clear key from the view.
func (h *Hub) Publish(t Topic, key string, del bool, at sim.Time, data []byte) *Frame {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.seq++
	f := &Frame{Seq: h.seq, At: at, Topic: t, Key: key, Delete: del, Data: data}
	f.renderWire()
	h.ring[(f.Seq-1)%uint64(len(h.ring))] = f
	if key != "" {
		m := h.view[t]
		if m == nil {
			m = make(map[string]*Frame)
			h.view[t] = m
		}
		if del {
			delete(m, key)
		} else {
			m[key] = f
		}
		h.snapValid = false
	}
	h.published++
	for _, c := range h.clients {
		if c.wants(t) {
			h.offerLocked(c, f)
		}
	}
	return f
}

// offerLocked enqueues f on one client under the backpressure policy.
func (h *Hub) offerLocked(c *client, f *Frame) {
	if f.Key != "" && c.q.coalesce(f.Topic, f.Key) {
		c.coalesced++
		c.coalescedBy[f.Topic]++
		h.coalesced++
		h.coalescedBy[f.Topic]++
	}
	if c.q.full() {
		if old, _ := c.q.pop(); old != nil {
			c.dropped++
			c.droppedBy[old.Topic]++
			h.dropped++
			h.droppedBy[old.Topic]++
		}
	}
	c.q.push(f)
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// AttachOptions parameterize a stream attachment.
type AttachOptions struct {
	// Client is the client-chosen name carried in the session registry.
	Client string
	// Topics filters the delta stream; nil or empty subscribes to all
	// topics. The snapshot always carries the full keyed state.
	Topics []Topic
	// Resume is a session token from a previous hello frame; empty starts
	// a new session.
	Resume string
	// Last is the sequence number of the last frame the client processed,
	// meaningful only with Resume.
	Last uint64
}

// Attachment is a live subscription plus everything the handshake frames
// need.
type Attachment struct {
	c *client
	h *Hub
	// Session is the session id, which doubles as the resume token.
	Session string
	// Seq is the base sequence: the snapshot's consistency point, or the
	// resume point. Deltas continue from Seq+1.
	Seq uint64
	// Resumed reports that the hub replayed deltas instead of snapshotting.
	Resumed bool
	// Snapshot is the encoded state snapshot; nil when Resumed.
	Snapshot []byte
}

// Attach opens a subscription. New sessions (and resume tokens the hub no
// longer recognizes, or whose resume point has left the retention ring)
// get a consistent snapshot at Attachment.Seq with deltas queued from
// Seq+1; recognized tokens within retention get their missed frames
// replayed instead, subject to the same queue policy as live delivery.
func (h *Hub) Attach(o AttachOptions) (*Attachment, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.op++

	var topics map[Topic]bool
	if len(o.Topics) > 0 {
		topics = make(map[Topic]bool, len(o.Topics))
		for _, t := range o.Topics {
			topics[t] = true
		}
	}

	sess := h.sessions[o.Resume]
	resumable := false
	if o.Resume != "" && sess != nil {
		if sess.attached {
			return nil, ErrSessionBusy
		}
		// Resume needs every frame in (Last, seq] still retained.
		resumable = o.Last <= h.seq && h.coversLocked(o.Last+1)
	}
	if sess == nil {
		h.evictSessionsLocked()
		h.sessSeq++
		sess = &session{id: "s" + strconv.FormatUint(h.sessSeq, 10)}
		h.sessions[sess.id] = sess
	}
	sess.client = o.Client
	sess.lastUse = h.op
	sess.attached = true

	c := &client{
		sess: sess, topics: topics, q: newQueue(h.cfg.QueueCap),
		wake:        make(chan struct{}, 1),
		droppedBy:   make(map[Topic]uint64),
		coalescedBy: make(map[Topic]uint64),
	}
	att := &Attachment{c: c, h: h, Session: sess.id}
	if resumable {
		att.Resumed = true
		att.Seq = o.Last
		h.replayLocked(c, o.Last)
	} else {
		att.Snapshot = h.snapshotLocked()
		att.Seq = h.snapSeq
		// Unkeyed frames published since the cached snapshot was built are
		// not in it; replay them so the stream is gapless from snapSeq+1.
		h.replayLocked(c, h.snapSeq)
	}
	sess.lastSeq = att.Seq
	h.clients = append(h.clients, c)
	return att, nil
}

// Take drains up to max pending frames, advancing the session's resume
// cursor past them. Frames come back in sequence order; drops is a
// rendered backpressure report when the drop/coalesce counters advanced
// since the last report, nil otherwise. It is the in-process form of the
// stream writer's drain, for tests and load harnesses; poll it or select
// on Wake.
func (a *Attachment) Take(max int) (frames []*Frame, drops []byte) {
	return a.h.take(a.c, nil, max)
}

// Wake returns the attachment's wakeup channel: a buffered signal that
// fires when new frames are queued.
func (a *Attachment) Wake() <-chan struct{} { return a.c.wake }

// coversLocked reports whether frame sequence s is still in the retention
// ring.
func (h *Hub) coversLocked(s uint64) bool {
	if s > h.seq {
		return true // nothing to replay at all
	}
	oldest := uint64(1)
	if h.seq > uint64(len(h.ring)) {
		oldest = h.seq - uint64(len(h.ring)) + 1
	}
	return s >= oldest
}

// replayLocked seeds c's queue with the retained frames in (after, seq]
// matching its topic filter. The caller has verified coverage.
func (h *Hub) replayLocked(c *client, after uint64) {
	for s := after + 1; s <= h.seq; s++ {
		f := h.ring[(s-1)%uint64(len(h.ring))]
		if f != nil && c.wants(f.Topic) {
			h.offerLocked(c, f)
		}
	}
}

// snapshotLocked returns the encoded snapshot, rebuilding the cache if any
// keyed state changed since it was last rendered — or if frames older than
// the cache have already left the retention ring, which would leave a gap
// between the cached snapshot and the live stream.
func (h *Hub) snapshotLocked() []byte {
	if h.snapValid && h.coversLocked(h.snapSeq+1) {
		return h.snapCache
	}
	b := make([]byte, 0, 4096)
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, h.seq, 10)
	b = append(b, `,"state":{`...)
	for i, t := range detsort.KeysInto(make([]Topic, 0, len(h.view)), h.view) {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, string(t))
		b = append(b, ':', '{')
		m := h.view[t]
		for j, k := range detsort.Keys(m) {
			if j > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendQuote(b, k)
			b = append(b, ':')
			b = append(b, m[k].Data...)
		}
		b = append(b, '}')
	}
	b = append(b, '}', '}')
	h.snapCache = b
	h.snapSeq = h.seq
	h.snapValid = true
	return b
}

// evictSessionsLocked makes room in the session registry by evicting the
// least recently used detached sessions. Attached sessions are never
// evicted.
func (h *Hub) evictSessionsLocked() {
	for len(h.sessions) >= h.cfg.MaxSessions {
		var victim *session
		//lint:allow mapiter LRU scan selects the unique minimum lastUse; map order cannot change the result
		for _, s := range h.sessions {
			if s.attached {
				continue
			}
			if victim == nil || s.lastUse < victim.lastUse {
				victim = s
			}
		}
		if victim == nil {
			return // every session is live; the registry grows past the cap
		}
		delete(h.sessions, victim.id)
	}
}

// Detach closes the attachment's live half. The session stays registered
// for resume.
func (h *Hub) Detach(a *Attachment) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.op++
	a.c.sess.attached = false
	a.c.sess.lastUse = h.op
	for i, c := range h.clients {
		if c == a.c {
			last := len(h.clients) - 1
			h.clients[i] = h.clients[last]
			h.clients[last] = nil
			h.clients = h.clients[:last]
			break
		}
	}
}

// take drains up to max queued frames and, when the drop/coalesce
// counters advanced since the last report, an encoded in-band drops
// report. It advances the session's progress marker: the stream writer is
// about to put these frames on the wire, and a client that loses them to
// a dead connection re-acks via Last on resume.
func (h *Hub) take(c *client, dst []*Frame, max int) ([]*Frame, []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(dst) < max {
		f, ok := c.q.pop()
		if !ok {
			break
		}
		if f != nil {
			dst = append(dst, f)
		}
	}
	if len(dst) > 0 {
		c.sess.lastSeq = dst[len(dst)-1].Seq
	}
	var rep []byte
	if c.dropped+c.coalesced > c.reported {
		c.reported = c.dropped + c.coalesced
		rep = renderDrops(c)
	}
	return dst, rep
}

// renderDrops encodes a client's cumulative backpressure counters. Called
// with the hub lock held.
func renderDrops(c *client) []byte {
	b := make([]byte, 0, 128)
	b = append(b, `{"dropped":`...)
	b = strconv.AppendUint(b, c.dropped, 10)
	b = append(b, `,"coalesced":`...)
	b = strconv.AppendUint(b, c.coalesced, 10)
	b = append(b, `,"by_topic":{`...)
	topics := make(map[Topic]bool, len(c.droppedBy)+len(c.coalescedBy))
	for t := range c.droppedBy {
		topics[t] = true
	}
	for t := range c.coalescedBy {
		topics[t] = true
	}
	for i, t := range detsort.Keys(topics) {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, string(t))
		b = append(b, `:{"dropped":`...)
		b = strconv.AppendUint(b, c.droppedBy[t], 10)
		b = append(b, `,"coalesced":`...)
		b = strconv.AppendUint(b, c.coalescedBy[t], 10)
		b = append(b, '}')
	}
	b = append(b, '}', '}')
	return b
}

// Seq returns the hub's current sequence number.
func (h *Hub) Seq() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seq
}

// ViewPayload returns the newest payload for (topic, key), or nil. The
// returned bytes are shared and must not be mutated.
func (h *Hub) ViewPayload(t Topic, key string) []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	if f := h.view[t][key]; f != nil {
		return f.Data
	}
	return nil
}

// ViewEntry is one keyed state row.
type ViewEntry struct {
	Key  string
	Data []byte // shared, read-only
}

// ViewEntries returns the topic's materialized state sorted by key.
func (h *Hub) ViewEntries(t Topic) []ViewEntry {
	h.mu.Lock()
	defer h.mu.Unlock()
	m := h.view[t]
	out := make([]ViewEntry, 0, len(m))
	for _, k := range detsort.Keys(m) {
		out = append(out, ViewEntry{Key: k, Data: m[k].Data})
	}
	return out
}

// Stats is a point-in-time hub census.
type Stats struct {
	Clients   int    `json:"clients"`
	Sessions  int    `json:"sessions"`
	Seq       uint64 `json:"seq"`
	Published uint64 `json:"published"`
	Dropped   uint64 `json:"dropped"`
	Coalesced uint64 `json:"coalesced"`
	// Queued is the total frames sitting in client queues right now.
	Queued int `json:"queued"`
}

// Stats returns aggregate counters across all clients, live and past.
func (h *Hub) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := Stats{
		Clients: len(h.clients), Sessions: len(h.sessions), Seq: h.seq,
		Published: h.published, Dropped: h.dropped, Coalesced: h.coalesced,
	}
	for _, c := range h.clients {
		st.Queued += c.q.n
	}
	return st
}

// DropsByTopic returns a copy of the per-topic drop and coalesce counters.
func (h *Hub) DropsByTopic() (dropped, coalesced map[Topic]uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	dropped = make(map[Topic]uint64, len(h.droppedBy))
	coalesced = make(map[Topic]uint64, len(h.coalescedBy))
	for t, n := range h.droppedBy {
		dropped[t] = n
	}
	for t, n := range h.coalescedBy {
		coalesced[t] = n
	}
	return dropped, coalesced
}

// SessionInfo describes one registered session.
type SessionInfo struct {
	ID       string `json:"id"`
	Client   string `json:"client,omitempty"`
	LastSeq  uint64 `json:"last_seq"`
	Attached bool   `json:"attached"`
}

// Sessions lists the registered sessions sorted by id.
func (h *Hub) Sessions() []SessionInfo {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]SessionInfo, 0, len(h.sessions))
	for _, id := range detsort.Keys(h.sessions) {
		s := h.sessions[id]
		out = append(out, SessionInfo{ID: s.id, Client: s.client, LastSeq: s.lastSeq, Attached: s.attached})
	}
	return out
}
