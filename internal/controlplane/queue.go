package controlplane

// queue is a fixed-capacity ring of frames, the per-client send buffer.
// All methods are called with the hub lock held; the queue itself has no
// synchronization.
//
// Coalescing punches holes: when a newer frame supersedes a queued one
// with the same (topic, key), the old slot is nil-ed in place and the new
// frame appends at the tail, so the surviving stream stays sequence-
// monotonic. Holes occupy slots until they reach the head, where popping
// them is free (they are not drops — their replacement is still queued).
type queue struct {
	buf  []*Frame
	head int // index of the oldest slot
	n    int // occupied slots, including holes
}

func newQueue(capacity int) queue {
	return queue{buf: make([]*Frame, capacity)}
}

func (q *queue) full() bool { return q.n == len(q.buf) }

// coalesce nils out the queued frame with the same (topic, key), if any,
// and reports whether it did.
func (q *queue) coalesce(t Topic, key string) bool {
	for i := 0; i < q.n; i++ {
		idx := (q.head + i) % len(q.buf)
		if f := q.buf[idx]; f != nil && f.Topic == t && f.Key == key {
			q.buf[idx] = nil
			return true
		}
	}
	return false
}

// pop removes the oldest slot. The returned frame is nil when the slot was
// a coalesce hole; ok is false only when the queue is empty.
func (q *queue) pop() (f *Frame, ok bool) {
	if q.n == 0 {
		return nil, false
	}
	f = q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return f, true
}

// push appends at the tail; the caller guarantees room.
func (q *queue) push(f *Frame) {
	q.buf[(q.head+q.n)%len(q.buf)] = f
	q.n++
}
