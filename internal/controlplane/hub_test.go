package controlplane

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"repro/internal/sim"
)

func pub(h *Hub, t Topic, key string, payload string) *Frame {
	return h.Publish(t, key, false, sim.Hour, []byte(payload))
}

func drainAll(h *Hub, a *Attachment) []*Frame {
	var out []*Frame
	for {
		frames, _ := h.take(a.c, nil, 1024)
		if len(frames) == 0 {
			return out
		}
		out = append(out, frames...)
	}
}

func TestQueuePolicyDropOldest(t *testing.T) {
	h := NewHub(Config{QueueCap: 4})
	a, err := h.Attach(AttachOptions{Client: "t"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		pub(h, "ev", "", fmt.Sprintf(`{"i":%d}`, i))
	}
	frames := drainAll(h, a)
	if len(frames) != 4 {
		t.Fatalf("queue cap 4 delivered %d frames", len(frames))
	}
	// Oldest dropped: the survivors are the newest four, in order.
	for i, f := range frames {
		if want := uint64(7 + i); f.Seq != want {
			t.Fatalf("frame %d seq = %d, want %d", i, f.Seq, want)
		}
	}
	st := h.Stats()
	if st.Dropped != 6 || st.Coalesced != 0 {
		t.Fatalf("stats dropped=%d coalesced=%d, want 6, 0", st.Dropped, st.Coalesced)
	}
	dropped, _ := h.DropsByTopic()
	if dropped["ev"] != 6 {
		t.Fatalf("per-topic drops = %v, want ev:6", dropped)
	}
}

func TestQueuePolicyCoalesceByKey(t *testing.T) {
	h := NewHub(Config{QueueCap: 8})
	a, err := h.Attach(AttachOptions{Client: "t"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		pub(h, TopicStatus, "status", fmt.Sprintf(`{"v":%d}`, i))
	}
	pub(h, TopicHealth, "linkA", `{"h":"down"}`)
	frames := drainAll(h, a)
	// Only the newest status survives, plus the health frame.
	if len(frames) != 2 {
		t.Fatalf("coalescing delivered %d frames, want 2: %v", len(frames), frames)
	}
	if string(frames[0].Data) != `{"v":4}` || frames[0].Topic != TopicStatus {
		t.Fatalf("surviving status frame = %s %s", frames[0].Topic, frames[0].Data)
	}
	if frames[1].Topic != TopicHealth {
		t.Fatalf("second frame topic = %s, want cp.health", frames[1].Topic)
	}
	if st := h.Stats(); st.Coalesced != 4 || st.Dropped != 0 {
		t.Fatalf("stats coalesced=%d dropped=%d, want 4, 0", st.Coalesced, st.Dropped)
	}
}

// TestCoalesceHolesAreNotDrops pins the hole semantics: a slot vacated by
// coalescing must not count as a drop when it reaches the head.
func TestCoalesceHolesAreNotDrops(t *testing.T) {
	h := NewHub(Config{QueueCap: 3})
	a, err := h.Attach(AttachOptions{Client: "t"})
	if err != nil {
		t.Fatal(err)
	}
	pub(h, TopicStatus, "status", `{"v":0}`) // slot 0, becomes a hole
	pub(h, "ev", "", `{"i":1}`)              // slot 1
	pub(h, TopicStatus, "status", `{"v":1}`) // coalesces slot 0, fills slot 2
	pub(h, "ev", "", `{"i":2}`)              // queue full: head slot is the hole — free
	frames := drainAll(h, a)
	if len(frames) != 3 {
		t.Fatalf("delivered %d frames, want 3", len(frames))
	}
	if st := h.Stats(); st.Dropped != 0 || st.Coalesced != 1 {
		t.Fatalf("stats dropped=%d coalesced=%d, want 0, 1", st.Dropped, st.Coalesced)
	}
	for i := 1; i < len(frames); i++ {
		if frames[i].Seq <= frames[i-1].Seq {
			t.Fatalf("stream not seq-monotonic: %d then %d", frames[i-1].Seq, frames[i].Seq)
		}
	}
}

func TestSnapshotMaterializesLatestKeyedState(t *testing.T) {
	h := NewHub(Config{})
	pub(h, TopicStatus, "status", `{"v":1}`)
	pub(h, TopicHealth, "linkA", `{"h":"flapping"}`)
	pub(h, TopicHealth, "linkB", `{"h":"down"}`)
	pub(h, TopicStatus, "status", `{"v":2}`)
	h.Publish(TopicHealth, "linkA", true, sim.Hour, nil) // linkA recovered
	pub(h, "ev", "", `{"transient":true}`)               // unkeyed: not in view

	a, err := h.Attach(AttachOptions{Client: "t"})
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Seq   uint64                               `json:"seq"`
		State map[string]map[string]map[string]any `json:"state"`
	}
	if err := json.Unmarshal(a.Snapshot, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, a.Snapshot)
	}
	if snap.Seq != 6 {
		t.Fatalf("snapshot seq = %d, want 6", snap.Seq)
	}
	if v := snap.State["cp.status"]["status"]["v"]; v != float64(2) {
		t.Fatalf("status in snapshot = %v, want latest (v=2)", snap.State["cp.status"])
	}
	if _, there := snap.State["cp.health"]["linkA"]; there {
		t.Fatalf("tombstoned linkA still in snapshot: %v", snap.State["cp.health"])
	}
	if h := snap.State["cp.health"]["linkB"]["h"]; h != "down" {
		t.Fatalf("linkB health = %v, want down", h)
	}
	if _, there := snap.State["ev"]; there {
		t.Fatal("unkeyed topic leaked into the snapshot view")
	}
	if got := h.ViewPayload(TopicStatus, "status"); string(got) != `{"v":2}` {
		t.Fatalf("ViewPayload = %s, want latest status", got)
	}
	if entries := h.ViewEntries(TopicHealth); len(entries) != 1 || entries[0].Key != "linkB" {
		t.Fatalf("ViewEntries(health) = %v, want [linkB]", entries)
	}
}

// TestSnapshotThenDeltaGapless is the core sync invariant: a subscriber
// gets a snapshot consistent at S, then every frame from S+1 on, even when
// the cached snapshot predates recent unkeyed traffic.
func TestSnapshotThenDeltaGapless(t *testing.T) {
	h := NewHub(Config{})
	pub(h, TopicStatus, "status", `{"v":1}`) // seq 1: builds view
	first, err := h.Attach(AttachOptions{Client: "warm"})
	if err != nil {
		t.Fatal(err)
	}
	h.Detach(first) // forces the snapshot cache to be built at seq 1

	// Unkeyed events do not invalidate the cache...
	pub(h, "ev", "", `{"i":1}`) // seq 2
	pub(h, "ev", "", `{"i":2}`) // seq 3

	a, err := h.Attach(AttachOptions{Client: "t"})
	if err != nil {
		t.Fatal(err)
	}
	// ...so the second subscriber gets the cached snapshot at seq 1 and
	// must be seeded with the two events published since.
	if a.Seq != 1 {
		t.Fatalf("attachment base seq = %d, want cached snapshot at 1", a.Seq)
	}
	pub(h, "ev", "", `{"i":3}`) // seq 4, live
	frames := drainAll(h, a)
	if len(frames) != 3 {
		t.Fatalf("got %d deltas, want 3 (2 replayed + 1 live)", len(frames))
	}
	for i, f := range frames {
		if want := a.Seq + 1 + uint64(i); f.Seq != want {
			t.Fatalf("delta %d seq = %d, want %d (gapless from snapshot)", i, f.Seq, want)
		}
	}
}

func TestResumeWithinRetention(t *testing.T) {
	h := NewHub(Config{})
	pub(h, TopicStatus, "status", `{"v":1}`)
	a, err := h.Attach(AttachOptions{Client: "t"})
	if err != nil {
		t.Fatal(err)
	}
	frames := drainAll(h, a)
	_ = frames
	h.Detach(a)
	// Missed while away:
	pub(h, "ev", "", `{"i":1}`)
	pub(h, TopicStatus, "status", `{"v":2}`)

	b, err := h.Attach(AttachOptions{Client: "t", Resume: a.Session, Last: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Resumed || b.Snapshot != nil {
		t.Fatalf("resume within retention: Resumed=%v Snapshot=%v, want replay", b.Resumed, b.Snapshot != nil)
	}
	if b.Session != a.Session {
		t.Fatalf("resumed session id = %s, want %s", b.Session, a.Session)
	}
	replayed := drainAll(h, b)
	if len(replayed) != 2 || replayed[0].Seq != 2 || replayed[1].Seq != 3 {
		t.Fatalf("replayed %v, want seqs [2 3]", replayed)
	}
}

func TestResumeFallsBackToSnapshotWhenOverrun(t *testing.T) {
	h := NewHub(Config{Retain: 4})
	a, err := h.Attach(AttachOptions{Client: "t"})
	if err != nil {
		t.Fatal(err)
	}
	h.Detach(a)
	for i := 0; i < 10; i++ {
		pub(h, "ev", "", fmt.Sprintf(`{"i":%d}`, i))
	}
	// Frames 1..6 have left the 4-deep ring; last=2 is unreachable.
	b, err := h.Attach(AttachOptions{Client: "t", Resume: a.Session, Last: 2})
	if err != nil {
		t.Fatal(err)
	}
	if b.Resumed {
		t.Fatal("resume beyond retention must fall back to snapshot")
	}
	if b.Snapshot == nil {
		t.Fatal("fallback attachment has no snapshot")
	}
	if b.Seq != 10 {
		t.Fatalf("fallback snapshot seq = %d, want 10 (fresh)", b.Seq)
	}
	if got := drainAll(h, b); len(got) != 0 {
		t.Fatalf("fallback queued %d stale frames, want 0", len(got))
	}
}

func TestResumeUnknownTokenStartsFreshSession(t *testing.T) {
	h := NewHub(Config{})
	pub(h, TopicStatus, "status", `{"v":1}`)
	a, err := h.Attach(AttachOptions{Client: "t", Resume: "s999", Last: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Resumed {
		t.Fatal("unknown token must not resume")
	}
	if a.Session == "s999" {
		t.Fatal("unknown token must be replaced with a fresh session id")
	}
}

func TestResumeBusySessionRejected(t *testing.T) {
	h := NewHub(Config{})
	a, err := h.Attach(AttachOptions{Client: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Attach(AttachOptions{Client: "t2", Resume: a.Session}); err != ErrSessionBusy {
		t.Fatalf("second attach on a live session: err = %v, want ErrSessionBusy", err)
	}
}

func TestTopicFilter(t *testing.T) {
	h := NewHub(Config{})
	a, err := h.Attach(AttachOptions{Client: "t", Topics: []Topic{"sense.alert"}})
	if err != nil {
		t.Fatal(err)
	}
	pub(h, "sense.alert", "", `{"a":1}`)
	pub(h, "journal.decision", "", `{"d":1}`)
	pub(h, "sense.alert", "", `{"a":2}`)
	frames := drainAll(h, a)
	if len(frames) != 2 {
		t.Fatalf("filtered stream delivered %d frames, want 2", len(frames))
	}
	for _, f := range frames {
		if f.Topic != "sense.alert" {
			t.Fatalf("filter leaked topic %s", f.Topic)
		}
	}
}

func TestSessionEvictionLRU(t *testing.T) {
	h := NewHub(Config{MaxSessions: 2})
	a1, _ := h.Attach(AttachOptions{Client: "a"})
	h.Detach(a1)
	a2, _ := h.Attach(AttachOptions{Client: "b"})
	h.Detach(a2)
	// Third session evicts the least recently used detached one (a1).
	a3, _ := h.Attach(AttachOptions{Client: "c"})
	if got := len(h.Sessions()); got != 2 {
		t.Fatalf("session registry holds %d, want 2", got)
	}
	if r, _ := h.Attach(AttachOptions{Client: "a", Resume: a1.Session, Last: 0}); r.Session == a1.Session {
		t.Fatal("evicted session resumed instead of falling back")
	}
	_ = a3
}

// TestPublisherNeverBlocksOnSlowClient is the backpressure contract: with
// one client never draining, publishing must complete and fast clients
// must see everything.
func TestPublisherNeverBlocksOnSlowClient(t *testing.T) {
	h := NewHub(Config{QueueCap: 8})
	slow, err := h.Attach(AttachOptions{Client: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := h.Attach(AttachOptions{Client: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	var got []*Frame
	for i := 0; i < 1000; i++ {
		pub(h, "ev", "", fmt.Sprintf(`{"i":%d}`, i))
		got = append(got, drainAll(h, fast)...) // fast client keeps up
	}
	if len(got) != 1000 {
		t.Fatalf("fast client received %d/1000 frames", len(got))
	}
	frames, rep := h.take(slow.c, nil, 10000)
	if len(frames) != 8 {
		t.Fatalf("slow client queue delivered %d frames, want cap 8", len(frames))
	}
	if rep == nil {
		t.Fatal("slow client got no in-band drops report")
	}
	var drops struct {
		Dropped   uint64                       `json:"dropped"`
		ByTopic   map[string]map[string]uint64 `json:"by_topic"`
		Coalesced uint64                       `json:"coalesced"`
	}
	if err := json.Unmarshal(rep, &drops); err != nil {
		t.Fatalf("drops report is not JSON: %v\n%s", err, rep)
	}
	if drops.Dropped != 992 || drops.ByTopic["ev"]["dropped"] != 992 {
		t.Fatalf("drops report = %s, want 992 on topic ev", rep)
	}
}

// TestConcurrentPublishSubscribe runs a publisher against churning
// subscribers under the race detector and asserts the per-client stream
// invariant: with queues deep enough that nothing drops (and only unkeyed
// frames, so nothing coalesces), every subscriber sees a gapless strictly
// ascending sequence starting at its attachment base + 1.
func TestConcurrentPublishSubscribe(t *testing.T) {
	h := NewHub(Config{QueueCap: 4096})
	const total = 2000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			pub(h, "ev", "", `{}`)
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a, err := h.Attach(AttachOptions{Client: fmt.Sprintf("w%d", w)})
			if err != nil {
				errs <- err
				return
			}
			defer h.Detach(a)
			last := a.Seq
			verify := func(frames []*Frame) bool {
				for _, f := range frames {
					if f.Seq != last+1 {
						errs <- fmt.Errorf("w%d: gap %d -> %d with no drops possible at cap 4096", w, last, f.Seq)
						return false
					}
					last = f.Seq
				}
				return true
			}
			for {
				frames, _ := h.take(a.c, nil, 64)
				if !verify(frames) {
					return
				}
				if len(frames) == 0 {
					select {
					case <-a.c.wake:
					case <-done:
						// Publisher finished: one final drain settles it.
						frames, _ = h.take(a.c, nil, total+1)
						verify(frames)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	<-done
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := h.Stats(); st.Dropped != 0 || st.Coalesced != 0 {
		t.Fatalf("deep unkeyed queues still dropped %d / coalesced %d frames", st.Dropped, st.Coalesced)
	}
}
