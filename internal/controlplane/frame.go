// Package controlplane is the streaming control plane the selfmaintd
// daemon serves: a versioned API (protocol 1) that lets many concurrent
// watchers observe a live simulation without perturbing it.
//
// The design is snapshot-then-delta over a hub:
//
//   - The simulation side publishes Frames into a Hub. Keyed frames
//     ("cp.status", "cp.health", "cp.ticket") carry the latest state for
//     their key and fold into a materialized view; unkeyed frames (the bus
//     event topics) are transient. Every frame gets a hub-global sequence
//     number.
//   - A client handshake returns a session (id doubles as the resume
//     token), then a consistent snapshot of the view at sequence S, then
//     every subsequent frame ≥ S+1 matching its topic filter.
//   - Per-client send queues are bounded. The publisher NEVER blocks: when
//     a queue is full the oldest frame is dropped (counted per topic), and
//     keyed frames coalesce — a newer state frame replaces the queued one
//     for the same key. Drop/coalesce counts are reported to the client
//     in-band ("drops" frames) and in aggregate via Hub.Stats.
//   - A reconnect with resume=<token>&last=<seq> replays from the hub's
//     retained delta ring when it still covers last+1, and falls back to a
//     fresh snapshot otherwise.
//
// The hub is safe for one publisher (the simulation thread) and many
// concurrent subscriber goroutines. Nothing in this package reads the wall
// clock or feeds back into the simulation: watchers are observability,
// never a results knob.
package controlplane

import (
	"fmt"
	"strconv"

	"repro/internal/sim"
)

// Proto is the protocol version served by this package. Clients that
// request a different version are rejected at the handshake.
const Proto = 1

// Topic names one frame stream. The simulation feed uses the bus topic
// names for event frames and the cp.* names below for keyed state.
type Topic string

// Keyed state topics published by the selfmaint feed. They materialize
// into the hub view that snapshots (and the daemon's /status, /health and
// /tickets endpoints) are served from.
const (
	// TopicStatus carries the run summary, coalesce key "status".
	TopicStatus Topic = "cp.status"
	// TopicHealth carries per-link health, coalesce key = link name; a
	// recovery publishes a tombstone that clears the key.
	TopicHealth Topic = "cp.health"
	// TopicTicket carries ticket rows, coalesce key = ticket id.
	TopicTicket Topic = "cp.ticket"
)

// Frame is one control-plane message. Frames are immutable once published
// and shared by pointer between all subscriber queues, so a frame costs
// one encoding no matter how many watchers receive it.
type Frame struct {
	// Seq is the hub-global sequence number, assigned at publish.
	Seq uint64
	// At is the virtual time of the underlying simulation change.
	At    sim.Time
	Topic Topic
	// Key is the coalesce key; empty for transient event frames. Frames
	// with equal (Topic, Key) supersede one another: only the newest
	// matters, which is what queue coalescing and the view exploit.
	Key string
	// Delete marks a tombstone: the key leaves the materialized view (and
	// the frame is delivered so subscribers can clear their copy).
	Delete bool
	// Data is the encoded JSON payload (nil for tombstones).
	Data []byte

	// wire is the cached SSE data line: the full delta object rendered
	// once at publish time, shared by every subscriber.
	wire []byte
}

// renderWire builds the delta JSON the stream writer sends:
//
//	{"seq":7,"at":"36h0m0s","topic":"cp.health","key":"...","delete":true,"payload":{...}}
//
// key/delete/payload are omitted when empty, so transient event frames
// stay compact.
func (f *Frame) renderWire() {
	b := make([]byte, 0, 64+len(f.Key)+len(f.Data))
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, f.Seq, 10)
	b = append(b, `,"at":`...)
	b = strconv.AppendQuote(b, f.At.String())
	b = append(b, `,"topic":`...)
	b = strconv.AppendQuote(b, string(f.Topic))
	if f.Key != "" {
		b = append(b, `,"key":`...)
		b = strconv.AppendQuote(b, f.Key)
	}
	if f.Delete {
		b = append(b, `,"delete":true`...)
	}
	if len(f.Data) > 0 {
		b = append(b, `,"payload":`...)
		b = append(b, f.Data...)
	}
	b = append(b, '}')
	f.wire = b
}

// Wire returns the frame's rendered delta line (for tests and the stream
// writer).
func (f *Frame) Wire() []byte { return f.wire }

// String renders the envelope for logs.
func (f *Frame) String() string {
	return fmt.Sprintf("#%d [%v] %s/%s", f.Seq, f.At, f.Topic, f.Key)
}
