package controlplane

import (
	"net/http"
	"strconv"
	"strings"
)

// The stream endpoint speaks Server-Sent Events over chunked HTTP/1.1:
//
//	GET /v1/stream?client=NAME&proto=1&topics=cp.status,sense.alert&resume=TOKEN&last=SEQ
//
// Query parameters:
//
//	client  free-form client name, recorded in the session registry
//	proto   protocol version; absent or "1"
//	topics  comma-separated topic filter for the delta stream; absent = all
//	resume  session token from a previous hello frame
//	last    sequence number of the last frame processed (with resume)
//
// The response is a frame stream:
//
//	event: hello
//	data: {"proto":1,"session":"s7","resume":"s7","seq":184,"mode":"snapshot"}
//
//	event: snapshot            (snapshot mode only)
//	id: 184
//	data: {"seq":184,"state":{"cp.health":{...},"cp.status":{...},...}}
//
//	event: delta               (repeated; id is the hub sequence number)
//	id: 185
//	data: {"seq":185,"at":"812h",...,"payload":{...}}
//
//	event: drops               (whenever backpressure counters advance)
//	data: {"dropped":12,"coalesced":3,"by_topic":{...}}
//
// In snapshot mode the client's state is complete at seq and deltas
// continue from seq+1 with no gap unless a drops frame says otherwise. To
// resume after a disconnect, reconnect with resume=<session> and
// last=<highest delta id processed>; the hub replays the missed frames if
// they are still retained and falls back to a fresh snapshot (mode
// "snapshot", possibly under a new session id) if not.

// streamBatch is how many frames the writer drains per wakeup before
// flushing.
const streamBatch = 64

// StreamHandler returns the SSE streaming endpoint.
func (h *Hub) StreamHandler() http.Handler { return http.HandlerFunc(h.serveStream) }

func (h *Hub) serveStream(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if p := q.Get("proto"); p != "" && p != strconv.Itoa(Proto) {
		http.Error(w, `{"error":"unsupported protocol version, server speaks 1"}`, http.StatusBadRequest)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, `{"error":"streaming unsupported"}`, http.StatusInternalServerError)
		return
	}
	var last uint64
	if s := q.Get("last"); s != "" {
		var err error
		if last, err = strconv.ParseUint(s, 10, 64); err != nil {
			http.Error(w, `{"error":"bad last sequence"}`, http.StatusBadRequest)
			return
		}
	}
	var topics []Topic
	if s := q.Get("topics"); s != "" {
		for _, t := range strings.Split(s, ",") {
			if t = strings.TrimSpace(t); t != "" {
				topics = append(topics, Topic(t))
			}
		}
	}

	att, err := h.Attach(AttachOptions{
		Client: q.Get("client"), Topics: topics,
		Resume: q.Get("resume"), Last: last,
	})
	if err != nil {
		http.Error(w, `{"error":"session already has a live stream"}`, http.StatusConflict)
		return
	}
	defer h.Detach(att)

	hd := w.Header()
	hd.Set("Content-Type", "text/event-stream")
	hd.Set("Cache-Control", "no-cache")
	hd.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	mode := "snapshot"
	if att.Resumed {
		mode = "resume"
	}
	hello := make([]byte, 0, 96)
	hello = append(hello, `{"proto":1,"session":`...)
	hello = strconv.AppendQuote(hello, att.Session)
	hello = append(hello, `,"resume":`...)
	hello = strconv.AppendQuote(hello, att.Session)
	hello = append(hello, `,"seq":`...)
	hello = strconv.AppendUint(hello, att.Seq, 10)
	hello = append(hello, `,"mode":`...)
	hello = strconv.AppendQuote(hello, mode)
	hello = append(hello, '}')
	if !writeFrame(w, "hello", 0, false, hello) {
		return
	}
	if att.Snapshot != nil {
		if !writeFrame(w, "snapshot", att.Seq, true, att.Snapshot) {
			return
		}
	}
	fl.Flush()

	ctx := r.Context()
	buf := make([]*Frame, 0, streamBatch)
	for {
		select {
		case <-ctx.Done():
			return
		case <-att.c.wake:
		}
		for {
			frames, drops := h.take(att.c, buf[:0], streamBatch)
			if len(frames) == 0 && drops == nil {
				break
			}
			for _, f := range frames {
				if !writeFrame(w, "delta", f.Seq, true, f.wire) {
					return
				}
			}
			if drops != nil {
				if !writeFrame(w, "drops", 0, false, drops) {
					return
				}
			}
		}
		fl.Flush()
	}
}

// writeFrame emits one SSE frame; false means the connection is gone.
func writeFrame(w http.ResponseWriter, event string, id uint64, withID bool, data []byte) bool {
	b := make([]byte, 0, 32+len(data))
	b = append(b, "event: "...)
	b = append(b, event...)
	b = append(b, '\n')
	if withID {
		b = append(b, "id: "...)
		b = strconv.AppendUint(b, id, 10)
		b = append(b, '\n')
	}
	b = append(b, "data: "...)
	b = append(b, data...)
	b = append(b, '\n', '\n')
	_, err := w.Write(b)
	return err == nil
}
