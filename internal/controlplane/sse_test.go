package controlplane

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/sim"
)

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	Event string
	ID    string
	Data  string
}

// sseReader incrementally parses an event stream.
type sseReader struct{ sc *bufio.Scanner }

func newSSEReader(r io.Reader) *sseReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &sseReader{sc: sc}
}

// next returns the next frame, blocking until one arrives or the stream
// ends (io.EOF).
func (r *sseReader) next() (sseFrame, error) {
	var f sseFrame
	seen := false
	for r.sc.Scan() {
		line := r.sc.Text()
		switch {
		case line == "":
			if seen {
				return f, nil
			}
		case strings.HasPrefix(line, "event: "):
			f.Event, seen = strings.TrimPrefix(line, "event: "), true
		case strings.HasPrefix(line, "id: "):
			f.ID, seen = strings.TrimPrefix(line, "id: "), true
		case strings.HasPrefix(line, "data: "):
			f.Data, seen = strings.TrimPrefix(line, "data: "), true
		}
	}
	if err := r.sc.Err(); err != nil {
		return f, err
	}
	return f, io.EOF
}

type helloData struct {
	Proto   int    `json:"proto"`
	Session string `json:"session"`
	Resume  string `json:"resume"`
	Seq     uint64 `json:"seq"`
	Mode    string `json:"mode"`
}

func mustHello(t *testing.T, r *sseReader) helloData {
	t.Helper()
	f, err := r.next()
	if err != nil || f.Event != "hello" {
		t.Fatalf("first frame = %+v err %v, want hello", f, err)
	}
	var h helloData
	if err := json.Unmarshal([]byte(f.Data), &h); err != nil {
		t.Fatalf("hello payload: %v\n%s", err, f.Data)
	}
	if h.Proto != Proto {
		t.Fatalf("hello proto = %d, want %d", h.Proto, Proto)
	}
	return h
}

func openStream(t *testing.T, url string) (*http.Response, *sseReader) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("stream status = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	return resp, newSSEReader(resp.Body)
}

func TestStreamHandshakeSnapshotDelta(t *testing.T) {
	h := NewHub(Config{})
	h.Publish(TopicStatus, "status", false, sim.Hour, []byte(`{"v":1}`))
	h.Publish(TopicHealth, "leaf0/p0", false, sim.Hour, []byte(`{"health":"down"}`))
	srv := httptest.NewServer(h.StreamHandler())
	defer srv.Close()

	resp, r := openStream(t, srv.URL+"?client=test&proto=1")
	defer resp.Body.Close()
	hello := mustHello(t, r)
	if hello.Mode != "snapshot" || hello.Seq != 2 {
		t.Fatalf("hello = %+v, want snapshot mode at seq 2", hello)
	}
	if hello.Session != hello.Resume || hello.Session == "" {
		t.Fatalf("hello session/resume = %q/%q", hello.Session, hello.Resume)
	}

	f, err := r.next()
	if err != nil || f.Event != "snapshot" || f.ID != "2" {
		t.Fatalf("second frame = %+v err %v, want snapshot id 2", f, err)
	}
	var snap struct {
		Seq   uint64                            `json:"seq"`
		State map[string]map[string]interface{} `json:"state"`
	}
	if err := json.Unmarshal([]byte(f.Data), &snap); err != nil {
		t.Fatalf("snapshot payload: %v", err)
	}
	if snap.Seq != 2 || snap.State["cp.status"]["status"] == nil || snap.State["cp.health"]["leaf0/p0"] == nil {
		t.Fatalf("snapshot = %s", f.Data)
	}

	h.Publish("sense.alert", "", false, 2*sim.Hour, []byte(`{"kind":"link-down"}`))
	h.Publish(TopicHealth, "leaf0/p0", true, 2*sim.Hour, nil) // tombstone

	f, err = r.next()
	if err != nil || f.Event != "delta" || f.ID != "3" {
		t.Fatalf("delta 1 = %+v err %v", f, err)
	}
	var delta struct {
		Seq     uint64          `json:"seq"`
		At      string          `json:"at"`
		Topic   string          `json:"topic"`
		Key     string          `json:"key"`
		Delete  bool            `json:"delete"`
		Payload json.RawMessage `json:"payload"`
	}
	if err := json.Unmarshal([]byte(f.Data), &delta); err != nil {
		t.Fatalf("delta payload: %v\n%s", err, f.Data)
	}
	if delta.Seq != 3 || delta.Topic != "sense.alert" || string(delta.Payload) != `{"kind":"link-down"}` {
		t.Fatalf("delta = %s", f.Data)
	}

	f, err = r.next()
	if err != nil || f.ID != "4" {
		t.Fatalf("delta 2 = %+v err %v", f, err)
	}
	if err := json.Unmarshal([]byte(f.Data), &delta); err != nil {
		t.Fatal(err)
	}
	if !delta.Delete || delta.Key != "leaf0/p0" {
		t.Fatalf("tombstone delta = %s", f.Data)
	}
}

func TestStreamRejectsUnsupportedProto(t *testing.T) {
	h := NewHub(Config{})
	srv := httptest.NewServer(h.StreamHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "?proto=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("proto=2 status = %d, want 400", resp.StatusCode)
	}
}

func TestStreamRejectsBadLast(t *testing.T) {
	h := NewHub(Config{})
	srv := httptest.NewServer(h.StreamHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "?last=banana")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("last=banana status = %d, want 400", resp.StatusCode)
	}
}

func TestStreamResumeOverHTTP(t *testing.T) {
	h := NewHub(Config{})
	h.Publish(TopicStatus, "status", false, sim.Hour, []byte(`{"v":1}`))
	srv := httptest.NewServer(h.StreamHandler())
	defer srv.Close()

	resp, r := openStream(t, srv.URL+"?client=resumer")
	hello := mustHello(t, r)
	if _, err := r.next(); err != nil { // snapshot frame
		t.Fatal(err)
	}
	h.Publish("sense.alert", "", false, sim.Hour, []byte(`{"i":1}`))
	f, err := r.next()
	if err != nil || f.Event != "delta" {
		t.Fatalf("delta = %+v err %v", f, err)
	}
	lastSeen, _ := strconv.ParseUint(f.ID, 10, 64)
	resp.Body.Close() // drop the connection

	// Published while disconnected.
	h.Publish("sense.alert", "", false, sim.Hour, []byte(`{"i":2}`))
	h.Publish("sense.alert", "", false, sim.Hour, []byte(`{"i":3}`))

	resp2, r2 := openStream(t, fmt.Sprintf("%s?client=resumer&resume=%s&last=%d", srv.URL, hello.Session, lastSeen))
	defer resp2.Body.Close()
	hello2 := mustHello(t, r2)
	if hello2.Mode != "resume" || hello2.Session != hello.Session || hello2.Seq != lastSeen {
		t.Fatalf("resume hello = %+v, want resume of %s at %d", hello2, hello.Session, lastSeen)
	}
	for i, want := range []uint64{lastSeen + 1, lastSeen + 2} {
		f, err := r2.next()
		if err != nil || f.Event != "delta" {
			t.Fatalf("replayed delta %d = %+v err %v", i, f, err)
		}
		if got, _ := strconv.ParseUint(f.ID, 10, 64); got != want {
			t.Fatalf("replayed delta %d id = %d, want %d", i, got, want)
		}
	}
}

func TestStreamBusySessionConflict(t *testing.T) {
	h := NewHub(Config{})
	srv := httptest.NewServer(h.StreamHandler())
	defer srv.Close()
	resp, r := openStream(t, srv.URL+"?client=a")
	defer resp.Body.Close()
	hello := mustHello(t, r)
	resp2, err := http.Get(srv.URL + "?client=b&resume=" + hello.Session)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("attach to live session status = %d, want 409", resp2.StatusCode)
	}
}

func TestStreamTopicFilterOverHTTP(t *testing.T) {
	h := NewHub(Config{})
	srv := httptest.NewServer(h.StreamHandler())
	defer srv.Close()
	resp, r := openStream(t, srv.URL+"?client=f&topics=sense.alert")
	defer resp.Body.Close()
	mustHello(t, r)
	if _, err := r.next(); err != nil { // snapshot
		t.Fatal(err)
	}
	h.Publish("journal.decision", "", false, sim.Hour, []byte(`{"skip":1}`))
	h.Publish("sense.alert", "", false, sim.Hour, []byte(`{"want":1}`))
	f, err := r.next()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f.Data, `"sense.alert"`) || strings.Contains(f.Data, "journal") {
		t.Fatalf("filtered stream delivered %s", f.Data)
	}
}

// TestStreamDropsFrameInBand forces queue overflow and asserts the drops
// report reaches the wire.
func TestStreamDropsFrameInBand(t *testing.T) {
	h := NewHub(Config{QueueCap: 4})
	srv := httptest.NewServer(h.StreamHandler())
	defer srv.Close()
	resp, r := openStream(t, srv.URL+"?client=d")
	defer resp.Body.Close()
	mustHello(t, r)
	if _, err := r.next(); err != nil { // snapshot
		t.Fatal(err)
	}
	// Overflow the 4-deep queue: frames big enough to overwhelm the TCP
	// buffers block the writer goroutine (the reader is not reading yet),
	// so the queue must overflow while publishes sail on regardless.
	big := []byte(`{"pad":"` + strings.Repeat("x", 1<<20) + `"}`)
	for i := 0; i < 32; i++ {
		h.Publish("sense.alert", "", false, sim.Hour, big)
	}
	sawDrops := false
	for i := 0; i < 200 && !sawDrops; i++ {
		f, err := r.next()
		if err != nil {
			t.Fatalf("stream ended before drops frame: %v", err)
		}
		if f.Event == "drops" {
			var rep struct {
				Dropped uint64 `json:"dropped"`
			}
			if err := json.Unmarshal([]byte(f.Data), &rep); err != nil || rep.Dropped == 0 {
				t.Fatalf("drops frame = %s (err %v)", f.Data, err)
			}
			sawDrops = true
		}
	}
	if !sawDrops {
		t.Fatal("no in-band drops frame after forced overflow")
	}
}
