package vision

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

func TestRecognitionDegradesWithDiversityAndOcclusion(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig()

	single := New(eng, cfg, 1)
	diverse := New(eng, cfg, 32)
	if a, b := single.RecognitionAccuracy(0), diverse.RecognitionAccuracy(0); b >= a {
		t.Fatalf("diversity did not hurt: %v vs %v", a, b)
	}
	clear, cluttered := diverse.RecognitionAccuracy(0), diverse.RecognitionAccuracy(10)
	if cluttered >= clear {
		t.Fatalf("occlusion did not hurt: %v vs %v", clear, cluttered)
	}
	// Floor holds under absurd conditions.
	worst := New(eng, cfg, 1<<20)
	if worst.RecognitionAccuracy(1000) < cfg.MinAccuracy {
		t.Fatal("accuracy below floor")
	}
	// Zero diversity is clamped to one.
	if New(eng, cfg, 0).FleetDiversity != 1 {
		t.Fatal("diversity clamp")
	}
}

func TestIdentifyFrequencyMatchesAccuracy(t *testing.T) {
	eng := sim.NewEngine(2)
	s := New(eng, DefaultConfig(), 32)
	var port topology.Port
	port.Device = &topology.Device{Name: "sw"}
	acc := s.RecognitionAccuracy(5)
	hits := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if s.Identify(&port, 5) {
			hits++
		}
	}
	got := float64(hits) / trials
	if got < acc-0.02 || got > acc+0.02 {
		t.Fatalf("identify rate %v, accuracy %v", got, acc)
	}
}

func TestInspectDirtyEndFaceFails(t *testing.T) {
	eng := sim.NewEngine(3)
	s := New(eng, DefaultConfig(), 8)
	cable := &topology.Cable{Class: topology.FiberMPO, Cores: 8, APC: true}
	rep := s.InspectEndFace(cable, 0.8)
	if rep.Pass {
		t.Fatal("grossly dirty end-face passed inspection")
	}
	if len(rep.Cores) != 8 {
		t.Fatalf("cores = %d", len(rep.Cores))
	}
	if rep.String() == "" {
		t.Error("report string")
	}
}

func TestInspectCleanEndFaceMostlyPasses(t *testing.T) {
	eng := sim.NewEngine(4)
	s := New(eng, DefaultConfig(), 8)
	cable := &topology.Cable{Class: topology.FiberLC, Cores: 1}
	pass := 0
	const trials = 1000
	for i := 0; i < trials; i++ {
		if s.InspectEndFace(cable, 0).Pass {
			pass++
		}
	}
	if pass < trials*95/100 {
		t.Fatalf("clean single-core pass rate %d/%d", pass, trials)
	}
	if pass == trials {
		t.Fatal("no false positives at all over 1000 noisy inspections (suspicious)")
	}
}

func TestInspectionTimeMeetsPaperClaim(t *testing.T) {
	eng := sim.NewEngine(5)
	s := New(eng, DefaultConfig(), 8)
	cable := &topology.Cable{Class: topology.FiberMPO, Cores: 8, APC: true}
	var total sim.Time
	const trials = 200
	for i := 0; i < trials; i++ {
		total += s.InspectEndFace(cable, 0.1).Duration
	}
	mean := total / trials
	// Paper §3.3.2: 8-core end-face inspection in under 30 seconds.
	if mean >= 30*sim.Second {
		t.Fatalf("mean 8-core inspection %v, paper claims <30s", mean)
	}
	if mean <= 10*sim.Second {
		t.Fatalf("mean inspection %v implausibly fast", mean)
	}
}

func TestAPCInspectionSlower(t *testing.T) {
	eng := sim.NewEngine(6)
	s := New(eng, DefaultConfig(), 8)
	flat := &topology.Cable{Class: topology.FiberMPO, Cores: 8}
	apc := &topology.Cable{Class: topology.FiberMPO, Cores: 8, APC: true}
	var tFlat, tAPC sim.Time
	for i := 0; i < 300; i++ {
		tFlat += s.InspectEndFace(flat, 0).Duration
		tAPC += s.InspectEndFace(apc, 0).Duration
	}
	if tAPC <= tFlat {
		t.Fatalf("APC not slower: %v vs %v", tAPC, tFlat)
	}
}

func TestZeroCoreCableInspectsOneCore(t *testing.T) {
	eng := sim.NewEngine(7)
	s := New(eng, DefaultConfig(), 1)
	rep := s.InspectEndFace(&topology.Cable{Class: topology.DAC}, 0)
	if len(rep.Cores) != 1 {
		t.Fatalf("cores = %d", len(rep.Cores))
	}
}
