// Package vision models the perception stack of the maintenance robots:
// recognizing which transceiver/cable model is in front of the gripper
// despite fleet diversity and cable occlusion (§3.3.3: diversity and
// cabling density are "the largest challenges"), and the free-space optical
// inspection of fiber end-faces (§3.3.2), including 8-degree APC MPO
// trunks.
package vision

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Config calibrates the perception models.
type Config struct {
	// RecognitionBase is the identification accuracy with a single-model
	// fleet and no occlusion.
	RecognitionBase float64
	// DiversityPenalty reduces accuracy by this amount per doubling of the
	// distinct model count in the fleet.
	DiversityPenalty float64
	// OcclusionPenalty reduces accuracy by this amount per occluding cable
	// at the port.
	OcclusionPenalty float64
	// MinAccuracy floors the model.
	MinAccuracy float64

	// InspectSecondsPerCore is the per-core end-face inspection time; the
	// paper reports 8 cores in under 30 seconds (§3.3.2).
	InspectSecondsPerCore sim.Dist
	// APCExtraSeconds is added per core for angled end-faces.
	APCExtraSeconds float64
	// DirtDetectThreshold is the dirt level above which a core should fail
	// inspection (IEC-style pass/fail).
	DirtDetectThreshold float64
	// DetectNoise blurs the measured dirt level.
	DetectNoise float64
	// SpeckProb is the per-core probability that an otherwise clean core
	// carries an incidental speck (dust settles even on serviced parts),
	// which is what makes clean-face inspections fail occasionally.
	SpeckProb float64
}

// DefaultConfig returns the calibrated defaults: 8-core MPO inspection
// lands around 24 s, comfortably under the paper's 30 s claim.
func DefaultConfig() Config {
	return Config{
		RecognitionBase:       0.995,
		DiversityPenalty:      0.012,
		OcclusionPenalty:      0.006,
		MinAccuracy:           0.75,
		InspectSecondsPerCore: sim.Triangular{Lo: 2, Mode: 3, Hi: 4.5},
		APCExtraSeconds:       0.5,
		DirtDetectThreshold:   0.25,
		DetectNoise:           0.05,
		SpeckProb:             0.01,
	}
}

// System is a perception system instance bound to an engine's RNG streams.
type System struct {
	cfg Config
	eng *sim.Engine
	// FleetDiversity is the number of distinct transceiver models the
	// recognition models must cover; experiments sweep it (T8).
	FleetDiversity int
}

// New creates a perception system covering the given fleet diversity.
func New(eng *sim.Engine, cfg Config, fleetDiversity int) *System {
	if fleetDiversity < 1 {
		fleetDiversity = 1
	}
	return &System{cfg: cfg, eng: eng, FleetDiversity: fleetDiversity}
}

// RecognitionAccuracy returns the probability of correctly identifying a
// component at a port with the given occlusion count.
func (s *System) RecognitionAccuracy(occlusion int) float64 {
	acc := s.cfg.RecognitionBase -
		s.cfg.DiversityPenalty*math.Log2(float64(s.FleetDiversity)) -
		s.cfg.OcclusionPenalty*float64(occlusion)
	if acc < s.cfg.MinAccuracy {
		acc = s.cfg.MinAccuracy
	}
	return acc
}

// Identify attempts to recognize the transceiver at a port. A failed
// identification forces the robot to retry or escalate; it never silently
// manipulates the wrong part (the planner refuses without a confident ID).
func (s *System) Identify(p *topology.Port, occlusion int) bool {
	return s.rng().Bernoulli(s.RecognitionAccuracy(occlusion))
}

// RetryProb is the success probability of re-attempting an identification
// that just failed. Recognition failures are mostly systematic — the model
// has never seen this backend variant from this angle — so retries recover
// only the noise-induced fraction (§3.3.3: diversity, not jitter, is the
// hard part).
const RetryProb = 0.25

// IdentifyWithRetries models the full perception loop: one fresh attempt,
// then up to retries correlated re-attempts.
func (s *System) IdentifyWithRetries(p *topology.Port, occlusion, retries int) bool {
	if s.Identify(p, occlusion) {
		return true
	}
	rng := s.rng()
	for i := 0; i < retries; i++ {
		if rng.Bernoulli(RetryProb) {
			return true
		}
	}
	return false
}

// CoreGrade is the inspection verdict for one fiber core.
type CoreGrade struct {
	Core     int
	Measured float64 // measured dirt level (noisy)
	Pass     bool
}

// Report is the outcome of inspecting one end-face.
type Report struct {
	Cores    []CoreGrade
	Pass     bool
	Duration sim.Time
}

// String summarizes the report.
func (r Report) String() string {
	failed := 0
	for _, c := range r.Cores {
		if !c.Pass {
			failed++
		}
	}
	return fmt.Sprintf("inspect %d cores in %v: pass=%v (%d failed)", len(r.Cores), r.Duration, r.Pass, failed)
}

// InspectEndFace grades every core of a cable end against the detection
// threshold. dirt is the true contamination level at this end (ground
// truth supplied by the caller, typically the fault injector's end state);
// the measurement adds noise, so marginal dirt can pass and clean cores
// can occasionally fail (false positives cost cleaning cycles, not
// correctness).
func (s *System) InspectEndFace(cable *topology.Cable, dirt float64) Report {
	cores := cable.Cores
	if cores < 1 {
		cores = 1
	}
	rng := s.rng()
	rep := Report{Cores: make([]CoreGrade, cores), Pass: true}
	var total float64
	for i := 0; i < cores; i++ {
		// Dirt is not uniform across cores: vary per-core level around the
		// end's overall contamination, plus the occasional incidental speck.
		level := dirt * (0.6 + 0.8*rng.Float64())
		if rng.Bernoulli(s.cfg.SpeckProb) {
			level += 0.4 * rng.Float64()
		}
		measured := level + s.cfg.DetectNoise*rng.NormFloat64()
		if measured < 0 {
			measured = 0
		}
		pass := measured < s.cfg.DirtDetectThreshold
		rep.Cores[i] = CoreGrade{Core: i, Measured: measured, Pass: pass}
		if !pass {
			rep.Pass = false
		}
		secs := s.cfg.InspectSecondsPerCore.Sample(rng)
		if cable.APC {
			secs += s.cfg.APCExtraSeconds
		}
		total += secs
	}
	rep.Duration = sim.Time(total * float64(sim.Second))
	return rep
}

func (s *System) rng() *sim.Stream { return s.eng.RNG("vision") }
