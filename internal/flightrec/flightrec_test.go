package flightrec

import (
	"bytes"
	"fmt"
	"io"
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"

	"repro/internal/bus"
	"repro/internal/sim"
)

// genState holds the mirror state a generator keeps so it can predict the
// exact frame sequence the recorder will put on disk.
type genState struct {
	rng     *rand.Rand
	shards  int
	at      []sim.Time
	seq     []uint64
	epochAt sim.Time
	epoch   uint64

	rec      *Recorder
	pending  [][]Frame // mirror of the recorder's per-shard buffers
	expected []Frame
}

var strPool = []string{"", "leaf0:1<->spine0:3", "unit-3", "tech-1", "flap burst",
	"needs-human", "row 2 rack 7", "héllo wörld", "a\nb", strings.Repeat("x", 300)}

func (g *genState) str() string { return strPool[g.rng.IntN(len(strPool))] }

func (g *genState) payload() Payload {
	switch g.rng.IntN(12) {
	case 0:
		return &PAlert{Kind: uint8(g.rng.IntN(4)), Link: g.str(), At: sim.Time(g.rng.Int64N(1 << 40)), Detail: g.str()}
	case 1:
		return &PRequest{Link: g.str(), Predictive: g.rng.IntN(2) == 0}
	case 2:
		return &PTicket{Kind: uint8(g.rng.IntN(5)), ID: g.rng.IntN(100), Link: g.str(),
			Action: uint8(g.rng.IntN(6)), Reactive: g.rng.IntN(2) == 0}
	case 3:
		return &PDispatch{Ticket: g.rng.IntN(100), Link: g.str(), Actor: g.str(),
			Robot: g.rng.IntN(2) == 0, Action: uint8(g.rng.IntN(6)), End: uint8(g.rng.IntN(2))}
	case 4:
		return &POutcome{Ticket: g.rng.IntN(100), Link: g.str(), Actor: g.str(),
			Robot: g.rng.IntN(2) == 0, Action: uint8(g.rng.IntN(6)),
			Completed: g.rng.IntN(2) == 0, Fixed: g.rng.IntN(2) == 0, Note: g.str()}
	case 5:
		return &PWatchdog{Ticket: g.rng.IntN(100), Link: g.str(), Actor: g.str(),
			Robot: g.rng.IntN(2) == 0, Action: uint8(g.rng.IntN(6)),
			Deadline: sim.Time(g.rng.Int64N(1 << 40)), Attempt: g.rng.IntN(5),
			Backoff: sim.Time(g.rng.Int64N(1 << 40))}
	case 6:
		return &PDegraded{Ticket: g.rng.IntN(100), Link: g.str(), RobotFailures: g.rng.IntN(5)}
	case 7:
		return &PJournal{At: sim.Time(g.rng.Int64N(1 << 40)), Kind: uint8(g.rng.IntN(16)),
			Ticket: g.rng.IntN(12) - 1, Link: g.str(), Detail: g.str()}
	case 8:
		return &PFleetSummary{Region: g.rng.IntN(8), At: sim.Time(g.rng.Int64N(1 << 40)),
			Links: g.rng.IntN(1000), LinksDown: g.rng.IntN(10), OpenTickets: g.rng.IntN(20),
			Resolved: g.rng.IntN(500), RobotsIdle: g.rng.IntN(8), RobotsTotal: g.rng.IntN(16)}
	case 9:
		return &PFleetTicket{Region: g.rng.IntN(8), OpenedAt: sim.Time(g.rng.Int64N(1 << 40)),
			ClosedAt: sim.Time(g.rng.Int64N(2) * g.rng.Int64N(1<<40))}
	case 10:
		return &PTransfer{From: g.rng.IntN(8), To: g.rng.IntN(8),
			Granted: g.rng.IntN(2) == 0, Unit: g.str()}
	default:
		return &PGeneric{TypeName: "test.Blob", Text: g.str()}
	}
}

func (g *genState) kvs() []KV {
	n := g.rng.IntN(6)
	kvs := make([]KV, 0, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", i)
		switch g.rng.IntN(3) {
		case 0:
			kvs = append(kvs, KInt(key, g.rng.Int64N(1<<50)-(1<<49)))
		case 1:
			kvs = append(kvs, KFloat(key, (g.rng.Float64()-0.5)*1e9))
		default:
			kvs = append(kvs, KStr(key, g.str()))
		}
	}
	return kvs
}

// add routes a frame the way the recorder does, mirroring the buffering so
// g.expected is the exact on-disk order.
func (g *genState) add(f Frame) {
	if g.shards == 1 {
		g.expected = append(g.expected, f)
		return
	}
	g.pending[f.Shard] = append(g.pending[f.Shard], f)
}

func (g *genState) barrier() {
	g.epochAt += sim.Time(g.rng.Int64N(1 << 30))
	g.epoch++
	for i := range g.pending {
		g.expected = append(g.expected, g.pending[i]...)
		g.pending[i] = nil
	}
	g.expected = append(g.expected, Frame{Kind: KindEpoch, Epoch: g.epoch, At: g.epochAt})
	g.rec.Barrier(g.epoch, g.epochAt)
}

func (g *genState) step() {
	shard := g.rng.IntN(g.shards)
	switch g.rng.IntN(10) {
	case 0:
		g.at[shard] += sim.Time(g.rng.Int64N(1 << 30))
		f := Frame{Kind: KindSnapshot, Shard: shard, At: g.at[shard],
			Snap: Snap{Avail: g.rng.Float64(), LinksDown: g.rng.IntN(10),
				OpenTix: g.rng.IntN(20), Fired: g.rng.Uint64N(1 << 40)}}
		g.add(f)
		g.rec.Snapshot(shard, f.At, f.Snap)
	case 1:
		f := Frame{Kind: KindState, Shard: shard, State: g.kvs()}
		g.add(f)
		g.rec.State(shard, f.State)
	case 2:
		if g.shards > 1 {
			g.barrier()
			return
		}
		fallthrough
	default:
		g.at[shard] += sim.Time(g.rng.Int64N(1 << 30))
		g.seq[shard] += g.rng.Uint64N(100)
		f := Frame{Kind: KindEvent, Shard: shard, At: g.at[shard], Seq: g.seq[shard],
			Topic:   []string{"sense.alert", "triage.ticket", "act.dispatch", "journal.decision"}[g.rng.IntN(4)],
			Payload: g.payload()}
		g.add(f)
		g.rec.add(f)
	}
}

// record generates one deterministic random recording and returns the
// bytes, the expected frame sequence, and the live summary.
func record(t *testing.T, seed uint64) ([]byte, []Frame, *Summary) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 0xf11847))
	shards := 1 + rng.IntN(4)
	meta := map[string]string{"seed": fmt.Sprint(seed), "kind": "property", "z": "last", "a": "first"}
	var buf bytes.Buffer
	rec, err := New(&buf, meta, shards)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	g := &genState{rng: rng, shards: shards, at: make([]sim.Time, shards),
		seq: make([]uint64, shards), rec: rec, pending: make([][]Frame, shards)}
	steps := 100 + rng.IntN(300)
	for i := 0; i < steps; i++ {
		g.step()
	}
	if shards > 1 {
		// Close flushes remaining buffers in shard order without a barrier.
		for i := range g.pending {
			g.expected = append(g.expected, g.pending[i]...)
			g.pending[i] = nil
		}
	}
	sum, err := rec.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i := range g.expected {
		g.expected[i].Index = uint64(i)
	}
	return buf.Bytes(), g.expected, sum
}

// TestRoundTripProperty is the record ≡ decode property test: randomized
// event mixes across randomized shard counts, for several seeds, must
// decode to exactly the frames that went in, and replay must reproduce the
// live summary fingerprint.
func TestRoundTripProperty(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			data, want, liveSum := record(t, seed)

			rd, err := NewReader(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("NewReader: %v", err)
			}
			var got []Frame
			var trailer *Frame
			for {
				f, err := rd.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("Next after %d frames: %v", len(got), err)
				}
				if f.Kind == KindTrailer {
					tf := f
					trailer = &tf
					continue
				}
				got = append(got, f)
			}
			if len(got) != len(want) {
				t.Fatalf("decoded %d frames, want %d", len(got), len(want))
			}
			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("frame %d mismatch:\n got %#v (%s)\nwant %#v (%s)",
						i, got[i], got[i], want[i], want[i])
				}
			}
			if trailer == nil {
				t.Fatal("no trailer frame")
			}
			if trailer.Frames != uint64(len(want)) {
				t.Fatalf("trailer frames=%d, want %d", trailer.Frames, len(want))
			}

			res, err := Replay(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("Replay: %v", err)
			}
			if !res.Match() {
				t.Fatalf("replay fingerprint %016x != trailer %016x\nreplay render:\n%s\ntrailer render:\n%s",
					res.Summary.Fingerprint(), res.Trailer.Fingerprint,
					res.Summary.Render(), res.Trailer.Render)
			}
			if res.Summary.Render() != liveSum.Render() {
				t.Fatal("replayed render differs from live summary render")
			}

			// Same seed, fresh recorder: the codec itself must be
			// deterministic down to the bytes.
			data2, _, _ := record(t, seed)
			if !bytes.Equal(data, data2) {
				t.Fatal("re-recording the same sequence produced different bytes")
			}

			// Self-diff must find no divergence.
			div, err := Diff(bytes.NewReader(data), bytes.NewReader(data2))
			if err != nil {
				t.Fatalf("Diff: %v", err)
			}
			if div != nil {
				t.Fatalf("self-diff diverged: %v", div)
			}
		})
	}
}

// TestTapConvertsBusPayloads drives the recorder through the real bus-tap
// surface with live payload types and checks the typed conversion.
func TestTapConvertsBusPayloads(t *testing.T) {
	var buf bytes.Buffer
	rec, err := New(&buf, map[string]string{"seed": "7"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec.Tap(0, bus.Event{Seq: 3, At: 10 * sim.Minute, Topic: bus.TopicAlert,
		Payload: bus.Alert{Kind: bus.AlertLinkDown, At: 10 * sim.Minute, Detail: "x"}})
	rec.Tap(0, bus.Event{Seq: 4, At: 11 * sim.Minute, Topic: bus.TopicTicket,
		Payload: bus.TicketEvent{Kind: bus.TicketOpened, ID: 0, Reactive: true}})
	rec.Tap(0, bus.Event{Seq: 9, At: 12 * sim.Minute, Topic: bus.Topic("custom.topic"),
		Payload: struct{ X int }{42}})
	if _, err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	f1, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	al, ok := f1.Payload.(*PAlert)
	if !ok || al.Kind != uint8(bus.AlertLinkDown) || al.Detail != "x" || al.Link != "" {
		t.Fatalf("alert decoded as %#v", f1.Payload)
	}
	f2, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	tk, ok := f2.Payload.(*PTicket)
	if !ok || !tk.Reactive || tk.ID != 0 {
		t.Fatalf("ticket decoded as %#v", f2.Payload)
	}
	f3, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	gen, ok := f3.Payload.(*PGeneric)
	if !ok || gen.TypeName != "struct { X int }" || gen.Text != "{42}" {
		t.Fatalf("generic decoded as %#v", f3.Payload)
	}
	if f3.Seq != 9 || f3.At != 12*sim.Minute {
		t.Fatalf("envelope decoded as seq=%d at=%v", f3.Seq, f3.At)
	}
}

// futurePayload simulates a payload type from a newer writer: an unknown
// kind name with tags this reader has never seen.
type futurePayload struct{}

func (futurePayload) PayloadKind() string { return "frobnicate" }
func (futurePayload) String() string      { return "frobnicate{}" }
func (futurePayload) encodeFields(e *enc) {
	e.tagU(1, 7)
	e.tagS(2, "zap")
	e.tagF(9, 2.5)
	e.tagI(12, -4)
}

// alertWithExtraTags simulates a known kind grown new fields by a newer
// writer: tags 1/2/4 are today's alert schema, 9/10 are from the future.
type alertWithExtraTags struct{}

func (alertWithExtraTags) PayloadKind() string { return "alert" }
func (alertWithExtraTags) String() string      { return "alert+{}" }
func (alertWithExtraTags) encodeFields(e *enc) {
	e.tagU(1, 2)
	e.tagS(2, "linkname")
	e.tagS(9, "future-field")
	e.tagU(10, 123)
	e.tagS(4, "detail")
}

// TestSchemaEvolution checks the two growth paths the format promises:
// unknown payload kinds decode generically, and unknown tags on known
// kinds are skipped without desync (including their interned strings).
func TestSchemaEvolution(t *testing.T) {
	var buf bytes.Buffer
	rec, err := New(&buf, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec.add(Frame{Kind: KindEvent, At: sim.Hour, Seq: 1, Topic: "t", Payload: futurePayload{}})
	rec.add(Frame{Kind: KindEvent, At: 2 * sim.Hour, Seq: 2, Topic: "t", Payload: alertWithExtraTags{}})
	// A third frame reusing the interned "future-field" string proves the
	// table stayed in sync across the skipped tag.
	rec.add(Frame{Kind: KindEvent, At: 3 * sim.Hour, Seq: 3, Topic: "t",
		Payload: &PGeneric{TypeName: "future-field", Text: "zap"}})
	if _, err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	f1, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	unk, ok := f1.Payload.(*PUnknown)
	if !ok {
		t.Fatalf("future kind decoded as %#v", f1.Payload)
	}
	if unk.Name != "frobnicate" || len(unk.Fields) != 4 {
		t.Fatalf("unknown payload %#v", unk)
	}
	if s := unk.String(); !strings.Contains(s, "frobnicate{") || !strings.Contains(s, `2="zap"`) {
		t.Fatalf("unknown render %q", s)
	}
	f2, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	al, ok := f2.Payload.(*PAlert)
	if !ok {
		t.Fatalf("grown alert decoded as %#v", f2.Payload)
	}
	if al.Kind != 2 || al.Link != "linkname" || al.Detail != "detail" {
		t.Fatalf("grown alert fields %#v", al)
	}
	f3, err := rd.Next()
	if err != nil {
		t.Fatalf("frame after skipped tags: %v", err)
	}
	gen, ok := f3.Payload.(*PGeneric)
	if !ok || gen.TypeName != "future-field" || gen.Text != "zap" {
		t.Fatalf("intern table desynced: %#v", f3.Payload)
	}
}

// TestUnknownFrameKind hand-crafts a file containing a frame kind from the
// future; the reader must carry it as raw bytes and keep going.
func TestUnknownFrameKind(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.WriteByte(version)
	buf.WriteByte(0)                        // no metadata
	buf.Write([]byte{4, 99, 0xa, 0xb, 0xc}) // len=4, kind=99, 3 payload bytes
	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	f, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != Kind(99) || !bytes.Equal(f.Raw, []byte{0xa, 0xb, 0xc}) {
		t.Fatalf("unknown frame decoded as %#v", f)
	}
	if s := f.String(); s != "kind(99) len=3" {
		t.Fatalf("unknown frame render %q", s)
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("want EOF after unknown frame, got %v", err)
	}
}

func TestReaderRejectsBadHeader(t *testing.T) {
	if _, err := NewReader(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("bad magic accepted")
	}
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.WriteByte(version + 1)
	buf.WriteByte(0)
	if _, err := NewReader(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("future container version accepted")
	}
}

func TestTruncatedRecording(t *testing.T) {
	data, _, _ := record(t, 3)
	cut := data[:len(data)-7]
	rd, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err := rd.Next()
		if err == io.EOF {
			t.Fatal("truncated stream read cleanly to EOF")
		}
		if err != nil {
			return // truncation surfaced as an explicit error
		}
	}
}

// TestDiffFindsFirstDivergence records two streams sharing a prefix and
// checks the locator lands exactly on the first differing frame.
func TestDiffFindsFirstDivergence(t *testing.T) {
	mk := func(detail string, extra bool) []byte {
		var buf bytes.Buffer
		rec, err := New(&buf, map[string]string{"seed": detail}, 1)
		if err != nil {
			t.Fatal(err)
		}
		rec.add(Frame{Kind: KindEvent, At: sim.Minute, Seq: 1, Topic: "t",
			Payload: &PAlert{Kind: 1, Link: "l0"}})
		rec.Barrier(1, sim.Hour)
		rec.add(Frame{Kind: KindEvent, At: 2 * sim.Hour, Seq: 2, Topic: "t",
			Payload: &PAlert{Kind: 1, Link: "l0", Detail: detail}})
		if extra {
			rec.add(Frame{Kind: KindEvent, At: 3 * sim.Hour, Seq: 3, Topic: "t",
				Payload: &PAlert{Kind: 2, Link: "l1"}})
		}
		if _, err := rec.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	a, b := mk("same", false), mk("different", false)
	div, err := Diff(bytes.NewReader(a), bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if div == nil {
		t.Fatal("differing recordings diffed as identical")
	}
	if div.Index != 2 || div.Epoch != 1 {
		t.Fatalf("divergence located at frame %d epoch %d, want frame 2 epoch 1", div.Index, div.Epoch)
	}
	if !strings.Contains(div.A, "same") || !strings.Contains(div.B, "different") {
		t.Fatalf("divergence renders: %q vs %q", div.A, div.B)
	}
	if !strings.Contains(div.String(), "first divergence at frame 2") {
		t.Fatalf("locator text %q", div.String())
	}

	// Prefix case: stream a ends early.
	short, long := mk("same", false), mk("same", true)
	div, err = Diff(bytes.NewReader(short), bytes.NewReader(long))
	if err != nil {
		t.Fatal(err)
	}
	// Frames 0..2 match; frame 3 is a's trailer vs b's extra event.
	if div == nil || div.Reason != "frame mismatch" || div.Index != 3 {
		t.Fatalf("prefix diff: %v", div)
	}

	// Metadata-only differences are not divergence.
	div, err = Diff(bytes.NewReader(mk("same", false)), bytes.NewReader(mk("same", false)))
	if err != nil {
		t.Fatal(err)
	}
	if div != nil {
		t.Fatalf("identical frames with identical meta diverged: %v", div)
	}
}

// TestSummaryTicketLifecycle pins the reactive window/open accounting the
// replay consumers (R7 reconstruction) rely on.
func TestSummaryTicketLifecycle(t *testing.T) {
	s := newSummary(nil)
	ev := func(at sim.Time, p Payload) {
		s.Add(Frame{Kind: KindEvent, At: at, Topic: "triage.ticket", Payload: p})
	}
	ev(0, &PTicket{Kind: uint8(bus.TicketOpened), ID: 0, Reactive: true})
	ev(sim.Hour, &PTicket{Kind: uint8(bus.TicketOpened), ID: 1, Reactive: false})
	ev(2*sim.Hour, &PTicket{Kind: uint8(bus.TicketOpened), ID: 2, Reactive: true})
	ev(3*sim.Hour, &PTicket{Kind: uint8(bus.TicketResolved), ID: 0, Reactive: true})
	// Cancelled events carry no Reactive flag; the open map remembers.
	ev(4*sim.Hour, &PTicket{Kind: uint8(bus.TicketCancelled), ID: 2})
	ev(5*sim.Hour, &PTicket{Kind: uint8(bus.TicketOpened), ID: 3, Reactive: true})

	if got := s.ReactiveWindows(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("windows %v, want [3]", got)
	}
	if s.reactOpened != 3 || s.reactResolved != 1 || s.reactCancelled != 1 {
		t.Fatalf("counts opened=%d resolved=%d cancelled=%d", s.reactOpened, s.reactResolved, s.reactCancelled)
	}
	if got := s.ReactiveOpen(); got != 1 {
		t.Fatalf("reactive open %d, want 1", got)
	}
}

// BenchmarkRecordEvent measures the per-event cost of the hot tap path.
func BenchmarkRecordEvent(b *testing.B) {
	rec, err := New(io.Discard, map[string]string{"seed": "1"}, 1)
	if err != nil {
		b.Fatal(err)
	}
	ev := bus.Event{Seq: 0, At: 0, Topic: bus.TopicDispatch,
		Payload: bus.Dispatch{Ticket: 7, Actor: "unit-3", Robot: true}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Seq = uint64(i)
		ev.At = sim.Time(i) * sim.Second
		rec.Tap(0, ev)
	}
	if rec.Err() != nil {
		b.Fatal(rec.Err())
	}
}
