package flightrec

import (
	"fmt"
	"strings"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Payload is a decoded event payload. Concrete types mirror the live bus
// payload structs field-for-field but hold only plain values (link names,
// not *topology.Link), so a recording is self-contained: replay needs no
// topology, no world, no simulation.
//
// Payload kinds are append-only and identified on the wire by interned
// name strings; a reader that does not recognize a kind decodes the fields
// generically (PUnknown) and keeps going.
type Payload interface {
	// PayloadKind is the stable wire name of this payload type.
	PayloadKind() string
	encodeFields(e *enc)
	String() string
}

// payloadDecoders maps wire names to field decoders. Lookup only — never
// iterated — so map order cannot reach output.
var payloadDecoders = map[string]func(fieldSet) Payload{
	"alert":         decodeAlert,
	"request":       decodeRequest,
	"ticket":        decodeTicket,
	"dispatch":      decodeDispatch,
	"outcome":       decodeOutcome,
	"watchdog":      decodeWatchdog,
	"degraded":      decodeDegraded,
	"journal":       decodeJournal,
	"fleet-summary": decodeFleetSummary,
	"fleet-ticket":  decodeFleetTicket,
	"transfer":      decodeTransfer,
	"generic":       decodeGeneric,
}

func decodePayload(name string, fs fieldSet) Payload {
	if fn, ok := payloadDecoders[name]; ok {
		return fn(fs)
	}
	return &PUnknown{Name: name, Fields: fs}
}

// convertPayload maps live bus payloads to recordable ones. Fleet-level
// payload types are translated by a converter the caller installs with
// WithConverter: flightrec sits below internal/fleet in the import order,
// so it cannot name those types itself (it still owns their wire form).
func convertPayload(p any) (Payload, bool) {
	switch v := p.(type) {
	case bus.Alert:
		return &PAlert{Kind: uint8(v.Kind), Link: linkName(v.Link), At: v.At, Detail: v.Detail}, true
	case bus.RepairRequest:
		return &PRequest{Link: linkName(v.Link), Predictive: v.Predictive}, true
	case bus.TicketEvent:
		return &PTicket{Kind: uint8(v.Kind), ID: v.ID, Link: linkName(v.Link),
			Action: uint8(v.Action), Reactive: v.Reactive}, true
	case bus.Dispatch:
		return &PDispatch{Ticket: v.Ticket, Link: linkName(v.Link), Actor: v.Actor,
			Robot: v.Robot, Action: uint8(v.Action), End: uint8(v.End)}, true
	case bus.WorkOutcome:
		return &POutcome{Ticket: v.Ticket, Link: linkName(v.Link), Actor: v.Actor,
			Robot: v.Robot, Action: uint8(v.Action),
			Completed: v.Completed, Fixed: v.Fixed, Note: v.Note}, true
	case bus.WatchdogFired:
		return &PWatchdog{Ticket: v.Ticket, Link: linkName(v.Link), Actor: v.Actor,
			Robot: v.Robot, Action: uint8(v.Action),
			Deadline: v.Deadline, Attempt: v.Attempt, Backoff: v.Backoff}, true
	case bus.Degraded:
		return &PDegraded{Ticket: v.Ticket, Link: linkName(v.Link), RobotFailures: v.RobotFailures}, true
	case core.JournalEntry:
		return &PJournal{At: v.At, Kind: uint8(v.Kind), Ticket: v.Ticket, Link: v.Link, Detail: v.Detail}, true
	}
	return nil, false
}

func linkName(l *topology.Link) string {
	if l == nil {
		return ""
	}
	return l.Name()
}

// PAlert mirrors bus.Alert.
type PAlert struct {
	Kind   uint8 // bus.AlertKind
	Link   string
	At     sim.Time
	Detail string
}

func (p *PAlert) PayloadKind() string { return "alert" }

func (p *PAlert) encodeFields(e *enc) {
	e.tagU(1, uint64(p.Kind))
	e.tagS(2, p.Link)
	e.tagU(3, uint64(p.At))
	e.tagS(4, p.Detail)
}

func decodeAlert(fs fieldSet) Payload {
	return &PAlert{Kind: uint8(fs.u(1)), Link: fs.s(2), At: sim.Time(fs.u(3)), Detail: fs.s(4)}
}

func (p *PAlert) String() string {
	s := fmt.Sprintf("alert{%v %s", bus.AlertKind(p.Kind), p.Link)
	if p.Detail != "" {
		s += " " + p.Detail
	}
	return s + "}"
}

// PRequest mirrors bus.RepairRequest.
type PRequest struct {
	Link       string
	Predictive bool
}

func (p *PRequest) PayloadKind() string { return "request" }

func (p *PRequest) encodeFields(e *enc) {
	e.tagS(1, p.Link)
	e.tagB(2, p.Predictive)
}

func decodeRequest(fs fieldSet) Payload {
	return &PRequest{Link: fs.s(1), Predictive: fs.b(2)}
}

func (p *PRequest) String() string {
	kind := "proactive"
	if p.Predictive {
		kind = "predictive"
	}
	return fmt.Sprintf("request{%s %s}", kind, p.Link)
}

// PTicket mirrors bus.TicketEvent.
type PTicket struct {
	Kind     uint8 // bus.TicketEventKind
	ID       int
	Link     string
	Action   uint8 // faults.Action, meaningful on resolved events
	Reactive bool
}

func (p *PTicket) PayloadKind() string { return "ticket" }

func (p *PTicket) encodeFields(e *enc) {
	e.tagU(1, uint64(p.Kind))
	e.tagI(2, int64(p.ID))
	e.tagS(3, p.Link)
	e.tagU(4, uint64(p.Action))
	e.tagB(5, p.Reactive)
}

func decodeTicket(fs fieldSet) Payload {
	return &PTicket{Kind: uint8(fs.u(1)), ID: int(fs.i(2)), Link: fs.s(3),
		Action: uint8(fs.u(4)), Reactive: fs.b(5)}
}

func (p *PTicket) String() string {
	s := fmt.Sprintf("ticket{T%d %s %v", p.ID, p.Link, bus.TicketEventKind(p.Kind))
	if bus.TicketEventKind(p.Kind) == bus.TicketResolved {
		s += " via " + faults.Action(p.Action).String()
	}
	if p.Reactive {
		s += " reactive"
	}
	return s + "}"
}

// PDispatch mirrors bus.Dispatch.
type PDispatch struct {
	Ticket int
	Link   string
	Actor  string
	Robot  bool
	Action uint8 // faults.Action
	End    uint8 // faults.End
}

func (p *PDispatch) PayloadKind() string { return "dispatch" }

func (p *PDispatch) encodeFields(e *enc) {
	e.tagI(1, int64(p.Ticket))
	e.tagS(2, p.Link)
	e.tagS(3, p.Actor)
	e.tagB(4, p.Robot)
	e.tagU(5, uint64(p.Action))
	e.tagU(6, uint64(p.End))
}

func decodeDispatch(fs fieldSet) Payload {
	return &PDispatch{Ticket: int(fs.i(1)), Link: fs.s(2), Actor: fs.s(3),
		Robot: fs.b(4), Action: uint8(fs.u(5)), End: uint8(fs.u(6))}
}

func (p *PDispatch) String() string {
	return fmt.Sprintf("dispatch{T%d %s %s %v@%v by %s}", p.Ticket, p.Link, lane(p.Robot),
		faults.Action(p.Action), faults.End(p.End), p.Actor)
}

func lane(robot bool) string {
	if robot {
		return "robot"
	}
	return "human"
}

// POutcome mirrors bus.WorkOutcome.
type POutcome struct {
	Ticket    int
	Link      string
	Actor     string
	Robot     bool
	Action    uint8 // faults.Action
	Completed bool
	Fixed     bool
	Note      string
}

func (p *POutcome) PayloadKind() string { return "outcome" }

func (p *POutcome) encodeFields(e *enc) {
	e.tagI(1, int64(p.Ticket))
	e.tagS(2, p.Link)
	e.tagS(3, p.Actor)
	e.tagB(4, p.Robot)
	e.tagU(5, uint64(p.Action))
	e.tagB(6, p.Completed)
	e.tagB(7, p.Fixed)
	e.tagS(8, p.Note)
}

func decodeOutcome(fs fieldSet) Payload {
	return &POutcome{Ticket: int(fs.i(1)), Link: fs.s(2), Actor: fs.s(3),
		Robot: fs.b(4), Action: uint8(fs.u(5)),
		Completed: fs.b(6), Fixed: fs.b(7), Note: fs.s(8)}
}

func (p *POutcome) String() string {
	verdict := "failed"
	switch {
	case p.Fixed:
		verdict = "fixed"
	case p.Completed:
		verdict = "performed, not fixed"
	}
	s := fmt.Sprintf("outcome{T%d %s %v by %s: %s", p.Ticket, p.Link,
		faults.Action(p.Action), p.Actor, verdict)
	if p.Note != "" {
		s += " (" + p.Note + ")"
	}
	return s + "}"
}

// PWatchdog mirrors bus.WatchdogFired.
type PWatchdog struct {
	Ticket   int
	Link     string
	Actor    string
	Robot    bool
	Action   uint8 // faults.Action
	Deadline sim.Time
	Attempt  int
	Backoff  sim.Time
}

func (p *PWatchdog) PayloadKind() string { return "watchdog" }

func (p *PWatchdog) encodeFields(e *enc) {
	e.tagI(1, int64(p.Ticket))
	e.tagS(2, p.Link)
	e.tagS(3, p.Actor)
	e.tagB(4, p.Robot)
	e.tagU(5, uint64(p.Action))
	e.tagU(6, uint64(p.Deadline))
	e.tagI(7, int64(p.Attempt))
	e.tagU(8, uint64(p.Backoff))
}

func decodeWatchdog(fs fieldSet) Payload {
	return &PWatchdog{Ticket: int(fs.i(1)), Link: fs.s(2), Actor: fs.s(3),
		Robot: fs.b(4), Action: uint8(fs.u(5)),
		Deadline: sim.Time(fs.u(6)), Attempt: int(fs.i(7)), Backoff: sim.Time(fs.u(8))}
}

func (p *PWatchdog) String() string {
	return fmt.Sprintf("watchdog{T%d %s %s %v by %s after %v attempt=%d backoff=%v}",
		p.Ticket, p.Link, lane(p.Robot), faults.Action(p.Action), p.Actor,
		p.Deadline, p.Attempt, p.Backoff)
}

// PDegraded mirrors bus.Degraded.
type PDegraded struct {
	Ticket        int
	Link          string
	RobotFailures int
}

func (p *PDegraded) PayloadKind() string { return "degraded" }

func (p *PDegraded) encodeFields(e *enc) {
	e.tagI(1, int64(p.Ticket))
	e.tagS(2, p.Link)
	e.tagI(3, int64(p.RobotFailures))
}

func decodeDegraded(fs fieldSet) Payload {
	return &PDegraded{Ticket: int(fs.i(1)), Link: fs.s(2), RobotFailures: int(fs.i(3))}
}

func (p *PDegraded) String() string {
	return fmt.Sprintf("degraded{T%d %s failures=%d}", p.Ticket, p.Link, p.RobotFailures)
}

// PJournal mirrors core.JournalEntry.
type PJournal struct {
	At     sim.Time
	Kind   uint8 // core.EventKind
	Ticket int   // -1 when not ticket-scoped, like the live entry
	Link   string
	Detail string
}

func (p *PJournal) PayloadKind() string { return "journal" }

func (p *PJournal) encodeFields(e *enc) {
	e.tagU(1, uint64(p.At))
	e.tagU(2, uint64(p.Kind))
	e.tagI(3, int64(p.Ticket))
	e.tagS(4, p.Link)
	e.tagS(5, p.Detail)
}

func decodeJournal(fs fieldSet) Payload {
	return &PJournal{At: sim.Time(fs.u(1)), Kind: uint8(fs.u(2)), Ticket: int(fs.i(3)),
		Link: fs.s(4), Detail: fs.s(5)}
}

func (p *PJournal) String() string {
	s := fmt.Sprintf("journal{%v", core.EventKind(p.Kind))
	if p.Ticket >= 0 {
		s += fmt.Sprintf(" T%d", p.Ticket)
	}
	if p.Link != "" {
		s += " " + p.Link
	}
	if p.Detail != "" {
		s += ": " + p.Detail
	}
	return s + "}"
}

// PFleetSummary is the wire form of fleet.Summary (converted by the
// scenario layer's fleet converter).
type PFleetSummary struct {
	Region      int
	At          sim.Time
	Links       int
	LinksDown   int
	OpenTickets int
	Resolved    int
	RobotsIdle  int
	RobotsTotal int
}

func (p *PFleetSummary) PayloadKind() string { return "fleet-summary" }

func (p *PFleetSummary) encodeFields(e *enc) {
	e.tagI(1, int64(p.Region))
	e.tagU(2, uint64(p.At))
	e.tagI(3, int64(p.Links))
	e.tagI(4, int64(p.LinksDown))
	e.tagI(5, int64(p.OpenTickets))
	e.tagI(6, int64(p.Resolved))
	e.tagI(7, int64(p.RobotsIdle))
	e.tagI(8, int64(p.RobotsTotal))
}

func decodeFleetSummary(fs fieldSet) Payload {
	return &PFleetSummary{Region: int(fs.i(1)), At: sim.Time(fs.u(2)),
		Links: int(fs.i(3)), LinksDown: int(fs.i(4)),
		OpenTickets: int(fs.i(5)), Resolved: int(fs.i(6)),
		RobotsIdle: int(fs.i(7)), RobotsTotal: int(fs.i(8))}
}

func (p *PFleetSummary) String() string {
	return fmt.Sprintf("fleet-summary{region=%d links=%d down=%d open=%d resolved=%d robots=%d/%d}",
		p.Region, p.Links, p.LinksDown, p.OpenTickets, p.Resolved, p.RobotsIdle, p.RobotsTotal)
}

// PFleetTicket is the wire form of fleet.Ticket.
type PFleetTicket struct {
	Region   int
	OpenedAt sim.Time
	ClosedAt sim.Time
}

func (p *PFleetTicket) PayloadKind() string { return "fleet-ticket" }

func (p *PFleetTicket) encodeFields(e *enc) {
	e.tagI(1, int64(p.Region))
	e.tagU(2, uint64(p.OpenedAt))
	e.tagU(3, uint64(p.ClosedAt))
}

func decodeFleetTicket(fs fieldSet) Payload {
	return &PFleetTicket{Region: int(fs.i(1)), OpenedAt: sim.Time(fs.u(2)), ClosedAt: sim.Time(fs.u(3))}
}

func (p *PFleetTicket) String() string {
	state := "open"
	if p.ClosedAt != 0 {
		state = fmt.Sprintf("closed@%d", int64(p.ClosedAt))
	}
	return fmt.Sprintf("fleet-ticket{region=%d opened@%d %s}", p.Region, int64(p.OpenedAt), state)
}

// PTransfer is the wire form of fleet.TransferNote.
type PTransfer struct {
	From    int
	To      int
	Granted bool
	Unit    string
}

func (p *PTransfer) PayloadKind() string { return "transfer" }

func (p *PTransfer) encodeFields(e *enc) {
	e.tagI(1, int64(p.From))
	e.tagI(2, int64(p.To))
	e.tagB(3, p.Granted)
	e.tagS(4, p.Unit)
}

func decodeTransfer(fs fieldSet) Payload {
	return &PTransfer{From: int(fs.i(1)), To: int(fs.i(2)), Granted: fs.b(3), Unit: fs.s(4)}
}

func (p *PTransfer) String() string {
	verdict := "declined"
	if p.Granted {
		verdict = "granted " + p.Unit
	}
	return fmt.Sprintf("transfer{%d->%d %s}", p.From, p.To, verdict)
}

// PGeneric records a payload type nothing converted: its Go type name and
// rendered text. Deterministic as long as the payload's String/%v render
// is (pointer-free value structs, or types with a Stringer).
type PGeneric struct {
	TypeName string
	Text     string
}

func (p *PGeneric) PayloadKind() string { return "generic" }

func (p *PGeneric) encodeFields(e *enc) {
	e.tagS(1, p.TypeName)
	e.tagS(2, p.Text)
}

func decodeGeneric(fs fieldSet) Payload {
	return &PGeneric{TypeName: fs.s(1), Text: fs.s(2)}
}

func (p *PGeneric) String() string {
	return fmt.Sprintf("generic{%s %s}", p.TypeName, p.Text)
}

// PUnknown is a payload whose wire kind this reader predates. The fields
// survive generically, so renders and diffs still work; per the evolution
// rules it never round-trips back to the typed form.
type PUnknown struct {
	Name   string
	Fields fieldSet
}

func (p *PUnknown) PayloadKind() string { return p.Name }

func (p *PUnknown) encodeFields(e *enc) {
	for _, f := range p.Fields {
		switch f.wire {
		case wireUint:
			e.tagU(f.tag, f.u)
		case wireSint:
			e.tagI(f.tag, f.i)
		case wireStr:
			e.tagS(f.tag, f.s)
		case wireFloat:
			e.u(f.tag<<2 | wireFloat)
			e.f(f.f)
		}
	}
}

func (p *PUnknown) String() string {
	var b strings.Builder
	b.WriteString(p.Name)
	b.WriteByte('{')
	for i, f := range p.Fields {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch f.wire {
		case wireUint:
			fmt.Fprintf(&b, "%d=%d", f.tag, f.u)
		case wireSint:
			fmt.Fprintf(&b, "%d=%d", f.tag, f.i)
		case wireStr:
			fmt.Fprintf(&b, "%d=%q", f.tag, f.s)
		case wireFloat:
			fmt.Fprintf(&b, "%d=%s", f.tag, fmtFloat(f.f))
		}
	}
	b.WriteByte('}')
	return b.String()
}
