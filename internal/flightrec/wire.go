// Package flightrec is the durable flight recorder for deterministic runs:
// a compact binary, schema-evolving, delta-compressed capture of the full
// event stream — every bus event on every topic, journal entries, periodic
// metric snapshots, end-of-run state, and run metadata (seed, level,
// config). The in-memory rings (core.journal, the daemon's eventRing) drop
// history; a recording keeps all of it, and because the simulation is
// deterministic, capture-once/analyze-many works: a recording replays into
// the exact report the live run produced, without re-simulating.
//
// File layout:
//
//	header:  magic "SMFR", version byte, metadata (sorted key/value strings)
//	frames:  uvarint length prefix, then kind byte + kind-specific body
//	trailer: a final frame carrying the frame count, the live summary's
//	         fingerprint and its rendered form
//
// Frames are delta-compressed per shard: event times and sequence numbers
// are encoded as deltas against the previous frame of the same shard, and
// every string (topic, link name, payload kind) is interned into a
// file-wide table, so steady-state events cost a few bytes each.
//
// Schema evolution rules (see DESIGN.md):
//
//   - The version byte covers the container only; it bumps when the frame
//     framing itself changes, never for payload growth.
//   - Payload kinds are append-only and identified by interned name
//     strings; a reader that does not know a kind decodes its fields
//     generically and keeps going.
//   - Payload fields are tagged. Tags are append-only per kind, unknown
//     tags are skipped by wire type, and absent tags decode as zero —
//     writers omit zero-valued fields, which doubles as compression.
package flightrec

import (
	"encoding/binary"
	"fmt"
	"math"
)

var magic = [4]byte{'S', 'M', 'F', 'R'}

// version is the container version. See the schema-evolution rules above:
// payload growth must not bump it.
const version = 1

// Wire types for tagged payload fields. A field is encoded as
// uvarint(tag<<2|wire) followed by a wire-type-dependent value; the key 0
// (tag 0) terminates the field list. Readers skip unknown tags by wire
// type, which is what lets payload schemas grow without a version bump.
const (
	wireUint  = 0 // uvarint
	wireSint  = 1 // zigzag varint
	wireStr   = 2 // interned string
	wireFloat = 3 // 8-byte little-endian IEEE 754 bits
)

// enc builds header and frame bodies. One enc lives for the whole file:
// the string intern table spans frames, so a topic or link name costs its
// bytes once and a one-or-two-byte id forever after — the bulk of the
// compression alongside the per-shard time/seq deltas.
type enc struct {
	b    []byte
	strs map[string]uint64
}

func newEnc() *enc { return &enc{strs: make(map[string]uint64)} }

func (e *enc) u(v uint64)  { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) i(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) f(v float64) { e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v)) }

// raw writes a length-prefixed string without interning (header metadata,
// the trailer render).
func (e *enc) raw(s string) {
	e.u(uint64(len(s)))
	e.b = append(e.b, s...)
}

// s writes an interned string: id+1 for a known string, or 0 followed by
// the raw bytes, implicitly assigning the next table id.
func (e *enc) s(s string) {
	if id, ok := e.strs[s]; ok {
		e.u(id + 1)
		return
	}
	e.u(0)
	e.raw(s)
	e.strs[s] = uint64(len(e.strs))
}

// Tagged-field writers. Zero values are omitted: absent tags decode as
// zero, so omission is lossless and keeps sparse payloads tiny.

func (e *enc) tagU(tag uint64, v uint64) {
	if v == 0 {
		return
	}
	e.u(tag<<2 | wireUint)
	e.u(v)
}

func (e *enc) tagI(tag uint64, v int64) {
	if v == 0 {
		return
	}
	e.u(tag<<2 | wireSint)
	e.i(v)
}

func (e *enc) tagS(tag uint64, s string) {
	if s == "" {
		return
	}
	e.u(tag<<2 | wireStr)
	e.s(s)
}

func (e *enc) tagF(tag uint64, v float64) {
	if v == 0 {
		return
	}
	e.u(tag<<2 | wireFloat)
	e.f(v)
}

func (e *enc) tagB(tag uint64, v bool) {
	if v {
		e.tagU(tag, 1)
	}
}

// end terminates a tagged field list.
func (e *enc) end() { e.u(0) }

// dec decodes one frame body. The string table is shared across frames and
// owned by the Reader; errors are sticky so call sites stay linear.
type dec struct {
	b    []byte
	pos  int
	strs *[]string
	err  error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("flightrec: "+format, args...)
	}
}

func (d *dec) u() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.pos:])
	if n <= 0 {
		d.fail("truncated uvarint at offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *dec) i() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.pos:])
	if n <= 0 {
		d.fail("truncated varint at offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *dec) f() float64 {
	if d.err != nil {
		return 0
	}
	if d.pos+8 > len(d.b) {
		d.fail("truncated float at offset %d", d.pos)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.pos:]))
	d.pos += 8
	return v
}

func (d *dec) raw() string {
	n := d.u()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.pos) {
		d.fail("truncated string (%d bytes) at offset %d", n, d.pos)
		return ""
	}
	s := string(d.b[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s
}

func (d *dec) s() string {
	id := d.u()
	if d.err != nil {
		return ""
	}
	if id == 0 {
		s := d.raw()
		if d.err != nil {
			return ""
		}
		*d.strs = append(*d.strs, s)
		return s
	}
	if id-1 >= uint64(len(*d.strs)) {
		d.fail("string id %d beyond intern table size %d", id, len(*d.strs))
		return ""
	}
	return (*d.strs)[id-1]
}

// field is one decoded tagged field. Unknown tags survive decoding, so a
// reader built before a schema addition can still render and diff frames.
type field struct {
	tag  uint64
	wire uint64
	u    uint64
	i    int64
	f    float64
	s    string
}

// fieldSet is a decoded tagged field list with typed accessors; absent
// tags read as zero, per the schema-evolution rules.
type fieldSet []field

func (fs fieldSet) lookup(tag uint64) (field, bool) {
	for _, f := range fs {
		if f.tag == tag {
			return f, true
		}
	}
	return field{}, false
}

func (fs fieldSet) u(tag uint64) uint64 {
	f, _ := fs.lookup(tag)
	return f.u
}

func (fs fieldSet) i(tag uint64) int64 {
	f, _ := fs.lookup(tag)
	return f.i
}

func (fs fieldSet) s(tag uint64) string {
	f, _ := fs.lookup(tag)
	return f.s
}

func (fs fieldSet) f(tag uint64) float64 {
	f, _ := fs.lookup(tag)
	return f.f
}

func (fs fieldSet) b(tag uint64) bool { return fs.u(tag) != 0 }

// fields decodes a tagged field list through its terminator. Interned
// strings inside skipped fields are still resolved, keeping the table in
// sync even when every tag is unknown.
func (d *dec) fields() fieldSet {
	var fs fieldSet
	for {
		key := d.u()
		if d.err != nil || key == 0 {
			return fs
		}
		fd := field{tag: key >> 2, wire: key & 3}
		switch fd.wire {
		case wireUint:
			fd.u = d.u()
		case wireSint:
			fd.i = d.i()
		case wireStr:
			fd.s = d.s()
		case wireFloat:
			fd.f = d.f()
		}
		fs = append(fs, fd)
	}
}
