package flightrec

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Kind discriminates frame types. Kinds are append-only; a reader skips
// frame kinds it does not know (the length prefix makes that safe).
type Kind uint8

// Frame kinds.
const (
	KindEvent    Kind = 1 // one bus event (any topic, journal included)
	KindSnapshot Kind = 2 // periodic metric sample
	KindState    Kind = 3 // end-of-run key/value state for one shard
	KindEpoch    Kind = 4 // a multi-engine epoch barrier
	KindTrailer  Kind = 5 // frame count + live summary fingerprint/render
)

var kindNames = [...]string{
	KindEvent:    "event",
	KindSnapshot: "snapshot",
	KindState:    "state",
	KindEpoch:    "epoch",
	KindTrailer:  "trailer",
}

// String returns the kind name.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Snap is one periodic metric snapshot: the low-rate health signal that
// makes a recording browsable without replaying every event.
type Snap struct {
	Avail     float64 // routed traffic availability at the sample instant
	LinksDown int     // links observably unhealthy
	OpenTix   int     // open tickets
	Fired     uint64  // engine events fired so far on this shard
}

// kvKind discriminates KV value types on the wire.
type kvKind uint8

const (
	kvInt kvKind = iota
	kvFloat
	kvStr
)

// KV is one typed key/value pair of a state frame: the scalars a report is
// rebuilt from (stats counters, ledger integrals, fingerprints).
type KV struct {
	Key  string
	kind kvKind
	i    int64
	f    float64
	s    string
}

// KInt makes an integer-valued KV.
func KInt(key string, v int64) KV { return KV{Key: key, kind: kvInt, i: v} }

// KFloat makes a float-valued KV.
func KFloat(key string, v float64) KV { return KV{Key: key, kind: kvFloat, f: v} }

// KStr makes a string-valued KV.
func KStr(key, v string) KV { return KV{Key: key, kind: kvStr, s: v} }

// Int returns the integer value (zero for other kinds).
func (kv KV) Int() int64 { return kv.i }

// Float returns the float value (zero for other kinds).
func (kv KV) Float() float64 { return kv.f }

// Str returns the string value ("" for other kinds).
func (kv KV) Str() string { return kv.s }

// String renders key=value. Floats use strconv 'g' with full precision, so
// the render round-trips the exact bits — state lines are fingerprinted.
func (kv KV) String() string {
	switch kv.kind {
	case kvInt:
		return kv.Key + "=" + strconv.FormatInt(kv.i, 10)
	case kvFloat:
		return kv.Key + "=" + fmtFloat(kv.f)
	default:
		return kv.Key + "=" + kv.s
	}
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Frame is one decoded (or about-to-be-encoded) record. Only the fields
// relevant to Kind are populated.
type Frame struct {
	Kind  Kind
	Index uint64 // ordinal in the file, assigned by the recorder/reader
	Shard int    // owning shard (events, snapshots, state)

	// Event fields.
	At      sim.Time
	Seq     uint64
	Topic   string
	Payload Payload

	// Snapshot fields (At and Shard above also apply).
	Snap Snap

	// State fields.
	State []KV

	// Epoch fields: Epoch is the barrier ordinal, At its horizon.
	Epoch uint64

	// Trailer fields.
	Frames      uint64
	Fingerprint uint64
	Render      string

	// Raw holds the body of a frame whose kind this reader predates; it is
	// retained so diffs can still compare the streams byte-for-byte.
	Raw []byte
}

// String is the canonical render diffing and bisection compare. Times are
// printed as exact nanosecond counts (@n) — the pretty ms-truncated form
// could alias two genuinely different instants.
func (f Frame) String() string {
	switch f.Kind {
	case KindEvent:
		return fmt.Sprintf("ev shard=%d @%d #%d %s %v", f.Shard, int64(f.At), f.Seq, f.Topic, f.Payload)
	case KindSnapshot:
		return fmt.Sprintf("snap shard=%d @%d avail=%s down=%d open=%d fired=%d",
			f.Shard, int64(f.At), fmtFloat(f.Snap.Avail), f.Snap.LinksDown, f.Snap.OpenTix, f.Snap.Fired)
	case KindState:
		var b strings.Builder
		fmt.Fprintf(&b, "state shard=%d", f.Shard)
		for _, kv := range f.State {
			b.WriteByte(' ')
			b.WriteString(kv.String())
		}
		return b.String()
	case KindEpoch:
		return fmt.Sprintf("epoch %d @%d", f.Epoch, int64(f.At))
	case KindTrailer:
		return fmt.Sprintf("trailer frames=%d fingerprint=%016x", f.Frames, f.Fingerprint)
	default:
		return fmt.Sprintf("%v len=%d", f.Kind, len(f.Raw))
	}
}
