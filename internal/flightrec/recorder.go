package flightrec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/bus"
	"repro/internal/detsort"
	"repro/internal/sim"
)

// Recorder writes one flight recording. It is attached as a bus tap (one
// per shard) and fed barrier callbacks by the multi-engine coordinator:
//
//   - single-shard worlds encode every frame in place, on the world's own
//     goroutine (bus taps run synchronously inside Publish);
//   - sharded worlds buffer frames per shard — each shard's tap runs only
//     on that shard's goroutine, so the buffers are race-free without
//     locks — and Barrier merges them in shard-id order on the
//     coordinator's goroutine, which is what makes the recording
//     byte-identical at any worker count.
//
// Recorder owns the buffering; Close flushes it and writes the trailer but
// does not close the underlying writer.
type Recorder struct {
	bw     *bufio.Writer
	e      *enc
	shards int

	pending     [][]Frame
	prevAt      []sim.Time
	prevSeq     []uint64
	prevEpochAt sim.Time

	convert []func(any) (Payload, bool)
	sum     *Summary
	frames  uint64
	err     error
}

// Option configures a Recorder.
type Option func(*Recorder)

// WithConverter adds a payload converter consulted after the built-in bus
// conversions — the hook layers above flightrec use to record their own
// payload types (fleet summaries, transfer notes) without flightrec
// importing them. Converters must be pure: taps may call them from shard
// goroutines.
func WithConverter(fn func(any) (Payload, bool)) Option {
	return func(r *Recorder) { r.convert = append(r.convert, fn) }
}

// New starts a recording: it writes the header (magic, version, metadata
// sorted by key) immediately. shards is the shard count frames will be
// tagged with; plain worlds pass 1.
func New(w io.Writer, meta map[string]string, shards int, opts ...Option) (*Recorder, error) {
	if shards < 1 {
		return nil, fmt.Errorf("flightrec: %d shards", shards)
	}
	r := &Recorder{
		bw:      bufio.NewWriterSize(w, 1<<16),
		e:       newEnc(),
		shards:  shards,
		pending: make([][]Frame, shards),
		prevAt:  make([]sim.Time, shards),
		prevSeq: make([]uint64, shards),
		sum:     newSummary(meta),
	}
	for _, opt := range opts {
		opt(r)
	}
	r.e.b = append(r.e.b, magic[:]...)
	r.e.b = append(r.e.b, version)
	keys := detsort.Keys(meta)
	r.e.u(uint64(len(keys)))
	for _, k := range keys {
		r.e.raw(k)
		r.e.raw(meta[k])
	}
	if _, err := r.bw.Write(r.e.b); err != nil {
		r.err = err
	}
	r.e.b = r.e.b[:0]
	return r, r.err
}

// Err returns the first write or sequencing error, if any.
func (r *Recorder) Err() error { return r.err }

// Frames returns how many frames have been encoded so far.
func (r *Recorder) Frames() uint64 { return r.frames }

// TapBus attaches the recorder to a bus as a tap recording onto the given
// shard, returning the subscription for detaching.
func (r *Recorder) TapBus(b *bus.Bus, shard int) *bus.Subscription {
	return b.Tap(func(ev bus.Event) { r.Tap(shard, ev) })
}

// Tap records one bus event for the given shard. On a sharded recorder it
// only appends to the shard's buffer (plus payload conversion), so it is
// safe from that shard's goroutine while other shards run concurrently.
func (r *Recorder) Tap(shard int, ev bus.Event) {
	r.add(Frame{Kind: KindEvent, Shard: shard, At: ev.At, Seq: ev.Seq,
		Topic: string(ev.Topic), Payload: r.convertAny(ev.Payload)})
}

// Snapshot records one periodic metric sample for the given shard.
func (r *Recorder) Snapshot(shard int, at sim.Time, s Snap) {
	r.add(Frame{Kind: KindSnapshot, Shard: shard, At: at, Snap: s})
}

// State records end-of-run key/values for one shard — the scalars a
// report is rebuilt from on replay.
func (r *Recorder) State(shard int, kvs []KV) {
	r.add(Frame{Kind: KindState, Shard: shard, State: kvs})
}

func (r *Recorder) convertAny(p any) Payload {
	if pl, ok := convertPayload(p); ok {
		return pl
	}
	for _, fn := range r.convert {
		if pl, ok := fn(p); ok {
			return pl
		}
	}
	return &PGeneric{TypeName: fmt.Sprintf("%T", p), Text: fmt.Sprint(p)}
}

func (r *Recorder) add(f Frame) {
	if r.shards == 1 {
		r.writeFrame(f)
		return
	}
	r.pending[f.Shard] = append(r.pending[f.Shard], f)
}

// Barrier flushes every shard's buffered frames in shard-id order and
// stamps an epoch frame — the merge point that keeps a sharded recording
// byte-identical at any worker count. Call it from the multi-engine's
// barrier hook: it runs on the coordinator's goroutine while no shard is.
func (r *Recorder) Barrier(epoch uint64, now sim.Time) {
	r.flushPending()
	r.writeFrame(Frame{Kind: KindEpoch, Epoch: epoch, At: now})
}

func (r *Recorder) flushPending() {
	for i := range r.pending {
		for j := range r.pending[i] {
			r.writeFrame(r.pending[i][j])
			r.pending[i][j] = Frame{} // release payload references
		}
		r.pending[i] = r.pending[i][:0]
	}
}

// Close flushes buffered frames, writes the trailer (frame count plus the
// live summary's fingerprint and render), and flushes the buffered writer.
// The returned Summary is the live accumulation; replaying the file must
// reproduce its fingerprint exactly.
func (r *Recorder) Close() (*Summary, error) {
	r.flushPending()
	t := Frame{Kind: KindTrailer, Frames: r.frames,
		Fingerprint: r.sum.Fingerprint(), Render: r.sum.Render()}
	r.encodeFrame(t) // the trailer is derived from the summary, never added to it
	if err := r.bw.Flush(); err != nil && r.err == nil {
		r.err = err
	}
	return r.sum, r.err
}

// writeFrame accumulates and encodes one frame.
func (r *Recorder) writeFrame(f Frame) {
	f.Index = r.frames
	r.frames++
	r.sum.Add(f)
	r.encodeFrame(f)
}

func (r *Recorder) encodeFrame(f Frame) {
	if r.err != nil {
		return
	}
	start := len(r.e.b)
	r.encodeBody(f)
	body := r.e.b[start:]
	var lenbuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenbuf[:], uint64(len(body)))
	if _, err := r.bw.Write(lenbuf[:n]); err != nil {
		r.err = err
	} else if _, err := r.bw.Write(body); err != nil {
		r.err = err
	}
	r.e.b = r.e.b[:start]
}

func (r *Recorder) encodeBody(f Frame) {
	e := r.e
	e.b = append(e.b, byte(f.Kind))
	switch f.Kind {
	case KindEvent:
		e.u(uint64(f.Shard))
		e.s(f.Topic)
		e.u(r.deltaAt(f))
		e.u(f.Seq - r.prevSeq[f.Shard])
		r.prevSeq[f.Shard] = f.Seq
		e.s(f.Payload.PayloadKind())
		f.Payload.encodeFields(e)
		e.end()
	case KindSnapshot:
		e.u(uint64(f.Shard))
		e.u(r.deltaAt(f))
		e.tagF(1, f.Snap.Avail)
		e.tagI(2, int64(f.Snap.LinksDown))
		e.tagI(3, int64(f.Snap.OpenTix))
		e.tagU(4, f.Snap.Fired)
		e.end()
	case KindState:
		e.u(uint64(f.Shard))
		e.u(uint64(len(f.State)))
		for _, kv := range f.State {
			e.s(kv.Key)
			e.u(uint64(kv.kind))
			switch kv.kind {
			case kvInt:
				e.i(kv.i)
			case kvFloat:
				e.f(kv.f)
			case kvStr:
				e.s(kv.s)
			}
		}
	case KindEpoch:
		e.u(f.Epoch)
		if f.At < r.prevEpochAt {
			r.fail(fmt.Errorf("flightrec: epoch %d horizon %v before previous %v", f.Epoch, f.At, r.prevEpochAt))
			return
		}
		e.u(uint64(f.At - r.prevEpochAt))
		r.prevEpochAt = f.At
	case KindTrailer:
		e.u(f.Frames)
		e.b = binary.LittleEndian.AppendUint64(e.b, f.Fingerprint)
		e.raw(f.Render)
	default:
		r.fail(fmt.Errorf("flightrec: cannot encode frame kind %v", f.Kind))
	}
}

// deltaAt encodes the per-shard time delta shared by event and snapshot
// frames. Time going backwards within a shard is a sequencing bug (taps
// fire in virtual-time order), latched as an error rather than silently
// wrapping the unsigned delta.
func (r *Recorder) deltaAt(f Frame) uint64 {
	if f.At < r.prevAt[f.Shard] {
		r.fail(fmt.Errorf("flightrec: shard %d time went backwards: %v after %v", f.Shard, f.At, r.prevAt[f.Shard]))
		return 0
	}
	d := uint64(f.At - r.prevAt[f.Shard])
	r.prevAt[f.Shard] = f.At
	return d
}

func (r *Recorder) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}
