package flightrec

import (
	"fmt"
	"io"

	"repro/internal/sim"
)

// Divergence locates the first frame where two recordings disagree — the
// bisection primitive for "same seed, different output" investigations.
// Metadata differences are reported but are not by themselves divergence:
// diffing seed A against seed B is the point.
type Divergence struct {
	Index  uint64 // frame ordinal (0-based) where the streams part
	Epoch  uint64 // last epoch barrier both streams agreed on
	AAt    sim.Time
	BAt    sim.Time
	A      string // canonical render of stream a's frame, or "<end of recording>"
	B      string
	Reason string
}

// String renders the human-readable locator.
func (d *Divergence) String() string {
	return fmt.Sprintf("first divergence at frame %d (after epoch %d): %s\n  a [%v] %s\n  b [%v] %s",
		d.Index, d.Epoch, d.Reason, d.AAt, d.A, d.BAt, d.B)
}

const endMarker = "<end of recording>"

// Diff streams two recordings in lockstep and returns the first divergent
// frame, or nil when they are frame-for-frame identical (the trailer is
// compared too, so identical streams also agree on fingerprint). Frames
// are compared by canonical render, which includes exact nanosecond times
// and sequence numbers.
func Diff(a, b io.Reader) (*Divergence, error) {
	ra, err := NewReader(a)
	if err != nil {
		return nil, fmt.Errorf("a: %w", err)
	}
	rb, err := NewReader(b)
	if err != nil {
		return nil, fmt.Errorf("b: %w", err)
	}
	var epoch uint64
	var index uint64
	for {
		fa, ea := ra.Next()
		fb, eb := rb.Next()
		aEnd, bEnd := ea == io.EOF, eb == io.EOF
		if ea != nil && !aEnd {
			return nil, fmt.Errorf("a: %w", ea)
		}
		if eb != nil && !bEnd {
			return nil, fmt.Errorf("b: %w", eb)
		}
		switch {
		case aEnd && bEnd:
			return nil, nil
		case aEnd:
			return &Divergence{Index: index, Epoch: epoch, BAt: fb.At,
				A: endMarker, B: fb.String(), Reason: "a ended early"}, nil
		case bEnd:
			return &Divergence{Index: index, Epoch: epoch, AAt: fa.At,
				A: fa.String(), B: endMarker, Reason: "b ended early"}, nil
		}
		sa, sb := fa.String(), fb.String()
		if sa != sb {
			return &Divergence{Index: index, Epoch: epoch, AAt: fa.At, BAt: fb.At,
				A: sa, B: sb, Reason: "frame mismatch"}, nil
		}
		if fa.Kind == KindEpoch {
			epoch = fa.Epoch
		}
		index++
	}
}
