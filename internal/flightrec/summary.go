package flightrec

import (
	"fmt"
	"hash/fnv"
	"slices"
	"strings"

	"repro/internal/bus"
	"repro/internal/detsort"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Summary accumulates frames into the report a recording stands for. The
// live Recorder feeds it every frame as it is written, and Replay feeds it
// every frame as it is decoded — the same accumulator on both sides, so a
// lossless codec makes the two fingerprints equal byte-for-byte. That
// equality is the record→replay acceptance check: it proves the on-disk
// form carries everything the report derivation consumes.
type Summary struct {
	meta map[string]string

	frames      uint64
	events      uint64
	snapshots   uint64
	stateFrames uint64
	epochs      uint64
	lastEpoch   uint64
	lastEpochAt sim.Time

	topics map[string]uint64

	// Reactive ticket lifecycle, keyed (shard, ticket id): region stores
	// restart ids at 0, so shard disambiguates in fleet recordings.
	allOpened      int
	reactOpened    int
	reactResolved  int
	reactCancelled int
	deduped        int
	open           map[[2]int]openTicket
	wins           []winRec
	winsSorted     bool

	robot, human   int
	outcomes       int
	fixed          int
	watchdog       int
	degradedCnt    int
	journal        int
	alerts         int
	requests       int
	fleetSummaries int
	fleetTickets   int
	fleetTransfers int
	generic        int

	lastSnap   map[int]snapAt
	stateByID  map[int][]KV
	stateOrder []int

	render     string
	renderBody string
}

type openTicket struct {
	at       sim.Time
	reactive bool
}

type winRec struct {
	shard, id int
	hours     float64
}

type snapAt struct {
	at sim.Time
	s  Snap
}

func newSummary(meta map[string]string) *Summary {
	return &Summary{
		meta:      meta,
		topics:    make(map[string]uint64),
		open:      make(map[[2]int]openTicket),
		lastSnap:  make(map[int]snapAt),
		stateByID: make(map[int][]KV),
	}
}

// Add accumulates one frame. Frames must arrive in file order; trailers
// are not Added (the trailer is derived from the summary, not part of it).
func (s *Summary) Add(f Frame) {
	s.render, s.renderBody = "", "" // invalidate any cached render
	s.frames++
	switch f.Kind {
	case KindEvent:
		s.events++
		s.topics[f.Topic]++
		s.addPayload(f)
	case KindSnapshot:
		s.snapshots++
		s.lastSnap[f.Shard] = snapAt{at: f.At, s: f.Snap}
	case KindState:
		s.stateFrames++
		if _, ok := s.stateByID[f.Shard]; !ok {
			s.stateOrder = append(s.stateOrder, f.Shard)
		}
		s.stateByID[f.Shard] = append(s.stateByID[f.Shard], f.State...)
	case KindEpoch:
		s.epochs++
		s.lastEpoch = f.Epoch
		s.lastEpochAt = f.At
	}
}

func (s *Summary) addPayload(f Frame) {
	switch p := f.Payload.(type) {
	case *PAlert:
		s.alerts++
	case *PRequest:
		s.requests++
	case *PTicket:
		key := [2]int{f.Shard, p.ID}
		switch bus.TicketEventKind(p.Kind) {
		case bus.TicketOpened:
			s.allOpened++
			if p.Reactive {
				s.reactOpened++
			}
			s.open[key] = openTicket{at: f.At, reactive: p.Reactive}
		case bus.TicketDeduped:
			s.deduped++
		case bus.TicketResolved:
			if p.Reactive {
				s.reactResolved++
				if ot, ok := s.open[key]; ok {
					s.wins = append(s.wins, winRec{shard: f.Shard, id: p.ID,
						hours: (f.At - ot.at).Duration().Hours()})
					s.winsSorted = false
				}
			}
			delete(s.open, key)
		case bus.TicketCancelled:
			// Cancelled events carry no Reactive flag (the link recovered
			// without intervention); the open-map entry remembers the kind.
			if ot, ok := s.open[key]; ok && ot.reactive {
				s.reactCancelled++
			}
			delete(s.open, key)
		}
	case *PDispatch:
		if p.Robot {
			s.robot++
		} else {
			s.human++
		}
	case *POutcome:
		s.outcomes++
		if p.Fixed {
			s.fixed++
		}
	case *PWatchdog:
		s.watchdog++
	case *PDegraded:
		s.degradedCnt++
	case *PJournal:
		s.journal++
	case *PFleetSummary:
		s.fleetSummaries++
	case *PFleetTicket:
		s.fleetTickets++
	case *PTransfer:
		s.fleetTransfers++
	default:
		s.generic++
	}
}

// Meta returns the run metadata recorded in the header.
func (s *Summary) Meta() map[string]string { return s.meta }

// Frames returns the number of accumulated frames (trailer excluded).
func (s *Summary) Frames() uint64 { return s.frames }

// Events returns the number of accumulated event frames.
func (s *Summary) Events() uint64 { return s.events }

// ReactiveWindows returns the service windows (hours) of resolved reactive
// tickets, ordered by (shard, ticket id) — creation order within a shard,
// so order-sensitive consumers (histogram means) match a live Store walk.
func (s *Summary) ReactiveWindows() []float64 {
	s.sortWins()
	out := make([]float64, len(s.wins))
	for i, w := range s.wins {
		out[i] = w.hours
	}
	return out
}

func (s *Summary) sortWins() {
	if s.winsSorted {
		return
	}
	slices.SortFunc(s.wins, func(a, b winRec) int {
		if a.shard != b.shard {
			return a.shard - b.shard
		}
		return a.id - b.id
	})
	s.winsSorted = true
}

// ReactiveOpen counts reactive tickets still open at the end of the
// recording (opened, never resolved or cancelled).
func (s *Summary) ReactiveOpen() int {
	n := 0
	//lint:allow mapiter pure counting of open tickets; the total is order-independent
	for _, ot := range s.open {
		if ot.reactive {
			n++
		}
	}
	return n
}

// StateKVs returns the state frame key/values recorded for one shard, in
// written order (nil if the shard recorded none).
func (s *Summary) StateKVs(shard int) []KV { return s.stateByID[shard] }

// StateKV looks up one state key on one shard.
func (s *Summary) StateKV(shard int, key string) (KV, bool) {
	for _, kv := range s.stateByID[shard] {
		if kv.Key == key {
			return kv, true
		}
	}
	return KV{}, false
}

// StateShards returns the shards that recorded state frames, in first-
// written order.
func (s *Summary) StateShards() []int { return s.stateOrder }

// Render produces the canonical report text: the sorted metadata header
// followed by the fingerprinted body. Every line derives from accumulated
// frames through deterministic iteration (sorted keys, sorted windows), so
// live and replayed summaries render identically when the codec is
// lossless.
func (s *Summary) Render() string {
	if s.render != "" {
		return s.render
	}
	var b strings.Builder
	b.WriteString("flight summary\n")
	for _, k := range detsort.Keys(s.meta) {
		fmt.Fprintf(&b, "meta %s=%s\n", k, s.meta[k])
	}
	b.WriteString(s.body())
	s.render = b.String()
	return s.render
}

// body is the fingerprinted portion of the render: everything derived from
// the frame stream, excluding the metadata header. Metadata labels a run
// (seed, worker count, tool); two captures of the same deterministic stream
// under different labels must still fingerprint identically, mirroring
// Diff, which reports metadata differences but never calls them divergence.
func (s *Summary) body() string {
	if s.renderBody != "" {
		return s.renderBody
	}
	var b strings.Builder
	fmt.Fprintf(&b, "frames=%d events=%d snapshots=%d states=%d epochs=%d\n",
		s.frames, s.events, s.snapshots, s.stateFrames, s.epochs)
	if s.epochs > 0 {
		fmt.Fprintf(&b, "last-epoch %d @%d\n", s.lastEpoch, int64(s.lastEpochAt))
	}
	for _, t := range detsort.Keys(s.topics) {
		fmt.Fprintf(&b, "topic %s=%d\n", t, s.topics[t])
	}
	fmt.Fprintf(&b, "tickets opened=%d reactive=%d resolved=%d cancelled=%d deduped=%d open=%d reactive-open=%d\n",
		s.allOpened, s.reactOpened, s.reactResolved, s.reactCancelled, s.deduped,
		len(s.open), s.ReactiveOpen())
	s.sortWins()
	if len(s.wins) > 0 {
		var h metrics.Histogram
		for _, w := range s.wins {
			h.Add(w.hours)
		}
		fmt.Fprintf(&b, "windows n=%d mean=%s p50=%s p95=%s max=%s\n",
			h.N(), fmtFloat(h.Mean()), fmtFloat(h.Quantile(0.5)),
			fmtFloat(h.Quantile(0.95)), fmtFloat(h.Max()))
	}
	fmt.Fprintf(&b, "work alerts=%d requests=%d robot=%d human=%d outcomes=%d fixed=%d watchdog=%d degraded=%d journal=%d\n",
		s.alerts, s.requests, s.robot, s.human, s.outcomes, s.fixed,
		s.watchdog, s.degradedCnt, s.journal)
	if s.fleetSummaries+s.fleetTickets+s.fleetTransfers > 0 {
		fmt.Fprintf(&b, "fleet summaries=%d tickets=%d transfers=%d\n",
			s.fleetSummaries, s.fleetTickets, s.fleetTransfers)
	}
	if s.generic > 0 {
		fmt.Fprintf(&b, "generic=%d\n", s.generic)
	}
	for _, sh := range detsort.Keys(s.lastSnap) {
		sn := s.lastSnap[sh]
		fmt.Fprintf(&b, "snap shard=%d @%d avail=%s down=%d open=%d fired=%d\n",
			sh, int64(sn.at), fmtFloat(sn.s.Avail), sn.s.LinksDown, sn.s.OpenTix, sn.s.Fired)
	}
	for _, sh := range s.stateOrder {
		fmt.Fprintf(&b, "state shard=%d", sh)
		for _, kv := range s.stateByID[sh] {
			b.WriteByte(' ')
			b.WriteString(kv.String())
		}
		b.WriteByte('\n')
	}
	s.renderBody = b.String()
	return s.renderBody
}

// Fingerprint hashes the canonical render body — the byte-identity token
// the replay gate compares against the trailer. The metadata header is
// excluded: the fingerprint identifies the recorded stream, not its label.
func (s *Summary) Fingerprint() uint64 {
	h := fnv.New64a()
	h.Write([]byte(s.body()))
	return h.Sum64()
}
