package flightrec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/sim"
)

// maxFrameLen bounds a single frame so a corrupt length prefix cannot ask
// for gigabytes. Real frames are tens of bytes; trailers a few kilobytes.
const maxFrameLen = 16 << 20

// Reader decodes one flight recording sequentially. It mirrors the
// Recorder's delta and interning state, growing its per-shard tables on
// demand (the shard count is implied by the frames, not the header, so old
// readers need no header change when shard counts grow).
type Reader struct {
	br   *bufio.Reader
	strs []string
	meta map[string]string

	prevAt      []sim.Time
	prevSeq     []uint64
	prevEpochAt sim.Time
	index       uint64
}

// NewReader opens a recording: it validates the magic and version and
// reads the metadata block.
func NewReader(rd io.Reader) (*Reader, error) {
	r := &Reader{br: bufio.NewReaderSize(rd, 1<<16)}
	var m [4]byte
	if _, err := io.ReadFull(r.br, m[:]); err != nil {
		return nil, fmt.Errorf("flightrec: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("flightrec: not a flight recording (magic %q)", m[:])
	}
	ver, err := r.br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("flightrec: reading version: %w", err)
	}
	if ver == 0 || ver > version {
		return nil, fmt.Errorf("flightrec: unsupported container version %d (reader speaks <= %d)", ver, version)
	}
	n, err := binary.ReadUvarint(r.br)
	if err != nil {
		return nil, fmt.Errorf("flightrec: reading metadata count: %w", err)
	}
	r.meta = make(map[string]string, n)
	for i := uint64(0); i < n; i++ {
		k, err := r.readRaw()
		if err != nil {
			return nil, fmt.Errorf("flightrec: reading metadata key: %w", err)
		}
		v, err := r.readRaw()
		if err != nil {
			return nil, fmt.Errorf("flightrec: reading metadata value: %w", err)
		}
		r.meta[k] = v
	}
	return r, nil
}

// Meta returns the run metadata from the header.
func (r *Reader) Meta() map[string]string { return r.meta }

func (r *Reader) readRaw() (string, error) {
	n, err := binary.ReadUvarint(r.br)
	if err != nil {
		return "", err
	}
	if n > maxFrameLen {
		return "", fmt.Errorf("string length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// Next returns the next frame. A clean end of stream returns io.EOF; a
// stream cut mid-frame returns a truncation error.
func (r *Reader) Next() (Frame, error) {
	n, err := binary.ReadUvarint(r.br)
	if err == io.EOF {
		return Frame{}, io.EOF
	}
	if err != nil {
		return Frame{}, fmt.Errorf("flightrec: reading frame length: %w", err)
	}
	if n == 0 || n > maxFrameLen {
		return Frame{}, fmt.Errorf("flightrec: frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r.br, body); err != nil {
		return Frame{}, fmt.Errorf("flightrec: truncated frame (%d bytes wanted): %w", n, err)
	}
	d := &dec{b: body, strs: &r.strs}
	f := r.decodeBody(d)
	if d.err != nil {
		return Frame{}, d.err
	}
	f.Index = r.index
	r.index++
	return f, nil
}

func (r *Reader) grow(shard int) {
	for len(r.prevAt) <= shard {
		r.prevAt = append(r.prevAt, 0)
		r.prevSeq = append(r.prevSeq, 0)
	}
}

func (r *Reader) decodeBody(d *dec) Frame {
	if len(d.b) == 0 {
		d.fail("empty frame body")
		return Frame{}
	}
	kind := Kind(d.b[0])
	d.pos = 1
	switch kind {
	case KindEvent:
		shard := int(d.u())
		r.grow(shard)
		topic := d.s()
		at := r.prevAt[shard] + sim.Time(d.u())
		seq := r.prevSeq[shard] + d.u()
		name := d.s()
		fs := d.fields()
		if d.err != nil {
			return Frame{}
		}
		r.prevAt[shard] = at
		r.prevSeq[shard] = seq
		return Frame{Kind: kind, Shard: shard, Topic: topic, At: at, Seq: seq,
			Payload: decodePayload(name, fs)}
	case KindSnapshot:
		shard := int(d.u())
		r.grow(shard)
		at := r.prevAt[shard] + sim.Time(d.u())
		fs := d.fields()
		if d.err != nil {
			return Frame{}
		}
		r.prevAt[shard] = at
		return Frame{Kind: kind, Shard: shard, At: at, Snap: Snap{
			Avail: fs.f(1), LinksDown: int(fs.i(2)), OpenTix: int(fs.i(3)), Fired: fs.u(4)}}
	case KindState:
		shard := int(d.u())
		n := d.u()
		if d.err != nil || n > maxFrameLen {
			d.fail("state frame with %d entries", n)
			return Frame{}
		}
		kvs := make([]KV, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			kv := KV{Key: d.s(), kind: kvKind(d.u())}
			switch kv.kind {
			case kvInt:
				kv.i = d.i()
			case kvFloat:
				kv.f = d.f()
			case kvStr:
				kv.s = d.s()
			default:
				d.fail("unknown state value kind %d", kv.kind)
			}
			kvs = append(kvs, kv)
		}
		if d.err != nil {
			return Frame{}
		}
		return Frame{Kind: kind, Shard: shard, State: kvs}
	case KindEpoch:
		epoch := d.u()
		at := r.prevEpochAt + sim.Time(d.u())
		if d.err != nil {
			return Frame{}
		}
		r.prevEpochAt = at
		return Frame{Kind: kind, Epoch: epoch, At: at}
	case KindTrailer:
		frames := d.u()
		fp := uint64(0)
		if d.err == nil {
			if d.pos+8 > len(d.b) {
				d.fail("truncated trailer fingerprint")
			} else {
				fp = binary.LittleEndian.Uint64(d.b[d.pos:])
				d.pos += 8
			}
		}
		render := d.raw()
		if d.err != nil {
			return Frame{}
		}
		return Frame{Kind: kind, Frames: frames, Fingerprint: fp, Render: render}
	default:
		// A frame kind this reader predates: keep the body so diffs can
		// still compare streams, and keep going.
		return Frame{Kind: kind, Raw: append([]byte(nil), d.b[1:]...)}
	}
}

// Result is a replayed recording: its metadata, the summary re-derived
// from the decoded frames, and the trailer the live run wrote.
type Result struct {
	Meta    map[string]string
	Summary *Summary
	Trailer *Frame // nil when the stream ended without one (interrupted run)
	Frames  uint64 // decoded frames, trailer excluded
}

// Match reports whether the replayed fingerprint equals the live one — the
// lossless-round-trip check.
func (res *Result) Match() bool {
	return res.Trailer != nil && res.Summary.Fingerprint() == res.Trailer.Fingerprint
}

// Replay decodes an entire recording into a fresh Summary without any
// simulation. Every frame flows through the same accumulator the live
// Recorder used, so Match proves the on-disk form carries everything the
// report derivation consumes.
func Replay(rd io.Reader) (*Result, error) {
	rr, err := NewReader(rd)
	if err != nil {
		return nil, err
	}
	res := &Result{Meta: rr.Meta(), Summary: newSummary(rr.Meta())}
	for {
		f, err := rr.Next()
		if err == io.EOF {
			return res, nil
		}
		if err != nil {
			return nil, err
		}
		if f.Kind == KindTrailer {
			t := f
			res.Trailer = &t
			continue
		}
		res.Summary.Add(f)
		res.Frames++
	}
}
