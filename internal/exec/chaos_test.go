package exec

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/topology"
)

type fakeActor struct{}

func (fakeActor) Name() string    { return "fake-unit" }
func (fakeActor) Available() bool { return true }

// fakeExec completes every task after a fixed duration.
type fakeExec struct {
	eng   *sim.Engine
	dur   sim.Time
	calls int
}

func (f *fakeExec) CanPerform(faults.Action) bool { return true }
func (f *fakeExec) Claim(topology.Location) Actor { return fakeActor{} }
func (f *fakeExec) Execute(a Actor, t Task, done func(Outcome)) {
	f.calls++
	start := f.eng.Now()
	f.eng.After(f.dur, "fake-work", func() {
		done(Outcome{Actor: a.Name(), Task: t, Started: start, Finished: f.eng.Now(),
			Completed: true, Fixed: true})
	})
}

// TestWithChaosInactiveReturnsInner pins the chaos-off contract: a disabled
// layer must be byte-for-byte absent, which starts with the wrapper never
// being interposed at all.
func TestWithChaosInactiveReturnsInner(t *testing.T) {
	eng := sim.NewEngine(1)
	inner := &fakeExec{eng: eng, dur: sim.Minute}
	if got := WithChaos(inner, eng, faults.ExecChaos{}); got != Executor(inner) {
		t.Fatal("zero-value chaos config interposed a wrapper")
	}
	if faults.ScaledExecChaos(0).Active() {
		t.Fatal("ScaledExecChaos(0) reports active")
	}
	if got := WithChaos(inner, eng, faults.ScaledExecChaos(0.5)); got == Executor(inner) {
		t.Fatal("active chaos config did not wrap")
	}
}

// TestChaosInjectionModes drives each injection mode at probability one and
// asserts exactly what reaches the inner executor and the done callback.
func TestChaosInjectionModes(t *testing.T) {
	task := Task{Action: faults.Reseat}
	cases := []struct {
		name      string
		cfg       faults.ExecChaos
		wantInner int  // Execute calls reaching the real backend
		wantDone  bool // an Outcome is eventually delivered
		check     func(t *testing.T, out Outcome, stats ChaosStats)
	}{
		{
			name: "stall delivers nothing",
			cfg:  faults.ExecChaos{StallProb: 1},
			check: func(t *testing.T, _ Outcome, s ChaosStats) {
				if s.Stalls != 1 {
					t.Fatalf("stats: %+v", s)
				}
			},
		},
		{
			name:      "lost outcome performs work silently",
			cfg:       faults.ExecChaos{LostProb: 1},
			wantInner: 1,
			check: func(t *testing.T, _ Outcome, s ChaosStats) {
				if s.LostOutcomes != 1 {
					t.Fatalf("stats: %+v", s)
				}
			},
		},
		{
			name:      "slow completion stretches the report",
			cfg:       faults.ExecChaos{SlowProb: 1, SlowFactor: 3},
			wantInner: 1,
			wantDone:  true,
			check: func(t *testing.T, out Outcome, s ChaosStats) {
				if s.SlowCompletions != 1 {
					t.Fatalf("stats: %+v", s)
				}
				if got := out.Finished - out.Started; got != 3*10*sim.Minute {
					t.Fatalf("reported duration %v, want 3x nominal", got)
				}
				if !out.Completed || !out.Fixed {
					t.Fatalf("slow completion mangled the outcome: %+v", out)
				}
			},
		},
		{
			name:     "spurious needs-human touches nothing",
			cfg:      faults.ExecChaos{SpuriousNeedsHumanProb: 1},
			wantDone: true,
			check: func(t *testing.T, out Outcome, s ChaosStats) {
				if s.SpuriousHuman != 1 {
					t.Fatalf("stats: %+v", s)
				}
				if !out.NeedsHuman || out.Completed || out.Fixed {
					t.Fatalf("outcome: %+v", out)
				}
			},
		},
		{
			name:     "spurious stockout touches nothing",
			cfg:      faults.ExecChaos{SpuriousStockoutProb: 1},
			wantDone: true,
			check: func(t *testing.T, out Outcome, s ChaosStats) {
				if s.SpuriousStockout != 1 {
					t.Fatalf("stats: %+v", s)
				}
				if !out.Stockout || out.Completed || out.Fixed {
					t.Fatalf("outcome: %+v", out)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := sim.NewEngine(7)
			inner := &fakeExec{eng: eng, dur: 10 * sim.Minute}
			x := WithChaos(inner, eng, tc.cfg).(*ChaosExecutor)
			var out Outcome
			dones := 0
			x.Execute(x.Claim(topology.Location{}), task, func(o Outcome) {
				out = o
				dones++
			})
			eng.RunUntil(sim.Day)
			if inner.calls != tc.wantInner {
				t.Fatalf("inner executed %d time(s), want %d", inner.calls, tc.wantInner)
			}
			wantDones := 0
			if tc.wantDone {
				wantDones = 1
			}
			if dones != wantDones {
				t.Fatalf("done called %d time(s), want %d", dones, wantDones)
			}
			s := x.Stats()
			if s.Dispatches != 1 || s.Injected() != 1 {
				t.Fatalf("stats: %+v", s)
			}
			tc.check(t, out, s)
		})
	}
}
