// Package exec defines the Act stage's executor contracts: the common
// interface through which the maintenance pipeline dispatches physical work
// without knowing whether a robot fleet or a human crew performs it. Both
// internal/robot and internal/workforce provide adapters satisfying
// Executor, so the control plane in internal/core depends only on this
// package — the decoupling the paper's §4 "software-defined maintenance"
// agenda asks for, and the seam a follow-up PR uses to add new backends
// (contractor pools, per-pod fleets) without touching dispatch code.
package exec

import (
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Task is one physical repair assignment.
type Task struct {
	Link   *topology.Link
	End    faults.End
	Action faults.Action
}

// Port returns the port the task works at.
func (t Task) Port() *topology.Port { return t.End.Port(t.Link) }

// Outcome reports what an executor accomplished, normalized across
// backends.
type Outcome struct {
	// Actor names who performed the work (unit or technician name).
	Actor    string
	Task     Task
	Started  sim.Time
	Finished sim.Time
	// Completed reports the action was physically performed; Fixed that the
	// repair verified successful.
	Completed bool
	Fixed     bool
	// NeedsHuman is set when a robotic executor gives up and requests human
	// support (perception failure, verification failure, mechanical abort).
	NeedsHuman bool
	// Stockout is set when the task needs a spare the inventory cannot
	// supply right now.
	Stockout bool
	// Touched counts cascade effects on neighbouring cables during the work.
	Touched int
	Note    string
}

// Actor is one worker — a robotic unit or a technician.
type Actor interface {
	Name() string
	// Available reports whether the actor can take a task right now. The
	// dispatcher re-checks it at work start: an actor claimed before a
	// drain-settle delay may have been taken by other work in between.
	Available() bool
}

// Executor dispatches physical work.
type Executor interface {
	// CanPerform reports whether this executor can run the action at all
	// (robots cannot lay fiber or replace switch hardware).
	CanPerform(a faults.Action) bool
	// Claim returns an available actor able to work at the location, or nil.
	// Claiming does not reserve: the actor stays available until Execute.
	Claim(loc topology.Location) Actor
	// Execute runs the task on a previously claimed actor asynchronously;
	// done receives the outcome. The actor must be Available and must have
	// come from this executor's Claim.
	Execute(a Actor, t Task, done func(Outcome))
}

// The optional capability interfaces below let an executor expose
// scheduling constraints without widening Executor itself. The dispatcher
// discovers them with type assertions and falls back to permissive
// defaults (always on shift, no row occupancy, no operators) when absent.

// DurationEstimator is an executor that can bound how long a dispatched
// task nominally takes. The Act stage multiplies the estimate by a safety
// factor to arm a watchdog over the attempt; executors without an estimate
// fall back to the dispatcher's configured floor. Estimates must be
// deterministic (no sampling): they feed sim-time deadlines, and a noisy
// estimate would perturb runs that never time out.
type DurationEstimator interface {
	// EstimateDuration returns the nominal (mean-scale) duration of running
	// t on a, including dispatch/travel overheads, or 0 when unknown.
	EstimateDuration(a Actor, t Task) sim.Time
}

// Shifted is an executor whose workers keep shift hours.
type Shifted interface {
	// OnShift reports whether the instant falls inside working hours.
	OnShift(at sim.Time) bool
}

// RowOccupancy is an executor that can report how many of its workers are
// hands-on in a datacenter row — the input to the human-robot safety
// interlock (§3.4).
type RowOccupancy interface {
	BusyInRow(row int) int
}

// Operator is a worker reserved to operate another executor's machinery —
// the Level-1 technician driving a robotic unit (§2.1).
type Operator interface {
	// ArrivalDelay samples how long until the operator is hands-on for a
	// dispatch at the given instant.
	ArrivalDelay(at sim.Time) sim.Time
	// Release returns the operator to their pool.
	Release()
}

// OperatorSource is an executor that can lend out operators.
type OperatorSource interface {
	// ClaimOperator reserves an operator, reporting false when none is free.
	ClaimOperator() (Operator, bool)
}
