package exec

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/topology"
)

// ChaosStats counts injections performed by a ChaosExecutor.
type ChaosStats struct {
	Dispatches       int // Execute calls seen (injected or not)
	Stalls           int // no Outcome ever delivered
	LostOutcomes     int // work performed, report dropped
	SlowCompletions  int // work performed, report delayed
	SpuriousHuman    int // fabricated NeedsHuman, no work performed
	SpuriousStockout int // fabricated Stockout, no work performed
}

// Injected returns the total number of faulted dispatches.
func (s ChaosStats) Injected() int {
	return s.Stalls + s.LostOutcomes + s.SlowCompletions + s.SpuriousHuman + s.SpuriousStockout
}

// ChaosExecutor wraps an Executor and injects actuator-plane faults per
// faults.ExecChaos: stalls (no outcome), lost outcomes (work done, report
// dropped), slow completions (report delayed past the nominal duration),
// and spurious NeedsHuman/Stockout give-ups. All draws come from the
// engine's seeded "execchaos" RNG stream, so a fixed seed replays the same
// injections; the wrapper is intended for robotic backends and does not
// forward the optional capability interfaces (Shifted, RowOccupancy,
// OperatorSource) of a wrapped human crew.
type ChaosExecutor struct {
	inner Executor
	eng   *sim.Engine
	cfg   faults.ExecChaos
	stats ChaosStats
}

// WithChaos wraps inner with chaos injection. An inactive config returns
// inner unchanged, so a disabled chaos layer is byte-for-byte absent.
func WithChaos(inner Executor, eng *sim.Engine, cfg faults.ExecChaos) Executor {
	if !cfg.Active() {
		return inner
	}
	return &ChaosExecutor{inner: inner, eng: eng, cfg: cfg}
}

// Stats returns a copy of the injection counters.
func (x *ChaosExecutor) Stats() ChaosStats { return x.stats }

// CanPerform implements Executor.
func (x *ChaosExecutor) CanPerform(a faults.Action) bool { return x.inner.CanPerform(a) }

// Claim implements Executor.
func (x *ChaosExecutor) Claim(loc topology.Location) Actor { return x.inner.Claim(loc) }

// EstimateDuration forwards to the inner executor's estimator so the Act
// stage's watchdog sees nominal (chaos-free) durations; it returns 0 when
// the inner executor has none.
func (x *ChaosExecutor) EstimateDuration(a Actor, t Task) sim.Time {
	if est, ok := x.inner.(DurationEstimator); ok {
		return est.EstimateDuration(a, t)
	}
	return 0
}

// Execute implements Executor, rolling one injection decision per dispatch.
// The decision consumes exactly one uniform draw (plus one for the spurious
// report latency), in a fixed order, keeping chaos runs deterministic and
// statistically decoupled from every other stream.
func (x *ChaosExecutor) Execute(a Actor, t Task, done func(Outcome)) {
	x.stats.Dispatches++
	rng := x.eng.RNG("execchaos")
	u := rng.Float64()

	if u < x.cfg.StallProb {
		// The actuator wedges before doing anything: no work, no report.
		x.stats.Stalls++
		return
	}
	u -= x.cfg.StallProb

	if u < x.cfg.LostProb {
		// Work is performed normally; the completion report is dropped.
		x.stats.LostOutcomes++
		x.inner.Execute(a, t, func(Outcome) {})
		return
	}
	u -= x.cfg.LostProb

	if u < x.cfg.SlowProb {
		// Work is performed normally; the report is held back until
		// SlowFactor× the attempt's actual duration has elapsed.
		x.stats.SlowCompletions++
		x.inner.Execute(a, t, func(out Outcome) {
			extra := sim.Time(float64(out.Finished-out.Started) * (x.cfg.SlowFactor - 1))
			if extra <= 0 {
				done(out)
				return
			}
			x.eng.After(extra, "chaos-slow-report", func() {
				out.Finished += extra
				done(out)
			})
		})
		return
	}
	u -= x.cfg.SlowProb

	if u < x.cfg.SpuriousNeedsHumanProb {
		x.stats.SpuriousHuman++
		x.spurious(a, t, done, func(out *Outcome) {
			out.NeedsHuman = true
			out.Note = "chaos: spurious human-support request"
		})
		return
	}
	u -= x.cfg.SpuriousNeedsHumanProb

	if u < x.cfg.SpuriousStockoutProb {
		x.stats.SpuriousStockout++
		x.spurious(a, t, done, func(out *Outcome) {
			out.Stockout = true
			out.Note = "chaos: spurious stockout report"
		})
		return
	}

	x.inner.Execute(a, t, done)
}

// spurious fabricates a failed outcome without touching hardware,
// delivered after a short deterministic give-up latency.
func (x *ChaosExecutor) spurious(a Actor, t Task, done func(Outcome), mut func(*Outcome)) {
	delay := sim.Time((30 + 90*x.eng.RNG("execchaos").Float64()) * float64(sim.Second))
	started := x.eng.Now()
	x.eng.After(delay, "chaos-spurious-report", func() {
		out := Outcome{Actor: a.Name(), Task: t, Started: started, Finished: x.eng.Now()}
		mut(&out)
		done(out)
	})
}

// String identifies the wrapper in logs.
func (x *ChaosExecutor) String() string {
	return fmt.Sprintf("chaos(%+v)", x.cfg)
}
