package faults

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topology"
)

// BeginRepair marks the link as physically under maintenance: it is forced
// observably down (unplugging a transceiver takes the link down regardless
// of why it was being serviced) and flapping is suspended. Call
// FinishRepair when the physical action completes.
func (inj *Injector) BeginRepair(l *topology.Link) {
	inj.setInRepair(l, true)
}

// AbortRepair releases the link without applying any action (robot failure,
// human abort). The underlying fault state is unchanged.
func (inj *Injector) AbortRepair(l *topology.Link) {
	inj.setInRepair(l, false)
}

// FinishRepair adjudicates a completed physical action against the hidden
// ground truth and releases the link. The caller (robot or technician
// model) is responsible for having spent the appropriate virtual time
// between BeginRepair and FinishRepair.
func (inj *Injector) FinishRepair(l *topology.Link, action Action, end End) RepairResult {
	st := &inj.states[l.ID]
	inj.stats.RepairsAttempted++
	res := RepairResult{Action: action, End: end}

	inj.applyPhysicalSideEffects(l, action, end)

	switch {
	case st.Cause == None:
		// Proactive or false-positive repair: nothing to fix, but the
		// action refreshes the wear clocks of whatever it renewed.
		res.Fixed = true
		res.Note = "no fault present"
		inj.refreshClocks(l, action, end)
		inj.stats.ProactiveRefreshes++

	case action == Reseat && st.Cause == Contamination:
		// The paper's repeat-ticket mechanism: a reseat can mask dirt.
		if endLocalMatches(st, action, end) && inj.rng("repair").Bernoulli(inj.cfg.ReseatMaskProb) {
			res.Fixed = true
			res.Masked = true
			res.Cleared = Contamination
			st.Masked = true
			inj.scheduleMaskedRecurrence(l)
		} else {
			res.Note = "contamination persists"
		}

	default:
		p := inj.cfg.FixProb[action][st.Cause]
		if p > 0 && !endLocalMatches(st, action, end) {
			p = 0
			res.Note = "wrong end"
		}
		if p > 0 && inj.rng("repair").Bernoulli(p) {
			res.Fixed = true
			res.Cleared = st.Cause
			inj.clearCause(l, action, end)
		} else if res.Note == "" {
			res.Note = fmt.Sprintf("%s does not address %s", action, st.Cause)
		}
	}

	if res.Fixed && !res.Masked {
		inj.setHealth(l, Healthy)
		inj.stats.RepairsSucceeded++
	} else if res.Masked {
		inj.setHealth(l, Healthy) // symptom suppressed for now
		inj.stats.RepairsSucceeded++
	}
	inj.setInRepair(l, false)
	return res
}

// endLocalMatches reports whether the action was applied to the end that
// carries the cause, for end-local causes. Cable and switch-port work is
// judged by its own rules: cable replacement is end-agnostic, switch-port
// replacement must target the switch end carrying the fault.
func endLocalMatches(st *LinkState, action Action, end End) bool {
	switch action {
	case ReplaceCable:
		return true
	default:
		return end == st.CauseEnd
	}
}

// clearCause removes the active cause and performs the hardware renewal the
// action implies (new transceiver, new cable), resetting onset clocks.
func (inj *Injector) clearCause(l *topology.Link, action Action, end End) {
	st := &inj.states[l.ID]
	st.Cause = None
	st.Masked = false
	inj.recurEvents[l.ID].Cancel()
	inj.recurEvents[l.ID] = sim.Handle{}
	switch action {
	case Clean:
		inj.cleanEnd(st, end)
	case ReplaceXcvr:
		end.Port(l).Xcvr = topology.NewTransceiver(end.Port(l).Xcvr.Model)
		st.Ends[end].Dirt = 0
	case ReplaceCable:
		*l.Cable = topology.Cable{
			Class:   l.Cable.Class,
			Cores:   l.Cable.Cores,
			APC:     l.Cable.APC,
			LengthM: l.Cable.LengthM,
			// Tray path is unchanged: the new cable follows the old run.
			TraySegments: l.Cable.TraySegments,
		}
		st.Ends[EndA].Dirt = 0
		st.Ends[EndB].Dirt = 0
	}
	inj.refreshClocks(l, action, end)
}

// cleanEnd zeroes dirt at the chosen end, with a small chance of leaving
// residue (imperfect cleaning / recontamination at reassembly).
func (inj *Injector) cleanEnd(st *LinkState, end End) {
	if inj.rng("repair").Bernoulli(inj.cfg.CleanRecontaminate) {
		st.Ends[end].Dirt = 0.2
	} else {
		st.Ends[end].Dirt = 0
	}
}

// refreshClocks re-samples the onset clocks for the causes whose underlying
// wear the action renewed — the mechanism that makes proactive maintenance
// reduce future failures (§4 "Predictive maintenance").
func (inj *Injector) refreshClocks(l *topology.Link, action Action, end End) {
	var renewed []Cause
	switch action {
	case Reseat:
		renewed = []Cause{Oxidation, FirmwareHang}
	case Clean:
		renewed = []Cause{Contamination, Oxidation, FirmwareHang}
		inj.cleanEnd(&inj.states[l.ID], end)
	case ReplaceXcvr:
		renewed = []Cause{Oxidation, FirmwareHang, XcvrDead}
	case ReplaceCable:
		renewed = []Cause{Contamination, CableDamaged}
	case ReplaceSwitchPort:
		renewed = []Cause{SwitchPort}
	}
	for _, c := range renewed {
		if ev, ok := inj.onsetEvents[l.ID][c]; ok {
			ev.Cancel()
			delete(inj.onsetEvents[l.ID], c)
		}
		if c.applies(inj.info[l.ID]) && inj.cfg.AnnualRate[c] > 0 {
			inj.scheduleOnset(l, c)
		}
	}
}

// scheduleMaskedRecurrence queues the reappearance of a masked
// contamination fault.
func (inj *Injector) scheduleMaskedRecurrence(l *topology.Link) {
	hours := inj.cfg.MaskedRecurrence.Sample(inj.rng("repair"))
	at := inj.eng.Now() + sim.Time(hours*float64(sim.Hour))
	inj.recurEvents[l.ID] = inj.eng.Schedule(at, "masked-recurrence", func() {
		inj.recurEvents[l.ID] = sim.Handle{}
		st := &inj.states[l.ID]
		if st.Cause != Contamination || !st.Masked || st.InRepair {
			return
		}
		st.Masked = false
		inj.stats.MaskedRecurrences++
		if inj.rng("manifest").Bernoulli(inj.cfg.DownManifest[Contamination]) {
			inj.setHealth(l, Down)
		} else {
			inj.setHealth(l, Flapping)
			inj.scheduleFlap(l)
		}
	})
}

// applyPhysicalSideEffects models collateral dirt transfer: unplugging and
// replugging separable fiber can introduce contamination if done without a
// cleaning step (why assembly-time cleaning is specified, §3.2).
func (inj *Injector) applyPhysicalSideEffects(l *topology.Link, action Action, end End) {
	if action != Reseat || !l.HasSeparableFiber() {
		return
	}
	st := &inj.states[l.ID]
	if st.Ends[end].Dirt == 0 && inj.rng("repair").Bernoulli(0.02) {
		st.Ends[end].Dirt = 0.3
	}
}

// InduceFault forces cause c to manifest on l immediately (test and
// scenario hook). It panics if the link already has an active cause.
func (inj *Injector) InduceFault(l *topology.Link, c Cause) {
	st := &inj.states[l.ID]
	if st.Cause != None {
		panic(fmt.Sprintf("faults: induce %v on %s: already has %v", c, l.Name(), st.Cause))
	}
	if ev, ok := inj.onsetEvents[l.ID][c]; ok {
		ev.Cancel()
		delete(inj.onsetEvents[l.ID], c)
	}
	inj.beginFault(l, c)
}

// ClearFault forcibly removes any active cause and restores the link to
// healthy, resetting the cleared cause's onset clock. It is a scenario and
// benchmark hook — production flows go through BeginRepair/FinishRepair.
func (inj *Injector) ClearFault(l *topology.Link) {
	st := &inj.states[l.ID]
	if st.InRepair {
		inj.setInRepair(l, false)
	}
	if st.Cause == None {
		if st.Health != Healthy {
			inj.setHealth(l, Healthy)
		}
		return
	}
	cleared := st.Cause
	st.Cause = None
	st.Masked = false
	st.Ends[EndA].Dirt = 0
	st.Ends[EndB].Dirt = 0
	inj.recurEvents[l.ID].Cancel()
	inj.recurEvents[l.ID] = sim.Handle{}
	if ev, ok := inj.onsetEvents[l.ID][cleared]; ok {
		ev.Cancel()
		delete(inj.onsetEvents[l.ID], cleared)
	}
	if cleared.applies(inj.info[l.ID]) && inj.cfg.AnnualRate[cleared] > 0 {
		inj.scheduleOnset(l, cleared)
	}
	inj.setHealth(l, Healthy)
}
