package faults

import (
	"math"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Stats counts ground-truth events for experiment reporting.
type Stats struct {
	Onsets             map[Cause]int
	Flaps              int
	CascadeTransients  int
	CascadePermanents  int
	MaskedRecurrences  int
	PrecursorFlaps     int
	RepairsAttempted   int
	RepairsSucceeded   int
	ProactiveRefreshes int
}

// Injector owns link ground truth: it schedules fault onsets, drives flap
// episodes on gray links, applies the touch-cascade model, and adjudicates
// repair attempts. All methods must be called from inside the engine's
// event loop (the simulation is single-threaded).
type Injector struct {
	eng *sim.Engine
	net *topology.Network
	cfg Config

	states []LinkState
	info   []link

	onsetEvents []map[Cause]sim.Handle // pending onset per (link, cause)
	flapEvents  []sim.Handle           // pending flap episode per link
	recurEvents []sim.Handle           // pending masked recurrence per link

	listeners []Listener
	stats     Stats
}

// NewInjector creates the injector and schedules the initial fault onset
// for every applicable (link, cause) pair.
func NewInjector(eng *sim.Engine, net *topology.Network, cfg Config) *Injector {
	inj := &Injector{
		eng:         eng,
		net:         net,
		cfg:         cfg,
		states:      make([]LinkState, len(net.Links)),
		info:        make([]link, len(net.Links)),
		onsetEvents: make([]map[Cause]sim.Handle, len(net.Links)),
		flapEvents:  make([]sim.Handle, len(net.Links)),
		recurEvents: make([]sim.Handle, len(net.Links)),
	}
	inj.stats.Onsets = make(map[Cause]int)
	for i, l := range net.Links {
		inj.info[i] = link{
			needsXcvr: l.Cable.Class.NeedsTransceiver(),
			separable: l.Cable.Class.Separable(),
			switchEnd: l.A.Device.Kind.IsSwitch() || l.B.Device.Kind.IsSwitch(),
		}
		inj.onsetEvents[i] = make(map[Cause]sim.Handle)
		for _, c := range AllCauses {
			if c.applies(inj.info[i]) && cfg.AnnualRate[c] > 0 {
				inj.scheduleOnset(l, c)
			}
		}
	}
	return inj
}

// Subscribe adds a ground-truth listener.
func (inj *Injector) Subscribe(ls Listener) { inj.listeners = append(inj.listeners, ls) }

// State returns a copy of the link's full state. Ground truth fields
// (Cause, Masked, Ends) are for the repair model and experiment scoring
// only; production-side code must restrict itself to Observable().
func (inj *Injector) State(id topology.LinkID) LinkState { return inj.states[id] }

// Observable returns the health monitoring can see for the link.
func (inj *Injector) Observable(id topology.LinkID) Health {
	return inj.states[id].Observable()
}

// Stats returns a copy of the event counters.
func (inj *Injector) Stats() Stats {
	s := inj.stats
	s.Onsets = make(map[Cause]int, len(inj.stats.Onsets))
	for k, v := range inj.stats.Onsets {
		s.Onsets[k] = v
	}
	return s
}

// Config returns the active configuration.
func (inj *Injector) Config() Config { return inj.cfg }

// --- onset machinery -----------------------------------------------------

// scheduleOnset samples a fresh lifetime for (l, c) and queues the onset.
func (inj *Injector) scheduleOnset(l *topology.Link, c Cause) {
	rate := inj.cfg.AnnualRate[c]
	shape := inj.cfg.Shape[c]
	if shape <= 0 {
		shape = 1
	}
	meanYears := 1 / rate
	scale := meanYears / math.Gamma(1+1/shape)
	years := inj.rng("onset").Weibull(shape, scale)
	// Cap lifetimes far beyond any experiment horizon; uncapped draws from
	// heavy-tailed lifetime distributions can overflow virtual time.
	const maxYears = 200
	if years > maxYears {
		years = maxYears
	}
	at := inj.eng.Now() + sim.Time(years*float64(sim.Year))
	ev := inj.eng.Schedule(at, "fault-onset", func() {
		inj.onset(l, c)
	})
	inj.onsetEvents[l.ID][c] = ev
	inj.schedulePrecursor(l, c, ev, at)
}

// schedulePrecursor queues the incubation phase of a gradual fault: sparse
// sub-clinical flap episodes in the days before the onset manifests. The
// chain validates that the onset it belongs to is still pending, so repairs
// that renew the wear clock silence the precursors too.
func (inj *Injector) schedulePrecursor(l *topology.Link, c Cause, onsetEv sim.Handle, onsetAt sim.Time) {
	if c != Contamination && c != Oxidation {
		return
	}
	if inj.cfg.PrecursorIncubation == nil || inj.cfg.PrecursorGapH <= 0 {
		return
	}
	days := inj.cfg.PrecursorIncubation.Sample(inj.rng("precursor"))
	incub := sim.Time(days * float64(sim.Day))
	if max := onsetAt - inj.eng.Now(); incub > max/2 {
		incub = max / 2
	}
	if incub < sim.Hour {
		return
	}
	start := onsetAt - incub
	var tick func()
	tick = func() {
		// The onset was cancelled or already fired: stop.
		if inj.onsetEvents[l.ID][c] != onsetEv || !onsetEv.Pending() {
			return
		}
		st := &inj.states[l.ID]
		if st.Cause == None && !st.InRepair {
			st.FlapCount++
			inj.stats.PrecursorFlaps++
			for _, ls := range inj.listeners {
				ls.LinkFlapped(l, sim.Second, inj.cfg.PrecursorLoss, inj.eng.Now())
			}
		}
		gap := sim.Time(inj.rng("precursor").Exponential(inj.cfg.PrecursorGapH) * float64(sim.Hour))
		if gap < 10*sim.Minute {
			gap = 10 * sim.Minute
		}
		next := inj.eng.Now() + gap
		if next < onsetAt {
			inj.eng.Schedule(next, "precursor-flap", tick)
		}
	}
	inj.eng.Schedule(start, "precursor-start", tick)
}

func (inj *Injector) onset(l *topology.Link, c Cause) {
	st := &inj.states[l.ID]
	delete(inj.onsetEvents[l.ID], c)
	if st.Cause != None || st.InRepair {
		// Hardware already misbehaving or on the bench: this onset is
		// pre-empted; redraw its clock.
		inj.scheduleOnset(l, c)
		return
	}
	inj.beginFault(l, c)
}

// beginFault makes cause c manifest on l now.
func (inj *Injector) beginFault(l *topology.Link, c Cause) {
	st := &inj.states[l.ID]
	rng := inj.rng("manifest")
	st.Cause = c
	st.Masked = false
	if rng.Bernoulli(0.5) {
		st.CauseEnd = EndB
	} else {
		st.CauseEnd = EndA
	}
	// A switch-port fault lives in switch silicon: constrain the end to a
	// switch-side port.
	if c == SwitchPort && !st.CauseEnd.Port(l).Device.Kind.IsSwitch() {
		st.CauseEnd = st.CauseEnd.Opposite()
	}
	if c == Contamination {
		st.Ends[st.CauseEnd].Dirt = 0.4 + 0.6*rng.Float64()
	}
	inj.stats.Onsets[c]++
	if rng.Bernoulli(inj.cfg.DownManifest[c]) {
		inj.setHealth(l, Down)
	} else {
		inj.setHealth(l, Flapping)
		inj.scheduleFlap(l)
	}
}

// --- flapping ------------------------------------------------------------

// envFactor models the daily environmental cycle (temperature, vibration)
// that modulates gray-failure activity (§1).
func (inj *Injector) envFactor(at sim.Time) float64 {
	frac := math.Mod(at.Days(), 1)
	return 1 + inj.cfg.EnvAmplitude*math.Sin(2*math.Pi*frac)
}

func (inj *Injector) scheduleFlap(l *topology.Link) {
	st := &inj.states[l.ID]
	rng := inj.rng("flap")
	interval := inj.cfg.FlapInterval.Sample(rng)
	// Dirtier end-faces flap more often.
	severity := 0.5
	if st.Cause == Contamination {
		severity = st.Ends[st.CauseEnd].Dirt
	}
	interval /= (0.5 + severity) * inj.envFactor(inj.eng.Now())
	if interval < 1 {
		interval = 1
	}
	at := inj.eng.Now() + sim.Time(interval*float64(sim.Second))
	inj.flapEvents[l.ID] = inj.eng.Schedule(at, "flap", func() {
		inj.flapEvents[l.ID] = sim.Handle{}
		st := &inj.states[l.ID]
		if st.Health != Flapping || st.InRepair {
			return
		}
		dur := sim.SampleDuration(inj.cfg.FlapDuration, rng)
		loss := inj.cfg.FlapLoss.Sample(rng)
		st.FlapCount++
		inj.stats.Flaps++
		for _, ls := range inj.listeners {
			ls.LinkFlapped(l, dur, loss, inj.eng.Now())
		}
		inj.scheduleFlap(l)
	})
}

func (inj *Injector) cancelFlap(id topology.LinkID) {
	inj.flapEvents[id].Cancel()
	inj.flapEvents[id] = sim.Handle{}
}

// --- health transitions ----------------------------------------------------

// setHealth updates underlying health and notifies listeners of observable
// transitions.
func (inj *Injector) setHealth(l *topology.Link, to Health) {
	st := &inj.states[l.ID]
	before := st.Observable()
	st.Health = to
	if to != Flapping {
		inj.cancelFlap(l.ID)
	}
	if to == Healthy {
		st.FlapCount = 0
	}
	after := st.Observable()
	if before != after {
		st.Since = inj.eng.Now()
		for _, ls := range inj.listeners {
			ls.LinkStateChanged(l, before, after, inj.eng.Now())
		}
	}
}

// setInRepair toggles the physically-being-worked-on flag, emitting the
// observable transition it implies.
func (inj *Injector) setInRepair(l *topology.Link, v bool) {
	st := &inj.states[l.ID]
	before := st.Observable()
	st.InRepair = v
	after := st.Observable()
	if before != after {
		st.Since = inj.eng.Now()
		for _, ls := range inj.listeners {
			ls.LinkStateChanged(l, before, after, inj.eng.Now())
		}
	}
	if v {
		inj.cancelFlap(l.ID)
	} else if st.Health == Flapping && !inj.flapEvents[l.ID].Pending() {
		inj.scheduleFlap(l)
	}
}

// rng returns a named injector stream.
func (inj *Injector) rng(name string) *sim.Stream { return inj.eng.RNG("faults/" + name) }
