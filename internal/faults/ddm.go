package faults

import (
	"repro/internal/topology"
)

// DDM is a digital-diagnostics reading from one end of a link, the noisy
// per-end observable real transceivers export (rx optical power, error
// counts). Diagnosis uses DDM to localize which end of a link to service;
// it is deliberately noisy so localization is imperfect, the way gray
// failures are "hard to pin point" (§1).
type DDM struct {
	RxDbm  float64 // received optical power; lower is worse
	Errors float64 // electrical/protocol error rate indicator, 0..1
}

// NominalRxDbm is the healthy received power level.
const NominalRxDbm = -2.0

// ReadDDM samples the diagnostics at end e of l. Contamination attenuates
// received power — strongly for dirt at the reading end's own connector,
// weakly for far-end dirt — while electrical causes (oxidation, firmware,
// dying module) show up in the error indicator at the afflicted end.
func (inj *Injector) ReadDDM(l *topology.Link, e End) DDM {
	st := &inj.states[l.ID]
	rng := inj.rng("ddm")
	d := DDM{RxDbm: NominalRxDbm + 1.5*rng.NormFloat64()}
	if !inj.info[l.ID].needsXcvr {
		return d
	}
	local := st.Ends[e].Dirt
	far := st.Ends[e.Opposite()].Dirt
	d.RxDbm -= 4*local + 2*far

	if st.Cause != None && !st.Masked {
		switch st.Cause {
		case Oxidation, FirmwareHang, XcvrDead:
			if st.CauseEnd == e {
				d.Errors = clamp01(0.5 + 0.3*rng.NormFloat64())
			} else {
				d.Errors = clamp01(0.1 + 0.1*rng.NormFloat64())
			}
		case CableDamaged:
			d.RxDbm -= 4 + 2*rng.Float64()
		case SwitchPort:
			if st.CauseEnd == e {
				d.Errors = clamp01(0.4 + 0.3*rng.NormFloat64())
			}
		}
	}
	// Background noise floor on the error indicator.
	if d.Errors == 0 {
		d.Errors = clamp01(0.02 * rng.Float64())
	}
	return d
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
