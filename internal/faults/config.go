package faults

import "repro/internal/sim"

// Config calibrates the failure, cascade and repair-outcome models. The
// defaults are chosen to match the qualitative statistics the paper leans
// on (failures are frequent at scale, a large fraction are optical-layer
// and gray, reseating is a surprisingly effective first action) and the
// magnitudes published for production fabrics (e.g. Zhuo et al., SIGCOMM'17
// on corrupting links). Experiments that sweep a knob document it in
// EXPERIMENTS.md.
type Config struct {
	// AnnualRate is the per-link expected number of fault onsets per year
	// of each cause, for links whose media the cause applies to. A cause
	// applies as follows:
	//   Oxidation, FirmwareHang, XcvrDead: links with pluggable transceivers
	//   Contamination: links with separable fiber (LC/MPO)
	//   CableDamaged: every link
	//   SwitchPort: links with at least one switch end
	AnnualRate map[Cause]float64

	// Shape is the Weibull shape per cause: <1 infant mortality, 1
	// memoryless, >1 wear-out.
	Shape map[Cause]float64

	// FlapInterval is the distribution (seconds) of gaps between flap
	// episodes while a link is flapping, before environment modulation.
	FlapInterval sim.Dist
	// FlapDuration is the distribution (seconds) of each flap episode.
	FlapDuration sim.Dist
	// FlapLoss is the distribution of the packet-loss fraction during an
	// episode.
	FlapLoss sim.Dist

	// DownManifest is the probability that a cause manifests fail-stop
	// (Down) rather than gray (Flapping).
	DownManifest map[Cause]float64

	// FixProb[action][cause] is the probability that the action clears the
	// cause when applied to the correct end. Absent entries are zero.
	FixProb map[Action]map[Cause]float64

	// ReseatMaskProb is the probability that a reseat on a contaminated
	// link temporarily masks the symptom instead of failing outright —
	// the mechanism behind the paper's repeat tickets (§3.2).
	ReseatMaskProb float64
	// MaskedRecurrence is the distribution (hours) of time until a masked
	// contamination recurs.
	MaskedRecurrence sim.Dist

	// CleanRecontaminate is the probability a cleaning leaves or
	// reintroduces dirt (robot reassembles "to minimize the risk of
	// recontamination", §3.3.2 — but not perfectly).
	CleanRecontaminate float64

	// Touch cascade model: a physical touch at a port disturbs nearby
	// cables (within TouchRadiusM on the same panel) and cables sharing
	// tray segments. Each disturbed cable suffers a transient flap with
	// probability TouchTransientProb (scaled by proximity), and a new
	// permanent fault with probability TouchPermanentProb. gentle touches
	// (purpose-built grippers, §3.3.1) multiply both by GentleFactor.
	TouchRadiusM       float64
	TouchTransientProb float64
	TouchPermanentProb float64
	GentleFactor       float64
	// TrayDisturbProb is the per-cable probability that moving a cable
	// disturbs a tray-mate (applies to cable replacement, which pulls the
	// full run).
	TrayDisturbProb float64

	// Environment modulation: flap rates swing with the daily
	// temperature/vibration cycle by ±EnvAmplitude.
	EnvAmplitude float64

	// Gradual causes (contamination, oxidation) incubate: for
	// PrecursorIncubation (days) before the onset manifests, the link emits
	// sparse sub-clinical flap episodes (mean gap PrecursorGapH hours, loss
	// PrecursorLoss) — the degraded-over-time precursor signature of §1,
	// and the signal failure prediction feeds on (§4).
	PrecursorIncubation sim.Dist
	PrecursorGapH       float64
	PrecursorLoss       float64
}

// DefaultConfig returns the calibrated defaults described on Config.
func DefaultConfig() Config {
	return Config{
		AnnualRate: map[Cause]float64{
			Oxidation:     0.14,
			FirmwareHang:  0.10,
			Contamination: 0.10,
			XcvrDead:      0.03,
			CableDamaged:  0.008,
			SwitchPort:    0.006,
		},
		Shape: map[Cause]float64{
			Oxidation:     1.3, // slow wear-out of contacts
			FirmwareHang:  1.0, // memoryless
			Contamination: 1.1,
			XcvrDead:      0.8, // infant mortality visible
			CableDamaged:  1.0,
			SwitchPort:    1.0,
		},
		FlapInterval: sim.Exp{MeanVal: 25 * 60},                                // ~25 min between episodes
		FlapDuration: sim.Clamped{Base: sim.Exp{MeanVal: 8}, Lo: 0.5, Hi: 120}, // seconds
		FlapLoss:     sim.Clamped{Base: sim.Exp{MeanVal: 0.3}, Lo: 0.02, Hi: 1},
		DownManifest: map[Cause]float64{
			Oxidation:     0.35,
			FirmwareHang:  0.75,
			Contamination: 0.15, // dirt mostly flaps
			XcvrDead:      1.0,
			CableDamaged:  0.7,
			SwitchPort:    0.85,
		},
		FixProb: map[Action]map[Cause]float64{
			Reseat: {
				Oxidation:    0.90,
				FirmwareHang: 0.95,
				// Contamination via ReseatMaskProb only.
			},
			Clean: {
				Contamination: 0.92,
				Oxidation:     0.50, // cleaning includes a reseat cycle
				FirmwareHang:  0.60,
			},
			ReplaceXcvr: {
				XcvrDead:     1.0,
				FirmwareHang: 1.0,
				Oxidation:    0.95,
				// Contamination on the cable side survives a new module.
			},
			ReplaceCable: {
				CableDamaged:  1.0,
				Contamination: 0.98, // new cable, cleaned at assembly
			},
			ReplaceSwitchPort: {
				SwitchPort: 1.0,
			},
		},
		ReseatMaskProb:     0.35,
		MaskedRecurrence:   sim.LogNormal{Mu: 4.2, Sigma: 0.8}, // ~67h median, heavy tail
		CleanRecontaminate: 0.04,
		TouchRadiusM:       0.08,
		TouchTransientProb: 0.08,
		TouchPermanentProb: 0.004,
		GentleFactor:       0.15,
		TrayDisturbProb:    0.01,
		EnvAmplitude:       0.4,

		PrecursorIncubation: sim.Uniform{Lo: 2, Hi: 8},
		PrecursorGapH:       8,
		PrecursorLoss:       0.05,
	}
}

// applies reports whether a cause can occur on link l at all.
func (c Cause) applies(l link) bool {
	switch c {
	case Oxidation, FirmwareHang, XcvrDead:
		return l.needsXcvr
	case Contamination:
		return l.separable
	case CableDamaged:
		return true
	case SwitchPort:
		return l.switchEnd
	}
	return false
}

// link caches the per-link media facts the cause model needs.
type link struct {
	needsXcvr bool
	separable bool
	switchEnd bool
}
