package faults

import (
	"repro/internal/sim"
	"repro/internal/topology"
)

// Touch applies the cascading-failure model for physical work at a port
// (§1: "physical motion near or with hardware creates vibrations and other
// physical effects on the co-located hardware"). Every connected cable
// within the touch radius on the same panel is disturbed; each disturbance
// causes a transient flap episode with probability proportional to
// proximity, and more rarely a new permanent fault. gentle selects the
// purpose-built-gripper factor (§3.3.1): robots part cables deliberately
// and press only on the transceiver body.
//
// It returns the collateral effects, which the controller can correlate
// with the action (§4: "low-level repair actions can be correlated with any
// resulting failures").
func (inj *Injector) Touch(p *topology.Port, gentle bool) []CascadeEffect {
	factor := 1.0
	if gentle {
		factor = inj.cfg.GentleFactor
	}
	var effects []CascadeEffect
	origin := inj.net.Layout.PortPoint(p)
	for _, q := range inj.net.PortsNear(p, inj.cfg.TouchRadiusM) {
		d := inj.net.Layout.PortPoint(q).Dist(origin)
		proximity := 1 - d/inj.cfg.TouchRadiusM
		if proximity < 0 {
			proximity = 0
		}
		effects = append(effects, inj.disturb(q.Link,
			inj.cfg.TouchTransientProb*factor*proximity,
			inj.cfg.TouchPermanentProb*factor*proximity)...)
	}
	return effects
}

// TouchTray applies the cascade model for pulling a cable through its
// overhead tray run (cable replacement): every tray-mate is disturbed with
// a small per-cable probability, and a twentieth of those disturbances
// damage the neighbour outright.
func (inj *Injector) TouchTray(l *topology.Link, gentle bool) []CascadeEffect {
	factor := 1.0
	if gentle {
		factor = inj.cfg.GentleFactor
	}
	p := inj.cfg.TrayDisturbProb * factor
	var effects []CascadeEffect
	for _, mate := range inj.net.LinksSharingTray(l) {
		effects = append(effects, inj.disturb(mate, p, p/20)...)
	}
	return effects
}

// DisturbedBy returns the links that physical work at port p would put at
// risk: the cables within the touch radius. This is the pre-report the
// robot API exposes before any motion ("automation can report which network
// cables will be contacted before the maintenance occurs", §2).
func (inj *Injector) DisturbedBy(p *topology.Port) []*topology.Link {
	seen := map[topology.LinkID]bool{}
	var out []*topology.Link
	for _, q := range inj.net.PortsNear(p, inj.cfg.TouchRadiusM) {
		if q.Link != nil && !seen[q.Link.ID] {
			seen[q.Link.ID] = true
			out = append(out, q.Link)
		}
	}
	return out
}

// disturb applies one disturbance to a link: a transient flap with
// probability pTransient, and a new permanent fault with probability
// pPermanent (only if the link is currently fault-free).
func (inj *Injector) disturb(l *topology.Link, pTransient, pPermanent float64) []CascadeEffect {
	if l == nil {
		return nil
	}
	rng := inj.rng("touch")
	st := &inj.states[l.ID]
	var effects []CascadeEffect

	if rng.Bernoulli(pTransient) {
		// Transient flap: observable packet loss without a lasting health
		// change.
		dur := sim.SampleDuration(inj.cfg.FlapDuration, rng)
		loss := inj.cfg.FlapLoss.Sample(rng)
		inj.stats.CascadeTransients++
		st.FlapCount++
		for _, ls := range inj.listeners {
			ls.LinkFlapped(l, dur, loss, inj.eng.Now())
		}
		effects = append(effects, CascadeEffect{Link: l, Transient: true})
	}

	if st.Cause == None && !st.InRepair && rng.Bernoulli(pPermanent) {
		// Touch-induced permanent fault: pick an applicable mechanical cause.
		candidates := []Cause{CableDamaged, Contamination, Oxidation}
		weights := []float64{0.4, 0.4, 0.2}
		c := candidates[rng.PickWeighted(weights)]
		if !c.applies(inj.info[l.ID]) {
			c = CableDamaged // always applies
		}
		inj.stats.CascadePermanents++
		inj.beginFault(l, c)
		effects = append(effects, CascadeEffect{Link: l, Cause: c})
	}
	return effects
}
