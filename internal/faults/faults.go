// Package faults owns the ground truth of hardware failure in a simulated
// datacenter network: which links are broken, why, how the failure
// manifests (fail-stop vs gray/flapping), how physical touch near hardware
// cascades into co-located failures, and what each repair action actually
// fixes.
//
// The package deliberately separates three things the paper argues are
// conflated in today's operations:
//
//   - Cause: the hidden root cause (oxidized contacts, end-face dirt, dead
//     module, damaged cable, bad switch port). Only the fault injector and
//     the repair-outcome model see it; diagnosis has to infer it.
//   - Health: the externally observable state (healthy, flapping, down).
//   - Repair: actions from the paper's escalation ladder (§3.2) whose
//     success probability depends on the hidden cause.
package faults

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Cause is a hidden root cause of link misbehaviour.
type Cause uint8

// Root causes, in escalation-ladder order of what fixes them.
const (
	None          Cause = iota
	Oxidation           // degraded electrical contact; reseat fixes
	FirmwareHang        // wedged transceiver firmware; reseat (power cycle) fixes
	Contamination       // dirt on a fiber end-face; cleaning fixes
	XcvrDead            // failed module; replacement fixes
	CableDamaged        // damaged fiber/copper; cable replacement fixes
	SwitchPort          // bad switch port / line card; switch-side replacement fixes
)

var causeNames = [...]string{
	None:          "none",
	Oxidation:     "oxidation",
	FirmwareHang:  "firmware-hang",
	Contamination: "contamination",
	XcvrDead:      "xcvr-dead",
	CableDamaged:  "cable-damaged",
	SwitchPort:    "switch-port",
}

// String returns the cause name.
func (c Cause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return fmt.Sprintf("cause(%d)", uint8(c))
}

// AllCauses lists every non-None cause, in order.
var AllCauses = []Cause{Oxidation, FirmwareHang, Contamination, XcvrDead, CableDamaged, SwitchPort}

// Health is the externally observable state of a link.
type Health uint8

// Health states.
const (
	Healthy Health = iota
	Flapping
	Down
)

var healthNames = [...]string{Healthy: "healthy", Flapping: "flapping", Down: "down"}

// String returns the health name.
func (h Health) String() string {
	if int(h) < len(healthNames) {
		return healthNames[h]
	}
	return fmt.Sprintf("health(%d)", uint8(h))
}

// End selects one end of a link.
type End uint8

// Link ends.
const (
	EndA End = iota
	EndB
)

// String returns "A" or "B".
func (e End) String() string {
	if e == EndA {
		return "A"
	}
	return "B"
}

// Port returns the port at end e of l.
func (e End) Port(l *topology.Link) *topology.Port {
	if e == EndA {
		return l.A
	}
	return l.B
}

// Opposite returns the other end.
func (e End) Opposite() End { return 1 - e }

// Action is a physical repair action from the paper's escalation ladder.
type Action uint8

// Repair actions, in escalation order (§3.2).
const (
	Reseat Action = iota
	Clean
	ReplaceXcvr
	ReplaceCable
	ReplaceSwitchPort
)

var actionNames = [...]string{
	Reseat:            "reseat",
	Clean:             "clean",
	ReplaceXcvr:       "replace-xcvr",
	ReplaceCable:      "replace-cable",
	ReplaceSwitchPort: "replace-switch-port",
}

// String returns the action name.
func (a Action) String() string {
	if int(a) < len(actionNames) {
		return actionNames[a]
	}
	return fmt.Sprintf("action(%d)", uint8(a))
}

// AllActions lists the escalation ladder in order.
var AllActions = []Action{Reseat, Clean, ReplaceXcvr, ReplaceCable, ReplaceSwitchPort}

// EndState is per-end physical state: how dirty the fiber end-face and
// transceiver optics are. 0 is pristine; 1 is grossly contaminated.
type EndState struct {
	Dirt float64
}

// LinkState is the full runtime state of one link.
type LinkState struct {
	Health    Health
	Cause     Cause
	CauseEnd  End  // which end carries the cause (for end-local causes)
	Masked    bool // a reseat temporarily masked a cause that will recur
	InRepair  bool // physically being worked on (forced down)
	Ends      [2]EndState
	Since     sim.Time // instant of the last health transition
	FlapCount int      // flap episodes since last healthy transition
}

// Observable reduces the state to what monitoring can legitimately see.
func (st *LinkState) Observable() Health {
	if st.InRepair {
		return Down
	}
	return st.Health
}

// Listener observes ground-truth transitions. The telemetry layer adapts
// these into the counters and alerts that the rest of the stack consumes;
// nothing above telemetry may see Cause.
type Listener interface {
	// LinkStateChanged fires on every health transition, including those
	// caused by starting and finishing physical repairs.
	LinkStateChanged(l *topology.Link, from, to Health, at sim.Time)
	// LinkFlapped fires for each flap episode on a flapping link: the link
	// dropped for dur and lost roughly lossFrac of packets in the episode.
	LinkFlapped(l *topology.Link, dur sim.Time, lossFrac float64, at sim.Time)
}

// RepairResult reports what a repair action physically accomplished.
type RepairResult struct {
	Action  Action
	End     End
	Fixed   bool  // link restored to healthy
	Masked  bool  // symptom suppressed but cause will recur
	Cleared Cause // cause removed, if any
	Note    string
}

// String summarizes the result for logs.
func (r RepairResult) String() string {
	switch {
	case r.Fixed && r.Masked:
		return fmt.Sprintf("%s@%s masked %s (will recur)", r.Action, r.End, r.Cleared)
	case r.Fixed:
		return fmt.Sprintf("%s@%s fixed %s", r.Action, r.End, r.Cleared)
	default:
		return fmt.Sprintf("%s@%s did not fix (%s)", r.Action, r.End, r.Note)
	}
}

// CascadeEffect describes one collateral effect of physical touch.
type CascadeEffect struct {
	Link      *topology.Link
	Transient bool // true: flap episode; false: new permanent fault
	Cause     Cause
}

// String summarizes the effect.
func (c CascadeEffect) String() string {
	if c.Transient {
		return fmt.Sprintf("transient flap on %s", c.Link.Name())
	}
	return fmt.Sprintf("induced %s on %s", c.Cause, c.Link.Name())
}
