package faults

// ExecChaos calibrates deterministic fault injection for the maintenance
// plane's own actuators (§3's implicit assumption made explicit: the
// escalation ladder can fail mid-rung). It is consumed by the executor
// wrapper in internal/exec, which draws from the engine's seeded
// "execchaos" RNG stream, so chaos runs replay exactly at a fixed seed and
// are entirely absent when the config is inactive. The probabilities are
// per-dispatch and mutually exclusive, drawn in the fixed order below; the
// zero value injects nothing.
type ExecChaos struct {
	// StallProb is the probability a dispatched actuator wedges before doing
	// any work: no Outcome is ever delivered. Only the Act stage's watchdog
	// recovers the attempt.
	StallProb float64

	// LostProb is the probability the work is physically performed but the
	// completion report is dropped — the repair may have taken, yet the
	// dispatcher never hears about it.
	LostProb float64

	// SlowProb is the probability the work completes but the report arrives
	// after SlowFactor× the attempt's actual duration — racing (and usually
	// losing to) the watchdog.
	SlowProb float64
	// SlowFactor stretches a slow-completing attempt's reporting latency;
	// values <= 1 deliver on time.
	SlowFactor float64

	// SpuriousNeedsHumanProb is the probability the actuator gives up
	// immediately with a fabricated human-support request, without touching
	// hardware (a perception subsystem crying wolf).
	SpuriousNeedsHumanProb float64

	// SpuriousStockoutProb is the probability the actuator falsely reports a
	// parts stockout without touching hardware.
	SpuriousStockoutProb float64
}

// Active reports whether any injection can occur.
func (c ExecChaos) Active() bool {
	return c.StallProb > 0 || c.LostProb > 0 || c.SlowProb > 0 ||
		c.SpuriousNeedsHumanProb > 0 || c.SpuriousStockoutProb > 0
}

// ScaledExecChaos returns the standard chaos mix at total injection rate
// rate: stalls and lost outcomes dominate (the hard failures only a
// watchdog can catch), with slow completions and spurious give-ups making
// up the rest. SlowFactor 60 turns a minutes-scale robot task into an
// hours-late report, so slow completions genuinely race (and often lose
// to) the dispatcher's watchdog floor instead of arriving comfortably
// early. rate 0 is inactive.
func ScaledExecChaos(rate float64) ExecChaos {
	return ExecChaos{
		StallProb:              0.30 * rate,
		LostProb:               0.25 * rate,
		SlowProb:               0.25 * rate,
		SlowFactor:             60,
		SpuriousNeedsHumanProb: 0.10 * rate,
		SpuriousStockoutProb:   0.10 * rate,
	}
}
