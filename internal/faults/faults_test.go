package faults

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

// testNet builds a small leaf-spine with separable-fiber uplinks.
func testNet(t *testing.T) *topology.Network {
	t.Helper()
	n, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 4, Spines: 2, HostsPerLeaf: 4, Uplinks: 1,
		FabricGbps: 400, HostGbps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// fabricLink returns a transceiver-bearing fabric link.
func fabricLink(t *testing.T, n *topology.Network) *topology.Link {
	t.Helper()
	for _, l := range n.SwitchLinks() {
		if l.Cable.Class.NeedsTransceiver() {
			return l
		}
	}
	t.Fatal("no separable fabric link in test network")
	return nil
}

type recorder struct {
	transitions []string
	flaps       int
}

func (r *recorder) LinkStateChanged(l *topology.Link, from, to Health, at sim.Time) {
	r.transitions = append(r.transitions, from.String()+">"+to.String())
}
func (r *recorder) LinkFlapped(l *topology.Link, dur sim.Time, loss float64, at sim.Time) {
	r.flaps++
}

func TestOnsetRatesRoughlyMatchConfig(t *testing.T) {
	n := testNet(t)
	eng := sim.NewEngine(42)
	cfg := DefaultConfig()
	inj := NewInjector(eng, n, cfg)

	// Auto-repair everything instantly so onsets keep accruing: a repair
	// daemon that always applies the right fix.
	inj.Subscribe(repairDaemon{eng: eng, inj: inj})
	const years = 40
	eng.RunUntil(years * sim.Year)

	st := inj.Stats()
	var expected float64
	for _, l := range n.Links {
		info := link{
			needsXcvr: l.Cable.Class.NeedsTransceiver(),
			separable: l.Cable.Class.Separable(),
			switchEnd: l.A.Device.Kind.IsSwitch() || l.B.Device.Kind.IsSwitch(),
		}
		for c, r := range cfg.AnnualRate {
			if c.applies(info) {
				expected += r * years
			}
		}
	}
	total := 0
	for _, v := range st.Onsets {
		total += v
	}
	if total == 0 {
		t.Fatal("no fault onsets in 40 simulated years")
	}
	ratio := float64(total) / expected
	if ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("onset total %d vs expected %.0f (ratio %.2f)", total, expected, ratio)
	}
}

// repairDaemon instantly applies the correct terminal fix whenever a link
// leaves Healthy, so the fault process keeps running.
type repairDaemon struct {
	eng *sim.Engine
	inj *Injector
}

func (d repairDaemon) LinkStateChanged(l *topology.Link, from, to Health, at sim.Time) {
	if to == Healthy {
		return
	}
	st := d.inj.State(l.ID)
	if st.InRepair || st.Cause == None {
		return
	}
	d.eng.After(sim.Minute, "daemon-fix", func() {
		st := d.inj.State(l.ID)
		if st.Cause == None || st.InRepair {
			return
		}
		var action Action
		switch st.Cause {
		case Oxidation, FirmwareHang:
			action = Reseat
		case Contamination:
			action = Clean
		case XcvrDead:
			action = ReplaceXcvr
		case CableDamaged:
			action = ReplaceCable
		default:
			action = ReplaceSwitchPort
		}
		d.inj.BeginRepair(l)
		for !d.inj.FinishRepair(l, action, st.CauseEnd).Fixed {
			d.inj.BeginRepair(l)
		}
	})
}
func (d repairDaemon) LinkFlapped(*topology.Link, sim.Time, float64, sim.Time) {}

func TestCauseApplicability(t *testing.T) {
	n := testNet(t)
	eng := sim.NewEngine(7)
	inj := NewInjector(eng, n, DefaultConfig())
	eng.RunUntil(30 * sim.Year)
	// No DAC host link may ever have contamination or xcvr causes.
	for _, l := range n.Links {
		if l.Cable.Class == topology.DAC {
			st := inj.State(l.ID)
			switch st.Cause {
			case Contamination, XcvrDead, Oxidation, FirmwareHang:
				t.Fatalf("DAC link %s has transceiver cause %v", l.Name(), st.Cause)
			}
		}
	}
}

func TestInduceAndObservable(t *testing.T) {
	n := testNet(t)
	eng := sim.NewEngine(3)
	cfg := DefaultConfig()
	cfg.AnnualRate = map[Cause]float64{} // no background faults
	inj := NewInjector(eng, n, cfg)
	l := fabricLink(t, n)

	rec := &recorder{}
	inj.Subscribe(rec)

	inj.InduceFault(l, XcvrDead)
	if got := inj.Observable(l.ID); got != Down {
		t.Fatalf("dead xcvr observable = %v, want down", got)
	}
	st := inj.State(l.ID)
	if st.Cause != XcvrDead {
		t.Fatalf("cause = %v", st.Cause)
	}
	if len(rec.transitions) != 1 || rec.transitions[0] != "healthy>down" {
		t.Fatalf("transitions = %v", rec.transitions)
	}

	// Repairing with the wrong action never fixes.
	for i := 0; i < 20; i++ {
		inj.BeginRepair(l)
		res := inj.FinishRepair(l, Reseat, st.CauseEnd)
		if res.Fixed {
			t.Fatal("reseat fixed a dead transceiver")
		}
	}
	// Correct action at correct end always fixes (p=1 for ReplaceXcvr).
	oldSerial := st.CauseEnd.Port(l).Xcvr.Serial
	inj.BeginRepair(l)
	if got := inj.Observable(l.ID); got != Down {
		t.Fatal("in-repair link not observably down")
	}
	res := inj.FinishRepair(l, ReplaceXcvr, st.CauseEnd)
	if !res.Fixed || res.Cleared != XcvrDead {
		t.Fatalf("replace-xcvr result: %v", res)
	}
	if inj.Observable(l.ID) != Healthy {
		t.Fatal("link not healthy after successful replacement")
	}
	if st.CauseEnd.Port(l).Xcvr.Serial == oldSerial {
		t.Fatal("transceiver serial unchanged after replacement")
	}
}

func TestInduceFaultPanicsWhenFaulted(t *testing.T) {
	n := testNet(t)
	eng := sim.NewEngine(3)
	cfg := DefaultConfig()
	cfg.AnnualRate = map[Cause]float64{}
	inj := NewInjector(eng, n, cfg)
	l := fabricLink(t, n)
	inj.InduceFault(l, Oxidation)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on double induce")
		}
	}()
	inj.InduceFault(l, XcvrDead)
}

func TestWrongEndCleanFails(t *testing.T) {
	n := testNet(t)
	eng := sim.NewEngine(9)
	cfg := DefaultConfig()
	cfg.AnnualRate = map[Cause]float64{}
	cfg.DownManifest[Contamination] = 1 // deterministic manifestation
	inj := NewInjector(eng, n, cfg)
	l := fabricLink(t, n)
	inj.InduceFault(l, Contamination)
	st := inj.State(l.ID)
	wrong := st.CauseEnd.Opposite()
	for i := 0; i < 25; i++ {
		inj.BeginRepair(l)
		if res := inj.FinishRepair(l, Clean, wrong); res.Fixed {
			t.Fatal("cleaning the wrong end fixed contamination")
		}
	}
	// The correct end succeeds with p=0.92; try a few times.
	fixed := false
	for i := 0; i < 25 && !fixed; i++ {
		inj.BeginRepair(l)
		fixed = inj.FinishRepair(l, Clean, st.CauseEnd).Fixed
	}
	if !fixed {
		t.Fatal("cleaning correct end never fixed contamination in 25 tries")
	}
	if d := inj.State(l.ID).Ends[st.CauseEnd].Dirt; d > 0.2 {
		t.Fatalf("dirt after clean = %g", d)
	}
}

func TestMaskedReseatRecurs(t *testing.T) {
	n := testNet(t)
	eng := sim.NewEngine(11)
	cfg := DefaultConfig()
	cfg.AnnualRate = map[Cause]float64{}
	cfg.ReseatMaskProb = 1 // always masks
	cfg.DownManifest[Contamination] = 0
	inj := NewInjector(eng, n, cfg)
	l := fabricLink(t, n)
	inj.InduceFault(l, Contamination)
	st := inj.State(l.ID)

	inj.BeginRepair(l)
	res := inj.FinishRepair(l, Reseat, st.CauseEnd)
	if !res.Fixed || !res.Masked {
		t.Fatalf("expected masked fix, got %v", res)
	}
	if inj.Observable(l.ID) != Healthy {
		t.Fatal("masked link not observably healthy")
	}
	// Run long enough for the recurrence (median ~67h, heavy tail).
	eng.RunUntil(120 * sim.Day)
	if inj.Observable(l.ID) == Healthy {
		t.Fatal("masked contamination never recurred")
	}
	if inj.Stats().MaskedRecurrences != 1 {
		t.Fatalf("recurrences = %d", inj.Stats().MaskedRecurrences)
	}
	if inj.State(l.ID).Cause != Contamination {
		t.Fatal("recurred link lost its cause")
	}
}

func TestFlappingEmitsEpisodesAndStopsOnRepair(t *testing.T) {
	n := testNet(t)
	eng := sim.NewEngine(13)
	cfg := DefaultConfig()
	cfg.AnnualRate = map[Cause]float64{}
	cfg.DownManifest[Contamination] = 0 // force gray manifestation
	inj := NewInjector(eng, n, cfg)
	rec := &recorder{}
	inj.Subscribe(rec)
	l := fabricLink(t, n)
	inj.InduceFault(l, Contamination)
	if inj.Observable(l.ID) != Flapping {
		t.Fatal("not flapping")
	}
	eng.RunUntil(12 * sim.Hour)
	if rec.flaps == 0 {
		t.Fatal("no flap episodes in 12h on a flapping link")
	}
	if inj.State(l.ID).FlapCount != rec.flaps {
		t.Fatalf("flap count %d != recorded %d", inj.State(l.ID).FlapCount, rec.flaps)
	}
	// Fix it; flapping must stop.
	st := inj.State(l.ID)
	fixed := false
	for i := 0; i < 30 && !fixed; i++ {
		inj.BeginRepair(l)
		fixed = inj.FinishRepair(l, Clean, st.CauseEnd).Fixed
	}
	if !fixed {
		t.Fatal("clean failed 30 times")
	}
	before := rec.flaps
	eng.RunUntil(eng.Now() + 24*sim.Hour)
	if rec.flaps != before {
		t.Fatal("flap episodes continued after repair")
	}
	if inj.State(l.ID).FlapCount != 0 {
		t.Fatal("flap count not reset on healthy")
	}
}

func TestProactiveRepairRefreshesClocks(t *testing.T) {
	n := testNet(t)
	eng := sim.NewEngine(17)
	cfg := DefaultConfig()
	inj := NewInjector(eng, n, cfg)
	l := fabricLink(t, n)
	// Proactive reseat on a healthy link reports no fault and counts as a
	// refresh.
	inj.BeginRepair(l)
	res := inj.FinishRepair(l, Reseat, EndA)
	if !res.Fixed || res.Note != "no fault present" {
		t.Fatalf("proactive result: %v", res)
	}
	if inj.Stats().ProactiveRefreshes != 1 {
		t.Fatal("refresh not counted")
	}
	if inj.Observable(l.ID) != Healthy {
		t.Fatal("link unhealthy after proactive reseat")
	}
}

func TestTouchCascades(t *testing.T) {
	n := testNet(t)
	eng := sim.NewEngine(19)
	cfg := DefaultConfig()
	cfg.AnnualRate = map[Cause]float64{}
	cfg.TouchTransientProb = 1 // deterministic for the test
	inj := NewInjector(eng, n, cfg)

	// A leaf's fabric port sits among host ports: touching it disturbs
	// neighbours.
	l := fabricLink(t, n)
	p := l.A
	if !p.Device.Kind.IsSwitch() {
		p = l.B
	}
	risk := inj.DisturbedBy(p)
	if len(risk) == 0 {
		t.Fatal("no at-risk links next to a dense ToR port")
	}
	rec := &recorder{}
	inj.Subscribe(rec)
	effects := inj.Touch(p, false)
	if len(effects) == 0 {
		t.Fatal("rough touch with p=1 produced no effects")
	}
	for _, e := range effects {
		if e.Link == nil {
			t.Fatal("effect with nil link")
		}
	}
	if rec.flaps == 0 {
		t.Fatal("cascade transients did not notify listeners")
	}
	if inj.Stats().CascadeTransients == 0 {
		t.Fatal("cascade transients not counted")
	}
}

func TestGentleTouchReducesCascades(t *testing.T) {
	n := testNet(t)
	eng := sim.NewEngine(23)
	cfg := DefaultConfig()
	cfg.AnnualRate = map[Cause]float64{}
	inj := NewInjector(eng, n, cfg)
	l := fabricLink(t, n)
	p := l.A
	if !p.Device.Kind.IsSwitch() {
		p = l.B
	}
	rough, gentle := 0, 0
	for i := 0; i < 3000; i++ {
		rough += len(inj.Touch(p, false))
		gentle += len(inj.Touch(p, true))
	}
	if rough == 0 {
		t.Fatal("no rough-touch cascades in 3000 trials")
	}
	if float64(gentle) > 0.5*float64(rough) {
		t.Fatalf("gentle touch not substantially safer: rough=%d gentle=%d", rough, gentle)
	}
}

func TestTouchTray(t *testing.T) {
	n := testNet(t)
	eng := sim.NewEngine(29)
	cfg := DefaultConfig()
	cfg.AnnualRate = map[Cause]float64{}
	cfg.TrayDisturbProb = 1
	inj := NewInjector(eng, n, cfg)
	l := fabricLink(t, n)
	if len(n.LinksSharingTray(l)) == 0 {
		t.Skip("fabric link shares no tray in this build")
	}
	effects := inj.TouchTray(l, false)
	if len(effects) == 0 {
		t.Fatal("tray pull with p=1 disturbed nothing")
	}
}

func TestAbortRepairLeavesStateIntact(t *testing.T) {
	n := testNet(t)
	eng := sim.NewEngine(31)
	cfg := DefaultConfig()
	cfg.AnnualRate = map[Cause]float64{}
	inj := NewInjector(eng, n, cfg)
	l := fabricLink(t, n)
	inj.InduceFault(l, CableDamaged)
	inj.BeginRepair(l)
	inj.AbortRepair(l)
	st := inj.State(l.ID)
	if st.InRepair {
		t.Fatal("still in repair after abort")
	}
	if st.Cause != CableDamaged {
		t.Fatal("abort changed the cause")
	}
}

func TestReplaceCableClearsBothEndsAndKeepsRun(t *testing.T) {
	n := testNet(t)
	eng := sim.NewEngine(37)
	cfg := DefaultConfig()
	cfg.AnnualRate = map[Cause]float64{}
	inj := NewInjector(eng, n, cfg)
	l := fabricLink(t, n)
	traysBefore := len(l.Cable.TraySegments)
	inj.InduceFault(l, CableDamaged)
	inj.BeginRepair(l)
	res := inj.FinishRepair(l, ReplaceCable, EndA)
	if !res.Fixed {
		t.Fatalf("cable replacement failed: %v", res)
	}
	st := inj.State(l.ID)
	if st.Ends[EndA].Dirt != 0 || st.Ends[EndB].Dirt != 0 {
		t.Fatal("new cable has dirt")
	}
	if len(l.Cable.TraySegments) != traysBefore {
		t.Fatal("cable replacement changed the tray run")
	}
}

func TestEnumStrings(t *testing.T) {
	if Contamination.String() != "contamination" || Cause(99).String() == "" {
		t.Error("cause strings")
	}
	if Flapping.String() != "flapping" || Health(99).String() == "" {
		t.Error("health strings")
	}
	if Reseat.String() != "reseat" || Action(99).String() == "" {
		t.Error("action strings")
	}
	if EndA.String() != "A" || EndB.String() != "B" || EndA.Opposite() != EndB {
		t.Error("end helpers")
	}
	res := RepairResult{Action: Clean, End: EndA, Fixed: true, Cleared: Contamination}
	if res.String() == "" {
		t.Error("result string")
	}
	res.Masked = true
	if res.String() == "" {
		t.Error("masked result string")
	}
	res.Fixed = false
	if res.String() == "" {
		t.Error("failed result string")
	}
	ce := CascadeEffect{Transient: true, Link: &topology.Link{A: &topology.Port{Device: &topology.Device{Name: "x"}}, B: &topology.Port{Device: &topology.Device{Name: "y"}}}}
	if ce.String() == "" {
		t.Error("cascade effect string")
	}
}

func TestPrecursorFlapsBeforeGradualOnset(t *testing.T) {
	n := testNet(t)
	eng := sim.NewEngine(41)
	cfg := DefaultConfig()
	// Only contamination, at a rate that guarantees onsets in the run.
	cfg.AnnualRate = map[Cause]float64{Contamination: 4}
	inj := NewInjector(eng, n, cfg)
	rec := &recorder{}
	inj.Subscribe(rec)

	// Track when each link first flaps vs when it leaves healthy.
	firstFlap := map[topology.LinkID]sim.Time{}
	firstSick := map[topology.LinkID]sim.Time{}
	inj.Subscribe(listenerFuncs{
		flapped: func(l *topology.Link, at sim.Time) {
			if _, ok := firstFlap[l.ID]; !ok {
				firstFlap[l.ID] = at
			}
		},
		changed: func(l *topology.Link, to Health, at sim.Time) {
			if to != Healthy {
				if _, ok := firstSick[l.ID]; !ok {
					firstSick[l.ID] = at
				}
			}
		},
	})
	eng.RunUntil(180 * sim.Day)
	if inj.Stats().PrecursorFlaps == 0 {
		t.Fatal("no precursor flaps in 180 days of contamination onsets")
	}
	// At least one link flapped measurably before it manifested.
	precursed := 0
	for id, sick := range firstSick {
		if f, ok := firstFlap[id]; ok && f < sick-sim.Hour {
			precursed++
		}
	}
	if precursed == 0 {
		t.Fatal("no link showed precursor flaps before manifesting")
	}
}

// listenerFuncs adapts closures to the Listener interface.
type listenerFuncs struct {
	changed func(*topology.Link, Health, sim.Time)
	flapped func(*topology.Link, sim.Time)
}

func (lf listenerFuncs) LinkStateChanged(l *topology.Link, from, to Health, at sim.Time) {
	if lf.changed != nil {
		lf.changed(l, to, at)
	}
}
func (lf listenerFuncs) LinkFlapped(l *topology.Link, d sim.Time, loss float64, at sim.Time) {
	if lf.flapped != nil {
		lf.flapped(l, at)
	}
}
