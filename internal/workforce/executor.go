package workforce

import (
	"repro/internal/exec"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Executor adapts a Crew to the pipeline's exec.Executor contract. Besides
// dispatching, it exposes the crew's scheduling constraints through the
// optional capability interfaces: shift hours (exec.Shifted), per-row
// hands-on occupancy for the safety interlock (exec.RowOccupancy), and
// Level-1 robot operators (exec.OperatorSource).
type Executor struct {
	crew *Crew
}

// NewExecutor wraps the crew.
func NewExecutor(c *Crew) *Executor { return &Executor{crew: c} }

// CanPerform implements exec.Executor: technicians perform every action on
// the ladder, including the cable and switch work robots cannot do.
func (e *Executor) CanPerform(faults.Action) bool { return true }

// Claim implements exec.Executor: an idle technician, or nil. Technicians
// dispatch anywhere in the hall, so the location is not consulted.
func (e *Executor) Claim(topology.Location) exec.Actor {
	t := e.crew.FindTech()
	if t == nil {
		return nil
	}
	return techActor{t}
}

// Execute implements exec.Executor.
func (e *Executor) Execute(a exec.Actor, t exec.Task, done func(exec.Outcome)) {
	tech := a.(techActor).t
	e.crew.Execute(tech, Task{Link: t.Link, End: t.End, Action: t.Action}, func(out Outcome) {
		done(exec.Outcome{
			Actor:     out.Tech.Name,
			Task:      t,
			Started:   out.Started,
			Finished:  out.Finished,
			Completed: out.Completed,
			Fixed:     out.Result.Fixed,
			Stockout:  out.Stockout,
			Touched:   len(out.Effects),
			Note:      out.Result.Note,
		})
	})
}

// OnShift implements exec.Shifted.
func (e *Executor) OnShift(at sim.Time) bool { return e.crew.OnShift(at) }

// BusyInRow implements exec.RowOccupancy.
func (e *Executor) BusyInRow(row int) int { return e.crew.TechniciansInRow(row) }

// ClaimOperator implements exec.OperatorSource: reserve a technician to
// operate a Level-1 robotic unit.
func (e *Executor) ClaimOperator() (exec.Operator, bool) {
	t := e.crew.FindTech()
	if t == nil {
		return nil, false
	}
	t.Reserve()
	return techOperator{crew: e.crew, t: t}, true
}

// EstimateDuration implements exec.DurationEstimator: the crew's
// deterministic nominal dispatch+walk+work latency for the action,
// including the off-shift on-call surcharge.
func (e *Executor) EstimateDuration(_ exec.Actor, t exec.Task) sim.Time {
	return e.crew.EstimateExecDuration(t.Action)
}

// techActor lifts a Technician (whose Name is a field) to exec.Actor.
type techActor struct{ t *Technician }

func (a techActor) Name() string    { return a.t.Name }
func (a techActor) Available() bool { return a.t.Available() }

// techOperator is a reserved technician operating a robot.
type techOperator struct {
	crew *Crew
	t    *Technician
}

func (o techOperator) ArrivalDelay(at sim.Time) sim.Time { return o.crew.DispatchDelay(at) }
func (o techOperator) Release()                          { o.t.Release() }
