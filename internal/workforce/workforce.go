// Package workforce models today's baseline: human technicians working
// repair tickets (§1). Technicians can perform every action on the
// escalation ladder — including the cable and switch work robots cannot do —
// but they work shifts, take hours to dispatch, handle hardware roughly
// (full touch-cascade risk, §1), and occasionally service the wrong end.
package workforce

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/inventory"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Task is one physical repair assignment for a technician.
type Task struct {
	Link   *topology.Link
	End    faults.End
	Action faults.Action
}

// Port returns the port the task works at.
func (t Task) Port() *topology.Port { return t.End.Port(t.Link) }

// Outcome reports what a technician accomplished.
type Outcome struct {
	Tech      *Technician
	Task      Task
	Started   sim.Time
	Finished  sim.Time
	Completed bool
	Result    faults.RepairResult
	WrongEnd  bool // the technician serviced the opposite end by mistake
	Stockout  bool
	Effects   []faults.CascadeEffect
}

// Duration is the wall-clock the task took.
func (o Outcome) Duration() sim.Time { return o.Finished - o.Started }

// Technician is one human worker.
type Technician struct {
	Name string
	Loc  topology.Location

	busy bool

	TasksDone sim.Time // total busy time
	Count     int
}

// Available reports whether the technician can take a task now (shift
// status is the crew's concern).
func (t *Technician) Available() bool { return !t.busy }

// String returns the technician's name and state.
func (t *Technician) String() string {
	if t.busy {
		return t.Name + "(busy)"
	}
	return t.Name + "(idle)"
}

// Config calibrates the human baseline. Durations are seconds unless noted.
type Config struct {
	// Shift hours (local): technicians are on site in [ShiftStartH,
	// ShiftEndH) every day.
	ShiftStartH, ShiftEndH int
	// OnCallDelay is the extra dispatch latency (hours) for emergency
	// callout outside shift hours.
	OnCallDelay sim.Dist
	// DispatchOverhead is the on-shift latency (hours) from assignment to
	// hands-on-hardware: triage, walking, gowning, tool pickup.
	DispatchOverhead sim.Dist

	WalkSpeedMps float64

	// Action durations (seconds), hands-on once at the rack.
	Reseat        sim.Dist
	Clean         sim.Dist
	ReplaceXcvr   sim.Dist
	ReplaceCable  sim.Dist
	ReplaceSwitch sim.Dist

	// WrongEndProb is the chance the technician services the opposite end
	// (mislabeled ports, mirrored racks — ordinary human error).
	WrongEndProb float64
}

// DefaultConfig returns the calibrated human baseline: minutes of hands-on
// work buried under hours of dispatch latency, which is why today's service
// windows are hours-to-days (§1).
func DefaultConfig() Config {
	return Config{
		ShiftStartH:      8,
		ShiftEndH:        18,
		OnCallDelay:      sim.Clamped{Base: sim.LogNormal{Mu: 1.1, Sigma: 0.5}, Lo: 1, Hi: 10},  // ~3h median
		DispatchOverhead: sim.Clamped{Base: sim.LogNormal{Mu: 0.2, Sigma: 0.6}, Lo: 0.4, Hi: 6}, // ~1.2h median
		WalkSpeedMps:     1.2,
		Reseat:           sim.Triangular{Lo: 240, Mode: 480, Hi: 1200},
		Clean:            sim.Triangular{Lo: 900, Mode: 1800, Hi: 3600},
		ReplaceXcvr:      sim.Triangular{Lo: 600, Mode: 1200, Hi: 2400},
		ReplaceCable:     sim.Triangular{Lo: 2 * 3600, Mode: 4 * 3600, Hi: 8 * 3600},
		ReplaceSwitch:    sim.Triangular{Lo: 2 * 3600, Mode: 5 * 3600, Hi: 10 * 3600},
		WrongEndProb:     0.05,
	}
}

// Crew is the technician pool for one hall.
type Crew struct {
	eng  *sim.Engine
	net  *topology.Network
	inj  *faults.Injector
	pool *inventory.Pool
	cfg  Config

	techs []*Technician

	// activeRows counts technicians currently hands-on per row, for the
	// human-robot safety interlock (§3.4).
	activeRows map[int]int

	Outcomes  int
	WrongEnds int
}

// NewCrew creates a crew with n technicians based at the hall entrance.
func NewCrew(eng *sim.Engine, net *topology.Network, inj *faults.Injector, pool *inventory.Pool, cfg Config, n int) *Crew {
	c := &Crew{eng: eng, net: net, inj: inj, pool: pool, cfg: cfg,
		activeRows: make(map[int]int)}
	for i := 0; i < n; i++ {
		c.techs = append(c.techs, &Technician{Name: fmt.Sprintf("tech-%d", i)})
	}
	return c
}

// Techs returns the crew.
func (c *Crew) Techs() []*Technician { return c.techs }

// FindTech returns an idle technician, or nil. Shift status does not gate
// availability — off-shift dispatch just costs the on-call delay.
func (c *Crew) FindTech() *Technician {
	for _, t := range c.techs {
		if t.Available() {
			return t
		}
	}
	return nil
}

// OnShift reports whether the given instant falls in shift hours.
func (c *Crew) OnShift(at sim.Time) bool {
	h := int(at.Hours()) % 24
	return h >= c.cfg.ShiftStartH && h < c.cfg.ShiftEndH
}

// DispatchDelay samples the assignment-to-hands-on latency for a dispatch
// at the given instant.
func (c *Crew) DispatchDelay(at sim.Time) sim.Time {
	rng := c.rng()
	hours := c.cfg.DispatchOverhead.Sample(rng)
	if !c.OnShift(at) {
		hours += c.cfg.OnCallDelay.Sample(rng)
	}
	return sim.Time(hours * float64(sim.Hour))
}

// actionDuration samples hands-on time for an action.
func (c *Crew) actionDuration(a faults.Action) sim.Time {
	var d sim.Dist
	switch a {
	case faults.Reseat:
		d = c.cfg.Reseat
	case faults.Clean:
		d = c.cfg.Clean
	case faults.ReplaceXcvr:
		d = c.cfg.ReplaceXcvr
	case faults.ReplaceCable:
		d = c.cfg.ReplaceCable
	default:
		d = c.cfg.ReplaceSwitch
	}
	return sim.SampleDuration(d, c.rng())
}

// EstimateDuration predicts dispatch+work time for scheduling.
func (c *Crew) EstimateDuration(a faults.Action) sim.Time {
	base := sim.MeanDuration(c.cfg.DispatchOverhead)*3600 + sim.MeanDuration(actionDist(c.cfg, a))
	return base
}

// EstimateExecDuration bounds the nominal end-to-end latency of one Execute
// call, for watchdog arming: mean dispatch overhead plus the mean on-call
// surcharge (the estimate must cover off-shift dispatches too), a walk
// margin across the hall, and the action's mean hands-on time. Unlike
// DispatchDelay it never samples — estimates feed sim-time deadlines, and a
// noisy estimate would perturb runs that never time out.
func (c *Crew) EstimateExecDuration(a faults.Action) sim.Time {
	d := sim.MeanDuration(c.cfg.DispatchOverhead)*3600 + sim.MeanDuration(c.cfg.OnCallDelay)*3600
	d += 30 * sim.Minute
	d += sim.MeanDuration(actionDist(c.cfg, a))
	return d
}

func actionDist(cfg Config, a faults.Action) sim.Dist {
	switch a {
	case faults.Reseat:
		return cfg.Reseat
	case faults.Clean:
		return cfg.Clean
	case faults.ReplaceXcvr:
		return cfg.ReplaceXcvr
	case faults.ReplaceCable:
		return cfg.ReplaceCable
	default:
		return cfg.ReplaceSwitch
	}
}

// Execute dispatches a technician on a task asynchronously; done receives
// the outcome. It panics if the technician is busy.
func (c *Crew) Execute(tech *Technician, task Task, done func(Outcome)) {
	if !tech.Available() {
		panic(fmt.Sprintf("workforce: %s busy", tech))
	}
	tech.busy = true
	out := Outcome{Tech: tech, Task: task, Started: c.eng.Now()}
	// Parts are drawn from the depot before dispatch; a stockout is known
	// immediately, not after hours of travel.
	if c.pool != nil {
		if part, needs := partFor(task.Action); needs && !c.pool.Take(part) {
			out.Stockout = true
			c.finish(tech, out, done)
			return
		}
	}
	dispatch := c.DispatchDelay(c.eng.Now())
	c.eng.After(dispatch, "tech-dispatch", func() {
		// Walk to the rack.
		loc := task.Port().Device.Loc
		walk := sim.Time(c.net.Layout.TravelDistanceM(tech.Loc, loc) / c.cfg.WalkSpeedMps * float64(sim.Second))
		c.eng.After(walk, "tech-walk", func() {
			tech.Loc = loc
			c.handsOn(tech, task, out, done)
		})
	})
}

// TechniciansInRow reports how many technicians are hands-on in a row right
// now. Robots consult it before moving: humans and robots do not share a
// row (§3.4, "safety is a major concern when humans and robots co-exist").
func (c *Crew) TechniciansInRow(row int) int { return c.activeRows[row] }

// handsOn performs the physical action.
func (c *Crew) handsOn(tech *Technician, task Task, out Outcome, done func(Outcome)) {
	rng := c.rng()
	end := task.End
	if rng.Bernoulli(c.cfg.WrongEndProb) {
		end = end.Opposite()
		out.WrongEnd = true
		c.WrongEnds++
	}
	// Reaching in disturbs neighbours at full (rough) intensity.
	out.Effects = append(out.Effects, c.inj.Touch(task.Port(), false)...)
	c.inj.BeginRepair(task.Link)
	row := task.Port().Device.Loc.Row
	c.activeRows[row]++
	work := c.actionDuration(task.Action)
	c.eng.After(work, "tech-work", func() {
		c.activeRows[row]--
		if task.Action == faults.ReplaceCable {
			// Pulling a new cable through the trays disturbs tray-mates.
			out.Effects = append(out.Effects, c.inj.TouchTray(task.Link, false)...)
		}
		res := c.inj.FinishRepair(task.Link, task.Action, end)
		out.Result = res
		out.Completed = true
		// Withdrawal touch.
		out.Effects = append(out.Effects, c.inj.Touch(task.Port(), false)...)
		c.finish(tech, out, done)
	})
}

func (c *Crew) finish(tech *Technician, out Outcome, done func(Outcome)) {
	out.Finished = c.eng.Now()
	tech.busy = false
	tech.Count++
	tech.TasksDone += out.Duration()
	c.Outcomes++
	if done != nil {
		done(out)
	}
}

func (c *Crew) rng() *sim.Stream { return c.eng.RNG("workforce") }

// partFor maps an action to the spare part it consumes.
func partFor(a faults.Action) (inventory.PartKind, bool) {
	switch a {
	case faults.ReplaceXcvr:
		return inventory.PartXcvr, true
	case faults.ReplaceCable:
		return inventory.PartCable, true
	case faults.ReplaceSwitchPort:
		return inventory.PartLineCard, true
	}
	return 0, false
}

// Reserve marks the technician busy outside a normal task — e.g. operating
// or supervising a Level-1 robotic device (§2.1). Release with Release.
func (t *Technician) Reserve() {
	if t.busy {
		panic(fmt.Sprintf("workforce: reserve busy technician %s", t.Name))
	}
	t.busy = true
}

// Release returns a Reserved technician to the pool.
func (t *Technician) Release() { t.busy = false }
