package workforce

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/inventory"
	"repro/internal/sim"
	"repro/internal/topology"
)

type world struct {
	eng  *sim.Engine
	net  *topology.Network
	inj  *faults.Injector
	crew *Crew
	pool *inventory.Pool
}

func newWorld(t *testing.T, seed uint64, techs int, mutate func(*faults.Config, *Config)) *world {
	t.Helper()
	n, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 4, Spines: 2, HostsPerLeaf: 4, Uplinks: 1,
		FabricGbps: 400, HostGbps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(seed)
	fcfg := faults.DefaultConfig()
	fcfg.AnnualRate = map[faults.Cause]float64{}
	ccfg := DefaultConfig()
	if mutate != nil {
		mutate(&fcfg, &ccfg)
	}
	inj := faults.NewInjector(eng, n, fcfg)
	pool := inventory.NewPool(eng, inventory.DefaultStock(n), 2*sim.Day)
	crew := NewCrew(eng, n, inj, pool, ccfg, techs)
	return &world{eng: eng, net: n, inj: inj, crew: crew, pool: pool}
}

func (w *world) sepLink(t *testing.T) *topology.Link {
	t.Helper()
	for _, l := range w.net.SwitchLinks() {
		if l.HasSeparableFiber() {
			return l
		}
	}
	t.Fatal("no separable link")
	return nil
}

func (w *world) run(t *testing.T, task Task) Outcome {
	t.Helper()
	tech := w.crew.FindTech()
	if tech == nil {
		t.Fatal("no tech")
	}
	var out *Outcome
	w.crew.Execute(tech, task, func(o Outcome) { out = &o })
	w.eng.RunUntil(w.eng.Now() + 3*sim.Day)
	if out == nil {
		t.Fatal("task never finished")
	}
	return *out
}

func TestHumanRepairTakesHours(t *testing.T) {
	w := newWorld(t, 1, 2, func(fc *faults.Config, cc *Config) {
		fc.FixProb[faults.Reseat][faults.Oxidation] = 1
		cc.WrongEndProb = 0
	})
	l := w.sepLink(t)
	w.inj.InduceFault(l, faults.Oxidation)
	st := w.inj.State(l.ID)
	// Start mid-shift (hour 10).
	w.eng.RunUntil(10 * sim.Hour)
	out := w.run(t, Task{Link: l, End: st.CauseEnd, Action: faults.Reseat})
	if !out.Completed || !out.Result.Fixed {
		t.Fatalf("outcome: %+v", out)
	}
	// Dominated by dispatch overhead: tens of minutes to hours, far beyond
	// a robot's minutes.
	if d := out.Duration(); d < 20*sim.Minute || d > 10*sim.Hour {
		t.Fatalf("on-shift human reseat took %v", d)
	}
	if w.inj.Observable(l.ID) != faults.Healthy {
		t.Fatal("link not healthy")
	}
}

func TestOffShiftDispatchSlower(t *testing.T) {
	var onShift, offShift sim.Time
	for _, start := range []sim.Time{12 * sim.Hour, 2 * sim.Hour} { // noon vs 2am
		w := newWorld(t, 2, 1, func(fc *faults.Config, cc *Config) {
			fc.FixProb[faults.Reseat][faults.Oxidation] = 1
			cc.WrongEndProb = 0
		})
		l := w.sepLink(t)
		w.eng.RunUntil(start)
		w.inj.InduceFault(l, faults.Oxidation)
		st := w.inj.State(l.ID)
		out := w.run(t, Task{Link: l, End: st.CauseEnd, Action: faults.Reseat})
		if start == 12*sim.Hour {
			onShift = out.Duration()
		} else {
			offShift = out.Duration()
		}
	}
	if offShift <= onShift {
		t.Fatalf("off-shift (%v) not slower than on-shift (%v)", offShift, onShift)
	}
}

func TestOnShiftWindow(t *testing.T) {
	w := newWorld(t, 3, 1, nil)
	if w.crew.OnShift(3 * sim.Hour) {
		t.Fatal("3am on shift")
	}
	if !w.crew.OnShift(10 * sim.Hour) {
		t.Fatal("10am off shift")
	}
	if !w.crew.OnShift(sim.Day + 9*sim.Hour) {
		t.Fatal("next-day 9am off shift")
	}
	if w.crew.OnShift(sim.Day + 20*sim.Hour) {
		t.Fatal("8pm on shift")
	}
}

func TestWrongEndError(t *testing.T) {
	w := newWorld(t, 4, 1, func(fc *faults.Config, cc *Config) {
		cc.WrongEndProb = 1
		fc.FixProb[faults.Clean][faults.Contamination] = 1
	})
	l := w.sepLink(t)
	w.inj.InduceFault(l, faults.Contamination)
	st := w.inj.State(l.ID)
	out := w.run(t, Task{Link: l, End: st.CauseEnd, Action: faults.Clean})
	if !out.WrongEnd {
		t.Fatal("wrong-end error not recorded")
	}
	if out.Result.Fixed {
		t.Fatal("cleaning the wrong end fixed the link")
	}
	if w.crew.WrongEnds != 1 {
		t.Fatal("wrong end not counted")
	}
}

func TestHumanCanReplaceCableAndDisturbsTray(t *testing.T) {
	w := newWorld(t, 5, 1, func(fc *faults.Config, cc *Config) {
		cc.WrongEndProb = 0
		fc.TrayDisturbProb = 1
		fc.TouchTransientProb = 0 // isolate tray effects
	})
	l := w.sepLink(t)
	if len(w.net.LinksSharingTray(l)) == 0 {
		t.Skip("no tray mates in this build")
	}
	w.inj.InduceFault(l, faults.CableDamaged)
	out := w.run(t, Task{Link: l, End: faults.EndA, Action: faults.ReplaceCable})
	if !out.Completed || !out.Result.Fixed {
		t.Fatalf("outcome: %+v", out)
	}
	if len(out.Effects) == 0 {
		t.Fatal("cable pull disturbed nothing with TrayDisturbProb=1")
	}
	if d := out.Duration(); d < 2*sim.Hour {
		t.Fatalf("cable replacement took only %v", d)
	}
	if w.pool.Consumed[inventory.PartCable] != 1 {
		t.Fatal("cable not consumed from stock")
	}
}

func TestHumanTouchCausesCascades(t *testing.T) {
	w := newWorld(t, 6, 1, func(fc *faults.Config, cc *Config) {
		fc.TouchTransientProb = 1
		cc.WrongEndProb = 0
	})
	l := w.sepLink(t)
	w.inj.InduceFault(l, faults.Oxidation)
	st := w.inj.State(l.ID)
	out := w.run(t, Task{Link: l, End: st.CauseEnd, Action: faults.Reseat})
	if len(out.Effects) == 0 {
		t.Fatal("rough human touch caused no cascades with p=1")
	}
}

func TestStockout(t *testing.T) {
	w := newWorld(t, 7, 1, func(fc *faults.Config, cc *Config) { cc.WrongEndProb = 0 })
	l := w.sepLink(t)
	w.inj.InduceFault(l, faults.XcvrDead)
	st := w.inj.State(l.ID)
	for w.pool.Stock(inventory.PartXcvr) > 0 {
		w.pool.Take(inventory.PartXcvr)
	}
	out := w.run(t, Task{Link: l, End: st.CauseEnd, Action: faults.ReplaceXcvr})
	if out.Completed || !out.Stockout {
		t.Fatalf("outcome: %+v", out)
	}
	if w.inj.State(l.ID).InRepair {
		t.Fatal("stockout left link in repair")
	}
}

func TestBusyTechPanics(t *testing.T) {
	w := newWorld(t, 8, 1, nil)
	l := w.sepLink(t)
	tech := w.crew.FindTech()
	w.crew.Execute(tech, Task{Link: l, End: faults.EndA, Action: faults.Reseat}, nil)
	if w.crew.FindTech() != nil {
		t.Fatal("busy tech still findable")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on double execute")
		}
	}()
	w.crew.Execute(tech, Task{Link: l, End: faults.EndA, Action: faults.Reseat}, nil)
}

func TestEstimateAndStrings(t *testing.T) {
	w := newWorld(t, 9, 1, nil)
	if w.crew.EstimateDuration(faults.Reseat) <= 0 {
		t.Fatal("estimate")
	}
	if w.crew.EstimateDuration(faults.ReplaceCable) <= w.crew.EstimateDuration(faults.Reseat) {
		t.Fatal("cable estimate not larger")
	}
	tech := w.crew.Techs()[0]
	if tech.String() == "" {
		t.Error("tech string")
	}
	tech.busy = true
	if tech.String() == "" {
		t.Error("busy tech string")
	}
}
