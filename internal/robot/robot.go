// Package robot simulates the modular maintenance robot fleet of the paper:
// transceiver-manipulation arms (Fig. 1), fiber/transceiver cleaning units
// (Fig. 2) and the mobility that carries them, executing repair tasks as
// timed sequences of primitives with stochastic durations and failures.
//
// The fidelity contract with the paper:
//
//   - Robots are gentle: they part cables deliberately and press only on the
//     transceiver body, so their touch-cascade factor is a small fraction of
//     a human's (§3.3.1).
//   - The cleaning workflow is detach → inspect → clean (wet/dry) → verify →
//     reassemble, and when verification keeps failing the robot requests
//     human support (§3.3.2).
//   - Robots can reseat, clean and swap transceivers from carried spares,
//     but do not lay new fiber or replace switch hardware (§3.3); those
//     actions escalate to the human workforce at any automation level.
//   - Units have a mobility scope: rack, row, or hall (§3.4).
package robot

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/inventory"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/vision"
)

// Scope is how far a unit can move from its home position (§3.4).
type Scope uint8

// Mobility scopes.
const (
	RackScope Scope = iota
	RowScope
	HallScope
)

var scopeNames = [...]string{RackScope: "rack", RowScope: "row", HallScope: "hall"}

// String returns the scope name.
func (s Scope) String() string {
	if int(s) < len(scopeNames) {
		return scopeNames[s]
	}
	return fmt.Sprintf("scope(%d)", uint8(s))
}

// Unit is one robotic unit: a manipulator arm with an integrated cleaning
// station, deployable at a scope.
type Unit struct {
	Name  string
	Scope Scope
	Home  topology.Location
	Loc   topology.Location

	SpeedMps float64

	busy     bool
	broken   bool
	charging bool
	tasks    int // since last charge

	TasksDone   int
	TasksFailed int
	BusyTime    sim.Time
}

// Available reports whether the unit can accept a task now.
func (u *Unit) Available() bool { return !u.busy && !u.broken && !u.charging }

// String returns the unit name and state.
func (u *Unit) String() string {
	state := "idle"
	switch {
	case u.broken:
		state = "broken"
	case u.charging:
		state = "charging"
	case u.busy:
		state = "busy"
	}
	return fmt.Sprintf("%s(%s,%s)", u.Name, u.Scope, state)
}

// CanReach reports whether the unit's scope covers a location.
func (u *Unit) CanReach(loc topology.Location) bool {
	switch u.Scope {
	case RackScope:
		return u.Home.Row == loc.Row && u.Home.Rack == loc.Rack
	case RowScope:
		return u.Home.Row == loc.Row
	default:
		return true
	}
}

// Config calibrates primitive durations and reliability. Durations are in
// seconds.
type Config struct {
	NavSetup    sim.Dist // positioning at the rack after arriving
	PartCables  sim.Dist // parting cables to reach the port
	Identify    sim.Dist // perception pass
	Unplug      sim.Dist
	Plug        sim.Dist
	ReseatDwell sim.Dist // power-drain dwell between unplug and replug
	CleanPass   sim.Dist // one wet or dry cleaning pass, per end-face
	SwapSpare   sim.Dist // fetch carried spare and exchange modules

	MaxIdentifyRetries int
	MaxCleanRetries    int

	// PrimitiveFailProb is the per-primitive mechanical failure
	// probability; a primitive is retried once and then the task aborts.
	PrimitiveFailProb float64
	// BreakProb is the probability that an aborted task leaves the unit
	// broken (out of service for RepairTime).
	BreakProb  float64
	RepairTime sim.Time

	// BatteryTasks is how many tasks a unit runs before recharging for
	// ChargeTime.
	BatteryTasks int
	ChargeTime   sim.Time
}

// DefaultConfig returns calibrated defaults. The end-to-end reseat runs a
// couple of minutes and a full manipulate+clean cycle "a few minutes"
// (§3.3.2).
func DefaultConfig() Config {
	return Config{
		NavSetup:    sim.Triangular{Lo: 20, Mode: 35, Hi: 60},
		PartCables:  sim.Triangular{Lo: 10, Mode: 20, Hi: 45},
		Identify:    sim.Triangular{Lo: 3, Mode: 5, Hi: 10},
		Unplug:      sim.Triangular{Lo: 8, Mode: 12, Hi: 20},
		Plug:        sim.Triangular{Lo: 8, Mode: 12, Hi: 25},
		ReseatDwell: sim.Const(10),
		CleanPass:   sim.Triangular{Lo: 15, Mode: 25, Hi: 40},
		SwapSpare:   sim.Triangular{Lo: 30, Mode: 45, Hi: 90},

		MaxIdentifyRetries: 2,
		MaxCleanRetries:    2,
		PrimitiveFailProb:  0.01,
		BreakProb:          0.1,
		RepairTime:         8 * sim.Hour,
		BatteryTasks:       30,
		ChargeTime:         45 * sim.Minute,
	}
}

// Task is one physical repair assignment.
type Task struct {
	Link   *topology.Link
	End    faults.End
	Action faults.Action
}

// Port returns the port the task works at.
func (t Task) Port() *topology.Port { return t.End.Port(t.Link) }

// Outcome reports what happened.
type Outcome struct {
	Unit      *Unit
	Task      Task
	Started   sim.Time
	Finished  sim.Time
	Completed bool // the action was physically performed
	Result    faults.RepairResult
	// NeedsHuman is set when the robot gives up: perception failure,
	// repeated verification failure, mechanical abort, or an action outside
	// robotic capability.
	NeedsHuman bool
	// Stockout is set when the task needs a spare the pool cannot supply.
	Stockout bool
	Effects  []faults.CascadeEffect
	Note     string
}

// Duration is the wall-clock the task occupied the unit.
func (o Outcome) Duration() sim.Time { return o.Finished - o.Started }

// CanPerform reports whether the robot fleet can execute an action at all.
func CanPerform(a faults.Action) bool {
	switch a {
	case faults.Reseat, faults.Clean, faults.ReplaceXcvr:
		return true
	default:
		return false // fiber laying and switch work stay human (§3.3)
	}
}

// Fleet owns the robotic units and executes tasks against the physical
// world (fault injector), perception (vision) and spares (inventory).
type Fleet struct {
	eng  *sim.Engine
	net  *topology.Network
	inj  *faults.Injector
	vis  *vision.System
	pool *inventory.Pool
	cfg  Config

	units []*Unit

	// Stats
	Outcomes      int
	HumanEscal    int
	BrokenEvents  int
	CablesTouched int
}

// NewFleet creates an empty fleet.
func NewFleet(eng *sim.Engine, net *topology.Network, inj *faults.Injector, vis *vision.System, pool *inventory.Pool, cfg Config) *Fleet {
	return &Fleet{eng: eng, net: net, inj: inj, vis: vis, pool: pool, cfg: cfg}
}

// AddUnit deploys a unit at home with the given scope.
func (f *Fleet) AddUnit(name string, scope Scope, home topology.Location) *Unit {
	u := &Unit{Name: name, Scope: scope, Home: home, Loc: home, SpeedMps: 0.5}
	f.units = append(f.units, u)
	return u
}

// DeployPerRow adds one row-scope unit per row that contains equipment.
func (f *Fleet) DeployPerRow() []*Unit {
	rows := map[int]bool{}
	for _, d := range f.net.Devices {
		rows[d.Loc.Row] = true
	}
	var out []*Unit
	for row := 0; ; row++ {
		if !rows[row] {
			if len(out) == len(rows) {
				break
			}
			continue
		}
		out = append(out, f.AddUnit(fmt.Sprintf("robot-r%d", row), RowScope,
			topology.Location{Row: row, Rack: 0, RU: 0}))
	}
	return out
}

// Units returns the fleet's units.
func (f *Fleet) Units() []*Unit { return f.units }

// AvailableUnits counts units that are idle and serviceable right now.
func (f *Fleet) AvailableUnits() int {
	n := 0
	for _, u := range f.units {
		if u.Available() {
			n++
		}
	}
	return n
}

// RemoveUnit withdraws the unit from service, preserving deployment order
// of the rest. Only an idle, serviceable unit can be withdrawn — removing a
// unit mid-task would strand its work item — so it returns false for busy,
// broken, charging, or unknown units. Cross-region robot transfers use this
// on the lending side.
func (f *Fleet) RemoveUnit(u *Unit) bool {
	if u == nil || !u.Available() {
		return false
	}
	for i, v := range f.units {
		if v == u {
			f.units = append(f.units[:i], f.units[i+1:]...)
			return true
		}
	}
	return false
}

// FindUnit returns an available unit that can reach the location, or nil.
func (f *Fleet) FindUnit(loc topology.Location) *Unit {
	for _, u := range f.units {
		if u.Available() && u.CanReach(loc) {
			return u
		}
	}
	return nil
}

// TravelTime returns how long the unit needs to reach a location.
func (f *Fleet) TravelTime(u *Unit, loc topology.Location) sim.Time {
	d := f.net.Layout.TravelDistanceM(u.Loc, loc)
	if u.SpeedMps <= 0 {
		return 0
	}
	return sim.Time(d / u.SpeedMps * float64(sim.Second))
}

// EstimateDuration predicts a task's duration for scheduling, using
// distribution means.
func (f *Fleet) EstimateDuration(u *Unit, t Task) sim.Time {
	d := f.TravelTime(u, t.Port().Device.Loc)
	d += sim.MeanDuration(f.cfg.NavSetup) + sim.MeanDuration(f.cfg.PartCables) +
		sim.MeanDuration(f.cfg.Identify) + sim.MeanDuration(f.cfg.Unplug) +
		sim.MeanDuration(f.cfg.Plug)
	switch t.Action {
	case faults.Reseat:
		d += sim.MeanDuration(f.cfg.ReseatDwell)
	case faults.Clean:
		d += 2*sim.MeanDuration(f.cfg.CleanPass) + 40*sim.Second // inspection
	case faults.ReplaceXcvr:
		d += sim.MeanDuration(f.cfg.SwapSpare) + sim.MeanDuration(f.cfg.CleanPass)
	}
	return d
}

func (f *Fleet) rng() *sim.Stream { return f.eng.RNG("robot") }
