package robot

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/inventory"
	"repro/internal/sim"
)

// Execute runs a task on a unit asynchronously: the unit becomes busy, the
// primitive sequence plays out over virtual time, and done receives the
// outcome. It panics if the unit is unavailable or cannot reach the work —
// the scheduler must check first.
func (f *Fleet) Execute(u *Unit, t Task, done func(Outcome)) {
	loc := t.Port().Device.Loc
	if !u.Available() {
		panic(fmt.Sprintf("robot: %s not available", u))
	}
	if !u.CanReach(loc) {
		panic(fmt.Sprintf("robot: %s cannot reach %s", u, loc))
	}
	u.busy = true
	run := &taskRun{
		f: f, u: u, t: t, done: done,
		out: Outcome{Unit: u, Task: t, Started: f.eng.Now()},
	}
	if !CanPerform(t.Action) {
		run.finish(false, true, "action beyond robotic capability")
		return
	}
	run.next(f.TravelTime(u, loc), "robot-navigate", func() {
		u.Loc = loc
		run.approach()
	})
}

// taskRun threads one task's primitive sequence through the event loop.
type taskRun struct {
	f   *Fleet
	u   *Unit
	t   Task
	out Outcome

	inRepair bool
	done     func(Outcome)
}

// Execute wires done through a small indirection so taskRun stays testable.
func (r *taskRun) next(d sim.Time, name string, fn func()) {
	r.f.eng.After(d, name, fn)
}

// dur samples a primitive duration.
func (r *taskRun) dur(dist sim.Dist) sim.Time {
	return sim.SampleDuration(dist, r.f.rng())
}

// primitiveOK rolls mechanical reliability: a failed primitive is retried
// once; a second failure aborts the task.
func (r *taskRun) primitiveOK() bool {
	rng := r.f.rng()
	if !rng.Bernoulli(r.f.cfg.PrimitiveFailProb) {
		return true
	}
	return !rng.Bernoulli(r.f.cfg.PrimitiveFailProb)
}

// approach: setup at the rack, part cables, identify the component.
func (r *taskRun) approach() {
	r.next(r.dur(r.f.cfg.NavSetup)+r.dur(r.f.cfg.PartCables), "robot-approach", func() {
		// Parting cables is a gentle touch with cascade risk.
		r.out.Effects = append(r.out.Effects, r.f.inj.Touch(r.t.Port(), true)...)
		r.f.CablesTouched += len(r.f.net.PortsNear(r.t.Port(), r.f.inj.Config().TouchRadiusM))
		r.identify(0)
	})
}

func (r *taskRun) identify(attempt int) {
	r.next(r.dur(r.f.cfg.Identify), "robot-identify", func() {
		occl := r.f.net.OcclusionAt(r.t.Port())
		// Recognition failure is systematic (unfamiliar backend variant),
		// so retries are correlated rather than independent draws.
		if r.f.vis.IdentifyWithRetries(r.t.Port(), occl, r.f.cfg.MaxIdentifyRetries) {
			r.manipulate()
			return
		}
		r.finish(false, true, "perception could not identify component")
	})
}

// manipulate performs the action-specific physical sequence.
func (r *taskRun) manipulate() {
	if !r.primitiveOK() {
		r.abortMechanical("grip failure")
		return
	}
	// Consumables and spares are checked before taking the link down.
	if r.f.pool != nil {
		switch r.t.Action {
		case faults.ReplaceXcvr:
			if !r.f.pool.Take(inventory.PartXcvr) {
				r.out.Stockout = true
				r.finish(false, false, "no spare transceiver in stock")
				return
			}
		case faults.Clean:
			if !r.f.pool.Take(inventory.PartCleaningSupplies) {
				r.out.Stockout = true
				r.finish(false, false, "no cleaning supplies in stock")
				return
			}
		}
	}
	r.f.inj.BeginRepair(r.t.Link)
	r.inRepair = true
	unplug := r.dur(r.f.cfg.Unplug)
	switch r.t.Action {
	case faults.Reseat:
		r.next(unplug+r.dur(r.f.cfg.ReseatDwell)+r.dur(r.f.cfg.Plug), "robot-reseat", func() {
			r.out.Effects = append(r.out.Effects, r.f.inj.Touch(r.t.Port(), true)...)
			r.applyAndFinish(faults.Reseat)
		})
	case faults.Clean:
		r.next(unplug, "robot-detach", func() { r.cleanCycle(0) })
	case faults.ReplaceXcvr:
		r.next(unplug+r.dur(r.f.cfg.SwapSpare)+r.dur(r.f.cfg.CleanPass)+r.dur(r.f.cfg.Plug), "robot-swap", func() {
			r.applyAndFinish(faults.ReplaceXcvr)
		})
	}
}

// cleanCycle is the cleaning unit's workflow: inspect, clean if needed,
// verify; retry until passing or give up to a human (§3.3.2).
func (r *taskRun) cleanCycle(attempt int) {
	if !r.primitiveOK() {
		r.abortMechanical("cleaning actuator failure")
		return
	}
	st := r.f.inj.State(r.t.Link.ID)
	pre := r.f.vis.InspectEndFace(r.t.Link.Cable, st.Ends[r.t.End].Dirt)
	passes := sim.Time(0)
	if !pre.Pass {
		passes = r.dur(r.f.cfg.CleanPass) + r.dur(r.f.cfg.CleanPass) // wet + dry
	}
	r.next(pre.Duration+passes, "robot-clean", func() {
		if r.inRepair {
			res := r.f.inj.FinishRepair(r.t.Link, faults.Clean, r.t.End)
			r.inRepair = false
			r.out.Result = res
		}
		// Verify: re-inspect the (possibly now clean) end.
		st := r.f.inj.State(r.t.Link.ID)
		post := r.f.vis.InspectEndFace(r.t.Link.Cable, st.Ends[r.t.End].Dirt)
		r.next(post.Duration, "robot-verify", func() {
			if post.Pass {
				if r.out.Result.Fixed {
					r.reassemble()
					return
				}
				// The end-face verifies clean but the link is still broken:
				// the cleaning was physically completed and the fault lies
				// elsewhere — a ladder matter, not a robot failure.
				r.reassembleThen(func() {
					r.finish(true, false, r.out.Result.Note)
				})
				return
			}
			if attempt < r.f.cfg.MaxCleanRetries {
				// Another cleaning round: re-open the repair.
				r.f.inj.BeginRepair(r.t.Link)
				r.inRepair = true
				r.cleanCycle(attempt + 1)
				return
			}
			// The robot cannot get the end-face to pass inspection: request
			// human support (§3.3.2).
			r.reassembleThen(func() {
				r.finish(r.out.Result.Fixed, true, "verification failed after retries")
			})
		})
	})
}

// applyAndFinish adjudicates the action and closes out with replug timing
// already spent.
func (r *taskRun) applyAndFinish(a faults.Action) {
	res := r.f.inj.FinishRepair(r.t.Link, a, r.t.End)
	r.inRepair = false
	r.out.Result = res
	r.finish(true, false, res.Note)
}

// reassemble replugs after cleaning and finishes successfully.
func (r *taskRun) reassemble() {
	r.reassembleThen(func() {
		r.finish(true, false, "")
	})
}

func (r *taskRun) reassembleThen(fn func()) {
	r.next(r.dur(r.f.cfg.Plug), "robot-reassemble", func() {
		r.out.Effects = append(r.out.Effects, r.f.inj.Touch(r.t.Port(), true)...)
		fn()
	})
}

// abortMechanical handles a primitive failure: release the hardware and
// possibly mark the unit broken.
func (r *taskRun) abortMechanical(note string) {
	if r.inRepair {
		r.f.inj.AbortRepair(r.t.Link)
		r.inRepair = false
	}
	if r.f.rng().Bernoulli(r.f.cfg.BreakProb) {
		r.u.broken = true
		r.f.BrokenEvents++
		r.f.eng.After(r.f.cfg.RepairTime, "robot-repaired", func() {
			r.u.broken = false
		})
	}
	r.finish(false, true, note)
}

// finish releases the unit, updates battery state and delivers the outcome.
func (r *taskRun) finish(completed, needsHuman bool, note string) {
	if r.inRepair {
		r.f.inj.AbortRepair(r.t.Link)
		r.inRepair = false
	}
	r.out.Completed = completed
	r.out.NeedsHuman = needsHuman
	if note != "" {
		r.out.Note = note
	}
	r.out.Finished = r.f.eng.Now()
	r.u.busy = false
	r.u.BusyTime += r.out.Duration()
	r.u.tasks++
	if completed {
		r.u.TasksDone++
	} else {
		r.u.TasksFailed++
	}
	if needsHuman {
		r.f.HumanEscal++
	}
	r.f.Outcomes++
	if r.f.cfg.BatteryTasks > 0 && r.u.tasks >= r.f.cfg.BatteryTasks && !r.u.broken {
		r.u.tasks = 0
		r.u.charging = true
		r.f.eng.After(r.f.cfg.ChargeTime, "robot-charged", func() {
			r.u.charging = false
		})
	}
	if r.doneFn() != nil {
		r.doneFn()(r.out)
	}
}

// doneFn is assigned by Execute; split out for clarity.
func (r *taskRun) doneFn() func(Outcome) { return r.done }
