package robot

import (
	"repro/internal/exec"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Executor adapts a Fleet to the pipeline's exec.Executor contract, so the
// Act stage can dispatch robotic work without importing this package.
type Executor struct {
	fleet *Fleet
}

// NewExecutor wraps the fleet.
func NewExecutor(f *Fleet) *Executor { return &Executor{fleet: f} }

// CanPerform implements exec.Executor.
func (e *Executor) CanPerform(a faults.Action) bool { return CanPerform(a) }

// Claim implements exec.Executor: an available unit that can reach the
// location, or nil. Units are not reserved by claiming.
func (e *Executor) Claim(loc topology.Location) exec.Actor {
	u := e.fleet.FindUnit(loc)
	if u == nil {
		return nil // untyped nil: a nil *Unit inside exec.Actor would be non-nil
	}
	return unitActor{u}
}

// Execute implements exec.Executor.
func (e *Executor) Execute(a exec.Actor, t exec.Task, done func(exec.Outcome)) {
	u := a.(unitActor).u
	e.fleet.Execute(u, Task{Link: t.Link, End: t.End, Action: t.Action}, func(out Outcome) {
		done(exec.Outcome{
			Actor:      out.Unit.Name,
			Task:       t,
			Started:    out.Started,
			Finished:   out.Finished,
			Completed:  out.Completed,
			Fixed:      out.Result.Fixed,
			NeedsHuman: out.NeedsHuman,
			Stockout:   out.Stockout,
			Touched:    len(out.Effects),
			Note:       out.Note,
		})
	})
}

// EstimateDuration implements exec.DurationEstimator: the fleet's
// deterministic scheduling estimate (mean primitive times plus travel) for
// the unit the dispatcher claimed.
func (e *Executor) EstimateDuration(a exec.Actor, t exec.Task) sim.Time {
	u := a.(unitActor).u
	return e.fleet.EstimateDuration(u, Task{Link: t.Link, End: t.End, Action: t.Action})
}

// unitActor lifts a Unit (whose Name is a field) to the exec.Actor
// interface.
type unitActor struct{ u *Unit }

func (a unitActor) Name() string    { return a.u.Name }
func (a unitActor) Available() bool { return a.u.Available() }
