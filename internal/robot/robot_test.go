package robot

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/inventory"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/vision"
)

type world struct {
	eng   *sim.Engine
	net   *topology.Network
	inj   *faults.Injector
	fleet *Fleet
	pool  *inventory.Pool
}

func newWorld(t *testing.T, seed uint64, mutate func(*faults.Config, *Config)) *world {
	t.Helper()
	n, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 4, Spines: 2, HostsPerLeaf: 4, Uplinks: 1,
		FabricGbps: 400, HostGbps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(seed)
	fcfg := faults.DefaultConfig()
	fcfg.AnnualRate = map[faults.Cause]float64{}
	rcfg := DefaultConfig()
	if mutate != nil {
		mutate(&fcfg, &rcfg)
	}
	inj := faults.NewInjector(eng, n, fcfg)
	vis := vision.New(eng, vision.DefaultConfig(), 8)
	pool := inventory.NewPool(eng, inventory.DefaultStock(n), 2*sim.Day)
	fleet := NewFleet(eng, n, inj, vis, pool, rcfg)
	return &world{eng: eng, net: n, inj: inj, fleet: fleet, pool: pool}
}

func (w *world) sepLink(t *testing.T) *topology.Link {
	t.Helper()
	for _, l := range w.net.SwitchLinks() {
		if l.HasSeparableFiber() {
			return l
		}
	}
	t.Fatal("no separable link")
	return nil
}

func (w *world) hallUnit() *Unit {
	return w.fleet.AddUnit("r0", HallScope, topology.Location{Row: 0, Rack: 0})
}

// runTask executes a task and returns the outcome once the engine settles.
func (w *world) runTask(t *testing.T, u *Unit, task Task) Outcome {
	t.Helper()
	var out *Outcome
	w.fleet.Execute(u, task, func(o Outcome) { out = &o })
	w.eng.RunUntil(w.eng.Now() + 12*sim.Hour)
	if out == nil {
		t.Fatal("task never completed")
	}
	return *out
}

func TestReseatFixesOxidation(t *testing.T) {
	w := newWorld(t, 1, func(fc *faults.Config, rc *Config) {
		fc.FixProb[faults.Reseat][faults.Oxidation] = 1
		rc.PrimitiveFailProb = 0
	})
	l := w.sepLink(t)
	w.inj.InduceFault(l, faults.Oxidation)
	st := w.inj.State(l.ID)
	u := w.hallUnit()
	out := w.runTask(t, u, Task{Link: l, End: st.CauseEnd, Action: faults.Reseat})
	if !out.Completed || !out.Result.Fixed {
		t.Fatalf("outcome: %+v", out)
	}
	if w.inj.Observable(l.ID) != faults.Healthy {
		t.Fatal("link not healthy after reseat")
	}
	// Duration plausibility: minutes, not hours and not seconds.
	if d := out.Duration(); d < 30*sim.Second || d > 15*sim.Minute {
		t.Fatalf("reseat duration %v", d)
	}
	if u.TasksDone != 1 || u.BusyTime == 0 {
		t.Fatalf("unit stats: %+v", u)
	}
	if !u.Available() {
		t.Fatal("unit not released")
	}
}

func TestCleanCycleFixesContamination(t *testing.T) {
	w := newWorld(t, 2, func(fc *faults.Config, rc *Config) {
		fc.FixProb[faults.Clean][faults.Contamination] = 1
		fc.CleanRecontaminate = 0
		rc.PrimitiveFailProb = 0
	})
	l := w.sepLink(t)
	w.inj.InduceFault(l, faults.Contamination)
	st := w.inj.State(l.ID)
	out := w.runTask(t, w.hallUnit(), Task{Link: l, End: st.CauseEnd, Action: faults.Clean})
	if !out.Completed || !out.Result.Fixed || out.NeedsHuman {
		t.Fatalf("outcome: %+v note=%s", out, out.Note)
	}
	if w.inj.State(l.ID).Ends[st.CauseEnd].Dirt != 0 {
		t.Fatal("dirt left after verified clean")
	}
	// Paper: the entire operation takes a few minutes.
	if d := out.Duration(); d < sim.Minute || d > 20*sim.Minute {
		t.Fatalf("clean cycle duration %v", d)
	}
}

func TestReplaceXcvrConsumesSpare(t *testing.T) {
	w := newWorld(t, 3, func(fc *faults.Config, rc *Config) {
		rc.PrimitiveFailProb = 0
	})
	l := w.sepLink(t)
	w.inj.InduceFault(l, faults.XcvrDead)
	st := w.inj.State(l.ID)
	before := w.pool.Stock(inventory.PartXcvr)
	out := w.runTask(t, w.hallUnit(), Task{Link: l, End: st.CauseEnd, Action: faults.ReplaceXcvr})
	if !out.Completed || !out.Result.Fixed {
		t.Fatalf("outcome: %+v", out)
	}
	if w.pool.Stock(inventory.PartXcvr) != before-1 {
		t.Fatal("spare not consumed")
	}
}

func TestStockoutReportsWithoutTouchingLink(t *testing.T) {
	w := newWorld(t, 4, func(fc *faults.Config, rc *Config) {
		rc.PrimitiveFailProb = 0
	})
	l := w.sepLink(t)
	w.inj.InduceFault(l, faults.XcvrDead)
	st := w.inj.State(l.ID)
	// Drain the pool.
	for w.pool.Stock(inventory.PartXcvr) > 0 {
		w.pool.Take(inventory.PartXcvr)
	}
	out := w.runTask(t, w.hallUnit(), Task{Link: l, End: st.CauseEnd, Action: faults.ReplaceXcvr})
	if out.Completed || !out.Stockout {
		t.Fatalf("outcome: %+v", out)
	}
	if w.inj.State(l.ID).InRepair {
		t.Fatal("link left in repair state")
	}
}

func TestHumanOnlyActionsEscalate(t *testing.T) {
	w := newWorld(t, 5, nil)
	l := w.sepLink(t)
	w.inj.InduceFault(l, faults.CableDamaged)
	out := w.runTask(t, w.hallUnit(), Task{Link: l, End: faults.EndA, Action: faults.ReplaceCable})
	if !out.NeedsHuman || out.Completed {
		t.Fatalf("outcome: %+v", out)
	}
	if w.fleet.HumanEscal != 1 {
		t.Fatal("escalation not counted")
	}
	if !CanPerform(faults.Reseat) || CanPerform(faults.ReplaceSwitchPort) {
		t.Fatal("capability matrix")
	}
}

func TestScopeEnforcement(t *testing.T) {
	w := newWorld(t, 6, nil)
	l := w.sepLink(t)
	rackUnit := w.fleet.AddUnit("rack", RackScope, topology.Location{Row: 99, Rack: 99})
	if rackUnit.CanReach(l.A.Device.Loc) {
		t.Fatal("rack unit reaches a foreign rack")
	}
	rowUnit := w.fleet.AddUnit("row", RowScope, topology.Location{Row: l.A.Device.Loc.Row})
	if !rowUnit.CanReach(l.A.Device.Loc) {
		t.Fatal("row unit cannot reach its own row")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Execute out of scope did not panic")
		}
	}()
	w.fleet.Execute(rackUnit, Task{Link: l, End: faults.EndA, Action: faults.Reseat}, nil)
}

func TestBusyUnitRejectsSecondTask(t *testing.T) {
	w := newWorld(t, 7, nil)
	l := w.sepLink(t)
	u := w.hallUnit()
	w.fleet.Execute(u, Task{Link: l, End: faults.EndA, Action: faults.Reseat}, nil)
	if u.Available() {
		t.Fatal("unit still available while executing")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double execute did not panic")
		}
	}()
	w.fleet.Execute(u, Task{Link: l, End: faults.EndA, Action: faults.Reseat}, nil)
}

func TestMechanicalFailureEscalatesAndCanBreakUnit(t *testing.T) {
	w := newWorld(t, 8, func(fc *faults.Config, rc *Config) {
		rc.PrimitiveFailProb = 1 // always fails, retry also fails
		rc.BreakProb = 1
		rc.RepairTime = 15 * sim.Hour // longer than runTask's 12h settle window
	})
	l := w.sepLink(t)
	w.inj.InduceFault(l, faults.Oxidation)
	u := w.hallUnit()
	out := w.runTask(t, u, Task{Link: l, End: faults.EndA, Action: faults.Reseat})
	if out.Completed || !out.NeedsHuman {
		t.Fatalf("outcome: %+v", out)
	}
	if !u.broken {
		t.Fatal("unit not broken with BreakProb=1")
	}
	if w.fleet.BrokenEvents != 1 {
		t.Fatal("break not counted")
	}
	if w.inj.State(l.ID).InRepair {
		t.Fatal("aborted task left link in repair")
	}
	// Unit comes back after the repair time.
	w.eng.RunUntil(w.eng.Now() + 16*sim.Hour)
	if u.broken || !u.Available() {
		t.Fatal("unit never repaired")
	}
}

func TestPerceptionFailureEscalates(t *testing.T) {
	w := newWorld(t, 9, func(fc *faults.Config, rc *Config) {
		rc.PrimitiveFailProb = 0
	})
	// Cripple perception: enormous synthetic fleet diversity.
	w.fleet.vis = vision.New(w.eng, vision.Config{
		RecognitionBase: 0, MinAccuracy: 0, DiversityPenalty: 0, OcclusionPenalty: 0,
		InspectSecondsPerCore: sim.Const(3), DirtDetectThreshold: 0.25,
	}, 1)
	l := w.sepLink(t)
	w.inj.InduceFault(l, faults.Oxidation)
	out := w.runTask(t, w.hallUnit(), Task{Link: l, End: faults.EndA, Action: faults.Reseat})
	if !out.NeedsHuman || out.Completed {
		t.Fatalf("outcome: %+v", out)
	}
	if out.Note == "" {
		t.Fatal("no note on escalation")
	}
}

func TestBatteryChargeCycle(t *testing.T) {
	w := newWorld(t, 10, func(fc *faults.Config, rc *Config) {
		rc.BatteryTasks = 2
		rc.PrimitiveFailProb = 0
		rc.ChargeTime = 100 * sim.Hour // outlast the test's settle windows
	})
	l := w.sepLink(t)
	u := w.hallUnit()
	for i := 0; i < 2; i++ {
		out := w.runTask(t, u, Task{Link: l, End: faults.EndA, Action: faults.Reseat})
		if !out.Completed {
			t.Fatalf("task %d failed: %+v", i, out)
		}
	}
	if !u.charging {
		t.Fatal("unit not charging after battery capacity")
	}
	if u.Available() {
		t.Fatal("charging unit reports available")
	}
	w.eng.RunUntil(w.eng.Now() + 101*sim.Hour)
	if !u.Available() {
		t.Fatal("unit never finished charging")
	}
}

func TestCleanVerifyRetryThenHuman(t *testing.T) {
	w := newWorld(t, 11, func(fc *faults.Config, rc *Config) {
		// Cleaning never works: verification keeps failing.
		fc.FixProb[faults.Clean] = map[faults.Cause]float64{}
		fc.ReseatMaskProb = 0
		rc.PrimitiveFailProb = 0
		rc.MaxCleanRetries = 2
	})
	l := w.sepLink(t)
	w.inj.InduceFault(l, faults.Contamination)
	st := w.inj.State(l.ID)
	out := w.runTask(t, w.hallUnit(), Task{Link: l, End: st.CauseEnd, Action: faults.Clean})
	if !out.NeedsHuman {
		t.Fatalf("robot did not request human support: %+v", out)
	}
	attempted := w.inj.Stats().RepairsAttempted
	if attempted != 3 { // initial + 2 retries
		t.Fatalf("repair attempts = %d, want 3", attempted)
	}
}

func TestDeployPerRowAndFindUnit(t *testing.T) {
	w := newWorld(t, 12, nil)
	units := w.fleet.DeployPerRow()
	rows := map[int]bool{}
	for _, d := range w.net.Devices {
		rows[d.Loc.Row] = true
	}
	if len(units) != len(rows) {
		t.Fatalf("deployed %d units for %d equipment rows", len(units), len(rows))
	}
	l := w.sepLink(t)
	u := w.fleet.FindUnit(l.A.Device.Loc)
	if u == nil {
		t.Fatal("no unit found for a covered row")
	}
	if !u.CanReach(l.A.Device.Loc) {
		t.Fatal("found unit cannot reach")
	}
	if w.fleet.FindUnit(topology.Location{Row: 999}) != nil {
		t.Fatal("found unit for uncovered row")
	}
	if len(w.fleet.Units()) != len(units) {
		t.Fatal("Units() mismatch")
	}
}

func TestEstimateDurationOrdering(t *testing.T) {
	w := newWorld(t, 13, nil)
	l := w.sepLink(t)
	u := w.hallUnit()
	reseat := w.fleet.EstimateDuration(u, Task{Link: l, End: faults.EndA, Action: faults.Reseat})
	clean := w.fleet.EstimateDuration(u, Task{Link: l, End: faults.EndA, Action: faults.Clean})
	if reseat <= 0 || clean <= reseat {
		t.Fatalf("estimates: reseat=%v clean=%v", reseat, clean)
	}
}

func TestUnitAndScopeStrings(t *testing.T) {
	u := &Unit{Name: "r1", Scope: RowScope}
	if u.String() == "" {
		t.Error("unit string")
	}
	u.busy = true
	if u.String() == "" {
		t.Error("busy string")
	}
	if RackScope.String() != "rack" || Scope(9).String() == "" {
		t.Error("scope names")
	}
}

func TestCleaningSuppliesStockout(t *testing.T) {
	w := newWorld(t, 14, func(fc *faults.Config, rc *Config) {
		rc.PrimitiveFailProb = 0
	})
	l := w.sepLink(t)
	w.inj.InduceFault(l, faults.Contamination)
	st := w.inj.State(l.ID)
	for w.pool.Stock(inventory.PartCleaningSupplies) > 0 {
		w.pool.Take(inventory.PartCleaningSupplies)
	}
	out := w.runTask(t, w.hallUnit(), Task{Link: l, End: st.CauseEnd, Action: faults.Clean})
	if out.Completed || !out.Stockout {
		t.Fatalf("outcome: %+v", out)
	}
	if w.inj.State(l.ID).InRepair {
		t.Fatal("stockout left link in repair")
	}
}
