package detsort

import (
	"reflect"
	"testing"
)

func TestKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	if got, want := Keys(m), []string{"a", "b", "c"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
	if got := Keys(map[int]bool(nil)); len(got) != 0 {
		t.Fatalf("Keys(nil) = %v, want empty", got)
	}
}

func TestKeysNamedKeyType(t *testing.T) {
	type id int
	m := map[id]string{3: "c", 1: "a", 2: "b"}
	if got, want := Keys(m), []id{1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
}

func TestKeysInto(t *testing.T) {
	m := map[int]string{9: "i", 4: "d", 7: "g"}
	buf := make([]int, 0, 8)
	buf = KeysInto(buf, m)
	if want := []int{4, 7, 9}; !reflect.DeepEqual(buf, want) {
		t.Fatalf("KeysInto = %v, want %v", buf, want)
	}
	// Reuse with a preserved prefix: only the appended tail is sorted.
	buf = buf[:1]
	buf = KeysInto(buf, map[int]string{2: "b", 1: "a"})
	if want := []int{4, 1, 2}; !reflect.DeepEqual(buf, want) {
		t.Fatalf("KeysInto with prefix = %v, want %v", buf, want)
	}
	// Steady-state reuse allocates nothing once grown.
	if allocs := testing.AllocsPerRun(100, func() { buf = KeysInto(buf[:0], m) }); allocs != 0 {
		t.Fatalf("KeysInto steady state allocates %v times per run, want 0", allocs)
	}
}

func TestKeysFunc(t *testing.T) {
	type pair struct{ a, b int }
	m := map[pair]string{{2, 1}: "x", {1, 2}: "y", {1, 1}: "z"}
	got := KeysFunc(m, func(x, y pair) int {
		if x.a != y.a {
			return x.a - y.a
		}
		return x.b - y.b
	})
	want := []pair{{1, 1}, {1, 2}, {2, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("KeysFunc = %v, want %v", got, want)
	}
}
