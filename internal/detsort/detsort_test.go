package detsort

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	if got, want := Keys(m), []string{"a", "b", "c"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
	if got := Keys(map[int]bool(nil)); len(got) != 0 {
		t.Fatalf("Keys(nil) = %v, want empty", got)
	}
}

func TestKeysNamedKeyType(t *testing.T) {
	type id int
	m := map[id]string{3: "c", 1: "a", 2: "b"}
	if got, want := Keys(m), []id{1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
}

func TestKeysInto(t *testing.T) {
	m := map[int]string{9: "i", 4: "d", 7: "g"}
	buf := make([]int, 0, 8)
	buf = KeysInto(buf, m)
	if want := []int{4, 7, 9}; !reflect.DeepEqual(buf, want) {
		t.Fatalf("KeysInto = %v, want %v", buf, want)
	}
	// Reuse with a preserved prefix: only the appended tail is sorted.
	buf = buf[:1]
	buf = KeysInto(buf, map[int]string{2: "b", 1: "a"})
	if want := []int{4, 1, 2}; !reflect.DeepEqual(buf, want) {
		t.Fatalf("KeysInto with prefix = %v, want %v", buf, want)
	}
	// Steady-state reuse allocates nothing once grown.
	if allocs := testing.AllocsPerRun(100, func() { buf = KeysInto(buf[:0], m) }); allocs != 0 {
		t.Fatalf("KeysInto steady state allocates %v times per run, want 0", allocs)
	}
}

func TestKeysFunc(t *testing.T) {
	type pair struct{ a, b int }
	m := map[pair]string{{2, 1}: "x", {1, 2}: "y", {1, 1}: "z"}
	got := KeysFunc(m, func(x, y pair) int {
		if x.a != y.a {
			return x.a - y.a
		}
		return x.b - y.b
	})
	want := []pair{{1, 1}, {1, 2}, {2, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("KeysFunc = %v, want %v", got, want)
	}
}

// TestKeysFuncConcurrentPipelines exercises KeysFunc from many goroutines
// at once — the region-sharded simulation calls it from every shard's
// pipeline concurrently — and checks each caller still gets the exact
// sorted order. Under -race this pins that KeysFunc touches no shared
// state: each shard's maps are its own, and sorting must stay that way.
func TestKeysFuncConcurrentPipelines(t *testing.T) {
	type key struct{ Region, Seq int }
	cmp := func(a, b key) int {
		if a.Region != b.Region {
			return a.Region - b.Region
		}
		return a.Seq - b.Seq
	}
	build := func(shard int) map[key]int {
		m := make(map[key]int)
		for i := 0; i < 300; i++ {
			m[key{Region: (shard + i) % 7, Seq: 299 - i}] = i
		}
		return m
	}
	render := func(shard int) string {
		var b strings.Builder
		for round := 0; round < 20; round++ {
			for _, k := range KeysFunc(build(shard), cmp) {
				fmt.Fprintf(&b, "%d/%d ", k.Region, k.Seq)
			}
			b.WriteByte('\n')
		}
		return b.String()
	}
	const shards = 8
	want := make([]string, shards)
	for s := 0; s < shards; s++ {
		want[s] = render(s)
	}
	got := make([]string, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[s] = render(s)
		}()
	}
	wg.Wait()
	for s := 0; s < shards; s++ {
		if got[s] != want[s] {
			t.Fatalf("shard %d: concurrent KeysFunc order diverged from serial", s)
		}
	}
}
