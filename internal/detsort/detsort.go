// Package detsort provides deterministic iteration over Go maps. Map range
// order is randomized per run, so any map iteration whose effects reach a
// run's output is a byte-identity bug; ranging over detsort.Keys(m) instead
// fixes the order by sorting the keys. The selfmaintlint mapiter analyzer
// flags raw map ranges in deterministic packages and suggests exactly this
// rewrite.
package detsort

import (
	"cmp"
	"slices"
)

// Keys returns the keys of m, sorted ascending. The slice is freshly
// allocated; hot paths that iterate repeatedly should retain a buffer and
// use KeysInto.
func Keys[M ~map[K]V, K cmp.Ordered, V any](m M) []K {
	return KeysInto[M, K, V](nil, m)
}

// KeysInto appends the keys of m to dst (which may be nil or recycled with
// dst[:0]) and sorts the appended region, returning the extended slice.
// Steady-state callers reuse dst across iterations and allocate nothing
// once it has grown to the map's size.
func KeysInto[M ~map[K]V, K cmp.Ordered, V any](dst []K, m M) []K {
	base := len(dst)
	for k := range m {
		dst = append(dst, k)
	}
	slices.Sort(dst[base:])
	return dst
}

// KeysFunc returns the keys of m sorted by cmp, for key types outside
// cmp.Ordered (structs, arrays). cmp must return a negative, zero, or
// positive value as in slices.SortFunc and, for byte-identical output,
// define a total order over the keys present.
func KeysFunc[M ~map[K]V, K comparable, V any](m M, cmp func(a, b K) int) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, cmp)
	return keys
}
