package robotapi

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/inventory"
	"repro/internal/robot"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/vision"
)

func newService(t *testing.T, seed uint64) (*Service, *topology.Network, *faults.Injector) {
	t.Helper()
	n, err := topology.NewLeafSpine(topology.LeafSpineConfig{
		Leaves: 4, Spines: 2, HostsPerLeaf: 4, Uplinks: 1,
		FabricGbps: 400, HostGbps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(seed)
	fcfg := faults.DefaultConfig()
	fcfg.AnnualRate = map[faults.Cause]float64{}
	fcfg.FixProb[faults.Reseat][faults.Oxidation] = 1
	inj := faults.NewInjector(eng, n, fcfg)
	vis := vision.New(eng, vision.DefaultConfig(), 8)
	pool := inventory.NewPool(eng, inventory.DefaultStock(n), 2*sim.Day)
	rcfg := robot.DefaultConfig()
	rcfg.PrimitiveFailProb = 0
	fleet := robot.NewFleet(eng, n, inj, vis, pool, rcfg)
	fleet.DeployPerRow()
	return NewService(eng, n, inj, fleet), n, inj
}

func sepLinkID(t *testing.T, n *topology.Network) int {
	t.Helper()
	for _, l := range n.SwitchLinks() {
		if l.HasSeparableFiber() {
			return int(l.ID)
		}
	}
	t.Fatal("no separable link")
	return -1
}

func TestCapabilities(t *testing.T) {
	svc, _, _ := newService(t, 1)
	c := svc.Capabilities()
	if len(c.Units) == 0 {
		t.Fatal("no units")
	}
	if len(c.Actions) != 3 {
		t.Fatalf("actions = %v", c.Actions)
	}
	for _, a := range c.Actions {
		if a == "replace-cable" || a == "replace-switch-port" {
			t.Fatalf("robot claims human-only action %s", a)
		}
	}
}

func TestPlanPreReportsContactedCables(t *testing.T) {
	svc, n, _ := newService(t, 2)
	id := sepLinkID(t, n)
	p, err := svc.Plan(TaskSpec{Link: id, End: "A", Action: "reseat"})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible {
		t.Fatalf("plan infeasible: %s", p.Reason)
	}
	if len(p.CablesAtRisk) == 0 {
		t.Fatal("plan pre-reports no contacted cables at a dense ToR")
	}
	if len(p.RiskNames) != len(p.CablesAtRisk) {
		t.Fatal("risk names mismatch")
	}
	if p.EstSeconds <= 0 {
		t.Fatal("no duration estimate")
	}
	if p.Unit == "" {
		t.Fatal("no unit assigned")
	}
}

func TestPlanInfeasibleForHumanActions(t *testing.T) {
	svc, n, _ := newService(t, 3)
	id := sepLinkID(t, n)
	p, err := svc.Plan(TaskSpec{Link: id, End: "A", Action: "replace-cable"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Feasible {
		t.Fatal("cable replacement planned as robotic")
	}
	if !strings.Contains(p.Reason, "technician") {
		t.Fatalf("reason: %s", p.Reason)
	}
}

func TestExecuteRepairsFault(t *testing.T) {
	svc, n, inj := newService(t, 4)
	id := sepLinkID(t, n)
	if err := svc.Inject(id, "oxidation"); err != nil {
		t.Fatal(err)
	}
	st := inj.State(topology.LinkID(id))
	res, err := svc.Execute(TaskSpec{Link: id, End: st.CauseEnd.String(), Action: "reseat"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || !res.Fixed {
		t.Fatalf("result: %+v", res)
	}
	if res.LinkHealth != "healthy" {
		t.Fatalf("health: %s", res.LinkHealth)
	}
	if res.Seconds <= 0 {
		t.Fatal("no duration")
	}
}

func TestInjectValidation(t *testing.T) {
	svc, n, _ := newService(t, 5)
	if err := svc.Inject(-1, "oxidation"); err == nil {
		t.Fatal("negative link accepted")
	}
	if err := svc.Inject(0, "gremlins"); err == nil {
		t.Fatal("unknown cause accepted")
	}
	id := sepLinkID(t, n)
	if err := svc.Inject(id, "oxidation"); err != nil {
		t.Fatal(err)
	}
	if err := svc.Inject(id, "oxidation"); err == nil {
		t.Fatal("double inject accepted")
	}
}

func TestHealthReport(t *testing.T) {
	svc, n, _ := newService(t, 6)
	rep := svc.Health()
	if rep.Links != len(n.Links) {
		t.Fatal("link count")
	}
	if len(rep.Down) != 0 {
		t.Fatal("healthy world reports down links")
	}
	id := sepLinkID(t, n)
	if err := svc.Inject(id, "xcvr-dead"); err != nil {
		t.Fatal(err)
	}
	rep = svc.Health()
	if len(rep.Down) != 1 {
		t.Fatalf("down = %v", rep.Down)
	}
}

func TestParseHelpers(t *testing.T) {
	if _, err := ParseEnd("C"); err == nil {
		t.Fatal("bad end accepted")
	}
	if e, _ := ParseEnd("b"); e != faults.EndB {
		t.Fatal("lowercase end")
	}
	if _, err := ParseAction("levitate"); err == nil {
		t.Fatal("bad action accepted")
	}
	if a, _ := ParseAction("clean"); a != faults.Clean {
		t.Fatal("clean parse")
	}
	if _, err := ParseCause("bad"); err == nil {
		t.Fatal("bad cause accepted")
	}
	svc, _, _ := newService(t, 7)
	if _, err := svc.Plan(TaskSpec{Link: 10_000, End: "A", Action: "reseat"}); err == nil {
		t.Fatal("out of range link accepted")
	}
	if _, err := svc.Execute(TaskSpec{Link: 0, End: "Q", Action: "reseat"}); err == nil {
		t.Fatal("bad end accepted by execute")
	}
}

func TestOverTCPEndToEnd(t *testing.T) {
	svc, n, inj := newService(t, 8)
	srv, err := Serve("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := DialClient(ctx, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	caps, err := c.Capabilities(ctx)
	if err != nil || len(caps.Units) == 0 {
		t.Fatalf("capabilities over tcp: %v %+v", err, caps)
	}

	id := sepLinkID(t, n)
	if err := c.Inject(ctx, id, "oxidation"); err != nil {
		t.Fatal(err)
	}
	st := inj.State(topology.LinkID(id))

	plan, err := c.Plan(ctx, TaskSpec{Link: id, End: st.CauseEnd.String(), Action: "reseat"})
	if err != nil || !plan.Feasible {
		t.Fatalf("plan over tcp: %v %+v", err, plan)
	}

	res, err := c.Execute(ctx, TaskSpec{Link: id, End: st.CauseEnd.String(), Action: "reseat"})
	if err != nil || !res.Fixed {
		t.Fatalf("execute over tcp: %v %+v", err, res)
	}

	hr, err := c.Health(ctx)
	if err != nil || len(hr.Down) != 0 {
		t.Fatalf("health over tcp: %v %+v", err, hr)
	}

	// Remote errors propagate.
	if err := c.Inject(ctx, -5, "oxidation"); err == nil {
		t.Fatal("remote error not propagated")
	}
}

func TestTopologyOverTCP(t *testing.T) {
	svc, n, _ := newService(t, 9)
	srv, err := Serve("127.0.0.1:0", svc)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := DialClient(ctx, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	raw, err := c.Topology(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := topology.DecodeNetwork(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Links) != len(n.Links) || len(got.Devices) != len(n.Devices) {
		t.Fatalf("remote topology mismatch: %d/%d links, %d/%d devices",
			len(got.Links), len(n.Links), len(got.Devices), len(n.Devices))
	}
	if !got.Connected(nil) {
		t.Fatal("decoded remote topology disconnected")
	}
}
