// Package robotapi is the service API the paper calls for (§2): an
// interface that "masks the complexity but enables complex control" of the
// maintenance robots. Higher layers — and external operators via TCP — can
// discover capabilities, ask for a manipulation plan that pre-reports which
// cables will be contacted (§2), execute repair tasks, and read fleet
// health, without ever touching robot internals.
//
// The same Service type serves two deployments: in-process (the controller
// calls it directly) and over TCP via Server/Client in transport.go (the
// robotd daemon and the maintctl CLI).
package robotapi

import (
	"fmt"
	"sync"

	"repro/internal/faults"
	"repro/internal/robot"
	"repro/internal/sim"
	"repro/internal/topology"
)

// UnitInfo describes one robotic unit.
type UnitInfo struct {
	Name      string `json:"name"`
	Scope     string `json:"scope"`
	Row       int    `json:"row"`
	Rack      int    `json:"rack"`
	Available bool   `json:"available"`
}

// Capabilities is the fleet's capability report.
type Capabilities struct {
	Units   []UnitInfo `json:"units"`
	Actions []string   `json:"actions"` // actions robots can perform
}

// TaskSpec names a repair task in API terms.
type TaskSpec struct {
	Link   int    `json:"link"`   // LinkID
	End    string `json:"end"`    // "A" or "B"
	Action string `json:"action"` // faults.Action name
}

// Plan is the pre-motion report for a task: feasibility, the assigned
// unit, and — centrally — the cables that will be contacted, so the
// controller can drain them first.
type Plan struct {
	Feasible     bool     `json:"feasible"`
	Reason       string   `json:"reason,omitempty"`
	Unit         string   `json:"unit,omitempty"`
	CablesAtRisk []int    `json:"cables_at_risk"`       // LinkIDs near the port
	RiskNames    []string `json:"risk_names,omitempty"` // human-readable
	TrayMates    int      `json:"tray_mates"`
	EstSeconds   float64  `json:"est_seconds"`
}

// ExecuteResult reports a completed task.
type ExecuteResult struct {
	Completed  bool    `json:"completed"`
	NeedsHuman bool    `json:"needs_human"`
	Stockout   bool    `json:"stockout"`
	Fixed      bool    `json:"fixed"`
	Masked     bool    `json:"masked"`
	Note       string  `json:"note,omitempty"`
	Seconds    float64 `json:"seconds"`
	Cascades   int     `json:"cascades"`
	LinkHealth string  `json:"link_health"`
}

// HealthReport summarizes observable link health.
type HealthReport struct {
	Links    int      `json:"links"`
	Down     []string `json:"down"`
	Flapping []string `json:"flapping"`
}

// Service implements the robot API against a simulation world. Execute
// advances the world's virtual time synchronously until the task resolves,
// so one Service must not be shared with another driver of the same engine.
// All methods are safe for concurrent use (internally serialized).
type Service struct {
	mu    sync.Mutex
	eng   *sim.Engine
	net   *topology.Network
	inj   *faults.Injector
	fleet *robot.Fleet
}

// NewService binds the API to a world.
func NewService(eng *sim.Engine, net *topology.Network, inj *faults.Injector, fleet *robot.Fleet) *Service {
	return &Service{eng: eng, net: net, inj: inj, fleet: fleet}
}

// Capabilities reports the fleet.
func (s *Service) Capabilities() Capabilities {
	s.mu.Lock()
	defer s.mu.Unlock()
	var c Capabilities
	for _, u := range s.fleet.Units() {
		c.Units = append(c.Units, UnitInfo{
			Name: u.Name, Scope: u.Scope.String(),
			Row: u.Home.Row, Rack: u.Home.Rack,
			Available: u.Available(),
		})
	}
	for _, a := range faults.AllActions {
		if robot.CanPerform(a) {
			c.Actions = append(c.Actions, a.String())
		}
	}
	return c
}

// Plan computes the pre-motion report for a task without moving anything.
func (s *Service) Plan(spec TaskSpec) (Plan, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	task, err := s.parse(spec)
	if err != nil {
		return Plan{}, err
	}
	var p Plan
	if !robot.CanPerform(task.Action) {
		p.Reason = fmt.Sprintf("action %v requires a technician", task.Action)
		return p, nil
	}
	loc := task.Port().Device.Loc
	u := s.fleet.FindUnit(loc)
	if u == nil {
		p.Reason = "no available unit can reach the target"
		return p, nil
	}
	p.Feasible = true
	p.Unit = u.Name
	for _, l := range s.inj.DisturbedBy(task.Port()) {
		p.CablesAtRisk = append(p.CablesAtRisk, int(l.ID))
		p.RiskNames = append(p.RiskNames, l.Name())
	}
	p.TrayMates = len(s.net.LinksSharingTray(task.Link))
	p.EstSeconds = s.fleet.EstimateDuration(u, task).Duration().Seconds()
	return p, nil
}

// Execute runs a task to completion, advancing virtual time, and reports
// the outcome.
func (s *Service) Execute(spec TaskSpec) (ExecuteResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	task, err := s.parse(spec)
	if err != nil {
		return ExecuteResult{}, err
	}
	if !robot.CanPerform(task.Action) {
		return ExecuteResult{NeedsHuman: true, Note: "action requires a technician"}, nil
	}
	u := s.fleet.FindUnit(task.Port().Device.Loc)
	if u == nil {
		return ExecuteResult{}, fmt.Errorf("robotapi: no available unit for %s", task.Port().Name())
	}
	var out *robot.Outcome
	s.fleet.Execute(u, task, func(o robot.Outcome) { out = &o })
	// Drive the world until the task resolves.
	for out == nil && s.eng.Step() {
	}
	if out == nil {
		return ExecuteResult{}, fmt.Errorf("robotapi: task never resolved")
	}
	return ExecuteResult{
		Completed:  out.Completed,
		NeedsHuman: out.NeedsHuman,
		Stockout:   out.Stockout,
		Fixed:      out.Result.Fixed,
		Masked:     out.Result.Masked,
		Note:       out.Note,
		Seconds:    out.Duration().Duration().Seconds(),
		Cascades:   len(out.Effects),
		LinkHealth: s.inj.Observable(task.Link.ID).String(),
	}, nil
}

// Topology returns the hall's static structure in the topology package's
// JSON wire form, so external tooling can render or analyze the plant.
func (s *Service) Topology() (*topology.Network, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.net, nil
}

// Health reports current observable link health.
func (s *Service) Health() HealthReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := HealthReport{Links: len(s.net.Links)}
	for _, l := range s.net.Links {
		switch s.inj.Observable(l.ID) {
		case faults.Down:
			rep.Down = append(rep.Down, l.Name())
		case faults.Flapping:
			rep.Flapping = append(rep.Flapping, l.Name())
		}
	}
	return rep
}

// Inject forces a fault (operator/testing hook, used by maintctl demos).
func (s *Service) Inject(linkID int, cause string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if linkID < 0 || linkID >= len(s.net.Links) {
		return fmt.Errorf("robotapi: link %d out of range", linkID)
	}
	c, err := ParseCause(cause)
	if err != nil {
		return err
	}
	l := s.net.Links[linkID]
	if s.inj.State(l.ID).Cause != faults.None {
		return fmt.Errorf("robotapi: link %d already faulted", linkID)
	}
	s.inj.InduceFault(l, c)
	return nil
}

// parse validates a TaskSpec against the world.
func (s *Service) parse(spec TaskSpec) (robot.Task, error) {
	if spec.Link < 0 || spec.Link >= len(s.net.Links) {
		return robot.Task{}, fmt.Errorf("robotapi: link %d out of range", spec.Link)
	}
	end, err := ParseEnd(spec.End)
	if err != nil {
		return robot.Task{}, err
	}
	action, err := ParseAction(spec.Action)
	if err != nil {
		return robot.Task{}, err
	}
	return robot.Task{Link: s.net.Links[spec.Link], End: end, Action: action}, nil
}

// ParseEnd parses "A"/"B" (case-insensitive single letter).
func ParseEnd(s string) (faults.End, error) {
	switch s {
	case "A", "a":
		return faults.EndA, nil
	case "B", "b":
		return faults.EndB, nil
	}
	return 0, fmt.Errorf("robotapi: bad end %q (want A or B)", s)
}

// ParseAction parses an action name as produced by faults.Action.String.
func ParseAction(s string) (faults.Action, error) {
	for _, a := range faults.AllActions {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("robotapi: unknown action %q", s)
}

// ParseCause parses a cause name as produced by faults.Cause.String.
func ParseCause(s string) (faults.Cause, error) {
	for _, c := range faults.AllCauses {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("robotapi: unknown cause %q", s)
}
