package robotapi

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/wire"
)

// Request type names on the wire.
const (
	TypeCapabilities = "capabilities"
	TypePlan         = "plan"
	TypeExecute      = "execute"
	TypeHealth       = "health"
	TypeInject       = "inject"
	TypeTopology     = "topology"
)

// InjectRequest is the wire form of Service.Inject.
type InjectRequest struct {
	Link  int    `json:"link"`
	Cause string `json:"cause"`
}

// Serve exposes the service over TCP at addr and returns the running
// server. Close the server to stop.
func Serve(addr string, svc *Service) (*wire.Server, error) {
	return wire.NewServer(addr, func(reqType string, payload json.RawMessage) (any, error) {
		switch reqType {
		case TypeCapabilities:
			return svc.Capabilities(), nil
		case TypePlan:
			var spec TaskSpec
			if err := json.Unmarshal(payload, &spec); err != nil {
				return nil, err
			}
			return svc.Plan(spec)
		case TypeExecute:
			var spec TaskSpec
			if err := json.Unmarshal(payload, &spec); err != nil {
				return nil, err
			}
			return svc.Execute(spec)
		case TypeHealth:
			return svc.Health(), nil
		case TypeTopology:
			return svc.Topology()
		case TypeInject:
			var req InjectRequest
			if err := json.Unmarshal(payload, &req); err != nil {
				return nil, err
			}
			return nil, svc.Inject(req.Link, req.Cause)
		default:
			return nil, fmt.Errorf("robotapi: unknown request type %q", reqType)
		}
	})
}

// Client is the typed TCP client for the robot API, mirroring Service.
type Client struct {
	c *wire.Client
}

// DialClient connects to a robot API server.
func DialClient(ctx context.Context, addr string) (*Client, error) {
	c, err := wire.Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	return &Client{c: c}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.c.Close() }

// Capabilities fetches the fleet capability report.
func (c *Client) Capabilities(ctx context.Context) (Capabilities, error) {
	var out Capabilities
	err := c.c.Call(ctx, TypeCapabilities, struct{}{}, &out)
	return out, err
}

// Plan fetches the pre-motion report for a task.
func (c *Client) Plan(ctx context.Context, spec TaskSpec) (Plan, error) {
	var out Plan
	err := c.c.Call(ctx, TypePlan, spec, &out)
	return out, err
}

// Execute runs a task to completion on the remote world.
func (c *Client) Execute(ctx context.Context, spec TaskSpec) (ExecuteResult, error) {
	var out ExecuteResult
	err := c.c.Call(ctx, TypeExecute, spec, &out)
	return out, err
}

// Health fetches the observable health report.
func (c *Client) Health(ctx context.Context) (HealthReport, error) {
	var out HealthReport
	err := c.c.Call(ctx, TypeHealth, struct{}{}, &out)
	return out, err
}

// Inject forces a fault on the remote world (demo/testing hook).
func (c *Client) Inject(ctx context.Context, link int, cause string) error {
	return c.c.Call(ctx, TypeInject, InjectRequest{Link: link, Cause: cause}, nil)
}

// Topology fetches the remote hall's structure as raw JSON (the topology
// package's wire form, decodable with topology.DecodeNetwork).
func (c *Client) Topology(ctx context.Context) (json.RawMessage, error) {
	var out json.RawMessage
	err := c.c.Call(ctx, TypeTopology, struct{}{}, &out)
	return out, err
}
