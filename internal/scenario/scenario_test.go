package scenario

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/sim"
)

func TestBuildStandardWorld(t *testing.T) {
	w, err := Build(Options{Seed: 1, Level: core.L3, Techs: 2, Robots: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Fleet.Units()) == 0 {
		t.Fatal("no robots deployed")
	}
	if len(w.Crew.Techs()) != 2 {
		t.Fatal("techs")
	}
	w.Run(10 * sim.Day)
	if w.Eng.Now() != 10*sim.Day {
		t.Fatal("run")
	}
	if a := w.TrafficAvailability(routing.UniformMatrix(w.Net, 100)); a < 0.99 {
		t.Fatalf("fresh world availability %v", a)
	}
}

func TestReplicate(t *testing.T) {
	wf := Replicate([]uint64{1, 2, 3}, func(seed uint64) float64 { return float64(seed) })
	if wf.N() != 3 || wf.Mean() != 2 {
		t.Fatalf("replicate: %v", wf)
	}
}

// TestT1Shape verifies the paper's headline: robotic automation shrinks the
// service window from hours/days to minutes — at least an order of
// magnitude between L0 and L3 medians.
func TestT1Shape(t *testing.T) {
	tab, fig, err := T1ServiceWindow(Serial(), QuickRepairParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	// Parse medians back out of the formatted cells via the figure instead:
	// compare the x-value at which each CDF reaches 0.5.
	med := map[string]float64{}
	for _, s := range fig.Series {
		for i, f := range s.Y {
			if f >= 0.5 {
				med[s.Name] = s.X[i]
				break
			}
		}
	}
	if med["L0"] == 0 || med["L3"] == 0 {
		t.Fatalf("missing medians: %v", med)
	}
	if med["L3"] >= med["L0"]/10 {
		t.Fatalf("L3 median %vh not >=10x better than L0 %vh", med["L3"], med["L0"])
	}
	// L3 repairs in minutes.
	if med["L3"] > 1 {
		t.Fatalf("L3 median %vh, want under an hour", med["L3"])
	}
	if !strings.Contains(tab.String(), "L0") {
		t.Fatal("table rendering")
	}
}

// TestT2Shape verifies reseat resolves the plurality of incidents — the
// paper's "surprisingly effective" first rung.
func TestT2Shape(t *testing.T) {
	tab, err := T2Escalation(Serial(), QuickRepairParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("empty table")
	}
	// Row 0 is reseat; its share must be the largest.
	var reseatPct, maxPct float64
	for i, r := range tab.Rows {
		var pct float64
		if _, err := sscan(r[2], &pct); err != nil {
			t.Fatalf("bad pct cell %q", r[2])
		}
		if i == 0 {
			reseatPct = pct
		}
		if pct > maxPct {
			maxPct = pct
		}
	}
	if reseatPct < maxPct {
		t.Fatalf("reseat share %v is not the largest (%v)", reseatPct, maxPct)
	}
	if reseatPct < 30 {
		t.Fatalf("reseat resolves only %v%%", reseatPct)
	}
}

// TestF2Shape verifies availability improves monotonically enough with
// automation level (L3 must beat L0).
func TestF2Shape(t *testing.T) {
	fig, tab, err := F2Availability(Serial(), QuickRepairParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 || len(fig.Series) != 2 {
		t.Fatal("shape")
	}
	av := fig.Series[0].Y
	if av[3] <= av[0] {
		t.Fatalf("L3 availability %v <= L0 %v", av[3], av[0])
	}
	// Down-link-hours at L3 lower than at L0.
	dlh := fig.Series[1].Y
	if dlh[3] >= dlh[0] {
		t.Fatalf("L3 down-link-hours %v >= L0 %v", dlh[3], dlh[0])
	}
}

// TestF3Shape verifies the cascade ordering: humans disturb more than
// robots, and pre-draining removes most loaded-link disturbances.
func TestF3Shape(t *testing.T) {
	tab, fig, err := F3Cascades(Serial(), QuickRepairParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatal("rows")
	}
	trans := fig.Series[0].Y
	loaded := fig.Series[1].Y
	if trans[1] >= trans[0] {
		t.Fatalf("robot transient cascades %v >= human %v", trans[1], trans[0])
	}
	if loaded[2] >= loaded[1] {
		t.Fatalf("pre-drain loaded disturbances %v >= no-drain %v", loaded[2], loaded[1])
	}
}

// TestT3Shape verifies proactive maintenance reduces reactive load.
func TestT3Shape(t *testing.T) {
	p := QuickRepairParams()
	p.Duration = 180 * sim.Day
	tab, err := T3Proactive(Serial(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatal("rows")
	}
	var reactive [4]float64
	var proTasks [4]float64
	for i, r := range tab.Rows {
		if _, err := sscan(r[2], &reactive[i]); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(r[4], &proTasks[i]); err != nil {
			t.Fatal(err)
		}
	}
	if proTasks[1] == 0 {
		t.Fatal("threshold policy ran no proactive tasks")
	}
	if reactive[1] >= reactive[0]*1.1 {
		t.Fatalf("proactive policy increased reactive tickets: %v vs %v", reactive[1], reactive[0])
	}
}

func TestT4Runs(t *testing.T) {
	p := QuickRepairParams()
	p.Duration = 150 * sim.Day
	tab, err := T4Predictor(Serial(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 && len(tab.Notes) == 0 {
		t.Fatal("empty predictor table")
	}
}

// TestT5Shape verifies the right-provisioning ordering: faster repair,
// fewer spares.
func TestT5Shape(t *testing.T) {
	tab, err := T5RightProvisioning(Serial(), QuickRepairParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatal("rows")
	}
	var first, last float64
	if _, err := sscan(tab.Rows[0][2], &first); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tab.Rows[len(tab.Rows)-1][2], &last); err != nil {
		t.Fatal(err)
	}
	if last > first {
		t.Fatalf("fastest regime needs more spares (%v) than slowest (%v)", last, first)
	}
	// Robotic repair cuts overprovisioning substantially vs the human-days
	// regime (the measured L3 MTTR still includes human-handled cable and
	// switch work, so it is hours, not pure robot-minutes).
	if last > first/2 {
		t.Fatalf("robot regime (%v spares) not well below human regime (%v)", last, first)
	}
}

// TestF4Shape verifies the topology tradeoff: the expander family wins
// throughput, the Clos family wins maintainability.
func TestF4Shape(t *testing.T) {
	fig, tab, err := F4Maintainability(Serial())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 || len(tab.Rows) != 4 {
		t.Fatal("shape")
	}
	get := func(name string) (x, y float64) {
		for _, s := range fig.Series {
			if strings.HasPrefix(s.Name, name) {
				return s.X[0], s.Y[0]
			}
		}
		t.Fatalf("missing series %s", name)
		return 0, 0
	}
	jfT, jfI := get("jellyfish")
	lsT, lsI := get("leaf-spine")
	if jfT <= lsT {
		t.Fatalf("jellyfish per-switch goodput %v <= leaf-spine %v at equal budget", jfT, lsT)
	}
	if jfI >= lsI {
		t.Fatalf("jellyfish maintainability %v >= leaf-spine %v", jfI, lsI)
	}
}

func TestT6MeetsPaperTimings(t *testing.T) {
	tab, err := T6RobotTimings(Serial(), 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	var inspectMean, cleanMean float64
	if _, err := sscan(tab.Rows[0][1], &inspectMean); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tab.Rows[2][1], &cleanMean); err != nil {
		t.Fatal(err)
	}
	if inspectMean >= 30 {
		t.Fatalf("8-core inspection mean %vs, paper claims <30s", inspectMean)
	}
	if cleanMean < 60 || cleanMean > 600 {
		t.Fatalf("clean cycle mean %vs, paper claims a few minutes", cleanMean)
	}
}

func TestF6Shape(t *testing.T) {
	fig, err := F6FlapLatency(Serial(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatal("series")
	}
	// Integrated tail burden under L0 exceeds L3 (repair is much faster).
	sum := func(ys []float64) float64 {
		var s float64
		for _, y := range ys {
			s += y
		}
		return s
	}
	l0 := sum(fig.Series[0].Y)
	l3 := sum(fig.Series[1].Y)
	if l3 >= l0 {
		t.Fatalf("L3 tail burden %v >= L0 %v", l3, l0)
	}
}

func TestT7Shape(t *testing.T) {
	p := QuickRepairParams()
	p.Duration = 120 * sim.Day
	tab, err := T7AICluster(Serial(), p)
	if err != nil {
		t.Fatal(err)
	}
	var l0Lost, l3Lost float64
	if _, err := sscan(tab.Rows[0][1], &l0Lost); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tab.Rows[1][1], &l3Lost); err != nil {
		t.Fatal(err)
	}
	if l3Lost >= l0Lost {
		t.Fatalf("L3 GPU-hours lost %v >= L0 %v", l3Lost, l0Lost)
	}
}

func TestT8Shape(t *testing.T) {
	tab, err := T8Diversity(Serial(), 120, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatal("rows")
	}
	var stdPct, divPct float64
	if _, err := sscan(tab.Rows[0][2], &stdPct); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tab.Rows[3][2], &divPct); err != nil {
		t.Fatal(err)
	}
	if divPct > stdPct {
		t.Fatalf("32-model fleet succeeds more (%v%%) than standardized (%v%%)", divPct, stdPct)
	}
}

// sscan parses a float out of a formatted cell.
func sscan(cell string, out *float64) (int, error) {
	return fmt.Sscan(cell, out)
}

// TestA1Shape verifies the repeat-window mechanism: with a window, repeat
// tickets exist and start escalated; with none, no repeats are detected.
func TestA1Shape(t *testing.T) {
	tab, err := A1RepeatWindow(Serial(), QuickRepairParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatal("rows")
	}
	var noneRepeats, longRepeats float64
	if _, err := sscan(tab.Rows[0][2], &noneRepeats); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tab.Rows[3][2], &longRepeats); err != nil {
		t.Fatal(err)
	}
	if noneRepeats != 0 {
		t.Fatalf("zero window detected %v repeats", noneRepeats)
	}
	if longRepeats == 0 {
		t.Fatal("45d window detected no repeats")
	}
}

// TestA2Shape verifies mobility-scope ordering: wider scope, more of the
// repair load served robotically.
func TestA2Shape(t *testing.T) {
	tab, err := A2MobilityScope(Serial(), QuickRepairParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatal("rows")
	}
	var rackShare, hallShare float64
	if _, err := sscan(tab.Rows[0][4], &rackShare); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tab.Rows[2][4], &hallShare); err != nil {
		t.Fatal(err)
	}
	if hallShare <= rackShare {
		t.Fatalf("hall scope share %v <= rack scope %v", hallShare, rackShare)
	}
}
