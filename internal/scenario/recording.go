package scenario

import (
	"fmt"
	"io"

	"repro/internal/bus"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/flightrec"
	"repro/internal/sim"
)

// Recording is a flight recorder attached to one World: every bus event is
// captured via a tap, periodic metric snapshots via an engine ticker, and
// Close appends the end-of-run scalars (ticket summary, controller stats,
// ledger) as state frames before writing the trailer. Replaying the file
// reproduces the live summary fingerprint without re-simulating.
type Recording struct {
	w      *World
	rec    *flightrec.Recorder
	sub    *bus.Subscription
	tick   *sim.Ticker
	closed bool
}

// StartRecording attaches a flight recorder to the world. meta is stored in
// the file header (seed, level, config digest — whatever identifies the
// run). snapshotEvery > 0 also samples availability/backlog periodically;
// the sampler only reads world state, so a recorded run stays byte-
// identical to an unrecorded one. Call Close after the run; the recorder
// does not close out.
func (w *World) StartRecording(out io.Writer, meta map[string]string, snapshotEvery sim.Time) (*Recording, error) {
	rec, err := flightrec.New(out, meta, 1)
	if err != nil {
		return nil, err
	}
	r := &Recording{w: w, rec: rec, sub: rec.TapBus(w.Bus, 0)}
	if snapshotEvery > 0 {
		r.tick = w.Eng.Every(snapshotEvery, snapshotEvery, "flightrec-snapshot", func(at sim.Time) {
			rec.Snapshot(0, at, worldSnap(w))
		})
	}
	return r, nil
}

// worldSnap samples the world's headline gauges. Read-only: recording must
// not perturb the run it observes.
func worldSnap(w *World) flightrec.Snap {
	down := 0
	for _, l := range w.Net.Links {
		if w.Inj.Observable(l.ID) != faults.Healthy {
			down++
		}
	}
	return flightrec.Snap{
		Avail:     w.Ledger.FleetAvailability(),
		LinksDown: down,
		OpenTix:   len(w.Store.OpenQueue()),
		Fired:     w.Eng.Fired(),
	}
}

// Close detaches the tap, records the end-of-run state frame, and writes
// the trailer. It returns the live summary; Replay on the written bytes
// must reproduce its fingerprint.
func (r *Recording) Close() (*flightrec.Summary, error) {
	if r.closed {
		return nil, fmt.Errorf("scenario: recording already closed")
	}
	r.closed = true
	r.sub.Cancel()
	if r.tick != nil {
		r.tick.Stop()
	}
	r.rec.State(0, worldStateKVs(r.w))
	return r.rec.Close()
}

// worldStateKVs flattens the world's end-of-run scalars into one state
// frame — everything the replay consumers (R7 reconstruction, status
// reports) read back without re-simulating.
func worldStateKVs(w *World) []flightrec.KV {
	sum := w.Store.Summarize()
	kvs := []flightrec.KV{
		flightrec.KInt("tickets-total", int64(sum.Total)),
		flightrec.KInt("tickets-resolved", int64(sum.Resolved)),
		flightrec.KInt("tickets-cancelled", int64(sum.Cancelled)),
		flightrec.KInt("tickets-repeats", int64(sum.Repeats)),
		flightrec.KInt("tickets-dedups", int64(sum.Dedups)),
		flightrec.KInt("mean-window-ns", int64(sum.MeanWindow)),
		flightrec.KInt("max-window-ns", int64(sum.MaxWindow)),
		flightrec.KInt("sla-met", int64(sum.SLAMet)),
		flightrec.KFloat("availability", w.Ledger.FleetAvailability()),
		flightrec.KFloat("down-link-hours", w.Ledger.DownLinkHours()),
		flightrec.KFloat("degraded-link-hours", w.Ledger.DegradedLinkHours()),
		flightrec.KInt("chaos-injected", int64(w.ChaosStats().Injected())),
	}
	if w.Ctrl != nil {
		st := w.Ctrl.Stats()
		kvs = append(kvs,
			flightrec.KInt("robot-tasks", int64(st.RobotTasks)),
			flightrec.KInt("human-tasks", int64(st.HumanTasks)),
			flightrec.KInt("escalations", int64(st.EscalationsToHuman)),
			flightrec.KInt("watchdog-fires", int64(st.WatchdogFires)),
			flightrec.KInt("degraded-tickets", int64(st.DegradedTickets)),
			flightrec.KInt("late-outcomes", int64(st.LateOutcomes)),
			flightrec.KInt("proactive-tasks", int64(st.ProactiveTasks)),
			flightrec.KInt("predictive-tasks", int64(st.PredictiveTasks)),
		)
	}
	return kvs
}

// fleetRecording is a flight recorder attached to a region-sharded fleet:
// one tap per shard (hub bus on shard 0, each region's pipeline bus on
// shard r+1), merged at every epoch barrier in shard-id order via the
// multi-engine's barrier hook — which is what makes the recording
// byte-identical at any worker count.
type fleetRecording struct {
	f      *fleet.Fleet
	rec    *flightrec.Recorder
	subs   []*bus.Subscription
	closed bool
}

// startFleetRecording attaches a recorder to a fleet built by BuildFleet.
// Must be called before Run.
func startFleetRecording(f *fleet.Fleet, regions []*fleetRegion, out io.Writer, meta map[string]string) (*fleetRecording, error) {
	rec, err := flightrec.New(out, meta, f.ME.Shards(), flightrec.WithConverter(convertFleetPayload))
	if err != nil {
		return nil, err
	}
	fr := &fleetRecording{f: f, rec: rec}
	fr.subs = append(fr.subs, rec.TapBus(f.Bus, 0))
	for i, reg := range regions {
		fr.subs = append(fr.subs, rec.TapBus(reg.w.Bus, i+1))
	}
	f.ME.SetBarrierHook(rec.Barrier)
	return fr, nil
}

// convertFleetPayload translates the fleet package's bus payloads into
// flightrec's typed forms (flightrec cannot import fleet — the dependency
// arrow points the other way).
func convertFleetPayload(p any) (flightrec.Payload, bool) {
	switch v := p.(type) {
	case fleet.Summary:
		return &flightrec.PFleetSummary{
			Region: v.Region, At: v.At, Links: v.Links, LinksDown: v.LinksDown,
			OpenTickets: v.OpenTickets, Resolved: v.Resolved,
			RobotsIdle: v.RobotsIdle, RobotsTotal: v.RobotsTotal,
		}, true
	case fleet.Ticket:
		return &flightrec.PFleetTicket{Region: v.Region, OpenedAt: v.OpenedAt, ClosedAt: v.ClosedAt}, true
	case fleet.TransferNote:
		return &flightrec.PTransfer{From: v.From, To: v.To, Granted: v.Granted, Unit: v.Unit}, true
	}
	return nil, false
}

// Close detaches the taps, records the final report as per-shard state
// frames, and writes the trailer. rep must be the fleet's end-of-run
// report (call f.Report() after Run, then Close).
func (fr *fleetRecording) Close(rep *fleet.Report) (*flightrec.Summary, error) {
	if fr.closed {
		return nil, fmt.Errorf("scenario: fleet recording already closed")
	}
	fr.closed = true
	for _, s := range fr.subs {
		s.Cancel()
	}
	fr.f.ME.SetBarrierHook(nil)
	fr.rec.State(0, []flightrec.KV{
		flightrec.KInt("regions", int64(rep.Regions)),
		flightrec.KInt("epochs", int64(rep.Epochs)),
		flightrec.KInt("exchanged", int64(rep.Exchanged)),
		flightrec.KInt("fired", int64(rep.Fired)),
		flightrec.KInt("summaries", int64(rep.Stats.Summaries)),
		flightrec.KInt("tickets-opened", int64(rep.Stats.TicketsOpened)),
		flightrec.KInt("tickets-closed", int64(rep.Stats.TicketsClosed)),
		flightrec.KInt("transfers-requested", int64(rep.Stats.TransfersRequested)),
		flightrec.KInt("transfers-granted", int64(rep.Stats.TransfersGranted)),
		flightrec.KInt("transfers-declined", int64(rep.Stats.TransfersDeclined)),
		flightrec.KInt("trunk-notices", int64(rep.Stats.TrunkNotices)),
		flightrec.KInt("trunk-faults", int64(rep.TrunkFaults)),
		flightrec.KInt("trunk-repairs", int64(rep.TrunkRepairs)),
		flightrec.KFloat("overlay-avail", rep.OverlayAvail),
	})
	for i, s := range rep.PerRegion {
		fr.rec.State(i+1, []flightrec.KV{
			flightrec.KInt("at-ns", int64(s.At)),
			flightrec.KInt("links", int64(s.Links)),
			flightrec.KInt("links-down", int64(s.LinksDown)),
			flightrec.KInt("open-tickets", int64(s.OpenTickets)),
			flightrec.KInt("resolved", int64(s.Resolved)),
			flightrec.KInt("robots-idle", int64(s.RobotsIdle)),
			flightrec.KInt("robots-total", int64(s.RobotsTotal)),
		})
	}
	return fr.rec.Close()
}

// ReplayFleetReport reconstructs the fleet's end-of-run report from a
// replayed recording — no simulation. Its Fingerprint must equal the live
// run's, which is the F8 record→replay acceptance check.
func ReplayFleetReport(sum *flightrec.Summary) (*fleet.Report, error) {
	geti := func(shard int, key string) (int64, error) {
		kv, ok := sum.StateKV(shard, key)
		if !ok {
			return 0, fmt.Errorf("scenario: recording has no state key %q on shard %d", key, shard)
		}
		return kv.Int(), nil
	}
	var firstErr error
	must := func(shard int, key string) int64 {
		v, err := geti(shard, key)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	}
	rep := &fleet.Report{
		Regions:   int(must(0, "regions")),
		Epochs:    uint64(must(0, "epochs")),
		Exchanged: uint64(must(0, "exchanged")),
		Fired:     uint64(must(0, "fired")),
		Stats: fleet.Stats{
			Summaries:          int(must(0, "summaries")),
			TicketsOpened:      int(must(0, "tickets-opened")),
			TicketsClosed:      int(must(0, "tickets-closed")),
			TransfersRequested: int(must(0, "transfers-requested")),
			TransfersGranted:   int(must(0, "transfers-granted")),
			TransfersDeclined:  int(must(0, "transfers-declined")),
			TrunkNotices:       int(must(0, "trunk-notices")),
		},
		TrunkFaults:  int(must(0, "trunk-faults")),
		TrunkRepairs: int(must(0, "trunk-repairs")),
	}
	if kv, ok := sum.StateKV(0, "overlay-avail"); ok {
		rep.OverlayAvail = kv.Float()
	} else if firstErr == nil {
		firstErr = fmt.Errorf("scenario: recording has no state key %q on shard 0", "overlay-avail")
	}
	for r := 0; r < rep.Regions; r++ {
		shard := r + 1
		rep.PerRegion = append(rep.PerRegion, fleet.Summary{
			Region:      r,
			At:          sim.Time(must(shard, "at-ns")),
			Links:       int(must(shard, "links")),
			LinksDown:   int(must(shard, "links-down")),
			OpenTickets: int(must(shard, "open-tickets")),
			Resolved:    int(must(shard, "resolved")),
			RobotsIdle:  int(must(shard, "robots-idle")),
			RobotsTotal: int(must(shard, "robots-total")),
		})
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return rep, nil
}
