package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/detsort"
	"repro/internal/metrics"
	"repro/internal/robot"
	"repro/internal/sim"
	"repro/internal/ticket"
	"repro/internal/topology"
)

// A1RepeatWindow ablates the repeat-ticket window that drives ladder
// escalation (§3.2: "if the transceiver has been reseated in the past, and
// another ticket is generated for the same link within a time window ...
// the next stage is to perform this cleaning"). A zero window never
// escalates across tickets (every incident restarts at reseat); longer
// windows remember and start repeats one rung up. One cell per
// (window × seed).
func A1RepeatWindow(r *Runner, p RepairParams) (*metrics.Table, error) {
	tab := &metrics.Table{
		Title: "A1 (ablation): repeat-ticket window vs escalation effectiveness",
		Cols: []string{"repeat window", "tickets", "repeats", "mean window (h)",
			"attempts/ticket", "masked recurrences"},
		Notes: []string{"masked recurrences: reseats that suppressed dirt only temporarily (ground truth)"},
	}
	windows := []sim.Time{0, 3 * sim.Day, 14 * sim.Day, 45 * sim.Day}
	type a1 struct {
		tickets, repeats, recurrences int
		meanH, attempts               float64
	}
	var cells []Cell[a1]
	for _, window := range windows {
		for _, seed := range p.Seeds {
			cells = append(cells, Cell[a1]{
				Key: fmt.Sprintf("A1/window=%v/seed=%d", window, seed),
				Run: func() (a1, error) {
					var c a1
					w, err := Build(Options{
						Seed: seed, BuildNet: p.net(), Level: core.L3,
						Techs: 2, Robots: true, FaultScale: p.FaultScale,
						MutateTicket: func(tc *ticket.Config) { tc.RepeatWindow = window },
					})
					if err != nil {
						return c, err
					}
					w.Run(p.Duration)
					sum := w.Store.Summarize()
					c.tickets = sum.Total
					c.repeats = sum.Repeats
					c.meanH = sum.MeanWindow.Duration().Hours()
					c.attempts = sum.AttemptsPerResolved
					c.recurrences = w.Inj.Stats().MaskedRecurrences
					return c, nil
				},
			})
		}
	}
	res, err := RunCells(r, cells)
	if err != nil {
		return nil, err
	}
	for wi, window := range windows {
		var tickets, repeats, recurrences int
		var meanH, attempts float64
		for si := range p.Seeds {
			c := res[wi*len(p.Seeds)+si]
			tickets += c.tickets
			repeats += c.repeats
			recurrences += c.recurrences
			meanH += c.meanH
			attempts += c.attempts
		}
		n := float64(len(p.Seeds))
		label := window.String()
		if window == 0 {
			label = "none"
		}
		tab.AddRow(label, tickets, repeats, meanH/n, attempts/n, recurrences)
	}
	return tab, nil
}

// A2MobilityScope ablates the robot deployment scope (§3.4: device-level,
// rack-level, row-level, hall-level): the same number of units deployed as
// rack-bound, row-bound or hall-roaming, measuring how much of the repair
// load robots can actually serve. One cell per (scope × seed).
func A2MobilityScope(r *Runner, p RepairParams) (*metrics.Table, error) {
	tab := &metrics.Table{
		Title: "A2 (ablation): robot mobility scope at fixed fleet size",
		Cols: []string{"scope", "units", "robot tasks", "human tasks",
			"robot share %", "mean window (h)"},
	}
	type deployment struct {
		name  string
		scope robot.Scope
	}
	deployments := []deployment{
		{"rack", robot.RackScope},
		{"row", robot.RowScope},
		{"hall", robot.HallScope},
	}
	type a2 struct {
		robotTasks, humanTasks, units int
		meanH                         float64
	}
	var cells []Cell[a2]
	for _, dep := range deployments {
		for _, seed := range p.Seeds {
			cells = append(cells, Cell[a2]{
				Key: fmt.Sprintf("A2/%s/seed=%d", dep.name, seed),
				Run: func() (a2, error) {
					var c a2
					w, err := Build(Options{
						Seed: seed, BuildNet: p.net(), Level: core.L3,
						Techs: 2, FaultScale: p.FaultScale,
					})
					if err != nil {
						return c, err
					}
					// Deploy one unit per equipment row, but with the ablated scope
					// (rack units sit at rack 0 and cover only that rack; hall
					// units roam everywhere).
					rowSet := map[int]bool{}
					for _, d := range w.Net.Devices {
						rowSet[d.Loc.Row] = true
					}
					for _, row := range detsort.Keys(rowSet) {
						w.Fleet.AddUnit(fmt.Sprintf("u-%s-%d", dep.name, row), dep.scope,
							topology.Location{Row: row, Rack: 0})
						c.units++
					}
					w.Run(p.Duration)
					st := w.Ctrl.Stats()
					c.robotTasks = st.RobotTasks
					c.humanTasks = st.HumanTasks
					c.meanH = w.Store.Summarize().MeanWindow.Duration().Hours()
					return c, nil
				},
			})
		}
	}
	res, err := RunCells(r, cells)
	if err != nil {
		return nil, err
	}
	for di, dep := range deployments {
		var robotTasks, humanTasks, units int
		var meanH float64
		for si := range p.Seeds {
			c := res[di*len(p.Seeds)+si]
			robotTasks += c.robotTasks
			humanTasks += c.humanTasks
			units = c.units
			meanH += c.meanH
		}
		n := float64(len(p.Seeds))
		total := robotTasks + humanTasks
		share := 0.0
		if total > 0 {
			share = 100 * float64(robotTasks) / float64(total)
		}
		tab.AddRow(dep.name, units, robotTasks, humanTasks, share, meanH/n)
	}
	return tab, nil
}
