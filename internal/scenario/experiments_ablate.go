package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/robot"
	"repro/internal/sim"
	"repro/internal/ticket"
	"repro/internal/topology"
)

// A1RepeatWindow ablates the repeat-ticket window that drives ladder
// escalation (§3.2: "if the transceiver has been reseated in the past, and
// another ticket is generated for the same link within a time window ...
// the next stage is to perform this cleaning"). A zero window never
// escalates across tickets (every incident restarts at reseat); longer
// windows remember and start repeats one rung up.
func A1RepeatWindow(p RepairParams) (*metrics.Table, error) {
	tab := &metrics.Table{
		Title: "A1 (ablation): repeat-ticket window vs escalation effectiveness",
		Cols: []string{"repeat window", "tickets", "repeats", "mean window (h)",
			"attempts/ticket", "masked recurrences"},
		Notes: []string{"masked recurrences: reseats that suppressed dirt only temporarily (ground truth)"},
	}
	for _, window := range []sim.Time{0, 3 * sim.Day, 14 * sim.Day, 45 * sim.Day} {
		var tickets, repeats, recurrences int
		var meanH, attempts float64
		for _, seed := range p.Seeds {
			w, err := Build(Options{
				Seed: seed, BuildNet: p.net(), Level: core.L3,
				Techs: 2, Robots: true, FaultScale: p.FaultScale,
				MutateTicket: func(tc *ticket.Config) { tc.RepeatWindow = window },
			})
			if err != nil {
				return nil, err
			}
			w.Run(p.Duration)
			sum := w.Store.Summarize()
			tickets += sum.Total
			repeats += sum.Repeats
			meanH += sum.MeanWindow.Duration().Hours()
			attempts += sum.AttemptsPerResolved
			recurrences += w.Inj.Stats().MaskedRecurrences
		}
		n := float64(len(p.Seeds))
		label := window.String()
		if window == 0 {
			label = "none"
		}
		tab.AddRow(label, tickets, repeats, meanH/n, attempts/n, recurrences)
	}
	return tab, nil
}

// A2MobilityScope ablates the robot deployment scope (§3.4: device-level,
// rack-level, row-level, hall-level): the same number of units deployed as
// rack-bound, row-bound or hall-roaming, measuring how much of the repair
// load robots can actually serve.
func A2MobilityScope(p RepairParams) (*metrics.Table, error) {
	tab := &metrics.Table{
		Title: "A2 (ablation): robot mobility scope at fixed fleet size",
		Cols: []string{"scope", "units", "robot tasks", "human tasks",
			"robot share %", "mean window (h)"},
	}
	type deployment struct {
		name  string
		scope robot.Scope
	}
	for _, dep := range []deployment{
		{"rack", robot.RackScope},
		{"row", robot.RowScope},
		{"hall", robot.HallScope},
	} {
		var robotTasks, humanTasks, units int
		var meanH float64
		for _, seed := range p.Seeds {
			w, err := Build(Options{
				Seed: seed, BuildNet: p.net(), Level: core.L3,
				Techs: 2, FaultScale: p.FaultScale,
			})
			if err != nil {
				return nil, err
			}
			// Deploy one unit per equipment row, but with the ablated scope
			// (rack units sit at rack 0 and cover only that rack; hall
			// units roam everywhere).
			rows := map[int]bool{}
			for _, d := range w.Net.Devices {
				rows[d.Loc.Row] = true
			}
			units = 0
			for row := range rows {
				w.Fleet.AddUnit(fmt.Sprintf("u-%s-%d", dep.name, row), dep.scope,
					topology.Location{Row: row, Rack: 0})
				units++
			}
			w.Run(p.Duration)
			st := w.Ctrl.Stats()
			robotTasks += st.RobotTasks
			humanTasks += st.HumanTasks
			meanH += w.Store.Summarize().MeanWindow.Duration().Hours()
		}
		n := float64(len(p.Seeds))
		total := robotTasks + humanTasks
		share := 0.0
		if total > 0 {
			share = 100 * float64(robotTasks) / float64(total)
		}
		tab.AddRow(dep.name, units, robotTasks, humanTasks, share, meanH/n)
	}
	return tab, nil
}
