package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/maintindex"
	"repro/internal/metrics"
	"repro/internal/robot"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/ticket"
	"repro/internal/topology"
	"repro/internal/vision"
)

// F4Maintainability regenerates Figure F4: the self-maintainability index
// versus normalized throughput for four topologies at a comparable switch
// budget — the paper's deployability-vs-efficiency tradeoff (§4). One cell
// per topology.
func F4Maintainability(r *Runner) (*metrics.Figure, *metrics.Table, error) {
	// Equal budget: ~20 switches, every port 100G, hosts sized so the
	// fabric (not the host NICs) is the bottleneck. This is the standard
	// expander-vs-Clos comparison: at a fixed switch budget the flat
	// topologies serve more hosts per switch.
	builds := []struct {
		name  string
		build func() (*topology.Network, error)
	}{
		{"fat-tree k=4", func() (*topology.Network, error) {
			return topology.NewFatTree(topology.FatTreeConfig{K: 4, FabricGbps: 100, HostGbps: 100})
		}},
		{"leaf-spine 16x4", func() (*topology.Network, error) {
			return topology.NewLeafSpine(topology.LeafSpineConfig{
				Leaves: 16, Spines: 4, HostsPerLeaf: 8, Uplinks: 1,
				FabricGbps: 100, HostGbps: 100,
			})
		}},
		{"jellyfish n=20 r=8", func() (*topology.Network, error) {
			return topology.NewJellyfish(topology.JellyfishConfig{
				Switches: 20, FabricDegree: 8, HostsPerSwitch: 8,
				FabricGbps: 100, HostGbps: 100, Seed: 3,
			})
		}},
		{"xpander d=9 k=2", func() (*topology.Network, error) {
			return topology.NewXpander(topology.XpanderConfig{
				Degree: 9, Lift: 2, HostsPerSwitch: 8,
				FabricGbps: 100, HostGbps: 100, Seed: 3,
			})
		}},
	}
	fig := &metrics.Figure{
		Title:  "F4: self-maintainability vs per-switch goodput (20-switch budget)",
		XLabel: "satisfied Gbps per switch (uniform full injection)",
		YLabel: "self-maintainability index (0-100)",
	}
	tab := &metrics.Table{
		Title: "F4 data: maintainability components",
		Cols: []string{"topology", "index", "Gbps/switch", "locality", "clarity", "tray",
			"runs", "drain-tol", "parallel", "media", "regular"},
	}
	type f4 struct {
		rep       maintindex.Report
		perSwitch float64
	}
	var cells []Cell[f4]
	for _, b := range builds {
		cells = append(cells, Cell[f4]{
			Key: "F4/" + b.name,
			Run: func() (f4, error) {
				net, err := b.build()
				if err != nil {
					return f4{}, err
				}
				rep := maintindex.Evaluate(net, maintindex.DefaultConfig())
				// Per-switch goodput under full uniform injection, straight
				// from the report's own throughput probe.
				return f4{rep: rep, perSwitch: rep.SatisfiedGbps / float64(net.Stats().Switches)}, nil
			},
		})
	}
	res, err := RunCells(r, cells)
	if err != nil {
		return nil, nil, err
	}
	for i, b := range builds {
		rep, perSwitch := res[i].rep, res[i].perSwitch
		fig.Add(b.name, []float64{perSwitch}, []float64{rep.Index})
		c := rep.Components
		tab.AddRow(b.name, rep.Index, perSwitch, c.Locality, c.PortClarity,
			c.TrayHeadroom, c.ShortRuns, c.DrainTolerance, c.Parallelism,
			c.MediaSimplicity, c.Regularity)
	}
	return fig, tab, nil
}

// F5FleetSizing regenerates Figure F5: repair throughput under a failure
// storm versus robot fleet size (§3.4). Steady-state failure arrivals are
// comfortably inside one unit's capacity (repairs take minutes), so the
// sizing question only bites during correlated events — a power/cooling
// excursion that degrades a third of the fabric at once. The experiment
// injects such a storm and measures how long each fleet size takes to
// drain it. One cell per (fleet size × seed).
func F5FleetSizing(r *Runner, p RepairParams) (*metrics.Figure, *metrics.Table, error) {
	fig := &metrics.Figure{
		Title:  "F5: storm recovery vs robot fleet size",
		XLabel: "hall-scope robot units",
		YLabel: "hours",
	}
	tab := &metrics.Table{
		Title: "F5 data: fleet sizing under a 33% failure storm",
		Cols:  []string{"units", "storm links", "p99 window (h)", "clear time (h)", "resolved"},
	}
	sizes := []int{1, 2, 4, 8}
	type f5 struct {
		windows  []float64
		clearH   float64 // hours to drain the storm; 0 when never cleared
		resolved int
		stormed  int
	}
	var cells []Cell[f5]
	for _, units := range sizes {
		for _, seed := range p.Seeds {
			cells = append(cells, Cell[f5]{
				Key: fmt.Sprintf("F5/units=%d/seed=%d", units, seed),
				Run: func() (f5, error) {
					var c f5
					w, err := Build(Options{
						Seed:       seed,
						BuildNet:   p.net(),
						Level:      core.L3,
						Techs:      2,
						FaultScale: 0.01, // quiescent background; the storm is the load
					})
					if err != nil {
						return c, err
					}
					for i := 0; i < units; i++ {
						w.Fleet.AddUnit(fmt.Sprintf("hall-%d", i), robot.HallScope,
							topology.Location{Row: 0, Rack: 0})
					}
					// The storm: oxidize every third pluggable fabric link at t=1h.
					var stormLinks []*topology.Link
					var clearedAt sim.Time
					w.Eng.Schedule(sim.Hour, "storm", func() {
						for i, l := range w.Net.SwitchLinks() {
							if i%3 == 0 && l.Cable.Class.NeedsTransceiver() &&
								w.Inj.State(l.ID).Cause == faults.None {
								w.Inj.InduceFault(l, faults.Oxidation)
								stormLinks = append(stormLinks, l)
								c.stormed++
							}
						}
					})
					var watch *sim.Ticker
					watch = w.Eng.Every(sim.Hour+10*sim.Minute, 10*sim.Minute, "storm-watch", func(at sim.Time) {
						for _, l := range stormLinks {
							if w.Inj.Observable(l.ID) != faults.Healthy {
								return
							}
						}
						clearedAt = at
						watch.Stop()
					})
					w.Run(14 * sim.Day)
					for _, t := range w.Store.All() {
						if t.Kind == ticket.Reactive && t.Status == ticket.Resolved {
							c.windows = append(c.windows, t.ServiceWindow().Duration().Hours())
							c.resolved++
						}
					}
					if clearedAt > 0 {
						c.clearH = (clearedAt - sim.Hour).Duration().Hours()
					}
					return c, nil
				},
			})
		}
	}
	res, err := RunCells(r, cells)
	if err != nil {
		return nil, nil, err
	}
	// Storm size is a property of the topology and storm rule, not of the
	// fleet size or seed, so one note covers every cell. Should a build ever
	// make the sizes diverge, each distinct size is reported with the first
	// cell that produced it instead of the last one clobbering the rest.
	uniform := true
	for _, c := range res[1:] {
		if c.stormed != res[0].stormed {
			uniform = false
			break
		}
	}
	if uniform {
		tab.Notes = append(tab.Notes, fmt.Sprintf("storm size %d links per seed", res[0].stormed))
	} else {
		noted := map[int]bool{}
		for i, c := range res {
			if !noted[c.stormed] {
				noted[c.stormed] = true
				tab.Notes = append(tab.Notes, fmt.Sprintf("storm size %d links (%s)",
					c.stormed, cells[i].Key))
			}
		}
	}
	var xs, p99s, clears []float64
	for ui, units := range sizes {
		var h metrics.Histogram
		var clearSum float64
		var resolved int
		for si := range p.Seeds {
			c := res[ui*len(p.Seeds)+si]
			for _, v := range c.windows {
				h.Add(v)
			}
			clearSum += c.clearH
			resolved += c.resolved
		}
		clear := clearSum / float64(len(p.Seeds))
		tab.AddRow(units, "storm", h.Quantile(0.99), clear, resolved)
		xs = append(xs, float64(units))
		p99s = append(p99s, h.Quantile(0.99))
		clears = append(clears, clear)
	}
	fig.Add("p99 window (h)", xs, p99s)
	fig.Add("storm clear time (h)", xs, clears)
	return fig, tab, nil
}

// T6RobotTimings regenerates Table T6: robot task micro-timings against the
// paper's reported numbers — 8-core inspection under 30 s, full cycle "a
// few minutes" (§3.3.2) — and against human hands-on times. The reps run
// sequentially on one world, so the experiment is a single cell.
func T6RobotTimings(r *Runner, reps int, seed uint64) (*metrics.Table, error) {
	cells := []Cell[*metrics.Table]{{
		Key: fmt.Sprintf("T6/seed=%d", seed),
		Run: func() (*metrics.Table, error) { return t6RobotTimings(reps, seed) },
	}}
	res, err := RunCells(r, cells)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

func t6RobotTimings(reps int, seed uint64) (*metrics.Table, error) {
	if reps <= 0 {
		reps = 200
	}
	w, err := Build(Options{
		Seed: seed, BuildNet: SmallHall, Level: core.L3, Techs: 1, Robots: false,
		NoController: true,
		MutateFaults: func(fc *faults.Config) {
			fc.AnnualRate = map[faults.Cause]float64{}
			fc.FixProb[faults.Reseat][faults.Oxidation] = 1
			fc.FixProb[faults.Clean][faults.Contamination] = 1
			fc.CleanRecontaminate = 0
		},
		MutateRobot: func(rc *robot.Config) {
			rc.PrimitiveFailProb = 0
			rc.BatteryTasks = 0 // no charging pauses during the micro-bench
		},
	})
	if err != nil {
		return nil, err
	}
	unit := w.Fleet.AddUnit("bench", robot.HallScope, topology.Location{})
	var link *topology.Link
	for _, l := range w.Net.SwitchLinks() {
		if l.HasSeparableFiber() {
			link = l
			break
		}
	}
	if link == nil {
		return nil, fmt.Errorf("scenario: no separable link")
	}

	vis := vision.New(w.Eng, vision.DefaultConfig(), 8)
	var inspect metrics.Histogram
	for i := 0; i < reps; i++ {
		inspect.Add(vis.InspectEndFace(link.Cable, 0.2).Duration.Duration().Seconds())
	}

	measure := func(cause faults.Cause, action faults.Action) (*metrics.Histogram, error) {
		var h metrics.Histogram
		for i := 0; i < reps; i++ {
			w.Inj.InduceFault(link, cause)
			st := w.Inj.State(link.ID)
			var out *robot.Outcome
			w.Fleet.Execute(unit, robot.Task{Link: link, End: st.CauseEnd, Action: action},
				func(o robot.Outcome) { out = &o })
			w.Eng.RunUntil(w.Eng.Now() + 2*sim.Hour)
			if out == nil {
				return nil, fmt.Errorf("scenario: %v task never finished", action)
			}
			if out.Completed && out.Result.Fixed {
				h.Add(out.Duration().Duration().Seconds())
			} else {
				// Clear any remaining fault so the next rep starts clean.
				w.Inj.ClearFault(link)
			}
			unit.Loc = unit.Home // re-park between reps
		}
		return &h, nil
	}
	reseat, err := measure(faults.Oxidation, faults.Reseat)
	if err != nil {
		return nil, err
	}
	clean, err := measure(faults.Contamination, faults.Clean)
	if err != nil {
		return nil, err
	}
	swap, err := measure(faults.XcvrDead, faults.ReplaceXcvr)
	if err != nil {
		return nil, err
	}

	tab := &metrics.Table{
		Title: "T6: robot task timings vs paper claims and human hands-on",
		Cols:  []string{"operation", "robot mean (s)", "robot p95 (s)", "human hands-on (s)", "paper claim"},
		Notes: []string{
			"human hands-on excludes dispatch latency (hours), which dominates human service windows",
			fmt.Sprintf("%d repetitions per operation", reps),
		},
	}
	tab.AddRow("inspect 8-core MPO end-face", inspect.Mean(), inspect.Quantile(0.95), 60.0, "<30 s (faster than human)")
	tab.AddRow("reseat transceiver (end-to-end)", reseat.Mean(), reseat.Quantile(0.95), 480.0, "-")
	tab.AddRow("clean + verify cycle", clean.Mean(), clean.Quantile(0.95), 1800.0, "a few minutes")
	tab.AddRow("replace transceiver from spares", swap.Mean(), swap.Quantile(0.95), 1200.0, "-")
	return tab, nil
}

// F6FlapLatency regenerates Figure F6: fabric p999 latency during a
// flapping-link incident under L0 and L3 — how fast repair shrinks the tail
// the paper blames gray failures for (§1). One cell per automation level.
func F6FlapLatency(r *Runner, seed uint64) (*metrics.Figure, error) {
	fig := &metrics.Figure{
		Title:  "F6: tail latency during a flapping-link incident",
		XLabel: "hours since fault onset",
		YLabel: "worst-pair p999 latency (us)",
	}
	levels := []core.Level{core.L0, core.L3}
	type f6 struct{ xs, ys []float64 }
	var cells []Cell[f6]
	for _, level := range levels {
		cells = append(cells, Cell[f6]{
			Key: fmt.Sprintf("F6/%v/seed=%d", level, seed),
			Run: func() (f6, error) {
				w, err := Build(Options{
					Seed: seed, BuildNet: SmallHall, Level: level,
					Techs: 2, Robots: level >= core.L1,
					MutateFaults: func(fc *faults.Config) {
						fc.AnnualRate = map[faults.Cause]float64{}
						fc.DownManifest[faults.Contamination] = 0 // force gray
					},
				})
				if err != nil {
					return f6{}, err
				}
				var link *topology.Link
				for _, l := range w.Net.SwitchLinks() {
					if l.HasSeparableFiber() {
						link = l
						break
					}
				}
				tm := routing.UniformMatrix(w.Net, 400)
				lm := routing.DefaultLatencyModel()
				lossFn := func(id topology.LinkID) float64 {
					c := w.Mon.Counters(id)
					if c.FlapsInWindow > 0 {
						return c.LossEWMA
					}
					return 0
				}
				var c f6
				var ws routing.Workspace
				onset := 10 * sim.Hour
				w.Eng.Schedule(onset, "break", func() { w.Inj.InduceFault(link, faults.Contamination) })
				w.Eng.Every(onset, sim.Hour, "latency-sample", func(at sim.Time) {
					a := w.Router.EvaluateInto(&ws, tm)
					pc := lm.WorstPairLatency(w.Router, tm, a, lossFn)
					c.xs = append(c.xs, (at - onset).Duration().Hours())
					c.ys = append(c.ys, pc.P999)
				})
				w.Run(onset + 72*sim.Hour)
				return c, nil
			},
		})
	}
	res, err := RunCells(r, cells)
	if err != nil {
		return nil, err
	}
	for i, level := range levels {
		fig.Add(level.String(), res[i].xs, res[i].ys)
	}
	return fig, nil
}

// T7AICluster regenerates Table T7: GPU-hours lost in a rail-optimized
// training cluster versus repair regime — the paper's AI-cluster dilemma
// (§1). A rail ring stalls while any of its links is down; goodput is the
// fraction of rails fully up. One cell per (level × seed).
func T7AICluster(r *Runner, p RepairParams) (*metrics.Table, error) {
	cfg := topology.DefaultAICluster()
	if p.Quick {
		cfg.Servers = 16
		cfg.RailsPerServer = 4
	}
	// The ring-stall model saturates at high fault acceleration (every rail
	// permanently broken under both policies); moderate the scale so the
	// repair-speed signal survives.
	scale := p.FaultScale / 6
	if scale < 2 {
		scale = 2
	}
	tab := &metrics.Table{
		Title: "T7: AI training cluster outage burden vs repair regime",
		Cols: []string{"policy", "GPU-hours lost", "max rails down", "mean repair (h)",
			"collective goodput"},
		Notes: []string{
			fmt.Sprintf("%d servers x %d rails, ring collectives stall on any down rail link", cfg.Servers, cfg.RailsPerServer),
		},
	}
	levels := []core.Level{core.L0, core.L3}
	type t7 struct {
		gpuHoursLost, goodput float64
		maxRailsDown          int
		meanRepair            sim.Time
	}
	var cells []Cell[t7]
	for _, level := range levels {
		for _, seed := range p.Seeds {
			cells = append(cells, Cell[t7]{
				Key: fmt.Sprintf("T7/%v/seed=%d", level, seed),
				Run: func() (t7, error) {
					var c t7
					w, err := Build(Options{
						Seed: seed,
						BuildNet: func() (*topology.Network, error) {
							return topology.NewAICluster(cfg)
						},
						Level: level, Techs: 2, Robots: level >= core.L1,
						FaultScale: scale,
					})
					if err != nil {
						return c, err
					}
					rails := w.Net.DevicesOfKind(topology.RailSwitch)
					var integ metrics.StepIntegrator
					sample := func(at sim.Time) {
						down := 0
						for _, rr := range rails {
							railUp := true
							for _, np := range w.Net.Neighbors(rr.ID) {
								if w.Inj.Observable(np.Link.ID) != faults.Healthy {
									railUp = false
									break
								}
							}
							if !railUp {
								down++
							}
						}
						if down > c.maxRailsDown {
							c.maxRailsDown = down
						}
						integ.Observe(at, 1-float64(down)/float64(len(rails)))
					}
					w.Eng.Every(0, sim.Hour, "goodput-sample", sample)
					w.Run(p.Duration)
					c.goodput = integ.Average(w.Eng.Now())
					totalGPUs := float64(cfg.Servers * cfg.RailsPerServer)
					c.gpuHoursLost = (1 - c.goodput) * totalGPUs * p.Duration.Duration().Hours()
					if sum := w.Store.Summarize(); sum.Resolved > 0 {
						c.meanRepair = sum.MeanWindow
					}
					return c, nil
				},
			})
		}
	}
	res, err := RunCells(r, cells)
	if err != nil {
		return nil, err
	}
	for li, level := range levels {
		var gpuHoursLost, goodputSum float64
		var goodputN, maxRailsDown int
		var meanRepair sim.Time
		for si := range p.Seeds {
			c := res[li*len(p.Seeds)+si]
			gpuHoursLost += c.gpuHoursLost
			goodputSum += c.goodput
			goodputN++
			if c.maxRailsDown > maxRailsDown {
				maxRailsDown = c.maxRailsDown
			}
			meanRepair += c.meanRepair
		}
		n := sim.Time(len(p.Seeds))
		tab.AddRow(level.String(), gpuHoursLost/float64(len(p.Seeds)), maxRailsDown,
			(meanRepair / n).Duration().Hours(), goodputSum/float64(goodputN))
	}
	return tab, nil
}

// T8Diversity regenerates Table T8: robotic task success versus hardware
// diversity — the paper's standardization argument (§4). Each fleet
// diversity level runs the same reseat workload; failures escalate to
// humans. One cell per diversity level.
func T8Diversity(r *Runner, tasks int, seed uint64) (*metrics.Table, error) {
	if tasks <= 0 {
		tasks = 400
	}
	tab := &metrics.Table{
		Title: "T8: robot task success vs transceiver-model diversity",
		Cols:  []string{"distinct models", "tasks", "completed %", "human escalations %"},
		Notes: []string{"diversity 1 is the paper's standardized-hardware endpoint (§4)"},
	}
	diversities := []int{1, 4, 16, 32}
	type t8 struct{ completed, escalated int }
	var cells []Cell[t8]
	for _, div := range diversities {
		cells = append(cells, Cell[t8]{
			Key: fmt.Sprintf("T8/div=%d/seed=%d", div, seed),
			Run: func() (t8, error) {
				var c t8
				w, err := Build(Options{
					Seed: seed, BuildNet: SmallHall, Level: core.L3, Techs: 0,
					NoController:   true,
					FleetDiversity: div,
					MutateFaults: func(fc *faults.Config) {
						fc.AnnualRate = map[faults.Cause]float64{}
						fc.FixProb[faults.Reseat][faults.Oxidation] = 1
					},
					MutateRobot: func(rc *robot.Config) {
						rc.PrimitiveFailProb = 0
						rc.BatteryTasks = 0
					},
				})
				if err != nil {
					return c, err
				}
				unit := w.Fleet.AddUnit("bench", robot.HallScope, topology.Location{})
				var link *topology.Link
				for _, l := range w.Net.SwitchLinks() {
					if l.HasSeparableFiber() {
						link = l
						break
					}
				}
				for i := 0; i < tasks; i++ {
					w.Inj.InduceFault(link, faults.Oxidation)
					st := w.Inj.State(link.ID)
					var out *robot.Outcome
					w.Fleet.Execute(unit, robot.Task{Link: link, End: st.CauseEnd, Action: faults.Reseat},
						func(o robot.Outcome) { out = &o })
					w.Eng.RunUntil(w.Eng.Now() + 2*sim.Hour)
					if out == nil {
						return c, fmt.Errorf("scenario: task hung")
					}
					if out.Completed && out.Result.Fixed {
						c.completed++
					} else {
						if out.NeedsHuman {
							c.escalated++
						}
						w.Inj.ClearFault(link)
					}
				}
				return c, nil
			},
		})
	}
	res, err := RunCells(r, cells)
	if err != nil {
		return nil, err
	}
	for i, div := range diversities {
		c := res[i]
		tab.AddRow(div, tasks, 100*float64(c.completed)/float64(tasks),
			100*float64(c.escalated)/float64(tasks))
	}
	return tab, nil
}
