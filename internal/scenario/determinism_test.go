package scenario

import (
	"crypto/sha256"
	"fmt"
	"strings"
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/sim"
)

// TestFixedSeedReproduces is the determinism regression for the pipeline
// refactor: two same-seed runs must produce byte-identical bus event
// streams, journal streams and availability-ledger digests. Any hidden
// map-iteration order, goroutine, or wall-clock dependency in the
// Sense→Triage→Plan→Act pipeline breaks this test.
func TestFixedSeedReproduces(t *testing.T) {
	opts := Options{
		Seed:       23,
		Level:      core.L4, // exercises predictive + proactive + robots + humans
		Robots:     true,
		Techs:      2,
		FaultScale: 20,
	}
	run := func() (events, journal, ledger [32]byte) {
		w, err := Build(opts)
		if err != nil {
			t.Fatal(err)
		}
		var stream strings.Builder
		w.Bus.Tap(func(ev bus.Event) { fmt.Fprintln(&stream, ev.String()) })
		w.Run(30 * sim.Day)
		var jr strings.Builder
		for _, e := range w.Ctrl.Journal(0) {
			fmt.Fprintln(&jr, e.String())
		}
		led := fmt.Sprintf("%.12f %.12f %.12f",
			w.Ledger.FleetAvailability(), w.Ledger.DownLinkHours(), w.Ledger.DegradedLinkHours())
		return sha256.Sum256([]byte(stream.String())),
			sha256.Sum256([]byte(jr.String())),
			sha256.Sum256([]byte(led))
	}
	e1, j1, l1 := run()
	e2, j2, l2 := run()
	if e1 != e2 {
		t.Error("bus event streams differ between same-seed runs")
	}
	if j1 != j2 {
		t.Error("journal streams differ between same-seed runs")
	}
	if l1 != l2 {
		t.Error("availability-ledger digests differ between same-seed runs")
	}
}
