package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/ticket"
	"repro/internal/topology"
)

// RepairParams sizes the repair-pipeline experiments (T1/F1/T2/F2/F3).
type RepairParams struct {
	Duration   sim.Time
	FaultScale float64
	Seeds      []uint64
	Quick      bool // use the small hall

	// RecordDir, when set, makes R7 write one flight recording per cell
	// (R7-<level>-chaos<rate>-seed<seed>.fr) into the directory;
	// R7FromRecordings regenerates the identical table from those files.
	RecordDir string
}

// DefaultRepairParams is one accelerated year on the standard hall.
func DefaultRepairParams() RepairParams {
	return RepairParams{Duration: sim.Year, FaultScale: 20, Seeds: DefaultSeeds}
}

// QuickRepairParams is a fast variant for tests and benchmarks.
func QuickRepairParams() RepairParams {
	return RepairParams{Duration: 90 * sim.Day, FaultScale: 30, Seeds: []uint64{7, 8}, Quick: true}
}

func (p RepairParams) net() func() (*topology.Network, error) {
	if p.Quick {
		return SmallHall
	}
	return StandardHall
}

// levelWorld builds the canonical world for an automation level: two
// technicians always; robots deployed from L1 upward.
func levelWorld(p RepairParams, level core.Level, seed uint64) (*World, error) {
	return Build(Options{
		Seed:       seed,
		BuildNet:   p.net(),
		Level:      level,
		Techs:      2,
		Robots:     level >= core.L1,
		FaultScale: p.FaultScale,
	})
}

// T1ServiceWindow regenerates Table T1: repair service-window statistics by
// automation level. The paper's claim is the headline one — service windows
// shrink "from hours and days to literally minutes" (§2). Each
// (level × seed) pair is one independent cell.
func T1ServiceWindow(r *Runner, p RepairParams) (*metrics.Table, *metrics.Figure, error) {
	tab := &metrics.Table{
		Title: "T1: repair service window by automation level",
		Cols:  []string{"level", "tickets", "median", "mean", "p95", "p99"},
		Notes: []string{
			fmt.Sprintf("duration=%v per seed, fault acceleration x%g, seeds=%d", p.Duration, p.FaultScale, len(p.Seeds)),
			"windows are ticket-open to link-healthy, in hours",
		},
	}
	fig := &metrics.Figure{
		Title:  "F1: service-window CDF by automation level",
		XLabel: "service window (hours)",
		YLabel: "fraction of repairs",
	}
	levels := []core.Level{core.L0, core.L1, core.L2, core.L3}
	var cells []Cell[[]float64]
	for _, level := range levels {
		for _, seed := range p.Seeds {
			cells = append(cells, Cell[[]float64]{
				Key: fmt.Sprintf("T1/%v/seed=%d", level, seed),
				Run: func() ([]float64, error) {
					w, err := levelWorld(p, level, seed)
					if err != nil {
						return nil, err
					}
					w.Run(p.Duration)
					var windows []float64
					for _, t := range w.Store.All() {
						if t.Kind == ticket.Reactive && t.Status == ticket.Resolved {
							windows = append(windows, t.ServiceWindow().Duration().Hours())
						}
					}
					return windows, nil
				},
			})
		}
	}
	res, err := RunCells(r, cells)
	if err != nil {
		return nil, nil, err
	}
	for li, level := range levels {
		var all metrics.Histogram
		for si := range p.Seeds {
			for _, v := range res[li*len(p.Seeds)+si] {
				all.Add(v)
			}
		}
		tab.AddRow(level.String(), all.N(),
			fmtHours(all.Quantile(0.5)), fmtHours(all.Mean()),
			fmtHours(all.Quantile(0.95)), fmtHours(all.Quantile(0.99)))
		xs, fs := all.CDF(20)
		fig.Add(level.String(), xs, fs)
	}
	return tab, fig, nil
}

// fmtHours renders an hour quantity with a human-scale unit.
func fmtHours(h float64) string {
	switch {
	case h < 1:
		return fmt.Sprintf("%.1fm", h*60)
	case h < 48:
		return fmt.Sprintf("%.1fh", h)
	default:
		return fmt.Sprintf("%.1fd", h/24)
	}
}

// T2Escalation regenerates Table T2: how incidents resolve along the
// escalation ladder (§3.2) — the fraction fixed by reseat, clean, and the
// replacements — plus repeat-ticket behaviour. One cell per seed.
func T2Escalation(r *Runner, p RepairParams) (*metrics.Table, error) {
	type t2 struct {
		byAction                           map[faults.Action]int
		resolved, repeats, total, attempts int
	}
	var cells []Cell[t2]
	for _, seed := range p.Seeds {
		cells = append(cells, Cell[t2]{
			Key: fmt.Sprintf("T2/L3/seed=%d", seed),
			Run: func() (t2, error) {
				c := t2{byAction: map[faults.Action]int{}}
				w, err := levelWorld(p, core.L3, seed)
				if err != nil {
					return c, err
				}
				w.Run(p.Duration)
				for _, t := range w.Store.All() {
					if t.Kind != ticket.Reactive {
						continue
					}
					c.total++
					if t.RepeatOf >= 0 {
						c.repeats++
					}
					if t.Status != ticket.Resolved {
						continue
					}
					c.resolved++
					c.attempts += len(t.Attempts)
					for i := len(t.Attempts) - 1; i >= 0; i-- {
						if t.Attempts[i].Fixed {
							c.byAction[t.Attempts[i].Action]++
							break
						}
					}
				}
				return c, nil
			},
		})
	}
	res, err := RunCells(r, cells)
	if err != nil {
		return nil, err
	}
	byAction := map[faults.Action]int{}
	resolved, repeats, total, attempts := 0, 0, 0, 0
	for _, c := range res {
		for a, n := range c.byAction {
			byAction[a] += n
		}
		resolved += c.resolved
		repeats += c.repeats
		total += c.total
		attempts += c.attempts
	}
	tab := &metrics.Table{
		Title: "T2: escalation-ladder outcomes (reactive incidents, L3)",
		Cols:  []string{"resolving action", "incidents", "% of resolved"},
	}
	for _, a := range faults.AllActions {
		if resolved > 0 {
			tab.AddRow(a.String(), byAction[a], 100*float64(byAction[a])/float64(resolved))
		}
	}
	if resolved > 0 {
		tab.Notes = append(tab.Notes,
			fmt.Sprintf("resolved %d/%d incidents; %.2f attempts per incident; %.1f%% repeat tickets",
				resolved, total, float64(attempts)/float64(resolved), 100*float64(repeats)/float64(total)))
	}
	return tab, nil
}

// F2Availability regenerates Figure F2: fleet link availability and
// failed-link-hours versus automation level. One cell per (level × seed).
func F2Availability(r *Runner, p RepairParams) (*metrics.Figure, *metrics.Table, error) {
	fig := &metrics.Figure{
		Title:  "F2: availability vs automation level",
		XLabel: "automation level",
		YLabel: "fleet link availability",
	}
	tab := &metrics.Table{
		Title: "F2 data: availability and outage burden by level",
		Cols:  []string{"level", "availability", "down link-hours", "degraded link-hours"},
	}
	levels := []core.Level{core.L0, core.L1, core.L2, core.L3, core.L4}
	type f2 struct{ avail, down, degraded float64 }
	var cells []Cell[f2]
	for _, level := range levels {
		for _, seed := range p.Seeds {
			cells = append(cells, Cell[f2]{
				Key: fmt.Sprintf("F2/%v/seed=%d", level, seed),
				Run: func() (f2, error) {
					w, err := levelWorld(p, level, seed)
					if err != nil {
						return f2{}, err
					}
					w.Run(p.Duration)
					return f2{
						avail:    w.Ledger.FleetAvailability(),
						down:     w.Ledger.DownLinkHours(),
						degraded: w.Ledger.DegradedLinkHours(),
					}, nil
				},
			})
		}
	}
	res, err := RunCells(r, cells)
	if err != nil {
		return nil, nil, err
	}
	var xs, av, dlh []float64
	for li, level := range levels {
		var availW, downW, degW metrics.Welford
		for si := range p.Seeds {
			c := res[li*len(p.Seeds)+si]
			availW.Add(c.avail)
			downW.Add(c.down)
			degW.Add(c.degraded)
		}
		xs = append(xs, float64(level))
		av = append(av, availW.Mean())
		dlh = append(dlh, downW.Mean())
		tab.AddRow(level.String(), availW.Mean(), downW.Mean(), degW.Mean())
	}
	fig.Add("availability", xs, av)
	fig.Add("down-link-hours", xs, normalizeTo1(dlh))
	fig.Notes = append(fig.Notes, "down-link-hours series normalized to its maximum")
	return fig, tab, nil
}

func normalizeTo1(v []float64) []float64 {
	var max float64
	for _, x := range v {
		if x > max {
			max = x
		}
	}
	out := make([]float64, len(v))
	if max == 0 {
		return out
	}
	for i, x := range v {
		out[i] = x / max
	}
	return out
}

// F3Cascades regenerates Figure F3: cascading failures during repair under
// three policies — human hands (rough touch, no coordination), robots
// without impact-aware pre-draining, and robots with it (§2's repair
// amplification argument). One cell per (policy × seed).
func F3Cascades(r *Runner, p RepairParams) (*metrics.Table, *metrics.Figure, error) {
	type policy struct {
		name  string
		level core.Level
		drain bool
	}
	policies := []policy{
		{"human (L0)", core.L0, false},
		{"robot, no pre-drain", core.L3, false},
		{"robot + pre-drain", core.L3, true},
	}
	tab := &metrics.Table{
		Title: "F3 data: collateral damage during repairs",
		Cols: []string{"policy", "repairs", "transient cascades /100", "permanent cascades /100",
			"loaded-link disturbances /100"},
		Notes: []string{"loaded-link disturbances: flap episodes hitting links that were carrying traffic (not drained)"},
	}
	fig := &metrics.Figure{
		Title:  "F3: cascade amplification by repair policy",
		XLabel: "policy index (0=human,1=robot,2=robot+drain)",
		YLabel: "events per 100 repairs",
	}
	type f3 struct{ repairs, trans, perm, loaded int }
	var cells []Cell[f3]
	for _, pol := range policies {
		for _, seed := range p.Seeds {
			cells = append(cells, Cell[f3]{
				Key: fmt.Sprintf("F3/%s/seed=%d", pol.name, seed),
				Run: func() (f3, error) {
					var c f3
					w, err := Build(Options{
						Seed:       seed,
						BuildNet:   p.net(),
						Level:      pol.level,
						Techs:      2,
						Robots:     pol.level >= core.L1,
						FaultScale: p.FaultScale,
						MutateCore: func(cc *core.Config) { cc.ImpactAware = pol.drain },
					})
					if err != nil {
						return c, err
					}
					// Count disturbances that hit undrained (loaded) links.
					w.Inj.Subscribe(&loadedFlapCounter{w: w, count: &c.loaded})
					w.Run(p.Duration)
					st := w.Inj.Stats()
					c.repairs = st.RepairsAttempted
					c.trans = st.CascadeTransients
					c.perm = st.CascadePermanents
					return c, nil
				},
			})
		}
	}
	res, err := RunCells(r, cells)
	if err != nil {
		return nil, nil, err
	}
	var xs, transient, impacted []float64
	for i, pol := range policies {
		var repairs, trans, perm, loaded int
		for si := range p.Seeds {
			c := res[i*len(p.Seeds)+si]
			repairs += c.repairs
			trans += c.trans
			perm += c.perm
			loaded += c.loaded
		}
		if repairs == 0 {
			repairs = 1
		}
		per100 := func(n int) float64 { return 100 * float64(n) / float64(repairs) }
		tab.AddRow(pol.name, repairs, per100(trans), per100(perm), per100(loaded))
		xs = append(xs, float64(i))
		transient = append(transient, per100(trans))
		impacted = append(impacted, per100(loaded))
	}
	fig.Add("transient cascades", xs, transient)
	fig.Add("loaded-link disturbances", xs, impacted)
	return tab, fig, nil
}

// loadedFlapCounter counts flap episodes that hit links still carrying
// traffic (i.e. not drained) — the service-impacting subset of cascades.
type loadedFlapCounter struct {
	w     *World
	count *int
}

func (lc *loadedFlapCounter) LinkStateChanged(*topology.Link, faults.Health, faults.Health, sim.Time) {
}
func (lc *loadedFlapCounter) LinkFlapped(l *topology.Link, _ sim.Time, _ float64, _ sim.Time) {
	if !lc.w.Router.Drained(l.ID) {
		*lc.count++
	}
}
