package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestRunCellsOrder: results come back in cell order regardless of pool
// size or completion order, and CellsRun counts completions.
func TestRunCellsOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		r := NewRunner(workers)
		var cells []Cell[int]
		for i := 0; i < 20; i++ {
			cells = append(cells, Cell[int]{
				Key: fmt.Sprintf("cell-%d", i),
				Run: func() (int, error) { return i * i, nil },
			})
		}
		got, err := RunCells(r, cells)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
		if r.CellsRun() != 20 {
			t.Fatalf("workers=%d: CellsRun = %d, want 20", workers, r.CellsRun())
		}
	}
}

// TestRunnerSplit: splits share the admission pool but count cells
// independently, which is what attributes bench cells per experiment.
func TestRunnerSplit(t *testing.T) {
	r := NewRunner(4)
	a, b := r.Split(), r.Split()
	one := []Cell[int]{{Key: "x", Run: func() (int, error) { return 1, nil }}}
	if _, err := RunCells(a, one); err != nil {
		t.Fatal(err)
	}
	if _, err := RunCells(b, one); err != nil {
		t.Fatal(err)
	}
	if _, err := RunCells(b, one); err != nil {
		t.Fatal(err)
	}
	if a.CellsRun() != 1 || b.CellsRun() != 2 {
		t.Fatalf("split counts (%d, %d), want (1, 2)", a.CellsRun(), b.CellsRun())
	}
	if r.CellsRun() != 0 {
		t.Fatalf("parent counted %d cells, want 0", r.CellsRun())
	}
	if a.Workers() != r.Workers() {
		t.Fatalf("split workers %d, want %d", a.Workers(), r.Workers())
	}
}

// TestRunCellsErrorPropagation: a failing cell fails the whole run, the
// first failure in cell order wins, and its Key appears in the error.
func TestRunCellsErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		cells := []Cell[int]{
			{Key: "ok-0", Run: func() (int, error) { return 0, nil }},
			{Key: "bad-1", Run: func() (int, error) { return 0, boom }},
			{Key: "bad-2", Run: func() (int, error) { return 0, errors.New("later") }},
		}
		_, err := RunCells(NewRunner(workers), cells)
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: error %v does not wrap the first failure", workers, err)
		}
		if !strings.Contains(err.Error(), "bad-1") {
			t.Fatalf("workers=%d: error %q lacks failing cell key", workers, err)
		}
	}
}

// TestRunSuiteErrorNamesExperiment: a failing experiment fails the suite
// with its id in the error.
func TestRunSuiteErrorNamesExperiment(t *testing.T) {
	boom := errors.New("boom")
	exps := []Experiment{
		{ID: "OK", Emits: []string{"OK"}, run: func(r *Runner, p SuiteParams) ([]Artifact, error) {
			return []Artifact{{ID: "OK"}}, nil
		}},
		{ID: "BAD", Emits: []string{"BAD"}, run: func(r *Runner, p SuiteParams) ([]Artifact, error) {
			_, err := RunCells(r, []Cell[int]{{Key: "BAD/seed=1", Run: func() (int, error) { return 0, boom }}})
			return nil, err
		}},
	}
	for _, workers := range []int{1, 4} {
		_, _, err := RunSuite(NewRunner(workers), exps, DefaultSuiteParams(true))
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		if !errors.Is(err, boom) || !strings.Contains(err.Error(), "BAD") {
			t.Fatalf("workers=%d: error %q lacks experiment id or cause", workers, err)
		}
	}
}

// TestSelect: id resolution is case-insensitive, rejects unknown ids with
// the valid list, and empty input selects the full registry.
func TestSelect(t *testing.T) {
	all, err := Select(nil)
	if err != nil || len(all) != len(registry) {
		t.Fatalf("empty select: %d experiments, err %v", len(all), err)
	}
	got, err := Select([]string{"t1", " f4 "})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "T1" || got[1].ID != "F4" {
		t.Fatalf("select t1,f4 resolved to %v", got)
	}
	// F1 is emitted by the T1 experiment; selecting it must run T1.
	got, err = Select([]string{"F1"})
	if err != nil || len(got) != 1 || got[0].ID != "T1" {
		t.Fatalf("select F1 resolved to %v, err %v", got, err)
	}
	_, err = Select([]string{"T1", "XYZ"})
	if err == nil {
		t.Fatal("unknown id accepted")
	}
	if !strings.Contains(err.Error(), "XYZ") || !strings.Contains(err.Error(), "T1,F1") {
		t.Fatalf("unknown-id error %q lacks the id or the valid list", err)
	}
}

// TestParallelMatchesSerial is the determinism regression test of the
// parallel harness: at fixed seeds, a multi-worker run must render tables,
// figures and CSVs byte-identically to the serial path. T1 exercises the
// (level × seed) merge (Welford + histogram accumulation order) and F6 a
// figure-only experiment with per-level cells.
func TestParallelMatchesSerial(t *testing.T) {
	exps, err := Select([]string{"T1", "F6"})
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultSuiteParams(true)
	p.Repair.Duration = 20 * sim.Day

	render := func(r *Runner) (string, string) {
		arts, _, err := RunSuite(r, exps, p)
		if err != nil {
			t.Fatal(err)
		}
		var out, csv strings.Builder
		for _, a := range arts {
			out.WriteString(a.Render())
			if a.Tab != nil {
				csv.WriteString(a.Tab.CSV())
			}
			if a.Fig != nil {
				csv.WriteString(a.Fig.CSV())
			}
		}
		return out.String(), csv.String()
	}

	serialOut, serialCSV := render(Serial())
	parOut, parCSV := render(NewRunner(4))
	if serialOut != parOut {
		t.Fatalf("parallel render differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serialOut, parOut)
	}
	if serialCSV != parCSV {
		t.Fatal("parallel CSV differs from serial")
	}
	if !strings.Contains(serialOut, "########## T1 ##########") ||
		!strings.Contains(serialOut, "########## F6 ##########") {
		t.Fatalf("render missing expected artifacts:\n%s", serialOut)
	}
}

// TestBenchJSONRoundTrip: the BENCH artifact survives a marshal/unmarshal
// cycle and its totals are consistent with the per-experiment records.
func TestBenchJSONRoundTrip(t *testing.T) {
	exps, err := Select([]string{"T6"})
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultSuiteParams(true)
	p.T6Reps = 10
	_, bench, err := RunSuite(NewRunner(2), exps, p)
	if err != nil {
		t.Fatal(err)
	}
	if bench.Suite != "quick" || bench.Workers != 2 || bench.HostCores < 1 {
		t.Fatalf("bench header %+v", bench)
	}
	if len(bench.Experiments) != 1 || bench.Experiments[0].ID != "T6" {
		t.Fatalf("bench experiments %+v", bench.Experiments)
	}
	if bench.TotalCells != bench.Experiments[0].Cells || bench.TotalCells == 0 {
		t.Fatalf("bench cells: total %d, experiment %d", bench.TotalCells, bench.Experiments[0].Cells)
	}
	data, err := json.Marshal(bench)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"suite"`, `"workers"`, `"host_cores"`, `"total_cells"`,
		`"total_wall_seconds"`, `"cells_per_sec"`, `"experiments"`, `"wall_seconds"`} {
		if !strings.Contains(string(data), key) {
			t.Fatalf("bench JSON lacks %s: %s", key, data)
		}
	}
	var back Bench
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*bench, back) {
		t.Fatalf("round trip changed the artifact:\nbefore %+v\nafter  %+v", *bench, back)
	}
}
