package scenario

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
)

// Artifact is one rendered experiment output: a table, a figure, or both
// under one EXPERIMENTS.md id.
type Artifact struct {
	ID  string
	Tab *metrics.Table
	Fig *metrics.Figure
}

// Render formats the artifact exactly as cmd/experiments prints it; tests
// compare these strings byte-for-byte between serial and parallel runs.
func (a Artifact) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "\n########## %s ##########\n", a.ID)
	if a.Tab != nil {
		fmt.Fprintln(&b, a.Tab)
	}
	if a.Fig != nil {
		fmt.Fprintln(&b, a.Fig)
	}
	return b.String()
}

// SuiteParams parameterizes the whole experiment suite.
type SuiteParams struct {
	Repair  RepairParams
	Fleet   FleetParams
	T6Reps  int
	T6Seed  uint64
	T8Tasks int
	T8Seed  uint64
	F6Seed  uint64
}

// DefaultSuiteParams returns full-size parameters, or the quick variant.
func DefaultSuiteParams(quick bool) SuiteParams {
	p := SuiteParams{
		Repair:  DefaultRepairParams(),
		Fleet:   DefaultFleetParams(quick),
		T6Reps:  200,
		T6Seed:  5,
		T8Tasks: 400,
		T8Seed:  7,
		F6Seed:  3,
	}
	if quick {
		p.Repair = QuickRepairParams()
		p.T6Reps = 60
		p.T8Tasks = 120
	}
	return p
}

// Experiment is one registry entry: a runnable that regenerates one or
// more artifacts of EXPERIMENTS.md.
type Experiment struct {
	ID    string   // registry id, e.g. "T1"
	Emits []string // artifact ids it produces, e.g. T1 -> T1 and F1
	run   func(r *Runner, p SuiteParams) ([]Artifact, error)
}

// registry lists every experiment in EXPERIMENTS.md order.
var registry = []Experiment{
	{ID: "T1", Emits: []string{"T1", "F1"}, run: func(r *Runner, p SuiteParams) ([]Artifact, error) {
		tab, fig, err := T1ServiceWindow(r, p.Repair)
		if err != nil {
			return nil, err
		}
		return []Artifact{{ID: "T1", Tab: tab}, {ID: "F1", Fig: fig}}, nil
	}},
	{ID: "T2", Emits: []string{"T2"}, run: func(r *Runner, p SuiteParams) ([]Artifact, error) {
		tab, err := T2Escalation(r, p.Repair)
		if err != nil {
			return nil, err
		}
		return []Artifact{{ID: "T2", Tab: tab}}, nil
	}},
	{ID: "F2", Emits: []string{"F2"}, run: func(r *Runner, p SuiteParams) ([]Artifact, error) {
		fig, tab, err := F2Availability(r, p.Repair)
		if err != nil {
			return nil, err
		}
		return []Artifact{{ID: "F2", Tab: tab, Fig: fig}}, nil
	}},
	{ID: "F3", Emits: []string{"F3"}, run: func(r *Runner, p SuiteParams) ([]Artifact, error) {
		tab, fig, err := F3Cascades(r, p.Repair)
		if err != nil {
			return nil, err
		}
		return []Artifact{{ID: "F3", Tab: tab, Fig: fig}}, nil
	}},
	{ID: "T3", Emits: []string{"T3"}, run: func(r *Runner, p SuiteParams) ([]Artifact, error) {
		tab, err := T3Proactive(r, p.Repair)
		if err != nil {
			return nil, err
		}
		return []Artifact{{ID: "T3", Tab: tab}}, nil
	}},
	{ID: "T4", Emits: []string{"T4"}, run: func(r *Runner, p SuiteParams) ([]Artifact, error) {
		tab, err := T4Predictor(r, p.Repair)
		if err != nil {
			return nil, err
		}
		return []Artifact{{ID: "T4", Tab: tab}}, nil
	}},
	{ID: "T5", Emits: []string{"T5"}, run: func(r *Runner, p SuiteParams) ([]Artifact, error) {
		tab, err := T5RightProvisioning(r, p.Repair)
		if err != nil {
			return nil, err
		}
		return []Artifact{{ID: "T5", Tab: tab}}, nil
	}},
	{ID: "F4", Emits: []string{"F4"}, run: func(r *Runner, p SuiteParams) ([]Artifact, error) {
		fig, tab, err := F4Maintainability(r)
		if err != nil {
			return nil, err
		}
		return []Artifact{{ID: "F4", Tab: tab, Fig: fig}}, nil
	}},
	{ID: "F5", Emits: []string{"F5"}, run: func(r *Runner, p SuiteParams) ([]Artifact, error) {
		fig, tab, err := F5FleetSizing(r, p.Repair)
		if err != nil {
			return nil, err
		}
		return []Artifact{{ID: "F5", Tab: tab, Fig: fig}}, nil
	}},
	{ID: "T6", Emits: []string{"T6"}, run: func(r *Runner, p SuiteParams) ([]Artifact, error) {
		tab, err := T6RobotTimings(r, p.T6Reps, p.T6Seed)
		if err != nil {
			return nil, err
		}
		return []Artifact{{ID: "T6", Tab: tab}}, nil
	}},
	{ID: "F6", Emits: []string{"F6"}, run: func(r *Runner, p SuiteParams) ([]Artifact, error) {
		fig, err := F6FlapLatency(r, p.F6Seed)
		if err != nil {
			return nil, err
		}
		return []Artifact{{ID: "F6", Fig: fig}}, nil
	}},
	{ID: "T7", Emits: []string{"T7"}, run: func(r *Runner, p SuiteParams) ([]Artifact, error) {
		tab, err := T7AICluster(r, p.Repair)
		if err != nil {
			return nil, err
		}
		return []Artifact{{ID: "T7", Tab: tab}}, nil
	}},
	{ID: "A1", Emits: []string{"A1"}, run: func(r *Runner, p SuiteParams) ([]Artifact, error) {
		tab, err := A1RepeatWindow(r, p.Repair)
		if err != nil {
			return nil, err
		}
		return []Artifact{{ID: "A1", Tab: tab}}, nil
	}},
	{ID: "A2", Emits: []string{"A2"}, run: func(r *Runner, p SuiteParams) ([]Artifact, error) {
		tab, err := A2MobilityScope(r, p.Repair)
		if err != nil {
			return nil, err
		}
		return []Artifact{{ID: "A2", Tab: tab}}, nil
	}},
	{ID: "T8", Emits: []string{"T8"}, run: func(r *Runner, p SuiteParams) ([]Artifact, error) {
		tab, err := T8Diversity(r, p.T8Tasks, p.T8Seed)
		if err != nil {
			return nil, err
		}
		return []Artifact{{ID: "T8", Tab: tab}}, nil
	}},
	{ID: "R7", Emits: []string{"R7"}, run: func(r *Runner, p SuiteParams) ([]Artifact, error) {
		tab, err := R7ActuatorChaos(r, p.Repair)
		if err != nil {
			return nil, err
		}
		return []Artifact{{ID: "R7", Tab: tab}}, nil
	}},
	{ID: "F8", Emits: []string{"F8"}, run: func(r *Runner, p SuiteParams) ([]Artifact, error) {
		tab, err := F8FleetScale(r, p.Fleet)
		if err != nil {
			return nil, err
		}
		return []Artifact{{ID: "F8", Tab: tab}}, nil
	}},
}

// ExperimentIDs returns every selectable artifact id in suite order.
func ExperimentIDs() []string {
	var ids []string
	for _, e := range registry {
		ids = append(ids, e.Emits...)
	}
	return ids
}

// Select resolves requested artifact ids (case-insensitive) to registry
// entries in suite order. An empty request selects everything; any unknown
// id is an error that lists the valid ids.
func Select(ids []string) ([]Experiment, error) {
	if len(ids) == 0 {
		return registry, nil
	}
	valid := map[string]bool{}
	for _, id := range ExperimentIDs() {
		valid[id] = true
	}
	want := map[string]bool{}
	var unknown []string
	for _, id := range ids {
		id = strings.ToUpper(strings.TrimSpace(id))
		if id == "" {
			continue
		}
		if !valid[id] {
			unknown = append(unknown, id)
			continue
		}
		want[id] = true
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return nil, fmt.Errorf("unknown experiment id(s) %s; valid ids: %s",
			strings.Join(unknown, ","), strings.Join(ExperimentIDs(), ","))
	}
	var out []Experiment
	for _, e := range registry {
		for _, id := range e.Emits {
			if want[id] {
				out = append(out, e)
				break
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("nothing selected; valid ids: %s", strings.Join(ExperimentIDs(), ","))
	}
	return out, nil
}

// ExperimentBench is one experiment's perf record in the BENCH artifact.
// The allocation columns are process-wide runtime.MemStats deltas taken
// around the experiment: exact on a serial run; with workers > 1 the
// experiments overlap in time, so concurrent allocation is attributed to
// whichever experiments were in flight (the suite-level total is measured
// independently and stays correct either way).
type ExperimentBench struct {
	ID           string  `json:"id"`
	Cells        int     `json:"cells"`
	Workers      int     `json:"workers"`
	WallSeconds  float64 `json:"wall_seconds"`
	CellsPerSec  float64 `json:"cells_per_sec"`
	AllocObjects uint64  `json:"alloc_objects"`
	AllocMBytes  float64 `json:"alloc_mbytes"`
	// SlowestCells attributes the experiment's wall time to its heaviest
	// cells (top 3), which is what makes a slow sweep point findable.
	SlowestCells []CellTiming `json:"slowest_cells,omitempty"`
}

// Bench is the machine-readable perf artifact (BENCH_experiments.json)
// the harness emits to seed the repo's performance trajectory.
type Bench struct {
	Suite   string `json:"suite"` // "quick" or "full"
	Workers int    `json:"workers"`
	// HostCores is runtime.NumCPU() on the machine that produced the
	// artifact; GoMaxProcs is the scheduler's actual parallelism bound at
	// run time (they differ under cgroup CPU limits or GOMAXPROCS).
	HostCores        int               `json:"host_cores"`
	GoMaxProcs       int               `json:"gomaxprocs"`
	TotalCells       int               `json:"total_cells"`
	TotalWallSeconds float64           `json:"total_wall_seconds"`
	CellsPerSec      float64           `json:"cells_per_sec"`
	TotalAllocMBytes float64           `json:"total_alloc_mbytes"`
	Experiments      []ExperimentBench `json:"experiments"`
}

// RunSuite runs the selected experiments over the runner's pool and
// returns their artifacts in suite order plus the perf record. With more
// than one worker the experiments themselves also overlap (each on its own
// Split of the pool); artifact order, and therefore output, is unaffected.
func RunSuite(r *Runner, exps []Experiment, p SuiteParams) ([]Artifact, *Bench, error) {
	if r == nil {
		r = Serial()
	}
	type slot struct {
		arts  []Artifact
		bench ExperimentBench
		err   error
	}
	slots := make([]slot, len(exps))
	var suiteM0 runtime.MemStats
	runtime.ReadMemStats(&suiteM0)
	//lint:allow wallclock harness wall-timing for the bench artifact; never feeds simulation state
	start := time.Now()
	runOne := func(i int) {
		sub := r.Split()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		//lint:allow wallclock harness wall-timing for the bench artifact; never feeds simulation state
		t0 := time.Now()
		arts, err := exps[i].run(sub, p)
		wall := time.Since(t0).Seconds() //lint:allow wallclock harness wall-timing for the bench artifact
		runtime.ReadMemStats(&m1)
		eb := ExperimentBench{ID: exps[i].ID, Cells: sub.CellsRun(), Workers: sub.Workers(),
			WallSeconds:  wall,
			AllocObjects: m1.Mallocs - m0.Mallocs,
			AllocMBytes:  float64(m1.TotalAlloc-m0.TotalAlloc) / (1 << 20),
			SlowestCells: sub.SlowestCells(3)}
		if wall > 0 {
			eb.CellsPerSec = float64(eb.Cells) / wall
		}
		if err != nil {
			err = fmt.Errorf("%s: %w", exps[i].ID, err)
		}
		slots[i] = slot{arts: arts, bench: eb, err: err}
	}
	if r.Workers() == 1 {
		for i := range exps {
			runOne(i)
		}
	} else {
		done := make(chan struct{})
		for i := range exps {
			go func(i int) {
				defer func() { done <- struct{}{} }()
				runOne(i)
			}(i)
		}
		for range exps {
			<-done
		}
	}
	suite := "full"
	if p.Repair.Quick {
		suite = "quick"
	}
	bench := &Bench{Suite: suite, Workers: r.Workers(), HostCores: runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0)}
	var arts []Artifact
	for _, s := range slots {
		if s.err != nil {
			return nil, nil, s.err
		}
		arts = append(arts, s.arts...)
		bench.Experiments = append(bench.Experiments, s.bench)
		bench.TotalCells += s.bench.Cells
	}
	bench.TotalWallSeconds = time.Since(start).Seconds() //lint:allow wallclock harness wall-timing for the bench artifact
	if bench.TotalWallSeconds > 0 {
		bench.CellsPerSec = float64(bench.TotalCells) / bench.TotalWallSeconds
	}
	var suiteM1 runtime.MemStats
	runtime.ReadMemStats(&suiteM1)
	bench.TotalAllocMBytes = float64(suiteM1.TotalAlloc-suiteM0.TotalAlloc) / (1 << 20)
	return arts, bench, nil
}
