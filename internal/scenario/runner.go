package scenario

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Runner executes independent simulation cells across a bounded worker
// pool. A cell is one self-contained simulation — it builds its own
// sim.Engine and world — so cells are embarrassingly parallel; the only
// shared state is the admission pool. Results are always merged in cell
// order, which is what keeps parallel runs byte-identical to serial ones
// at fixed seeds.
type Runner struct {
	workers int
	// pool holds admission tokens, shared across Split runners so the
	// whole suite is bounded by one worker count; nil means inline serial
	// execution with no goroutines at all.
	pool  chan struct{}
	cells *atomic.Int64

	// timings records per-cell wall time for the bench artifact's
	// slowest-cells attribution; guarded by mu because cells of one split
	// complete concurrently.
	mu      sync.Mutex
	timings []CellTiming
}

// CellTiming is one cell's harness wall time in the bench artifact.
type CellTiming struct {
	Key         string  `json:"key"`
	WallSeconds float64 `json:"wall_seconds"`
}

// NewRunner creates a runner with the given pool size. workers <= 0 uses
// runtime.NumCPU(); workers == 1 runs every cell inline on the caller's
// goroutine (the serial escape hatch).
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	r := &Runner{workers: workers, cells: new(atomic.Int64)}
	if workers > 1 {
		r.pool = make(chan struct{}, workers)
	}
	return r
}

// Serial returns a single-worker runner: cells run inline, in order.
func Serial() *Runner { return NewRunner(1) }

// Workers reports the pool size. A nil runner is serial.
func (r *Runner) Workers() int {
	if r == nil {
		return 1
	}
	return r.workers
}

// CellsRun reports how many cells have completed through this runner.
func (r *Runner) CellsRun() int {
	if r == nil {
		return 0
	}
	return int(r.cells.Load())
}

// Split returns a runner sharing r's admission pool but counting cells
// separately. The suite hands each experiment its own split so the bench
// artifact can attribute cells per experiment while one global pool bounds
// total concurrency.
func (r *Runner) Split() *Runner {
	if r == nil {
		return Serial()
	}
	return &Runner{workers: r.workers, pool: r.pool, cells: new(atomic.Int64)}
}

// Cell is one independent unit of simulation work: typically one
// (experiment × level/policy × seed) world build-and-run. Key identifies
// the cell in error messages.
type Cell[T any] struct {
	Key string
	Run func() (T, error)
}

// RunCells executes the cells on the runner's pool and returns their
// results in cell order regardless of completion order. The first failing
// cell (in cell order) fails the run, with its Key in the error.
func RunCells[T any](r *Runner, cells []Cell[T]) ([]T, error) {
	if r == nil {
		r = Serial()
	}
	out := make([]T, len(cells))
	if r.pool == nil {
		for i, c := range cells {
			v, err := runCell(r, c)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	for i := range cells {
		r.pool <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-r.pool }()
			out[i], errs[i] = runCell(r, cells[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func runCell[T any](r *Runner, c Cell[T]) (T, error) {
	//lint:allow wallclock harness wall-timing for the bench artifact; never feeds simulation state
	t0 := time.Now()
	v, err := c.Run()
	secs := time.Since(t0).Seconds() //lint:allow wallclock harness wall-timing for the bench artifact
	r.cells.Add(1)
	r.mu.Lock()
	r.timings = append(r.timings, CellTiming{Key: c.Key, WallSeconds: secs})
	r.mu.Unlock()
	if err != nil {
		var zero T
		return zero, fmt.Errorf("cell %s: %w", c.Key, err)
	}
	return v, nil
}

// SlowestCells returns the n slowest cells run through this runner (ties
// broken by key so the bench artifact is stable).
func (r *Runner) SlowestCells(n int) []CellTiming {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]CellTiming(nil), r.timings...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].WallSeconds != out[j].WallSeconds {
			return out[i].WallSeconds > out[j].WallSeconds
		}
		return out[i].Key < out[j].Key
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}
