package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/ticket"
)

// R7ActuatorChaos regenerates Table R7: repair performance when the
// maintenance plane's own actuators fail — robots stalling mid-rung, losing
// their outcome reports, finishing late, or crying wolf (spurious give-ups).
// Each (level × chaos-rate × seed) cell runs the standard accelerated year
// with the robot lane wrapped in faults.ScaledExecChaos at the given rate;
// rate 0 is the unwrapped baseline, so the first row of each level doubles
// as a regression anchor against T1. The table reports repair-latency
// quantiles, the share of dispatches that fell to the human lane, and the
// watchdog's own bookkeeping (fires, degradations, late outcomes) against
// the injected fault count.
func R7ActuatorChaos(r *Runner, p RepairParams) (*metrics.Table, error) {
	levels := []core.Level{core.L1, core.L3}
	rates := []float64{0, 0.1, 0.3}
	tab := &metrics.Table{
		Title: "R7: repair performance under actuator chaos",
		Cols: []string{"level", "chaos", "tickets", "median", "p95",
			"human share", "watchdog", "degraded", "late", "injected"},
		Notes: []string{
			fmt.Sprintf("duration=%v per seed, fault acceleration x%g, seeds=%d", p.Duration, p.FaultScale, len(p.Seeds)),
			"chaos: total per-dispatch injection rate on the robot lane (stall/lost/slow/spurious mix)",
			"human share: fraction of physical dispatches executed by technicians",
			"watchdog/degraded/late: force-failed attempts, tickets escalated after repeated robot",
			"watchdog failures, and outcomes arriving after their attempt was force-failed",
		},
	}
	type r7 struct {
		windows              []float64
		robot, human         int
		watchdog, degraded   int
		late, injected, open int
	}
	var cells []Cell[r7]
	for _, level := range levels {
		for _, rate := range rates {
			for _, seed := range p.Seeds {
				cells = append(cells, Cell[r7]{
					Key: fmt.Sprintf("R7/%v/chaos=%g/seed=%d", level, rate, seed),
					Run: func() (r7, error) {
						var c r7
						w, err := Build(Options{
							Seed:       seed,
							BuildNet:   p.net(),
							Level:      level,
							Techs:      2,
							Robots:     true,
							FaultScale: p.FaultScale,
							Chaos:      faults.ScaledExecChaos(rate),
						})
						if err != nil {
							return c, err
						}
						w.Run(p.Duration)
						for _, t := range w.Store.All() {
							if t.Kind != ticket.Reactive {
								continue
							}
							switch t.Status {
							case ticket.Resolved:
								c.windows = append(c.windows, t.ServiceWindow().Duration().Hours())
							case ticket.Open, ticket.Assigned, ticket.Active:
								c.open++
							}
						}
						st := w.Ctrl.Stats()
						c.robot, c.human = st.RobotTasks, st.HumanTasks
						c.watchdog, c.degraded, c.late = st.WatchdogFires, st.DegradedTickets, st.LateOutcomes
						c.injected = w.ChaosStats().Injected()
						return c, nil
					},
				})
			}
		}
	}
	res, err := RunCells(r, cells)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, level := range levels {
		for _, rate := range rates {
			var all metrics.Histogram
			var agg r7
			for range p.Seeds {
				c := res[i]
				i++
				for _, v := range c.windows {
					all.Add(v)
				}
				agg.robot += c.robot
				agg.human += c.human
				agg.watchdog += c.watchdog
				agg.degraded += c.degraded
				agg.late += c.late
				agg.injected += c.injected
				agg.open += c.open
			}
			dispatches := agg.robot + agg.human
			share := 0.0
			if dispatches > 0 {
				share = float64(agg.human) / float64(dispatches)
			}
			tab.AddRow(level.String(), fmt.Sprintf("%.0f%%", 100*rate), all.N(),
				fmtHours(all.Quantile(0.5)), fmtHours(all.Quantile(0.95)),
				fmt.Sprintf("%.1f%%", 100*share),
				agg.watchdog, agg.degraded, agg.late, agg.injected)
		}
	}
	return tab, nil
}
